// Package robustscale is a Go implementation of robust predictive
// auto-scaling with probabilistic workload forecasting for cloud
// databases, reproducing Hang et al. (ICDE 2024).
//
// The library has two phases, mirroring the paper's Figure 2:
//
//   - A Probabilistic Workload Forecaster predicts quantiles of future
//     workload instead of single values. Two methodologies are provided:
//     learning parametric distributions (DeepAR with a Student-t head, an
//     MLP with a Gaussian head) and learning a pre-specified grid of
//     quantiles (a Temporal Fusion Transformer trained on pinball loss).
//     ARIMA and the QueryBot 5000 hybrid round out the baselines.
//
//   - A Robust Auto-Scaling Manager formulates horizontal scaling as a
//     robust optimization problem: minimize total compute nodes subject to
//     per-step workload thresholds evaluated at a chosen quantile level
//     (Equation 6), or adaptively switch between quantile levels based on
//     the forecast's own uncertainty (Algorithm 1).
//
// A quick end-to-end tour:
//
//	tr, _ := robustscale.GenerateAlibabaTrace(42)
//	cpu, _ := tr.Series(robustscale.CPU)
//	train, _, test, _ := cpu.Split(0.7, 0.1)
//
//	tft := robustscale.NewTFT(robustscale.DefaultTFTConfig())
//	pipe := robustscale.NewRobustPipeline(tft, 0.9, /* theta */ 70, /* horizon */ 72)
//	_ = pipe.Train(train)
//	report, _ := pipe.Run(cpu, cpu.Len()-test.Len(), robustscale.DefaultClusterConfig())
//	fmt.Printf("under-provisioning: %.2f%%\n", 100*report.Provisioning.UnderProvisionRate)
//
// Everything is implemented with the Go standard library only; workload
// traces are generated synthetically in the statistical image of the
// Alibaba and Google cluster traces the paper evaluates on.
package robustscale
