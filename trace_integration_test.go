package robustscale_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"robustscale"
)

// stubQF is a deterministic quantile forecaster exercising the decision
// pipeline end to end: the forecast at level tau for step t is
// Base[t%len] * (1 + Spread[t%len]*(tau-0.5)).
type stubQF struct {
	name   string
	Base   []float64
	Spread []float64
}

func (f *stubQF) Name() string                  { return f.name }
func (f *stubQF) Fit(*robustscale.Series) error { return nil }
func (f *stubQF) Predict(_ *robustscale.Series, h int) ([]float64, error) {
	out := make([]float64, h)
	for t := range out {
		out[t] = f.Base[t%len(f.Base)]
	}
	return out, nil
}

func (f *stubQF) PredictQuantiles(_ *robustscale.Series, h int, levels []float64) (*robustscale.QuantileForecast, error) {
	q := &robustscale.QuantileForecast{
		Levels: levels,
		Values: make([][]float64, h),
		Mean:   make([]float64, h),
	}
	for t := 0; t < h; t++ {
		base, spread := f.Base[t%len(f.Base)], f.Spread[t%len(f.Spread)]
		row := make([]float64, len(levels))
		for i, tau := range levels {
			row[i] = base * (1 + spread*(tau-0.5))
		}
		q.Values[t] = row
		q.Mean[t] = base
	}
	return q, nil
}

// TestDecisionTracingEndToEnd drives every strategy through the
// evaluation harness with tracing enabled, then checks the two artifacts
// the observability layer promises: at least one queryable decision per
// strategy with its audit fields populated, and a schema-valid Chrome
// trace with spans across plan-round/forecast/optimize.
func TestDecisionTracingEndToEnd(t *testing.T) {
	robustscale.DefaultTracer.Reset()
	robustscale.DefaultTracer.SetEnabled(true)
	robustscale.DefaultDecisions.Reset()
	robustscale.DefaultDecisions.SetEnabled(true)
	defer func() {
		robustscale.DefaultTracer.SetEnabled(false)
		robustscale.DefaultTracer.Reset()
		robustscale.DefaultDecisions.SetEnabled(false)
		robustscale.DefaultDecisions.Reset()
	}()

	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = 100 + 50*float64(i%6)
	}
	s := robustscale.NewSeries("cpu", time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC),
		robustscale.DefaultStep, vals)

	qf := &stubQF{name: "stub", Base: []float64{120, 300, 90}, Spread: []float64{0.05, 0.9, 0.4}}
	strategies := []robustscale.Strategy{
		&robustscale.ReactiveMax{Window: 4, Theta: 100},
		&robustscale.ReactiveAvg{Window: 4, HalfLife: 4, Theta: 100},
		&robustscale.Predictive{Forecaster: qf, Theta: 100},
		&robustscale.Robust{Forecaster: qf, Tau: 0.9, Theta: 100},
		&robustscale.Adaptive{Forecaster: qf, Tau1: 0.6, Tau2: 0.95, Rho: 5, Theta: 100,
			Levels: robustscale.ScalingLevels},
		&robustscale.Staircase{Forecaster: qf, Base: 0.6, Theta: 100,
			Rungs:  []robustscale.StaircaseLevel{{Rho: 5, Tau: 0.95}},
			Levels: robustscale.ScalingLevels},
		&robustscale.RateLimited{Inner: &robustscale.Robust{Forecaster: qf, Tau: 0.9, Theta: 100}, MaxDelta: 1},
	}
	cfg := robustscale.EvalConfig{Theta: 100, Horizon: 3, Start: 24}
	for _, strat := range strategies {
		if _, err := robustscale.EvaluateStrategy(strat, s, cfg); err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
	}

	// Every strategy left at least one queryable decision.
	var adaptiveName string
	for _, strat := range strategies {
		ds := robustscale.DefaultDecisions.Filter(strat.Name(), 0, -1)
		if len(ds) == 0 {
			t.Errorf("%s: no decisions recorded", strat.Name())
			continue
		}
		d := ds[0]
		if d.Step != cfg.Start || d.Horizon != cfg.Horizon || len(d.Nodes) != cfg.Horizon {
			t.Errorf("%s: first decision = step %d horizon %d nodes %v", strat.Name(), d.Step, d.Horizon, d.Nodes)
		}
		if d.Delta != d.Nodes[0]-d.PrevNodes {
			t.Errorf("%s: delta %d != %d - %d", strat.Name(), d.Delta, d.Nodes[0], d.PrevNodes)
		}
		if _, ok := strat.(*robustscale.Adaptive); ok {
			adaptiveName = strat.Name()
			if len(d.U) != cfg.Horizon || d.Tau1 != 0.6 || d.Tau2 != 0.95 {
				t.Errorf("adaptive decision missing audit fields: U=%v tau=%g/%g", d.U, d.Tau1, d.Tau2)
			}
		}
	}

	// The adaptive audit line names the bounding quantile; the uncertain
	// step (spread 0.9 at offset 1) escalates tau.
	if d, ok := robustscale.DefaultDecisions.At(cfg.Start + 1); !ok || !d.Covers(cfg.Start+1) {
		t.Error("no decision covers the second evaluated step")
	}
	found := false
	for _, d := range robustscale.DefaultDecisions.Filter(adaptiveName, 0, -1) {
		line := d.Explain(d.Step + 1)
		if strings.Contains(line, "q0.95") && strings.Contains(line, "tau escalated to 0.95") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no adaptive audit line names the escalated quantile")
	}

	// The trace exports as schema-valid Chrome JSON: X events carrying
	// ph/ts/dur/pid/tid with ts monotone per tid, covering the span
	// vocabulary of the control loop.
	var buf bytes.Buffer
	if err := robustscale.DefaultTracer.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			PID  *int     `json:"pid"`
			TID  *uint64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]int{}
	lastTS := map[uint64]float64{}
	for i, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.TS == nil || ev.Dur == nil || ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %d missing required fields", i)
		}
		if *ev.TS < lastTS[*ev.TID] {
			t.Errorf("event %d: ts not monotone on tid %d", i, *ev.TID)
		}
		lastTS[*ev.TID] = *ev.TS
		names[ev.Name]++
	}
	for _, want := range []string{"plan-round", "forecast", "optimize"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q spans (got %v)", want, names)
		}
	}
}
