package robustscale_test

// Integration tests exercising complete user journeys across package
// boundaries: exporting and re-importing traces, persisting trained
// models, planning against calibrated thresholds, and replaying plans on
// the simulated cluster.

import (
	"bytes"
	"testing"
	"time"

	"robustscale"
	"robustscale/internal/forecast"
	"robustscale/internal/trace"
)

func TestIntegrationCSVTrainPersistPlanReplay(t *testing.T) {
	// 1. Generate and round-trip a trace through CSV, as a user working
	// from exported data would.
	cfg := trace.AlibabaStyle(11)
	cfg.Days = 6
	cfg.Units = 16
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := tr.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadCSV("alibaba", &csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := back.Series(robustscale.CPU)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Train a forecaster, persist it, and restore into a fresh
	// instance.
	fcfg := forecast.TFTConfig{
		Context: 24, Hidden: 12, Epochs: 3, Seed: 1, MaxWindows: 64,
		Levels: []float64{0.5, 0.9}, TrainHorizon: 12,
	}
	trained := forecast.NewTFT(fcfg)
	trainEnd := cpu.Len() * 7 / 10
	if err := trained.Fit(cpu.Slice(0, trainEnd)); err != nil {
		t.Fatal(err)
	}
	var modelBuf bytes.Buffer
	if err := trained.Save(&modelBuf); err != nil {
		t.Fatal(err)
	}
	restored := forecast.NewTFT(fcfg)
	if err := restored.Load(&modelBuf); err != nil {
		t.Fatal(err)
	}

	// 3. Calibrate a threshold from an SLO rather than hand-picking it.
	node := robustscale.QoSNode{ServiceRate: 50, Workers: 4}
	theta, err := robustscale.CalibrateTheta(node, robustscale.SLO{
		Percentile: 0.99, Target: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if theta <= 0 {
		t.Fatalf("theta = %v", theta)
	}

	// 4. Plan with the restored model and evaluate on the held-out tail.
	strat := &robustscale.Robust{Forecaster: restored, Tau: 0.9, Theta: theta}
	evalStart := cpu.Len() * 8 / 10
	res, err := robustscale.EvaluateStrategy(strat, cpu, robustscale.EvalConfig{
		Theta: theta, Horizon: 12, Start: evalStart,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Steps == 0 {
		t.Fatal("no steps evaluated")
	}

	// 5. Replay on the simulated cluster with latency modeled.
	evaluated := cpu.Slice(evalStart, evalStart+len(res.Allocations))
	c, err := robustscale.NewCluster(robustscale.DefaultClusterConfig(), evaluated.Start, res.Allocations[0])
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.ReplayQoS(evaluated, res.Allocations, node, robustscale.SLO{
		Percentile: 0.99, Target: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Steps) != len(res.Allocations) {
		t.Fatalf("replay steps = %d", len(report.Steps))
	}
	// A 0.9-quantile plan against an SLO-calibrated threshold should
	// mostly comply.
	if report.ViolationRate > 0.35 {
		t.Errorf("SLO violation rate = %v", report.ViolationRate)
	}
}

func TestIntegrationMultiResourceFacade(t *testing.T) {
	tr, err := robustscale.GenerateAlibabaTrace(13)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := tr.Series(robustscale.CPU)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := tr.Series(robustscale.Memory)
	if err != nil {
		t.Fatal(err)
	}
	cpu = cpu.Slice(0, 800)
	mem = mem.Slice(0, 800)

	build := func(name string, s *robustscale.Series) *forecast.ARIMA {
		m := forecast.NewSeasonalARIMA(4, 0, 1, 144)
		if err := m.Fit(s.Slice(0, 700)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return m
	}
	specs := []robustscale.ResourceSpec{
		{Name: "cpu", History: cpu.Slice(0, 700), Forecaster: build("cpu", cpu), Tau: 0.9, Theta: 120},
		{Name: "memory", History: mem.Slice(0, 700), Forecaster: build("memory", mem), Tau: 0.9, Theta: 150},
	}
	plan, err := robustscale.PlanMultiResource(specs, 12)
	if err != nil {
		t.Fatal(err)
	}
	actuals := map[string][]float64{
		"cpu":    cpu.Values[700:712],
		"memory": mem.Values[700:712],
	}
	under, over, err := robustscale.EvaluateMultiResource(specs, actuals, plan.Allocations)
	if err != nil {
		t.Fatal(err)
	}
	if under < 0 || under > 1 || over < 0 || over > 1 {
		t.Errorf("rates = %v/%v", under, over)
	}
	// The joint plan must dominate each single-resource plan.
	for _, spec := range specs {
		per := plan.PerResource[spec.Name]
		for i := range per {
			if per[i] > plan.Allocations[i] {
				t.Fatalf("joint allocation below %s demand at %d", spec.Name, i)
			}
		}
	}
}

func TestIntegrationAutoscalerDaemonLoop(t *testing.T) {
	// Mimic cmd/autoscaled: a rolling plan/apply loop against the
	// cluster in virtual time, with a reactive strategy (no training).
	tr, err := robustscale.GenerateGoogleTrace(17)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := tr.Series(robustscale.CPU)
	if err != nil {
		t.Fatal(err)
	}
	cpu = cpu.Slice(0, 400)
	strat := &robustscale.ReactiveMax{Window: 6, Theta: 150}

	c, err := robustscale.NewCluster(robustscale.DefaultClusterConfig(), cpu.TimeAt(200), 1)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for origin := 200; origin < cpu.Len(); origin++ {
		plan, err := strat.Plan(cpu.Slice(0, origin), 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ScaleTo(plan[0]); err != nil {
			t.Fatal(err)
		}
		c.Advance(cpu.Step)
		steps++
	}
	if steps != 200 {
		t.Fatalf("steps = %d", steps)
	}
	if !c.Now().Equal(cpu.TimeAt(400)) {
		t.Errorf("virtual time = %v", c.Now())
	}
}
