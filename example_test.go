package robustscale_test

import (
	"fmt"
	"time"

	"robustscale"
)

// ExampleAllocate shows the per-step allocation rule of Definition 3: the
// minimum node count keeping per-node workload at or below the threshold.
func ExampleAllocate() {
	theta := 10.0
	for _, w := range []float64{5, 10, 25, 95} {
		fmt.Printf("workload %.0f -> %d nodes\n", w, robustscale.Allocate(w, theta))
	}
	// Output:
	// workload 5 -> 1 nodes
	// workload 10 -> 1 nodes
	// workload 25 -> 3 nodes
	// workload 95 -> 10 nodes
}

// ExamplePlanConstrained shows the anti-thrashing planner of Section V-A:
// a sudden spike is reached by pre-scaling within the rate limit.
func ExamplePlanConstrained() {
	workload := []float64{10, 10, 10, 100}
	plan, err := robustscale.PlanConstrained(workload, 10, robustscale.ThrashingConfig{
		Initial:  1,
		MaxDelta: 3,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(plan)
	// Output:
	// [1 4 7 10]
}

// ExampleNewSeasonalNaive demonstrates quantile forecasting with the
// simplest seasonal model: the forecast repeats the previous cycle and the
// band comes from historical seasonal differences.
func ExampleNewSeasonalNaive() {
	// A perfectly periodic workload: 4 steps per "day".
	values := []float64{10, 20, 30, 20, 10, 20, 30, 20, 10, 20, 30, 20}
	s := robustscale.NewSeries("cycle", timeZero(), robustscale.DefaultStep, values)

	m := robustscale.NewSeasonalNaive(4)
	if err := m.Fit(s); err != nil {
		fmt.Println(err)
		return
	}
	pred, err := m.Predict(s, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(pred)
	// Output:
	// [10 20 30 20]
}

// ExampleUncertainty shows the uncertainty metric U of Equation 8: a wide
// quantile fan scores higher than a narrow one.
func ExampleUncertainty() {
	levels := []float64{0.1, 0.5, 0.9}
	narrow, _ := robustscale.Uncertainty(levels, []float64{99, 100, 101}, 100)
	wide, _ := robustscale.Uncertainty(levels, []float64{80, 100, 120}, 100)
	fmt.Printf("narrow fan: %.1f\nwide fan:   %.1f\n", narrow, wide)
	// Output:
	// narrow fan: 0.2
	// wide fan:   4.0
}

// timeZero gives examples a fixed start timestamp.
func timeZero() time.Time { return time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC) }
