package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "escape check", "path")
	v.With(`a\b`).Inc()
	v.With(`say "hi"`).Inc()
	v.With("line1\nline2").Inc()
	v.With("tab\there-ü").Inc() // tabs and UTF-8 must pass through raw
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`esc_total{path="a\\b"} 1`,
		`esc_total{path="say \"hi\""} 1`,
		`esc_total{path="line1\nline2"} 1`,
		"esc_total{path=\"tab\there-ü\"} 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "\nesc_total{") != 4 {
		t.Errorf("expected 4 escaped series, got:\n%s", out)
	}
}

func TestCardinalityGuardOverflow(t *testing.T) {
	r := NewRegistry()
	r.SetLabelLimit(3)
	v := r.CounterVec("guarded_total", "capped family", "tenant")
	for i := 0; i < 10; i++ {
		v.With(fmt.Sprintf("t%02d", i)).Inc()
	}
	// First 3 values get real series; the remaining 7 share "other".
	if got := v.With(OverflowLabel).Value(); got != 7 {
		t.Errorf("overflow series = %v, want 7", got)
	}
	for i := 0; i < 3; i++ {
		if got := v.With(fmt.Sprintf("t%02d", i)).Value(); got != 1 {
			t.Errorf("t%02d = %v, want 1", i, got)
		}
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n := strings.Count(out, "guarded_total{"); n != 4 {
		t.Errorf("exposition has %d guarded series, want 4 (3 real + other):\n%s", n, out)
	}
	if !strings.Contains(out, overflowMetricName+`{metric="guarded_total"} 7`) {
		t.Errorf("overflow counter missing or wrong:\n%s", out)
	}
}

func TestCardinalityGuardPerVecOverride(t *testing.T) {
	r := NewRegistry()
	r.SetLabelLimit(2)
	capped := r.GaugeVec("capped_gauge", "inherits registry cap", "k")
	free := r.CounterVec("free_total", "uncapped family", "k")
	free.SetLabelLimit(0) // unlimited despite registry cap
	tight := r.HistogramVec("tight_seconds", "tighter than registry", "k", []float64{1})
	tight.SetLabelLimit(1)
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("v%d", i)
		capped.With(k).Set(1)
		free.With(k).Inc()
		tight.With(k).Observe(0.5)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n := strings.Count(out, "capped_gauge{"); n != 3 {
		t.Errorf("capped_gauge series = %d, want 3 (2 + other)", n)
	}
	if n := strings.Count(out, "free_total{"); n != 5 {
		t.Errorf("free_total series = %d, want 5 (uncapped)", n)
	}
	if n := strings.Count(out, `tight_seconds_count{`); n != 2 {
		t.Errorf("tight_seconds children = %d, want 2 (1 + other)", n)
	}
}

func TestCardinalityGuardConcurrent(t *testing.T) {
	r := NewRegistry()
	r.SetLabelLimit(8)
	v := r.CounterVec("race_total", "concurrent creation", "k")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v.With(fmt.Sprintf("w%d-i%d", w, i)).Inc()
			}
		}(w)
	}
	wg.Wait()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// The cap is enforced under the family lock: exactly 8 real series
	// plus the overflow series, regardless of interleaving.
	if n := strings.Count(b.String(), "race_total{"); n != 9 {
		t.Errorf("series count = %d, want 9 (8 real + other)", n)
	}
	if got := v.With(OverflowLabel).Value(); got != 400-8 {
		t.Errorf("overflow count = %v, want 392", got)
	}
}

func TestOverflowFamilyExempt(t *testing.T) {
	r := NewRegistry()
	r.SetLabelLimit(1)
	// Overflow two distinct families; the overflow counter itself must
	// keep one real series per family, not collapse into "other".
	a := r.CounterVec("fam_a_total", "a", "k")
	b := r.CounterVec("fam_b_total", "b", "k")
	for i := 0; i < 3; i++ {
		a.With(fmt.Sprintf("x%d", i)).Inc()
		b.With(fmt.Sprintf("x%d", i)).Inc()
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		overflowMetricName + `{metric="fam_a_total"} 2`,
		overflowMetricName + `{metric="fam_b_total"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
