package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func adaptiveDecision(step int, prev int) Decision {
	return Decision{
		Time:      time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC),
		Strategy:  "tft-adaptive-0.7/0.99",
		Step:      step,
		Horizon:   3,
		Theta:     100,
		PrevNodes: prev,
		Nodes:     []int{4, 7, 7},
		Delta:     4 - prev,
		U:         []float64{0.05, 0.14, 0.2},
		Tau:       []float64{0.7, 0.99, 0.99},
		Tau1:      0.7, Tau2: 0.99, Rho: 0.11,
		Quantile: []float64{390, 681, 612},
		Binding:  []string{BindingDemand, BindingDemand, BindingDemand},
	}
}

func TestDecisionStoreRecordAndWraparound(t *testing.T) {
	s := NewDecisionStore(3)
	for i := 0; i < 7; i++ {
		seq := s.Record(Decision{Strategy: "r", Step: i * 10, Nodes: []int{1}})
		if seq != uint64(i+1) {
			t.Errorf("record %d assigned seq %d", i, seq)
		}
	}
	ds := s.Decisions()
	if len(ds) != 3 || s.Len() != 3 || s.Cap() != 3 || s.Total() != 7 || s.Dropped() != 4 {
		t.Fatalf("len/cap/total/dropped = %d/%d/%d/%d (kept %d)", s.Len(), s.Cap(), s.Total(), s.Dropped(), len(ds))
	}
	for i, d := range ds {
		if d.Seq != uint64(5+i) || d.Step != (4+i)*10 {
			t.Errorf("kept[%d] = seq %d step %d", i, d.Seq, d.Step)
		}
	}
	s.Reset()
	if s.Len() != 0 || s.Total() != 0 {
		t.Errorf("reset left len/total = %d/%d", s.Len(), s.Total())
	}
}

func TestDecisionStoreEnabledGate(t *testing.T) {
	s := NewDecisionStore(4)
	if s.Enabled() {
		t.Error("store starts enabled; capture should be opt-in")
	}
	s.SetEnabled(true)
	if !s.Enabled() {
		t.Error("SetEnabled(true) not observed")
	}
	s.SetEnabled(false)
	if s.Enabled() {
		t.Error("SetEnabled(false) not observed")
	}
	var nilStore *DecisionStore
	nilStore.SetEnabled(true) // must not panic
	if nilStore.Enabled() {
		t.Error("nil store reports enabled")
	}
}

func TestDecisionStoreFilterAndLookup(t *testing.T) {
	s := NewDecisionStore(16)
	s.Record(Decision{Strategy: "a", Step: 0, Nodes: []int{1, 1}})
	s.Record(Decision{Strategy: "b", Step: 2, Nodes: []int{2, 2}})
	s.Record(Decision{Strategy: "a", Step: 4, Nodes: []int{3, 3}})

	if got := s.Filter("a", 0, -1); len(got) != 2 {
		t.Errorf("Filter(a) kept %d, want 2", len(got))
	}
	if got := s.Filter("", 2, 3); len(got) != 1 || got[0].Strategy != "b" {
		t.Errorf("Filter(steps 2..3) = %+v", got)
	}
	if got := s.Filter("", 5, -1); len(got) != 1 || got[0].Step != 4 {
		t.Errorf("Filter(from 5) = %+v", got)
	}
	if got := s.Filter("c", 0, -1); len(got) != 0 {
		t.Errorf("Filter(unknown strategy) = %+v", got)
	}

	if d, ok := s.At(3); !ok || d.Strategy != "b" {
		t.Errorf("At(3) = %+v, %v", d, ok)
	}
	if _, ok := s.At(99); ok {
		t.Error("At(99) found a decision")
	}
	if d, ok := s.Latest(); !ok || d.Step != 4 {
		t.Errorf("Latest() = %+v, %v", d, ok)
	}
	if _, ok := NewDecisionStore(4).Latest(); ok {
		t.Error("Latest() on empty store found a decision")
	}
}

func TestDecisionAtPrefersNewest(t *testing.T) {
	s := NewDecisionStore(8)
	s.Record(Decision{Strategy: "old", Step: 0, Nodes: []int{1, 1, 1}})
	s.Record(Decision{Strategy: "new", Step: 2, Nodes: []int{2}})
	if d, _ := s.At(2); d.Strategy != "new" {
		t.Errorf("At(2) = %q, want the newest covering round", d.Strategy)
	}
}

func TestExplainEscalated(t *testing.T) {
	d := adaptiveDecision(120, 3)
	got := d.Explain(121)
	for _, want := range []string{
		"step 121", "scaled 4 -> 7", "q0.99(t+1)=681", "> capacity(4)=400",
		"U=0.14 >= rho=0.11 so tau escalated to 0.99",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Explain = %q, missing %q", got, want)
		}
	}
}

func TestExplainHeldAndCalm(t *testing.T) {
	d := adaptiveDecision(120, 3)
	got := d.Explain(120)
	for _, want := range []string{
		"scaled 3 -> 4", "q0.7(t+0)=390", "U=0.05 < rho=0.11 so tau stayed at 0.7",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Explain = %q, missing %q", got, want)
		}
	}
	if got := d.Explain(122); !strings.Contains(got, "held 7 nodes") {
		t.Errorf("Explain(held) = %q", got)
	}
	if got := d.Explain(999); !strings.Contains(got, "outside round") {
		t.Errorf("Explain(outside) = %q", got)
	}
}

func TestExplainBindingSuffix(t *testing.T) {
	d := Decision{
		Strategy: "robust-ratelimit1", Step: 10, Theta: 100, PrevNodes: 2,
		Nodes: []int{3}, Quantile: []float64{700},
		Binding: []string{BindingRateLimit},
	}
	if got := d.Explain(10); !strings.Contains(got, "[binding: rate-limit]") {
		t.Errorf("Explain = %q, missing rate-limit binding", got)
	}
	// A reactive decision with no quantile levels names the demand drive.
	d2 := Decision{Strategy: "reactive-max", Step: 0, Theta: 100, PrevNodes: 1,
		Nodes: []int{2}, Quantile: []float64{150}, Binding: []string{BindingDemand}}
	if got := d2.Explain(0); !strings.Contains(got, "demand(t+0)=150") {
		t.Errorf("Explain = %q, missing demand drive", got)
	}
}

func TestExplainShedSuffix(t *testing.T) {
	d := Decision{
		Strategy: "robust", Step: 10, Theta: 100, PrevNodes: 5,
		Nodes: []int{4}, Quantile: []float64{700},
		Shed: 3, ShedReason: "pool-exhausted",
	}
	if got := d.Explain(10); !strings.Contains(got, "[shed: 3 nodes — pool-exhausted]") {
		t.Errorf("Explain = %q, missing shed annotation", got)
	}
	d.Shed, d.ShedReason = 1, ""
	if got := d.Explain(10); !strings.Contains(got, "[shed: 1 node]") {
		t.Errorf("Explain = %q, missing singular shed annotation", got)
	}
	// Quarantined rounds annotate even with nothing clipped.
	d.Shed, d.ShedReason = 0, "quarantine"
	if got := d.Explain(10); !strings.Contains(got, "[shed: 0 nodes — quarantine]") {
		t.Errorf("Explain = %q, missing quarantine annotation", got)
	}
	d.Shed, d.ShedReason = 0, ""
	if got := d.Explain(10); strings.Contains(got, "[shed:") {
		t.Errorf("Explain = %q, unexpected shed annotation", got)
	}
}

func TestDecisionHandler(t *testing.T) {
	s := NewDecisionStore(8)
	s.Record(adaptiveDecision(120, 3))
	s.Record(Decision{Strategy: "reactive-max", Step: 123, Nodes: []int{2}})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var export struct {
		Capacity  int        `json:"capacity"`
		Total     uint64     `json:"total"`
		Dropped   uint64     `json:"dropped"`
		Decisions []Decision `json:"decisions"`
	}
	get := func(query string) int {
		resp, err := http.Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		export.Decisions = nil
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&export); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	if code := get(""); code != http.StatusOK || len(export.Decisions) != 2 || export.Total != 2 {
		t.Errorf("unfiltered: code %d, %d decisions, total %d", code, len(export.Decisions), export.Total)
	}
	if code := get("?strategy=reactive-max"); code != http.StatusOK || len(export.Decisions) != 1 {
		t.Errorf("strategy filter: code %d, %d decisions", code, len(export.Decisions))
	}
	if code := get("?from=120&to=122"); code != http.StatusOK || len(export.Decisions) != 1 ||
		export.Decisions[0].Tau1 != 0.7 {
		t.Errorf("step filter: code %d, %+v", code, export.Decisions)
	}
	if code := get("?from=nope"); code != http.StatusBadRequest {
		t.Errorf("bad from: code %d, want 400", code)
	}
	if code := get("?to=nope"); code != http.StatusBadRequest {
		t.Errorf("bad to: code %d, want 400", code)
	}

	post, err := http.Post(srv.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}

func TestDecisionHandlerTenantFilter(t *testing.T) {
	s := NewDecisionStore(8)
	d1 := adaptiveDecision(120, 3)
	d1.Tenant = "t00001"
	s.Record(d1)
	d2 := adaptiveDecision(121, 4)
	d2.Tenant = "t00002"
	s.Record(d2)
	s.Record(Decision{Strategy: "reactive-max", Step: 122, Nodes: []int{2}, Tenant: "t00001"})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var export struct {
		Decisions []Decision `json:"decisions"`
	}
	get := func(query string) int {
		resp, err := http.Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		export.Decisions = nil
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&export); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	if code := get("?tenant=t00001"); code != http.StatusOK || len(export.Decisions) != 2 {
		t.Fatalf("tenant filter: code %d, %d decisions", code, len(export.Decisions))
	}
	for _, d := range export.Decisions {
		if d.Tenant != "t00001" {
			t.Errorf("tenant filter leaked decision %+v", d)
		}
	}
	if code := get("?tenant=t00001&strategy=reactive-max"); code != http.StatusOK ||
		len(export.Decisions) != 1 || export.Decisions[0].Step != 122 {
		t.Errorf("tenant+strategy filter: code %d, %+v", code, export.Decisions)
	}
	if code := get("?tenant=t00001&from=120&to=121"); code != http.StatusOK ||
		len(export.Decisions) != 1 || export.Decisions[0].Step != 120 {
		t.Errorf("tenant+range filter: code %d, %+v", code, export.Decisions)
	}
	if code := get("?tenant=missing"); code != http.StatusOK || len(export.Decisions) != 0 {
		t.Errorf("unknown tenant: code %d, %d decisions", code, len(export.Decisions))
	}
}
