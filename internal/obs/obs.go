// Package obs is the production observability layer of the repo: a
// stdlib-only metrics subsystem (counters, gauges, fixed-bucket
// histograms) with Prometheus text-format exposition, plus a bounded
// structured event journal (journal.go).
//
// Design goals, in order:
//
//   - Lock-cheap hot paths. Counter.Add, Gauge.Set and Histogram.Observe
//     are a handful of atomic operations — no mutex, no allocation — so
//     they can sit inside training loops and per-step control loops
//     without perturbing what they measure.
//   - One registry, registered once. Instruments live in package-level
//     vars registered against Default at init time. Registration is
//     idempotent by metric name, so two packages may name the same
//     family (e.g. the shared stage-latency histogram) and share it.
//   - Deterministic exposition. Families are emitted sorted by name and
//     children sorted by label value, so the text format is stable and
//     golden-testable.
//
// Instruments optionally carry a single label dimension (a *Vec type);
// callers cache the child returned by With to keep the hot path free of
// map lookups.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the Prometheus exposition type of a metric family.
type Kind string

// Supported metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// LatencyBuckets is the default histogram grid for stage latencies,
// spanning 100µs to 10s — wide enough for both a reactive window scan and
// a full DeepAR Monte-Carlo forecast.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Default is the process-wide registry. Library packages register their
// instruments here; the daemon exposes it at /metrics.
var Default = NewRegistry()

// DefaultLabelLimit is the per-family label cardinality cap a new
// Registry starts with. Generous enough that every series a few hundred
// tenants produce stays individually labelled, small enough that a
// 10k-tenant fleet cannot grow an unbounded exposition.
const DefaultLabelLimit = 1024

// OverflowLabel is the label value that absorbs observations for label
// values beyond a family's cardinality cap.
const OverflowLabel = "other"

// overflowMetricName counts With() lookups routed to OverflowLabel,
// labelled by the overflowing metric family. The family itself is
// exempt from the cap (its cardinality is bounded by the number of
// registered families).
const overflowMetricName = "robustscale_metric_label_overflow_total"

// atomicFloat is a float64 updated with compare-and-swap on its bit
// pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter; negative deltas are a programming error.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decreased")
	}
	c.v.Add(v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adjusts the value by a (possibly negative) delta.
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Buckets follow the
// Prometheus convention: bucket i counts observations <= bounds[i], with
// an implicit +Inf bucket. Observe is wait-free per bucket; a concurrent
// scrape may see a sum slightly ahead of the counts (and vice versa),
// which Prometheus tolerates by design.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// snapshot returns cumulative bucket counts, the total count and the sum.
func (h *Histogram) snapshot() ([]uint64, uint64, float64) {
	cum := make([]uint64, len(h.bounds))
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
		if i < len(h.bounds) {
			cum[i] = total
		}
	}
	return cum, total, h.sum.Load()
}

// family is one named metric with its (possibly labelled) children.
type family struct {
	name   string
	help   string
	kind   Kind
	label  string    // label key; "" for unlabelled instruments
	bounds []float64 // histogram bucket bounds
	reg    *Registry
	limit  atomic.Int64 // 0 = inherit registry limit, <0 = unlimited

	mu       sync.Mutex
	children map[string]interface{} // label value -> *Counter | *Gauge | *Histogram
}

// effLimit resolves the family's cardinality cap: a per-family override
// wins over the registry default; zero or negative means unlimited.
func (f *family) effLimit() int64 {
	if l := f.limit.Load(); l != 0 {
		if l < 0 {
			return 0
		}
		return l
	}
	return f.reg.labelLimit.Load()
}

// child returns the instrument for a label value, creating it with mk
// on first use. When creating a new labelled child would exceed the
// family's cardinality cap, the lookup is routed to the OverflowLabel
// series instead (created on demand, always admitted) and the overflow
// counter is incremented. The cap is checked under f.mu, so the number
// of real children never exceeds the limit even under concurrent
// first-use races.
func (f *family) child(value string, mk func() interface{}) interface{} {
	f.mu.Lock()
	if c, ok := f.children[value]; ok {
		f.mu.Unlock()
		return c
	}
	if f.label != "" && value != OverflowLabel && f.name != overflowMetricName {
		if limit := f.effLimit(); limit > 0 && int64(len(f.children)) >= limit {
			f.mu.Unlock()
			f.reg.noteOverflow(f.name)
			return f.child(OverflowLabel, mk)
		}
	}
	c := mk()
	f.children[value] = c
	f.mu.Unlock()
	return c
}

func (f *family) counter(value string) *Counter {
	return f.child(value, func() interface{} { return &Counter{} }).(*Counter)
}

func (f *family) gauge(value string) *Gauge {
	return f.child(value, func() interface{} { return &Gauge{} }).(*Gauge)
}

func (f *family) histogram(value string) *Histogram {
	return f.child(value, func() interface{} { return newHistogram(f.bounds) }).(*Histogram)
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct{ f *family }

// With returns the counter for the given label value, creating it on
// first use. Cache the result on hot paths.
func (v *CounterVec) With(value string) *Counter { return v.f.counter(value) }

// SetLabelLimit overrides the family's cardinality cap: n > 0 caps the
// number of distinct label values, n <= 0 removes the cap. Existing
// children are kept either way.
func (v *CounterVec) SetLabelLimit(n int) { v.f.setLimit(n) }

// GaugeVec is a gauge family with one label dimension.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label value.
func (v *GaugeVec) With(value string) *Gauge { return v.f.gauge(value) }

// SetLabelLimit overrides the family's cardinality cap; see
// CounterVec.SetLabelLimit.
func (v *GaugeVec) SetLabelLimit(n int) { v.f.setLimit(n) }

// HistogramVec is a histogram family with one label dimension.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram { return v.f.histogram(value) }

// SetLabelLimit overrides the family's cardinality cap; see
// CounterVec.SetLabelLimit.
func (v *HistogramVec) SetLabelLimit(n int) { v.f.setLimit(n) }

func (f *family) setLimit(n int) {
	if n <= 0 {
		f.limit.Store(-1)
		return
	}
	f.limit.Store(int64(n))
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	labelLimit atomic.Int64 // per-family cap; <= 0 = unlimited
}

// NewRegistry returns an empty registry with the default per-family
// label cardinality cap.
func NewRegistry() *Registry {
	r := &Registry{families: map[string]*family{}}
	r.labelLimit.Store(DefaultLabelLimit)
	return r
}

// SetLabelLimit replaces the registry-wide per-family label cardinality
// cap. n <= 0 removes the cap. Families with their own SetLabelLimit
// override are unaffected.
func (r *Registry) SetLabelLimit(n int) {
	if n <= 0 {
		n = 0
	}
	r.labelLimit.Store(int64(n))
}

// LabelLimit returns the registry-wide cap (0 = unlimited).
func (r *Registry) LabelLimit() int { return int(r.labelLimit.Load()) }

// noteOverflow counts one With() lookup that was routed to the
// overflow series of the named family. Called with no family lock held.
func (r *Registry) noteOverflow(metric string) {
	r.CounterVec(overflowMetricName,
		"Metric lookups routed to the 'other' series because the per-family label cardinality cap was reached.",
		"metric").With(metric).Inc()
}

// family registers or retrieves a metric family. Registration is
// idempotent: asking again for the same name returns the existing family,
// but a kind or label mismatch panics — that is two packages fighting
// over one name, a programming error worth failing loudly on.
func (r *Registry) family(name, help string, kind Kind, label string, bounds []float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("obs: metric %s already registered as %s with label %q", name, f.kind, f.label))
		}
		return f
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: metric %s buckets not strictly increasing: %v", name, bounds))
		}
	}
	f := &family{
		name: name, help: help, kind: kind, label: label,
		bounds:   append([]float64(nil), bounds...),
		reg:      r,
		children: map[string]interface{}{},
	}
	r.families[name] = f
	return f
}

// Counter registers (or retrieves) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, KindCounter, "", nil).counter("")
}

// CounterVec registers (or retrieves) a counter family with one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{r.family(name, help, KindCounter, label, nil)}
}

// Gauge registers (or retrieves) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge, "", nil).gauge("")
}

// GaugeVec registers (or retrieves) a gauge family with one label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{r.family(name, help, KindGauge, label, nil)}
}

// Histogram registers (or retrieves) an unlabelled histogram. Nil or
// empty buckets default to LatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	return r.family(name, help, KindHistogram, "", buckets).histogram("")
}

// HistogramVec registers (or retrieves) a histogram family with one label.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	return &HistogramVec{r.family(name, help, KindHistogram, label, buckets)}
}

// WritePrometheus renders every family in Prometheus text format
// (version 0.0.4), families sorted by name and children by label value.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WritePrometheus(w)
	})
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	vals := make([]string, 0, len(f.children))
	for v := range f.children {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	children := make([]interface{}, len(vals))
	for i, v := range vals {
		children[i] = f.children[v]
	}
	f.mu.Unlock()
	if len(vals) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
	for i, v := range vals {
		switch c := children[i].(type) {
		case *Counter:
			writeSample(b, f.name, f.label, v, c.Value())
		case *Gauge:
			writeSample(b, f.name, f.label, v, c.Value())
		case *Histogram:
			cum, count, sum := c.snapshot()
			for j, le := range c.bounds {
				writeBucket(b, f.name, f.label, v, formatFloat(le), cum[j])
			}
			writeBucket(b, f.name, f.label, v, "+Inf", count)
			writeSample(b, f.name+"_sum", f.label, v, sum)
			writeSample(b, f.name+"_count", f.label, v, float64(count))
		}
	}
}

func writeSample(b *strings.Builder, name, labelKey, labelVal string, value float64) {
	b.WriteString(name)
	if labelKey != "" {
		b.WriteByte('{')
		b.WriteString(labelKey)
		b.WriteString(`="`)
		escapeLabel(b, labelVal)
		b.WriteString(`"}`)
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(value))
	b.WriteByte('\n')
}

func writeBucket(b *strings.Builder, name, labelKey, labelVal, le string, count uint64) {
	b.WriteString(name)
	b.WriteString("_bucket{")
	if labelKey != "" {
		b.WriteString(labelKey)
		b.WriteString(`="`)
		escapeLabel(b, labelVal)
		b.WriteString(`",`)
	}
	fmt.Fprintf(b, "le=%q} ", le)
	b.WriteString(strconv.FormatUint(count, 10))
	b.WriteByte('\n')
}

// escapeLabel writes a label value per the Prometheus text format 0.0.4:
// backslash, double-quote and line feed are escaped; every other byte
// (including tabs and multi-byte UTF-8) passes through raw. Go's %q
// would over-escape and produce scrape-visible differences.
func escapeLabel(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
