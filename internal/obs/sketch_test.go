package obs

import (
	"bytes"
	"math"
	"sort"
	"testing"
)

// sortPercentile is the repo-wide nearest-rank convention (see
// fleet.percentile): rank = round(p/100·n) − 1, clamped.
func sortPercentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// sketchValues generates a deterministic pseudo-random positive sample
// spanning several decades, like fleet cost/latency signals.
func sketchValues(n int) []float64 {
	xs := make([]float64, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range xs {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		u := float64(state%1_000_000) / 1_000_000
		xs[i] = math.Pow(10, -3+6*u) // 1e-3 .. 1e3
	}
	return xs
}

func TestSketchPercentileWithinAlpha(t *testing.T) {
	alpha := DefaultSketchAlpha
	xs := sketchValues(10000)
	s := NewSketch(alpha)
	for _, v := range xs {
		s.Observe(v)
	}
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99, 99.9, 100} {
		exact := sortPercentile(xs, p)
		got := s.Percentile(p)
		if rel := math.Abs(got-exact) / exact; rel > alpha {
			t.Errorf("p%v: sketch %v vs exact %v, relative error %v > %v", p, got, exact, rel, alpha)
		}
	}
	if s.Count() != uint64(len(xs)) {
		t.Errorf("count = %d, want %d", s.Count(), len(xs))
	}
}

func TestSketchNegativeAndZero(t *testing.T) {
	s := NewSketch(0.01)
	xs := []float64{-100, -10, -1, 0, 0, 1, 10, 100}
	for _, v := range xs {
		s.Observe(v)
	}
	for _, p := range []float64{1, 25, 50, 75, 100} {
		exact := sortPercentile(xs, p)
		got := s.Percentile(p)
		if exact == 0 {
			if got != 0 {
				t.Errorf("p%v: got %v, want exactly 0", p, got)
			}
			continue
		}
		if rel := math.Abs(got-exact) / math.Abs(exact); rel > 0.01 {
			t.Errorf("p%v: sketch %v vs exact %v", p, got, exact)
		}
	}
	if s.Min() != -100 || s.Max() != 100 {
		t.Errorf("min/max = %v/%v, want -100/100", s.Min(), s.Max())
	}
}

func TestSketchMergeMatchesSingle(t *testing.T) {
	xs := sketchValues(5000)
	whole := NewSketch(0.01)
	for _, v := range xs {
		whole.Observe(v)
	}
	// Split into 7 shards observed separately, then merge.
	merged := NewSketch(0.01)
	for shard := 0; shard < 7; shard++ {
		part := NewSketch(0.01)
		for i := shard; i < len(xs); i += 7 {
			part.Observe(xs[i])
		}
		if err := merged.Merge(part); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}
	ws, ms := whole.Snapshot(), merged.Snapshot()
	if ws.Count != ms.Count || ws.Zero != ms.Zero {
		t.Fatalf("counts differ: %+v vs %+v", ws.Count, ms.Count)
	}
	if len(ws.PosKeys) != len(ms.PosKeys) {
		t.Fatalf("bucket sets differ: %d vs %d", len(ws.PosKeys), len(ms.PosKeys))
	}
	for i := range ws.PosKeys {
		if ws.PosKeys[i] != ms.PosKeys[i] || ws.PosCounts[i] != ms.PosCounts[i] {
			t.Fatalf("bucket %d differs: (%d,%d) vs (%d,%d)",
				i, ws.PosKeys[i], ws.PosCounts[i], ms.PosKeys[i], ms.PosCounts[i])
		}
	}
	for _, p := range []float64{50, 90, 99} {
		if whole.Percentile(p) != merged.Percentile(p) {
			t.Errorf("p%v differs after merge: %v vs %v", p, whole.Percentile(p), merged.Percentile(p))
		}
	}
}

func TestSketchMergeAlphaMismatch(t *testing.T) {
	a, b := NewSketch(0.01), NewSketch(0.02)
	if err := a.Merge(b); err == nil {
		t.Fatal("expected error merging sketches with different alpha")
	}
	if err := a.Merge(a); err == nil {
		t.Fatal("expected error merging a sketch into itself")
	}
}

func TestSketchSaveDeterministicAndRoundTrip(t *testing.T) {
	build := func() *Sketch {
		s := NewSketch(0.01)
		for _, v := range sketchValues(2000) {
			s.Observe(v)
		}
		s.Observe(0)
		s.Observe(-4.5)
		return s
	}
	var b1, b2 bytes.Buffer
	if err := build().Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("Save is not byte-deterministic across identical sketches")
	}
	orig := build()
	loaded := NewSketch(0.01)
	if err := loaded.Load(bytes.NewReader(b1.Bytes())); err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{1, 50, 99} {
		if loaded.Percentile(p) != orig.Percentile(p) {
			t.Errorf("p%v differs after round-trip: %v vs %v", p, loaded.Percentile(p), orig.Percentile(p))
		}
	}
	if loaded.Count() != orig.Count() || loaded.Sum() != orig.Sum() {
		t.Error("count/sum differ after round-trip")
	}
	wrongAlpha := NewSketch(0.05)
	if err := wrongAlpha.Load(bytes.NewReader(b1.Bytes())); err == nil {
		t.Fatal("expected error loading snapshot with mismatched alpha")
	}
}

func TestSketchEdgeCases(t *testing.T) {
	s := NewSketch(0.01)
	if s.Percentile(50) != 0 {
		t.Error("empty sketch percentile should be 0")
	}
	s.Observe(math.NaN())
	if s.Count() != 0 {
		t.Error("NaN should be ignored")
	}
	s.Observe(math.Inf(1))
	if s.Count() != 1 || math.IsInf(s.Percentile(100), 0) || math.IsNaN(s.Percentile(100)) {
		t.Errorf("+Inf should clamp finite, got %v", s.Percentile(100))
	}
	s2 := NewSketch(0.01)
	s2.ObserveN(3.5, 1000)
	if s2.Count() != 1000 {
		t.Errorf("ObserveN count = %d", s2.Count())
	}
	if rel := math.Abs(s2.Percentile(50)-3.5) / 3.5; rel > 0.01 {
		t.Errorf("ObserveN median %v off 3.5", s2.Percentile(50))
	}
	if s2.Buckets() != 1 {
		t.Errorf("single repeated value should occupy 1 bucket, got %d", s2.Buckets())
	}
	defer func() {
		if recover() == nil {
			t.Error("NewSketch(0) should panic")
		}
	}()
	NewSketch(0)
}

func TestSketchBoundedMemory(t *testing.T) {
	s := NewSketch(0.01)
	for _, v := range sketchValues(50000) {
		s.Observe(v)
	}
	// Six decades at α = 1% is ~log(1e6)/log(γ) ≈ 691 buckets.
	if b := s.Buckets(); b > 800 {
		t.Errorf("bucket count %d exceeds O(log range) expectation", b)
	}
}

func TestTopKHeavyHitters(t *testing.T) {
	tk := NewTopK(3)
	// "c" and "a" are genuinely heavy; noise keys churn the third slot.
	for i := 0; i < 100; i++ {
		tk.Observe("c", 5)
		tk.Observe("a", 3)
		if i%2 == 0 {
			tk.Observe("noise-"+string(rune('a'+i%26)), 1)
		}
	}
	top := tk.Top(2)
	if len(top) != 2 || top[0].Key != "c" || top[1].Key != "a" {
		t.Fatalf("top-2 = %+v, want c then a", top)
	}
	if top[0].Count != 500 || top[0].Err != 0 {
		t.Errorf("c count/err = %v/%v, want 500/0", top[0].Count, top[0].Err)
	}
	if got := tk.Top(0); len(got) != 3 {
		t.Errorf("Top(0) returned %d entries, want all 3", len(got))
	}
}

func TestTopKDeterministicEviction(t *testing.T) {
	run := func() []TopEntry {
		tk := NewTopK(2)
		tk.Observe("x", 1)
		tk.Observe("y", 1) // tie with x; "y" (greater key) is the victim
		tk.Observe("z", 1)
		return tk.Top(0)
	}
	a, b := run(), run()
	if len(a) != 2 || a[0].Key != a[0].Key {
		t.Fatalf("unexpected result %+v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic eviction: %+v vs %+v", a, b)
		}
	}
	keys := map[string]bool{}
	for _, e := range a {
		keys[e.Key] = true
	}
	if !keys["x"] || !keys["z"] || keys["y"] {
		t.Errorf("expected {x, z} to survive (y evicted on tie), got %+v", a)
	}
}

func TestTopKSaveLoad(t *testing.T) {
	tk := NewTopK(4)
	tk.Observe("a", 10)
	tk.Observe("b", 7)
	tk.Observe("c", 2)
	var buf bytes.Buffer
	if err := tk.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	tk2 := NewTopK(4)
	tk2.Observe("a", 10)
	tk2.Observe("b", 7)
	tk2.Observe("c", 2)
	if err := tk2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("TopK Save is not byte-deterministic")
	}
	loaded := NewTopK(4)
	if err := loaded.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, want := loaded.Top(0), tk.Top(0)
	if len(got) != len(want) {
		t.Fatalf("entry count %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("entry %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Loading into a smaller tracker keeps the heaviest entries.
	small := NewTopK(2)
	if err := small.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	st := small.Top(0)
	if len(st) != 2 || st[0].Key != "a" || st[1].Key != "b" {
		t.Errorf("downsized load kept %+v, want a,b", st)
	}
}
