package obs

import (
	"net/http"
	"sync/atomic"
)

// Health is the liveness/readiness state a daemon exposes. Liveness is
// unconditional — if the process can serve the handler it is alive.
// Readiness starts false and flips true once warm start (checkpoint
// recovery or training) has finished, so an orchestrator keeps traffic
// away from a replica that is still rebuilding forecaster state.
type Health struct {
	ready atomic.Bool
}

// NewHealth returns a Health that is alive but not yet ready.
func NewHealth() *Health { return &Health{} }

// SetReady flips the readiness state.
func (h *Health) SetReady(ready bool) { h.ready.Store(ready) }

// Ready reports the current readiness state.
func (h *Health) Ready() bool { return h.ready.Load() }

// LiveHandler serves /healthz: always 200 while the process runs.
func (h *Health) LiveHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
}

// ReadyHandler serves /readyz: 503 until SetReady(true), then 200.
func (h *Health) ReadyHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !h.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("warming\n"))
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	})
}
