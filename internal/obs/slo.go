package obs

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// BurnRule is one multi-window burn-rate alert: it fires when the error
// budget is being consumed at >= Factor times the sustainable rate over
// BOTH the long and the short window (the short window makes the alert
// resolve quickly once the bleeding stops; the long window keeps a brief
// blip from paging). Windows are measured in observation ticks — control
// rounds or replay steps — so firing rounds are deterministic under
// virtual time.
type BurnRule struct {
	Name   string  `json:"name"`
	Factor float64 `json:"factor"`
	Long   int     `json:"long_window"`
	Short  int     `json:"short_window"`
}

// DefaultBurnRules returns the classic two-tier page/ticket pair scaled
// to an error-budget window of w ticks (the SRE workbook's 1h/5m and
// 6h/30m windows for a 30-day budget, expressed as fractions of w).
func DefaultBurnRules(w int) []BurnRule {
	frac := func(d int) int {
		n := w / d
		if n < 1 {
			n = 1
		}
		return n
	}
	return []BurnRule{
		{Name: "page", Factor: 14.4, Long: frac(24), Short: frac(288)},
		{Name: "ticket", Factor: 6, Long: frac(4), Short: frac(24)},
	}
}

// ParseBurnRules parses a comma-separated rule spec of the form
// "[name=]<factor>x:<long>/<short>", e.g. "page=14.4x:6/1,ticket=6x:36/3".
// Unnamed rules are named rule0, rule1, ...
func ParseBurnRules(spec string) ([]BurnRule, error) {
	var rules []BurnRule
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name := fmt.Sprintf("rule%d", i)
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			name, part = part[:eq], part[eq+1:]
		}
		x := strings.IndexByte(part, 'x')
		colon := strings.IndexByte(part, ':')
		slash := strings.IndexByte(part, '/')
		if x < 0 || colon != x+1 || slash < colon {
			return nil, fmt.Errorf("obs: burn rule %q not of the form [name=]<factor>x:<long>/<short>", part)
		}
		factor, err := strconv.ParseFloat(part[:x], 64)
		if err != nil || factor <= 0 {
			return nil, fmt.Errorf("obs: burn rule %q: bad factor", part)
		}
		long, err := strconv.Atoi(part[colon+1 : slash])
		if err != nil {
			return nil, fmt.Errorf("obs: burn rule %q: bad long window", part)
		}
		short, err := strconv.Atoi(part[slash+1:])
		if err != nil {
			return nil, fmt.Errorf("obs: burn rule %q: bad short window", part)
		}
		if short < 1 || long < short {
			return nil, fmt.Errorf("obs: burn rule %q: need long >= short >= 1", part)
		}
		rules = append(rules, BurnRule{Name: name, Factor: factor, Long: long, Short: short})
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("obs: empty burn rule spec %q", spec)
	}
	return rules, nil
}

// SLOConfig configures an SLOTracker.
type SLOConfig struct {
	// Target is the violation-rate objective, e.g. 0.01 for "at most 1%
	// of steps may breach QoS". Must be in (0, 1).
	Target float64
	// Window is the rolling error-budget window in observation ticks.
	Window int
	// Rules are the burn-rate alerts; nil means DefaultBurnRules(Window).
	Rules []BurnRule
}

// AlertEvent is one burn-rate alert transition (firing or resolved).
type AlertEvent struct {
	Rule      string    `json:"rule"`
	Firing    bool      `json:"firing"`
	Time      time.Time `json:"time"`
	Tick      uint64    `json:"tick"`
	BurnLong  float64   `json:"burn_long"`
	BurnShort float64   `json:"burn_short"`
}

// sloAlertHistoryCap bounds the retained alert transition history.
const sloAlertHistoryCap = 256

// sloSlot is one tick's worth of observations.
type sloSlot struct {
	Bad   uint64
	Total uint64
}

// SLOTracker maintains a rolling error budget over virtual time and
// evaluates multi-window burn-rate alerts on every tick. All state is a
// pure function of the observation sequence — given the same sequence of
// ObserveAt calls, firing/resolve ticks are identical across reruns,
// worker counts, and warm restarts (Save/Load round-trips the window).
// Safe for concurrent use, though observations themselves must arrive in
// a deterministic order for deterministic alerting.
type SLOTracker struct {
	mu   sync.Mutex
	cfg  SLOConfig
	ring []sloSlot // ring buffer of the last Window ticks
	tick uint64    // total ticks observed

	bad, total uint64 // lifetime counts

	firing      []bool   // per rule
	firstFire   []uint64 // per rule; 1-based tick, 0 = never fired
	transitions uint64   // total firing<->resolved edges across rules

	history []AlertEvent

	// Journal, if set, receives an "alert" event on every transition,
	// labelled with Tenant.
	Journal *Journal
	Tenant  string

	instr *sloInstruments
}

// NewSLOTracker returns a tracker for the given config; invalid configs
// panic (a flag-validation error surfaced loudly).
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	if !(cfg.Target > 0 && cfg.Target < 1) {
		panic(fmt.Sprintf("obs: SLO target %v outside (0, 1)", cfg.Target))
	}
	if cfg.Window < 1 {
		panic(fmt.Sprintf("obs: SLO window %d < 1", cfg.Window))
	}
	if cfg.Rules == nil {
		cfg.Rules = DefaultBurnRules(cfg.Window)
	}
	for _, r := range cfg.Rules {
		if r.Short < 1 || r.Long < r.Short || r.Long > cfg.Window || r.Factor <= 0 {
			panic(fmt.Sprintf("obs: burn rule %+v invalid for window %d", r, cfg.Window))
		}
	}
	return &SLOTracker{
		cfg:       cfg,
		ring:      make([]sloSlot, cfg.Window),
		firing:    make([]bool, len(cfg.Rules)),
		firstFire: make([]uint64, len(cfg.Rules)),
	}
}

// Config returns the tracker's configuration.
func (s *SLOTracker) Config() SLOConfig {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// sloInstruments are the exposition handles a tracker drives. They are
// process-global (registered against Default) so there should be one
// instrumented tracker per process.
type sloInstruments struct {
	active      *Gauge
	budget      *Gauge
	burn        *GaugeVec
	transitions *Counter
}

var (
	sloInstrOnce sync.Once
	sloInstr     *sloInstruments
)

// InstrumentDefault wires the tracker to the process-wide gauges:
// robustscale_alerts_active, robustscale_slo_error_budget_remaining,
// robustscale_slo_burn_rate{rule} and
// robustscale_slo_alert_transitions_total.
func (s *SLOTracker) InstrumentDefault() *SLOTracker {
	sloInstrOnce.Do(func() {
		sloInstr = &sloInstruments{
			active:      Default.Gauge("robustscale_alerts_active", "Number of burn-rate alert rules currently firing."),
			budget:      Default.Gauge("robustscale_slo_error_budget_remaining", "Fraction of the rolling-window error budget left (1 = untouched, <0 = overspent)."),
			burn:        Default.GaugeVec("robustscale_slo_burn_rate", "Long-window error-budget burn rate per alert rule (1 = exactly sustainable).", "rule"),
			transitions: Default.Counter("robustscale_slo_alert_transitions_total", "Burn-rate alert firing/resolved transitions."),
		}
	})
	s.mu.Lock()
	s.instr = sloInstr
	s.mu.Unlock()
	return s
}

// windowSums returns bad/total summed over the last w ticks (w clamped
// to what has been observed).
func (s *SLOTracker) windowSums(w int) (bad, total uint64) {
	n := int(s.tick)
	if w > n {
		w = n
	}
	if w > len(s.ring) {
		w = len(s.ring)
	}
	for i := 0; i < w; i++ {
		slot := s.ring[(int(s.tick)-1-i+len(s.ring)*2)%len(s.ring)]
		bad += slot.Bad
		total += slot.Total
	}
	return bad, total
}

// burnRate converts window sums into a burn rate: the observed bad
// fraction divided by the target. 1 means the budget is being spent
// exactly as fast as it refills; 0 when the window saw no traffic.
func (s *SLOTracker) burnRate(bad, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total) / s.cfg.Target
}

// ObserveAt records one tick: total observations, of which bad breached
// the objective, at virtual time now. It then re-evaluates every burn
// rule and emits transitions.
func (s *SLOTracker) ObserveAt(now time.Time, bad, total uint64) {
	if bad > total {
		bad = total
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ring[int(s.tick)%len(s.ring)] = sloSlot{Bad: bad, Total: total}
	s.tick++
	s.bad += bad
	s.total += total

	active := 0
	for i, r := range s.cfg.Rules {
		longBad, longTotal := s.windowSums(r.Long)
		shortBad, shortTotal := s.windowSums(r.Short)
		burnLong := s.burnRate(longBad, longTotal)
		burnShort := s.burnRate(shortBad, shortTotal)
		firing := burnLong >= r.Factor && burnShort >= r.Factor
		if s.instr != nil {
			s.instr.burn.With(r.Name).Set(burnLong)
		}
		if firing != s.firing[i] {
			s.firing[i] = firing
			s.transitions++
			if firing && s.firstFire[i] == 0 {
				s.firstFire[i] = s.tick
			}
			ev := AlertEvent{
				Rule: r.Name, Firing: firing, Time: now, Tick: s.tick,
				BurnLong: burnLong, BurnShort: burnShort,
			}
			if len(s.history) >= sloAlertHistoryCap {
				copy(s.history, s.history[1:])
				s.history = s.history[:len(s.history)-1]
			}
			s.history = append(s.history, ev)
			if s.instr != nil {
				s.instr.transitions.Inc()
			}
			if s.Journal != nil {
				verb := "resolved"
				if firing {
					verb = "firing"
				}
				s.Journal.RecordTenantAt(now, s.Tenant, "alert",
					fmt.Sprintf("burn-rate alert %s %s (%.1fx budget)", r.Name, verb, r.Factor),
					map[string]float64{
						"burn_long":  burnLong,
						"burn_short": burnShort,
						"factor":     r.Factor,
						"tick":       float64(s.tick),
					})
			}
		}
		if s.firing[i] {
			active++
		}
	}
	if s.instr != nil {
		s.instr.active.Set(float64(active))
		s.instr.budget.Set(s.budgetRemainingLocked())
	}
}

// budgetRemainingLocked computes the rolling-window budget fraction left.
func (s *SLOTracker) budgetRemainingLocked() float64 {
	bad, total := s.windowSums(s.cfg.Window)
	if total == 0 {
		return 1
	}
	return 1 - float64(bad)/(s.cfg.Target*float64(total))
}

// RuleStatus is the queryable state of one burn rule.
type RuleStatus struct {
	BurnRule
	BurnLong      float64 `json:"burn_long"`
	BurnShort     float64 `json:"burn_short"`
	Firing        bool    `json:"firing"`
	FirstFireTick uint64  `json:"first_fire_tick,omitempty"` // 1-based; 0 = never
}

// SLOStatus is a point-in-time summary of the tracker.
type SLOStatus struct {
	Target          float64      `json:"target"`
	Window          int          `json:"window"`
	Tick            uint64       `json:"tick"`
	Bad             uint64       `json:"bad_total"`
	Total           uint64       `json:"observations_total"`
	WindowBad       uint64       `json:"window_bad"`
	WindowTotal     uint64       `json:"window_observations"`
	BudgetRemaining float64      `json:"error_budget_remaining"`
	ActiveAlerts    int          `json:"active_alerts"`
	Transitions     uint64       `json:"alert_transitions"`
	Rules           []RuleStatus `json:"rules"`
}

// Status returns the current SLO state.
func (s *SLOTracker) Status() SLOStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	wb, wt := s.windowSums(s.cfg.Window)
	st := SLOStatus{
		Target: s.cfg.Target, Window: s.cfg.Window, Tick: s.tick,
		Bad: s.bad, Total: s.total, WindowBad: wb, WindowTotal: wt,
		BudgetRemaining: s.budgetRemainingLocked(),
		Transitions:     s.transitions,
		Rules:           make([]RuleStatus, len(s.cfg.Rules)),
	}
	for i, r := range s.cfg.Rules {
		lb, lt := s.windowSums(r.Long)
		sb, stot := s.windowSums(r.Short)
		st.Rules[i] = RuleStatus{
			BurnRule: r,
			BurnLong: s.burnRate(lb, lt), BurnShort: s.burnRate(sb, stot),
			Firing: s.firing[i], FirstFireTick: s.firstFire[i],
		}
		if s.firing[i] {
			st.ActiveAlerts++
		}
	}
	return st
}

// FirstFiring returns the earliest tick (1-based) at which any rule
// fired, and whether any rule has ever fired.
func (s *SLOTracker) FirstFiring() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first uint64
	for _, t := range s.firstFire {
		if t > 0 && (first == 0 || t < first) {
			first = t
		}
	}
	return first, first > 0
}

// History returns a copy of the retained alert transitions.
func (s *SLOTracker) History() []AlertEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]AlertEvent(nil), s.history...)
}

// Handler serves the SLO status as JSON (the /slo endpoint).
func (s *SLOTracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Status())
	})
}

// AlertsHandler serves the active alerts and bounded transition history
// as JSON (the /alerts endpoint).
func (s *SLOTracker) AlertsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		st := s.Status()
		active := make([]RuleStatus, 0, len(st.Rules))
		for _, r := range st.Rules {
			if r.Firing {
				active = append(active, r)
			}
		}
		history := s.History()
		if history == nil {
			history = []AlertEvent{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Active  []RuleStatus `json:"active"`
			History []AlertEvent `json:"history"`
		}{Active: active, History: history})
	})
}

// sloImage is the serialized tracker state. The window ring is stored
// oldest-first so the encoding is position-independent.
type sloImage struct {
	Target      float64
	Window      int
	Rules       []BurnRule
	Tick        uint64
	Bad, Total  uint64
	Slots       []sloSlot // oldest-first, up to Window entries
	Firing      []bool
	FirstFire   []uint64
	Transitions uint64
	History     []AlertEvent
}

// Save writes the tracker state as a deterministic gob image.
func (s *SLOTracker) Save(w io.Writer) error {
	s.mu.Lock()
	img := sloImage{
		Target: s.cfg.Target, Window: s.cfg.Window, Rules: s.cfg.Rules,
		Tick: s.tick, Bad: s.bad, Total: s.total,
		Firing:      append([]bool(nil), s.firing...),
		FirstFire:   append([]uint64(nil), s.firstFire...),
		Transitions: s.transitions,
		History:     append([]AlertEvent(nil), s.history...),
	}
	n := int(s.tick)
	if n > len(s.ring) {
		n = len(s.ring)
	}
	img.Slots = make([]sloSlot, n)
	for i := 0; i < n; i++ {
		img.Slots[i] = s.ring[(int(s.tick)-n+i+len(s.ring)*2)%len(s.ring)]
	}
	s.mu.Unlock()
	if err := gob.NewEncoder(w).Encode(img); err != nil {
		return fmt.Errorf("obs: saving SLO tracker: %w", err)
	}
	return nil
}

// Load replaces the tracker state with an image written by Save. The
// image's target, window and rules must match the receiver's config —
// a changed SLO definition invalidates the budget, so the caller should
// start fresh on error.
func (s *SLOTracker) Load(r io.Reader) error {
	var img sloImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return fmt.Errorf("obs: loading SLO tracker: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if img.Target != s.cfg.Target || img.Window != s.cfg.Window || len(img.Rules) != len(s.cfg.Rules) {
		return fmt.Errorf("obs: SLO snapshot config mismatch (target %v/%v, window %d/%d)",
			img.Target, s.cfg.Target, img.Window, s.cfg.Window)
	}
	for i, r := range img.Rules {
		if r != s.cfg.Rules[i] {
			return fmt.Errorf("obs: SLO snapshot rule %d mismatch: %+v vs %+v", i, r, s.cfg.Rules[i])
		}
	}
	if len(img.Firing) != len(s.cfg.Rules) || len(img.FirstFire) != len(s.cfg.Rules) ||
		len(img.Slots) > img.Window {
		return fmt.Errorf("obs: SLO snapshot shape invalid")
	}
	for i := range s.ring {
		s.ring[i] = sloSlot{}
	}
	// Replay the saved slots at their original ring positions so the
	// next tick continues exactly where the saved run stopped.
	n := len(img.Slots)
	for i, slot := range img.Slots {
		s.ring[(int(img.Tick)-n+i+len(s.ring)*2)%len(s.ring)] = slot
	}
	s.tick, s.bad, s.total = img.Tick, img.Bad, img.Total
	s.firing = append(s.firing[:0], img.Firing...)
	s.firstFire = append(s.firstFire[:0], img.FirstFire...)
	s.transitions = img.Transitions
	s.history = append(s.history[:0], img.History...)
	return nil
}
