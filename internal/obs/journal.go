package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Event is one structured entry in the journal: a scaling decision, an
// injected fault, a forecast-error report — anything an operator would
// want in a postmortem timeline.
type Event struct {
	// Seq is a monotonically increasing sequence number (1-based),
	// assigned at record time; gaps never occur, so Seq exposes how many
	// events a bounded journal has dropped.
	Seq uint64 `json:"seq"`
	// Time is the event timestamp — virtual time when recorded from the
	// simulator, wall time otherwise.
	Time time.Time `json:"time"`
	// Tenant labels which tenant's control loop emitted the event; empty
	// for process-wide events, so single-tenant output stays unchanged.
	Tenant string `json:"tenant,omitempty"`
	// Kind classifies the event ("scale", "violation", "fault",
	// "forecast_error", ...).
	Kind string `json:"kind"`
	// Msg is a human-readable one-liner.
	Msg string `json:"msg,omitempty"`
	// Fields carries the event's numeric payload.
	Fields map[string]float64 `json:"fields,omitempty"`
}

// Journal is a bounded ring buffer of Events: appends are O(1), memory is
// fixed at capacity, and the oldest entries are overwritten first. It is
// safe for concurrent use.
type Journal struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	count int
	seq   uint64
}

// DefaultJournal is the process-wide journal, exposed by the daemon at
// /journal.
var DefaultJournal = NewJournal(1024)

// NewJournal returns a journal holding at most capacity events.
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Record appends an event stamped with the current wall time.
func (j *Journal) Record(kind, msg string, fields map[string]float64) {
	j.RecordAt(time.Now().UTC(), kind, msg, fields)
}

// RecordAt appends an event with an explicit timestamp (virtual time from
// the simulator, a parsed log time during replay, ...). The fields map is
// copied, so callers may reuse theirs.
func (j *Journal) RecordAt(t time.Time, kind, msg string, fields map[string]float64) {
	j.RecordTenantAt(t, "", kind, msg, fields)
}

// RecordTenantAt is RecordAt with a tenant label, for control planes that
// drive many tenants through one journal (the fleet controller) or a
// daemon that wants its tenant id on every event.
func (j *Journal) RecordTenantAt(t time.Time, tenant, kind, msg string, fields map[string]float64) {
	var copied map[string]float64
	if len(fields) > 0 {
		copied = make(map[string]float64, len(fields))
		for k, v := range fields {
			copied[k] = v
		}
	}
	j.mu.Lock()
	j.seq++
	j.buf[j.next] = Event{Seq: j.seq, Time: t, Tenant: tenant, Kind: kind, Msg: msg, Fields: copied}
	j.next = (j.next + 1) % len(j.buf)
	if j.count < len(j.buf) {
		j.count++
	}
	j.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.count)
	start := j.next - j.count
	if start < 0 {
		start += len(j.buf)
	}
	for i := 0; i < j.count; i++ {
		out = append(out, j.buf[(start+i)%len(j.buf)])
	}
	return out
}

// Len returns how many events are currently retained.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.count
}

// Cap returns the journal capacity.
func (j *Journal) Cap() int { return len(j.buf) }

// Total returns how many events were ever recorded.
func (j *Journal) Total() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Dropped returns how many events the ring has overwritten.
func (j *Journal) Dropped() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq - uint64(j.count)
}

// journalExport is the JSON shape served by Handler.
type journalExport struct {
	Capacity int     `json:"capacity"`
	Total    uint64  `json:"total"`
	Dropped  uint64  `json:"dropped"`
	Events   []Event `json:"events"`
}

// EventsFiltered returns the retained events matching kind (empty
// matches all) with Seq > sinceSeq, oldest first. sinceSeq makes the
// journal a resumable cursor: postmortem tooling passes the last Seq it
// saw instead of re-paging the full ring.
func (j *Journal) EventsFiltered(kind string, sinceSeq uint64) []Event {
	return j.EventsFilteredTenant("", kind, sinceSeq)
}

// EventsFilteredTenant is EventsFiltered additionally restricted to one
// tenant's events (empty tenant matches all).
func (j *Journal) EventsFilteredTenant(tenant, kind string, sinceSeq uint64) []Event {
	events := j.Events()
	if tenant == "" && kind == "" && sinceSeq == 0 {
		return events
	}
	out := events[:0]
	for _, e := range events {
		if e.Seq > sinceSeq && (kind == "" || e.Kind == kind) && (tenant == "" || e.Tenant == tenant) {
			out = append(out, e)
		}
	}
	return out
}

// Handler returns an http.Handler serving the journal as JSON. Query
// parameters filter the events: ?kind= matches the event kind,
// ?tenant= matches the tenant label, and ?since_seq= returns only
// events with a larger sequence number.
func (j *Journal) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := req.URL.Query()
		var sinceSeq uint64
		if raw := q.Get("since_seq"); raw != "" {
			v, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				http.Error(w, "bad since_seq: "+err.Error(), http.StatusBadRequest)
				return
			}
			sinceSeq = v
		}
		export := journalExport{
			Capacity: j.Cap(),
			Total:    j.Total(),
			Dropped:  j.Dropped(),
			Events:   j.EventsFilteredTenant(q.Get("tenant"), q.Get("kind"), sinceSeq),
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(export); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
