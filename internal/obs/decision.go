package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Binding constraint labels: which constraint pinned a planned node
// count at one step.
const (
	// BindingDemand: the allocation is the ceiling forced by the driving
	// workload value (quantile, point forecast, or window statistic).
	BindingDemand = "demand"
	// BindingFloor: the one-node minimum bound, not demand, set the
	// allocation (the driving value was non-positive).
	BindingFloor = "floor"
	// BindingRateLimit: the anti-thrashing rate limit overrode the
	// demand-driven allocation.
	BindingRateLimit = "rate-limit"
)

// DefaultTenant is the tenant id of a single-tenant control plane: the
// daemon, the evaluation harness and the experiment runner stamp their
// records with it unless told otherwise, so the schema carries the field
// everywhere while single-tenant output stays stable.
const DefaultTenant = "default"

// Decision is the structured "why did we scale?" record of one planning
// round: everything needed to audit an allocation against its forecast
// inputs. Strategies fill the plan-shaped fields; the evaluation harness
// and the daemon stamp Step, Time, PrevNodes and Delta before recording.
type Decision struct {
	// Seq is assigned at record time, monotone across the process.
	Seq uint64 `json:"seq"`
	// Time is the virtual time of the planning round.
	Time time.Time `json:"time"`
	// Tenant labels which tenant the round planned for. Single-tenant
	// control loops use DefaultTenant.
	Tenant string `json:"tenant,omitempty"`
	// Strategy names the strategy that produced the plan.
	Strategy string `json:"strategy"`
	// Step is the series index of the planning origin; the round covers
	// steps [Step, Step+Horizon).
	Step int `json:"step"`
	// Horizon is the number of planned steps.
	Horizon int `json:"horizon"`
	// Theta is the per-node workload threshold in effect.
	Theta float64 `json:"theta"`
	// PrevNodes is the allocation in effect before the round.
	PrevNodes int `json:"prev_nodes"`
	// Nodes is the planned allocation per step.
	Nodes []int `json:"nodes"`
	// Delta is the first planned allocation minus PrevNodes.
	Delta int `json:"delta"`
	// U is the per-step uncertainty metric (Equation 8), when the
	// strategy computes it (adaptive, staircase).
	U []float64 `json:"u,omitempty"`
	// Tau is the per-step quantile level that bounded the allocation,
	// when the strategy is quantile-driven.
	Tau []float64 `json:"tau,omitempty"`
	// Tau1 and Tau2 are the optimistic and conservative levels of the
	// adaptive pair (equal for the single-level robust strategy; base
	// and top rung for the staircase).
	Tau1 float64 `json:"tau1,omitempty"`
	Tau2 float64 `json:"tau2,omitempty"`
	// Rho is the uncertainty threshold that escalates Tau1 to Tau2
	// (first rung for the staircase).
	Rho float64 `json:"rho,omitempty"`
	// Quantile is the per-step workload value that drove the allocation:
	// the forecast at Tau[t] for quantile strategies, the point forecast
	// for predictive ones, the window statistic for reactive ones.
	Quantile []float64 `json:"quantile,omitempty"`
	// Binding is the per-step binding constraint (Binding* labels).
	Binding []string `json:"binding,omitempty"`
	// Degraded names the guard degradation mode that produced this plan
	// ("repair", "last-known-good", "reactive"); empty for a normal round.
	Degraded string `json:"degraded,omitempty"`
	// DegradedReason says why the guard left normal mode, e.g. the
	// forecaster error or calibration breach that triggered the fallback.
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Shed is how many nodes fleet admission control clipped from the
	// plan's first step when aggregate demand exceeded the shared pool;
	// zero for unconstrained or single-tenant rounds.
	Shed int `json:"shed,omitempty"`
	// ShedReason labels why the plan was clipped ("pool-exhausted",
	// "quarantine", ...); set whenever Shed > 0 and for quarantined
	// rounds even when the clip removed nothing.
	ShedReason string `json:"shed_reason,omitempty"`
}

// Covers reports whether the round planned the given series step.
func (d *Decision) Covers(step int) bool {
	return step >= d.Step && step < d.Step+len(d.Nodes)
}

// Explain renders the human-readable audit line for one planned step:
// the node transition, the bounding quantile against the previous
// capacity, and — for uncertainty-aware strategies — whether U crossed
// rho and escalated the quantile level.
func (d *Decision) Explain(step int) string {
	i := step - d.Step
	if i < 0 || i >= len(d.Nodes) {
		return fmt.Sprintf("step %d outside round [%d, %d) of %s", step, d.Step, d.Step+len(d.Nodes), d.Strategy)
	}
	prev := d.PrevNodes
	if i > 0 {
		prev = d.Nodes[i-1]
	}
	cur := d.Nodes[i]
	var b strings.Builder
	fmt.Fprintf(&b, "step %d [%s] ", step, d.Strategy)
	if cur == prev {
		fmt.Fprintf(&b, "held %d nodes", cur)
	} else {
		fmt.Fprintf(&b, "scaled %d -> %d", prev, cur)
	}
	if i < len(d.Quantile) {
		name := fmt.Sprintf("demand(t+%d)", i)
		if i < len(d.Tau) {
			name = fmt.Sprintf("q%g(t+%d)", d.Tau[i], i)
		}
		q := d.Quantile[i]
		capacity := float64(prev) * d.Theta
		rel := "<="
		if q > capacity {
			rel = ">"
		}
		fmt.Fprintf(&b, " because %s=%.6g %s capacity(%d)=%.6g", name, q, rel, prev, capacity)
	}
	if i < len(d.U) && i < len(d.Tau) && d.Rho > 0 {
		if d.U[i] >= d.Rho {
			fmt.Fprintf(&b, ", U=%.3g >= rho=%.3g so tau escalated to %g", d.U[i], d.Rho, d.Tau[i])
		} else {
			fmt.Fprintf(&b, ", U=%.3g < rho=%.3g so tau stayed at %g", d.U[i], d.Rho, d.Tau[i])
		}
	}
	if i < len(d.Binding) && d.Binding[i] != BindingDemand {
		fmt.Fprintf(&b, " [binding: %s]", d.Binding[i])
	}
	if d.Degraded != "" {
		fmt.Fprintf(&b, " [degraded: %s", d.Degraded)
		if d.DegradedReason != "" {
			fmt.Fprintf(&b, " — %s", d.DegradedReason)
		}
		b.WriteString("]")
	}
	if d.Shed > 0 || d.ShedReason != "" {
		fmt.Fprintf(&b, " [shed: %d node", d.Shed)
		if d.Shed != 1 {
			b.WriteString("s")
		}
		if d.ShedReason != "" {
			fmt.Fprintf(&b, " — %s", d.ShedReason)
		}
		b.WriteString("]")
	}
	return b.String()
}

// DecisionStore is a bounded ring of Decisions, the queryable companion
// to the journal: appends are O(1), memory is fixed at capacity, oldest
// records are overwritten first. Safe for concurrent use.
//
// Like the Tracer, a store starts disabled: capture sites (the scaler
// strategies and scaler.RecordDecision) check Enabled before assembling
// records, so an unobserved evaluation loop pays one atomic load per
// planning round. Record itself never checks — the gate is advisory for
// producers, not a lock on the data structure.
type DecisionStore struct {
	enabled atomic.Bool

	mu       sync.Mutex
	capacity int
	buf      []Decision // allocated on first Record
	next     int
	count    int
	seq      uint64
}

// SetEnabled switches decision capture on or off. Safe on a nil store.
func (s *DecisionStore) SetEnabled(v bool) {
	if s != nil {
		s.enabled.Store(v)
	}
}

// Enabled reports whether capture sites should assemble and record
// decisions into this store.
func (s *DecisionStore) Enabled() bool { return s != nil && s.enabled.Load() }

// DefaultDecisions is the process-wide decision store, served by the
// daemon at /decisions.
var DefaultDecisions = NewDecisionStore(512)

// NewDecisionStore returns a store holding at most capacity decisions.
// The ring is allocated on first Record: decisions are pointer-rich, so
// an idle store (the library default) adds nothing to the GC scan set.
func NewDecisionStore(capacity int) *DecisionStore {
	if capacity < 1 {
		capacity = 1
	}
	return &DecisionStore{capacity: capacity}
}

// Record appends a copy of the decision, assigning and returning its
// sequence number. Slice contents are copied into buffers recycled from
// the overwritten ring slot, so the caller keeps ownership of its slices
// and steady-state recording allocates nothing once the ring has filled.
func (s *DecisionStore) Record(d Decision) uint64 {
	s.mu.Lock()
	if s.buf == nil {
		s.buf = make([]Decision, s.capacity)
	}
	s.seq++
	slot := &s.buf[s.next]
	nodes, u, tau, quantile, binding := slot.Nodes, slot.U, slot.Tau, slot.Quantile, slot.Binding
	*slot = d
	slot.Seq = s.seq
	slot.Nodes = append(nodes[:0], d.Nodes...)
	slot.U = append(u[:0], d.U...)
	slot.Tau = append(tau[:0], d.Tau...)
	slot.Quantile = append(quantile[:0], d.Quantile...)
	slot.Binding = append(binding[:0], d.Binding...)
	s.next = (s.next + 1) % len(s.buf)
	if s.count < len(s.buf) {
		s.count++
	}
	seq := s.seq
	s.mu.Unlock()
	return seq
}

// clone deep-copies a slot so readers never alias the recycled slice
// buffers a later Record will overwrite.
func (d Decision) clone() Decision {
	d.Nodes = append([]int(nil), d.Nodes...)
	d.U = append([]float64(nil), d.U...)
	d.Tau = append([]float64(nil), d.Tau...)
	d.Quantile = append([]float64(nil), d.Quantile...)
	d.Binding = append([]string(nil), d.Binding...)
	return d
}

// Decisions returns the retained records, oldest first.
func (s *DecisionStore) Decisions() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.locked(func(Decision) bool { return true })
}

// Filter returns the retained records whose strategy matches (empty
// matches all) and whose planned step range [Step, Step+Horizon)
// intersects [from, to]; to < 0 leaves the range open above.
func (s *DecisionStore) Filter(strategy string, from, to int) []Decision {
	return s.FilterTenant("", strategy, from, to)
}

// FilterTenant is Filter additionally restricted to one tenant's records
// (empty tenant matches all).
func (s *DecisionStore) FilterTenant(tenant, strategy string, from, to int) []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.locked(func(d Decision) bool {
		if tenant != "" && d.Tenant != tenant {
			return false
		}
		if strategy != "" && d.Strategy != strategy {
			return false
		}
		if d.Step+len(d.Nodes) <= from {
			return false
		}
		if to >= 0 && d.Step > to {
			return false
		}
		return true
	})
}

// locked collects matching records oldest-first; callers hold s.mu.
func (s *DecisionStore) locked(match func(Decision) bool) []Decision {
	out := make([]Decision, 0, s.count)
	start := s.next - s.count
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.count; i++ {
		d := s.buf[(start+i)%len(s.buf)]
		if match(d) {
			out = append(out, d.clone())
		}
	}
	return out
}

// At returns the most recent decision whose round covers the given
// series step.
func (s *DecisionStore) At(step int) (Decision, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.count; i++ {
		idx := s.next - 1 - i
		if idx < 0 {
			idx += len(s.buf)
		}
		if d := s.buf[idx]; d.Covers(step) {
			return d.clone(), true
		}
	}
	return Decision{}, false
}

// Latest returns the most recently recorded decision.
func (s *DecisionStore) Latest() (Decision, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return Decision{}, false
	}
	idx := s.next - 1
	if idx < 0 {
		idx += len(s.buf)
	}
	return s.buf[idx].clone(), true
}

// Len returns how many decisions are currently retained.
func (s *DecisionStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Cap returns the store capacity.
func (s *DecisionStore) Cap() int { return s.capacity }

// Total returns how many decisions were ever recorded.
func (s *DecisionStore) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Dropped returns how many decisions the ring has overwritten.
func (s *DecisionStore) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq - uint64(s.count)
}

// Reset discards all retained decisions and the sequence counter; tests
// use it to isolate runs against the process-wide store.
func (s *DecisionStore) Reset() {
	s.mu.Lock()
	s.next, s.count, s.seq = 0, 0, 0
	s.mu.Unlock()
}

// decisionExport is the JSON shape served by Handler.
type decisionExport struct {
	Capacity  int        `json:"capacity"`
	Total     uint64     `json:"total"`
	Dropped   uint64     `json:"dropped"`
	Decisions []Decision `json:"decisions"`
}

// Handler returns an http.Handler serving the store as JSON. Query
// parameters filter the records: ?strategy= matches the strategy name,
// ?tenant= matches the tenant label, ?from= and ?to= bound the planned
// step range.
func (s *DecisionStore) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := req.URL.Query()
		from, to := 0, -1
		if raw := q.Get("from"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil {
				http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
				return
			}
			from = v
		}
		if raw := q.Get("to"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil {
				http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
				return
			}
			to = v
		}
		export := decisionExport{
			Capacity:  s.Cap(),
			Total:     s.Total(),
			Dropped:   s.Dropped(),
			Decisions: s.FilterTenant(q.Get("tenant"), q.Get("strategy"), from, to),
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(export); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
