package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

func sloTestConfig() SLOConfig {
	return SLOConfig{
		Target: 0.01,
		Window: 48,
		Rules: []BurnRule{
			{Name: "page", Factor: 10, Long: 6, Short: 2},
			{Name: "ticket", Factor: 3, Long: 24, Short: 6},
		},
	}
}

func sloTime(tick int) time.Time {
	return time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(tick) * 10 * time.Minute)
}

func TestSLOTrackerBurnRateFiring(t *testing.T) {
	s := NewSLOTracker(sloTestConfig())
	// 10 clean ticks of 100 observations: no alert.
	for i := 0; i < 10; i++ {
		s.ObserveAt(sloTime(i), 0, 100)
	}
	if st := s.Status(); st.ActiveAlerts != 0 || st.BudgetRemaining != 1 {
		t.Fatalf("clean run: %+v", st)
	}
	// A sustained breach: 20% bad is a 20x burn, above both factors.
	tick := 10
	for i := 0; i < 6; i++ {
		s.ObserveAt(sloTime(tick), 20, 100)
		tick++
	}
	st := s.Status()
	if st.ActiveAlerts != 2 {
		t.Fatalf("both rules should fire under 20x burn: %+v", st)
	}
	first, ok := s.FirstFiring()
	if !ok {
		t.Fatal("FirstFiring reports no alert")
	}
	// The ticket rule fires first: at tick 12 its long window (24,
	// clamped to the 12 observed ticks) holds 40 bad of 1200, a
	// (40/1200)/0.01 = 3.33x burn ≥ 3, and its short window (6) reads
	// 6.67x; at tick 11 the long burn was only 1.82x.
	if first != 12 {
		t.Errorf("first firing tick = %d, want 12", first)
	}
	if st.BudgetRemaining >= 0 {
		t.Errorf("budget should be overspent, got %v", st.BudgetRemaining)
	}
	// Recovery: clean ticks push the short windows clean; both resolve.
	for i := 0; i < 30; i++ {
		s.ObserveAt(sloTime(tick), 0, 100)
		tick++
	}
	st = s.Status()
	if st.ActiveAlerts != 0 {
		t.Fatalf("alerts should resolve after recovery: %+v", st)
	}
	if st.Transitions < 4 {
		t.Errorf("expected >= 4 transitions (2 fire + 2 resolve), got %d", st.Transitions)
	}
	hist := s.History()
	if len(hist) < 4 || !hist[0].Firing || hist[len(hist)-1].Firing {
		t.Errorf("history should start with a fire and end with a resolve: %+v", hist)
	}
}

func TestSLOTrackerDeterministicReruns(t *testing.T) {
	run := func() SLOStatus {
		s := NewSLOTracker(sloTestConfig())
		for i := 0; i < 100; i++ {
			bad := uint64(0)
			if i%7 == 3 || (i > 40 && i < 55) {
				bad = uint64(5 + i%13)
			}
			s.ObserveAt(sloTime(i), bad, 100)
		}
		return s.Status()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("rerun status differs:\n%+v\nvs\n%+v", a, b)
	}
}

func TestSLOTrackerJournalEvents(t *testing.T) {
	j := NewJournal(32)
	s := NewSLOTracker(sloTestConfig())
	s.Journal = j
	s.Tenant = "t00042"
	for i := 0; i < 8; i++ {
		s.ObserveAt(sloTime(i), 50, 100)
	}
	events := j.EventsFilteredTenant("t00042", "alert", 0)
	if len(events) < 2 {
		t.Fatalf("expected alert journal events, got %+v", events)
	}
	if events[0].Fields["factor"] == 0 || events[0].Fields["tick"] == 0 {
		t.Errorf("alert event missing fields: %+v", events[0])
	}
}

func TestSLOTrackerSaveLoadResumes(t *testing.T) {
	observe := func(s *SLOTracker, from, to int) {
		for i := from; i < to; i++ {
			bad := uint64(0)
			if i >= 30 && i < 44 {
				bad = 25
			}
			s.ObserveAt(sloTime(i), bad, 100)
		}
	}
	// Uninterrupted reference run.
	ref := NewSLOTracker(sloTestConfig())
	observe(ref, 0, 60)

	// Interrupted run: save at tick 35 (mid-breach), restore, continue.
	a := NewSLOTracker(sloTestConfig())
	observe(a, 0, 35)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewSLOTracker(sloTestConfig())
	if err := b.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	observe(b, 35, 60)

	rs, bs := ref.Status(), b.Status()
	if !reflect.DeepEqual(rs, bs) {
		t.Fatalf("restored run diverged:\n%+v\nvs\n%+v", rs, bs)
	}
	ff1, _ := ref.FirstFiring()
	ff2, _ := b.FirstFiring()
	if ff1 != ff2 {
		t.Errorf("first firing tick diverged: %d vs %d", ff1, ff2)
	}

	// Config mismatch must be rejected.
	mismatch := NewSLOTracker(SLOConfig{Target: 0.05, Window: 48, Rules: sloTestConfig().Rules})
	if err := mismatch.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected config-mismatch error")
	}
}

func TestSLOHandlers(t *testing.T) {
	s := NewSLOTracker(sloTestConfig())
	for i := 0; i < 10; i++ {
		s.ObserveAt(sloTime(i), 30, 100)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st SLOStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Target != 0.01 || st.Tick != 10 || len(st.Rules) != 2 || st.ActiveAlerts == 0 {
		t.Errorf("slo status: %+v", st)
	}

	asrv := httptest.NewServer(s.AlertsHandler())
	defer asrv.Close()
	aresp, err := http.Get(asrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	var alerts struct {
		Active  []RuleStatus `json:"active"`
		History []AlertEvent `json:"history"`
	}
	if err := json.NewDecoder(aresp.Body).Decode(&alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts.Active) == 0 || len(alerts.History) == 0 {
		t.Errorf("alerts payload: %+v", alerts)
	}
}

func TestParseBurnRules(t *testing.T) {
	rules, err := ParseBurnRules("page=14.4x:6/1,ticket=6x:36/3")
	if err != nil {
		t.Fatal(err)
	}
	want := []BurnRule{
		{Name: "page", Factor: 14.4, Long: 6, Short: 1},
		{Name: "ticket", Factor: 6, Long: 36, Short: 3},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Errorf("parsed %+v, want %+v", rules, want)
	}
	if rules, err = ParseBurnRules("2x:10/2"); err != nil || rules[0].Name != "rule0" {
		t.Errorf("unnamed rule: %+v, %v", rules, err)
	}
	for _, bad := range []string{"", "x:6/1", "page=14.4x:1/6", "3x:nope/1", "3x:6-1"} {
		if _, err := ParseBurnRules(bad); err == nil {
			t.Errorf("ParseBurnRules(%q) should fail", bad)
		}
	}
}

func TestDefaultBurnRules(t *testing.T) {
	rules := DefaultBurnRules(288)
	if len(rules) != 2 || rules[0].Name != "page" || rules[1].Name != "ticket" {
		t.Fatalf("default rules: %+v", rules)
	}
	for _, r := range rules {
		if r.Short < 1 || r.Long < r.Short || r.Long > 288 {
			t.Errorf("rule %+v violates window constraints", r)
		}
	}
	// A tiny window still yields valid (degenerate) rules.
	for _, r := range DefaultBurnRules(1) {
		if r.Short != 1 || r.Long != 1 {
			t.Errorf("window-1 rule %+v should clamp to 1/1", r)
		}
	}
}

func TestHealthEndpoints(t *testing.T) {
	h := NewHealth()
	live := httptest.NewServer(h.LiveHandler())
	ready := httptest.NewServer(h.ReadyHandler())
	defer live.Close()
	defer ready.Close()

	if resp, err := http.Get(live.URL); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ready.URL); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before ready: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	h.SetReady(true)
	if resp, err := http.Get(ready.URL); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after ready: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if !h.Ready() {
		t.Error("Ready() should report true")
	}
}
