package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %v, want 5", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter add did not panic")
		}
	}()
	NewRegistry().Counter("c_total", "help").Add(-1)
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "help")
	b := r.Counter("same_total", "other help ignored")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	va := r.CounterVec("vec_total", "help", "k")
	vb := r.CounterVec("vec_total", "help", "k")
	if va.With("x") != vb.With("x") {
		t.Error("re-registered vec returned a different child")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("m", "help")
}

// TestConcurrentUpdates hammers every instrument type from many
// goroutines; run under -race this pins the lock-cheap hot paths as
// race-clean, and the totals check pins them as lossless.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	g := r.Gauge("g", "help")
	h := r.Histogram("h_seconds", "help", []float64{1, 2, 4})
	vec := r.CounterVec("v_total", "help", "k")

	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := vec.With("shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 5))
				child.Inc()
			}
		}(w)
	}
	wg.Wait()

	const want = workers * perWorker
	if got := c.Value(); got != want {
		t.Errorf("counter = %v, want %v", got, want)
	}
	if got := g.Value(); got != want {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %v, want %v", got, want)
	}
	if got := vec.With("shared").Value(); got != want {
		t.Errorf("vec counter = %v, want %v", got, want)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 7} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	// Boundary values land in the bucket they equal (le is inclusive).
	if cum[0] != 2 || cum[1] != 4 || cum[2] != 5 {
		t.Errorf("cumulative buckets = %v, want [2 4 5]", cum)
	}
	if count != 6 {
		t.Errorf("count = %d, want 6", count)
	}
	if sum != 15 {
		t.Errorf("sum = %v, want 15", sum)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", nil)
	if len(h.bounds) != len(LatencyBuckets) {
		t.Errorf("default bucket count = %d, want %d", len(h.bounds), len(LatencyBuckets))
	}
}

// TestPrometheusExpositionGolden pins the exact text format: family and
// child ordering, HELP/TYPE lines, label quoting, histogram buckets.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "Last alphabetically.").Add(3)
	gv := r.GaugeVec("cov", "Coverage by level.", "tau")
	gv.With("0.9").Set(0.875)
	gv.With("0.5").Set(0.5)
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP cov Coverage by level.
# TYPE cov gauge
cov{tau="0.5"} 0.5
cov{tau="0.9"} 0.875
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 2.55
lat_seconds_count 3
# HELP z_total Last alphabetically.
# TYPE z_total counter
z_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerServesTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "help").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}

	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}

func TestBadBucketsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted buckets did not panic")
		}
	}()
	NewRegistry().Histogram("h", "help", []float64{1, 1})
}
