package obs

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Checkpoint images of the bounded rings. Persisting the journal and
// decision store keeps the postmortem timeline continuous across a
// restart: an operator debugging a crash can see the rounds that led
// into it, not just the rounds after recovery.

// journalState is the gob image of a Journal: the total sequence
// counter plus the retained events oldest-first.
type journalState struct {
	Seq    uint64
	Events []Event
}

// Save writes the retained events and sequence counter.
func (j *Journal) Save(w io.Writer) error {
	st := journalState{Seq: j.Total(), Events: j.Events()}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("obs: saving journal: %w", err)
	}
	return nil
}

// Load restores a journal saved by Save into the receiver, preserving
// the receiver's capacity: when the snapshot holds more events than the
// ring, only the newest fit and the rest count as dropped (Seq gaps
// stay visible, exactly as if the ring had overwritten them live).
func (j *Journal) Load(r io.Reader) error {
	var st journalState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("obs: loading journal: %w", err)
	}
	if uint64(len(st.Events)) > st.Seq {
		return fmt.Errorf("obs: journal snapshot holds %d events for sequence %d", len(st.Events), st.Seq)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	events := st.Events
	if len(events) > len(j.buf) {
		events = events[len(events)-len(j.buf):]
	}
	for i := range j.buf {
		j.buf[i] = Event{}
	}
	copy(j.buf, events)
	j.next = len(events) % len(j.buf)
	j.count = len(events)
	j.seq = st.Seq
	return nil
}

// decisionState is the gob image of a DecisionStore.
type decisionState struct {
	Seq       uint64
	Decisions []Decision
}

// Save writes the retained decisions and sequence counter.
func (s *DecisionStore) Save(w io.Writer) error {
	st := decisionState{Seq: s.Total(), Decisions: s.Decisions()}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("obs: saving decisions: %w", err)
	}
	return nil
}

// Load restores a store saved by Save into the receiver, trimming to
// the receiver's capacity as Journal.Load does. The enable gate is not
// part of the snapshot — the restarted process decides capture itself.
func (s *DecisionStore) Load(r io.Reader) error {
	var st decisionState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("obs: loading decisions: %w", err)
	}
	if uint64(len(st.Decisions)) > st.Seq {
		return fmt.Errorf("obs: decision snapshot holds %d records for sequence %d", len(st.Decisions), st.Seq)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	decisions := st.Decisions
	if len(decisions) > s.capacity {
		decisions = decisions[len(decisions)-s.capacity:]
	}
	s.buf = make([]Decision, s.capacity)
	copy(s.buf, decisions)
	s.next = len(decisions) % s.capacity
	s.count = len(decisions)
	s.seq = st.Seq
	return nil
}
