package obs

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

func TestJournalSaveLoadRoundTrip(t *testing.T) {
	j := NewJournal(8)
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 12; i++ { // overflow the ring so seq > count
		j.RecordAt(base.Add(time.Duration(i)*time.Minute), "scale", "event", map[string]float64{"i": float64(i)})
	}
	var buf bytes.Buffer
	if err := j.Save(&buf); err != nil {
		t.Fatal(err)
	}
	j2 := NewJournal(8)
	if err := j2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if j2.Total() != j.Total() || j2.Dropped() != j.Dropped() {
		t.Fatalf("totals: got (%d, %d), want (%d, %d)", j2.Total(), j2.Dropped(), j.Total(), j.Dropped())
	}
	if !reflect.DeepEqual(j2.Events(), j.Events()) {
		t.Fatalf("events differ:\n got %+v\nwant %+v", j2.Events(), j.Events())
	}
	// The restored ring keeps rotating correctly.
	j2.RecordAt(base.Add(time.Hour), "scale", "after", nil)
	events := j2.Events()
	if events[len(events)-1].Seq != 13 {
		t.Fatalf("post-restore seq = %d, want 13", events[len(events)-1].Seq)
	}
}

func TestJournalLoadTrimsToCapacity(t *testing.T) {
	j := NewJournal(16)
	for i := 0; i < 10; i++ {
		j.Record("k", "e", nil)
	}
	var buf bytes.Buffer
	if err := j.Save(&buf); err != nil {
		t.Fatal(err)
	}
	small := NewJournal(4)
	if err := small.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if small.Len() != 4 || small.Total() != 10 {
		t.Fatalf("trimmed journal: len=%d total=%d, want 4/10", small.Len(), small.Total())
	}
	events := small.Events()
	if events[0].Seq != 7 || events[3].Seq != 10 {
		t.Fatalf("trimmed to wrong tail: %+v", events)
	}
}

func TestDecisionStoreSaveLoadRoundTrip(t *testing.T) {
	s := NewDecisionStore(4)
	for i := 0; i < 6; i++ { // overflow the ring
		s.Record(Decision{
			Strategy: "robust", Step: i * 12, Horizon: 12, Theta: 6,
			PrevNodes: i, Nodes: []int{i + 1, i + 2},
			Tau: []float64{0.9, 0.9}, Binding: []string{BindingDemand, BindingFloor},
		})
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewDecisionStore(4)
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Total() != s.Total() || s2.Len() != s.Len() {
		t.Fatalf("counters: got (%d, %d), want (%d, %d)", s2.Total(), s2.Len(), s.Total(), s.Len())
	}
	if !reflect.DeepEqual(s2.Decisions(), s.Decisions()) {
		t.Fatalf("decisions differ:\n got %+v\nwant %+v", s2.Decisions(), s.Decisions())
	}
	// Sequence numbering continues where the checkpointed process left
	// off, and the query surface works on restored records.
	if seq := s2.Record(Decision{Strategy: "robust", Step: 72, Nodes: []int{9}}); seq != 7 {
		t.Fatalf("post-restore seq = %d, want 7", seq)
	}
	if d, ok := s2.At(60); !ok || d.PrevNodes != 5 {
		t.Fatalf("At(60) = (%+v, %v)", d, ok)
	}
}

func TestDecisionStoreLoadRejectsGarbage(t *testing.T) {
	if err := NewDecisionStore(4).Load(bytes.NewBufferString("junk")); err == nil {
		t.Error("garbage should fail")
	}
	if err := NewJournal(4).Load(bytes.NewBufferString("junk")); err == nil {
		t.Error("garbage should fail")
	}
}
