package obs

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// DefaultSketchAlpha is the relative accuracy the health plane uses for
// its distribution sketches: every quantile estimate is within ±1% of
// the true sample value at that rank.
const DefaultSketchAlpha = 0.01

// sketchZeroCutoff is the magnitude below which an observation counts as
// exactly zero. Log-bucketed sketches cannot index arbitrarily small
// values with bounded memory; anything this small is zero for every
// signal the control plane tracks (rates, costs, latencies).
const sketchZeroCutoff = 1e-12

// Sketch is a deterministic, mergeable quantile sketch with bounded
// relative error (DDSketch-style). Observations land in logarithmic
// buckets of width γ = (1+α)/(1-α); a quantile query returns the bucket
// midpoint, which is within ±α of the true sample value at that rank.
// Memory is O(distinct buckets) — for α = 1%, a signal spanning six
// decades needs under 700 buckets — independent of the observation
// count, so a 10k-tenant fleet can keep per-shard distributions without
// ever materializing (or sorting) per-tenant slices.
//
// Two sketches with the same α merge exactly: Merge adds bucket counts,
// so Observe-then-Merge in any grouping yields the same buckets as
// observing everything into one sketch. All methods are safe for
// concurrent use; determinism of query results requires only that the
// multiset of observations is deterministic (order never matters).
type Sketch struct {
	mu    sync.Mutex
	alpha float64
	gamma float64 // (1+α)/(1-α)
	lnG   float64 // ln(γ), cached for indexing
	zero  uint64  // observations with |v| <= sketchZeroCutoff
	pos   map[int32]uint64
	neg   map[int32]uint64
	count uint64
	sum   float64
	min   float64
	max   float64
}

// NewSketch returns an empty sketch with the given relative accuracy
// α ∈ (0, 1); out-of-range values panic (a programming error, like a
// bad histogram bucket grid).
func NewSketch(alpha float64) *Sketch {
	if !(alpha > 0 && alpha < 1) {
		panic(fmt.Sprintf("obs: sketch relative accuracy %v outside (0, 1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha: alpha, gamma: gamma, lnG: math.Log(gamma),
		pos: map[int32]uint64{}, neg: map[int32]uint64{},
	}
}

// RelativeAccuracy returns the sketch's configured α.
func (s *Sketch) RelativeAccuracy() float64 { return s.alpha }

// key maps a positive magnitude to its bucket index: bucket i covers
// (γ^(i-1), γ^i], so the midpoint estimator 2γ^i/(γ+1) is within ±α of
// every value in the bucket.
func (s *Sketch) key(v float64) int32 {
	return int32(math.Ceil(math.Log(v) / s.lnG))
}

// value returns the midpoint estimate of bucket i, clamped to the
// finite range (the MaxFloat64 bucket's upper edge overflows).
func (s *Sketch) value(key int32) float64 {
	v := 2 * math.Pow(s.gamma, float64(key)) / (s.gamma + 1)
	if math.IsInf(v, 1) {
		return math.MaxFloat64
	}
	return v
}

// Observe records one value. NaN is ignored (a poisoned sample must not
// poison the distribution); ±Inf are clamped into the extreme buckets of
// the largest finite magnitude.
func (s *Sketch) Observe(v float64) { s.ObserveN(v, 1) }

// ObserveN records a value n times in O(1).
func (s *Sketch) ObserveN(v float64, n uint64) {
	if n == 0 || math.IsNaN(v) {
		return
	}
	if math.IsInf(v, 0) {
		v = math.Copysign(math.MaxFloat64, v)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count += n
	s.sum += v * float64(n)
	switch {
	case v > sketchZeroCutoff:
		s.pos[s.key(v)] += n
	case v < -sketchZeroCutoff:
		s.neg[s.key(-v)] += n
	default:
		s.zero += n
	}
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Sum returns the sum of all observations.
func (s *Sketch) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum
}

// Min returns the smallest observation (0 when empty).
func (s *Sketch) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Sketch) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Buckets returns how many distinct buckets the sketch occupies — its
// memory footprint in units of one (key, count) pair.
func (s *Sketch) Buckets() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.pos) + len(s.neg)
	if s.zero > 0 {
		n++
	}
	return n
}

// Merge folds another sketch into the receiver. Both must share the
// same relative accuracy; merging is exact (bucket counts add), so the
// result is independent of how observations were grouped.
func (s *Sketch) Merge(o *Sketch) error {
	if s == o {
		return fmt.Errorf("obs: cannot merge a sketch into itself")
	}
	snap := o.Snapshot()
	if snap.Alpha != s.alpha {
		return fmt.Errorf("obs: merging sketch with relative accuracy %v into %v", snap.Alpha, s.alpha)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap.Count == 0 {
		return nil
	}
	if s.count == 0 || snap.Min < s.min {
		s.min = snap.Min
	}
	if s.count == 0 || snap.Max > s.max {
		s.max = snap.Max
	}
	s.count += snap.Count
	s.sum += snap.Sum
	s.zero += snap.Zero
	for i, k := range snap.PosKeys {
		s.pos[k] += snap.PosCounts[i]
	}
	for i, k := range snap.NegKeys {
		s.neg[k] += snap.NegCounts[i]
	}
	return nil
}

// Quantile returns the estimate for q ∈ [0, 1]; see Percentile.
func (s *Sketch) Quantile(q float64) float64 { return s.Percentile(q * 100) }

// Percentile returns the nearest-rank percentile estimate (p in
// (0, 100]), using the same rank rule as a sorted-slice nearest-rank
// percentile — rank = round(p/100·n) − 1, clamped — so the sketch answer
// is within ±α (relative) of the exact sorted-based answer for the same
// sample. Returns 0 on an empty sketch.
func (s *Sketch) Percentile(p float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	rank := int64(p/100*float64(s.count)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= int64(s.count) {
		rank = int64(s.count) - 1
	}
	// Ascending walk: negative buckets from the largest magnitude down,
	// then zero, then positive buckets up.
	var cum int64
	negKeys := sortedKeys(s.neg)
	for i := len(negKeys) - 1; i >= 0; i-- {
		cum += int64(s.neg[negKeys[i]])
		if cum > rank {
			return -s.value(negKeys[i])
		}
	}
	cum += int64(s.zero)
	if cum > rank {
		return 0
	}
	posKeys := sortedKeys(s.pos)
	for _, k := range posKeys {
		cum += int64(s.pos[k])
		if cum > rank {
			return s.value(k)
		}
	}
	return s.max // unreachable unless counts drifted; fail soft
}

func sortedKeys(m map[int32]uint64) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// SketchSnapshot is a point-in-time copy of a sketch's buckets with keys
// sorted ascending — deterministic, directly serializable, and the gob
// image Save writes (map iteration order never leaks into the encoding).
type SketchSnapshot struct {
	Alpha     float64
	Count     uint64
	Sum       float64
	Min, Max  float64
	Zero      uint64
	PosKeys   []int32
	PosCounts []uint64
	NegKeys   []int32
	NegCounts []uint64
}

// Snapshot returns a deterministic copy of the sketch contents.
func (s *Sketch) Snapshot() SketchSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SketchSnapshot{
		Alpha: s.alpha, Count: s.count, Sum: s.sum,
		Min: s.min, Max: s.max, Zero: s.zero,
	}
	snap.PosKeys = sortedKeys(s.pos)
	snap.PosCounts = make([]uint64, len(snap.PosKeys))
	for i, k := range snap.PosKeys {
		snap.PosCounts[i] = s.pos[k]
	}
	snap.NegKeys = sortedKeys(s.neg)
	snap.NegCounts = make([]uint64, len(snap.NegKeys))
	for i, k := range snap.NegKeys {
		snap.NegCounts[i] = s.neg[k]
	}
	return snap
}

// Save writes the sketch as a deterministic gob image.
func (s *Sketch) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s.Snapshot()); err != nil {
		return fmt.Errorf("obs: saving sketch: %w", err)
	}
	return nil
}

// Load replaces the receiver's contents with a snapshot written by Save.
// The snapshot's relative accuracy must match the receiver's.
func (s *Sketch) Load(r io.Reader) error {
	var snap SketchSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("obs: loading sketch: %w", err)
	}
	if snap.Alpha != s.alpha {
		return fmt.Errorf("obs: sketch snapshot has relative accuracy %v, receiver %v", snap.Alpha, s.alpha)
	}
	if len(snap.PosKeys) != len(snap.PosCounts) || len(snap.NegKeys) != len(snap.NegCounts) {
		return fmt.Errorf("obs: sketch snapshot keys/counts length mismatch")
	}
	pos := make(map[int32]uint64, len(snap.PosKeys))
	for i, k := range snap.PosKeys {
		pos[k] = snap.PosCounts[i]
	}
	neg := make(map[int32]uint64, len(snap.NegKeys))
	for i, k := range snap.NegKeys {
		neg[k] = snap.NegCounts[i]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zero, s.count, s.sum = snap.Zero, snap.Count, snap.Sum
	s.min, s.max = snap.Min, snap.Max
	s.pos, s.neg = pos, neg
	return nil
}
