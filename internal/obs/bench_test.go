package obs

import (
	"testing"
	"time"
)

// The benchmarks below bound the per-operation cost of the hot-path
// instruments; DESIGN.md §5 relates them to the control-loop step cost to
// justify the always-on instrumentation (<2% overhead).

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c_total", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("c_total", "help")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "help", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "help", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0042)
		}
	})
}

func BenchmarkVecWithLookup(b *testing.B) {
	v := NewRegistry().CounterVec("v_total", "help", "k")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("stage").Inc()
	}
}

func BenchmarkJournalRecord(b *testing.B) {
	j := NewJournal(1024)
	now := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	fields := map[string]float64{"from": 3, "to": 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.RecordAt(now, "scale", "scale 3 -> 5", fields)
	}
}
