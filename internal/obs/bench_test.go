package obs

import (
	"testing"
	"time"
)

// The benchmarks below bound the per-operation cost of the hot-path
// instruments; DESIGN.md §5 relates them to the control-loop step cost to
// justify the always-on instrumentation (<2% overhead).

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c_total", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("c_total", "help")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "help", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "help", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0042)
		}
	})
}

func BenchmarkVecWithLookup(b *testing.B) {
	v := NewRegistry().CounterVec("v_total", "help", "k")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("stage").Inc()
	}
}

func BenchmarkJournalRecord(b *testing.B) {
	j := NewJournal(1024)
	now := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	fields := map[string]float64{"from": 3, "to": 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.RecordAt(now, "scale", "scale 3 -> 5", fields)
	}
}

// BenchmarkSpanEnabled bounds the per-span recording cost: two monotonic
// clock reads plus one ring-slot write under a short critical section.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(16384)
	tr.SetEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("plan-round")
		sp.End()
	}
}

// BenchmarkSpanDisabled is the price every instrumented site pays when no
// one is watching: one atomic load per Start and a nil check per End.
func BenchmarkSpanDisabled(b *testing.B) {
	tr := NewTracer(16384)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("plan-round")
		sp.End()
	}
}

func BenchmarkSpanEnabledParallel(b *testing.B) {
	tr := NewTracer(16384)
	tr.SetEnabled(true)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sp := tr.StartTID("work", WorkerTID0)
			sp.End()
		}
	})
}

// BenchmarkDecisionRecord bounds the cost of recording one planning
// round's decision (slices are owned by the caller, not copied).
func BenchmarkDecisionRecord(b *testing.B) {
	s := NewDecisionStore(512)
	d := Decision{
		Strategy: "tft-adaptive-0.7/0.99", Step: 100, Horizon: 3, Theta: 100,
		PrevNodes: 3, Nodes: []int{4, 7, 7}, Delta: 1,
		U: []float64{0.05, 0.14, 0.2}, Tau: []float64{0.7, 0.99, 0.99},
		Tau1: 0.7, Tau2: 0.99, Rho: 0.11,
		Quantile: []float64{390, 681, 612},
		Binding:  []string{BindingDemand, BindingDemand, BindingDemand},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Record(d)
	}
}
