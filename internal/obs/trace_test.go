package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestTracerDisabledRecordsNothing(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start("plan-round")
	sp.End()
	sp = tr.StartTID("deepar.sample", WorkerTID0)
	sp.EndVirtual(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Errorf("disabled tracer recorded %d spans (%d total)", tr.Len(), tr.Total())
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.SetEnabled(true)
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.Start("x")
	sp.End()
	sp.EndVirtual(time.Now())
	var zero Span
	zero.End()
}

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer(8)
	tr.SetEnabled(true)
	vt := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	sp := tr.Start("plan-round")
	sp.EndVirtual(vt)
	sp = tr.StartTID("deepar.sample", WorkerTID0+3)
	sp.End()
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("retained %d spans, want 2", len(events))
	}
	if events[0].Name != "plan-round" || events[0].TID != ControlTID || !events[0].VT.Equal(vt) {
		t.Errorf("control span = %+v", events[0])
	}
	if events[1].Name != "deepar.sample" || events[1].TID != WorkerTID0+3 || !events[1].VT.IsZero() {
		t.Errorf("worker span = %+v", events[1])
	}
	for i, ev := range events {
		if ev.Start < 0 || ev.Dur < 0 {
			t.Errorf("span %d has negative offsets: %+v", i, ev)
		}
	}
}

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(4)
	tr.SetEnabled(true)
	for i := 0; i < 10; i++ {
		tr.Start("s").End()
	}
	if tr.Len() != 4 || tr.Cap() != 4 || tr.Total() != 10 || tr.Dropped() != 6 {
		t.Errorf("len/cap/total/dropped = %d/%d/%d/%d, want 4/4/10/6",
			tr.Len(), tr.Cap(), tr.Total(), tr.Dropped())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Errorf("reset left len/total/dropped = %d/%d/%d", tr.Len(), tr.Total(), tr.Dropped())
	}
}

// TestTracerConcurrent exercises concurrent open/close from many
// goroutines — the shape of parallel worker instrumentation — and runs
// under -race in CI.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(256)
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.StartTID("work", uint64(WorkerTID0+worker))
				sp.End()
				if i%32 == 0 {
					tr.Events()
					tr.SetEnabled(true)
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Total() != 1600 {
		t.Errorf("total = %d, want 1600", tr.Total())
	}
}

// chromeEvent mirrors the fields a Chrome trace consumer requires.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   *float64          `json:"ts"`
	Dur  *float64          `json:"dur"`
	PID  *int              `json:"pid"`
	TID  *uint64           `json:"tid"`
	Args map[string]string `json:"args"`
}

func decodeChrome(t *testing.T, data []byte) []chromeEvent {
	t.Helper()
	var out struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	return out.TraceEvents
}

func TestWriteChromeSchema(t *testing.T) {
	tr := NewTracer(64)
	tr.SetEnabled(true)
	vt := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		sp := tr.Start("plan-round")
		sp.EndVirtual(vt.Add(time.Duration(i) * time.Hour))
	}
	sp0 := tr.StartTID("sample", WorkerTID0)
	sp1 := tr.StartTID("sample", WorkerTID0+1)
	sp1.End()
	sp0.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	events := decodeChrome(t, buf.Bytes())

	var spans, metas int
	lastTS := map[uint64]float64{}
	for i, ev := range events {
		switch ev.Ph {
		case "M":
			metas++
			if ev.Name != "thread_name" || ev.Args["name"] == "" {
				t.Errorf("event %d: bad metadata %+v", i, ev)
			}
		case "X":
			spans++
			if ev.TS == nil || ev.Dur == nil || ev.PID == nil || ev.TID == nil {
				t.Fatalf("event %d: missing required ph/ts/dur/pid/tid fields: %+v", i, ev)
			}
			if *ev.TS < lastTS[*ev.TID] {
				t.Errorf("event %d: ts %v not monotone on tid %d", i, *ev.TS, *ev.TID)
			}
			lastTS[*ev.TID] = *ev.TS
		default:
			t.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	if spans != 5 {
		t.Errorf("exported %d span events, want 5", spans)
	}
	if metas != 3 { // control + two worker rows
		t.Errorf("exported %d thread_name rows, want 3", metas)
	}
	// The virtual-time stamp round-trips through args.
	var stamped int
	for _, ev := range events {
		if ev.Ph == "X" && ev.Args["vt"] != "" {
			if _, err := time.Parse(time.RFC3339Nano, ev.Args["vt"]); err != nil {
				t.Errorf("bad vt stamp %q: %v", ev.Args["vt"], err)
			}
			stamped++
		}
	}
	if stamped != 3 {
		t.Errorf("%d spans carry a vt stamp, want 3", stamped)
	}
}

func TestTracerHandler(t *testing.T) {
	tr := NewTracer(8)
	tr.SetEnabled(true)
	tr.Start("plan-round").End()
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	events := decodeChrome(t, buf.Bytes())
	if len(events) == 0 {
		t.Error("handler served an empty trace")
	}

	post, err := http.Post(srv.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}

func TestWriteChromeFile(t *testing.T) {
	tr := NewTracer(8)
	tr.SetEnabled(true)
	tr.Start("plan-round").End()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteChromeFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if events := decodeChrome(t, data); len(events) != 2 { // meta + span
		t.Errorf("file holds %d events, want 2", len(events))
	}
}
