package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestJournalWraparound(t *testing.T) {
	j := NewJournal(4)
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 1; i <= 10; i++ {
		j.RecordAt(base.Add(time.Duration(i)*time.Minute), "scale", fmt.Sprintf("event %d", i), map[string]float64{"i": float64(i)})
	}
	events := j.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Fields["i"] != float64(wantSeq) {
			t.Errorf("event %d payload = %v, want %d", i, e.Fields["i"], wantSeq)
		}
	}
	if j.Total() != 10 || j.Dropped() != 6 || j.Len() != 4 || j.Cap() != 4 {
		t.Errorf("total/dropped/len/cap = %d/%d/%d/%d, want 10/6/4/4", j.Total(), j.Dropped(), j.Len(), j.Cap())
	}
}

func TestJournalCopiesFields(t *testing.T) {
	j := NewJournal(2)
	fields := map[string]float64{"nodes": 3}
	j.Record("scale", "up", fields)
	fields["nodes"] = 99
	if got := j.Events()[0].Fields["nodes"]; got != 3 {
		t.Errorf("journal shares the caller's fields map: %v", got)
	}
}

func TestJournalConcurrentRecord(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Record("k", "m", nil)
				j.Events()
			}
		}()
	}
	wg.Wait()
	if j.Total() != 1600 {
		t.Errorf("total = %d, want 1600", j.Total())
	}
}

func TestJournalHandler(t *testing.T) {
	j := NewJournal(8)
	j.RecordAt(time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC), "fault", "killed 1 node", map[string]float64{"killed": 1})
	srv := httptest.NewServer(j.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var export struct {
		Capacity int     `json:"capacity"`
		Total    uint64  `json:"total"`
		Dropped  uint64  `json:"dropped"`
		Events   []Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&export); err != nil {
		t.Fatal(err)
	}
	if export.Capacity != 8 || export.Total != 1 || export.Dropped != 0 {
		t.Errorf("export meta = %+v", export)
	}
	if len(export.Events) != 1 || export.Events[0].Kind != "fault" || export.Events[0].Fields["killed"] != 1 {
		t.Errorf("export events = %+v", export.Events)
	}

	post, err := http.Post(srv.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}

func TestJournalEventsFiltered(t *testing.T) {
	j := NewJournal(8)
	j.Record("scale", "up", nil)
	j.Record("violation", "breach", nil)
	j.Record("scale", "down", nil)

	if got := j.EventsFiltered("", 0); len(got) != 3 {
		t.Errorf("unfiltered kept %d, want 3", len(got))
	}
	got := j.EventsFiltered("scale", 0)
	if len(got) != 2 || got[0].Msg != "up" || got[1].Msg != "down" {
		t.Errorf("kind filter = %+v", got)
	}
	if got := j.EventsFiltered("", 2); len(got) != 1 || got[0].Seq != 3 {
		t.Errorf("since_seq filter = %+v", got)
	}
	if got := j.EventsFiltered("violation", 2); len(got) != 0 {
		t.Errorf("combined filter = %+v", got)
	}
}

func TestJournalHandlerFilters(t *testing.T) {
	j := NewJournal(8)
	j.Record("scale", "up", nil)
	j.Record("violation", "breach", nil)
	j.Record("scale", "down", nil)
	srv := httptest.NewServer(j.Handler())
	defer srv.Close()

	var export struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	get := func(query string) int {
		resp, err := http.Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		export.Events = nil
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&export); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	if code := get("?kind=scale"); code != http.StatusOK || len(export.Events) != 2 {
		t.Errorf("kind filter: code %d, %d events", code, len(export.Events))
	}
	// Total still reports the whole journal even when the view is filtered.
	if export.Total != 3 {
		t.Errorf("filtered total = %d, want 3", export.Total)
	}
	if code := get("?since_seq=1&kind=scale"); code != http.StatusOK ||
		len(export.Events) != 1 || export.Events[0].Msg != "down" {
		t.Errorf("combined filter: code %d, %+v", code, export.Events)
	}
	if code := get("?since_seq=banana"); code != http.StatusBadRequest {
		t.Errorf("bad since_seq: code %d, want 400", code)
	}
}

func TestJournalHandlerTenantFilter(t *testing.T) {
	j := NewJournal(8)
	now := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	j.RecordTenantAt(now, "t00001", "scale", "up", nil)
	j.RecordTenantAt(now, "t00002", "scale", "up", nil)
	j.RecordTenantAt(now, "t00001", "alert", "page firing", nil)
	j.RecordTenantAt(now, "", "scale", "down", nil)
	srv := httptest.NewServer(j.Handler())
	defer srv.Close()

	var export struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	get := func(query string) int {
		resp, err := http.Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		export.Events = nil
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&export); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	if code := get("?tenant=t00001"); code != http.StatusOK || len(export.Events) != 2 {
		t.Fatalf("tenant filter: code %d, %d events", code, len(export.Events))
	}
	for _, e := range export.Events {
		if e.Tenant != "t00001" {
			t.Errorf("tenant filter leaked event %+v", e)
		}
	}
	if code := get("?tenant=t00001&kind=alert"); code != http.StatusOK ||
		len(export.Events) != 1 || export.Events[0].Msg != "page firing" {
		t.Errorf("tenant+kind filter: code %d, %+v", code, export.Events)
	}
	if code := get("?tenant=t00001&since_seq=1"); code != http.StatusOK ||
		len(export.Events) != 1 || export.Events[0].Kind != "alert" {
		t.Errorf("tenant+since_seq filter: code %d, %+v", code, export.Events)
	}
	if code := get("?tenant=t99999"); code != http.StatusOK || len(export.Events) != 0 {
		t.Errorf("unknown tenant: code %d, %d events", code, len(export.Events))
	}
	// No tenant param returns all events, whatever their tenant label.
	if code := get(""); code != http.StatusOK || len(export.Events) != 4 {
		t.Errorf("unfiltered: code %d, %d events", code, len(export.Events))
	}
}
