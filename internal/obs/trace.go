package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trace rows (Chrome trace "thread ids"). The sequential control loop —
// plan rounds, forecast/optimize/apply stages — records on ControlTID;
// parallel worker spans record on WorkerTID0+worker so fan-out phases
// render as side-by-side lanes in Perfetto.
const (
	ControlTID = 1
	WorkerTID0 = 2
)

// SpanEvent is one completed span: a named interval on a trace row.
// Offsets are monotonic-clock durations since the tracer's epoch, so
// subtraction artifacts from wall-clock adjustments cannot occur.
type SpanEvent struct {
	// Name identifies the operation ("plan-round", "forecast", ...).
	// Names are a small fixed vocabulary, never per-item strings, so
	// recording allocates nothing beyond the ring slot.
	Name string
	// TID is the trace row (ControlTID or WorkerTID0+worker).
	TID uint64
	// Start is the span's start offset from the tracer epoch.
	Start time.Duration
	// Dur is the span's duration.
	Dur time.Duration
	// VT is an optional virtual-time stamp (the simulation clock at span
	// end); zero when the span was not tied to simulated time.
	VT time.Time
}

// Tracer is a bounded, lock-cheap span recorder. Disabled (the default)
// it costs one atomic load per Start and a nil check per End; enabled,
// a span is two monotonic clock reads plus a short critical section
// writing one ring slot. Completed spans are exported as Chrome
// trace-event JSON loadable in Perfetto or chrome://tracing.
//
// The zero *Tracer is valid and permanently disabled, so instrumented
// code never needs a nil guard.
type Tracer struct {
	enabled atomic.Bool
	epoch   time.Time

	mu       sync.Mutex
	capacity int
	buf      []SpanEvent // allocated on first record
	next     int
	count    int
	total    uint64
}

// DefaultTracer is the process-wide tracer, served by the daemon at
// /trace. It starts disabled; the daemon enables it when an
// observability listener or a -trace-out file is requested.
var DefaultTracer = NewTracer(16384)

// NewTracer returns a disabled tracer retaining at most capacity spans.
// The ring is allocated when the first span completes: span events carry
// pointers (name, virtual-time stamp), so a tracer that never records —
// the library default — adds nothing to the GC scan set.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{epoch: time.Now(), capacity: capacity}
}

// SetEnabled switches span recording on or off. Safe on a nil tracer.
func (tr *Tracer) SetEnabled(v bool) {
	if tr != nil {
		tr.enabled.Store(v)
	}
}

// Enabled reports whether spans are being recorded.
func (tr *Tracer) Enabled() bool { return tr != nil && tr.enabled.Load() }

// Span is an open interval returned by Start. The zero Span (from a nil
// or disabled tracer) is valid: End is a nil check and nothing more.
type Span struct {
	tr    *Tracer
	name  string
	tid   uint64
	start time.Duration
}

// Start opens a span on the control row.
func (tr *Tracer) Start(name string) (s Span) {
	if tr != nil && tr.enabled.Load() {
		s = tr.startSpan(name, ControlTID)
	}
	return
}

// StartTID opens a span on an explicit trace row; parallel workers use
// WorkerTID0+worker so their spans render as separate lanes.
func (tr *Tracer) StartTID(name string, tid uint64) (s Span) {
	if tr != nil && tr.enabled.Load() {
		s = tr.startSpan(name, tid)
	}
	return
}

// startSpan is the enabled half of StartTID, kept out of line (one extra
// call on the enabled path, which is dominated by the clock read anyway)
// so the disabled path — a nil check and an atomic load — inlines into
// hot loops.
//
//go:noinline
func (tr *Tracer) startSpan(name string, tid uint64) Span {
	return Span{tr: tr, name: name, tid: tid, start: time.Since(tr.epoch)}
}

// End completes the span and records it.
func (s Span) End() { s.EndVirtual(time.Time{}) }

// Active reports whether End will record this span, letting hot loops
// skip work that exists only to feed it (e.g. the virtual-time lookup
// for EndVirtual).
func (s Span) Active() bool { return s.tr != nil }

// EndVirtual completes the span and stamps it with a virtual-time
// timestamp (the simulation clock), mirroring Journal.RecordAt: the
// span's duration is always wall time, but the stamp ties it back to
// workload chronology.
func (s Span) EndVirtual(vt time.Time) {
	if s.tr == nil {
		return
	}
	end := time.Since(s.tr.epoch)
	s.tr.record(SpanEvent{Name: s.name, TID: s.tid, Start: s.start, Dur: end - s.start, VT: vt})
}

func (tr *Tracer) record(ev SpanEvent) {
	tr.mu.Lock()
	if tr.buf == nil {
		tr.buf = make([]SpanEvent, tr.capacity)
	}
	tr.total++
	tr.buf[tr.next] = ev
	tr.next = (tr.next + 1) % len(tr.buf)
	if tr.count < len(tr.buf) {
		tr.count++
	}
	tr.mu.Unlock()
}

// Events returns the retained spans in completion order, oldest first.
func (tr *Tracer) Events() []SpanEvent {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]SpanEvent, 0, tr.count)
	start := tr.next - tr.count
	if start < 0 {
		start += len(tr.buf)
	}
	for i := 0; i < tr.count; i++ {
		out = append(out, tr.buf[(start+i)%len(tr.buf)])
	}
	return out
}

// Len returns how many spans are currently retained.
func (tr *Tracer) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.count
}

// Cap returns the tracer capacity.
func (tr *Tracer) Cap() int { return tr.capacity }

// Total returns how many spans were ever recorded.
func (tr *Tracer) Total() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}

// Dropped returns how many spans the ring has overwritten.
func (tr *Tracer) Dropped() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total - uint64(tr.count)
}

// Reset discards all retained spans and the drop accounting; tests use
// it to isolate runs against the process-wide tracer.
func (tr *Tracer) Reset() {
	tr.mu.Lock()
	tr.next, tr.count, tr.total = 0, 0, 0
	tr.mu.Unlock()
}

// chromeSpan is one complete ("ph":"X") event of the Chrome trace-event
// format; ts and dur are microseconds.
type chromeSpan struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeMeta is a metadata ("ph":"M") event naming a trace row.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args"`
}

// chromeTrace is the JSON-object form of the trace-event format.
type chromeTrace struct {
	TraceEvents     []interface{} `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders the retained spans as Chrome trace-event JSON:
// one "X" (complete) event per span sorted by start offset — so ts is
// monotone within every tid — preceded by "M" thread_name metadata for
// each trace row. The output loads directly in Perfetto.
func (tr *Tracer) WriteChrome(w io.Writer) error {
	events := tr.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].Start < events[j].Start })

	tids := make([]uint64, 0, 8)
	seen := map[uint64]bool{}
	for _, ev := range events {
		if !seen[ev.TID] {
			seen[ev.TID] = true
			tids = append(tids, ev.TID)
		}
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]interface{}, 0, len(events)+len(tids))}
	for _, tid := range tids {
		name := fmt.Sprintf("worker-%d", tid-WorkerTID0)
		if tid == ControlTID {
			name = "control"
		}
		out.TraceEvents = append(out.TraceEvents, chromeMeta{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]string{"name": name},
		})
	}
	for _, ev := range events {
		span := chromeSpan{
			Name: ev.Name, Cat: "robustscale", Ph: "X",
			TS:  float64(ev.Start) / float64(time.Microsecond),
			Dur: float64(ev.Dur) / float64(time.Microsecond),
			PID: 1, TID: ev.TID,
		}
		if !ev.VT.IsZero() {
			span.Args = map[string]string{"vt": ev.VT.Format(time.RFC3339Nano)}
		}
		out.TraceEvents = append(out.TraceEvents, span)
	}
	return json.NewEncoder(w).Encode(out)
}

// WriteChromeFile writes the Chrome trace to a file (the daemon's
// -trace-out flag).
func (tr *Tracer) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Handler returns an http.Handler serving the Chrome trace JSON.
func (tr *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteChrome(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
