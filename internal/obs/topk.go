package obs

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"
)

// TopEntry is one heavy hitter reported by TopK. Count is the tracked
// weight; Err bounds its overestimate — the true weight lies in
// [Count-Err, Count].
type TopEntry struct {
	Key   string
	Count float64
	Err   float64
}

// TopK tracks the heaviest keys in a weighted stream with the
// space-saving algorithm: at most k counters live at once, and when a
// new key arrives at capacity it inherits (and errs by) the smallest
// tracked count. Any key whose true weight exceeds total/k is
// guaranteed to be present. Eviction is deterministic — ties on the
// minimum count evict the lexicographically greatest key — so the
// tracked set depends only on the observation sequence, never on map
// iteration order. Safe for concurrent use.
type TopK struct {
	mu      sync.Mutex
	k       int
	entries map[string]*topEntry
}

type topEntry struct {
	count float64
	err   float64
}

// NewTopK returns a tracker keeping at most k keys; k < 1 panics.
func NewTopK(k int) *TopK {
	if k < 1 {
		panic(fmt.Sprintf("obs: top-k capacity %d < 1", k))
	}
	return &TopK{k: k, entries: make(map[string]*topEntry, k)}
}

// K returns the tracker capacity.
func (t *TopK) K() int { return t.k }

// Observe adds weight w for key. Non-positive weights are ignored.
func (t *TopK) Observe(key string, w float64) {
	if w <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[key]; ok {
		e.count += w
		return
	}
	if len(t.entries) < t.k {
		t.entries[key] = &topEntry{count: w}
		return
	}
	// Evict the minimum-count entry; on ties the lexicographically
	// greatest key loses, making eviction a total order.
	var victim string
	var min float64
	first := true
	for k2, e := range t.entries {
		if first || e.count < min || (e.count == min && k2 > victim) {
			victim, min, first = k2, e.count, false
		}
	}
	delete(t.entries, victim)
	t.entries[key] = &topEntry{count: min + w, err: min}
}

// Top returns up to n entries sorted by count descending, key ascending
// on ties. n <= 0 or n > k returns all tracked entries.
func (t *TopK) Top(n int) []TopEntry {
	t.mu.Lock()
	out := make([]TopEntry, 0, len(t.entries))
	for k, e := range t.entries {
		out = append(out, TopEntry{Key: k, Count: e.count, Err: e.err})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// topKImage is the deterministic serialized form: entries sorted the
// same way Top sorts them.
type topKImage struct {
	K       int
	Entries []TopEntry
}

// Save writes the tracker as a deterministic gob image.
func (t *TopK) Save(w io.Writer) error {
	t.mu.Lock()
	k := t.k
	t.mu.Unlock()
	img := topKImage{K: k, Entries: t.Top(0)}
	if err := gob.NewEncoder(w).Encode(img); err != nil {
		return fmt.Errorf("obs: saving top-k: %w", err)
	}
	return nil
}

// Load replaces the tracker contents with an image written by Save.
// Entries beyond the receiver's capacity are dropped heaviest-first.
func (t *TopK) Load(r io.Reader) error {
	var img topKImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return fmt.Errorf("obs: loading top-k: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	entries := make(map[string]*topEntry, t.k)
	for _, e := range img.Entries {
		if len(entries) >= t.k {
			break
		}
		entries[e.Key] = &topEntry{count: e.Count, err: e.Err}
	}
	t.entries = entries
	return nil
}
