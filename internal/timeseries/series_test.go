package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSeriesBasics(t *testing.T) {
	s := New("test", t0, DefaultStep, []float64{1, 2, 3, 4, 5})
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if got := s.At(2); got != 3 {
		t.Errorf("At(2) = %v, want 3", got)
	}
	if got := s.TimeAt(3); !got.Equal(t0.Add(30 * time.Minute)) {
		t.Errorf("TimeAt(3) = %v, want %v", got, t0.Add(30*time.Minute))
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := s.Std(); !almostEqual(got, math.Sqrt(2), 1e-12) {
		t.Errorf("Std = %v, want sqrt(2)", got)
	}
}

func TestSeriesZeroStepDefaults(t *testing.T) {
	s := New("x", t0, 0, nil)
	if s.Step != DefaultStep {
		t.Errorf("Step = %v, want default %v", s.Step, DefaultStep)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New("x", t0, DefaultStep, []float64{1, 2, 3})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestSliceAndLast(t *testing.T) {
	s := New("x", t0, DefaultStep, []float64{0, 1, 2, 3, 4, 5})
	sl := s.Slice(2, 5)
	if sl.Len() != 3 || sl.At(0) != 2 {
		t.Errorf("Slice(2,5) = %v", sl.Values)
	}
	if !sl.Start.Equal(t0.Add(20 * time.Minute)) {
		t.Errorf("Slice start = %v", sl.Start)
	}
	last := s.Last(2)
	if last.Len() != 2 || last.At(0) != 4 {
		t.Errorf("Last(2) = %v", last.Values)
	}
	if whole := s.Last(100); whole.Len() != 6 {
		t.Errorf("Last(100) = %d values, want all 6", whole.Len())
	}
}

func TestEmptySeriesStats(t *testing.T) {
	s := New("empty", t0, DefaultStep, nil)
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Std()) || !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty series stats should be NaN")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty series Min/Max should be infinities")
	}
}

func TestQuantile(t *testing.T) {
	s := New("x", t0, DefaultStep, []float64{4, 1, 3, 2, 5})
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Out-of-range clamps.
	if got := s.Quantile(-0.5); got != 1 {
		t.Errorf("Quantile(-0.5) = %v, want 1", got)
	}
	if got := s.Quantile(1.5); got != 5 {
		t.Errorf("Quantile(1.5) = %v, want 5", got)
	}
}

func TestQuantileMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			vals = append(vals, math.Mod(v, 1e6))
		}
		if len(vals) == 0 {
			return true
		}
		s := New("q", t0, DefaultStep, vals)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := s.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	good := New("ok", t0, DefaultStep, []float64{1, 2})
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	bad := New("nan", t0, DefaultStep, []float64{1, math.NaN()})
	if err := bad.Validate(); err == nil {
		t.Error("Validate should reject NaN")
	}
	inf := New("inf", t0, DefaultStep, []float64{math.Inf(1)})
	if err := inf.Validate(); err == nil {
		t.Error("Validate should reject Inf")
	}
	badStep := &Series{Name: "step", Start: t0, Step: -1, Values: []float64{1}}
	if err := badStep.Validate(); err == nil {
		t.Error("Validate should reject non-positive step")
	}
}

func TestSplit(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := New("x", t0, DefaultStep, vals)
	train, val, test, err := s.Split(0.7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 70 || val.Len() != 10 || test.Len() != 20 {
		t.Errorf("split sizes = %d/%d/%d", train.Len(), val.Len(), test.Len())
	}
	// Chronological contiguity.
	if train.At(train.Len()-1)+1 != val.At(0) || val.At(val.Len()-1)+1 != test.At(0) {
		t.Error("split partitions are not contiguous")
	}
	if _, _, _, err := s.Split(0.9, 0.2); err == nil {
		t.Error("Split should reject fractions summing >= 1")
	}
	if _, _, _, err := s.Split(0, 0.1); err == nil {
		t.Error("Split should reject zero train fraction")
	}
}

func TestDiff(t *testing.T) {
	s := New("x", t0, DefaultStep, []float64{1, 4, 9, 16, 25})
	d1 := s.Diff(1)
	want := []float64{3, 5, 7, 9}
	if d1.Len() != 4 {
		t.Fatalf("Diff(1) len = %d", d1.Len())
	}
	for i, w := range want {
		if d1.At(i) != w {
			t.Errorf("Diff(1)[%d] = %v, want %v", i, d1.At(i), w)
		}
	}
	d2 := s.Diff(2)
	for i := 0; i < d2.Len(); i++ {
		if d2.At(i) != 2 {
			t.Errorf("Diff(2)[%d] = %v, want 2", i, d2.At(i))
		}
	}
	if !d1.Start.Equal(t0.Add(DefaultStep)) {
		t.Errorf("Diff(1) start = %v", d1.Start)
	}
	tiny := New("t", t0, DefaultStep, []float64{5})
	if got := tiny.Diff(1); got.Len() != 0 {
		t.Errorf("Diff on length-1 series should be empty, got %v", got.Values)
	}
}

func TestWindows(t *testing.T) {
	vals := make([]float64, 20)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := New("x", t0, DefaultStep, vals)
	ws, err := s.Windows(5, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Origins: 5, 9, 13, 17 (17+3 = 20 fits).
	if len(ws) != 4 {
		t.Fatalf("got %d windows, want 4", len(ws))
	}
	w := ws[1]
	if w.Origin != 9 {
		t.Errorf("Origin = %d, want 9", w.Origin)
	}
	if w.Context[0] != 4 || w.Context[4] != 8 {
		t.Errorf("Context = %v", w.Context)
	}
	if w.Target[0] != 9 || w.Target[2] != 11 {
		t.Errorf("Target = %v", w.Target)
	}
	if _, err := s.Windows(18, 5, 1); err != ErrTooShort {
		t.Errorf("Windows on short series: err = %v, want ErrTooShort", err)
	}
	if _, err := s.Windows(0, 3, 1); err == nil {
		t.Error("Windows should reject non-positive context")
	}
}

func TestWindowsPropertyAlignment(t *testing.T) {
	f := func(seed uint8) bool {
		n := 30 + int(seed)%40
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i)
		}
		s := New("p", t0, DefaultStep, vals)
		ctx, h, stride := 4+int(seed)%5, 2+int(seed)%4, 1+int(seed)%3
		ws, err := s.Windows(ctx, h, stride)
		if err != nil {
			return false
		}
		for _, w := range ws {
			// Values are their own indices, so alignment is checkable.
			if int(w.Context[len(w.Context)-1]) != w.Origin-1 {
				return false
			}
			if int(w.Target[0]) != w.Origin {
				return false
			}
			if len(w.Context) != ctx || len(w.Target) != h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
