package timeseries

import (
	"math"
	"math/rand"
	"testing"
)

func seasonalSeries(n, period int, noise float64, seed int64) *Series {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 100 + 20*math.Sin(2*math.Pi*float64(i)/float64(period)) + rng.NormFloat64()*noise
	}
	return New("seasonal", t0, DefaultStep, vals)
}

func TestACFBasics(t *testing.T) {
	s := seasonalSeries(600, 48, 1, 1)
	acf, err := ACF(s, 96)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 {
		t.Errorf("acf[0] = %v", acf[0])
	}
	// Strong positive correlation at the period, negative at half-period.
	if acf[48] < 0.8 {
		t.Errorf("acf[period] = %v", acf[48])
	}
	if acf[24] > -0.5 {
		t.Errorf("acf[period/2] = %v, want strongly negative", acf[24])
	}
}

func TestACFValidation(t *testing.T) {
	s := seasonalSeries(50, 10, 1, 2)
	if _, err := ACF(s, 0); err == nil {
		t.Error("zero lag should fail")
	}
	if _, err := ACF(s, 50); err == nil {
		t.Error("lag >= length should fail")
	}
}

func TestACFConstantSeries(t *testing.T) {
	s := New("const", t0, DefaultStep, []float64{5, 5, 5, 5, 5, 5})
	acf, err := ACF(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 || acf[1] != 0 {
		t.Errorf("constant ACF = %v", acf)
	}
}

func TestDetectPeriod(t *testing.T) {
	s := seasonalSeries(800, 48, 2, 3)
	period, err := DetectPeriod(s, 2, 120, 0)
	if err != nil {
		t.Fatal(err)
	}
	if period != 48 {
		t.Errorf("period = %d, want 48", period)
	}
}

func TestDetectPeriodNoSeasonality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	s := New("noise", t0, DefaultStep, vals)
	period, err := DetectPeriod(s, 2, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if period != 0 {
		t.Errorf("period = %d on white noise, want 0", period)
	}
	if _, err := DetectPeriod(s, 10, 5, 0); err == nil {
		t.Error("empty range should fail")
	}
}

func TestCharacterize(t *testing.T) {
	smooth := seasonalSeries(800, 48, 1, 5)
	vol, err := Characterize(smooth, 120)
	if err != nil {
		t.Fatal(err)
	}
	if vol.Period != 48 {
		t.Errorf("period = %d", vol.Period)
	}
	if vol.SeasonalStrength < 0.8 {
		t.Errorf("strength = %v", vol.SeasonalStrength)
	}
	if vol.ResidualCV > 0.05 {
		t.Errorf("residual CV = %v, want small", vol.ResidualCV)
	}

	noisy := seasonalSeries(800, 48, 15, 6)
	volN, err := Characterize(noisy, 120)
	if err != nil {
		t.Fatal(err)
	}
	if volN.ResidualCV <= vol.ResidualCV {
		t.Errorf("noisy CV %v should exceed smooth CV %v", volN.ResidualCV, vol.ResidualCV)
	}
}

func TestCharacterizeNonSeasonal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = 100 + rng.NormFloat64()*5
	}
	s := New("flat", t0, DefaultStep, vals)
	vol, err := Characterize(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if vol.Period != 0 {
		t.Errorf("period = %d", vol.Period)
	}
	if vol.ResidualCV <= 0 {
		t.Errorf("CV = %v", vol.ResidualCV)
	}
}

func TestCharacterizeZeroMeanFails(t *testing.T) {
	// Alternating +1/-1 sums to exactly zero.
	vals := make([]float64, 300)
	for i := range vals {
		if i%2 == 0 {
			vals[i] = 1
		} else {
			vals[i] = -1
		}
	}
	s := New("zero", t0, DefaultStep, vals)
	if _, err := Characterize(s, 50); err == nil {
		t.Error("zero mean should fail")
	}
}
