package timeseries

import (
	"fmt"
	"sort"
	"time"
)

// Point is a raw, possibly irregularly sampled observation, as found in the
// original cluster traces before aggregation.
type Point struct {
	Time  time.Time
	Value float64
}

// AggFunc reduces a bucket of raw observations to one value.
type AggFunc func([]float64) float64

// AggMean averages the bucket. This is the aggregation the paper applies to
// resource-usage traces.
func AggMean(vs []float64) float64 {
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// AggSum totals the bucket; useful for arrival-rate style workloads.
func AggSum(vs []float64) float64 {
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum
}

// AggMax takes the bucket maximum; useful for peak-oriented scaling metrics.
func AggMax(vs []float64) float64 {
	max := vs[0]
	for _, v := range vs[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Resample aggregates raw points into a regular series with the given step,
// applying agg to every bucket. Empty buckets are filled by linear
// interpolation between the neighbouring non-empty buckets (and by edge
// extension at the boundaries), so the result is always gap-free.
func Resample(name string, points []Point, step time.Duration, agg AggFunc) (*Series, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("timeseries: no points to resample for %q", name)
	}
	if step <= 0 {
		step = DefaultStep
	}
	sorted := make([]Point, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })

	start := sorted[0].Time.Truncate(step)
	end := sorted[len(sorted)-1].Time
	n := int(end.Sub(start)/step) + 1

	buckets := make([][]float64, n)
	for _, p := range sorted {
		i := int(p.Time.Sub(start) / step)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		buckets[i] = append(buckets[i], p.Value)
	}

	values := make([]float64, n)
	missing := make([]bool, n)
	for i, b := range buckets {
		if len(b) == 0 {
			missing[i] = true
			continue
		}
		values[i] = agg(b)
	}
	fillGaps(values, missing)
	return New(name, start, step, values), nil
}

// fillGaps linearly interpolates runs of missing values in place. Leading
// and trailing gaps are filled by extending the nearest observed value.
func fillGaps(values []float64, missing []bool) {
	n := len(values)
	prev := -1
	for i := 0; i < n; i++ {
		if missing[i] {
			continue
		}
		if prev == -1 && i > 0 {
			// Leading gap: extend backwards.
			for j := 0; j < i; j++ {
				values[j] = values[i]
			}
		} else if prev != -1 && i-prev > 1 {
			// Interior gap: interpolate.
			span := float64(i - prev)
			for j := prev + 1; j < i; j++ {
				frac := float64(j-prev) / span
				values[j] = values[prev]*(1-frac) + values[i]*frac
			}
		}
		prev = i
	}
	if prev == -1 {
		return // all missing; leave zeros
	}
	for j := prev + 1; j < n; j++ {
		values[j] = values[prev]
	}
}

// Aggregate sums several aligned series element-wise, as when combining the
// resource usage of a sampled subset of machines into one cluster-level
// trace. All series must share step and length; the earliest start wins.
func Aggregate(name string, series []*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("timeseries: nothing to aggregate for %q", name)
	}
	step := series[0].Step
	n := series[0].Len()
	start := series[0].Start
	for _, s := range series[1:] {
		if s.Step != step {
			return nil, fmt.Errorf("timeseries: step mismatch aggregating %q: %v vs %v", name, s.Step, step)
		}
		if s.Len() != n {
			return nil, fmt.Errorf("timeseries: length mismatch aggregating %q: %d vs %d", name, s.Len(), n)
		}
		if s.Start.Before(start) {
			start = s.Start
		}
	}
	values := make([]float64, n)
	for _, s := range series {
		for i, v := range s.Values {
			values[i] += v
		}
	}
	return New(name, start, step, values), nil
}
