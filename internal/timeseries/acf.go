package timeseries

import (
	"fmt"
	"math"
)

// ACF computes the sample autocorrelation function of the series up to
// maxLag (inclusive). Index 0 is always 1.
func ACF(s *Series, maxLag int) ([]float64, error) {
	n := s.Len()
	if maxLag < 1 {
		return nil, fmt.Errorf("timeseries: ACF needs a positive max lag, got %d", maxLag)
	}
	if n <= maxLag {
		return nil, fmt.Errorf("timeseries: series of length %d too short for lag %d", n, maxLag)
	}
	mean := s.Mean()
	den := 0.0
	for _, v := range s.Values {
		d := v - mean
		den += d * d
	}
	out := make([]float64, maxLag+1)
	out[0] = 1
	if den == 0 {
		return out, nil // constant series: zero correlation beyond lag 0
	}
	for lag := 1; lag <= maxLag; lag++ {
		num := 0.0
		for i := 0; i+lag < n; i++ {
			num += (s.Values[i] - mean) * (s.Values[i+lag] - mean)
		}
		out[lag] = num / den
	}
	return out, nil
}

// DetectPeriod estimates the dominant seasonal period of the series as the
// lag of the highest autocorrelation peak within [minLag, maxLag]. A peak
// must be a local maximum of the ACF and exceed the significance threshold
// (0.2 by default when threshold <= 0). Returns 0 when no significant
// seasonality is found — the caller should then treat the series as
// non-seasonal.
func DetectPeriod(s *Series, minLag, maxLag int, threshold float64) (int, error) {
	if minLag < 2 {
		minLag = 2
	}
	if maxLag <= minLag {
		return 0, fmt.Errorf("timeseries: period search range [%d, %d] empty", minLag, maxLag)
	}
	if threshold <= 0 {
		threshold = 0.2
	}
	acf, err := ACF(s, maxLag)
	if err != nil {
		return 0, err
	}
	best, bestVal := 0, threshold
	for lag := minLag; lag < maxLag; lag++ {
		v := acf[lag]
		if v > bestVal && v >= acf[lag-1] && v >= acf[lag+1] {
			best, bestVal = lag, v
		}
	}
	return best, nil
}

// Volatility summarizes how hard a workload series is to forecast: the
// coefficient of variation of the residual after removing the dominant
// seasonal pattern (if any), plus spike statistics. It is the quantitative
// backing for "the Google trace is harder than the Alibaba trace".
type Volatility struct {
	// Period is the detected seasonal period (0 if none).
	Period int
	// SeasonalStrength is the ACF value at the detected period.
	SeasonalStrength float64
	// ResidualCV is the residual standard deviation over the series mean,
	// after removing the seasonal component when one was detected.
	ResidualCV float64
	// SpikeRate is the fraction of observations more than three residual
	// standard deviations above the (de-seasonalized) level.
	SpikeRate float64
}

// Characterize computes the volatility summary, searching for a period up
// to maxLag.
func Characterize(s *Series, maxLag int) (*Volatility, error) {
	period, err := DetectPeriod(s, 2, maxLag, 0)
	if err != nil {
		return nil, err
	}
	v := &Volatility{Period: period}
	residual := s.Values
	if period > 0 {
		acf, err := ACF(s, period)
		if err != nil {
			return nil, err
		}
		v.SeasonalStrength = acf[period]
		if s.Len() >= 2*period {
			dec, err := DecomposeAdditive(s, period)
			if err != nil {
				return nil, err
			}
			clean := make([]float64, 0, s.Len())
			for _, r := range dec.Residual {
				if !math.IsNaN(r) {
					clean = append(clean, r)
				}
			}
			residual = clean
		}
	}
	mean := s.Mean()
	if mean == 0 {
		return nil, fmt.Errorf("timeseries: zero-mean series, CV undefined")
	}
	rs := New(s.Name+"/residual", s.Start, s.Step, residual)
	std := rs.Std()
	v.ResidualCV = std / math.Abs(mean)
	spikes := 0
	rmean := rs.Mean()
	for _, r := range residual {
		if r > rmean+3*std {
			spikes++
		}
	}
	if len(residual) > 0 {
		v.SpikeRate = float64(spikes) / float64(len(residual))
	}
	return v, nil
}
