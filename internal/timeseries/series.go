// Package timeseries provides the time-series primitives shared by the
// workload forecasters and the auto-scaling manager: a regularly sampled
// Series type, resampling to fixed intervals, train/validation/test
// splitting, standardization, and sliding-window extraction.
//
// All series in this repository are regularly sampled; the paper aggregates
// the Alibaba and Google cluster traces at 10-minute intervals and this
// package's resampler produces exactly that representation.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// DefaultStep is the sampling interval used throughout the paper: workload
// traces are aggregated at 10-minute intervals.
const DefaultStep = 10 * time.Minute

// Series is a regularly sampled univariate time series. Values[i] is the
// observation at Start + i*Step.
type Series struct {
	// Name identifies the series (e.g. "alibaba/cpu").
	Name string
	// Start is the timestamp of Values[0].
	Start time.Time
	// Step is the sampling interval between consecutive values.
	Step time.Duration
	// Values holds the observations.
	Values []float64
}

// New returns a Series with the given name, start, step and values. The
// values slice is used directly (not copied).
func New(name string, start time.Time, step time.Duration, values []float64) *Series {
	if step <= 0 {
		step = DefaultStep
	}
	return &Series{Name: name, Start: start, Step: step, Values: values}
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Values) }

// At returns the i-th observation. It panics if i is out of range, matching
// slice semantics.
func (s *Series) At(i int) float64 { return s.Values[i] }

// TimeAt returns the timestamp of the i-th observation.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	values := make([]float64, len(s.Values))
	copy(values, s.Values)
	return &Series{Name: s.Name, Start: s.Start, Step: s.Step, Values: values}
}

// Slice returns a view of the series covering observations [i, j). The
// underlying values are shared with the receiver.
func (s *Series) Slice(i, j int) *Series {
	return &Series{
		Name:   s.Name,
		Start:  s.TimeAt(i),
		Step:   s.Step,
		Values: s.Values[i:j],
	}
}

// Last returns the final n observations as a view. If the series is shorter
// than n, the whole series is returned.
func (s *Series) Last(n int) *Series {
	if n > len(s.Values) {
		n = len(s.Values)
	}
	return s.Slice(len(s.Values)-n, len(s.Values))
}

// Min returns the smallest observation, or +Inf for an empty series.
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.Values {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation, or -Inf for an empty series.
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the arithmetic mean, or NaN for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Std returns the population standard deviation, or NaN for an empty series.
func (s *Series) Std() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	mean := s.Mean()
	ss := 0.0
	for _, v := range s.Values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.Values)))
}

// Quantile returns the q-th empirical quantile (0 <= q <= 1) using linear
// interpolation between order statistics. It returns NaN for an empty series.
func (s *Series) Quantile(q float64) float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(s.Values))
	copy(sorted, s.Values)
	sort.Float64s(sorted)
	return InterpolatedQuantile(sorted, q)
}

// InterpolatedQuantile returns the q-th quantile of an already sorted slice
// using linear interpolation. It panics on an empty slice.
func InterpolatedQuantile(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Validate reports an error if the series is structurally invalid: a
// non-positive step, or non-finite observations.
func (s *Series) Validate() error {
	if s.Step <= 0 {
		return fmt.Errorf("timeseries: series %q has non-positive step %v", s.Name, s.Step)
	}
	for i, v := range s.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("timeseries: series %q has non-finite value %v at index %d", s.Name, v, i)
		}
	}
	return nil
}

// ErrTooShort is returned when a series does not have enough observations
// for a requested operation (e.g. windowing with a long context).
var ErrTooShort = errors.New("timeseries: series too short")

// Split divides the series into train, validation and test partitions using
// the given fractions. trainFrac+valFrac must be < 1; the remainder is the
// test set. Partitions are contiguous views in chronological order.
func (s *Series) Split(trainFrac, valFrac float64) (train, val, test *Series, err error) {
	if trainFrac <= 0 || valFrac < 0 || trainFrac+valFrac >= 1 {
		return nil, nil, nil, fmt.Errorf("timeseries: invalid split fractions train=%v val=%v", trainFrac, valFrac)
	}
	n := len(s.Values)
	trainEnd := int(float64(n) * trainFrac)
	valEnd := trainEnd + int(float64(n)*valFrac)
	if trainEnd == 0 || valEnd >= n {
		return nil, nil, nil, ErrTooShort
	}
	return s.Slice(0, trainEnd), s.Slice(trainEnd, valEnd), s.Slice(valEnd, n), nil
}

// Diff returns the d-th order difference of the series. The result is
// shorter by d observations. Differencing is the "I" in ARIMA.
func (s *Series) Diff(d int) *Series {
	values := make([]float64, len(s.Values))
	copy(values, s.Values)
	for k := 0; k < d; k++ {
		if len(values) < 2 {
			values = nil
			break
		}
		next := make([]float64, len(values)-1)
		for i := 1; i < len(values); i++ {
			next[i-1] = values[i] - values[i-1]
		}
		values = next
	}
	return &Series{
		Name:   s.Name,
		Start:  s.TimeAt(d),
		Step:   s.Step,
		Values: values,
	}
}

// Window is a (context, target) pair extracted from a series: Context holds
// the most recent T observations before the forecast origin and Target the
// next H observations.
type Window struct {
	// Origin is the index of the first target observation in the source
	// series.
	Origin int
	// Context holds the T observations immediately preceding the origin.
	Context []float64
	// Target holds the H observations starting at the origin.
	Target []float64
}

// Windows extracts every sliding (context, target) window with context
// length ctx, horizon h and the given stride between forecast origins.
// Returns ErrTooShort when no complete window fits.
func (s *Series) Windows(ctx, h, stride int) ([]Window, error) {
	if ctx <= 0 || h <= 0 || stride <= 0 {
		return nil, fmt.Errorf("timeseries: invalid window spec ctx=%d h=%d stride=%d", ctx, h, stride)
	}
	n := len(s.Values)
	if n < ctx+h {
		return nil, ErrTooShort
	}
	var out []Window
	for origin := ctx; origin+h <= n; origin += stride {
		out = append(out, Window{
			Origin:  origin,
			Context: s.Values[origin-ctx : origin],
			Target:  s.Values[origin : origin+h],
		})
	}
	return out, nil
}
