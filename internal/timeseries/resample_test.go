package timeseries

import (
	"math"
	"testing"
	"time"
)

func TestResampleMean(t *testing.T) {
	pts := []Point{
		{t0.Add(1 * time.Minute), 10},
		{t0.Add(4 * time.Minute), 20},
		{t0.Add(12 * time.Minute), 30},
		{t0.Add(25 * time.Minute), 40},
	}
	s, err := Resample("r", pts, 10*time.Minute, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	want := []float64{15, 30, 40}
	for i, w := range want {
		if s.At(i) != w {
			t.Errorf("bucket %d = %v, want %v", i, s.At(i), w)
		}
	}
}

func TestResampleUnsortedInput(t *testing.T) {
	pts := []Point{
		{t0.Add(25 * time.Minute), 40},
		{t0.Add(1 * time.Minute), 10},
		{t0.Add(12 * time.Minute), 30},
	}
	s, err := Resample("r", pts, 10*time.Minute, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0) != 10 || s.At(1) != 30 || s.At(2) != 40 {
		t.Errorf("values = %v", s.Values)
	}
}

func TestResampleGapInterpolation(t *testing.T) {
	pts := []Point{
		{t0, 10},
		{t0.Add(40 * time.Minute), 50},
	}
	s, err := Resample("r", pts, 10*time.Minute, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30, 40, 50}
	if s.Len() != len(want) {
		t.Fatalf("len = %d, want %d: %v", s.Len(), len(want), s.Values)
	}
	for i, w := range want {
		if !almostEqual(s.At(i), w, 1e-9) {
			t.Errorf("bucket %d = %v, want %v", i, s.At(i), w)
		}
	}
}

func TestResampleEmpty(t *testing.T) {
	if _, err := Resample("r", nil, DefaultStep, AggMean); err == nil {
		t.Error("Resample of no points should error")
	}
}

func TestResampleDefaultStep(t *testing.T) {
	pts := []Point{{t0, 1}, {t0.Add(DefaultStep), 2}}
	s, err := Resample("r", pts, 0, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if s.Step != DefaultStep {
		t.Errorf("step = %v, want default", s.Step)
	}
}

func TestAggFuncs(t *testing.T) {
	vs := []float64{2, 8, 5}
	if got := AggMean(vs); got != 5 {
		t.Errorf("AggMean = %v", got)
	}
	if got := AggSum(vs); got != 15 {
		t.Errorf("AggSum = %v", got)
	}
	if got := AggMax(vs); got != 8 {
		t.Errorf("AggMax = %v", got)
	}
}

func TestAggregate(t *testing.T) {
	a := New("a", t0, DefaultStep, []float64{1, 2, 3})
	b := New("b", t0, DefaultStep, []float64{10, 20, 30})
	sum, err := Aggregate("sum", []*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 33}
	for i, w := range want {
		if sum.At(i) != w {
			t.Errorf("sum[%d] = %v, want %v", i, sum.At(i), w)
		}
	}
	short := New("s", t0, DefaultStep, []float64{1})
	if _, err := Aggregate("bad", []*Series{a, short}); err == nil {
		t.Error("Aggregate should reject mismatched lengths")
	}
	otherStep := New("o", t0, time.Minute, []float64{1, 2, 3})
	if _, err := Aggregate("bad", []*Series{a, otherStep}); err == nil {
		t.Error("Aggregate should reject mismatched steps")
	}
	if _, err := Aggregate("empty", nil); err == nil {
		t.Error("Aggregate of nothing should error")
	}
}

func TestStandardScaler(t *testing.T) {
	sc := &StandardScaler{}
	vals := []float64{2, 4, 6, 8}
	sc.Fit(vals)
	if sc.Mean != 5 {
		t.Errorf("Mean = %v", sc.Mean)
	}
	z := sc.Transform(vals)
	// Round-trip.
	back := sc.Inverse(z)
	for i := range vals {
		if !almostEqual(back[i], vals[i], 1e-9) {
			t.Errorf("round trip [%d] = %v, want %v", i, back[i], vals[i])
		}
	}
	// Normalized stats.
	zs := New("z", t0, DefaultStep, z)
	if !almostEqual(zs.Mean(), 0, 1e-9) || !almostEqual(zs.Std(), 1, 1e-9) {
		t.Errorf("normalized mean/std = %v/%v", zs.Mean(), zs.Std())
	}
}

func TestStandardScalerConstantSeries(t *testing.T) {
	sc := &StandardScaler{}
	sc.Fit([]float64{7, 7, 7})
	if sc.Std != 1 {
		t.Errorf("constant series Std = %v, want fallback 1", sc.Std)
	}
	sc.Fit(nil)
	if sc.Std != 1 || sc.Mean != 0 {
		t.Errorf("empty fit = mean %v std %v", sc.Mean, sc.Std)
	}
}

func TestMinMaxScaler(t *testing.T) {
	sc := &MinMaxScaler{}
	vals := []float64{10, 20, 30}
	sc.Fit(vals)
	z := sc.Transform(vals)
	if z[0] != 0 || z[2] != 1 || !almostEqual(z[1], 0.5, 1e-12) {
		t.Errorf("Transform = %v", z)
	}
	back := sc.Inverse(z)
	for i := range vals {
		if !almostEqual(back[i], vals[i], 1e-9) {
			t.Errorf("round trip [%d] = %v", i, back[i])
		}
	}
	sc.Fit([]float64{5, 5})
	if sc.Max <= sc.Min {
		t.Error("constant fit should widen range")
	}
}

func TestDecomposeAdditive(t *testing.T) {
	// Build trend + seasonal signal.
	period := 12
	n := 10 * period
	vals := make([]float64, n)
	for i := range vals {
		trend := 0.1 * float64(i)
		seasonal := 5 * math.Sin(2*math.Pi*float64(i)/float64(period))
		vals[i] = trend + seasonal
	}
	s := New("seasonal", t0, DefaultStep, vals)
	dec, err := DecomposeAdditive(s, period)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Seasonal) != period {
		t.Fatalf("seasonal len = %d", len(dec.Seasonal))
	}
	// Seasonal component should be mean-centred and capture the sine.
	mean := 0.0
	for _, v := range dec.Seasonal {
		mean += v
	}
	if !almostEqual(mean/float64(period), 0, 1e-9) {
		t.Errorf("seasonal mean = %v", mean/float64(period))
	}
	peak := dec.Seasonal[3] // sin peaks at i=3 for period 12
	if peak < 4 {
		t.Errorf("seasonal peak = %v, want near 5", peak)
	}
	// Residual should be small in the interior.
	for i := period; i < n-period; i++ {
		if r := dec.Residual[i]; !math.IsNaN(r) && math.Abs(r) > 0.5 {
			t.Errorf("residual[%d] = %v, too large", i, r)
		}
	}
	if _, err := DecomposeAdditive(New("tiny", t0, DefaultStep, []float64{1, 2, 3}), 12); err == nil {
		t.Error("DecomposeAdditive should reject short series")
	}
}

func TestCenteredMovingAverageOdd(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	out := centeredMovingAverage(vals, 3)
	if !math.IsNaN(out[0]) || !math.IsNaN(out[4]) {
		t.Error("edges should be NaN")
	}
	for i := 1; i <= 3; i++ {
		if !almostEqual(out[i], float64(i+1), 1e-12) {
			t.Errorf("ma[%d] = %v", i, out[i])
		}
	}
}
