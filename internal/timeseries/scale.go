package timeseries

import (
	"fmt"
	"math"
)

// Scaler maps raw workload values into a normalized space and back. Neural
// forecasters train in normalized space; the auto-scaling manager consumes
// forecasts in the original units.
type Scaler interface {
	// Fit estimates the scaler's parameters from values.
	Fit(values []float64)
	// Transform maps raw values to normalized space.
	Transform(values []float64) []float64
	// Inverse maps normalized values back to raw space.
	Inverse(values []float64) []float64
	// InverseOne maps a single normalized value back to raw space.
	InverseOne(v float64) float64
}

// StandardScaler normalizes to zero mean and unit variance.
type StandardScaler struct {
	Mean, Std float64
}

// Fit computes mean and standard deviation, guarding against a degenerate
// constant series with a unit fallback.
func (s *StandardScaler) Fit(values []float64) {
	n := float64(len(values))
	if n == 0 {
		s.Mean, s.Std = 0, 1
		return
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	s.Mean = sum / n
	ss := 0.0
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / n)
	if s.Std < 1e-12 {
		s.Std = 1
	}
}

// Transform maps raw values to z-scores.
func (s *StandardScaler) Transform(values []float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = (v - s.Mean) / s.Std
	}
	return out
}

// Inverse maps z-scores back to raw values.
func (s *StandardScaler) Inverse(values []float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = s.InverseOne(v)
	}
	return out
}

// TransformOne maps one raw value to a z-score; elementwise identical to
// Transform, for hot paths that normalize streaming observations without
// allocating a slice.
func (s *StandardScaler) TransformOne(v float64) float64 { return (v - s.Mean) / s.Std }

// InverseOne maps one z-score back to a raw value.
func (s *StandardScaler) InverseOne(v float64) float64 { return v*s.Std + s.Mean }

// MinMaxScaler normalizes into [0, 1].
type MinMaxScaler struct {
	Min, Max float64
}

// Fit records the value range, guarding a constant series.
func (s *MinMaxScaler) Fit(values []float64) {
	if len(values) == 0 {
		s.Min, s.Max = 0, 1
		return
	}
	s.Min, s.Max = values[0], values[0]
	for _, v := range values[1:] {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	if s.Max-s.Min < 1e-12 {
		s.Max = s.Min + 1
	}
}

// Transform maps raw values into [0, 1] relative to the fitted range.
func (s *MinMaxScaler) Transform(values []float64) []float64 {
	out := make([]float64, len(values))
	span := s.Max - s.Min
	for i, v := range values {
		out[i] = (v - s.Min) / span
	}
	return out
}

// Inverse maps normalized values back to the raw range.
func (s *MinMaxScaler) Inverse(values []float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = s.InverseOne(v)
	}
	return out
}

// InverseOne maps one normalized value back to the raw range.
func (s *MinMaxScaler) InverseOne(v float64) float64 { return v*(s.Max-s.Min) + s.Min }

// SeasonalDecomposition is a classical additive decomposition of a series
// into trend, a repeating seasonal component and a remainder. The period is
// expressed in steps (e.g. 144 for a daily cycle at 10-minute sampling).
type SeasonalDecomposition struct {
	Period   int
	Trend    []float64
	Seasonal []float64 // one full period, mean-centred
	Residual []float64
}

// DecomposeAdditive performs a classical moving-average additive
// decomposition with the given period.
func DecomposeAdditive(s *Series, period int) (*SeasonalDecomposition, error) {
	n := s.Len()
	if period < 2 || n < 2*period {
		return nil, fmt.Errorf("timeseries: series %q too short (%d) for period %d decomposition", s.Name, n, period)
	}
	trend := centeredMovingAverage(s.Values, period)

	// Average detrended values per phase of the cycle.
	sums := make([]float64, period)
	counts := make([]int, period)
	for i := 0; i < n; i++ {
		if math.IsNaN(trend[i]) {
			continue
		}
		phase := i % period
		sums[phase] += s.Values[i] - trend[i]
		counts[phase]++
	}
	seasonal := make([]float64, period)
	mean := 0.0
	for p := 0; p < period; p++ {
		if counts[p] > 0 {
			seasonal[p] = sums[p] / float64(counts[p])
		}
		mean += seasonal[p]
	}
	mean /= float64(period)
	for p := range seasonal {
		seasonal[p] -= mean
	}

	residual := make([]float64, n)
	for i := 0; i < n; i++ {
		t := trend[i]
		if math.IsNaN(t) {
			residual[i] = math.NaN()
			continue
		}
		residual[i] = s.Values[i] - t - seasonal[i%period]
	}
	return &SeasonalDecomposition{Period: period, Trend: trend, Seasonal: seasonal, Residual: residual}, nil
}

// centeredMovingAverage computes a centred moving average of the given
// window; for even windows a 2xMA is used, as in classical decomposition.
// Positions without full coverage are NaN.
func centeredMovingAverage(values []float64, window int) []float64 {
	n := len(values)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.NaN()
	}
	if window%2 == 1 {
		half := window / 2
		for i := half; i < n-half; i++ {
			sum := 0.0
			for j := i - half; j <= i+half; j++ {
				sum += values[j]
			}
			out[i] = sum / float64(window)
		}
		return out
	}
	// Even window: average two shifted windows.
	half := window / 2
	for i := half; i < n-half; i++ {
		sum := values[i-half]/2 + values[i+half]/2
		for j := i - half + 1; j <= i+half-1; j++ {
			sum += values[j]
		}
		out[i] = sum / float64(window)
	}
	return out
}
