package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// The v2 golden fixture is the v3 golden with the header version field
// rewritten to 2. The CRC covers the payload only, so the frame is
// otherwise pristine — which makes the version check the sole guard
// against decoding a snapshot this build does not understand.

// TestUpgradePathV2Rejected pins the v2→v3 upgrade behavior: a version-2
// snapshot written by an older build must fail with ErrVersionSkew (not
// ErrCorrupt, not a gob decode error) before any payload decoding.
func TestUpgradePathV2Rejected(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "checkpoint_v2.ckpt"))
	if err != nil {
		t.Fatalf("reading v2 golden fixture: %v", err)
	}
	st, err := Decode(bytes.NewReader(raw), 0)
	if st != nil {
		t.Fatal("v2 snapshot decoded to a state; version skew must refuse it")
	}
	if !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("v2 snapshot rejected with %v, want ErrVersionSkew", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("version skew misclassified as corruption")
	}
}

// TestRecoverSkipsVersionSkew drills the operational upgrade path: a
// state directory holding one stale v2 snapshot and one current v3
// snapshot recovers from the v3 one; a directory holding only v2
// snapshots reports ErrNoCheckpoint so the caller cold-starts.
func TestRecoverSkipsVersionSkew(t *testing.T) {
	v2raw, err := os.ReadFile(filepath.Join("testdata", "checkpoint_v2.ckpt"))
	if err != nil {
		t.Fatal(err)
	}

	// Seed a stale v2 snapshot as the oldest sequence, then write a
	// current snapshot through the manager.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "checkpoint-000000.ckpt"), v2raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := NewManager(dir, 3) // rescan so the sequence continues past the seeded file
	if err != nil {
		t.Fatal(err)
	}
	want := testState()
	if _, err := m2.Write(want); err != nil {
		t.Fatal(err)
	}
	st, info, err := m2.Recover()
	if err != nil {
		t.Fatalf("recover with a newer v3 snapshot present: %v", err)
	}
	if st == nil || st.Fingerprint != want.Fingerprint {
		t.Fatalf("recovered wrong state: %+v", st)
	}
	if info.Path == "" || snapshotBase(info.Path) == "checkpoint-000000.ckpt" {
		t.Fatalf("recovered from %q, want the v3 snapshot", info.Path)
	}

	// Only-v2 directory: every snapshot is rejected, caller cold-starts.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "checkpoint-000000.ckpt"), v2raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m3, err := NewManager(dir2, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, info, err = m3.Recover()
	if st != nil {
		t.Fatal("recovered a state from a v2-only directory")
	}
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("v2-only recovery returned %v, want ErrNoCheckpoint", err)
	}
	if len(info.Rejected) != 1 {
		t.Fatalf("rejected %v, want the single v2 snapshot", info.Rejected)
	}
}

func snapshotBase(path string) string { return filepath.Base(path) }
