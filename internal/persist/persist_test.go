package persist

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden checkpoint fixture")

// testState builds a fully populated state with fixed contents so tests
// (and the golden file) are deterministic.
func testState() *State {
	return &State{
		SavedAt: time.Date(2024, 3, 1, 12, 30, 0, 0, time.UTC),
		Fingerprint: Fingerprint{
			Strategy: "robust",
			Tenant:   "default",
			Dataset:  "alibaba",
			Seed:     42,
			Theta:    6.5,
			Horizon:  12,
			Tau:      0.9,
			Tau2:     0.6,
		},
		Origin:         288,
		PrevAlloc:      17,
		Steps:          288,
		Violations:     3,
		Holds:          1,
		Rho:            0.75,
		ForecasterKind: "tft",
		Forecaster:     []byte("forecaster-weights"),
		Calibration:    []byte("calibration-window"),
		Guard:          []byte("guard-mode"),
		Breaker:        []byte("breaker-state"),
		Journal:        []byte("journal-ring"),
		Decisions:      []byte("decision-ring"),
		SLO:            []byte("slo-budget-window"),
		Extra:          []byte("loop-accounting"),
	}
}

func encodeState(t *testing.T, st *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := testState()
	raw := encodeState(t, want)
	got, err := Decode(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	raw := encodeState(t, testState())
	raw[0] = 'X'
	if _, err := Decode(bytes.NewReader(raw), 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	raw := encodeState(t, testState())
	raw[4] = 99 // little-endian version field
	if _, err := Decode(bytes.NewReader(raw), 0); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("version skew: got %v, want ErrVersionSkew", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	raw := encodeState(t, testState())
	for _, cut := range []int{1, headerLen - 1, headerLen, headerLen + 5, len(raw) - 1} {
		if _, err := Decode(bytes.NewReader(raw[:cut]), 0); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: got %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestDecodeRejectsBitFlip(t *testing.T) {
	raw := encodeState(t, testState())
	// Flip one bit in the middle of the payload: CRC must catch it.
	raw[headerLen+len(raw[headerLen:])/2] ^= 0x10
	if _, err := Decode(bytes.NewReader(raw), 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: got %v, want ErrCorrupt", err)
	}
}

func TestDecodeBoundsOversizedClaim(t *testing.T) {
	raw := encodeState(t, testState())
	// Rewrite the length field to claim an absurd payload; decode must
	// reject it from the header alone without allocating.
	for i, b := range []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f} {
		raw[8+i] = b
	}
	if _, err := Decode(bytes.NewReader(raw), 1<<20); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized claim: got %v, want ErrCorrupt", err)
	}
}

func TestManagerWriteRecover(t *testing.T) {
	m, err := NewManager(t.TempDir(), 3)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	want := testState()
	if _, err := m.Write(want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, info, err := m.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if info.Path == "" || len(info.Rejected) != 0 {
		t.Fatalf("unexpected recover info: %+v", info)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestManagerEmptyDirColdStart(t *testing.T) {
	m, err := NewManager(t.TempDir(), 3)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	st, _, err := m.Recover()
	if err != nil || st != nil {
		t.Fatalf("empty dir: got (%v, %v), want (nil, nil)", st, err)
	}
}

func TestManagerRetention(t *testing.T) {
	m, err := NewManager(t.TempDir(), 2)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	for i := 0; i < 5; i++ {
		st := testState()
		st.Origin = i
		if _, err := m.Write(st); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	snaps := m.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("retention: %d snapshots kept, want 2: %v", len(snaps), snaps)
	}
	// The newest snapshot wins recovery.
	got, _, err := m.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got.Origin != 4 {
		t.Fatalf("recovered Origin = %d, want 4 (newest)", got.Origin)
	}
}

func TestManagerSequenceSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	m1, err := NewManager(dir, 5)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	p1, err := m1.Write(testState())
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	// A fresh manager over the same dir continues the sequence instead
	// of overwriting the existing snapshot.
	m2, err := NewManager(dir, 5)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	p2, err := m2.Write(testState())
	if err != nil {
		t.Fatalf("Write after reopen: %v", err)
	}
	if p1 == p2 {
		t.Fatalf("reopened manager overwrote %s", p1)
	}
	if got := m2.Snapshots(); len(got) != 2 {
		t.Fatalf("snapshots after reopen: %v, want 2 files", got)
	}
}

func TestRecoverFallsBackPastCorruption(t *testing.T) {
	m, err := NewManager(t.TempDir(), 3)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	older := testState()
	older.Origin = 100
	if _, err := m.Write(older); err != nil {
		t.Fatalf("Write older: %v", err)
	}
	newer := testState()
	newer.Origin = 200
	newest, err := m.Write(newer)
	if err != nil {
		t.Fatalf("Write newer: %v", err)
	}
	// Truncate the newest snapshot mid-payload.
	if err := os.Truncate(newest, headerLen+7); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	got, info, err := m.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got.Origin != 100 {
		t.Fatalf("fallback recovered Origin = %d, want 100 (older snapshot)", got.Origin)
	}
	if len(info.Rejected) != 1 || info.Rejected[0] != newest {
		t.Fatalf("rejected = %v, want [%s]", info.Rejected, newest)
	}
}

func TestRecoverAllCorruptReportsNoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 3)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	p, err := m.Write(testState())
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
		t.Fatalf("corrupting: %v", err)
	}
	st, info, err := m.Recover()
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-corrupt: got (%v, %v), want ErrNoCheckpoint", st, err)
	}
	if len(info.Rejected) != 1 {
		t.Fatalf("rejected = %v, want one entry", info.Rejected)
	}
}

func TestCheckpointCountersAdvance(t *testing.T) {
	m, err := NewManager(t.TempDir(), 3)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	w0, r0, c0 := CheckpointWrites(), CheckpointRecoveries(), CheckpointCorrupt()
	p, err := m.Write(testState())
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, _, err := m.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := os.Truncate(p, 3); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if _, _, err := m.Recover(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("corrupt recover: %v", err)
	}
	if got := CheckpointWrites() - w0; got != 1 {
		t.Errorf("writes counter advanced by %v, want 1", got)
	}
	if got := CheckpointRecoveries() - r0; got != 1 {
		t.Errorf("recoveries counter advanced by %v, want 1", got)
	}
	if got := CheckpointCorrupt() - c0; got != 1 {
		t.Errorf("corrupt counter advanced by %v, want 1", got)
	}
}

// TestGoldenFormat pins the on-disk format: the checked-in fixture must
// decode to the expected state, and re-encoding that state must
// reproduce the fixture byte for byte. Any State or frame change that
// breaks this requires a Version bump (and a new fixture).
func TestGoldenFormat(t *testing.T) {
	golden := filepath.Join("testdata", "checkpoint_v3.ckpt")
	want := testState()
	raw := encodeState(t, want)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fixed, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update-golden): %v", err)
	}
	got, err := Decode(bytes.NewReader(fixed), 0)
	if err != nil {
		t.Fatalf("decoding golden fixture: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden fixture decodes to:\n %+v\nwant %+v", got, want)
	}
	if !bytes.Equal(raw, fixed) {
		t.Fatalf("re-encoding testState no longer matches the golden fixture: the on-disk format drifted — bump persist.Version and regenerate with -update-golden")
	}
}

// The checkpoint path must stay cheap relative to a plan round; this
// bench is the evidence that periodic checkpointing is off the hot path.
func BenchmarkManagerWrite(b *testing.B) {
	m, err := NewManager(b.TempDir(), 3)
	if err != nil {
		b.Fatalf("NewManager: %v", err)
	}
	st := testState()
	// A realistically sized model blob (~1MB of weights).
	st.Forecaster = make([]byte, 1<<20)
	for i := range st.Forecaster {
		st.Forecaster[i] = byte(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Write(st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	st := testState()
	st.Forecaster = make([]byte, 1<<20)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Encode(&buf, st); err != nil {
			b.Fatal(err)
		}
	}
}
