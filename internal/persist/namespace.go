package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Per-tenant checkpoint namespaces: a fleet state directory holds one
// snapshot sub-directory per tenant under <root>/tenants/<id>/, each
// managed by its own Manager. Corruption in one tenant's namespace can
// therefore only ever cost that tenant its warm start — the recovery
// ladder of every other tenant never reads the damaged files.

// tenantsSubdir is the sub-directory of a fleet state root that holds
// the per-tenant namespaces.
const tenantsSubdir = "tenants"

// ValidTenantID reports whether id is usable as a checkpoint namespace:
// non-empty, at most 128 bytes, and restricted to [A-Za-z0-9._-] with no
// leading dot, so an id can never escape the namespace root or collide
// with the manager's temp files.
func ValidTenantID(id string) error {
	if id == "" {
		return fmt.Errorf("persist: empty tenant id")
	}
	if len(id) > 128 {
		return fmt.Errorf("persist: tenant id longer than 128 bytes")
	}
	if id[0] == '.' {
		return fmt.Errorf("persist: tenant id %q starts with a dot", id)
	}
	for _, ch := range []byte(id) {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch >= '0' && ch <= '9',
			ch == '.', ch == '_', ch == '-':
		default:
			return fmt.Errorf("persist: tenant id %q contains %q (want [A-Za-z0-9._-])", id, ch)
		}
	}
	return nil
}

// TenantDir returns the checkpoint namespace directory of one tenant
// under a fleet state root, without creating it.
func TenantDir(root, tenant string) (string, error) {
	if root == "" {
		return "", fmt.Errorf("persist: empty state root")
	}
	if err := ValidTenantID(tenant); err != nil {
		return "", err
	}
	return filepath.Join(root, tenantsSubdir, tenant), nil
}

// NewTenantManager opens (creating if needed) the checkpoint namespace
// of one tenant under a fleet state root and returns its Manager.
func NewTenantManager(root, tenant string, retain int) (*Manager, error) {
	dir, err := TenantDir(root, tenant)
	if err != nil {
		return nil, err
	}
	return NewManager(dir, retain)
}

// TenantIDs lists the tenant namespaces present under a fleet state
// root, sorted; a missing root (or tenants sub-directory) is an empty
// fleet, not an error.
func TenantIDs(root string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(root, tenantsSubdir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("persist: listing tenant namespaces: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && ValidTenantID(e.Name()) == nil {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
