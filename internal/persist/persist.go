// Package persist is the durability layer of the control plane: a
// corruption-safe checkpoint subsystem that lets the auto-scaler daemon
// survive crashes and restarts without a cold-start window of blind
// scaling. A checkpoint captures the full control-plane state — trained
// forecaster weights, the rolling calibration window, guard degradation
// state, circuit-breaker state, the current allocation and the bounded
// observability rings — as opaque, component-owned byte sections inside
// one versioned, CRC32-framed snapshot file.
//
// Snapshots are written atomically (temp file in the same directory,
// fsync, rename, directory fsync), so a crash mid-write never damages an
// existing snapshot: the newest complete file always validates. Recovery
// walks the retained snapshots newest-first, validating each frame, and
// falls back to older snapshots — and finally to a cold start — when the
// newest is truncated or bit-flipped. Decoding is bounded: a frame that
// declares an oversized payload is rejected before any allocation, and
// truncated payloads allocate only the bytes actually present.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"robustscale/internal/obs"
)

// Frame constants of the on-disk format. The golden-file test in this
// package pins the byte layout; bump Version on any incompatible change
// to State or the frame.
const (
	// Magic opens every snapshot file.
	Magic = "RSCP"
	// Version is the current snapshot format version. Version 2 added
	// the tenant id to Fingerprint and the owner-defined Extra section
	// to State (the fleet controller's loop accounting lives there).
	// Version 3 added the SLO section carrying the error-budget tracker
	// so warm restart resumes alerting where the previous run stopped.
	Version = 3
	// headerLen is magic(4) + version(4) + payload length(8) + crc32(4).
	headerLen = 20
	// DefaultMaxBytes bounds the decoded payload of one snapshot.
	DefaultMaxBytes = 1 << 30
	// DefaultRetain is how many snapshots a manager keeps by default.
	DefaultRetain = 3
)

// Sentinel errors distinguish the recovery ladder's rungs: corruption
// (fall back to an older snapshot) from version skew (an operator
// decision) from absence (cold start).
var (
	// ErrCorrupt reports a snapshot that failed frame validation:
	// bad magic, truncation, an oversized payload claim, a CRC mismatch,
	// or an undecodable payload.
	ErrCorrupt = errors.New("persist: corrupt checkpoint")
	// ErrVersionSkew reports a snapshot written by an incompatible
	// format version.
	ErrVersionSkew = errors.New("persist: checkpoint version skew")
	// ErrNoCheckpoint reports that no snapshot survived validation.
	ErrNoCheckpoint = errors.New("persist: no usable checkpoint")
)

// Checkpoint instruments on the process-wide registry; the CI
// kill-restart smoke job asserts these behave across a SIGKILL.
var (
	ckptWrites = obs.Default.Counter(
		"robustscale_checkpoint_writes_total",
		"Checkpoint snapshots written (atomically) to the state directory.")
	ckptRecoveries = obs.Default.Counter(
		"robustscale_checkpoint_recoveries_total",
		"Successful warm-start recoveries from a checkpoint snapshot.")
	ckptCorrupt = obs.Default.Counter(
		"robustscale_checkpoint_corrupt_total",
		"Snapshot files rejected during recovery (truncated, bit-flipped, or version-skewed).")
	ckptBytes = obs.Default.Gauge(
		"robustscale_checkpoint_last_bytes",
		"Size in bytes of the most recently written checkpoint snapshot.")
	ckptWriteSeconds = obs.Default.Histogram(
		"robustscale_checkpoint_write_seconds",
		"Wall-clock latency of one checkpoint write (encode, fsync, rename).", nil)
)

// Fingerprint identifies the run configuration a snapshot belongs to.
// Recovery refuses a snapshot whose fingerprint does not match the
// restarted daemon's flags: warm-starting a robust-0.9 Alibaba run into
// an adaptive Google run would silently plan from the wrong model.
type Fingerprint struct {
	// Strategy is the strategy flag value ("robust", "adaptive", ...).
	Strategy string
	// Tenant is the tenant id the snapshot belongs to ("default" for a
	// single-tenant daemon). A fleet state directory holds one
	// checkpoint namespace per tenant; the fingerprint check keeps a
	// tenant from warm-starting into a neighbour's snapshot even if the
	// namespaces are shuffled on disk.
	Tenant string
	// Dataset is the workload name ("alibaba", "google").
	Dataset string
	// Seed is the trace seed.
	Seed int64
	// Theta is the per-node workload threshold.
	Theta float64
	// Horizon is the planning horizon in steps.
	Horizon int
	// Tau and Tau2 are the quantile levels in effect.
	Tau, Tau2 float64
}

// State is the full control-plane image of one checkpoint. Component
// state (models, calibration windows, guard and breaker positions, the
// observability rings) travels as opaque byte sections encoded by the
// owning packages, so persist depends on none of them and the layout
// stays stable as components evolve.
type State struct {
	// SavedAt is the virtual time of the checkpoint.
	SavedAt time.Time
	// Fingerprint identifies the run configuration (see Fingerprint).
	Fingerprint Fingerprint
	// Origin is the series index of the next unplanned round; recovery
	// resumes planning here.
	Origin int
	// PrevAlloc is the fleet size in effect at Origin.
	PrevAlloc int
	// Steps, Violations and Holds are the control-loop counters at
	// Origin, so a warm-started run reports continuous totals.
	Steps, Violations, Holds int
	// Rho is the calibrated uncertainty threshold of the adaptive
	// strategy (zero when unused); persisting it skips recalibration.
	Rho float64
	// ForecasterKind names the model held in Forecaster ("tft", ...).
	ForecasterKind string
	// Forecaster is the trained model snapshot (forecast Save format);
	// nil for model-free strategies.
	Forecaster []byte
	// Calibration is the rolling calibration window (cluster.Calibration
	// Save format); nil before the first fan.
	Calibration []byte
	// Guard is the degradation-ladder state (scaler.Guard Save format).
	Guard []byte
	// Breaker is the circuit-breaker state (scaler.Breaker Save format).
	Breaker []byte
	// Journal is the bounded event journal (obs.Journal Save format).
	Journal []byte
	// Decisions is the decision ring (obs.DecisionStore Save format).
	Decisions []byte
	// SLO is the error-budget tracker state (obs.SLOTracker Save
	// format), so a warm restart neither forgets budget already spent
	// nor re-fires alerts that were already firing.
	SLO []byte
	// Extra is an owner-defined byte section for loop state that has no
	// component of its own: the fleet controller checkpoints its rolling
	// allocation hash and cost accounting here. persist never interprets
	// it.
	Extra []byte
}

// Encode frames the state as one snapshot: magic, version, payload
// length, CRC32 (IEEE) of the payload, then the gob payload.
func Encode(w io.Writer, st *State) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return fmt.Errorf("persist: encoding state: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("persist: writing header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("persist: writing payload: %w", err)
	}
	return nil
}

// Decode validates one snapshot frame and returns its state. maxBytes
// bounds the payload (0 means DefaultMaxBytes): an oversized length
// claim is rejected before any allocation, and a truncated payload
// allocates only the bytes actually present — corrupted input returns
// an error, never a panic or an unbounded allocation.
func Decode(r io.Reader, maxBytes int64) (*State, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(hdr[0:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return nil, fmt.Errorf("%w: snapshot version %d, this build reads %d", ErrVersionSkew, v, Version)
	}
	length := binary.LittleEndian.Uint64(hdr[8:16])
	if length > uint64(maxBytes) {
		return nil, fmt.Errorf("%w: payload claims %d bytes, limit %d", ErrCorrupt, length, maxBytes)
	}
	// Copy through a limited reader into a growing buffer: a frame whose
	// declared length lies about a short file allocates only what the
	// file actually holds.
	var payload bytes.Buffer
	n, err := io.Copy(&payload, io.LimitReader(r, int64(length)))
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrCorrupt, err)
	}
	if uint64(n) != length {
		return nil, fmt.Errorf("%w: payload truncated at %d of %d bytes", ErrCorrupt, n, length)
	}
	if sum := crc32.ChecksumIEEE(payload.Bytes()); sum != binary.LittleEndian.Uint32(hdr[16:20]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	var st State
	if err := gob.NewDecoder(&payload).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: decoding payload: %v", ErrCorrupt, err)
	}
	return &st, nil
}

// Manager owns one state directory: sequence-numbered snapshot files,
// atomic writes, bounded retention, and newest-first recovery. It is
// not safe for concurrent use; the control loop is its only caller.
type Manager struct {
	dir string
	// Retain is how many snapshots to keep (default DefaultRetain).
	Retain int
	// MaxBytes bounds one snapshot's payload on read (default
	// DefaultMaxBytes).
	MaxBytes int64

	nextSeq uint64
}

// snapshotPattern matches manager-owned snapshot files.
const (
	snapshotPrefix = "checkpoint-"
	snapshotSuffix = ".ckpt"
)

// NewManager opens (creating if needed) the state directory and scans
// existing snapshots so new writes continue the sequence.
func NewManager(dir string, retain int) (*Manager, error) {
	if dir == "" {
		return nil, fmt.Errorf("persist: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating state dir: %w", err)
	}
	m := &Manager{dir: dir, Retain: retain}
	if m.Retain <= 0 {
		m.Retain = DefaultRetain
	}
	for _, f := range m.Snapshots() {
		if seq, ok := snapshotSeq(f); ok && seq >= m.nextSeq {
			m.nextSeq = seq + 1
		}
	}
	return m, nil
}

// Dir returns the managed state directory.
func (m *Manager) Dir() string { return m.dir }

// snapshotSeq parses the sequence number out of a snapshot file name.
func snapshotSeq(name string) (uint64, bool) {
	base := filepath.Base(name)
	if len(base) <= len(snapshotPrefix)+len(snapshotSuffix) {
		return 0, false
	}
	mid := base[len(snapshotPrefix) : len(base)-len(snapshotSuffix)]
	var seq uint64
	for _, ch := range mid {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(ch-'0')
	}
	return seq, true
}

// Snapshots returns the retained snapshot paths, oldest first.
func (m *Manager) Snapshots() []string {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() &&
			len(name) > len(snapshotPrefix)+len(snapshotSuffix) &&
			name[:len(snapshotPrefix)] == snapshotPrefix &&
			name[len(name)-len(snapshotSuffix):] == snapshotSuffix {
			if _, ok := snapshotSeq(name); ok {
				out = append(out, filepath.Join(m.dir, name))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := snapshotSeq(out[i])
		b, _ := snapshotSeq(out[j])
		return a < b
	})
	return out
}

// Write persists one snapshot atomically — temp file in the same
// directory, fsync, rename into place, directory fsync — then prunes
// snapshots beyond Retain. A crash at any point leaves every previously
// completed snapshot intact. It returns the snapshot path.
func (m *Manager) Write(st *State) (string, error) {
	t0 := time.Now()
	final := filepath.Join(m.dir, fmt.Sprintf("%s%08d%s", snapshotPrefix, m.nextSeq, snapshotSuffix))
	tmp, err := os.CreateTemp(m.dir, ".ckpt-*.tmp")
	if err != nil {
		return "", fmt.Errorf("persist: creating temp snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var written int64
	counting := &countingWriter{w: tmp}
	if err := Encode(counting, st); err != nil {
		tmp.Close()
		return "", err
	}
	written = counting.n
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("persist: fsync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("persist: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	syncDir(m.dir)
	m.nextSeq++
	m.prune()
	ckptWrites.Inc()
	ckptBytes.Set(float64(written))
	ckptWriteSeconds.ObserveSince(t0)
	return final, nil
}

// countingWriter tracks bytes written for the size gauge.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// syncDir fsyncs a directory so a rename survives power loss; failures
// are ignored (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// prune removes the oldest snapshots beyond Retain.
func (m *Manager) prune() {
	snaps := m.Snapshots()
	for len(snaps) > m.Retain {
		_ = os.Remove(snaps[0])
		snaps = snaps[1:]
	}
}

// RecoverInfo describes how a recovery concluded.
type RecoverInfo struct {
	// Path is the snapshot the state was restored from.
	Path string
	// Rejected lists snapshots that failed validation, newest first.
	Rejected []string
}

// Recover walks the retained snapshots newest-first and returns the
// first that validates, recording rejected snapshots in the corruption
// counter. With no snapshots at all it returns (nil, info, nil) — a
// clean cold start; when snapshots exist but none validates it returns
// ErrNoCheckpoint (wrapped), and the caller should cold-start too.
func (m *Manager) Recover() (*State, RecoverInfo, error) {
	snaps := m.Snapshots()
	var info RecoverInfo
	if len(snaps) == 0 {
		return nil, info, nil
	}
	var lastErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		st, err := m.load(snaps[i])
		if err != nil {
			info.Rejected = append(info.Rejected, snaps[i])
			ckptCorrupt.Inc()
			lastErr = err
			continue
		}
		info.Path = snaps[i]
		ckptRecoveries.Inc()
		return st, info, nil
	}
	return nil, info, fmt.Errorf("%w: all %d snapshots rejected, last: %v", ErrNoCheckpoint, len(snaps), lastErr)
}

// load reads and validates one snapshot file.
func (m *Manager) load(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: opening snapshot: %w", err)
	}
	defer f.Close()
	maxBytes := m.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return Decode(f, maxBytes)
}

// CheckpointWrites returns the process-wide checkpoint write count;
// tests and the daemon's status surface read it back.
func CheckpointWrites() float64 { return ckptWrites.Value() }

// CheckpointRecoveries returns the process-wide recovery count.
func CheckpointRecoveries() float64 { return ckptRecoveries.Value() }

// CheckpointCorrupt returns how many snapshots recovery has rejected.
func CheckpointCorrupt() float64 { return ckptCorrupt.Value() }
