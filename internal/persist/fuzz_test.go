package persist

import (
	"bytes"
	"testing"
)

// FuzzLoadCheckpoint throws arbitrary bytes — seeded with valid,
// truncated, bit-flipped, and version-skewed snapshots — at Decode.
// Any input must either decode cleanly or return an error; panics and
// unbounded allocations are the bugs this target exists to catch. The
// 1MiB decode bound keeps lying length headers from turning into OOM.
func FuzzLoadCheckpoint(f *testing.F) {
	var valid bytes.Buffer
	if err := Encode(&valid, &State{
		Fingerprint:    Fingerprint{Strategy: "robust", Dataset: "alibaba", Seed: 1, Theta: 6, Horizon: 12, Tau: 0.9},
		Origin:         12,
		PrevAlloc:      5,
		ForecasterKind: "tft",
		Forecaster:     []byte{1, 2, 3},
	}); err != nil {
		f.Fatal(err)
	}
	raw := valid.Bytes()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])   // truncated payload
	f.Add(raw[:headerLen-1])  // truncated header
	f.Add([]byte{})           // empty
	f.Add([]byte("RSCP"))     // magic only
	f.Add([]byte("not-rscp")) // bad magic

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	skewed := append([]byte(nil), raw...)
	skewed[4] = 9 // future version
	f.Add(skewed)

	lying := append([]byte(nil), raw...)
	for i := 8; i < 16; i++ { // length field claims ~2^63 bytes
		lying[i] = 0xff
	}
	lying[15] = 0x7f
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(bytes.NewReader(data), 1<<20)
		if err != nil && st != nil {
			t.Fatalf("Decode returned both state and error: %v", err)
		}
	})
}
