// Package qos implements the performance-modeling extension the paper
// sketches in Section V-B: the workload threshold theta that drives
// auto-scaling is not a given — it encodes a quality-of-service target.
// This package models a compute node as an M/M/c queueing station, maps
// utilization to latency percentiles, and calibrates the largest threshold
// that still meets a Service Level Objective, closing the loop the paper
// leaves to future work.
package qos

import (
	"fmt"
	"math"
	"time"
)

// Node describes the service capability of one compute node.
type Node struct {
	// ServiceRate is the queries per second one worker completes (mu).
	ServiceRate float64
	// Workers is the number of parallel workers per node (c in M/M/c);
	// think worker threads or cores.
	Workers int
}

// Validate reports configuration errors.
func (n Node) Validate() error {
	if n.ServiceRate <= 0 {
		return fmt.Errorf("qos: non-positive service rate %v", n.ServiceRate)
	}
	if n.Workers < 1 {
		return fmt.Errorf("qos: need at least one worker, got %d", n.Workers)
	}
	return nil
}

// ErlangC returns the Erlang-C probability that an arriving query waits,
// for an M/M/c station with offered load a = lambda/mu and c workers. It
// is computed with the numerically stable iterative form.
func ErlangC(a float64, c int) (float64, error) {
	if a < 0 {
		return 0, fmt.Errorf("qos: negative offered load %v", a)
	}
	if c < 1 {
		return 0, fmt.Errorf("qos: need at least one worker, got %d", c)
	}
	if a >= float64(c) {
		return 1, nil // saturated: every arrival waits
	}
	// Iteratively compute the Erlang-B blocking probability, then convert.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b)), nil
}

// Latency summarizes the response-time distribution of a node under load.
type Latency struct {
	// Utilization is rho = lambda/(c*mu).
	Utilization float64
	// Mean is the expected response time (wait + service).
	Mean time.Duration
	// P95 and P99 are response-time percentiles.
	P95, P99 time.Duration
}

// NodeLatency computes the response-time distribution of one node serving
// arrivalRate queries per second, using M/M/c formulas. The percentile
// computation uses the exact two-branch response-time distribution of the
// M/M/c queue.
func NodeLatency(n Node, arrivalRate float64) (*Latency, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if arrivalRate < 0 {
		return nil, fmt.Errorf("qos: negative arrival rate %v", arrivalRate)
	}
	c := float64(n.Workers)
	mu := n.ServiceRate
	a := arrivalRate / mu
	rho := a / c
	if rho >= 1 {
		return &Latency{
			Utilization: rho,
			Mean:        time.Duration(math.MaxInt64),
			P95:         time.Duration(math.MaxInt64),
			P99:         time.Duration(math.MaxInt64),
		}, nil
	}
	pWait, err := ErlangC(a, n.Workers)
	if err != nil {
		return nil, err
	}
	// Mean response time: service + expected wait.
	meanWait := pWait / (c*mu - arrivalRate)
	mean := 1/mu + meanWait

	quantile := func(p float64) time.Duration {
		t := responseTimeQuantile(p, a, c, mu, pWait)
		return time.Duration(t * float64(time.Second))
	}
	return &Latency{
		Utilization: rho,
		Mean:        time.Duration(mean * float64(time.Second)),
		P95:         quantile(0.95),
		P99:         quantile(0.99),
	}, nil
}

// responseTimeQuantile inverts the M/M/c response-time CDF numerically.
// The CDF (for rho < 1) is a mixture of the service exponential and the
// waiting branch:
//
//	P(T <= t) = 1 - e^{-mu t} - pWait * (e^{-(c mu - lambda) t} - e^{-mu t}) * cmu/(cmu - lambda - mu)  [general case]
//
// Rather than juggling the removable singularity at c*mu - lambda = mu,
// the CDF is evaluated directly and inverted by bisection, which is robust
// for every parameter combination.
func responseTimeQuantile(p, a, c, mu, pWait float64) float64 {
	lambda := a * mu
	theta := c*mu - lambda // wait-branch rate
	cdf := func(t float64) float64 {
		// P(T > t) = e^{-mu t} + pWait * (e^{-theta t} - e^{-mu t}) * mu/(mu - theta)
		// with the limit handled when theta ~= mu.
		survService := math.Exp(-mu * t)
		var waitTerm float64
		if math.Abs(mu-theta) < 1e-9*mu {
			waitTerm = pWait * mu * t * math.Exp(-mu*t)
		} else {
			waitTerm = pWait * mu / (mu - theta) * (math.Exp(-theta*t) - math.Exp(-mu*t))
		}
		surv := survService + waitTerm
		if surv < 0 {
			surv = 0
		}
		if surv > 1 {
			surv = 1
		}
		return 1 - surv
	}
	lo, hi := 0.0, 1/mu
	for cdf(hi) < p {
		hi *= 2
		if hi > 1e9 {
			return hi
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// SLO is a latency Service Level Objective.
type SLO struct {
	// Percentile is the latency percentile the objective constrains
	// (e.g. 0.99).
	Percentile float64
	// Target is the maximum acceptable latency at that percentile.
	Target time.Duration
}

// Validate reports configuration errors.
func (s SLO) Validate() error {
	if s.Percentile <= 0 || s.Percentile >= 1 {
		return fmt.Errorf("qos: SLO percentile %v outside (0, 1)", s.Percentile)
	}
	if s.Target <= 0 {
		return fmt.Errorf("qos: non-positive SLO target %v", s.Target)
	}
	return nil
}

// CalibrateTheta finds the largest per-node workload threshold (in queries
// per second) that still meets the SLO on a single node, by bisection over
// the arrival rate. This is the quantity the auto-scaling formulation
// takes as its given theta: different SLOs produce different thresholds,
// exactly the dependence Section V-B describes.
func CalibrateTheta(n Node, slo SLO) (float64, error) {
	if err := n.Validate(); err != nil {
		return 0, err
	}
	if err := slo.Validate(); err != nil {
		return 0, err
	}
	meets := func(rate float64) (bool, error) {
		l, err := NodeLatency(n, rate)
		if err != nil {
			return false, err
		}
		var at time.Duration
		switch {
		case slo.Percentile >= 0.99:
			at = l.P99
		case slo.Percentile >= 0.95:
			at = l.P95
		default:
			at = l.Mean
		}
		return at <= slo.Target, nil
	}

	capacity := float64(n.Workers) * n.ServiceRate
	// Even an idle node may miss an SLO tighter than its service time.
	ok, err := meets(0)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("qos: SLO %v@p%g unattainable: idle service time already exceeds it", slo.Target, slo.Percentile*100)
	}

	lo, hi := 0.0, capacity*(1-1e-9)
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// ThetaForUtilization converts a utilization target (e.g. "keep nodes
// below 70%") into the threshold in workload units, the simpler
// calibration used when no latency model is available.
func ThetaForUtilization(n Node, utilization float64) (float64, error) {
	if err := n.Validate(); err != nil {
		return 0, err
	}
	if utilization <= 0 || utilization > 1 {
		return 0, fmt.Errorf("qos: utilization target %v outside (0, 1]", utilization)
	}
	return utilization * float64(n.Workers) * n.ServiceRate, nil
}
