package qos

import (
	"math"
	"testing"
)

func TestSimulateMatchesAnalyticMM1(t *testing.T) {
	// M/M/1 at rho = 0.5: mean = 1/(mu - lambda), and the response-time
	// distribution is exponential, so p99 = ln(100) * mean.
	n := Node{ServiceRate: 100, Workers: 1}
	res, err := Simulate(n, 50, 200000, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 1.0 / 50
	if math.Abs(res.MeanSec-wantMean)/wantMean > 0.05 {
		t.Errorf("sim mean %v vs analytic %v", res.MeanSec, wantMean)
	}
	wantP99 := math.Log(100) / 50
	if math.Abs(res.P99-wantP99)/wantP99 > 0.1 {
		t.Errorf("sim p99 %v vs analytic %v", res.P99, wantP99)
	}
	if math.Abs(res.Utilization-0.5) > 0.05 {
		t.Errorf("sim utilization %v, want ~0.5", res.Utilization)
	}
}

func TestSimulateMatchesAnalyticMMC(t *testing.T) {
	// The discrete-event simulation and the Erlang-C formulas must agree
	// across loads — the empirical cross-check of the analytic model.
	n := Node{ServiceRate: 100, Workers: 8}
	for _, rate := range []float64{200, 500, 700} {
		analytic, err := NodeLatency(n, rate)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Simulate(n, rate, 300000, 2)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(sim.MeanSec-analytic.Mean.Seconds()) / analytic.Mean.Seconds(); rel > 0.08 {
			t.Errorf("rate %v: sim mean %v vs analytic %v (rel %v)",
				rate, sim.MeanSec, analytic.Mean.Seconds(), rel)
		}
		if rel := math.Abs(sim.P99-analytic.P99.Seconds()) / analytic.P99.Seconds(); rel > 0.12 {
			t.Errorf("rate %v: sim p99 %v vs analytic %v (rel %v)",
				rate, sim.P99, analytic.P99.Seconds(), rel)
		}
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	n := Node{ServiceRate: 50, Workers: 2}
	a, err := Simulate(n, 60, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(n, 60, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.P99 != b.P99 || a.MeanSec != b.MeanSec {
		t.Error("same seed should reproduce exactly")
	}
	c, err := Simulate(n, 60, 5000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.P99 == a.P99 {
		t.Error("different seeds should differ")
	}
}

func TestSimulateValidation(t *testing.T) {
	n := Node{ServiceRate: 50, Workers: 2}
	if _, err := Simulate(Node{}, 10, 100, 1); err == nil {
		t.Error("bad node should fail")
	}
	if _, err := Simulate(n, 0, 100, 1); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := Simulate(n, 10, 0, 1); err == nil {
		t.Error("zero queries should fail")
	}
}

func TestSimulateOrderedPercentiles(t *testing.T) {
	n := Node{ServiceRate: 100, Workers: 4}
	res, err := Simulate(n, 250, 50000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P50 <= res.P95 && res.P95 <= res.P99) {
		t.Errorf("percentiles out of order: %v %v %v", res.P50, res.P95, res.P99)
	}
	if res.Served != 50000 {
		t.Errorf("served = %d", res.Served)
	}
}
