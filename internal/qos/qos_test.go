package qos

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1: P(wait) = rho.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		got, err := ErlangC(rho, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-rho) > 1e-12 {
			t.Errorf("ErlangC(%v, 1) = %v, want %v", rho, got, rho)
		}
	}
	// Known tabulated value: a=2, c=3 -> ~0.4444.
	got, err := ErlangC(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4.0/9.0) > 1e-9 {
		t.Errorf("ErlangC(2, 3) = %v, want 4/9", got)
	}
}

func TestErlangCBoundaries(t *testing.T) {
	if got, _ := ErlangC(5, 3); got != 1 {
		t.Errorf("saturated ErlangC = %v, want 1", got)
	}
	if got, _ := ErlangC(0, 3); got != 0 {
		t.Errorf("idle ErlangC = %v, want 0", got)
	}
	if _, err := ErlangC(-1, 3); err == nil {
		t.Error("negative load should fail")
	}
	if _, err := ErlangC(1, 0); err == nil {
		t.Error("zero workers should fail")
	}
}

func TestErlangCMonotoneInLoad(t *testing.T) {
	f := func(seed uint16) bool {
		c := 1 + int(seed)%16
		prev := -1.0
		for a := 0.0; a < float64(c); a += float64(c) / 20 {
			p, err := ErlangC(a, c)
			if err != nil || p < prev-1e-12 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeLatencyM_M_1(t *testing.T) {
	// M/M/1 mean response time = 1/(mu - lambda).
	n := Node{ServiceRate: 10, Workers: 1}
	l, err := NodeLatency(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / (10 - 5) // 200ms
	if math.Abs(l.Mean.Seconds()-want) > 1e-9 {
		t.Errorf("mean = %v, want %vs", l.Mean, want)
	}
	if l.Utilization != 0.5 {
		t.Errorf("utilization = %v", l.Utilization)
	}
	// M/M/1 response time is exponential(mu - lambda): p99 = ln(100)/(mu-lambda).
	wantP99 := math.Log(100) / 5
	if math.Abs(l.P99.Seconds()-wantP99) > 1e-6 {
		t.Errorf("p99 = %v, want %vs", l.P99, wantP99)
	}
}

func TestNodeLatencyGrowsWithLoad(t *testing.T) {
	n := Node{ServiceRate: 100, Workers: 8}
	prev := time.Duration(0)
	for _, rate := range []float64{100, 300, 500, 700, 780} {
		l, err := NodeLatency(n, rate)
		if err != nil {
			t.Fatal(err)
		}
		if l.P99 <= prev {
			t.Errorf("p99 not increasing at rate %v: %v <= %v", rate, l.P99, prev)
		}
		if l.P95 > l.P99 {
			t.Errorf("p95 %v above p99 %v", l.P95, l.P99)
		}
		prev = l.P99
	}
}

func TestNodeLatencySaturated(t *testing.T) {
	n := Node{ServiceRate: 10, Workers: 2}
	l, err := NodeLatency(n, 25)
	if err != nil {
		t.Fatal(err)
	}
	if l.Utilization < 1 {
		t.Errorf("utilization = %v", l.Utilization)
	}
	if l.Mean != time.Duration(math.MaxInt64) {
		t.Error("saturated mean should be infinite")
	}
}

func TestNodeLatencyValidation(t *testing.T) {
	if _, err := NodeLatency(Node{ServiceRate: 0, Workers: 1}, 1); err == nil {
		t.Error("zero service rate should fail")
	}
	if _, err := NodeLatency(Node{ServiceRate: 1, Workers: 0}, 1); err == nil {
		t.Error("zero workers should fail")
	}
	if _, err := NodeLatency(Node{ServiceRate: 1, Workers: 1}, -1); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestResponseTimeQuantileMatchesCDF(t *testing.T) {
	// Round-trip: for several loads, the returned quantile should sit
	// where the empirical simulation of the distribution puts it. Use
	// the analytic M/M/1 case as exact reference at several percentiles.
	mu := 20.0
	for _, lambda := range []float64{4, 10, 16} {
		a := lambda / mu
		pWait, err := ErlangC(a, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []float64{0.5, 0.9, 0.99} {
			got := responseTimeQuantile(p, a, 1, mu, pWait)
			want := -math.Log(1-p) / (mu - lambda) // exponential quantile
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Errorf("lambda=%v p=%v: got %v want %v", lambda, p, got, want)
			}
		}
	}
}

func TestCalibrateTheta(t *testing.T) {
	n := Node{ServiceRate: 100, Workers: 8} // capacity 800 qps
	slo := SLO{Percentile: 0.99, Target: 50 * time.Millisecond}
	theta, err := CalibrateTheta(n, slo)
	if err != nil {
		t.Fatal(err)
	}
	if theta <= 0 || theta >= 800 {
		t.Fatalf("theta = %v, want in (0, 800)", theta)
	}
	// At theta the SLO holds; 10% above it should not.
	l, err := NodeLatency(n, theta)
	if err != nil {
		t.Fatal(err)
	}
	if l.P99 > slo.Target+time.Microsecond {
		t.Errorf("p99 at theta = %v exceeds target", l.P99)
	}
	over, err := NodeLatency(n, math.Min(theta*1.1, 799))
	if err != nil {
		t.Fatal(err)
	}
	if over.P99 <= slo.Target {
		t.Errorf("p99 just above theta = %v should exceed target", over.P99)
	}
}

func TestCalibrateThetaTighterSLOLowerTheta(t *testing.T) {
	n := Node{ServiceRate: 100, Workers: 8}
	loose, err := CalibrateTheta(n, SLO{Percentile: 0.99, Target: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := CalibrateTheta(n, SLO{Percentile: 0.99, Target: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if tight >= loose {
		t.Errorf("tight SLO theta %v should be below loose %v", tight, loose)
	}
	// Mean SLO (percentile below 0.95 uses the mean) also works.
	mean, err := CalibrateTheta(n, SLO{Percentile: 0.5, Target: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 {
		t.Errorf("mean-based theta = %v", mean)
	}
}

func TestCalibrateThetaUnattainable(t *testing.T) {
	// Service time alone is 10ms; a 1ms p99 target is impossible.
	n := Node{ServiceRate: 100, Workers: 4}
	if _, err := CalibrateTheta(n, SLO{Percentile: 0.99, Target: time.Millisecond}); err == nil {
		t.Error("unattainable SLO should fail")
	}
}

func TestCalibrateThetaValidation(t *testing.T) {
	n := Node{ServiceRate: 100, Workers: 4}
	if _, err := CalibrateTheta(n, SLO{Percentile: 0, Target: time.Second}); err == nil {
		t.Error("bad percentile should fail")
	}
	if _, err := CalibrateTheta(n, SLO{Percentile: 0.99, Target: 0}); err == nil {
		t.Error("zero target should fail")
	}
	if _, err := CalibrateTheta(Node{}, SLO{Percentile: 0.99, Target: time.Second}); err == nil {
		t.Error("bad node should fail")
	}
}

func TestThetaForUtilization(t *testing.T) {
	n := Node{ServiceRate: 100, Workers: 8}
	theta, err := ThetaForUtilization(n, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if theta != 560 {
		t.Errorf("theta = %v, want 560", theta)
	}
	if _, err := ThetaForUtilization(n, 0); err == nil {
		t.Error("zero utilization should fail")
	}
	if _, err := ThetaForUtilization(n, 1.5); err == nil {
		t.Error("over-unity utilization should fail")
	}
}
