package qos

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// SimResult is the empirical outcome of a discrete-event simulation of one
// node: the observed response-time distribution.
type SimResult struct {
	Served      int
	MeanSec     float64
	P50, P95    float64
	P99         float64
	Utilization float64
}

// Simulate runs a discrete-event simulation of one compute node as an
// M/M/c station: Poisson arrivals at arrivalRate, exponential service at
// the node's rate per worker, FIFO queueing across the node's workers.
// It serves as the empirical cross-check of the analytic formulas in this
// package (the tests assert they agree) and as the substrate for failure
// and burst experiments the closed forms cannot express.
func Simulate(n Node, arrivalRate float64, queries int, seed int64) (*SimResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if arrivalRate <= 0 {
		return nil, fmt.Errorf("qos: non-positive arrival rate %v", arrivalRate)
	}
	if queries < 1 {
		return nil, fmt.Errorf("qos: need at least one query, got %d", queries)
	}
	rng := rand.New(rand.NewSource(seed))

	// Worker availability times as a min-heap: the earliest-free worker
	// serves the head of the FIFO queue.
	workers := make(minHeap, n.Workers)
	heap.Init(&workers)

	latencies := make([]float64, 0, queries)
	arrival := 0.0
	busy := 0.0
	var lastDeparture float64
	for i := 0; i < queries; i++ {
		arrival += rng.ExpFloat64() / arrivalRate
		// The query starts when both it has arrived and a worker is free.
		start := arrival
		if workers[0] > start {
			start = workers[0]
		}
		service := rng.ExpFloat64() / n.ServiceRate
		finish := start + service
		workers[0] = finish
		heap.Fix(&workers, 0)

		latencies = append(latencies, finish-arrival)
		busy += service
		if finish > lastDeparture {
			lastDeparture = finish
		}
	}

	sort.Float64s(latencies)
	res := &SimResult{
		Served:      queries,
		P50:         percentile(latencies, 0.50),
		P95:         percentile(latencies, 0.95),
		P99:         percentile(latencies, 0.99),
		Utilization: busy / (lastDeparture * float64(n.Workers)),
	}
	sum := 0.0
	for _, l := range latencies {
		sum += l
	}
	res.MeanSec = sum / float64(len(latencies))
	return res, nil
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// minHeap is a float64 min-heap of worker free times.
type minHeap []float64

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
