package chaos

import (
	"math"
	"testing"

	"robustscale/internal/forecast"
	"robustscale/internal/timeseries"
)

// TestForecasterWarmBitIdenticalUnderFaults pins the chaos wrapper's warm
// contract: with no fault active, the wrapped warm path is bit-identical
// to a cold unwrapped twin, and it stays so after fault windows (errors,
// NaN poisoning) have come and gone.
func TestForecasterWarmBitIdenticalUnderFaults(t *testing.T) {
	n := 300
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 50 + 10*math.Sin(2*math.Pi*float64(i)/24)
	}
	s := timeseries.New("w", t0, timeseries.DefaultStep, vals)
	levels := []float64{0.1, 0.5, 0.9}

	cold := forecast.NewSeasonalNaive(24)
	inner := forecast.NewSeasonalNaive(24)
	train := s.Slice(0, 200)
	if err := cold.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := inner.Fit(train); err != nil {
		t.Fatal(err)
	}

	sched := &Schedule{}
	sched.Add(Event{Step: 2, Class: ForecastError})
	sched.Add(Event{Step: 3, Class: ForecastNaN})
	var cur Cursor
	wrapped := &Forecaster{Inner: inner, Schedule: sched, Cursor: &cur}

	for step, origin := 0, 210; origin < 220; step, origin = step+1, origin+1 {
		cur.Set(step)
		hist := s.Slice(0, origin)
		warm, err := wrapped.PredictQuantilesWarm(hist, 6, levels)
		switch step {
		case 2:
			if err == nil {
				t.Fatalf("step %d: scheduled forecast error not injected", step)
			}
			continue
		case 3:
			if err != nil {
				t.Fatal(err)
			}
			if !math.IsNaN(warm.Values[0][0]) {
				t.Fatalf("step %d: scheduled NaN poisoning not injected", step)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		ref, err := cold.PredictQuantiles(hist, 6, levels)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Mean {
			if ref.Mean[i] != warm.Mean[i] {
				t.Fatalf("step %d mean[%d]: cold %v != warm %v", step, i, ref.Mean[i], warm.Mean[i])
			}
			for j := range ref.Values[i] {
				if ref.Values[i][j] != warm.Values[i][j] {
					t.Fatalf("step %d values[%d][%d]: cold %v != warm %v", step, i, j, ref.Values[i][j], warm.Values[i][j])
				}
			}
		}
	}
}
