package chaos

import (
	"reflect"
	"testing"
)

func fleetProfile(seed int64, steps int) Profile {
	return Profile{
		Name: "fleet-test", Seed: seed, Steps: steps,
		Rates: map[Class]float64{
			ForecastError: 0.1, TelemetryStale: 0.1, ApplyReject: 0.1,
			ZoneOutage: 0.08, PoolCollapse: 0.08, AdmissionReject: 0.08,
		},
	}
}

func TestTenantSeedDerivation(t *testing.T) {
	a := TenantSeed(42, "t00000")
	b := TenantSeed(42, "t00001")
	if a == b {
		t.Fatal("distinct tenants should derive distinct seeds")
	}
	if a != TenantSeed(42, "t00000") {
		t.Fatal("tenant seed derivation must be deterministic")
	}
	if TenantSeed(42, "t00000") == 0 || TenantSeed(0, "") == 0 {
		t.Fatal("derived seed must never be zero")
	}
}

func TestFleetScheduleDeterminism(t *testing.T) {
	p := fleetProfile(7, 200)
	a, err := NewFleetSchedule(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFleetSchedule(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.FleetEvents(), b.FleetEvents()) {
		t.Error("fleet-level events must be identical for the same profile")
	}
	sa, err := a.TenantSchedule(5, "t00005")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.TenantSchedule(5, "t00005")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sa.Events(), sb.Events()) {
		t.Error("tenant schedules must be identical for the same profile")
	}
}

// A tenant's schedule is the exact restriction of the all-tenant run:
// deriving it from a fleet with different zone striping or alongside
// other tenants never changes its tenant-local events.
func TestTenantScheduleIsExactRestriction(t *testing.T) {
	p := fleetProfile(11, 300)
	fs, err := NewFleetSchedule(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Build the tenant's local classes directly with the derived seed.
	local := p
	local.Seed = TenantSeed(p.Seed, "t00003")
	local.Rates = map[Class]float64{
		ForecastError: 0.1, TelemetryStale: 0.1, ApplyReject: 0.1,
	}
	want, err := local.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.TenantSchedule(3, "t00003")
	if err != nil {
		t.Fatal(err)
	}
	// The expected schedule is the standalone build plus the zone-outage
	// translations, added in the same order TenantSchedule adds them.
	for _, e := range fs.FleetEvents() {
		if e.Class == ZoneOutage && fs.zoneOf(e) == fs.TenantZone(3) {
			want.Add(Event{Step: e.Step, Class: ApplyReject, Size: e.Size})
			want.Add(Event{Step: e.Step, Class: ForecastError, Size: e.Size})
		}
	}
	if !reflect.DeepEqual(got.Events(), want.Events()) {
		t.Errorf("tenant schedule is not a restriction of the all-tenant run:\n got %v\nwant %v", got.Events(), want.Events())
	}
}

func TestZoneOutageStrikesOneZone(t *testing.T) {
	p := Profile{Name: "zones", Seed: 5, Steps: 400,
		Rates: map[Class]float64{ZoneOutage: 0.05}}
	const zones = 4
	fs, err := NewFleetSchedule(p, zones)
	if err != nil {
		t.Fatal(err)
	}
	outages := fs.FleetEvents()
	if len(outages) == 0 {
		t.Skip("no outage scheduled at this seed")
	}
	e := outages[0]
	hitZone := fs.zoneOf(e)
	for idx := 0; idx < 2*zones; idx++ {
		sched, err := fs.TenantSchedule(idx, "x")
		if err != nil {
			t.Fatal(err)
		}
		_, reject := sched.ActiveAt(e.Step, ApplyReject)
		_, forecast := sched.ActiveAt(e.Step, ForecastError)
		inZone := fs.TenantZone(idx) == hitZone
		if inZone && (!reject || !forecast) {
			t.Errorf("tenant %d in zone %d should see reject+forecast faults at step %d", idx, hitZone, e.Step)
		}
		if !inZone && (reject || forecast) {
			t.Errorf("tenant %d outside zone %d must not see outage faults at step %d", idx, hitZone, e.Step)
		}
	}
}

func TestPoolFactorAndAdmissionReject(t *testing.T) {
	fs, err := NewFleetSchedule(Profile{Name: "manual"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs.fleet.Add(Event{Step: 10, Class: PoolCollapse, Size: 3, Value: 0.25})
	fs.fleet.Add(Event{Step: 20, Class: AdmissionReject, Size: 2})
	if got := fs.PoolFactorAt(9); got != 1 {
		t.Errorf("PoolFactorAt(9) = %v, want 1", got)
	}
	for step := 10; step < 13; step++ {
		if got := fs.PoolFactorAt(step); got != 0.25 {
			t.Errorf("PoolFactorAt(%d) = %v, want 0.25", step, got)
		}
	}
	if got := fs.PoolFactorAt(13); got != 1 {
		t.Errorf("PoolFactorAt(13) = %v, want 1", got)
	}
	if fs.AdmissionRejectAt(19) || !fs.AdmissionRejectAt(20) || !fs.AdmissionRejectAt(21) || fs.AdmissionRejectAt(22) {
		t.Error("AdmissionRejectAt window wrong")
	}
	// Out-of-range collapse values fall back to the 0.5 default.
	fs.fleet.Add(Event{Step: 30, Class: PoolCollapse, Size: 1, Value: 7})
	if got := fs.PoolFactorAt(30); got != 0.5 {
		t.Errorf("PoolFactorAt(30) = %v, want 0.5 fallback", got)
	}
}

func TestFleetScheduleNilSafety(t *testing.T) {
	var fs *FleetSchedule
	if fs.PoolFactorAt(0) != 1 || fs.AdmissionRejectAt(0) || fs.Zones() != 1 {
		t.Error("nil FleetSchedule must behave as fault-free")
	}
	sched, err := fs.TenantSchedule(0, "t")
	if err != nil || !sched.Empty() {
		t.Error("nil FleetSchedule tenant schedule must be empty")
	}
	faulted, err := fs.TenantFaulted(0, "t")
	if err != nil || faulted {
		t.Error("nil FleetSchedule must report no faulted tenants")
	}
}

func TestTenantFaulted(t *testing.T) {
	// Only zone-outage events: tenants in the struck zone are faulted,
	// others are clean bystanders.
	p := Profile{Name: "zones", Seed: 5, Steps: 400,
		Rates: map[Class]float64{ZoneOutage: 0.05}}
	fs, err := NewFleetSchedule(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	outages := fs.FleetEvents()
	if len(outages) == 0 {
		t.Skip("no outage scheduled at this seed")
	}
	struck := map[int]bool{}
	for _, e := range outages {
		struck[fs.zoneOf(e)] = true
	}
	for idx := 0; idx < 4; idx++ {
		faulted, err := fs.TenantFaulted(idx, "x")
		if err != nil {
			t.Fatal(err)
		}
		if faulted != struck[fs.TenantZone(idx)] {
			t.Errorf("tenant %d faulted=%v, struck zone=%v", idx, faulted, struck[fs.TenantZone(idx)])
		}
	}
}

func TestFleetPresets(t *testing.T) {
	for _, name := range []string{"zone-outage", "pool-collapse", "admission-reject", "fleet"} {
		p, err := Preset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("%s: name = %q", name, p.Name)
		}
		p.Seed, p.Steps = 3, 50
		if _, err := NewFleetSchedule(p, 2); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Adding fleet classes to a profile must not move the tenant-local
// event placement: per-class RNG streams keep single-class runs exact
// restrictions of combined runs.
func TestFleetClassesDoNotPerturbLocalStreams(t *testing.T) {
	base := Profile{Name: "base", Seed: 13, Steps: 250,
		Rates: map[Class]float64{ForecastError: 0.1, NodeKill: 0.05}}
	combined := base
	combined.Rates = map[Class]float64{
		ForecastError: 0.1, NodeKill: 0.05,
		ZoneOutage: 0.05, PoolCollapse: 0.05,
	}
	a, err := base.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := combined.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []Class{ForecastError, NodeKill} {
		var ea, eb []Event
		for _, e := range a.Events() {
			if e.Class == class {
				ea = append(ea, e)
			}
		}
		for _, e := range b.Events() {
			if e.Class == class {
				eb = append(eb, e)
			}
		}
		if !reflect.DeepEqual(ea, eb) {
			t.Errorf("%s stream perturbed by fleet classes", class)
		}
	}
}
