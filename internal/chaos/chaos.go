// Package chaos is a deterministic fault-injection harness for the
// auto-scaling control loop. It models the failure classes a production
// autoscaler meets at each boundary of the loop — the forecaster (errors,
// NaN/Inf fans, quantile crossing, unbounded blow-ups, latency), the
// telemetry pipeline (frozen sensors, dropout windows, duplicated
// samples), the control plane (rejected, partially fulfilled, or timed-out
// scaling actions), and the infrastructure itself (node kills) — as a
// seeded, precomputed Schedule over virtual-time replay steps.
//
// Everything is deterministic: a Profile expands to the same Schedule for
// the same seed, and injectors consult the schedule by step, so chaos runs
// are exactly reproducible and comparable against their fault-free twins.
// The package never touches wall-clock time.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"robustscale/internal/obs"
)

// Class identifies one fault class of the taxonomy.
type Class string

// The fault taxonomy, grouped by the control-loop boundary it strikes.
const (
	// ForecastError makes the forecaster return an error.
	ForecastError Class = "forecast-error"
	// ForecastNaN poisons fan entries with NaN/Inf values.
	ForecastNaN Class = "forecast-nan"
	// ForecastCrossing reverses quantile rows so levels cross.
	ForecastCrossing Class = "forecast-crossing"
	// ForecastBlowup multiplies the fan by an unbounded factor.
	ForecastBlowup Class = "forecast-blowup"
	// ForecastLatency delays the forecast by Event.Value seconds.
	ForecastLatency Class = "forecast-latency"

	// TelemetryStale freezes the observed history tail at one value.
	TelemetryStale Class = "telemetry-stale"
	// TelemetryDropout replaces a window of observations with NaN.
	TelemetryDropout Class = "telemetry-dropout"
	// TelemetryDuplicate double-counts a window of observations.
	TelemetryDuplicate Class = "telemetry-duplicate"

	// ApplyReject makes the control plane refuse the scaling action.
	ApplyReject Class = "apply-reject"
	// ApplyPartial fulfils only part of the requested node delta.
	ApplyPartial Class = "apply-partial"
	// ApplyTimeout times the scaling action out with no effect.
	ApplyTimeout Class = "apply-timeout"

	// NodeKill abruptly removes Event.Size nodes.
	NodeKill Class = "node-kill"

	// CrashRestart kills the control loop itself at the step, forcing a
	// restart that must recover from its last checkpoint. Unlike the
	// other classes it is not injected by a wrapper mid-replay — the
	// restartable harness (RunRestartable) consumes it by tearing the
	// loop down and recovering from disk.
	CrashRestart Class = "crash-restart"

	// The serverless wake taxonomy: faults striking the zero->nonzero
	// transition, where a parked tenant has no capacity to degrade onto.

	// WakeStall stretches an in-flight wake-from-zero by Event.Value
	// extra seconds (cold-start pathology: image pull, slow checkpoint
	// restore, placement retry).
	WakeStall Class = "wake-stall"
	// WakeFail makes a wake-from-zero attempt fail outright for the
	// window; the tenant stays at zero capacity and must retry.
	WakeFail Class = "wake-fail"
	// PartialProvision grants only half of a requested resize or wake
	// fleet for the window (capacity arrives, but not all of it).
	PartialProvision Class = "partial-provision"
)

// Classes lists every fault class in taxonomy order.
var Classes = []Class{
	ForecastError, ForecastNaN, ForecastCrossing, ForecastBlowup, ForecastLatency,
	TelemetryStale, TelemetryDropout, TelemetryDuplicate,
	ApplyReject, ApplyPartial, ApplyTimeout,
	NodeKill,
	CrashRestart,
	ZoneOutage, PoolCollapse, AdmissionReject,
	WakeStall, WakeFail, PartialProvision, WakeStorm,
}

// injectedTotal counts faults that actually fired, by class; injectors
// feed it so a chaos run's blast radius is visible on /metrics.
var injectedTotal = obs.Default.CounterVec(
	"robustscale_chaos_faults_injected_total",
	"Chaos faults that fired during replay, by fault class.",
	"class")

// CountInjected records one fired fault of the given class.
func CountInjected(c Class) { injectedTotal.With(string(c)).Inc() }

// InjectedTotal returns how many faults have fired process-wide across
// all classes, read back from the injection counters.
func InjectedTotal() float64 {
	total := 0.0
	for _, c := range Classes {
		total += injectedTotal.With(string(c)).Value()
	}
	return total
}

// Event is one scheduled fault: it is active over the step window
// [Step, Step+max(Size,1)).
type Event struct {
	// Step is the replay step the fault starts at.
	Step int
	// Class is the fault class.
	Class Class
	// Size is the window length in steps (kill count for NodeKill).
	Size int
	// Value is a class-specific magnitude: the blow-up factor for
	// ForecastBlowup, injected seconds for ForecastLatency/ApplyTimeout.
	Value float64
}

// window returns the step span the event is active over.
func (e Event) window() (from, to int) {
	n := e.Size
	if n < 1 {
		n = 1
	}
	return e.Step, e.Step + n
}

// Schedule is a precomputed, immutable-after-build fault plan indexed by
// replay step. The zero value is an empty schedule; a nil *Schedule is
// also treated as empty by every method.
type Schedule struct {
	byClass map[Class][]Event // events per class, sorted by Step
	total   int
}

// Add appends an event to the schedule, keeping per-class step order.
func (s *Schedule) Add(e Event) {
	if s.byClass == nil {
		s.byClass = make(map[Class][]Event)
	}
	evs := append(s.byClass[e.Class], e)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Step < evs[j].Step })
	s.byClass[e.Class] = evs
	s.total++
}

// Len returns the number of scheduled events.
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return s.total
}

// Empty reports whether nothing is scheduled.
func (s *Schedule) Empty() bool { return s.Len() == 0 }

// Events returns every scheduled event, ordered by step then class.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	out := make([]Event, 0, s.total)
	for _, evs := range s.byClass {
		out = append(out, evs...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Step != out[j].Step {
			return out[i].Step < out[j].Step
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// ActiveAt returns the event of the given class whose window covers step,
// if any. Overlapping windows resolve to the latest-starting event.
func (s *Schedule) ActiveAt(step int, class Class) (Event, bool) {
	if s == nil {
		return Event{}, false
	}
	evs := s.byClass[class]
	// Walk backwards: the latest-starting active window wins.
	for i := len(evs) - 1; i >= 0; i-- {
		from, to := evs[i].window()
		if from > step {
			continue
		}
		if step < to {
			return evs[i], true
		}
	}
	return Event{}, false
}

// ApplyFaultAt reports whether any control-plane fault class (rejection,
// partial fulfilment, timeout) is active at the step — the condition
// under which a failed scale action is an injected fault to hold through
// rather than a real error to propagate.
func (s *Schedule) ApplyFaultAt(step int) bool {
	for _, class := range []Class{ApplyReject, ApplyPartial, ApplyTimeout} {
		if _, ok := s.ActiveAt(step, class); ok {
			return true
		}
	}
	return false
}

// WakeStallAt returns the extra cold-start seconds an in-flight wake
// suffers at the step (0 with no active WakeStall window).
func (s *Schedule) WakeStallAt(step int) float64 {
	if e, ok := s.ActiveAt(step, WakeStall); ok {
		if e.Value > 0 {
			return e.Value
		}
		return 900
	}
	return 0
}

// WakeFailAt reports whether wake-from-zero attempts fail at the step.
func (s *Schedule) WakeFailAt(step int) bool {
	_, ok := s.ActiveAt(step, WakeFail)
	return ok
}

// PartialProvisionAt reports whether resizes and wakes deliver only part
// of the requested fleet at the step.
func (s *Schedule) PartialProvisionAt(step int) bool {
	_, ok := s.ActiveAt(step, PartialProvision)
	return ok
}

// KillsAt returns how many nodes the schedule kills at exactly this step.
func (s *Schedule) KillsAt(step int) int {
	if s == nil {
		return 0
	}
	killed := 0
	for _, e := range s.byClass[NodeKill] {
		if e.Step == step {
			n := e.Size
			if n < 1 {
				n = 1
			}
			killed += n
		}
	}
	return killed
}

// Profile parameterizes deterministic schedule generation: per-class
// per-step fault probabilities plus class magnitudes. Each class draws
// from its own seed-derived RNG stream, so enabling one class never
// perturbs another's event placement — a single-class run is the exact
// restriction of the all-class run.
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// Seed drives event placement; required when any rate is positive.
	Seed int64
	// Steps is the replay length the schedule covers.
	Steps int
	// Rates maps each class to its per-step fault probability.
	Rates map[Class]float64
	// KillSize is nodes killed per NodeKill event (default 1).
	KillSize int
	// WindowLen is the window length of telemetry and apply faults in
	// steps (default 3).
	WindowLen int
	// BlowupFactor multiplies the fan under ForecastBlowup (default 1e6).
	BlowupFactor float64
	// LatencySeconds is injected per ForecastLatency/ApplyTimeout event
	// (default 30).
	LatencySeconds float64
	// CollapseFraction is the remaining pool fraction during a
	// PoolCollapse window (default 0.5).
	CollapseFraction float64
	// WakeStallSeconds is the extra cold-start latency injected per
	// WakeStall event (default 900 — 1.5 replay steps at the default
	// 10-minute aggregation, enough to push a wake past its step).
	WakeStallSeconds float64
}

// Validate reports configuration errors.
func (p Profile) Validate() error {
	if p.Steps < 0 {
		return fmt.Errorf("chaos: negative profile steps %d", p.Steps)
	}
	if p.KillSize < 0 {
		return fmt.Errorf("chaos: negative kill size %d", p.KillSize)
	}
	if p.WindowLen < 0 {
		return fmt.Errorf("chaos: negative window length %d", p.WindowLen)
	}
	anyRate := false
	for class, rate := range p.Rates {
		if rate < 0 || rate > 1 {
			return fmt.Errorf("chaos: %s rate %v outside [0, 1]", class, rate)
		}
		if rate > 0 {
			anyRate = true
		}
		if !validClass(class) {
			return fmt.Errorf("chaos: unknown fault class %q", class)
		}
	}
	if anyRate && p.Seed == 0 {
		return fmt.Errorf("chaos: profile %q needs an explicit non-zero seed for deterministic injection", p.Name)
	}
	return nil
}

func validClass(c Class) bool {
	for _, known := range Classes {
		if c == known {
			return true
		}
	}
	return false
}

// Only returns a copy of the profile with every class but the given one
// disabled — the per-class cell of a resilience matrix.
func (p Profile) Only(class Class) Profile {
	out := p
	out.Rates = map[Class]float64{class: p.Rates[class]}
	return out
}

// ActiveClasses returns the classes with a positive rate, in taxonomy
// order.
func (p Profile) ActiveClasses() []Class {
	var out []Class
	for _, c := range Classes {
		if p.Rates[c] > 0 {
			out = append(out, c)
		}
	}
	return out
}

// classSeed derives a per-class RNG seed so class streams are independent.
func classSeed(seed int64, class Class) int64 {
	h := fnv.New64a()
	h.Write([]byte(class))
	derived := seed ^ int64(h.Sum64())
	if derived == 0 {
		derived = 1
	}
	return derived
}

// Build expands the profile into a concrete schedule.
func (p Profile) Build() (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	killSize := p.KillSize
	if killSize == 0 {
		killSize = 1
	}
	window := p.WindowLen
	if window == 0 {
		window = 3
	}
	blowup := p.BlowupFactor
	if blowup == 0 {
		blowup = 1e6
	}
	latency := p.LatencySeconds
	if latency == 0 {
		latency = 30
	}
	collapse := p.CollapseFraction
	if collapse <= 0 || collapse > 1 {
		collapse = 0.5
	}
	stall := p.WakeStallSeconds
	if stall == 0 {
		stall = 900
	}
	sched := &Schedule{}
	for _, class := range Classes {
		rate := p.Rates[class]
		if rate <= 0 {
			continue
		}
		rng := rand.New(rand.NewSource(classSeed(p.Seed, class)))
		for step := 0; step < p.Steps; step++ {
			if rng.Float64() >= rate {
				continue
			}
			e := Event{Step: step, Class: class}
			switch class {
			case NodeKill:
				e.Size = killSize
			case CrashRestart:
				e.Size = 1 // a crash strikes one step, not a window
			case ForecastBlowup:
				e.Value = blowup
			case ForecastLatency, ApplyTimeout:
				e.Size = window
				e.Value = latency
			case PoolCollapse:
				e.Size = window
				e.Value = collapse
			case WakeStall:
				e.Size = window
				e.Value = stall
			default:
				e.Size = window
			}
			sched.Add(e)
		}
	}
	return sched, nil
}

// FromFaultConfig reproduces the legacy cluster.FaultConfig injection
// stream as a schedule: one uniform draw per step against prob, killing
// size nodes on a hit. The RNG consumption is bit-compatible with the
// historical ReplayWithFaults implementation, so seeded runs replay
// identically through the schedule path.
func FromFaultConfig(prob float64, size int, seed int64, steps int) *Schedule {
	sched := &Schedule{}
	if prob <= 0 {
		return sched
	}
	if size < 1 {
		size = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for step := 0; step < steps; step++ {
		if rng.Float64() < prob {
			sched.Add(Event{Step: step, Class: NodeKill, Size: size})
		}
	}
	return sched
}

// Preset returns a named chaos profile. Steps and Seed are left zero for
// the caller to fill in.
//
//	none       no faults (the baseline twin of every chaos run)
//	forecast   forecaster faults only
//	telemetry  telemetry faults only
//	apply      control-plane faults only
//	node-kill  infrastructure faults only
//	all        every class at moderate rates
//	smoke      every class at aggressive rates, sized for short CI runs
func Preset(name string) (Profile, error) {
	switch name {
	case "none":
		return Profile{Name: name}, nil
	case "forecast":
		return Profile{Name: name, Rates: map[Class]float64{
			ForecastError: 0.05, ForecastNaN: 0.05, ForecastCrossing: 0.04,
			ForecastBlowup: 0.03, ForecastLatency: 0.03,
		}}, nil
	case "telemetry":
		return Profile{Name: name, Rates: map[Class]float64{
			TelemetryStale: 0.05, TelemetryDropout: 0.03, TelemetryDuplicate: 0.03,
		}}, nil
	case "apply":
		return Profile{Name: name, Rates: map[Class]float64{
			ApplyReject: 0.06, ApplyPartial: 0.04, ApplyTimeout: 0.04,
		}}, nil
	case "node-kill":
		return Profile{Name: name, Rates: map[Class]float64{NodeKill: 0.04}}, nil
	case "all":
		return Profile{Name: name, Rates: map[Class]float64{
			ForecastError: 0.03, ForecastNaN: 0.03, ForecastCrossing: 0.02,
			ForecastBlowup: 0.02, ForecastLatency: 0.02,
			TelemetryStale: 0.03, TelemetryDropout: 0.02, TelemetryDuplicate: 0.02,
			ApplyReject: 0.04, ApplyPartial: 0.03, ApplyTimeout: 0.03,
			NodeKill: 0.03,
		}}, nil
	case "smoke":
		return Profile{Name: name, Rates: map[Class]float64{
			ForecastError: 0.25, ForecastNaN: 0.25, ForecastCrossing: 0.2,
			ForecastBlowup: 0.15, ForecastLatency: 0.1,
			TelemetryStale: 0.2, TelemetryDropout: 0.15, TelemetryDuplicate: 0.15,
			ApplyReject: 0.25, ApplyPartial: 0.15, ApplyTimeout: 0.15,
			NodeKill: 0.15,
		}}, nil
	case "wake":
		return Profile{Name: name, Rates: map[Class]float64{
			WakeStall: 0.05, WakeFail: 0.04, PartialProvision: 0.04,
		}}, nil
	case "wake-storm":
		return Profile{Name: name, Rates: map[Class]float64{
			WakeStorm: 0.02, WakeStall: 0.03, WakeFail: 0.03,
		}}, nil
	case "zone-outage":
		return Profile{Name: name, Rates: map[Class]float64{ZoneOutage: 0.03}}, nil
	case "pool-collapse":
		return Profile{Name: name, Rates: map[Class]float64{PoolCollapse: 0.04}}, nil
	case "admission-reject":
		return Profile{Name: name, Rates: map[Class]float64{AdmissionReject: 0.05}}, nil
	case "fleet":
		return Profile{Name: name, Rates: map[Class]float64{
			ForecastError: 0.02, ForecastNaN: 0.02, TelemetryStale: 0.02,
			ApplyReject: 0.03, NodeKill: 0.02,
			ZoneOutage: 0.02, PoolCollapse: 0.02, AdmissionReject: 0.03,
		}}, nil
	default:
		return Profile{}, fmt.Errorf("chaos: unknown profile %q (want none|forecast|telemetry|apply|node-kill|all|smoke|wake|wake-storm|zone-outage|pool-collapse|admission-reject|fleet)", name)
	}
}
