package chaos

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"time"

	"robustscale/internal/forecast"
	"robustscale/internal/obs"
	"robustscale/internal/scaler"
	"robustscale/internal/timeseries"
)

// restartWorkload is a deterministic daily-cycle series, sized so TFT
// trains in well under a second.
func restartWorkload(n int) *timeseries.Series {
	values := make([]float64, n)
	for i := range values {
		phase := 2 * math.Pi * float64(i) / 48
		values[i] = 50 + 12*math.Sin(phase) + 3*math.Sin(7*phase)
	}
	return timeseries.New("restart-test", time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC), 10*time.Minute, values)
}

// tftEpochs reads the process-wide TFT training-epoch counter — the
// instrument the zero-retraining assertion is made against.
func tftEpochs() float64 {
	return obs.Default.CounterVec(
		"robustscale_forecast_train_epochs_total",
		"Training epochs completed, by model.",
		"model").With("tft").Value()
}

// restartLoopConfig wires a robust-on-TFT control loop whose Build hook
// trains only on a cold start and restores weights on a warm start.
func restartLoopConfig(t *testing.T, workload *timeseries.Series, trainEnd int, dir string) LoopConfig {
	t.Helper()
	tftCfg := forecast.TFTConfig{
		Context: 24, Hidden: 8, Epochs: 2, Seed: 7, MaxWindows: 32,
		Levels: []float64{0.5, 0.9}, TrainHorizon: 6,
	}
	const theta = 12.0
	return LoopConfig{
		Workload: workload,
		Start:    trainEnd,
		Horizon:  6,
		Theta:    theta,
		Dir:      dir,
		Build: func(model []byte) (scaler.Strategy, error) {
			m := forecast.NewTFT(tftCfg)
			if model != nil {
				if err := m.Load(bytes.NewReader(model)); err != nil {
					return nil, err
				}
			} else if err := m.Fit(workload.Slice(0, trainEnd)); err != nil {
				return nil, err
			}
			return &scaler.Robust{Forecaster: m, Tau: 0.9, Theta: theta}, nil
		},
		Snapshot: func(strat scaler.Strategy) ([]byte, error) {
			var buf bytes.Buffer
			err := strat.(*scaler.Robust).Forecaster.(*forecast.TFT).Save(&buf)
			return buf.Bytes(), err
		},
	}
}

// TestRunRestartableMatchesUninterrupted is the durability contract's
// chaos test: a run crashed mid-round three times and warm-restarted
// from its checkpoints must produce the bit-identical allocation
// sequence of an uninterrupted run, perform zero training epochs across
// every recovery, and introduce no SLO violations the uninterrupted run
// did not have.
func TestRunRestartableMatchesUninterrupted(t *testing.T) {
	workload := restartWorkload(400)
	const trainEnd = 360

	baseCfg := restartLoopConfig(t, workload, trainEnd, t.TempDir())
	e0 := tftEpochs()
	base, err := RunRestartable(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	trainedEpochs := tftEpochs() - e0
	if trainedEpochs <= 0 {
		t.Fatalf("baseline cold start trained %v epochs, expected > 0", trainedEpochs)
	}
	if base.Crashes != 0 || base.WarmStarts != 0 || base.ColdStarts != 1 {
		t.Fatalf("baseline lifecycle: %+v", base)
	}

	// Crash the loop mid-round, once per lifetime, all after the first
	// checkpoint exists so every restart recovers warm.
	crashes := &Schedule{}
	for _, step := range []int{368, 385, 391} {
		crashes.Add(Event{Step: step, Class: CrashRestart, Size: 1})
	}
	crashedCfg := restartLoopConfig(t, workload, trainEnd, t.TempDir())
	crashedCfg.Crashes = crashes

	e1 := tftEpochs()
	crashed, err := RunRestartable(crashedCfg)
	if err != nil {
		t.Fatal(err)
	}
	crashedEpochs := tftEpochs() - e1

	if crashed.Crashes != 3 {
		t.Fatalf("crashes consumed = %d, want 3", crashed.Crashes)
	}
	if crashed.WarmStarts != 3 || crashed.ColdStarts != 1 {
		t.Fatalf("lifecycle: %d warm / %d cold starts, want 3/1", crashed.WarmStarts, crashed.ColdStarts)
	}
	// Zero warm-start training: the crashed run trained exactly as much
	// as the uninterrupted one — its single cold start — despite living
	// four process lifetimes.
	if crashedEpochs != trainedEpochs {
		t.Fatalf("crashed run trained %v epochs vs baseline %v: warm starts retrained", crashedEpochs, trainedEpochs)
	}
	// Bit-identical allocations.
	if len(crashed.Allocations) != len(base.Allocations) {
		t.Fatalf("allocation lengths: %d vs %d", len(crashed.Allocations), len(base.Allocations))
	}
	for i := range base.Allocations {
		if crashed.Allocations[i] != base.Allocations[i] {
			t.Fatalf("allocation diverged at step %d: crashed %d, uninterrupted %d",
				trainEnd+i, crashed.Allocations[i], base.Allocations[i])
		}
	}
	// Recovery never violated SLOs the uninterrupted run did not: with
	// identical allocations the violation counts must agree exactly.
	if crashed.Violations != base.Violations {
		t.Fatalf("violations: crashed %d, uninterrupted %d", crashed.Violations, base.Violations)
	}
	// More rounds executed (re-planned after each crash), same coverage.
	if crashed.Rounds <= base.Rounds {
		t.Fatalf("crashed run executed %d rounds, baseline %d: crashes did not force re-planning", crashed.Rounds, base.Rounds)
	}
}

// TestRunRestartableCrashBeforeFirstCheckpoint covers the worst case:
// dying before anything is on disk forces a second cold start, which —
// with a deterministic Build — still reproduces the baseline exactly.
func TestRunRestartableCrashBeforeFirstCheckpoint(t *testing.T) {
	workload := restartWorkload(400)
	const trainEnd = 360

	base, err := RunRestartable(restartLoopConfig(t, workload, trainEnd, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}

	crashes := &Schedule{}
	crashes.Add(Event{Step: 362, Class: CrashRestart, Size: 1}) // inside round one
	cfg := restartLoopConfig(t, workload, trainEnd, t.TempDir())
	cfg.Crashes = crashes
	crashed, err := RunRestartable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.ColdStarts != 2 || crashed.WarmStarts != 0 {
		t.Fatalf("lifecycle: %d cold / %d warm starts, want 2/0", crashed.ColdStarts, crashed.WarmStarts)
	}
	for i := range base.Allocations {
		if crashed.Allocations[i] != base.Allocations[i] {
			t.Fatalf("allocation diverged at step %d", trainEnd+i)
		}
	}
}

// TestRunRestartableCheckpointCadence verifies CheckpointEvery > 1
// loses at most that many rounds: a crash after the second round with a
// two-round cadence recovers from the round-two checkpoint.
func TestRunRestartableCheckpointCadence(t *testing.T) {
	workload := restartWorkload(400)
	const trainEnd = 360

	crashes := &Schedule{}
	crashes.Add(Event{Step: 379, Class: CrashRestart, Size: 1}) // round 4
	cfg := restartLoopConfig(t, workload, trainEnd, t.TempDir())
	cfg.Crashes = crashes
	cfg.CheckpointEvery = 2
	crashed, err := RunRestartable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.WarmStarts != 1 {
		t.Fatalf("warm starts = %d, want 1", crashed.WarmStarts)
	}
	base, err := RunRestartable(restartLoopConfig(t, workload, trainEnd, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Allocations {
		if crashed.Allocations[i] != base.Allocations[i] {
			t.Fatalf("allocation diverged at step %d", trainEnd+i)
		}
	}
}

func TestRunRestartableValidation(t *testing.T) {
	workload := restartWorkload(100)
	cases := []LoopConfig{
		{},
		{Workload: workload},
		{Workload: workload, Horizon: 6},
		{Workload: workload, Horizon: 6, Theta: 5},
		{Workload: workload, Horizon: 6, Theta: 5, Build: func([]byte) (scaler.Strategy, error) { return nil, nil }, Start: 99},
	}
	for i, cfg := range cases {
		if cfg.Dir == "" {
			cfg.Dir = t.TempDir()
		}
		if _, err := RunRestartable(cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
}

// TestCrashRestartClassInTaxonomy pins the new class into the taxonomy
// and the profile builder.
func TestCrashRestartClassInTaxonomy(t *testing.T) {
	if !validClass(CrashRestart) {
		t.Fatal("crash-restart missing from Classes")
	}
	p := Profile{Name: "crash", Seed: 11, Steps: 500, Rates: map[Class]float64{CrashRestart: 0.05}}
	sched, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sched.Empty() {
		t.Fatal("crash-restart profile produced no events")
	}
	for _, e := range sched.Events() {
		if e.Class != CrashRestart || e.Size != 1 {
			t.Fatalf("unexpected event %+v", e)
		}
	}
	// Enabling crash-restart must not perturb any other class's stream:
	// per-class seeding makes the all-class schedule a superset.
	all, err := Profile{Name: "all", Seed: 11, Steps: 500, Rates: map[Class]float64{
		NodeKill: 0.05, CrashRestart: 0.05,
	}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	only, err := Profile{Name: "only", Seed: 11, Steps: 500, Rates: map[Class]float64{
		NodeKill: 0.05,
	}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	var allKills, onlyKills []Event
	for _, e := range all.Events() {
		if e.Class == NodeKill {
			allKills = append(allKills, e)
		}
	}
	onlyKills = only.Events()
	if fmt.Sprint(allKills) != fmt.Sprint(onlyKills) {
		t.Fatalf("node-kill stream perturbed by crash-restart:\n %v\nvs %v", allKills, onlyKills)
	}
}
