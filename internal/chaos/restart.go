package chaos

import (
	"fmt"

	"robustscale/internal/persist"
	"robustscale/internal/scaler"
	"robustscale/internal/timeseries"
)

// The restartable control-loop harness: an in-process model of a daemon
// that can be killed at any step and must recover from its checkpoint
// directory. It exists to prove the durability contract — a crashed and
// warm-restarted run produces exactly the allocations of an
// uninterrupted one, with zero retraining — under the same deterministic
// scheduling discipline as the rest of the chaos harness.

// LoopConfig configures one restartable control-loop run.
type LoopConfig struct {
	// Workload is the replayed series; planning covers
	// [Start, Workload.Len()) in Horizon-step rounds.
	Workload *timeseries.Series
	// Start is the first planning origin (typically the train/replay
	// split point).
	Start int
	// Horizon is the steps planned per round.
	Horizon int
	// Theta is the per-node workload threshold for violation accounting.
	Theta float64
	// Initial is the allocation in effect before the first round
	// (default 1).
	Initial int

	// Dir is the checkpoint directory; required.
	Dir string
	// Retain bounds retained snapshots (persist.DefaultRetain when 0).
	Retain int
	// CheckpointEvery checkpoints every N completed rounds (default 1).
	// Crashes between checkpoints lose at most N rounds of progress,
	// which recovery re-plans deterministically.
	CheckpointEvery int

	// Crashes schedules CrashRestart events; each is consumed once —
	// the loop dies at that step on first reaching it, then restarts.
	Crashes *Schedule
	// MaxRestarts bounds recoveries before the run is declared wedged
	// (default 100).
	MaxRestarts int

	// Build constructs the strategy for one loop lifetime. A nil model
	// means cold start (train from scratch); otherwise model holds the
	// forecaster snapshot from the recovered checkpoint and Build must
	// restore it WITHOUT training. Required.
	Build func(model []byte) (scaler.Strategy, error)
	// Snapshot serializes the strategy's forecaster for the checkpoint;
	// nil means the strategy is model-free and nothing is persisted.
	Snapshot func(strat scaler.Strategy) ([]byte, error)
}

// LoopResult reports one restartable run.
type LoopResult struct {
	// Allocations holds the final per-step allocation for every planned
	// step, indexed from Start. Steps re-planned after a crash are
	// overwritten, so the slice reflects what a continuously observed
	// fleet would have seen.
	Allocations []int
	// Violations counts steps whose workload exceeded Theta times the
	// allocation, over the final Allocations.
	Violations int
	// Rounds counts planning rounds executed, re-planned rounds after a
	// crash included.
	Rounds int
	// Crashes counts consumed CrashRestart events.
	Crashes int
	// WarmStarts counts lifetimes that recovered from a checkpoint;
	// ColdStarts counts lifetimes that began with nothing usable on disk.
	WarmStarts, ColdStarts int
}

// RunRestartable drives the control loop to completion through every
// scheduled crash: each CrashRestart event tears the loop down
// mid-round, and the next lifetime recovers from the checkpoint
// directory and resumes planning. The harness is fully deterministic
// for a deterministic Build.
func RunRestartable(cfg LoopConfig) (*LoopResult, error) {
	if cfg.Workload == nil {
		return nil, fmt.Errorf("chaos: restartable loop needs a workload")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("chaos: non-positive horizon %d", cfg.Horizon)
	}
	if cfg.Theta <= 0 {
		return nil, fmt.Errorf("chaos: non-positive theta %v", cfg.Theta)
	}
	if cfg.Build == nil {
		return nil, fmt.Errorf("chaos: restartable loop needs a Build hook")
	}
	if cfg.Start < 0 || cfg.Start+cfg.Horizon > cfg.Workload.Len() {
		return nil, fmt.Errorf("chaos: start %d leaves no plannable round in %d steps", cfg.Start, cfg.Workload.Len())
	}
	if cfg.Initial <= 0 {
		cfg.Initial = 1
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	maxRestarts := cfg.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 100
	}

	// Covered steps: whole rounds only, as in the daemon's replay loop.
	covered := ((cfg.Workload.Len() - cfg.Start) / cfg.Horizon) * cfg.Horizon
	res := &LoopResult{Allocations: make([]int, covered)}
	consumed := make(map[int]bool)

	for {
		crashed, err := runLifetime(cfg, res, consumed)
		if err != nil {
			return nil, err
		}
		if !crashed {
			break
		}
		res.Crashes++
		if res.Crashes > maxRestarts {
			return nil, fmt.Errorf("chaos: loop wedged after %d restarts", res.Crashes)
		}
	}

	// Violations are judged once, over the final allocation sequence: a
	// step re-planned after recovery counts exactly once.
	res.Violations = 0
	for i, alloc := range res.Allocations {
		if cfg.Workload.At(cfg.Start+i) > cfg.Theta*float64(alloc) {
			res.Violations++
		}
	}
	return res, nil
}

// runLifetime is one process lifetime: recover (or cold start), then
// plan rounds until completion or the next scheduled crash. It returns
// crashed=true when a CrashRestart event fired.
func runLifetime(cfg LoopConfig, res *LoopResult, consumed map[int]bool) (crashed bool, err error) {
	mgr, err := persist.NewManager(cfg.Dir, cfg.Retain)
	if err != nil {
		return false, err
	}

	origin, prevAlloc := cfg.Start, cfg.Initial
	var model []byte
	st, _, rerr := mgr.Recover()
	switch {
	case rerr != nil:
		// Every snapshot was rejected: cold start rather than wedge.
		st = nil
	case st != nil:
		if st.Fingerprint.Theta != cfg.Theta || st.Fingerprint.Horizon != cfg.Horizon {
			// A checkpoint from a different run configuration is not
			// safe to resume from.
			st = nil
		}
	}
	if st != nil {
		origin, prevAlloc, model = st.Origin, st.PrevAlloc, st.Forecaster
		res.WarmStarts++
	} else {
		res.ColdStarts++
	}

	strat, err := cfg.Build(model)
	if err != nil {
		return false, fmt.Errorf("chaos: building strategy (warm=%v): %w", st != nil, err)
	}

	h := cfg.Horizon
	roundsSinceCheckpoint := 0
	for ; origin+h <= cfg.Workload.Len(); origin += h {
		plan, err := strat.Plan(cfg.Workload.Slice(0, origin), h)
		if err != nil {
			return false, fmt.Errorf("chaos: planning at origin %d: %w", origin, err)
		}
		res.Rounds++
		for k := 0; k < h; k++ {
			step := origin + k
			res.Allocations[step-cfg.Start] = plan[k]
			prevAlloc = plan[k]
			if ev, ok := cfg.Crashes.ActiveAt(step, CrashRestart); ok && ev.Step == step && !consumed[step] {
				// The loop dies here, mid-round: the last checkpoint is
				// at an earlier round boundary, so recovery re-plans
				// this round from identical inputs.
				consumed[step] = true
				CountInjected(CrashRestart)
				return true, nil
			}
		}
		roundsSinceCheckpoint++
		if roundsSinceCheckpoint >= cfg.CheckpointEvery {
			roundsSinceCheckpoint = 0
			var snap []byte
			if cfg.Snapshot != nil {
				if snap, err = cfg.Snapshot(strat); err != nil {
					return false, fmt.Errorf("chaos: snapshotting strategy: %w", err)
				}
			}
			ckpt := &persist.State{
				SavedAt:     cfg.Workload.TimeAt(origin + h - 1),
				Fingerprint: persist.Fingerprint{Strategy: strat.Name(), Theta: cfg.Theta, Horizon: cfg.Horizon},
				Origin:      origin + h,
				PrevAlloc:   prevAlloc,
				Steps:       origin + h - cfg.Start,
				Forecaster:  snap,
			}
			if _, err := mgr.Write(ckpt); err != nil {
				return false, fmt.Errorf("chaos: checkpointing at origin %d: %w", origin+h, err)
			}
		}
	}
	return false, nil
}
