// Fleet-scale chaos: correlated fault classes that strike the shared
// control plane rather than a single tenant's loop, plus per-tenant
// fault schedules derived from one master seed.
//
// The derivation mirrors the per-class FNV pattern: each tenant's local
// schedule is built from TenantSeed(master, id), so a single tenant's
// schedule is the exact restriction of the all-tenant run — adding or
// removing tenants from the injection set never perturbs another
// tenant's event placement, and fleet-level classes (zone outage, pool
// collapse, admission rejects) draw from the master seed's own per-class
// streams so they are identical no matter which tenants are enrolled.
package chaos

import (
	"hash/fnv"
)

// The fleet-level fault classes. Unlike the per-loop taxonomy these are
// correlated: one event strikes many tenants (zone outage) or the shared
// capacity pool itself (collapse, admission rejects).
const (
	// ZoneOutage takes a deterministic tenant subset (one zone) offline
	// for the event window: affected tenants see control-plane rejects
	// and forecaster errors for the duration.
	ZoneOutage Class = "zone-outage"
	// PoolCollapse shrinks the shared node pool to Event.Value (a
	// remaining fraction in (0, 1]) for the event window.
	PoolCollapse Class = "pool-collapse"
	// AdmissionReject makes the admission RPC refuse every clip/shed
	// decision for the window: tenants hold their previous allocation.
	AdmissionReject Class = "admission-reject"
	// WakeStorm is a correlated flash crowd: every parked tenant is
	// forced awake simultaneously for the window, stressing cold-start
	// latency and pool admission at the same instant — the serverless
	// failure mode scale-to-zero fleets fear most.
	WakeStorm Class = "wake-storm"
)

// FleetClasses lists the fleet-level classes in taxonomy order.
var FleetClasses = []Class{ZoneOutage, PoolCollapse, AdmissionReject, WakeStorm}

// fleetClass reports whether the class strikes the fleet layer (and so
// draws from the master seed) rather than a single tenant's loop.
func fleetClass(c Class) bool {
	for _, fc := range FleetClasses {
		if c == fc {
			return true
		}
	}
	return false
}

// TenantSeed derives a per-tenant RNG seed from the fleet master seed,
// using the same FNV-1a pattern as classSeed so tenant streams are
// independent of each other and of the fleet-level class streams.
func TenantSeed(seed int64, id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	derived := seed ^ int64(h.Sum64())
	if derived == 0 {
		derived = 1
	}
	return derived
}

// FleetSchedule is a precomputed fleet-wide fault plan: fleet-level
// events built from the master seed, plus a profile template from which
// per-tenant local schedules derive. A nil *FleetSchedule is empty.
type FleetSchedule struct {
	profile Profile
	zones   int
	fleet   *Schedule // ZoneOutage / PoolCollapse / AdmissionReject events
}

// NewFleetSchedule expands the profile into a fleet schedule. The
// fleet-level classes build immediately from the master seed; tenant
// schedules are derived on demand by TenantSchedule. zones is the number
// of failure domains tenants are striped across (minimum 1).
func NewFleetSchedule(p Profile, zones int) (*FleetSchedule, error) {
	if zones < 1 {
		zones = 1
	}
	fleetProfile := p
	fleetProfile.Rates = map[Class]float64{}
	for class, rate := range p.Rates {
		if fleetClass(class) {
			fleetProfile.Rates[class] = rate
		}
	}
	sched, err := fleetProfile.Build()
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &FleetSchedule{profile: p, zones: zones, fleet: sched}, nil
}

// Zones returns the number of failure domains.
func (fs *FleetSchedule) Zones() int {
	if fs == nil {
		return 1
	}
	return fs.zones
}

// FleetEvents returns the fleet-level events, ordered by step then class.
func (fs *FleetSchedule) FleetEvents() []Event {
	if fs == nil {
		return nil
	}
	return fs.fleet.Events()
}

// zoneOf maps an event to the failure domain it strikes: the event's
// start step modulo the zone count, so each outage deterministically
// names one zone without consuming extra randomness.
func (fs *FleetSchedule) zoneOf(e Event) int { return e.Step % fs.zones }

// TenantZone returns the failure domain a tenant index lives in.
func (fs *FleetSchedule) TenantZone(index int) int {
	if fs == nil {
		return 0
	}
	if index < 0 {
		index = -index
	}
	return index % fs.zones
}

// TenantSchedule derives the tenant's local fault schedule: its own
// tenant-local classes seeded by TenantSeed(master, id), plus the
// translation of every zone-outage window that covers the tenant's zone
// into control-plane rejects and forecaster errors. The result is an
// exact restriction of the all-tenant run — other tenants' schedules
// never influence it.
func (fs *FleetSchedule) TenantSchedule(index int, id string) (*Schedule, error) {
	if fs == nil {
		return &Schedule{}, nil
	}
	local := fs.profile
	local.Seed = TenantSeed(fs.profile.Seed, id)
	local.Rates = map[Class]float64{}
	for class, rate := range fs.profile.Rates {
		if !fleetClass(class) {
			local.Rates[class] = rate
		}
	}
	sched, err := local.Build()
	if err != nil {
		return nil, err
	}
	zone := fs.TenantZone(index)
	for _, e := range fs.fleet.Events() {
		if e.Class != ZoneOutage || fs.zoneOf(e) != zone {
			continue
		}
		// The zone is dark: scaling actions bounce and forecasts fail
		// for the outage window.
		sched.Add(Event{Step: e.Step, Class: ApplyReject, Size: e.Size})
		sched.Add(Event{Step: e.Step, Class: ForecastError, Size: e.Size})
	}
	return sched, nil
}

// TenantFaulted reports whether the tenant receives any injected fault:
// a non-empty local schedule or membership in a zone struck by an
// outage. Blast-radius accounting uses this to split the fleet into
// faulted and bystander tenants.
func (fs *FleetSchedule) TenantFaulted(index int, id string) (bool, error) {
	if fs == nil {
		return false, nil
	}
	sched, err := fs.TenantSchedule(index, id)
	if err != nil {
		return false, err
	}
	return !sched.Empty(), nil
}

// PoolFactorAt returns the remaining capacity fraction of the shared
// pool at the step: 1.0 normally, the smallest active PoolCollapse
// event value during a collapse window.
func (fs *FleetSchedule) PoolFactorAt(step int) float64 {
	if fs == nil {
		return 1
	}
	factor := 1.0
	if e, ok := fs.fleet.ActiveAt(step, PoolCollapse); ok {
		v := e.Value
		if v <= 0 || v > 1 {
			v = 0.5
		}
		if v < factor {
			factor = v
		}
	}
	return factor
}

// AdmissionRejectAt reports whether the admission RPC is refusing
// decisions at the step.
func (fs *FleetSchedule) AdmissionRejectAt(step int) bool {
	if fs == nil {
		return false
	}
	_, ok := fs.fleet.ActiveAt(step, AdmissionReject)
	return ok
}

// WakeStormAt reports whether a correlated flash crowd is forcing every
// parked tenant awake at the step.
func (fs *FleetSchedule) WakeStormAt(step int) bool {
	if fs == nil {
		return false
	}
	_, ok := fs.fleet.ActiveAt(step, WakeStorm)
	return ok
}
