package chaos

import "testing"

func TestWakePresets(t *testing.T) {
	for _, name := range []string{"wake", "wake-storm"} {
		p, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		p.Seed = 7
		p.Steps = 400
		sched, err := p.Build()
		if err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		if sched.Empty() {
			t.Fatalf("%s schedule empty over 400 steps", name)
		}
	}
}

func TestWakeAccessors(t *testing.T) {
	sched := &Schedule{}
	sched.Add(Event{Step: 10, Class: WakeStall, Size: 3, Value: 1200})
	sched.Add(Event{Step: 20, Class: WakeFail, Size: 2})
	sched.Add(Event{Step: 30, Class: PartialProvision, Size: 1})

	if got := sched.WakeStallAt(11); got != 1200 {
		t.Errorf("WakeStallAt(11) = %v, want 1200", got)
	}
	if got := sched.WakeStallAt(13); got != 0 {
		t.Errorf("WakeStallAt(13) = %v, want 0 (window closed)", got)
	}
	if !sched.WakeFailAt(21) || sched.WakeFailAt(22) {
		t.Error("WakeFailAt window wrong")
	}
	if !sched.PartialProvisionAt(30) || sched.PartialProvisionAt(31) {
		t.Error("PartialProvisionAt window wrong")
	}
	// Zero-value stall events fall back to the default magnitude.
	sched.Add(Event{Step: 40, Class: WakeStall, Size: 1})
	if got := sched.WakeStallAt(40); got != 900 {
		t.Errorf("default WakeStallAt = %v, want 900", got)
	}
}

func TestWakeStormIsFleetLevel(t *testing.T) {
	p, err := Preset("wake-storm")
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 11
	p.Steps = 600
	fs, err := NewFleetSchedule(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	storm := 0
	for step := 0; step < p.Steps; step++ {
		if fs.WakeStormAt(step) {
			storm++
		}
	}
	if storm == 0 {
		t.Fatal("wake-storm preset scheduled no storm windows over 600 steps")
	}
	// Tenant-local schedules must not carry the fleet-level class, but do
	// carry the local wake classes.
	sched, err := fs.TenantSchedule(0, "t00000")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sched.Events() {
		if e.Class == WakeStorm {
			t.Fatal("WakeStorm leaked into a tenant-local schedule")
		}
	}
}

// TestWakeClassRestriction pins the stream-independence contract for the
// new classes: a single-class profile is the exact restriction of the
// combined profile, so enabling wake faults never moves another class's
// events.
func TestWakeClassRestriction(t *testing.T) {
	full := Profile{Name: "both", Seed: 99, Steps: 500, Rates: map[Class]float64{
		WakeFail: 0.1, NodeKill: 0.05,
	}}
	fullSched, err := full.Build()
	if err != nil {
		t.Fatal(err)
	}
	only, err := full.Only(WakeFail).Build()
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < full.Steps; step++ {
		if fullSched.WakeFailAt(step) != only.WakeFailAt(step) {
			t.Fatalf("WakeFail stream differs at step %d when NodeKill enabled", step)
		}
	}
}
