package chaos

import (
	"fmt"
	"math"
	"sync/atomic"

	"robustscale/internal/forecast"
	"robustscale/internal/obs"
	"robustscale/internal/timeseries"
)

// Cursor shares the current replay step between the driving loop and the
// injectors wrapped around its boundaries. Safe for concurrent use.
type Cursor struct{ v atomic.Int64 }

// Set moves the cursor to the given replay step.
func (c *Cursor) Set(step int) { c.v.Store(int64(step)) }

// Step returns the current replay step.
func (c *Cursor) Step() int { return int(c.v.Load()) }

// latencySeconds accumulates injected (virtual) latency so a chaos run's
// slow-path pressure is visible without sleeping wall-clock time.
var latencySeconds = obs.Default.Counter(
	"robustscale_chaos_injected_latency_seconds_total",
	"Virtual latency injected into forecaster and control-plane calls.")

// Forecaster wraps a quantile forecaster with scheduled forecaster
// faults: returned errors, NaN/Inf poisoning, quantile crossing,
// unbounded blow-ups, and injected (virtual) latency. Faults consult the
// schedule at the wrapping Cursor's current step, so one wrapper serves a
// whole replay.
type Forecaster struct {
	Inner    forecast.QuantileForecaster
	Schedule *Schedule
	Cursor   *Cursor
}

// Name implements forecast.Forecaster.
func (f *Forecaster) Name() string { return f.Inner.Name() }

// Fit implements forecast.Forecaster.
func (f *Forecaster) Fit(train *timeseries.Series) error { return f.Inner.Fit(train) }

// Predict implements forecast.Forecaster with the error and latency
// fault classes applied.
func (f *Forecaster) Predict(history *timeseries.Series, h int) ([]float64, error) {
	step := f.step()
	if err := f.injectedError(step); err != nil {
		return nil, err
	}
	f.injectLatency(step)
	return f.Inner.Predict(history, h)
}

// PredictQuantiles implements forecast.QuantileForecaster with the full
// forecaster fault taxonomy applied to the returned fan.
func (f *Forecaster) PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*forecast.QuantileForecast, error) {
	step := f.step()
	if err := f.injectedError(step); err != nil {
		return nil, err
	}
	f.injectLatency(step)
	fan, err := f.Inner.PredictQuantiles(history, h, levels)
	if err != nil {
		return nil, err
	}
	if _, ok := f.Schedule.ActiveAt(step, ForecastNaN); ok {
		CountInjected(ForecastNaN)
		poisonFan(fan)
	}
	if _, ok := f.Schedule.ActiveAt(step, ForecastCrossing); ok {
		CountInjected(ForecastCrossing)
		crossFan(fan)
	}
	if e, ok := f.Schedule.ActiveAt(step, ForecastBlowup); ok {
		CountInjected(ForecastBlowup)
		blowupFan(fan, e.Value)
	}
	return fan, nil
}

// WarmReset implements forecast.IncrementalForecaster, forwarding to the
// inner forecaster when it keeps warm state.
func (f *Forecaster) WarmReset() {
	if inc, ok := f.Inner.(interface{ WarmReset() }); ok {
		inc.WarmReset()
	}
}

// PredictQuantilesWarm implements forecast.IncrementalForecaster with the
// same fault taxonomy as PredictQuantiles, forwarding the warm path to the
// inner forecaster when it supports one. Fault mutations scribble on the
// inner forecaster's scratch fan, which is overwritten on its next predict,
// so injection stays safe on the fast path.
func (f *Forecaster) PredictQuantilesWarm(history *timeseries.Series, h int, levels []float64) (*forecast.QuantileForecast, error) {
	step := f.step()
	if err := f.injectedError(step); err != nil {
		return nil, err
	}
	f.injectLatency(step)
	var fan *forecast.QuantileForecast
	var err error
	if inc, ok := f.Inner.(forecast.IncrementalForecaster); ok {
		fan, err = inc.PredictQuantilesWarm(history, h, levels)
	} else {
		fan, err = f.Inner.PredictQuantiles(history, h, levels)
	}
	if err != nil {
		return nil, err
	}
	if _, ok := f.Schedule.ActiveAt(step, ForecastNaN); ok {
		CountInjected(ForecastNaN)
		poisonFan(fan)
	}
	if _, ok := f.Schedule.ActiveAt(step, ForecastCrossing); ok {
		CountInjected(ForecastCrossing)
		crossFan(fan)
	}
	if e, ok := f.Schedule.ActiveAt(step, ForecastBlowup); ok {
		CountInjected(ForecastBlowup)
		blowupFan(fan, e.Value)
	}
	return fan, nil
}

var _ forecast.IncrementalForecaster = (*Forecaster)(nil)

func (f *Forecaster) step() int {
	if f.Cursor == nil {
		return 0
	}
	return f.Cursor.Step()
}

func (f *Forecaster) injectedError(step int) error {
	if _, ok := f.Schedule.ActiveAt(step, ForecastError); ok {
		CountInjected(ForecastError)
		return fmt.Errorf("chaos: injected forecaster failure at step %d", step)
	}
	return nil
}

func (f *Forecaster) injectLatency(step int) {
	if e, ok := f.Schedule.ActiveAt(step, ForecastLatency); ok {
		CountInjected(ForecastLatency)
		latencySeconds.Add(e.Value)
	}
}

// poisonFan replaces a deterministic scatter of fan entries with NaN and
// Inf — the classic symptom of a diverged training run or a serialization
// bug in a real forecasting service.
func poisonFan(f *forecast.QuantileForecast) {
	for t, row := range f.Values {
		if len(row) == 0 {
			continue
		}
		switch t % 3 {
		case 0:
			row[t%len(row)] = math.NaN()
		case 1:
			row[len(row)-1] = math.Inf(1)
		default:
			for i := range row {
				row[i] = math.NaN()
			}
		}
		if t < len(f.Mean) && t%2 == 0 {
			f.Mean[t] = math.NaN()
		}
	}
}

// crossFan reverses each quantile row so levels strictly cross — the
// independently-trained-heads artifact, amplified.
func crossFan(f *forecast.QuantileForecast) {
	for _, row := range f.Values {
		for i, j := 0, len(row)-1; i < j; i, j = i+1, j-1 {
			row[i], row[j] = row[j], row[i]
		}
	}
}

// blowupFan multiplies the fan by the event factor, modeling an
// unbounded divergence that still looks structurally valid.
func blowupFan(f *forecast.QuantileForecast, factor float64) {
	if factor == 0 {
		factor = 1e6
	}
	for _, row := range f.Values {
		for i := range row {
			row[i] *= factor
		}
	}
	for i := range f.Mean {
		f.Mean[i] *= factor
	}
}

// CorruptTelemetry returns the history the control loop would observe at
// the given step under the schedule's telemetry faults: a frozen sensor
// (stale), a dropout window of NaNs, or double-counted samples. The
// corruption is applied to a copy of the tail; with no active telemetry
// fault the series is returned untouched.
func CorruptTelemetry(s *timeseries.Series, sched *Schedule, step int) *timeseries.Series {
	if sched == nil || s == nil || s.Len() == 0 {
		return s
	}
	type tailFault struct {
		class Class
		ev    Event
	}
	var active []tailFault
	for _, class := range []Class{TelemetryStale, TelemetryDropout, TelemetryDuplicate} {
		if e, ok := sched.ActiveAt(step, class); ok {
			active = append(active, tailFault{class, e})
		}
	}
	if len(active) == 0 {
		return s
	}
	out := s.Clone()
	n := out.Len()
	for _, f := range active {
		CountInjected(f.class)
		k := f.ev.Size
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		switch f.class {
		case TelemetryStale:
			frozen := out.Values[n-k]
			for i := n - k; i < n; i++ {
				out.Values[i] = frozen
			}
		case TelemetryDropout:
			for i := n - k; i < n; i++ {
				out.Values[i] = math.NaN()
			}
		case TelemetryDuplicate:
			for i := n - k; i < n; i++ {
				out.Values[i] *= 2
			}
		}
	}
	return out
}

// WrapApply wraps a scale-to mutation with the control-plane fault
// classes: rejection (no effect), timeout (no effect, virtual latency),
// and partial fulfilment (the fleet moves halfway to the target, then the
// call reports failure — the retry path's job is to finish it). size
// reports the current fleet size for partial moves.
func WrapApply(apply func(int) error, size func() int, sched *Schedule, cur *Cursor) func(int) error {
	return func(target int) error {
		step := 0
		if cur != nil {
			step = cur.Step()
		}
		if _, ok := sched.ActiveAt(step, ApplyReject); ok {
			CountInjected(ApplyReject)
			return fmt.Errorf("chaos: control plane rejected scale to %d at step %d", target, step)
		}
		if e, ok := sched.ActiveAt(step, ApplyTimeout); ok {
			CountInjected(ApplyTimeout)
			latencySeconds.Add(e.Value)
			return fmt.Errorf("chaos: scale to %d timed out after %gs at step %d", target, e.Value, step)
		}
		if _, ok := sched.ActiveAt(step, ApplyPartial); ok && size != nil {
			current := size()
			if target != current {
				CountInjected(ApplyPartial)
				mid := current + (target-current)/2
				if mid != current {
					if err := apply(mid); err != nil {
						return fmt.Errorf("chaos: partial fulfilment at step %d: %w", step, err)
					}
				}
				return fmt.Errorf("chaos: partial fulfilment: reached %d of requested %d at step %d", mid, target, step)
			}
		}
		return apply(target)
	}
}
