package chaos

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestProfileBuildDeterministic(t *testing.T) {
	p, err := Preset("all")
	if err != nil {
		t.Fatal(err)
	}
	p.Seed, p.Steps = 7, 500
	a, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Error("same profile should build the same schedule")
	}
	if a.Empty() {
		t.Error("all-class profile over 500 steps should schedule events")
	}
}

func TestProfileOnlyIsRestriction(t *testing.T) {
	// A single-class schedule must place its events at exactly the steps
	// the all-class schedule placed that class at: class streams are
	// independent.
	p, err := Preset("all")
	if err != nil {
		t.Fatal(err)
	}
	p.Seed, p.Steps = 11, 400
	full, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	only, err := p.Only(NodeKill).Build()
	if err != nil {
		t.Fatal(err)
	}
	var fullKills, onlyKills []Event
	for _, e := range full.Events() {
		if e.Class == NodeKill {
			fullKills = append(fullKills, e)
		}
	}
	onlyKills = only.Events()
	if !reflect.DeepEqual(fullKills, onlyKills) {
		t.Errorf("single-class restriction differs: %v vs %v", fullKills, onlyKills)
	}
}

func TestProfileValidate(t *testing.T) {
	cases := []Profile{
		{Steps: -1},
		{KillSize: -2},
		{WindowLen: -1},
		{Seed: 1, Rates: map[Class]float64{ForecastNaN: 1.5}},
		{Seed: 1, Rates: map[Class]float64{Class("bogus"): 0.1}},
		// Positive rates without a seed: non-reproducible, rejected.
		{Rates: map[Class]float64{NodeKill: 0.1}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	ok := Profile{Seed: 3, Steps: 10, Rates: map[Class]float64{NodeKill: 0.5}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestActiveAtWindows(t *testing.T) {
	s := &Schedule{}
	s.Add(Event{Step: 10, Class: TelemetryDropout, Size: 3})
	for step, want := range map[int]bool{9: false, 10: true, 11: true, 12: true, 13: false} {
		if _, got := s.ActiveAt(step, TelemetryDropout); got != want {
			t.Errorf("step %d: active = %v, want %v", step, got, want)
		}
	}
	// Zero-size events cover exactly one step.
	s.Add(Event{Step: 20, Class: ApplyReject})
	if _, ok := s.ActiveAt(20, ApplyReject); !ok {
		t.Error("size-0 event should cover its own step")
	}
	if _, ok := s.ActiveAt(21, ApplyReject); ok {
		t.Error("size-0 event should not extend past its step")
	}
	// Nil schedules are empty.
	var nilSched *Schedule
	if _, ok := nilSched.ActiveAt(0, NodeKill); ok {
		t.Error("nil schedule should report no events")
	}
	if nilSched.KillsAt(0) != 0 || !nilSched.Empty() {
		t.Error("nil schedule should be empty")
	}
}

func TestKillsAtSumsEvents(t *testing.T) {
	s := &Schedule{}
	s.Add(Event{Step: 5, Class: NodeKill, Size: 2})
	s.Add(Event{Step: 5, Class: NodeKill}) // size 0 -> 1
	s.Add(Event{Step: 6, Class: NodeKill, Size: 1})
	if got := s.KillsAt(5); got != 3 {
		t.Errorf("kills at 5 = %d, want 3", got)
	}
	if got := s.KillsAt(7); got != 0 {
		t.Errorf("kills at 7 = %d, want 0", got)
	}
}

func TestFromFaultConfigMatchesLegacyStream(t *testing.T) {
	// The shim must consume the RNG exactly as the historical
	// ReplayWithFaults loop did: one Float64 per step.
	prob, seed, steps := 0.2, int64(9), 120
	rng := rand.New(rand.NewSource(seed))
	var legacy []int
	for i := 0; i < steps; i++ {
		if rng.Float64() < prob {
			legacy = append(legacy, i)
		}
	}
	sched := FromFaultConfig(prob, 2, seed, steps)
	var got []int
	for _, e := range sched.Events() {
		if e.Class != NodeKill || e.Size != 2 {
			t.Fatalf("unexpected event %+v", e)
		}
		got = append(got, e.Step)
	}
	if !reflect.DeepEqual(legacy, got) {
		t.Errorf("kill steps %v, want %v", got, legacy)
	}
	if !FromFaultConfig(0, 1, seed, steps).Empty() {
		t.Error("zero probability should schedule nothing")
	}
}

func TestPresetNames(t *testing.T) {
	for _, name := range []string{"none", "forecast", "telemetry", "apply", "node-kill", "all", "smoke"} {
		p, err := Preset(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("%s: name = %q", name, p.Name)
		}
	}
	if _, err := Preset("hurricane"); err == nil {
		t.Error("unknown preset should error")
	}
}
