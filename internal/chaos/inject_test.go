package chaos

import (
	"math"
	"strings"
	"testing"
	"time"

	"robustscale/internal/forecast"
	"robustscale/internal/timeseries"
)

var t0 = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// stubQF is a minimal healthy quantile forecaster.
type stubQF struct{}

func (stubQF) Name() string                 { return "stub" }
func (stubQF) Fit(*timeseries.Series) error { return nil }
func (stubQF) Predict(_ *timeseries.Series, h int) ([]float64, error) {
	out := make([]float64, h)
	for i := range out {
		out[i] = 10
	}
	return out, nil
}

func (stubQF) PredictQuantiles(_ *timeseries.Series, h int, levels []float64) (*forecast.QuantileForecast, error) {
	f := &forecast.QuantileForecast{Levels: append([]float64(nil), levels...)}
	f.Values = make([][]float64, h)
	f.Mean = make([]float64, h)
	for t := 0; t < h; t++ {
		row := make([]float64, len(levels))
		for i, tau := range levels {
			row[i] = 10 + 5*tau
		}
		f.Values[t] = row
		f.Mean[t] = 10
	}
	return f, nil
}

func history(n int) *timeseries.Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 10
	}
	return timeseries.New("w", t0, timeseries.DefaultStep, vals)
}

func TestForecasterInjectsError(t *testing.T) {
	s := &Schedule{}
	s.Add(Event{Step: 3, Class: ForecastError})
	var cur Cursor
	f := &Forecaster{Inner: stubQF{}, Schedule: s, Cursor: &cur}

	cur.Set(0)
	if _, err := f.PredictQuantiles(history(10), 4, []float64{0.5, 0.9}); err != nil {
		t.Fatalf("no fault scheduled at step 0: %v", err)
	}
	cur.Set(3)
	if _, err := f.PredictQuantiles(history(10), 4, []float64{0.5, 0.9}); err == nil ||
		!strings.Contains(err.Error(), "injected forecaster failure") {
		t.Fatalf("want injected failure at step 3, got %v", err)
	}
	if _, err := f.Predict(history(10), 4); err == nil {
		t.Fatal("point path should fail under the same fault")
	}
}

func TestForecasterPoisonsAndCrossesAndBlowsUp(t *testing.T) {
	s := &Schedule{}
	s.Add(Event{Step: 0, Class: ForecastNaN})
	var cur Cursor
	f := &Forecaster{Inner: stubQF{}, Schedule: s, Cursor: &cur}
	fan, err := f.PredictQuantiles(history(10), 6, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if fan.Validate() == nil {
		t.Error("poisoned fan should fail validation")
	}

	s2 := &Schedule{}
	s2.Add(Event{Step: 0, Class: ForecastCrossing})
	f2 := &Forecaster{Inner: stubQF{}, Schedule: s2, Cursor: &Cursor{}}
	fan2, err := f2.PredictQuantiles(history(10), 2, []float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if row := fan2.Values[0]; row[0] <= row[1] {
		t.Errorf("crossing fault should reverse rows, got %v", row)
	}

	s3 := &Schedule{}
	s3.Add(Event{Step: 0, Class: ForecastBlowup, Value: 1e6})
	f3 := &Forecaster{Inner: stubQF{}, Schedule: s3, Cursor: &Cursor{}}
	fan3, err := f3.PredictQuantiles(history(10), 2, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if fan3.Values[0][0] < 1e6 {
		t.Errorf("blow-up fault should scale the fan, got %v", fan3.Values[0][0])
	}
}

func TestCorruptTelemetry(t *testing.T) {
	base := timeseries.New("w", t0, timeseries.DefaultStep, []float64{1, 2, 3, 4, 5, 6})

	// No active fault: the exact same series comes back, no copy.
	if got := CorruptTelemetry(base, &Schedule{}, 0); got != base {
		t.Error("fault-free telemetry should pass the series through")
	}

	stale := &Schedule{}
	stale.Add(Event{Step: 0, Class: TelemetryStale, Size: 3})
	got := CorruptTelemetry(base, stale, 0)
	if got == base {
		t.Fatal("corruption must copy, not mutate the source")
	}
	if got.Values[3] != 4 || got.Values[4] != 4 || got.Values[5] != 4 {
		t.Errorf("stale tail = %v", got.Values)
	}
	if base.Values[5] != 6 {
		t.Error("source series mutated")
	}

	drop := &Schedule{}
	drop.Add(Event{Step: 0, Class: TelemetryDropout, Size: 2})
	got = CorruptTelemetry(base, drop, 0)
	if !math.IsNaN(got.Values[4]) || !math.IsNaN(got.Values[5]) {
		t.Errorf("dropout tail = %v", got.Values)
	}

	dup := &Schedule{}
	dup.Add(Event{Step: 0, Class: TelemetryDuplicate, Size: 2})
	got = CorruptTelemetry(base, dup, 0)
	if got.Values[4] != 10 || got.Values[5] != 12 {
		t.Errorf("duplicated tail = %v", got.Values)
	}
}

func TestWrapApplyFaults(t *testing.T) {
	var cur Cursor
	applied := 1
	apply := func(n int) error { applied = n; return nil }
	size := func() int { return applied }

	rej := &Schedule{}
	rej.Add(Event{Step: 2, Class: ApplyReject})
	wrapped := WrapApply(apply, size, rej, &cur)
	cur.Set(0)
	if err := wrapped(3); err != nil || applied != 3 {
		t.Fatalf("fault-free apply: err=%v applied=%d", err, applied)
	}
	cur.Set(2)
	if err := wrapped(5); err == nil {
		t.Fatal("rejection should error")
	}
	if applied != 3 {
		t.Errorf("rejected apply must not mutate, applied=%d", applied)
	}

	part := &Schedule{}
	part.Add(Event{Step: 0, Class: ApplyPartial})
	applied = 1
	wrapped = WrapApply(apply, size, part, &Cursor{})
	err := wrapped(5)
	if err == nil || !strings.Contains(err.Error(), "partial fulfilment") {
		t.Fatalf("want partial fulfilment error, got %v", err)
	}
	if applied != 3 { // halfway from 1 to 5
		t.Errorf("partial apply reached %d, want 3", applied)
	}
	// Retrying converges toward the target while the window is active.
	if err := wrapped(5); err == nil {
		t.Fatal("second partial attempt still errors")
	}
	if applied != 4 {
		t.Errorf("second partial apply reached %d, want 4", applied)
	}

	to := &Schedule{}
	to.Add(Event{Step: 0, Class: ApplyTimeout, Value: 30})
	applied = 1
	wrapped = WrapApply(apply, size, to, &Cursor{})
	if err := wrapped(4); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("want timeout error, got %v", err)
	}
	if applied != 1 {
		t.Errorf("timed-out apply must not mutate, applied=%d", applied)
	}
}
