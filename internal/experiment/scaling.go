package experiment

import (
	"fmt"
	"sort"

	"robustscale/internal/forecast"
	"robustscale/internal/scaler"
	"robustscale/internal/timeseries"
)

// Figure9Row is one strategy's provisioning outcome on one dataset.
type Figure9Row struct {
	Dataset   DatasetName
	Strategy  string
	UnderRate float64
	OverRate  float64
}

// Figure9Taus are the quantile levels compared for the robust scalers.
var Figure9Taus = []float64{0.6, 0.7, 0.8, 0.9}

// Figure9 reproduces the under-provisioning comparison: reactive scalers,
// point-forecast scalers (plain and padded), and the robust quantile
// scalers built on DeepAR and TFT.
func Figure9(z *Zoo, ds DatasetName) ([]Figure9Row, error) {
	d, err := z.Dataset(ds)
	if err != nil {
		return nil, err
	}
	cfg := z.Config()

	strategies, err := figure9Strategies(z, ds)
	if err != nil {
		return nil, err
	}
	var rows []Figure9Row
	for _, spec := range strategies {
		res, err := scaler.Evaluate(spec.strategy, d.Series, scaler.EvalConfig{
			Theta:   cfg.Theta,
			Horizon: spec.horizon,
			Start:   d.EvalStart,
			Tenant:  cfg.Tenant,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: figure 9 %s: %w", spec.strategy.Name(), err)
		}
		rows = append(rows, Figure9Row{
			Dataset:   ds,
			Strategy:  res.Strategy,
			UnderRate: res.Report.UnderProvisionRate,
			OverRate:  res.Report.OverProvisionRate,
		})
	}
	return rows, nil
}

type strategySpec struct {
	strategy scaler.Strategy
	horizon  int
}

// figure9Strategies assembles the full comparison roster of Figure 9.
// Reactive scalers re-plan every step; predictive ones plan a full
// horizon, matching the paper's setup.
func figure9Strategies(z *Zoo, ds DatasetName) ([]strategySpec, error) {
	cfg := z.Config()
	var specs []strategySpec

	specs = append(specs,
		strategySpec{&scaler.ReactiveMax{Window: 6, Theta: cfg.Theta}, 1},
		strategySpec{&scaler.ReactiveAvg{Window: 6, HalfLife: 6, Theta: cfg.Theta}, 1},
	)

	d, err := z.Dataset(ds)
	if err != nil {
		return nil, err
	}
	for _, model := range []ModelName{ModelQB5000, ModelTFTPoint} {
		point, err := z.Point(model, ds, 0)
		if err != nil {
			return nil, err
		}
		specs = append(specs, strategySpec{&scaler.Predictive{Forecaster: point, Theta: cfg.Theta}, cfg.Horizon})

		paddedBase, err := z.Point(model, ds, 1) // independent instance for the padded variant
		if err != nil {
			return nil, err
		}
		padded := forecast.NewPadded(paddedBase)
		if err := padded.Bootstrap(d.Series.Slice(0, d.EvalStart), cfg.Horizon, 2); err != nil {
			return nil, err
		}
		specs = append(specs, strategySpec{&scaler.Predictive{Forecaster: padded, Theta: cfg.Theta}, cfg.Horizon})
	}

	for _, model := range []ModelName{ModelDeepAR, ModelTFT} {
		qf, err := z.Quantile(model, ds, 0)
		if err != nil {
			return nil, err
		}
		for _, tau := range Figure9Taus {
			specs = append(specs, strategySpec{&scaler.Robust{Forecaster: qf, Tau: tau, Theta: cfg.Theta}, cfg.Horizon})
		}
	}
	return specs, nil
}

// Figure10Row is one quantile level's provisioning trade-off.
type Figure10Row struct {
	Dataset   DatasetName
	Model     ModelName
	Tau       float64
	UnderRate float64
	OverRate  float64
}

// Figure10Taus is the quantile sweep of Figure 10.
var Figure10Taus = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}

// Figure10 reproduces the quantile-level trade-off analysis: under- and
// over-provisioning of the robust scaler across quantile levels.
func Figure10(z *Zoo, ds DatasetName, model ModelName) ([]Figure10Row, error) {
	d, err := z.Dataset(ds)
	if err != nil {
		return nil, err
	}
	cfg := z.Config()
	qf, err := z.Quantile(model, ds, 0)
	if err != nil {
		return nil, err
	}
	var rows []Figure10Row
	for _, tau := range Figure10Taus {
		res, err := scaler.Evaluate(
			&scaler.Robust{Forecaster: qf, Tau: tau, Theta: cfg.Theta},
			d.Series,
			scaler.EvalConfig{Theta: cfg.Theta, Horizon: cfg.Horizon, Start: d.EvalStart, Tenant: cfg.Tenant},
		)
		if err != nil {
			return nil, fmt.Errorf("experiment: figure 10 tau=%g: %w", tau, err)
		}
		rows = append(rows, Figure10Row{
			Dataset:   ds,
			Model:     model,
			Tau:       tau,
			UnderRate: res.Report.UnderProvisionRate,
			OverRate:  res.Report.OverProvisionRate,
		})
	}
	return rows, nil
}

// Figure11Cell is one (tau1, tau2) combination of the adaptive heatmap.
// Diagonal cells (tau1 == tau2) degenerate to the fixed-quantile method.
type Figure11Cell struct {
	Dataset    DatasetName
	Model      ModelName
	Tau1, Tau2 float64
	UnderRate  float64
	OverRate   float64
}

// Figure11Taus are the optional quantile levels of the heatmap.
var Figure11Taus = []float64{0.6, 0.7, 0.8, 0.9, 0.95}

// Figure11 reproduces the adaptive heatmaps: every (tau1 <= tau2)
// combination of optional quantile levels, using the uncertainty threshold
// rho calibrated to the median forecast uncertainty of the training span.
func Figure11(z *Zoo, ds DatasetName, model ModelName) ([]Figure11Cell, error) {
	d, err := z.Dataset(ds)
	if err != nil {
		return nil, err
	}
	cfg := z.Config()
	qf, err := z.Quantile(model, ds, 0)
	if err != nil {
		return nil, err
	}
	rho, err := CalibrateRho(z, ds, model, 0.5)
	if err != nil {
		return nil, err
	}
	var cells []Figure11Cell
	for _, tau1 := range Figure11Taus {
		for _, tau2 := range Figure11Taus {
			if tau1 > tau2 {
				continue
			}
			var strat scaler.Strategy
			if tau1 == tau2 {
				strat = &scaler.Robust{Forecaster: qf, Tau: tau1, Theta: cfg.Theta}
			} else {
				strat = &scaler.Adaptive{
					Forecaster: qf, Tau1: tau1, Tau2: tau2, Rho: rho, Theta: cfg.Theta,
				}
			}
			res, err := scaler.Evaluate(strat, d.Series, scaler.EvalConfig{
				Theta: cfg.Theta, Horizon: cfg.Horizon, Start: d.EvalStart, Tenant: cfg.Tenant,
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: figure 11 (%g,%g): %w", tau1, tau2, err)
			}
			cells = append(cells, Figure11Cell{
				Dataset: ds, Model: model, Tau1: tau1, Tau2: tau2,
				UnderRate: res.Report.UnderProvisionRate,
				OverRate:  res.Report.OverProvisionRate,
			})
		}
	}
	return cells, nil
}

// CalibrateRho estimates an uncertainty threshold as the given quantile of
// the per-step uncertainty metric over the span between training end and
// evaluation start (held-out from both training and evaluation), the
// historical-data calibration the paper prescribes.
func CalibrateRho(z *Zoo, ds DatasetName, model ModelName, q float64) (float64, error) {
	us, err := z.calibrationUncertainties(ds, model)
	if err != nil {
		return 0, err
	}
	return timeseries.InterpolatedQuantile(us, q), nil
}

// calibrationUncertainties computes (and caches) the sorted per-step
// uncertainty values over the calibration span.
func (z *Zoo) calibrationUncertainties(ds DatasetName, model ModelName) ([]float64, error) {
	key := fmt.Sprintf("rho/%s/%s", ds, model)
	z.mu.Lock()
	cached, ok := z.calib[key]
	z.mu.Unlock()
	if ok {
		return cached, nil
	}

	d, err := z.Dataset(ds)
	if err != nil {
		return nil, err
	}
	cfg := z.Config()
	qf, err := z.Quantile(model, ds, 0)
	if err != nil {
		return nil, err
	}
	var us []float64
	for origin := d.TrainEnd; origin+cfg.Horizon <= d.EvalStart; origin += cfg.Horizon {
		f, err := qf.PredictQuantiles(d.Series.Slice(0, origin), cfg.Horizon, forecast.ScalingLevels)
		if err != nil {
			return nil, err
		}
		stepUs, err := scaler.Uncertainties(f)
		if err != nil {
			return nil, err
		}
		us = append(us, stepUs...)
	}
	if len(us) == 0 {
		return nil, fmt.Errorf("experiment: no calibration span for rho")
	}
	sort.Float64s(us)
	z.mu.Lock()
	z.calib[key] = us
	z.mu.Unlock()
	return us, nil
}

// Figure12Row is one uncertainty-threshold setting of the sensitivity
// analysis.
type Figure12Row struct {
	Dataset    DatasetName
	Model      ModelName
	Tau1, Tau2 float64
	RhoQuant   float64 // quantile of the calibration distribution
	Rho        float64
	UnderRate  float64
	OverRate   float64
}

// Figure12RhoQuantiles parameterize the threshold sweep as quantiles of
// the calibrated uncertainty distribution.
var Figure12RhoQuantiles = []float64{0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95}

// Figure12 reproduces the sensitivity analysis of the uncertainty
// threshold on the Google trace: under/over-provisioning as rho sweeps the
// calibrated uncertainty distribution.
func Figure12(z *Zoo, ds DatasetName, model ModelName, tau1, tau2 float64) ([]Figure12Row, error) {
	d, err := z.Dataset(ds)
	if err != nil {
		return nil, err
	}
	cfg := z.Config()
	qf, err := z.Quantile(model, ds, 0)
	if err != nil {
		return nil, err
	}
	var rows []Figure12Row
	for _, q := range Figure12RhoQuantiles {
		rho, err := CalibrateRho(z, ds, model, q)
		if err != nil {
			return nil, err
		}
		res, err := scaler.Evaluate(
			&scaler.Adaptive{Forecaster: qf, Tau1: tau1, Tau2: tau2, Rho: rho, Theta: cfg.Theta},
			d.Series,
			scaler.EvalConfig{Theta: cfg.Theta, Horizon: cfg.Horizon, Start: d.EvalStart, Tenant: cfg.Tenant},
		)
		if err != nil {
			return nil, fmt.Errorf("experiment: figure 12 rho=%g: %w", rho, err)
		}
		rows = append(rows, Figure12Row{
			Dataset: ds, Model: model, Tau1: tau1, Tau2: tau2,
			RhoQuant: q, Rho: rho,
			UnderRate: res.Report.UnderProvisionRate,
			OverRate:  res.Report.OverProvisionRate,
		})
	}
	return rows, nil
}
