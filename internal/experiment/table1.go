package experiment

import (
	"fmt"
	"math"

	"robustscale/internal/forecast"
	"robustscale/internal/metrics"
	"robustscale/internal/parallel"
)

// Table1Row is one model's accuracy on one dataset (a row of Table I).
type Table1Row struct {
	Dataset  DatasetName
	Model    ModelName
	MeanWQL  float64
	WQL      map[float64]float64 // at 0.7, 0.8, 0.9
	Coverage map[float64]float64 // at 0.7, 0.8, 0.9
	MSE      float64
}

// table1Taus are the emphasized quantile levels of Table I.
var table1Taus = []float64{0.7, 0.8, 0.9}

// Table1 reproduces Table I: forecaster comparison on both datasets with
// context and prediction length Horizon, metrics averaged over cfg.Runs
// training runs. The (dataset, model) cells are independent — distinct
// zoo keys — so they train and evaluate concurrently; rows land in their
// fixed slots, preserving the table's order regardless of scheduling.
func Table1(z *Zoo) ([]Table1Row, error) {
	type cell struct {
		ds    DatasetName
		model ModelName
	}
	var cells []cell
	for _, ds := range []DatasetName{Alibaba, Google} {
		for _, model := range QuantileModels {
			cells = append(cells, cell{ds, model})
		}
	}
	rows := make([]Table1Row, len(cells))
	errs := make([]error, len(cells))
	parallel.ForEach(parallel.Workers(0, len(cells)), len(cells), func(i int) {
		row, err := table1Cell(z, cells[i].ds, cells[i].model)
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = *row
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

func table1Cell(z *Zoo, ds DatasetName, model ModelName) (*Table1Row, error) {
	cfg := z.Config()
	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	agg := &Table1Row{
		Dataset:  ds,
		Model:    model,
		WQL:      map[float64]float64{},
		Coverage: map[float64]float64{},
	}
	for run := 0; run < runs; run++ {
		m, err := z.Quantile(model, ds, run)
		if err != nil {
			return nil, err
		}
		d, err := z.Dataset(ds)
		if err != nil {
			return nil, err
		}
		e, err := evalQuantileForecaster(m, d, cfg.Horizon, forecast.DefaultLevels)
		if err != nil {
			return nil, fmt.Errorf("experiment: evaluating %s on %s: %w", model, ds, err)
		}
		agg.MeanWQL += e.MeanWQL / float64(runs)
		agg.MSE += e.MSE / float64(runs)
		for _, tau := range table1Taus {
			agg.WQL[tau] += e.WQL[tau] / float64(runs)
			agg.Coverage[tau] += e.Coverage[tau] / float64(runs)
		}
	}
	return agg, nil
}

// quantileEval pools forecasts over rolling origins of the evaluation span.
type quantileEval struct {
	MeanWQL  float64
	WQL      map[float64]float64
	Coverage map[float64]float64
	MSE      float64
}

// evalQuantileForecaster rolls the forecaster over the dataset's
// evaluation span with stride = horizon, pooling actuals and per-level
// predictions for the Table I metrics.
func evalQuantileForecaster(m forecast.QuantileForecaster, d *Dataset, horizon int, levels []float64) (*quantileEval, error) {
	var actuals []float64
	var means []float64
	perLevel := make(map[float64][]float64, len(levels))

	n := d.Series.Len()
	evaluated := 0
	for origin := d.EvalStart; origin+horizon <= n; origin += horizon {
		f, err := m.PredictQuantiles(d.Series.Slice(0, origin), horizon, levels)
		if err != nil {
			return nil, err
		}
		for t := 0; t < horizon; t++ {
			actuals = append(actuals, d.Series.At(origin+t))
			means = append(means, f.Mean[t])
			for i, tau := range f.Levels {
				perLevel[tau] = append(perLevel[tau], f.Values[t][i])
			}
		}
		evaluated++
	}
	if evaluated == 0 {
		return nil, fmt.Errorf("experiment: evaluation span too short for horizon %d", horizon)
	}

	out := &quantileEval{
		WQL:      map[float64]float64{},
		Coverage: map[float64]float64{},
	}
	for _, tau := range levels {
		w, err := metrics.WQL(tau, actuals, perLevel[tau])
		if err != nil {
			return nil, err
		}
		out.WQL[tau] = w
		c, err := metrics.Coverage(actuals, perLevel[tau])
		if err != nil {
			return nil, err
		}
		out.Coverage[tau] = c
		out.MeanWQL += w / float64(len(levels))
	}
	mse, err := metrics.MSE(actuals, means)
	if err != nil {
		return nil, err
	}
	out.MSE = mse
	return out, nil
}

// Figure8Row is one (model, horizon) cell of the horizon sweep (Figure 8).
type Figure8Row struct {
	Dataset DatasetName
	Model   ModelName
	Horizon int
	MeanWQL float64
}

// Figure8Horizons are the prediction lengths evaluated in Figure 8:
// 10 minutes, 1, 2, 6 and 12 hours.
var Figure8Horizons = []int{1, 6, 12, 36, 72}

// Figure8 reproduces the horizon sweep on the Alibaba dataset: every model
// keeps its (long-horizon) hyperparameters, exactly as the paper fixes
// hyperparameters across horizons.
func Figure8(z *Zoo, ds DatasetName) ([]Figure8Row, error) {
	d, err := z.Dataset(ds)
	if err != nil {
		return nil, err
	}
	var rows []Figure8Row
	for _, model := range QuantileModels {
		m, err := z.Quantile(model, ds, 0)
		if err != nil {
			return nil, err
		}
		for _, h := range Figure8Horizons {
			if h > z.Config().Horizon {
				continue
			}
			e, err := evalQuantileForecaster(m, d, h, forecast.DefaultLevels)
			if err != nil {
				return nil, fmt.Errorf("experiment: figure 8 %s h=%d: %w", model, h, err)
			}
			rows = append(rows, Figure8Row{Dataset: ds, Model: model, Horizon: h, MeanWQL: e.MeanWQL})
		}
	}
	return rows, nil
}

// Figure6Point is one step of the uncertainty-accuracy correlation plot:
// the uncertainty metric U of the forecast fan at a step alongside that
// step's realized absolute error and quantile loss.
type Figure6Point struct {
	Step        int
	Uncertainty float64
	AbsErr      float64
	MeanQL      float64
}

// figure6Smoothing is the centred moving-average half-width applied before
// correlating: realized per-step errors are single noisy draws, and the
// paper's Figure 6 visually compares smooth curves, not raw points.
const figure6Smoothing = 3

// Figure6 reproduces the uncertainty/accuracy correlation: per-step U
// versus the step's forecast errors over one sampled horizon, plus the
// Pearson correlations of the (lightly smoothed) series over the whole
// evaluation span. The relationship is clearest for the sampling-based
// DeepAR on the bursty Google trace, whose path spread widens in volatile
// regions.
func Figure6(z *Zoo, ds DatasetName, model ModelName) ([]Figure6Point, float64, float64, error) {
	d, err := z.Dataset(ds)
	if err != nil {
		return nil, 0, 0, err
	}
	m, err := z.Quantile(model, ds, 0)
	if err != nil {
		return nil, 0, 0, err
	}
	cfg := z.Config()
	levels := forecast.DefaultLevels

	var sample []Figure6Point
	var us, aes, qls []float64
	n := d.Series.Len()
	for origin := d.EvalStart; origin+cfg.Horizon <= n; origin += cfg.Horizon {
		f, err := m.PredictQuantiles(d.Series.Slice(0, origin), cfg.Horizon, levels)
		if err != nil {
			return nil, 0, 0, err
		}
		for t := 0; t < cfg.Horizon; t++ {
			y := d.Series.At(origin + t)
			median := f.At(t, 0.5)
			u, err := metrics.Uncertainty(f.Levels, f.Step(t), median)
			if err != nil {
				return nil, 0, 0, err
			}
			ae := math.Abs(y - f.Mean[t])
			ql := 0.0
			for i, tau := range f.Levels {
				lq, err := metrics.QuantileLoss(tau, []float64{y}, []float64{f.Values[t][i]})
				if err != nil {
					return nil, 0, 0, err
				}
				ql += lq / float64(len(f.Levels))
			}
			if origin == d.EvalStart {
				sample = append(sample, Figure6Point{Step: t, Uncertainty: u, AbsErr: ae, MeanQL: ql})
			}
			us = append(us, u)
			aes = append(aes, ae)
			qls = append(qls, ql)
		}
	}
	us = movingAverage(us, figure6Smoothing)
	aes = movingAverage(aes, figure6Smoothing)
	qls = movingAverage(qls, figure6Smoothing)
	return sample, pearson(us, aes), pearson(us, qls), nil
}

// movingAverage smooths with a centred window of half-width w.
func movingAverage(xs []float64, w int) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		lo, hi := i-w, i+w
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += xs[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / (math.Sqrt(vx) * math.Sqrt(vy))
}

// Figure7Band is one model's prediction intervals over a sampled horizon
// (Figure 7): the mean path plus the 30%, 50% and 80% central intervals.
type Figure7Band struct {
	Model  ModelName
	Actual []float64
	Mean   []float64
	// Lo and Hi map an interval mass (0.3, 0.5, 0.8) to its bounds.
	Lo, Hi map[float64][]float64
}

// Figure7Intervals are the central interval masses plotted in Figure 7.
var Figure7Intervals = []float64{0.3, 0.5, 0.8}

// Figure7 reproduces the prediction-interval visualization for MLP,
// DeepAR and TFT over the first evaluation horizon.
func Figure7(z *Zoo, ds DatasetName) ([]Figure7Band, error) {
	d, err := z.Dataset(ds)
	if err != nil {
		return nil, err
	}
	cfg := z.Config()
	origin := d.EvalStart
	if origin+cfg.Horizon > d.Series.Len() {
		return nil, fmt.Errorf("experiment: series too short for figure 7")
	}
	actual := d.Series.Values[origin : origin+cfg.Horizon]

	var bands []Figure7Band
	for _, model := range []ModelName{ModelMLP, ModelDeepAR, ModelTFT} {
		m, err := z.Quantile(model, ds, 0)
		if err != nil {
			return nil, err
		}
		f, err := m.PredictQuantiles(d.Series.Slice(0, origin), cfg.Horizon, forecast.DefaultLevels)
		if err != nil {
			return nil, err
		}
		band := Figure7Band{
			Model:  model,
			Actual: actual,
			Mean:   f.Mean,
			Lo:     map[float64][]float64{},
			Hi:     map[float64][]float64{},
		}
		for _, mass := range Figure7Intervals {
			loTau := (1 - mass) / 2
			hiTau := 1 - loTau
			lo := make([]float64, cfg.Horizon)
			hi := make([]float64, cfg.Horizon)
			for t := 0; t < cfg.Horizon; t++ {
				lo[t] = f.At(t, loTau)
				hi[t] = f.At(t, hiTau)
			}
			band.Lo[mass] = lo
			band.Hi[mass] = hi
		}
		bands = append(bands, band)
	}
	return bands, nil
}
