package experiment

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// tinyConfig keeps unit tests fast: short trace, small context/horizon,
// Quick training budgets.
func tinyConfig() Config {
	return Config{Seed: 7, Days: 4, Context: 24, Horizon: 12, Theta: 100, Runs: 1, Quick: true}
}

// sharedZoo caches trained models across tests in this package.
var sharedZoo *Zoo

func zoo(t *testing.T) *Zoo {
	t.Helper()
	if sharedZoo == nil {
		z, err := NewZoo(tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		sharedZoo = z
	}
	return sharedZoo
}

func TestPrepareDatasets(t *testing.T) {
	ds, err := PrepareDatasets(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []DatasetName{Alibaba, Google} {
		d, ok := ds[name]
		if !ok {
			t.Fatalf("missing dataset %s", name)
		}
		if d.TrainEnd <= 0 || d.EvalStart <= d.TrainEnd || d.EvalStart >= d.Series.Len() {
			t.Errorf("%s: bad partitions train=%d eval=%d len=%d", name, d.TrainEnd, d.EvalStart, d.Series.Len())
		}
		if d.Train().Len() != d.TrainEnd {
			t.Errorf("%s: train partition mismatch", name)
		}
	}
}

func TestZooCachesModels(t *testing.T) {
	z := zoo(t)
	m1, err := z.Quantile(ModelARIMA, Alibaba, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := z.Quantile(ModelARIMA, Alibaba, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("zoo returned different instances for the same key")
	}
	if _, err := z.Quantile("nope", Alibaba, 0); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := z.Quantile(ModelARIMA, "nope", 0); err == nil {
		t.Error("unknown dataset should fail")
	}
	if _, err := z.Point(ModelARIMA, Alibaba, 0); err == nil {
		t.Error("arima is not a point model")
	}
}

func TestTable1Structure(t *testing.T) {
	z := zoo(t)
	rows, err := Table1(z)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(QuantileModels) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanWQL <= 0 || math.IsNaN(r.MeanWQL) {
			t.Errorf("%s/%s: meanWQL = %v", r.Dataset, r.Model, r.MeanWQL)
		}
		if r.MSE < 0 || math.IsNaN(r.MSE) {
			t.Errorf("%s/%s: MSE = %v", r.Dataset, r.Model, r.MSE)
		}
		for _, tau := range table1Taus {
			if c := r.Coverage[tau]; c < 0 || c > 1 {
				t.Errorf("%s/%s: coverage[%v] = %v", r.Dataset, r.Model, tau, c)
			}
		}
	}
	var buf bytes.Buffer
	if err := RenderTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestTable2And3(t *testing.T) {
	z := zoo(t)
	rows, err := Table2(z)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("table 2 rows = %d", len(rows))
	}
	byName := map[string]time.Duration{}
	for _, r := range rows {
		if r.Duration <= 0 {
			t.Errorf("%s: duration %v", r.Method, r.Duration)
		}
		byName[r.Method] = r.Duration
	}
	// DeepAR's sampling should dominate TFT's single pass.
	if byName["DeepAR"] <= byName["TFT"] {
		t.Errorf("DeepAR %v should exceed TFT %v", byName["DeepAR"], byName["TFT"])
	}

	rows3, err := Table3(z)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows3) != 4 {
		t.Fatalf("table 3 rows = %d: %+v", len(rows3), rows3)
	}
	var buf bytes.Buffer
	if err := RenderTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if err := RenderTable3(&buf, rows3); err != nil {
		t.Fatal(err)
	}
}

func TestFigure5(t *testing.T) {
	rows, err := Figure5(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure5CheckpointsMB) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Warmup <= rows[i-1].Warmup {
			t.Error("warmup should grow with checkpoint size")
		}
	}
	if rows[len(rows)-1].Warmup > time.Minute {
		t.Errorf("warmup %v out of the seconds range", rows[len(rows)-1].Warmup)
	}
	var buf bytes.Buffer
	if err := RenderFigure5(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestFigure6(t *testing.T) {
	z := zoo(t)
	points, corrMSE, corrQL, err := Figure6(z, Alibaba, ModelTFT)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != z.Config().Horizon {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Uncertainty < 0 || math.IsNaN(p.Uncertainty) {
			t.Errorf("U = %v", p.Uncertainty)
		}
	}
	if math.IsNaN(corrMSE) || math.IsNaN(corrQL) {
		t.Error("correlations NaN")
	}
	var buf bytes.Buffer
	if err := RenderFigure6(&buf, points, corrMSE, corrQL); err != nil {
		t.Fatal(err)
	}
}

func TestFigure7(t *testing.T) {
	z := zoo(t)
	bands, err := Figure7(z, Alibaba)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 3 {
		t.Fatalf("bands = %d", len(bands))
	}
	for _, b := range bands {
		for _, mass := range Figure7Intervals {
			lo, hi := b.Lo[mass], b.Hi[mass]
			if len(lo) != z.Config().Horizon || len(hi) != len(lo) {
				t.Fatalf("%s: band lengths wrong", b.Model)
			}
			for t2 := range lo {
				if lo[t2] > hi[t2] {
					t.Errorf("%s: interval inverted at %d", b.Model, t2)
				}
			}
		}
		// Wider mass must give wider intervals.
		w30 := b.Hi[0.3][0] - b.Lo[0.3][0]
		w80 := b.Hi[0.8][0] - b.Lo[0.8][0]
		if w80 < w30 {
			t.Errorf("%s: 80%% interval narrower than 30%%", b.Model)
		}
	}
	var buf bytes.Buffer
	if err := RenderFigure7(&buf, bands); err != nil {
		t.Fatal(err)
	}
}

func TestFigure8(t *testing.T) {
	z := zoo(t)
	rows, err := Figure8(z, Alibaba)
	if err != nil {
		t.Fatal(err)
	}
	// Horizons beyond the config's 12 are skipped: {1, 6, 12} remain.
	wantPerModel := 3
	if len(rows) != len(QuantileModels)*wantPerModel {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanWQL <= 0 || math.IsNaN(r.MeanWQL) {
			t.Errorf("%s h=%d: %v", r.Model, r.Horizon, r.MeanWQL)
		}
	}
	var buf bytes.Buffer
	if err := RenderFigure8(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestFigure9(t *testing.T) {
	z := zoo(t)
	rows, err := Figure9(z, Alibaba)
	if err != nil {
		t.Fatal(err)
	}
	// 2 reactive + 2 point + 2 padded + 2 models x 4 taus = 14.
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.UnderRate < 0 || r.UnderRate > 1 || r.OverRate < 0 || r.OverRate > 1 {
			t.Errorf("%s: rates %v/%v", r.Strategy, r.UnderRate, r.OverRate)
		}
	}
	var buf bytes.Buffer
	if err := RenderFigure9(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestFigure10(t *testing.T) {
	z := zoo(t)
	rows, err := Figure10(z, Alibaba, ModelTFT)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure10Taus) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Higher tau should not increase under-provisioning (monotone trend,
	// allowing exact ties).
	for i := 1; i < len(rows); i++ {
		if rows[i].UnderRate > rows[i-1].UnderRate+0.05 {
			t.Errorf("under rate rose from %v to %v at tau %v",
				rows[i-1].UnderRate, rows[i].UnderRate, rows[i].Tau)
		}
	}
	var buf bytes.Buffer
	if err := RenderFigure10(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestFigure11(t *testing.T) {
	z := zoo(t)
	cells, err := Figure11(z, Alibaba, ModelTFT)
	if err != nil {
		t.Fatal(err)
	}
	// 5 levels -> 15 combinations with tau1 <= tau2.
	if len(cells) != 15 {
		t.Fatalf("cells = %d", len(cells))
	}
	diag := 0
	for _, c := range cells {
		if c.Tau1 == c.Tau2 {
			diag++
		}
	}
	if diag != len(Figure11Taus) {
		t.Errorf("diagonal cells = %d", diag)
	}
	var buf bytes.Buffer
	if err := RenderFigure11(&buf, cells); err != nil {
		t.Fatal(err)
	}
}

func TestFigure12(t *testing.T) {
	z := zoo(t)
	rows, err := Figure12(z, Google, ModelTFT, 0.7, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure12RhoQuantiles) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Rho grows with its calibration quantile.
	for i := 1; i < len(rows); i++ {
		if rows[i].Rho < rows[i-1].Rho {
			t.Errorf("rho not monotone: %v then %v", rows[i-1].Rho, rows[i].Rho)
		}
	}
	var buf bytes.Buffer
	if err := RenderFigure12(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateRhoMonotone(t *testing.T) {
	z := zoo(t)
	lo, err := CalibrateRho(z, Alibaba, ModelTFT, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := CalibrateRho(z, Alibaba, ModelTFT, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Errorf("rho(0.1)=%v > rho(0.9)=%v", lo, hi)
	}
}

func TestUnionLevels(t *testing.T) {
	got := unionLevels([]float64{0.1, 0.5}, []float64{0.5, 0.9, 0.2})
	want := []float64{0.1, 0.2, 0.5, 0.9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("got %v", got)
		}
	}
}
