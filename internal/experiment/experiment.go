// Package experiment regenerates the tables and figures of the paper's
// evaluation (Section IV): dataset preparation from the synthetic cluster
// traces, a cached model zoo, and one runner per table/figure. The bench
// harness at the repository root and cmd/experiment both drive this
// package.
package experiment

import (
	"fmt"
	"sync"

	"robustscale/internal/forecast"
	"robustscale/internal/timeseries"
	"robustscale/internal/trace"
)

// DatasetName identifies one of the two evaluation traces.
type DatasetName string

// The paper's two datasets.
const (
	Alibaba DatasetName = "alibaba"
	Google  DatasetName = "google"
)

// Config sizes an experiment run. The paper's full settings (72-step
// context and horizon over multi-week traces) are kept; Quick shrinks
// training budgets so a full regeneration finishes in minutes on a laptop
// while preserving every qualitative conclusion.
type Config struct {
	// Seed drives trace generation and model initialization.
	Seed int64
	// Days is the trace length.
	Days int
	// Context is the conditioning window (72 steps = 12 hours).
	Context int
	// Horizon is the forecast/planning length (72 steps = 12 hours).
	Horizon int
	// Theta is the per-node workload threshold used by the scaling
	// experiments.
	Theta float64
	// Runs averages neural results over this many training seeds
	// (Table I reports the average of 3 runs).
	Runs int
	// Quick reduces epochs/hidden sizes for fast regeneration.
	Quick bool
	// Tenant labels the decision records and tenant-scoped counters of
	// the scaling evaluations; empty means the default single-tenant
	// label.
	Tenant string
}

// DefaultConfig is the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{Seed: 42, Days: 21, Context: 72, Horizon: 72, Theta: 100, Runs: 3}
}

// QuickConfig is sized for CI and benchmarks: same context/horizon, leaner
// training.
func QuickConfig() Config {
	return Config{Seed: 42, Days: 14, Context: 72, Horizon: 72, Theta: 100, Runs: 1, Quick: true}
}

// Dataset is one prepared evaluation trace: the aggregated CPU series with
// its train/validation/test partitions.
type Dataset struct {
	Name   DatasetName
	Series *timeseries.Series
	// TrainEnd and EvalStart are indices into Series: models train on
	// [0, TrainEnd) and are evaluated from EvalStart on.
	TrainEnd  int
	EvalStart int
}

// Train returns the training partition.
func (d *Dataset) Train() *timeseries.Series { return d.Series.Slice(0, d.TrainEnd) }

// PrepareDatasets generates both traces and their partitions.
func PrepareDatasets(cfg Config) (map[DatasetName]*Dataset, error) {
	out := make(map[DatasetName]*Dataset, 2)
	for _, spec := range []struct {
		name DatasetName
		gen  func(int64) trace.Config
	}{
		{Alibaba, trace.AlibabaStyle},
		{Google, trace.GoogleStyle},
	} {
		tcfg := spec.gen(cfg.Seed)
		tcfg.Days = cfg.Days
		tr, err := trace.Generate(tcfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: generating %s: %w", spec.name, err)
		}
		cpu, err := tr.Series(trace.CPU)
		if err != nil {
			return nil, err
		}
		n := cpu.Len()
		out[spec.name] = &Dataset{
			Name:      spec.name,
			Series:    cpu,
			TrainEnd:  n * 7 / 10,
			EvalStart: n * 8 / 10,
		}
	}
	return out, nil
}

// ModelName identifies a forecaster in the zoo.
type ModelName string

// The evaluated forecasters.
const (
	ModelARIMA    ModelName = "arima"
	ModelMLP      ModelName = "mlp"
	ModelDeepAR   ModelName = "deepar"
	ModelTFT      ModelName = "tft"
	ModelTFTPoint ModelName = "tft-point"
	ModelQB5000   ModelName = "qb5000"
)

// QuantileModels are the probabilistic forecasters of Table I.
var QuantileModels = []ModelName{ModelARIMA, ModelMLP, ModelDeepAR, ModelTFT}

// buildQuantile constructs an untrained quantile forecaster sized by cfg.
func buildQuantile(name ModelName, cfg Config, seed int64) (forecast.QuantileForecaster, error) {
	switch name {
	case ModelARIMA:
		// Seasonal differencing at the daily period removes the dominant
		// cycle; a moderate ARMA order models the remainder. The classic
		// baseline is competent but still trails the neural models, as in
		// Table I.
		return forecast.NewSeasonalARIMA(6, 0, 2, 144), nil
	case ModelMLP:
		c := forecast.MLPConfig{
			Context: cfg.Context, Hidden: 48, Epochs: 30, LR: 1e-3,
			Seed: seed, MaxWindows: 256,
		}
		if cfg.Quick {
			c.Hidden, c.Epochs, c.MaxWindows = 32, 12, 128
		}
		return &mlpAdapter{forecast.NewMLP(c), cfg.Horizon}, nil
	case ModelDeepAR:
		c := forecast.DeepARConfig{
			Context: cfg.Context, Hidden: 32, Epochs: 10, LR: 1e-3,
			Seed: seed, MaxWindows: 160, Samples: 100, TrainHorizon: cfg.Horizon,
		}
		if cfg.Quick {
			c.Hidden, c.Epochs, c.MaxWindows, c.Samples = 24, 12, 128, 100
		}
		return forecast.NewDeepAR(c), nil
	case ModelTFT:
		c := forecast.TFTConfig{
			Context: cfg.Context, Hidden: 32, Epochs: 10, LR: 1e-3,
			Seed: seed, MaxWindows: 160, TrainHorizon: cfg.Horizon,
			Levels: unionLevels(forecast.DefaultLevels, forecast.ScalingLevels),
		}
		if cfg.Quick {
			c.Hidden, c.Epochs, c.MaxWindows = 24, 8, 128
		}
		return forecast.NewTFT(c), nil
	default:
		return nil, fmt.Errorf("experiment: %s is not a quantile model", name)
	}
}

// buildPoint constructs an untrained point forecaster sized by cfg.
func buildPoint(name ModelName, cfg Config, seed int64) (forecast.Forecaster, error) {
	switch name {
	case ModelQB5000:
		c := forecast.QB5000Config{
			Context: cfg.Context, Hidden: 24, Epochs: 8, LR: 1e-3,
			Seed: seed, MaxWindows: 160, TrainHorizon: cfg.Horizon,
		}
		if cfg.Quick {
			c.Hidden, c.Epochs, c.MaxWindows = 16, 3, 96
		}
		return forecast.NewQB5000(c), nil
	case ModelTFTPoint:
		c := forecast.TFTConfig{
			Context: cfg.Context, Hidden: 32, Epochs: 10, LR: 1e-3,
			Seed: seed, MaxWindows: 160, TrainHorizon: cfg.Horizon,
		}
		if cfg.Quick {
			c.Hidden, c.Epochs, c.MaxWindows = 24, 8, 128
		}
		return forecast.NewTFTPoint(c), nil
	default:
		return nil, fmt.Errorf("experiment: %s is not a point model", name)
	}
}

// mlpAdapter defers the MLP's fixed-horizon training to Fit time.
type mlpAdapter struct {
	*forecast.MLP
	horizon int
}

func (a *mlpAdapter) Fit(train *timeseries.Series) error {
	return a.MLP.FitHorizon(train, a.horizon)
}

// unionLevels merges two sorted quantile grids.
func unionLevels(a, b []float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, vs := range [][]float64{a, b} {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	// Selection sort keeps this dependency-free and the grids are tiny.
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// Zoo trains and caches forecasters per (model, dataset, run) so tables
// and figures reuse each other's training work within a process. Each
// cache key carries its own sync.Once, so two goroutines asking for
// DIFFERENT models train concurrently while duplicate requests for the
// SAME key block on one training run — this is what lets the parallel
// table runners share the zoo safely.
type Zoo struct {
	cfg      Config
	datasets map[DatasetName]*Dataset

	mu       sync.Mutex // guards the maps, never held during training
	quantile map[string]*zooEntry[forecast.QuantileForecaster]
	point    map[string]*zooEntry[forecast.Forecaster]
	calib    map[string][]float64
}

// zooEntry is one lazily trained cache slot.
type zooEntry[M any] struct {
	once  sync.Once
	model M
	err   error
}

// zooGet returns the entry for key, training it at most once. Only the
// map lookup holds mu; training runs under the entry's own once, so
// distinct keys never serialize on each other.
func zooGet[M any](mu *sync.Mutex, cache map[string]*zooEntry[M], key string, train func() (M, error)) (M, error) {
	mu.Lock()
	e, ok := cache[key]
	if !ok {
		e = &zooEntry[M]{}
		cache[key] = e
	}
	mu.Unlock()
	e.once.Do(func() { e.model, e.err = train() })
	return e.model, e.err
}

// NewZoo prepares datasets and an empty cache.
func NewZoo(cfg Config) (*Zoo, error) {
	ds, err := PrepareDatasets(cfg)
	if err != nil {
		return nil, err
	}
	return &Zoo{
		cfg:      cfg,
		datasets: ds,
		quantile: map[string]*zooEntry[forecast.QuantileForecaster]{},
		point:    map[string]*zooEntry[forecast.Forecaster]{},
		calib:    map[string][]float64{},
	}, nil
}

// Config returns the zoo's experiment configuration.
func (z *Zoo) Config() Config { return z.cfg }

// Dataset returns a prepared dataset.
func (z *Zoo) Dataset(name DatasetName) (*Dataset, error) {
	d, ok := z.datasets[name]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown dataset %s", name)
	}
	return d, nil
}

// Quantile returns the trained quantile forecaster for (model, dataset,
// run), training it on first use.
func (z *Zoo) Quantile(model ModelName, ds DatasetName, run int) (forecast.QuantileForecaster, error) {
	key := fmt.Sprintf("q/%s/%s/%d", model, ds, run)
	return zooGet(&z.mu, z.quantile, key, func() (forecast.QuantileForecaster, error) {
		d, ok := z.datasets[ds]
		if !ok {
			return nil, fmt.Errorf("experiment: unknown dataset %s", ds)
		}
		m, err := buildQuantile(model, z.cfg, z.cfg.Seed+int64(run))
		if err != nil {
			return nil, err
		}
		if err := m.Fit(d.Train()); err != nil {
			return nil, fmt.Errorf("experiment: training %s on %s: %w", model, ds, err)
		}
		return m, nil
	})
}

// Point returns the trained point forecaster for (model, dataset, run),
// training it on first use.
func (z *Zoo) Point(model ModelName, ds DatasetName, run int) (forecast.Forecaster, error) {
	key := fmt.Sprintf("p/%s/%s/%d", model, ds, run)
	return zooGet(&z.mu, z.point, key, func() (forecast.Forecaster, error) {
		d, ok := z.datasets[ds]
		if !ok {
			return nil, fmt.Errorf("experiment: unknown dataset %s", ds)
		}
		m, err := buildPoint(model, z.cfg, z.cfg.Seed+int64(run))
		if err != nil {
			return nil, err
		}
		if err := m.Fit(d.Train()); err != nil {
			return nil, fmt.Errorf("experiment: training %s on %s: %w", model, ds, err)
		}
		return m, nil
	})
}
