package experiment

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// RenderTable1 prints Table I in the paper's layout.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tModel\tmean_wQL\twQL[0.7]\twQL[0.8]\twQL[0.9]\tCov[0.7]\tCov[0.8]\tCov[0.9]\tMSE")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.4f\t%.4f\t%.4f\t%.4f\t%.3f\t%.3f\t%.3f\t%.1f\n",
			r.Dataset, r.Model, r.MeanWQL,
			r.WQL[0.7], r.WQL[0.8], r.WQL[0.9],
			r.Coverage[0.7], r.Coverage[0.8], r.Coverage[0.9], r.MSE)
	}
	return tw.Flush()
}

// RenderTable2 prints Table II.
func RenderTable2(w io.Writer, rows []Table2Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Method\tExecution Time")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f ms\n", r.Method, ms(r.Duration))
	}
	return tw.Flush()
}

// RenderTable3 prints Table III.
func RenderTable3(w io.Writer, rows []Table3Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Phase\tMethod\tTime")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.3f ms\n", r.Phase, r.Method, ms(r.Duration))
	}
	return tw.Flush()
}

// RenderFigure5 prints the warm-up sweep.
func RenderFigure5(w io.Writer, rows []Figure5Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Checkpoint (MB)\tWarm-up")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f\t%.2f s\n", r.CheckpointMB, r.Warmup.Seconds())
	}
	return tw.Flush()
}

// RenderFigure6 prints the sampled uncertainty/accuracy series and the
// overall correlations.
func RenderFigure6(w io.Writer, points []Figure6Point, corrMSE, corrQL float64) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Step\tU\tAbsErr\tmeanQL")
	for _, p := range points {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\n", p.Step, p.Uncertainty, p.AbsErr, p.MeanQL)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "corr(U, abs error) = %.3f; corr(U, quantile loss) = %.3f\n", corrMSE, corrQL)
	return err
}

// RenderFigure7 prints per-model interval coverage summaries (the textual
// stand-in for the interval plot).
func RenderFigure7(w io.Writer, bands []Figure7Band) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Model\tInterval\tEmpirical coverage\tMean width")
	for _, b := range bands {
		for _, mass := range Figure7Intervals {
			lo, hi := b.Lo[mass], b.Hi[mass]
			inside, width := 0, 0.0
			for t := range b.Actual {
				if b.Actual[t] >= lo[t] && b.Actual[t] <= hi[t] {
					inside++
				}
				width += hi[t] - lo[t]
			}
			fmt.Fprintf(tw, "%s\t%.0f%%\t%.0f%%\t%.1f\n",
				b.Model, mass*100,
				100*float64(inside)/float64(len(b.Actual)),
				width/float64(len(b.Actual)))
		}
	}
	return tw.Flush()
}

// RenderFigure8 prints the horizon sweep.
func RenderFigure8(w io.Writer, rows []Figure8Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tModel\tHorizon\tmean_wQL")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.4f\n", r.Dataset, r.Model, r.Horizon, r.MeanWQL)
	}
	return tw.Flush()
}

// RenderFigure9 prints the strategy comparison.
func RenderFigure9(w io.Writer, rows []Figure9Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tStrategy\tUnder-prov.\tOver-prov.")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f%%\t%.2f%%\n", r.Dataset, r.Strategy, 100*r.UnderRate, 100*r.OverRate)
	}
	return tw.Flush()
}

// RenderFigure10 prints the quantile-level trade-off.
func RenderFigure10(w io.Writer, rows []Figure10Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tModel\ttau\tUnder-prov.\tOver-prov.")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f%%\t%.2f%%\n", r.Dataset, r.Model, r.Tau, 100*r.UnderRate, 100*r.OverRate)
	}
	return tw.Flush()
}

// RenderFigure11 prints the adaptive heatmap cells.
func RenderFigure11(w io.Writer, cells []Figure11Cell) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tModel\ttau1\ttau2\tUnder-prov.\tOver-prov.")
	for _, c := range cells {
		kind := ""
		if c.Tau1 == c.Tau2 {
			kind = " (fixed)"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f%s\t%.2f%%\t%.2f%%\n",
			c.Dataset, c.Model, c.Tau1, c.Tau2, kind, 100*c.UnderRate, 100*c.OverRate)
	}
	return tw.Flush()
}

// RenderFigure12 prints the threshold sensitivity sweep.
func RenderFigure12(w io.Writer, rows []Figure12Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tModel\ttau1/tau2\trho-quantile\trho\tUnder-prov.\tOver-prov.")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f/%.2f\t%.2f\t%.2f\t%.2f%%\t%.2f%%\n",
			r.Dataset, r.Model, r.Tau1, r.Tau2, r.RhoQuant, r.Rho, 100*r.UnderRate, 100*r.OverRate)
	}
	return tw.Flush()
}

// Header prints a section banner.
func Header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n%s\n", title, strings.Repeat("-", len(title)+6))
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
