package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestResilienceSmoke(t *testing.T) {
	cfg := Config{Seed: 42, Days: 4, Context: 12, Horizon: 12, Theta: 100, Runs: 1, Quick: true}
	z, err := NewZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Resilience(z, Alibaba, "smoke")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want one per strategy", len(rep.Rows))
	}
	if rep.FaultsInjected == 0 {
		t.Error("smoke profile fired no faults")
	}
	if rep.DegradedRoundsTotal == 0 {
		t.Error("smoke profile engaged no fallbacks")
	}
	for _, r := range rep.Rows {
		if r.ViolationRate < 0 || r.ViolationRate > 1 {
			t.Errorf("%s: violation rate %v", r.Strategy, r.ViolationRate)
		}
		if r.AvgNodes < 1 {
			t.Errorf("%s: avg nodes %v", r.Strategy, r.AvgNodes)
		}
	}

	// Determinism: the same seed reproduces the same matrix.
	z2, err := NewZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Resilience(z2, Alibaba, "smoke")
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Rows {
		if rep.Rows[i] != rep2.Rows[i] {
			t.Errorf("row %d not deterministic: %+v vs %+v", i, rep.Rows[i], rep2.Rows[i])
		}
	}

	var buf bytes.Buffer
	if err := RenderResilience(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "smoke") {
		t.Error("render missing profile column")
	}
	buf.Reset()
	if err := WriteResilienceJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"faults_injected\"") {
		t.Error("JSON missing faults_injected")
	}
}

func TestResilienceFaultFreeBaselineMatches(t *testing.T) {
	// Under the "none" preset every delta must be exactly zero: the
	// guarded loop with chaos disabled is bit-identical to the baseline.
	cfg := Config{Seed: 42, Days: 4, Context: 12, Horizon: 12, Theta: 100, Runs: 1, Quick: true}
	z, err := NewZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Resilience(z, Alibaba, "none")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.ViolationDelta != 0 || r.CostDelta != 0 {
			t.Errorf("%s: fault-free deltas nonzero: %+v", r.Strategy, r)
		}
		if r.DegradedRounds != 0 || r.Holds != 0 || r.Failures != 0 {
			t.Errorf("%s: fault-free run degraded: %+v", r.Strategy, r)
		}
	}
}
