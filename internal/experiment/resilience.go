package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"robustscale/internal/chaos"
	"robustscale/internal/cluster"
	"robustscale/internal/forecast"
	"robustscale/internal/obs"
	"robustscale/internal/scaler"
)

// ResilienceRow is one (fault profile, strategy) cell of the resilience
// matrix: the guarded control loop's outcome under injected faults, with
// deltas against the same strategy's fault-free run.
type ResilienceRow struct {
	Profile  string `json:"profile"`
	Strategy string `json:"strategy"`
	// ViolationRate is the fraction of steps whose utilization breached
	// theta once warm-up and faults are modeled.
	ViolationRate float64 `json:"violation_rate"`
	// AvgNodes is the mean fleet size, the cost proxy.
	AvgNodes float64 `json:"avg_nodes"`
	// ViolationDelta and CostDelta are this cell minus the strategy's
	// fault-free baseline.
	ViolationDelta float64 `json:"violation_delta"`
	CostDelta      float64 `json:"cost_delta"`
	// DegradedRounds counts planning rounds the guard spent off the
	// normal rung; Holds counts steps that kept the previous fleet size
	// because the apply path failed.
	DegradedRounds int `json:"degraded_rounds"`
	Holds          int `json:"holds"`
	// Failures is how many nodes the schedule killed.
	Failures int `json:"failures"`
}

// ResilienceReport is the full matrix plus the aggregate evidence the CI
// smoke job asserts on: faults fired, fallbacks engaged, and degraded
// decision records captured.
type ResilienceReport struct {
	Profile string          `json:"profile"`
	Rows    []ResilienceRow `json:"rows"`
	// FaultsInjected is the process-wide chaos injection count after the
	// run (nonzero iff faults actually fired).
	FaultsInjected float64 `json:"faults_injected"`
	// DegradedRoundsTotal and HoldsTotal aggregate the matrix columns.
	DegradedRoundsTotal int `json:"degraded_rounds_total"`
	HoldsTotal          int `json:"holds_total"`
	// DegradedDecisions counts retained decision records annotated with a
	// degradation mode.
	DegradedDecisions int `json:"degraded_decisions"`
}

// resilienceSpec is one strategy column of the matrix. Strategies are
// rebuilt per cell so chaos wrappers and guard state never leak between
// cells; the forecaster-backed ones use the training-free seasonal-naive
// model, keeping the matrix fast enough for CI.
type resilienceSpec struct {
	name    string
	horizon int
	build   func(theta float64, wrap func(forecast.QuantileForecaster) forecast.QuantileForecaster) (scaler.Strategy, error)
}

func resilienceSpecs(d *Dataset, horizon int) []resilienceSpec {
	season := 144 // one day at 10-minute steps
	newSeasonal := func() (forecast.QuantileForecaster, error) {
		m := forecast.NewSeasonalNaive(season)
		if err := m.Fit(d.Train()); err != nil {
			return nil, err
		}
		return m, nil
	}
	return []resilienceSpec{
		{
			name: "reactive-max", horizon: 1,
			build: func(theta float64, _ func(forecast.QuantileForecaster) forecast.QuantileForecaster) (scaler.Strategy, error) {
				return &scaler.ReactiveMax{Window: 6, Theta: theta}, nil
			},
		},
		{
			name: "robust-0.9", horizon: horizon,
			build: func(theta float64, wrap func(forecast.QuantileForecaster) forecast.QuantileForecaster) (scaler.Strategy, error) {
				qf, err := newSeasonal()
				if err != nil {
					return nil, err
				}
				return &scaler.Robust{Forecaster: wrap(qf), Tau: 0.9, Theta: theta}, nil
			},
		},
		{
			name: "predictive", horizon: horizon,
			build: func(theta float64, wrap func(forecast.QuantileForecaster) forecast.QuantileForecaster) (scaler.Strategy, error) {
				qf, err := newSeasonal()
				if err != nil {
					return nil, err
				}
				return &scaler.Predictive{Forecaster: wrap(qf), Theta: theta}, nil
			},
		},
	}
}

// ResilienceProfiles are the fault-class rows of the matrix, each a
// preset restricted to one boundary, plus the all-class storm.
var ResilienceProfiles = []string{"forecast", "telemetry", "apply", "node-kill", "all"}

// Resilience runs the resilience matrix on one dataset: every fault-class
// profile against every guarded strategy, reporting violation-rate and
// cost deltas versus each strategy's fault-free baseline. The profile
// argument selects a single preset ("smoke" for CI, one of the class
// presets for focused runs) or "matrix" for the full sweep.
func Resilience(z *Zoo, ds DatasetName, profile string) (*ResilienceReport, error) {
	d, err := z.Dataset(ds)
	if err != nil {
		return nil, err
	}
	cfg := z.Config()
	profiles := []string{profile}
	if profile == "matrix" {
		profiles = ResilienceProfiles
	}
	report := &ResilienceReport{Profile: profile}
	for _, spec := range resilienceSpecs(d, cfg.Horizon) {
		base, err := runResilienceCell(d, cfg, spec, chaos.Profile{Name: "none"})
		if err != nil {
			return nil, fmt.Errorf("experiment: resilience baseline %s: %w", spec.name, err)
		}
		for _, name := range profiles {
			p, err := chaos.Preset(name)
			if err != nil {
				return nil, err
			}
			p.Seed = cfg.Seed
			cell, err := runResilienceCell(d, cfg, spec, p)
			if err != nil {
				return nil, fmt.Errorf("experiment: resilience %s/%s: %w", name, spec.name, err)
			}
			cell.ViolationDelta = cell.ViolationRate - base.ViolationRate
			cell.CostDelta = cell.AvgNodes - base.AvgNodes
			report.Rows = append(report.Rows, cell)
			report.DegradedRoundsTotal += cell.DegradedRounds
			report.HoldsTotal += cell.Holds
		}
	}
	report.FaultsInjected = chaos.InjectedTotal()
	for _, dec := range obs.DefaultDecisions.Decisions() {
		if dec.Degraded != "" {
			report.DegradedDecisions++
		}
	}
	return report, nil
}

// runResilienceCell drives one guarded closed-loop replay: chaos wraps
// every boundary (forecaster, telemetry, apply), the guard wraps the
// strategy, and the applier holds the current fleet when the control
// plane fails. The acceptance invariant — no panic, no NaN allocation —
// is enforced by construction; violations and cost are measured against
// the warm-up-adjusted cluster.
func runResilienceCell(d *Dataset, cfg Config, spec resilienceSpec, prof chaos.Profile) (ResilienceRow, error) {
	row := ResilienceRow{Profile: prof.Name, Strategy: spec.name}
	evalLen := d.Series.Len() - d.EvalStart
	if evalLen <= 0 {
		return row, fmt.Errorf("empty evaluation span")
	}
	prof.Steps = evalLen
	sched, err := prof.Build()
	if err != nil {
		return row, err
	}
	cur := &chaos.Cursor{}
	wrap := func(qf forecast.QuantileForecaster) forecast.QuantileForecaster {
		return &chaos.Forecaster{Inner: qf, Schedule: sched, Cursor: cur}
	}
	inner, err := spec.build(cfg.Theta, wrap)
	if err != nil {
		return row, err
	}

	c, err := cluster.New(cluster.DefaultConfig(), d.Series.TimeAt(d.EvalStart), 1)
	if err != nil {
		return row, err
	}
	guard := &scaler.Guard{
		Inner:  inner,
		Config: scaler.GuardConfig{Theta: cfg.Theta, Tau: 0.9},
		Clock:  c.Now,
	}
	applier := &scaler.Applier{
		Apply:   chaos.WrapApply(c.ScaleTo, c.Size, sched, cur),
		Breaker: &scaler.Breaker{Threshold: 3, Cooldown: 3 * d.Series.Step},
		Clock:   c.Now,
	}

	var plan []int
	offset := 0
	nodeSteps := 0
	violations := 0
	for i := 0; i < evalLen; i++ {
		cur.Set(i)
		step := d.EvalStart + i
		if kills := sched.KillsAt(i); kills > 0 {
			chaos.CountInjected(chaos.NodeKill)
			c.Kill(kills)
		}
		if len(plan) == 0 || offset >= len(plan) {
			hist := chaos.CorruptTelemetry(d.Series.Slice(0, step), sched, i)
			prev := c.Size()
			p, err := guard.Plan(hist, spec.horizon)
			if err != nil {
				// The ladder is exhausted only in pathological setups; the
				// safe behavior is to hold the current fleet for a round.
				p = []int{prev}
			}
			plan, offset = p, 0
			scaler.RecordDecision(guard, step, c.Now(), prev, plan)
		}
		target := plan[offset]
		offset++
		if err := applier.ScaleTo(target); err != nil {
			row.Holds++ // fleet stays where it is
		}
		capacity := c.EffectiveCapacity(d.Series.Step)
		if capacity < 1e-9 {
			capacity = 1e-9
		}
		if d.Series.At(step)/capacity > cfg.Theta {
			violations++
		}
		nodeSteps += c.Size()
		c.Advance(d.Series.Step)
	}
	row.ViolationRate = float64(violations) / float64(evalLen)
	row.AvgNodes = float64(nodeSteps) / float64(evalLen)
	row.DegradedRounds = guard.DegradedRounds()
	row.Failures = c.Failures
	return row, nil
}

// RenderResilience writes the matrix as a table.
func RenderResilience(w io.Writer, rep *ResilienceReport) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "profile\tstrategy\tviolation\tΔviolation\tavg nodes\tΔcost\tdegraded\tholds\tkilled")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%.4f\t%+.4f\t%.2f\t%+.2f\t%d\t%d\t%d\n",
			r.Profile, r.Strategy, r.ViolationRate, r.ViolationDelta,
			r.AvgNodes, r.CostDelta, r.DegradedRounds, r.Holds, r.Failures)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "faults injected: %.0f, degraded rounds: %d, holds: %d, degraded decisions: %d\n",
		rep.FaultsInjected, rep.DegradedRoundsTotal, rep.HoldsTotal, rep.DegradedDecisions)
	return err
}

// WriteResilienceJSON writes the report for machine consumption (the CI
// chaos smoke job asserts on these fields with jq).
func WriteResilienceJSON(w io.Writer, rep *ResilienceReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
