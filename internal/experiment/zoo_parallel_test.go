package experiment

import (
	"sync"
	"testing"
)

// TestZooConcurrentSameKey hammers one cache key from many goroutines:
// the per-key once must hand every caller the same trained model (i.e.
// training ran exactly once), with no data race (run under -race).
func TestZooConcurrentSameKey(t *testing.T) {
	z, err := NewZoo(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	models := make([]any, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := z.Quantile(ModelARIMA, Alibaba, 0)
			models[i], errs[i] = m, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if models[i] != models[0] {
			t.Fatalf("caller %d got a different model instance", i)
		}
	}
}

// TestZooConcurrentDistinctKeys checks that different keys can train at
// the same time without tripping the race detector or cross-wiring cache
// slots.
func TestZooConcurrentDistinctKeys(t *testing.T) {
	z, err := NewZoo(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	keys := []struct {
		model ModelName
		ds    DatasetName
	}{
		{ModelARIMA, Alibaba},
		{ModelARIMA, Google},
		{ModelMLP, Alibaba},
	}
	errs := make([]error, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, model ModelName, ds DatasetName) {
			defer wg.Done()
			_, errs[i] = z.Quantile(model, ds, 0)
		}(i, k.model, k.ds)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	// The cache must now serve each key instantly and distinctly.
	a, _ := z.Quantile(ModelARIMA, Alibaba, 0)
	g, _ := z.Quantile(ModelARIMA, Google, 0)
	if a == g {
		t.Fatal("distinct keys share one cached model")
	}
}
