package experiment

import (
	"fmt"
	"sort"
	"time"

	"robustscale/internal/cluster"
	"robustscale/internal/forecast"
	"robustscale/internal/optimize"
	"robustscale/internal/parallel"
	"robustscale/internal/scaler"
	"robustscale/internal/timeseries"
)

// Table2Row is one method's per-decision execution time (Table II): the
// wall time to produce one full-horizon scaling plan.
type Table2Row struct {
	Method   string
	Duration time.Duration
}

// Table2 reproduces the computation-overhead comparison: per-plan wall
// time of the reactive scalers, the QB5000 hybrid, DeepAR and TFT, on the
// Alibaba dataset. DeepAR dominates because of its Monte-Carlo sampling;
// reactive scalers are nearly free.
func Table2(z *Zoo) ([]Table2Row, error) {
	ds := Alibaba
	d, err := z.Dataset(ds)
	if err != nil {
		return nil, err
	}
	cfg := z.Config()

	// Train/fetch the three models concurrently (they are distinct zoo
	// keys). Only the prefetch is parallel: the timed planning loop below
	// must stay sequential so wall-clock measurements are not polluted by
	// sibling work.
	var qb forecast.Forecaster
	var deepar, tft forecast.QuantileForecaster
	fetches := []func() error{
		func() (err error) { qb, err = z.Point(ModelQB5000, ds, 0); return },
		func() (err error) { deepar, err = z.Quantile(ModelDeepAR, ds, 0); return },
		func() (err error) { tft, err = z.Quantile(ModelTFT, ds, 0); return },
	}
	errs := make([]error, len(fetches))
	parallel.ForEach(parallel.Workers(0, len(fetches)), len(fetches), func(i int) {
		errs[i] = fetches[i]()
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}

	specs := []struct {
		name     string
		strategy scaler.Strategy
		horizon  int
	}{
		{"Reactive-Max", &scaler.ReactiveMax{Window: 6, Theta: cfg.Theta}, 1},
		{"Reactive-Average", &scaler.ReactiveAvg{Window: 6, HalfLife: 6, Theta: cfg.Theta}, 1},
		{"Hybrid(QB5000)", &scaler.Predictive{Forecaster: qb, Theta: cfg.Theta}, cfg.Horizon},
		{"DeepAR", &scaler.Robust{Forecaster: deepar, Tau: 0.9, Theta: cfg.Theta}, cfg.Horizon},
		{"TFT", &scaler.Robust{Forecaster: tft, Tau: 0.9, Theta: cfg.Theta}, cfg.Horizon},
	}

	history := d.Series.Slice(0, d.EvalStart)
	rows := make([]Table2Row, 0, len(specs))
	for _, spec := range specs {
		dur, err := timePlan(spec.strategy, history, spec.horizon)
		if err != nil {
			return nil, fmt.Errorf("experiment: table 2 %s: %w", spec.name, err)
		}
		rows = append(rows, Table2Row{Method: spec.name, Duration: dur})
	}
	return rows, nil
}

// timePlan measures the median-of-5 wall time of one planning call.
func timePlan(s scaler.Strategy, history *timeseries.Series, h int) (time.Duration, error) {
	const reps = 5
	durations := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := s.Plan(history, h); err != nil {
			return 0, err
		}
		durations = append(durations, time.Since(start))
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	return durations[reps/2], nil
}

// Table3Row is one component's contribution to the cost breakdown
// (Table III).
type Table3Row struct {
	Phase    string // "forecast" or "optimize"
	Method   string
	Duration time.Duration
}

// Table3 reproduces the overhead breakdown: quantile-forecast inference
// time for DeepAR vs TFT, and optimization time for the basic robust plan
// vs the uncertainty-aware adaptive plan.
func Table3(z *Zoo) ([]Table3Row, error) {
	ds := Alibaba
	d, err := z.Dataset(ds)
	if err != nil {
		return nil, err
	}
	cfg := z.Config()
	history := d.Series.Slice(0, d.EvalStart)
	levels := forecast.ScalingLevels

	var rows []Table3Row

	// Forecasting inference.
	for _, model := range []ModelName{ModelDeepAR, ModelTFT} {
		qf, err := z.Quantile(model, ds, 0)
		if err != nil {
			return nil, err
		}
		const reps = 5
		durations := make([]time.Duration, 0, reps)
		var fc *forecast.QuantileForecast
		for i := 0; i < reps; i++ {
			start := time.Now()
			fc, err = qf.PredictQuantiles(history, cfg.Horizon, levels)
			if err != nil {
				return nil, err
			}
			durations = append(durations, time.Since(start))
		}
		sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
		rows = append(rows, Table3Row{Phase: "forecast", Method: string(model), Duration: durations[reps/2]})

		// Optimization on the forecast this model produced; measured once
		// per model so the table shows both are negligible and
		// near-identical.
		if model == ModelTFT {
			basicPath := make([]float64, cfg.Horizon)
			for t := range basicPath {
				basicPath[t] = fc.At(t, 0.9)
			}
			start := time.Now()
			if _, err := optimize.Plan(basicPath, cfg.Theta); err != nil {
				return nil, err
			}
			rows = append(rows, Table3Row{Phase: "optimize", Method: "basic", Duration: time.Since(start)})

			start = time.Now()
			us, err := scaler.Uncertainties(fc)
			if err != nil {
				return nil, err
			}
			rho := us[len(us)/2]
			adaptivePath := make([]float64, cfg.Horizon)
			for t := range adaptivePath {
				tau := 0.7
				if us[t] >= rho {
					tau = 0.95
				}
				adaptivePath[t] = fc.At(t, tau)
			}
			if _, err := optimize.Plan(adaptivePath, cfg.Theta); err != nil {
				return nil, err
			}
			rows = append(rows, Table3Row{Phase: "optimize", Method: "adaptive", Duration: time.Since(start)})
		}
	}
	return rows, nil
}

// Figure5Row is one checkpoint size's scale-out warm-up time (Figure 5).
type Figure5Row struct {
	CheckpointMB float64
	Warmup       time.Duration
}

// Figure5CheckpointsMB are the in-memory component sizes swept in the
// warm-up measurement.
var Figure5CheckpointsMB = []float64{256, 512, 1024, 2048, 4096, 8192}

// Figure5 reproduces the scale-out overhead measurement on the simulated
// disaggregated database: warm-up (checkpoint load) time versus checkpoint
// size, staying in the seconds range that justifies ignoring scaling
// overhead at 10-minute intervals.
func Figure5(start time.Time) ([]Figure5Row, error) {
	cfg := cluster.DefaultConfig()
	rows := make([]Figure5Row, 0, len(Figure5CheckpointsMB))
	for _, mb := range Figure5CheckpointsMB {
		cfg.CheckpointMB = mb
		c, err := cluster.New(cfg, start, 1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure5Row{CheckpointMB: mb, Warmup: c.WarmupDuration()})
	}
	return rows, nil
}
