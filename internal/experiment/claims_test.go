package experiment

import (
	"testing"
)

// These tests pin the paper's headline qualitative claims as regression
// tests on the tiny shared zoo: if a refactor breaks one of the shapes the
// evaluation is built to show, these fail before the benches would.

func TestClaimQuantileSweepMonotone(t *testing.T) {
	z := zoo(t)
	for _, ds := range []DatasetName{Alibaba, Google} {
		rows, err := Figure10(z, ds, ModelTFT)
		if err != nil {
			t.Fatal(err)
		}
		// Under-provisioning must not increase with tau (small slack for
		// integer-allocation noise), and the extremes must differ
		// materially.
		for i := 1; i < len(rows); i++ {
			if rows[i].UnderRate > rows[i-1].UnderRate+0.05 {
				t.Errorf("%s: under rose %v -> %v at tau %v",
					ds, rows[i-1].UnderRate, rows[i].UnderRate, rows[i].Tau)
			}
		}
		first, last := rows[0], rows[len(rows)-1]
		if last.UnderRate >= first.UnderRate {
			t.Errorf("%s: tau %v under %v not below tau %v under %v",
				ds, last.Tau, last.UnderRate, first.Tau, first.UnderRate)
		}
		if last.OverRate <= first.OverRate {
			t.Errorf("%s: tau %v over %v not above tau %v over %v",
				ds, last.Tau, last.OverRate, first.Tau, first.OverRate)
		}
	}
}

func TestClaimAdaptiveBetweenFixedEndpoints(t *testing.T) {
	z := zoo(t)
	cells, err := Figure11(z, Google, ModelTFT)
	if err != nil {
		t.Fatal(err)
	}
	// Index the diagonal.
	fixed := map[float64]Figure11Cell{}
	for _, c := range cells {
		if c.Tau1 == c.Tau2 {
			fixed[c.Tau1] = c
		}
	}
	const slack = 0.03
	for _, c := range cells {
		if c.Tau1 == c.Tau2 {
			continue
		}
		lo, hi := fixed[c.Tau1], fixed[c.Tau2]
		// Adaptive under-provisioning sits between the conservative and
		// aggressive endpoints.
		if c.UnderRate > lo.UnderRate+slack {
			t.Errorf("(%v,%v): adaptive under %v above aggressive fixed %v",
				c.Tau1, c.Tau2, c.UnderRate, lo.UnderRate)
		}
		if c.UnderRate < hi.UnderRate-slack {
			t.Errorf("(%v,%v): adaptive under %v below conservative fixed %v",
				c.Tau1, c.Tau2, c.UnderRate, hi.UnderRate)
		}
		// And it saves over-provisioning relative to the conservative
		// endpoint.
		if c.OverRate > hi.OverRate+slack {
			t.Errorf("(%v,%v): adaptive over %v above conservative fixed %v",
				c.Tau1, c.Tau2, c.OverRate, hi.OverRate)
		}
	}
}

func TestClaimGoogleHarderThanAlibaba(t *testing.T) {
	z := zoo(t)
	rows, err := Table1(z)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Table1Row{}
	for _, r := range rows {
		byKey[string(r.Dataset)+"/"+string(r.Model)] = r
	}
	for _, model := range QuantileModels {
		ali := byKey["alibaba/"+string(model)]
		goo := byKey["google/"+string(model)]
		if goo.MeanWQL <= ali.MeanWQL {
			t.Errorf("%s: google mean_wQL %v not above alibaba %v", model, goo.MeanWQL, ali.MeanWQL)
		}
	}
}

func TestClaimRhoSweepSpansEndpoints(t *testing.T) {
	z := zoo(t)
	rows, err := Figure12(z, Google, ModelTFT, 0.7, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	// Low rho behaves conservatively (low under, high over); high rho
	// aggressively. Ties are possible on the tiny config, strict
	// inversions are not.
	if first.UnderRate > last.UnderRate {
		t.Errorf("under at low rho %v above high rho %v", first.UnderRate, last.UnderRate)
	}
	if first.OverRate < last.OverRate {
		t.Errorf("over at low rho %v below high rho %v", first.OverRate, last.OverRate)
	}
}
