package dist

import (
	"math"
	"math/rand"
	"sort"
)

// Empirical is the empirical distribution of a set of samples, e.g. the
// Monte-Carlo forecast paths DeepAR draws from its parametric heads.
// Quantiles interpolate linearly between order statistics.
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds an empirical distribution from samples. The input is
// copied and sorted; it must be non-empty.
func NewEmpirical(samples []float64) *Empirical {
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return &Empirical{sorted: sorted}
}

// Len returns the number of samples backing the distribution.
func (e *Empirical) Len() int { return len(e.sorted) }

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// Variance returns the population sample variance.
func (e *Empirical) Variance() float64 {
	n := len(e.sorted)
	if n == 0 {
		return math.NaN()
	}
	mean := e.Mean()
	ss := 0.0
	for _, v := range e.sorted {
		d := v - mean
		ss += d * d
	}
	return ss / float64(n)
}

// PDF is estimated with a Gaussian kernel density using Silverman's
// bandwidth rule.
func (e *Empirical) PDF(x float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	h := e.bandwidth()
	sum := 0.0
	for _, v := range e.sorted {
		z := (x - v) / h
		sum += math.Exp(-0.5 * z * z)
	}
	return sum / (float64(n) * h * sqrt2Pi)
}

// LogPDF is the log of the kernel density estimate.
func (e *Empirical) LogPDF(x float64) float64 {
	p := e.PDF(x)
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

func (e *Empirical) bandwidth() float64 {
	n := float64(len(e.sorted))
	sd := math.Sqrt(e.Variance())
	if sd < 1e-12 {
		sd = 1e-12
	}
	return 1.06 * sd * math.Pow(n, -0.2)
}

// CDF returns the fraction of samples <= x.
func (e *Empirical) CDF(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, x)
	// Advance over ties so CDF counts values equal to x.
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the p-th sample quantile with linear interpolation.
func (e *Empirical) Quantile(p float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return e.sorted[lo]
	}
	frac := pos - float64(lo)
	return e.sorted[lo]*(1-frac) + e.sorted[hi]*frac
}

// Sample draws one of the underlying samples uniformly (bootstrap draw).
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	return e.sorted[rng.Intn(len(e.sorted))]
}

// SortInPlace sorts samples ascending in place and returns the same slice,
// ready for SortedQuantile/SortedMean. Together they are the
// allocation-free counterpart of NewEmpirical for callers that own a
// reusable sample buffer (the forecast hot path re-draws every slot each
// round, so destroying the previous order costs nothing).
func SortInPlace(samples []float64) []float64 {
	sort.Float64s(samples)
	return samples
}

// SortedQuantile returns the p-th quantile of an ascending-sorted slice
// using the same linear interpolation between order statistics as
// Empirical.Quantile, without constructing a distribution.
func SortedQuantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SortedMean returns the sample mean, accumulating in slice order. Because
// Empirical.Mean also sums its (sorted) samples front to back, calling
// SortedMean on a SortInPlace'd buffer is bit-identical to
// NewEmpirical(samples).Mean().
func SortedMean(sorted []float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return sum / float64(len(sorted))
}

var _ Distribution = (*Empirical)(nil)
var _ Distribution = Normal{}
var _ Distribution = StudentT{}
