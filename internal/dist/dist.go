// Package dist implements the probability distributions used by the
// probabilistic workload forecasters: Gaussian and Student-t parametric
// distributions (the paper's DeepAR head uses Student-t for its heavier
// tails) and empirical distributions built from forecast sample paths.
//
// Every distribution exposes the density, log-density, CDF, quantile
// function and seeded sampling; quantiles are what the Robust Auto-Scaling
// Manager consumes.
package dist

import (
	"math"
	"math/rand"
)

// Distribution is a univariate continuous probability distribution.
type Distribution interface {
	// Mean returns the distribution mean (NaN when undefined).
	Mean() float64
	// Variance returns the distribution variance (+Inf or NaN when
	// undefined).
	Variance() float64
	// PDF evaluates the probability density at x.
	PDF(x float64) float64
	// LogPDF evaluates the log-density at x; used as the negative
	// log-likelihood training target.
	LogPDF(x float64) float64
	// CDF evaluates the cumulative distribution function at x.
	CDF(x float64) float64
	// Quantile returns the p-th quantile, p in (0, 1).
	Quantile(p float64) float64
	// Sample draws one value using rng.
	Sample(rng *rand.Rand) float64
}

const (
	sqrt2   = 1.4142135623730951
	log2Pi  = 1.8378770664093453
	sqrt2Pi = 2.5066282746310002
)

// Normal is the Gaussian distribution N(Mu, Sigma^2).
type Normal struct {
	Mu, Sigma float64
}

// NewNormal returns a Normal with the given mean and standard deviation.
// Sigma is floored at a tiny positive value to keep densities finite.
func NewNormal(mu, sigma float64) Normal {
	if sigma < 1e-12 {
		sigma = 1e-12
	}
	return Normal{Mu: mu, Sigma: sigma}
}

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// Variance returns Sigma^2.
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// PDF evaluates the Gaussian density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * sqrt2Pi)
}

// LogPDF evaluates the Gaussian log-density at x.
func (n Normal) LogPDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return -0.5*z*z - math.Log(n.Sigma) - 0.5*log2Pi
}

// CDF evaluates the Gaussian CDF at x.
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*sqrt2))
}

// Quantile returns the p-th Gaussian quantile using the inverse error
// function.
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*sqrt2*math.Erfinv(2*p-1)
}

// Sample draws from N(Mu, Sigma^2).
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// StudentT is the location-scale Student-t distribution with Nu degrees of
// freedom, location Mu and scale Sigma. Its longer tails make it robust to
// workload outliers, which is why the paper's DeepAR variant emits it.
type StudentT struct {
	Nu, Mu, Sigma float64
}

// NewStudentT returns a StudentT with the given degrees of freedom,
// location and scale. Nu is floored slightly above 1 and Sigma at a tiny
// positive value.
func NewStudentT(nu, mu, sigma float64) StudentT {
	if nu < 1.01 {
		nu = 1.01
	}
	if sigma < 1e-12 {
		sigma = 1e-12
	}
	return StudentT{Nu: nu, Mu: mu, Sigma: sigma}
}

// Mean returns Mu for Nu > 1 and NaN otherwise.
func (t StudentT) Mean() float64 {
	if t.Nu <= 1 {
		return math.NaN()
	}
	return t.Mu
}

// Variance returns Sigma^2 * Nu/(Nu-2) for Nu > 2, +Inf for 1 < Nu <= 2.
func (t StudentT) Variance() float64 {
	if t.Nu <= 1 {
		return math.NaN()
	}
	if t.Nu <= 2 {
		return math.Inf(1)
	}
	return t.Sigma * t.Sigma * t.Nu / (t.Nu - 2)
}

// PDF evaluates the Student-t density at x.
func (t StudentT) PDF(x float64) float64 {
	return math.Exp(t.LogPDF(x))
}

// LogPDF evaluates the Student-t log-density at x.
func (t StudentT) LogPDF(x float64) float64 {
	z := (x - t.Mu) / t.Sigma
	lg1, _ := math.Lgamma((t.Nu + 1) / 2)
	lg2, _ := math.Lgamma(t.Nu / 2)
	return lg1 - lg2 -
		0.5*math.Log(t.Nu*math.Pi) - math.Log(t.Sigma) -
		(t.Nu+1)/2*math.Log1p(z*z/t.Nu)
}

// CDF evaluates the Student-t CDF at x via the regularized incomplete beta
// function.
func (t StudentT) CDF(x float64) float64 {
	z := (x - t.Mu) / t.Sigma
	if z == 0 {
		return 0.5
	}
	// Use w = z^2/(nu+z^2) rather than the complement nu/(nu+z^2): the
	// latter cancels catastrophically for small |z|.
	w := z * z / (t.Nu + z*z)
	ib := RegIncBeta(0.5, t.Nu/2, w)
	if z > 0 {
		return 0.5 + 0.5*ib
	}
	return 0.5 - 0.5*ib
}

// Quantile returns the p-th Student-t quantile by numerically inverting the
// CDF (bisection refined with Newton steps).
func (t StudentT) Quantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Initial guess from the Gaussian quantile; widen the bracket until it
	// contains the target.
	guess := NewNormal(t.Mu, t.Sigma).Quantile(p)
	lo, hi := guess-t.Sigma, guess+t.Sigma
	for t.CDF(lo) > p {
		lo -= (hi - lo)
	}
	for t.CDF(hi) < p {
		hi += (hi - lo)
	}
	x := guess
	for i := 0; i < 100; i++ {
		c := t.CDF(x)
		if c > p {
			hi = x
		} else {
			lo = x
		}
		pdf := t.PDF(x)
		var next float64
		if pdf > 1e-300 {
			next = x - (c-p)/pdf // Newton step
		}
		if pdf <= 1e-300 || next <= lo || next >= hi {
			next = (lo + hi) / 2 // fall back to bisection
		}
		if math.Abs(next-x) < 1e-12*(1+math.Abs(x)) {
			return next
		}
		x = next
	}
	return x
}

// Sample draws from the Student-t via the normal/chi-square representation
// T = Z / sqrt(V/Nu), V ~ ChiSquare(Nu).
func (t StudentT) Sample(rng *rand.Rand) float64 {
	z := rng.NormFloat64()
	v := sampleGamma(rng, t.Nu/2, 2) // ChiSquare(nu) = Gamma(nu/2, scale 2)
	return t.Mu + t.Sigma*z/math.Sqrt(v/t.Nu)
}

// sampleGamma draws from Gamma(shape, scale) using Marsaglia-Tsang, with
// the standard boost for shape < 1.
func sampleGamma(rng *rand.Rand, shape, scale float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return sampleGamma(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}
