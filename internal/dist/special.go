package dist

import "math"

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Lentz's algorithm), as in
// Numerical Recipes. It underpins the Student-t CDF.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lgab, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lbeta := lga + lgb - lgab
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		mf := float64(m)
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Digamma computes the digamma function psi(x) for x > 0 using the
// recurrence psi(x) = psi(x+1) - 1/x to push the argument above 6 and then
// the asymptotic series. Needed for the gradient of the Student-t
// log-likelihood with respect to the degrees of freedom.
func Digamma(x float64) float64 {
	result := 0.0
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion.
	result += math.Log(x) - 1/(2*x)
	inv2 := 1 / (x * x)
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2/240)))
	return result
}

// Softplus maps any real to a positive value: log(1 + exp(x)). Forecaster
// output heads use it to keep scale parameters positive, as the paper
// describes for the sigma output.
func Softplus(x float64) float64 {
	if x > 30 {
		return x // avoids overflow; softplus(x) ~ x for large x
	}
	return math.Log1p(math.Exp(x))
}

// SoftplusDeriv is the derivative of Softplus, i.e. the logistic sigmoid.
func SoftplusDeriv(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// InvSoftplus inverts Softplus: returns x such that Softplus(x) = y, y > 0.
func InvSoftplus(y float64) float64 {
	if y > 30 {
		return y
	}
	return math.Log(math.Expm1(y))
}
