package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalMoments(t *testing.T) {
	n := NewNormal(3, 2)
	if n.Mean() != 3 {
		t.Errorf("Mean = %v", n.Mean())
	}
	if n.Variance() != 4 {
		t.Errorf("Variance = %v", n.Variance())
	}
}

func TestNormalPDFKnownValues(t *testing.T) {
	n := NewNormal(0, 1)
	if got := n.PDF(0); !almostEqual(got, 0.3989422804014327, 1e-12) {
		t.Errorf("PDF(0) = %v", got)
	}
	if got := n.PDF(1); !almostEqual(got, 0.24197072451914337, 1e-12) {
		t.Errorf("PDF(1) = %v", got)
	}
	if got := math.Exp(n.LogPDF(1.7)); !almostEqual(got, n.PDF(1.7), 1e-12) {
		t.Errorf("exp(LogPDF) = %v, PDF = %v", got, n.PDF(1.7))
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	n := NewNormal(5, 3)
	for _, p := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		x := n.Quantile(p)
		if got := n.CDF(x); !almostEqual(got, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if got := n.Quantile(0.5); !almostEqual(got, 5, 1e-9) {
		t.Errorf("median = %v, want 5", got)
	}
}

func TestNormalKnownQuantiles(t *testing.T) {
	n := NewNormal(0, 1)
	// Standard normal 97.5th percentile ~ 1.959964.
	if got := n.Quantile(0.975); !almostEqual(got, 1.959963984540054, 1e-9) {
		t.Errorf("Quantile(0.975) = %v", got)
	}
	if got := n.Quantile(0.9); !almostEqual(got, 1.2815515655446004, 1e-9) {
		t.Errorf("Quantile(0.9) = %v", got)
	}
}

func TestNormalSigmaFloor(t *testing.T) {
	n := NewNormal(0, -5)
	if n.Sigma <= 0 {
		t.Errorf("Sigma = %v, want positive floor", n.Sigma)
	}
}

func TestNormalSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNormal(10, 2)
	const N = 200000
	sum, ss := 0.0, 0.0
	for i := 0; i < N; i++ {
		v := n.Sample(rng)
		sum += v
		ss += v * v
	}
	mean := sum / N
	variance := ss/N - mean*mean
	if !almostEqual(mean, 10, 0.05) {
		t.Errorf("sample mean = %v", mean)
	}
	if !almostEqual(variance, 4, 0.1) {
		t.Errorf("sample variance = %v", variance)
	}
}

func TestStudentTMoments(t *testing.T) {
	st := NewStudentT(5, 1, 2)
	if st.Mean() != 1 {
		t.Errorf("Mean = %v", st.Mean())
	}
	// Var = sigma^2 * nu/(nu-2) = 4 * 5/3.
	if !almostEqual(st.Variance(), 4*5.0/3.0, 1e-12) {
		t.Errorf("Variance = %v", st.Variance())
	}
	heavy := NewStudentT(1.5, 0, 1)
	if !math.IsInf(heavy.Variance(), 1) {
		t.Errorf("nu=1.5 variance = %v, want +Inf", heavy.Variance())
	}
}

func TestStudentTPDFSymmetry(t *testing.T) {
	st := NewStudentT(4, 0, 1)
	for _, x := range []float64{0.5, 1, 2, 3.7} {
		if !almostEqual(st.PDF(x), st.PDF(-x), 1e-12) {
			t.Errorf("PDF not symmetric at %v", x)
		}
	}
	// Known value: t-dist nu=1 (Cauchy-like floor is 1.01, so use nu=2):
	// pdf(0) for nu=2 is 1/(2*sqrt(2)) = 0.35355...
	st2 := NewStudentT(2, 0, 1)
	if got := st2.PDF(0); !almostEqual(got, 0.35355339059327373, 1e-9) {
		t.Errorf("t2 PDF(0) = %v", got)
	}
}

func TestStudentTCDF(t *testing.T) {
	st := NewStudentT(10, 0, 1)
	if got := st.CDF(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("CDF(0) = %v", got)
	}
	// t10 95th percentile = 1.8124611...
	if got := st.CDF(1.8124611228107335); !almostEqual(got, 0.95, 1e-7) {
		t.Errorf("CDF(t95) = %v", got)
	}
	// Symmetry: CDF(-x) = 1 - CDF(x).
	for _, x := range []float64{0.3, 1.1, 2.5} {
		if !almostEqual(st.CDF(-x), 1-st.CDF(x), 1e-10) {
			t.Errorf("CDF asymmetric at %v", x)
		}
	}
}

func TestStudentTQuantileRoundTrip(t *testing.T) {
	for _, nu := range []float64{2, 5, 30} {
		st := NewStudentT(nu, -1, 0.5)
		for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := st.Quantile(p)
			if got := st.CDF(x); !almostEqual(got, p, 1e-8) {
				t.Errorf("nu=%v: CDF(Quantile(%v)) = %v", nu, p, got)
			}
		}
	}
}

func TestStudentTQuantileExtremes(t *testing.T) {
	st := NewStudentT(5, 0, 1)
	if !math.IsInf(st.Quantile(0), -1) || !math.IsInf(st.Quantile(1), 1) {
		t.Error("Quantile(0)/Quantile(1) should be infinite")
	}
}

func TestStudentTApproachesNormal(t *testing.T) {
	// For large nu the Student-t converges to the normal.
	st := NewStudentT(1e6, 0, 1)
	n := NewNormal(0, 1)
	for _, p := range []float64{0.1, 0.5, 0.9, 0.975} {
		if !almostEqual(st.Quantile(p), n.Quantile(p), 1e-3) {
			t.Errorf("p=%v: t quantile %v vs normal %v", p, st.Quantile(p), n.Quantile(p))
		}
	}
}

func TestStudentTSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	st := NewStudentT(8, 2, 1)
	const N = 200000
	sum := 0.0
	for i := 0; i < N; i++ {
		sum += st.Sample(rng)
	}
	if mean := sum / N; !almostEqual(mean, 2, 0.05) {
		t.Errorf("sample mean = %v", mean)
	}
}

func TestStudentTNuFloor(t *testing.T) {
	st := NewStudentT(0.5, 0, 1)
	if st.Nu < 1 {
		t.Errorf("Nu = %v, want floored above 1", st.Nu)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !almostEqual(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = 3x^2 - 2x^3.
	x := 0.3
	want := 3*x*x - 2*x*x*x
	if got := RegIncBeta(2, 2, x); !almostEqual(got, want, 1e-12) {
		t.Errorf("I_0.3(2,2) = %v, want %v", got, want)
	}
	if got := RegIncBeta(3, 2, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := RegIncBeta(3, 2, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
}

func TestRegIncBetaMonotonic(t *testing.T) {
	f := func(seed uint8) bool {
		a := 0.5 + float64(seed%10)
		b := 0.5 + float64(seed/10%10)
		prev := -1.0
		for x := 0.0; x <= 1.0; x += 0.05 {
			v := RegIncBeta(a, b, x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftplus(t *testing.T) {
	if got := Softplus(0); !almostEqual(got, math.Log(2), 1e-12) {
		t.Errorf("Softplus(0) = %v", got)
	}
	if got := Softplus(100); !almostEqual(got, 100, 1e-9) {
		t.Errorf("Softplus(100) = %v", got)
	}
	if Softplus(-100) < 0 {
		t.Error("Softplus should be positive")
	}
	// Inverse round trip.
	for _, y := range []float64{0.1, 1, 5, 50} {
		if got := Softplus(InvSoftplus(y)); !almostEqual(got, y, 1e-9) {
			t.Errorf("Softplus(InvSoftplus(%v)) = %v", y, got)
		}
	}
	// Derivative is the sigmoid.
	if got := SoftplusDeriv(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("SoftplusDeriv(0) = %v", got)
	}
}

func TestEmpiricalQuantiles(t *testing.T) {
	e := NewEmpirical([]float64{5, 1, 3, 2, 4})
	if got := e.Quantile(0); got != 1 {
		t.Errorf("Q(0) = %v", got)
	}
	if got := e.Quantile(1); got != 5 {
		t.Errorf("Q(1) = %v", got)
	}
	if got := e.Quantile(0.5); got != 3 {
		t.Errorf("Q(0.5) = %v", got)
	}
	if got := e.Quantile(0.25); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Q(0.25) = %v", got)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	e := NewEmpirical([]float64{1, 2, 2, 3})
	if got := e.CDF(0.5); got != 0 {
		t.Errorf("CDF(0.5) = %v", got)
	}
	if got := e.CDF(2); got != 0.75 {
		t.Errorf("CDF(2) = %v", got)
	}
	if got := e.CDF(10); got != 1 {
		t.Errorf("CDF(10) = %v", got)
	}
}

func TestEmpiricalMoments(t *testing.T) {
	e := NewEmpirical([]float64{2, 4, 6})
	if got := e.Mean(); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if got := e.Variance(); !almostEqual(got, 8.0/3.0, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if e.Len() != 3 {
		t.Errorf("Len = %d", e.Len())
	}
}

func TestEmpiricalPDFIntegratesRoughlyToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	e := NewEmpirical(samples)
	integral := 0.0
	const dx = 0.01
	for x := -6.0; x <= 6.0; x += dx {
		integral += e.PDF(x) * dx
	}
	if !almostEqual(integral, 1, 0.02) {
		t.Errorf("KDE integral = %v", integral)
	}
}

func TestEmpiricalSampleIsBootstrap(t *testing.T) {
	e := NewEmpirical([]float64{10, 20, 30})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		v := e.Sample(rng)
		if v != 10 && v != 20 && v != 30 {
			t.Fatalf("Sample drew %v, not in support", v)
		}
	}
}

func TestEmpiricalQuantileMatchesGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := NewNormal(0, 1)
	samples := make([]float64, 100000)
	for i := range samples {
		samples[i] = n.Sample(rng)
	}
	e := NewEmpirical(samples)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if !almostEqual(e.Quantile(p), n.Quantile(p), 0.02) {
			t.Errorf("p=%v: empirical %v vs exact %v", p, e.Quantile(p), n.Quantile(p))
		}
	}
}
