package nn

import (
	"math"
	"math/rand"
)

// Dense is a fully connected layer computing y = W x + b.
type Dense struct {
	In, Out int
	W, B    *Param
}

// NewDense creates a Dense layer with Xavier-initialized weights and zero
// biases.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		W:   NewParam(name+".W", out, in),
		B:   NewParam(name+".b", out, 1),
	}
	d.W.InitXavier(rng)
	return d
}

// Params returns the layer's trainable parameters.
func (d *Dense) Params() Params { return Params{d.W, d.B} }

// Replica returns a layer sharing this layer's weights with private
// gradient buffers; see Param.Replica.
func (d *Dense) Replica() *Dense {
	return &Dense{In: d.In, Out: d.Out, W: d.W.Replica(), B: d.B.Replica()}
}

// DenseCache stores the forward input for the backward pass.
type DenseCache struct {
	x []float64
}

// Forward computes W x + b and returns the output plus a cache.
func (d *Dense) Forward(x []float64) ([]float64, *DenseCache) {
	return d.ForwardScratch(nil, x)
}

// ForwardScratch is Forward with the output and cache drawn from the
// arena; zero heap allocations in steady state.
func (d *Dense) ForwardScratch(s *Scratch, x []float64) ([]float64, *DenseCache) {
	y := d.W.Value.MulVecInto(x, s.Vec(d.Out))
	for i := range y {
		y[i] += d.B.Value.Data[i]
	}
	c := s.denseCache()
	c.x = x
	return y, c
}

// Backward accumulates dW and db and returns dx.
func (d *Dense) Backward(c *DenseCache, dy []float64) []float64 {
	return d.BackwardScratch(nil, c, dy)
}

// BackwardScratch is Backward with the input gradient drawn from the
// arena.
func (d *Dense) BackwardScratch(s *Scratch, c *DenseCache, dy []float64) []float64 {
	d.W.Grad.AddOuter(dy, c.x)
	for i, g := range dy {
		d.B.Grad.Data[i] += g
	}
	return d.W.Value.MulVecTInto(dy, s.Vec(d.In))
}

// Activation is an element-wise nonlinearity with its derivative expressed
// in terms of the activation output (cheaper caches).
type Activation struct {
	Name  string
	F     func(float64) float64
	DFroY func(y float64) float64
}

// Standard activations.
var (
	Tanh = Activation{
		Name:  "tanh",
		F:     tanh,
		DFroY: func(y float64) float64 { return 1 - y*y },
	}
	Sigmoid = Activation{
		Name:  "sigmoid",
		F:     sigmoid,
		DFroY: func(y float64) float64 { return y * (1 - y) },
	}
	ReLU = Activation{
		Name: "relu",
		F: func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		},
		DFroY: func(y float64) float64 {
			if y > 0 {
				return 1
			}
			return 0
		},
	}
)

// ActCache stores activation outputs for the backward pass.
type ActCache struct {
	y []float64
}

// Forward applies the activation element-wise.
func (a Activation) Forward(x []float64) ([]float64, *ActCache) {
	return a.ForwardScratch(nil, x)
}

// ForwardScratch is Forward with arena-backed output and cache.
func (a Activation) ForwardScratch(s *Scratch, x []float64) ([]float64, *ActCache) {
	y := s.Vec(len(x))
	for i, v := range x {
		y[i] = a.F(v)
	}
	c := s.actCache()
	c.y = y
	return y, c
}

// Backward returns dx given dy.
func (a Activation) Backward(c *ActCache, dy []float64) []float64 {
	return a.BackwardScratch(nil, c, dy)
}

// BackwardScratch is Backward with the input gradient drawn from the
// arena.
func (a Activation) BackwardScratch(s *Scratch, c *ActCache, dy []float64) []float64 {
	dx := s.Vec(len(dy))
	for i, g := range dy {
		dx[i] = g * a.DFroY(c.y[i])
	}
	return dx
}

func tanh(x float64) float64 { return math.Tanh(x) }

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
