package nn

import "math/rand"

// LSTMCell is a standard long short-term memory cell with input, forget,
// output and candidate gates. It backs both the DeepAR-style autoregressive
// forecaster and the TFT encoder/decoder.
//
// Gate layout inside the stacked weight matrices is [i; f; g; o], each of
// Hidden rows.
type LSTMCell struct {
	InSize, Hidden int
	Wx             *Param // (4H x In)
	Wh             *Param // (4H x H)
	B              *Param // (4H x 1)
}

// NewLSTMCell creates an LSTM cell with Xavier-initialized weights and the
// forget-gate bias set to 1 (the usual trick to ease gradient flow early in
// training).
func NewLSTMCell(name string, inSize, hidden int, rng *rand.Rand) *LSTMCell {
	c := &LSTMCell{
		InSize: inSize,
		Hidden: hidden,
		Wx:     NewParam(name+".Wx", 4*hidden, inSize),
		Wh:     NewParam(name+".Wh", 4*hidden, hidden),
		B:      NewParam(name+".b", 4*hidden, 1),
	}
	c.Wx.InitXavier(rng)
	c.Wh.InitXavier(rng)
	for i := hidden; i < 2*hidden; i++ {
		c.B.Value.Data[i] = 1 // forget gate bias
	}
	return c
}

// Params returns the cell's trainable parameters.
func (c *LSTMCell) Params() Params { return Params{c.Wx, c.Wh, c.B} }

// Replica returns a cell that shares this cell's weights but accumulates
// gradients into private buffers; see Param.Replica.
func (c *LSTMCell) Replica() *LSTMCell {
	return &LSTMCell{
		InSize: c.InSize, Hidden: c.Hidden,
		Wx: c.Wx.Replica(), Wh: c.Wh.Replica(), B: c.B.Replica(),
	}
}

// LSTMState is the recurrent state (h, c) carried between steps.
type LSTMState struct {
	H, C []float64
}

// NewLSTMState returns a zero state for the cell.
func (c *LSTMCell) NewLSTMState() LSTMState {
	return LSTMState{H: make([]float64, c.Hidden), C: make([]float64, c.Hidden)}
}

// NewLSTMStateScratch returns a zero state backed by the arena.
func (c *LSTMCell) NewLSTMStateScratch(s *Scratch) LSTMState {
	return LSTMState{H: s.VecZero(c.Hidden), C: s.VecZero(c.Hidden)}
}

// Clone deep-copies the state.
func (s LSTMState) Clone() LSTMState {
	h := make([]float64, len(s.H))
	cc := make([]float64, len(s.C))
	copy(h, s.H)
	copy(cc, s.C)
	return LSTMState{H: h, C: cc}
}

// CloneScratch deep-copies the state into arena-backed buffers.
func (s LSTMState) CloneScratch(sc *Scratch) LSTMState {
	return LSTMState{H: sc.VecCopy(s.H), C: sc.VecCopy(s.C)}
}

// LSTMCache stores one step's intermediates for BPTT.
type LSTMCache struct {
	x            []float64
	hPrev, cPrev []float64
	i, f, g, o   []float64
	c, tanhC     []float64
}

// Step advances the cell by one time step, returning the new state and the
// cache needed for the backward pass.
func (c *LSTMCell) Step(x []float64, prev LSTMState) (LSTMState, *LSTMCache) {
	return c.StepScratch(nil, x, prev)
}

// StepScratch is Step drawing every intermediate from the arena: in steady
// state (after the arena has grown to the step's working set) it performs
// zero heap allocations. The returned state and cache are arena-backed and
// die at the next s.Reset. The cache also retains x and prev, so those must
// outlive the backward pass as usual.
func (c *LSTMCell) StepScratch(s *Scratch, x []float64, prev LSTMState) (LSTMState, *LSTMCache) {
	h := c.Hidden
	pre := c.Wx.Value.MulVecInto(x, s.Vec(4*h))
	preH := c.Wh.Value.MulVecInto(prev.H, s.Vec(4*h))
	for i := range pre {
		pre[i] += preH[i] + c.B.Value.Data[i]
	}

	cache := s.lstmCache()
	cache.x, cache.hPrev, cache.cPrev = x, prev.H, prev.C
	cache.i, cache.f = s.Vec(h), s.Vec(h)
	cache.g, cache.o = s.Vec(h), s.Vec(h)
	cache.c, cache.tanhC = s.Vec(h), s.Vec(h)
	newH := s.Vec(h)
	for j := 0; j < h; j++ {
		cache.i[j] = sigmoid(pre[j])
		cache.f[j] = sigmoid(pre[h+j])
		cache.g[j] = tanh(pre[2*h+j])
		cache.o[j] = sigmoid(pre[3*h+j])
		cache.c[j] = cache.f[j]*prev.C[j] + cache.i[j]*cache.g[j]
		cache.tanhC[j] = tanh(cache.c[j])
		newH[j] = cache.o[j] * cache.tanhC[j]
	}
	return LSTMState{H: newH, C: cache.c}, cache
}

// StepBackward backpropagates one step: given gradients dh and dc flowing
// into the step's output state, it accumulates parameter gradients and
// returns the gradients for the input and the previous state.
func (c *LSTMCell) StepBackward(cache *LSTMCache, dh, dc []float64) (dx []float64, dPrev LSTMState) {
	return c.StepBackwardScratch(nil, cache, dh, dc)
}

// StepBackwardScratch is StepBackward drawing every intermediate from the
// arena; zero heap allocations in steady state.
func (c *LSTMCell) StepBackwardScratch(s *Scratch, cache *LSTMCache, dh, dc []float64) (dx []float64, dPrev LSTMState) {
	h := c.Hidden
	dPre := s.Vec(4 * h)
	dcPrev := s.Vec(h)
	for j := 0; j < h; j++ {
		do := dh[j] * cache.tanhC[j]
		dcj := dc[j] + dh[j]*cache.o[j]*(1-cache.tanhC[j]*cache.tanhC[j])
		di := dcj * cache.g[j]
		df := dcj * cache.cPrev[j]
		dg := dcj * cache.i[j]
		dcPrev[j] = dcj * cache.f[j]

		dPre[j] = di * cache.i[j] * (1 - cache.i[j])
		dPre[h+j] = df * cache.f[j] * (1 - cache.f[j])
		dPre[2*h+j] = dg * (1 - cache.g[j]*cache.g[j])
		dPre[3*h+j] = do * cache.o[j] * (1 - cache.o[j])
	}

	c.Wx.Grad.AddOuter(dPre, cache.x)
	c.Wh.Grad.AddOuter(dPre, cache.hPrev)
	for i, g := range dPre {
		c.B.Grad.Data[i] += g
	}

	dx = c.Wx.Value.MulVecTInto(dPre, s.Vec(c.InSize))
	dhPrev := c.Wh.Value.MulVecTInto(dPre, s.Vec(h))
	return dx, LSTMState{H: dhPrev, C: dcPrev}
}

// RunSequence feeds a sequence of inputs through the cell starting from
// state s0, returning the hidden states per step and the caches needed for
// BackwardSequence.
func (c *LSTMCell) RunSequence(xs [][]float64, s0 LSTMState) (hs [][]float64, final LSTMState, caches []*LSTMCache) {
	return c.RunSequenceScratch(nil, xs, s0)
}

// RunSequenceScratch is RunSequence with arena-backed steps. The slice
// headers still come from the heap (one allocation each per sequence); the
// per-step working set does not.
func (c *LSTMCell) RunSequenceScratch(s *Scratch, xs [][]float64, s0 LSTMState) (hs [][]float64, final LSTMState, caches []*LSTMCache) {
	hs = make([][]float64, len(xs))
	caches = make([]*LSTMCache, len(xs))
	state := s0
	for t, x := range xs {
		state, caches[t] = c.StepScratch(s, x, state)
		hs[t] = state.H
	}
	return hs, state, caches
}

// BackwardSequence backpropagates through a sequence processed with
// RunSequence. dhs[t] is the gradient flowing into the hidden state at step
// t from the loss; dFinal is any extra gradient on the final state (e.g.
// from a decoder that consumed it). It returns input gradients per step and
// the gradient on the initial state.
func (c *LSTMCell) BackwardSequence(caches []*LSTMCache, dhs [][]float64, dFinal LSTMState) (dxs [][]float64, dS0 LSTMState) {
	return c.BackwardSequenceScratch(nil, caches, dhs, dFinal)
}

// BackwardSequenceScratch is BackwardSequence with arena-backed steps.
func (c *LSTMCell) BackwardSequenceScratch(s *Scratch, caches []*LSTMCache, dhs [][]float64, dFinal LSTMState) (dxs [][]float64, dS0 LSTMState) {
	n := len(caches)
	dxs = make([][]float64, n)
	dh := s.VecZero(c.Hidden)
	dc := s.VecZero(c.Hidden)
	if dFinal.H != nil {
		copy(dh, dFinal.H)
	}
	if dFinal.C != nil {
		copy(dc, dFinal.C)
	}
	for t := n - 1; t >= 0; t-- {
		if dhs != nil && dhs[t] != nil {
			for j := range dh {
				dh[j] += dhs[t][j]
			}
		}
		var dPrev LSTMState
		dxs[t], dPrev = c.StepBackwardScratch(s, caches[t], dh, dc)
		dh, dc = dPrev.H, dPrev.C
	}
	return dxs, LSTMState{H: dh, C: dc}
}
