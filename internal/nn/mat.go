// Package nn is a small from-scratch neural network library supporting the
// probabilistic workload forecasters: dense layers, activations, an LSTM
// cell with full backpropagation through time, scaled dot-product
// attention, and SGD/Adam optimizers. It exists because the repository is
// stdlib-only; the layers implement exactly what DeepAR- and TFT-style
// models need and nothing more.
//
// All layers follow the same convention: Forward returns the output plus a
// cache of the intermediates, and Backward consumes that cache with the
// upstream gradient, accumulating parameter gradients and returning input
// gradients. Caches make layers reusable across time steps, which BPTT
// requires.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) Mat {
	return Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice view.
func (m Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m Mat) Clone() Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears all elements in place.
func (m Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes m * x for a column vector x (len Cols), returning a
// vector of length Rows.
func (m Mat) MulVec(x []float64) []float64 {
	return m.MulVecInto(x, make([]float64, m.Rows))
}

// MulVecInto is the allocation-free MulVec: it overwrites dst (len Rows)
// with m * x and returns dst. This is the innermost kernel of every BPTT
// step, so callers on the hot path hand it a scratch buffer.
func (m Mat) MulVecInto(x, dst []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("nn: MulVec dimension mismatch: %dx%d by %d", m.Rows, m.Cols, len(x)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("nn: MulVecInto destination has %d rows, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		sum := 0.0
		for j, v := range row {
			sum += v * x[j]
		}
		dst[i] = sum
	}
	return dst
}

// MulVecT computes m^T * y for a vector y (len Rows), returning a vector of
// length Cols. Used for input gradients.
func (m Mat) MulVecT(y []float64) []float64 {
	return m.MulVecTInto(y, make([]float64, m.Cols))
}

// MulVecTInto is the allocation-free MulVecT: it overwrites dst (len Cols)
// with m^T * y and returns dst.
func (m Mat) MulVecTInto(y, dst []float64) []float64 {
	if len(y) != m.Rows {
		panic(fmt.Sprintf("nn: MulVecT dimension mismatch: %dx%d by %d", m.Rows, m.Cols, len(y)))
	}
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("nn: MulVecTInto destination has %d cols, want %d", len(dst), m.Cols))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		yi := y[i]
		if yi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += v * yi
		}
	}
	return dst
}

// AddOuter accumulates the outer product y x^T into m (Rows = len(y),
// Cols = len(x)). Used for weight gradients.
func (m Mat) AddOuter(y, x []float64) { AddOuterInto(m, y, x) }

// AddOuterInto accumulates the outer product y x^T into dst (Rows = len(y),
// Cols = len(x)). It is the explicit-destination form of AddOuter for
// callers that accumulate into a gradient buffer other than a layer's own,
// e.g. the per-replica buffers of data-parallel training.
func AddOuterInto(dst Mat, y, x []float64) {
	if len(y) != dst.Rows || len(x) != dst.Cols {
		panic(fmt.Sprintf("nn: AddOuter dimension mismatch: %dx%d by %dx%d", dst.Rows, dst.Cols, len(y), len(x)))
	}
	for i, yi := range y {
		if yi == 0 {
			continue
		}
		row := dst.Row(i)
		for j, xj := range x {
			row[j] += yi * xj
		}
	}
}

// MatMul returns a*b.
func MatMul(a, b Mat) Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMul dimension mismatch: %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns m^T.
func (m Mat) Transpose() Mat {
	out := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Param is a trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value Mat
	Grad  Mat
}

// NewParam allocates a named parameter of the given shape with zero values.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, Value: NewMat(rows, cols), Grad: NewMat(rows, cols)}
}

// InitXavier fills the parameter with Glorot-uniform noise scaled by fan-in
// and fan-out.
func (p *Param) InitXavier(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(p.Value.Rows+p.Value.Cols))
	for i := range p.Value.Data {
		p.Value.Data[i] = (2*rng.Float64() - 1) * limit
	}
}

// Params is a collection of trainable parameters.
type Params []*Param

// ZeroGrads clears all gradient accumulators.
func (ps Params) ZeroGrads() {
	for _, p := range ps {
		p.Grad.Zero()
	}
}

// GradNorm returns the global L2 norm of all gradients.
func (ps Params) GradNorm() float64 {
	ss := 0.0
	for _, p := range ps {
		for _, g := range p.Grad.Data {
			ss += g * g
		}
	}
	return math.Sqrt(ss)
}

// ClipGradNorm rescales gradients so their global norm does not exceed max.
// It returns the pre-clip norm.
func (ps Params) ClipGradNorm(max float64) float64 {
	norm := ps.GradNorm()
	if norm > max && norm > 0 {
		scale := max / norm
		for _, p := range ps {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return norm
}

// Count returns the total number of scalar parameters.
func (ps Params) Count() int {
	n := 0
	for _, p := range ps {
		n += len(p.Value.Data)
	}
	return n
}
