package nn

import "fmt"

// Replica support for data-parallel training: a replica of a layer shares
// the original's weight storage (reads are safe concurrently) but owns a
// private, zeroed gradient accumulator, so several goroutines can run
// forward+backward over different training windows at once. After the
// parallel section, the per-replica gradients are merged into the master
// parameters IN A FIXED ORDER with AccumGrads, which keeps floating-point
// summation — and therefore training — bit-identical for any worker count.

// Replica returns a parameter aliasing p's value storage with a private
// zeroed gradient buffer. Writing to the replica's Value writes to the
// original; that is the point (one Adam step on the master updates every
// replica), and also why replicas must never run concurrently with an
// optimizer step.
func (p *Param) Replica() *Param {
	return &Param{Name: p.Name, Value: p.Value, Grad: NewMat(p.Grad.Rows, p.Grad.Cols)}
}

// Replica returns an attention block sharing this block's weights with
// private gradient buffers.
func (a *Attention) Replica() *Attention {
	return &Attention{
		Dim: a.Dim, Causal: a.Causal,
		Wq: a.Wq.Replica(), Wk: a.Wk.Replica(), Wv: a.Wv.Replica(),
	}
}

// Replica returns a multi-head attention block sharing this block's
// weights with private gradient buffers.
func (a *MultiHeadAttention) Replica() *MultiHeadAttention {
	return &MultiHeadAttention{
		Dim: a.Dim, Heads: a.Heads, Causal: a.Causal,
		Wq: a.Wq.Replica(), Wk: a.Wk.Replica(),
		Wv: a.Wv.Replica(), Wo: a.Wo.Replica(),
	}
}

// Replica returns a GRN sharing this block's weights with private gradient
// buffers.
func (g *GRN) Replica() *GRN {
	return &GRN{
		Dim: g.Dim,
		l1:  g.l1.Replica(), l2: g.l2.Replica(),
		gateW: g.gateW.Replica(), gateV: g.gateV.Replica(),
		norm: g.norm.Replica(),
	}
}

// ReplicaSelfAttention replicates either attention implementation behind
// the SelfAttention interface.
func ReplicaSelfAttention(a SelfAttention) SelfAttention {
	switch t := a.(type) {
	case *Attention:
		return t.Replica()
	case *MultiHeadAttention:
		return t.Replica()
	default:
		panic(fmt.Sprintf("nn: cannot replicate attention type %T", a))
	}
}

// AccumGrads adds src's gradients into dst's, matching parameters by
// position (dst and src must come from identically built models). Callers
// merging several replicas must iterate them in a fixed order to keep the
// result independent of goroutine scheduling.
func AccumGrads(dst, src Params) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: AccumGrads over %d vs %d parameters", len(dst), len(src)))
	}
	for i, d := range dst {
		s := src[i]
		if len(d.Grad.Data) != len(s.Grad.Data) {
			panic(fmt.Sprintf("nn: AccumGrads shape mismatch at %s", d.Name))
		}
		for j, g := range s.Grad.Data {
			d.Grad.Data[j] += g
		}
	}
}
