package nn

import (
	"math/rand"
	"testing"
)

// BenchmarkMatMulVec contrasts the allocating kernel with the *Into form
// on the LSTM's dominant shape (4H x H by H). The "into" variant must
// report 0 allocs/op.
func BenchmarkMatMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const h = 32
	m := NewMat(4*h, h)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	x := randVec(rng, h)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.MulVec(x)
		}
	})
	b.Run("into", func(b *testing.B) {
		b.ReportAllocs()
		dst := make([]float64, 4*h)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = m.MulVecInto(x, dst)
		}
	})
}

// BenchmarkLSTMStep measures one forward+backward step through the cell,
// heap path versus arena path. The scratch variant must report 0 allocs/op
// in steady state — this is the per-timestep cost inside every BPTT loop.
func BenchmarkLSTMStep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	cell := NewLSTMCell("c", 8, 32, rng)
	x := randVec(rng, 8)
	dh := randVec(rng, 32)
	dc := randVec(rng, 32)

	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			state, cache := cell.Step(x, cell.NewLSTMState())
			_, _ = cell.StepBackward(cache, dh, dc)
			_ = state
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		s := NewScratch()
		for i := 0; i < 8; i++ { // warm the arena outside the timed region
			s.Reset()
			state, cache := cell.StepScratch(s, x, cell.NewLSTMStateScratch(s))
			_, _ = cell.StepBackwardScratch(s, cache, dh, dc)
			_ = state
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Reset()
			state, cache := cell.StepScratch(s, x, cell.NewLSTMStateScratch(s))
			_, _ = cell.StepBackwardScratch(s, cache, dh, dc)
			_ = state
		}
	})
}

// BenchmarkGRNStep is the same comparison for the TFT's gated block.
func BenchmarkGRNStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := NewGRN("g", 32, rng)
	x := randVec(rng, 32)
	dy := randVec(rng, 32)

	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, cache := g.Forward(x)
			_ = g.Backward(cache, dy)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		s := NewScratch()
		for i := 0; i < b.N; i++ {
			s.Reset()
			_, cache := g.ForwardScratch(s, x)
			_ = g.BackwardScratch(s, cache, dy)
		}
	})
}
