package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and implies nothing about gradient clearing;
	// callers zero gradients themselves.
	Step(params Params)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity map[*Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: map[*Param][]float64{}}
}

// Step applies one SGD update.
func (o *SGD) Step(params Params) {
	for _, p := range params {
		if o.Momentum == 0 {
			for i, g := range p.Grad.Data {
				p.Value.Data[i] -= o.LR * g
			}
			continue
		}
		v, ok := o.velocity[p]
		if !ok {
			v = make([]float64, len(p.Value.Data))
			o.velocity[p] = v
		}
		for i, g := range p.Grad.Data {
			v[i] = o.Momentum*v[i] - o.LR*g
			p.Value.Data[i] += v[i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba). The paper trains all
// neural forecasters with learning rate 1e-3, which is Adam's default here.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns an Adam optimizer with the standard betas and epsilon.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param][]float64{},
		v: map[*Param][]float64{},
	}
}

// Step applies one Adam update.
func (o *Adam) Step(params Params) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float64, len(p.Value.Data))
			o.m[p] = m
		}
		v, ok := o.v[p]
		if !ok {
			v = make([]float64, len(p.Value.Data))
			o.v[p] = v
		}
		for i, g := range p.Grad.Data {
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mHat := m[i] / bc1
			vHat := v[i] / bc2
			p.Value.Data[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
		}
	}
}
