package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 7)
	if m.At(0, 1) != 5 || m.At(1, 2) != 7 {
		t.Error("Set/At mismatch")
	}
	if got := m.Row(1); got[2] != 7 {
		t.Errorf("Row(1) = %v", got)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone shares storage")
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left residue")
		}
	}
}

func TestMulVec(t *testing.T) {
	m := Mat{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	y := m.MulVec([]float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("MulVec = %v", y)
	}
	yt := m.MulVecT([]float64{1, 1})
	want := []float64{5, 7, 9}
	for i, w := range want {
		if yt[i] != w {
			t.Errorf("MulVecT[%d] = %v, want %v", i, yt[i], w)
		}
	}
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	m := NewMat(2, 3)
	defer func() {
		if recover() == nil {
			t.Error("MulVec should panic on dimension mismatch")
		}
	}()
	m.MulVec([]float64{1, 2})
}

func TestAddOuter(t *testing.T) {
	m := NewMat(2, 2)
	m.AddOuter([]float64{1, 2}, []float64{3, 4})
	want := []float64{3, 4, 6, 8}
	for i, w := range want {
		if m.Data[i] != w {
			t.Errorf("AddOuter[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
}

func TestMatMulAndTranspose(t *testing.T) {
	a := Mat{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	b := Mat{Rows: 2, Cols: 2, Data: []float64{5, 6, 7, 8}}
	c := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
	at := a.Transpose()
	if at.At(0, 1) != 3 || at.At(1, 0) != 2 {
		t.Errorf("Transpose = %v", at.Data)
	}
}

func TestMatMulMatchesVecOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMat(3, 4)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		x := randVec(rng, 4)
		xm := Mat{Rows: 4, Cols: 1, Data: x}
		viaMatMul := MatMul(m, xm)
		viaMulVec := m.MulVec(x)
		for i := range viaMulVec {
			if math.Abs(viaMatMul.Data[i]-viaMulVec[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewParam("p", 10, 10)
	p.InitXavier(rng)
	limit := math.Sqrt(6.0 / 20.0)
	nonzero := 0
	for _, v := range p.Value.Data {
		if math.Abs(v) > limit {
			t.Fatalf("init value %v exceeds Xavier limit %v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 90 {
		t.Error("Xavier init left most weights at zero")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("p", 1, 2)
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4
	ps := Params{p}
	norm := ps.ClipGradNorm(1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %v, want 5", norm)
	}
	if got := ps.GradNorm(); math.Abs(got-1) > 1e-12 {
		t.Errorf("post-clip norm = %v, want 1", got)
	}
	// No-op when below the max.
	ps.ClipGradNorm(10)
	if got := ps.GradNorm(); math.Abs(got-1) > 1e-12 {
		t.Errorf("clip below max changed norm to %v", got)
	}
}

func TestParamsCountAndZero(t *testing.T) {
	ps := Params{NewParam("a", 2, 3), NewParam("b", 1, 4)}
	if ps.Count() != 10 {
		t.Errorf("Count = %d", ps.Count())
	}
	ps[0].Grad.Data[0] = 5
	ps.ZeroGrads()
	if ps[0].Grad.Data[0] != 0 {
		t.Error("ZeroGrads left residue")
	}
}

// Train a tiny dense network on a linear task and check the loss drops.
func trainLinearTask(t *testing.T, opt Optimizer, steps int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	d := NewDense("d", 2, 1, rng)
	// Target function y = 2a - b + 0.5.
	sample := func() ([]float64, float64) {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		return x, 2*x[0] - x[1] + 0.5
	}
	var tail float64
	const tailWindow = 100
	for step := 0; step < steps; step++ {
		x, target := sample()
		d.Params().ZeroGrads()
		y, cache := d.Forward(x)
		diff := y[0] - target
		if step >= steps-tailWindow {
			tail += diff * diff
		}
		d.Backward(cache, []float64{2 * diff})
		opt.Step(d.Params())
	}
	return tail / tailWindow
}

func TestSGDConverges(t *testing.T) {
	if loss := trainLinearTask(t, NewSGD(0.05, 0), 500); loss > 0.01 {
		t.Errorf("SGD final loss = %v", loss)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	if loss := trainLinearTask(t, NewSGD(0.01, 0.9), 500); loss > 0.01 {
		t.Errorf("SGD+momentum final loss = %v", loss)
	}
}

func TestAdamConverges(t *testing.T) {
	if loss := trainLinearTask(t, NewAdam(0.01), 3000); loss > 0.02 {
		t.Errorf("Adam final loss = %v", loss)
	}
}

func TestLSTMLearnsToRemember(t *testing.T) {
	// Task: output at the end of a sequence should reflect the first
	// input, which requires carrying state across steps.
	rng := rand.New(rand.NewSource(13))
	cell := NewLSTMCell("lstm", 1, 8, rng)
	head := NewDense("head", 8, 1, rng)
	params := append(cell.Params(), head.Params()...)
	opt := NewAdam(0.01)

	const T = 6
	var lastLoss float64
	for step := 0; step < 800; step++ {
		first := float64(rng.Intn(2))
		xs := make([][]float64, T)
		xs[0] = []float64{first}
		for i := 1; i < T; i++ {
			xs[i] = []float64{rng.NormFloat64() * 0.1}
		}
		params.ZeroGrads()
		hs, _, caches := cell.RunSequence(xs, cell.NewLSTMState())
		y, hc := head.Forward(hs[T-1])
		diff := y[0] - first
		lastLoss = diff * diff
		dh := head.Backward(hc, []float64{2 * diff})
		dhs := make([][]float64, T)
		dhs[T-1] = dh
		cell.BackwardSequence(caches, dhs, LSTMState{})
		params.ClipGradNorm(5)
		opt.Step(params)
	}
	if lastLoss > 0.05 {
		t.Errorf("LSTM memory task final loss = %v", lastLoss)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d1 := NewDense("d", 3, 2, rng)
	var buf bytes.Buffer
	if err := d1.Params().Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2 := NewDense("d", 3, 2, rand.New(rand.NewSource(99)))
	if err := d2.Params().Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i := range d1.W.Value.Data {
		if d1.W.Value.Data[i] != d2.W.Value.Data[i] {
			t.Fatal("weights differ after load")
		}
	}
}

func TestLoadRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	d := NewDense("d", 3, 2, rng)
	var buf bytes.Buffer
	if err := d.Params().Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Wrong shape.
	other := NewDense("d", 4, 2, rng)
	if err := other.Params().Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Load should reject shape mismatch")
	}
	// Wrong name.
	renamed := NewDense("e", 3, 2, rng)
	if err := renamed.Params().Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Load should reject name mismatch")
	}
	// Wrong count.
	big := Params{NewParam("x", 1, 1)}
	big = append(big, d.Params()...)
	if err := big.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Load should reject count mismatch")
	}
}

func TestSigmoidStable(t *testing.T) {
	if got := sigmoid(1000); got != 1 {
		t.Errorf("sigmoid(1000) = %v", got)
	}
	if got := sigmoid(-1000); got != 0 {
		t.Errorf("sigmoid(-1000) = %v", got)
	}
	if got := sigmoid(0); got != 0.5 {
		t.Errorf("sigmoid(0) = %v", got)
	}
}
