package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad perturbs each parameter element and measures the loss
// change, comparing against the analytic gradient accumulated by a single
// forward+backward pass.
func checkParamGrads(t *testing.T, params Params, loss func() float64, tol float64) {
	t.Helper()
	const eps = 1e-6
	for _, p := range params {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := loss()
			p.Value.Data[i] = orig - eps
			lm := loss()
			p.Value.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := p.Grad.Data[i]
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > tol {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// scalarLoss turns a vector output into a scalar via a fixed random
// projection, so gradient checks exercise all outputs.
func scalarLoss(out, weights []float64) float64 {
	s := 0.0
	for i, v := range out {
		s += v * weights[i]
	}
	return s
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 4, 3, rng)
	x := randVec(rng, 4)
	w := randVec(rng, 3)

	loss := func() float64 {
		y, _ := d.Forward(x)
		return scalarLoss(y, w)
	}
	d.Params().ZeroGrads()
	y, cache := d.Forward(x)
	_ = y
	dx := d.Backward(cache, w)
	checkParamGrads(t, d.Params(), loss, 1e-6)

	// Input gradient check.
	const eps = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp := loss()
		x[i] = orig - eps
		lm := loss()
		x[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dx[i]) > 1e-6 {
			t.Errorf("dx[%d]: analytic %v vs numeric %v", i, dx[i], numeric)
		}
	}
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, act := range []Activation{Tanh, Sigmoid, ReLU} {
		x := randVec(rng, 6)
		w := randVec(rng, 6)
		y, cache := act.Forward(x)
		_ = y
		dx := act.Backward(cache, w)
		const eps = 1e-6
		for i := range x {
			orig := x[i]
			x[i] = orig + eps
			yp, _ := act.Forward(x)
			x[i] = orig - eps
			ym, _ := act.Forward(x)
			x[i] = orig
			numeric := (scalarLoss(yp, w) - scalarLoss(ym, w)) / (2 * eps)
			if math.Abs(numeric-dx[i]) > 1e-5 {
				t.Errorf("%s dx[%d]: analytic %v vs numeric %v", act.Name, i, dx[i], numeric)
			}
		}
	}
}

func TestLSTMStepGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cell := NewLSTMCell("lstm", 3, 4, rng)
	x := randVec(rng, 3)
	s0 := LSTMState{H: randVec(rng, 4), C: randVec(rng, 4)}
	wh := randVec(rng, 4)
	wc := randVec(rng, 4)

	loss := func() float64 {
		s, _ := cell.Step(x, s0)
		return scalarLoss(s.H, wh) + scalarLoss(s.C, wc)
	}
	cell.Params().ZeroGrads()
	_, cache := cell.Step(x, s0)
	dx, dPrev := cell.StepBackward(cache, wh, wc)
	checkParamGrads(t, cell.Params(), loss, 1e-5)

	const eps = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp := loss()
		x[i] = orig - eps
		lm := loss()
		x[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dx[i]) > 1e-5 {
			t.Errorf("dx[%d]: analytic %v vs numeric %v", i, dx[i], numeric)
		}
	}
	for i := range s0.H {
		orig := s0.H[i]
		s0.H[i] = orig + eps
		lp := loss()
		s0.H[i] = orig - eps
		lm := loss()
		s0.H[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dPrev.H[i]) > 1e-5 {
			t.Errorf("dhPrev[%d]: analytic %v vs numeric %v", i, dPrev.H[i], numeric)
		}
	}
	for i := range s0.C {
		orig := s0.C[i]
		s0.C[i] = orig + eps
		lp := loss()
		s0.C[i] = orig - eps
		lm := loss()
		s0.C[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dPrev.C[i]) > 1e-5 {
			t.Errorf("dcPrev[%d]: analytic %v vs numeric %v", i, dPrev.C[i], numeric)
		}
	}
}

func TestLSTMSequenceGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cell := NewLSTMCell("lstm", 2, 3, rng)
	const T = 5
	xs := make([][]float64, T)
	ws := make([][]float64, T)
	for t := range xs {
		xs[t] = randVec(rng, 2)
		ws[t] = randVec(rng, 3)
	}
	s0 := cell.NewLSTMState()

	loss := func() float64 {
		hs, _, _ := cell.RunSequence(xs, s0)
		total := 0.0
		for t, h := range hs {
			total += scalarLoss(h, ws[t])
		}
		return total
	}
	cell.Params().ZeroGrads()
	_, _, caches := cell.RunSequence(xs, s0)
	dxs, _ := cell.BackwardSequence(caches, ws, LSTMState{})
	checkParamGrads(t, cell.Params(), loss, 1e-5)

	const eps = 1e-6
	for tt := range xs {
		for i := range xs[tt] {
			orig := xs[tt][i]
			xs[tt][i] = orig + eps
			lp := loss()
			xs[tt][i] = orig - eps
			lm := loss()
			xs[tt][i] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-dxs[tt][i]) > 1e-5 {
				t.Errorf("dxs[%d][%d]: analytic %v vs numeric %v", tt, i, dxs[tt][i], numeric)
			}
		}
	}
}

func TestAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, causal := range []bool{false, true} {
		attn := NewAttention("attn", 3, causal, rng)
		const T = 4
		x := NewMat(T, 3)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		w := NewMat(T, 3)
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64()
		}

		loss := func() float64 {
			out, _ := attn.Forward(x)
			s := 0.0
			for i, v := range out.Data {
				s += v * w.Data[i]
			}
			return s
		}
		attn.Params().ZeroGrads()
		_, cache := attn.Forward(x)
		dX := attn.Backward(cache, w)
		checkParamGrads(t, attn.Params(), loss, 1e-5)

		const eps = 1e-6
		for i := range x.Data {
			orig := x.Data[i]
			x.Data[i] = orig + eps
			lp := loss()
			x.Data[i] = orig - eps
			lm := loss()
			x.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-dX.Data[i]) > 1e-5 {
				t.Errorf("causal=%v dX[%d]: analytic %v vs numeric %v", causal, i, dX.Data[i], numeric)
			}
		}
	}
}

func TestCausalMaskZeroesFuture(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	attn := NewAttention("attn", 2, true, rng)
	x := NewMat(3, 2)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	_, cache := attn.Forward(x)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if cache.attn.At(i, j) != 0 {
				t.Errorf("attn[%d][%d] = %v, want 0 under causal mask", i, j, cache.attn.At(i, j))
			}
		}
	}
	// Rows sum to 1.
	for i := 0; i < 3; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			sum += cache.attn.At(i, j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("attn row %d sums to %v", i, sum)
		}
	}
}
