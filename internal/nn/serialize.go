package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the gob wire format for a parameter set.
type snapshot struct {
	Names  []string
	Shapes [][2]int
	Data   [][]float64
}

// Save writes the parameter values (not gradients or optimizer state) to w.
func (ps Params) Save(w io.Writer) error {
	snap := snapshot{
		Names:  make([]string, len(ps)),
		Shapes: make([][2]int, len(ps)),
		Data:   make([][]float64, len(ps)),
	}
	for i, p := range ps {
		snap.Names[i] = p.Name
		snap.Shapes[i] = [2]int{p.Value.Rows, p.Value.Cols}
		snap.Data[i] = p.Value.Data
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("nn: encoding parameters: %w", err)
	}
	return nil
}

// Load restores parameter values saved by Save. Parameters are matched by
// position and validated by name and shape, so the receiving model must be
// built identically to the one that was saved.
func (ps Params) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decoding parameters: %w", err)
	}
	if len(snap.Names) != len(ps) {
		return fmt.Errorf("nn: snapshot has %d parameters, model has %d", len(snap.Names), len(ps))
	}
	for i, p := range ps {
		if snap.Names[i] != p.Name {
			return fmt.Errorf("nn: parameter %d is %q in snapshot, %q in model", i, snap.Names[i], p.Name)
		}
		if snap.Shapes[i] != [2]int{p.Value.Rows, p.Value.Cols} {
			return fmt.Errorf("nn: parameter %q shape %v in snapshot, %dx%d in model",
				p.Name, snap.Shapes[i], p.Value.Rows, p.Value.Cols)
		}
		copy(p.Value.Data, snap.Data[i])
	}
	return nil
}
