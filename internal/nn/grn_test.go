package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestLayerNormForward(t *testing.T) {
	ln := NewLayerNorm("ln", 4)
	y, _ := ln.Forward([]float64{1, 2, 3, 4})
	// Unit gain, zero bias: output has ~zero mean and ~unit variance.
	mean, variance := 0.0, 0.0
	for _, v := range y {
		mean += v
	}
	mean /= 4
	for _, v := range y {
		variance += (v - mean) * (v - mean)
	}
	variance /= 4
	if math.Abs(mean) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-1) > 1e-3 {
		t.Errorf("variance = %v", variance)
	}
}

func TestLayerNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ln := NewLayerNorm("ln", 5)
	// Non-trivial gain/bias.
	for i := range ln.G.Value.Data {
		ln.G.Value.Data[i] = 0.5 + rng.Float64()
		ln.B.Value.Data[i] = rng.NormFloat64()
	}
	x := randVec(rng, 5)
	w := randVec(rng, 5)
	loss := func() float64 {
		y, _ := ln.Forward(x)
		return scalarLoss(y, w)
	}
	ln.Params().ZeroGrads()
	_, cache := ln.Forward(x)
	dx := ln.Backward(cache, w)
	checkParamGrads(t, ln.Params(), loss, 1e-5)
	const eps = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp := loss()
		x[i] = orig - eps
		lm := loss()
		x[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dx[i]) > 1e-5 {
			t.Errorf("dx[%d]: analytic %v vs numeric %v", i, dx[i], numeric)
		}
	}
}

func TestELUGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x := randVec(rng, 8)
	w := randVec(rng, 8)
	y, cache := ELU.Forward(x)
	_ = y
	dx := ELU.Backward(cache, w)
	const eps = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		yp, _ := ELU.Forward(x)
		x[i] = orig - eps
		ym, _ := ELU.Forward(x)
		x[i] = orig
		numeric := (scalarLoss(yp, w) - scalarLoss(ym, w)) / (2 * eps)
		if math.Abs(numeric-dx[i]) > 1e-5 {
			t.Errorf("ELU dx[%d]: analytic %v vs numeric %v", i, dx[i], numeric)
		}
	}
}

func TestGRNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	grn := NewGRN("grn", 4, rng)
	x := randVec(rng, 4)
	w := randVec(rng, 4)
	loss := func() float64 {
		y, _ := grn.Forward(x)
		return scalarLoss(y, w)
	}
	grn.Params().ZeroGrads()
	_, cache := grn.Forward(x)
	dx := grn.Backward(cache, w)
	checkParamGrads(t, grn.Params(), loss, 1e-4)
	const eps = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp := loss()
		x[i] = orig - eps
		lm := loss()
		x[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dx[i]) > 1e-4 {
			t.Errorf("GRN dx[%d]: analytic %v vs numeric %v", i, dx[i], numeric)
		}
	}
}

func TestGRNGateCanSuppress(t *testing.T) {
	// With a strongly negative gate bias, the GRN output approaches the
	// layer-normalized identity: the gating mechanism works.
	rng := rand.New(rand.NewSource(34))
	grn := NewGRN("grn", 4, rng)
	for i := range grn.gateW.B.Value.Data {
		grn.gateW.B.Value.Data[i] = -50 // gate ~ 0
	}
	x := randVec(rng, 4)
	y, _ := grn.Forward(x)
	want, _ := grn.norm.Forward(x)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-6 {
			t.Fatalf("suppressed GRN differs from LN(x) at %d: %v vs %v", i, y[i], want[i])
		}
	}
}

func TestGRNParamsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	grn := NewGRN("grn", 4, rng)
	// 4 dense layers (W 4x4 + b 4) + layer norm (g 4 + b 4) = 4*20 + 8.
	if got := grn.Params().Count(); got != 4*20+8 {
		t.Errorf("param count = %d", got)
	}
}
