package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// MultiHeadAttention is standard multi-head scaled dot-product
// self-attention with an output projection: Q, K, V projections are split
// into Heads column blocks, each head attends independently (optionally
// causally), the heads are concatenated and projected by Wo. With one head
// it reduces to single-head attention plus an output projection.
type MultiHeadAttention struct {
	Dim, Heads     int
	Wq, Wk, Wv, Wo *Param // all (Dim x Dim)
	Causal         bool
}

// NewMultiHeadAttention creates the block; dim must be divisible by heads.
func NewMultiHeadAttention(name string, dim, heads int, causal bool, rng *rand.Rand) (*MultiHeadAttention, error) {
	if heads < 1 || dim%heads != 0 {
		return nil, fmt.Errorf("nn: dim %d not divisible by %d heads", dim, heads)
	}
	a := &MultiHeadAttention{
		Dim: dim, Heads: heads, Causal: causal,
		Wq: NewParam(name+".Wq", dim, dim),
		Wk: NewParam(name+".Wk", dim, dim),
		Wv: NewParam(name+".Wv", dim, dim),
		Wo: NewParam(name+".Wo", dim, dim),
	}
	a.Wq.InitXavier(rng)
	a.Wk.InitXavier(rng)
	a.Wv.InitXavier(rng)
	a.Wo.InitXavier(rng)
	return a, nil
}

// Params returns the trainable projections.
func (a *MultiHeadAttention) Params() Params { return Params{a.Wq, a.Wk, a.Wv, a.Wo} }

// mhaCache stores forward intermediates per head.
type mhaCache struct {
	x       Mat
	q, k, v Mat
	attn    []Mat // per head, (T x T)
	concat  Mat   // (T x Dim) pre-output-projection
}

// Apply runs the block over a (T x Dim) sequence, returning the output and
// a backward closure that accumulates parameter gradients and returns the
// input gradient.
func (a *MultiHeadAttention) Apply(x Mat) (Mat, func(Mat) Mat) {
	tlen := x.Rows
	hd := a.Dim / a.Heads
	c := &mhaCache{
		x: x,
		q: MatMul(x, a.Wq.Value.Transpose()),
		k: MatMul(x, a.Wk.Value.Transpose()),
		v: MatMul(x, a.Wv.Value.Transpose()),
	}
	c.attn = make([]Mat, a.Heads)
	c.concat = NewMat(tlen, a.Dim)
	scale := 1 / math.Sqrt(float64(hd))

	for h := 0; h < a.Heads; h++ {
		off := h * hd
		attn := NewMat(tlen, tlen)
		for i := 0; i < tlen; i++ {
			limit := tlen
			if a.Causal {
				limit = i + 1
			}
			row := attn.Row(i)
			qi := c.q.Row(i)[off : off+hd]
			max := math.Inf(-1)
			for j := 0; j < limit; j++ {
				kj := c.k.Row(j)[off : off+hd]
				s := 0.0
				for d := 0; d < hd; d++ {
					s += qi[d] * kj[d]
				}
				row[j] = s * scale
				if row[j] > max {
					max = row[j]
				}
			}
			sum := 0.0
			for j := 0; j < limit; j++ {
				row[j] = math.Exp(row[j] - max)
				sum += row[j]
			}
			for j := 0; j < limit; j++ {
				row[j] /= sum
			}
		}
		c.attn[h] = attn
		// concat[:, off:off+hd] = attn * v[:, off:off+hd].
		for i := 0; i < tlen; i++ {
			orow := c.concat.Row(i)[off : off+hd]
			arow := attn.Row(i)
			for j := 0; j < tlen; j++ {
				w := arow[j]
				if w == 0 {
					continue
				}
				vrow := c.v.Row(j)[off : off+hd]
				for d := 0; d < hd; d++ {
					orow[d] += w * vrow[d]
				}
			}
		}
	}
	out := MatMul(c.concat, a.Wo.Value.Transpose())

	backward := func(dOut Mat) Mat { return a.backward(c, dOut) }
	return out, backward
}

func (a *MultiHeadAttention) backward(c *mhaCache, dOut Mat) Mat {
	tlen := c.x.Rows
	hd := a.Dim / a.Heads
	scale := 1 / math.Sqrt(float64(hd))

	// out = concat Wo^T: dWo = dOut^T concat; dConcat = dOut Wo.
	gWo := MatMul(dOut.Transpose(), c.concat)
	for i := range gWo.Data {
		a.Wo.Grad.Data[i] += gWo.Data[i]
	}
	dConcat := MatMul(dOut, a.Wo.Value)

	dQ := NewMat(tlen, a.Dim)
	dK := NewMat(tlen, a.Dim)
	dV := NewMat(tlen, a.Dim)

	for h := 0; h < a.Heads; h++ {
		off := h * hd
		attn := c.attn[h]
		// dAttn = dConcat_h * v_h^T ; dV_h += attn^T dConcat_h.
		dAttn := NewMat(tlen, tlen)
		for i := 0; i < tlen; i++ {
			di := dConcat.Row(i)[off : off+hd]
			for j := 0; j < tlen; j++ {
				vj := c.v.Row(j)[off : off+hd]
				s := 0.0
				for d := 0; d < hd; d++ {
					s += di[d] * vj[d]
				}
				dAttn.Set(i, j, s)
			}
			arow := attn.Row(i)
			for j := 0; j < tlen; j++ {
				w := arow[j]
				if w == 0 {
					continue
				}
				dvj := dV.Row(j)[off : off+hd]
				for d := 0; d < hd; d++ {
					dvj[d] += w * di[d]
				}
			}
		}
		// Softmax backward per row.
		for i := 0; i < tlen; i++ {
			arow := attn.Row(i)
			drow := dAttn.Row(i)
			dot := 0.0
			for j := 0; j < tlen; j++ {
				dot += drow[j] * arow[j]
			}
			qi := c.q.Row(i)[off : off+hd]
			dqi := dQ.Row(i)[off : off+hd]
			for j := 0; j < tlen; j++ {
				ds := arow[j] * (drow[j] - dot) * scale
				if ds == 0 {
					continue
				}
				kj := c.k.Row(j)[off : off+hd]
				dkj := dK.Row(j)[off : off+hd]
				for d := 0; d < hd; d++ {
					dqi[d] += ds * kj[d]
					dkj[d] += ds * qi[d]
				}
			}
		}
	}

	// Projections: q = x Wq^T, so dWq += dQ^T x and dx += dQ Wq.
	accum := func(w *Param, dProj Mat) {
		g := MatMul(dProj.Transpose(), c.x)
		for i := range g.Data {
			w.Grad.Data[i] += g.Data[i]
		}
	}
	accum(a.Wq, dQ)
	accum(a.Wk, dK)
	accum(a.Wv, dV)

	dX := MatMul(dQ, a.Wq.Value)
	dk := MatMul(dK, a.Wk.Value)
	dv := MatMul(dV, a.Wv.Value)
	for i := range dX.Data {
		dX.Data[i] += dk.Data[i] + dv.Data[i]
	}
	return dX
}

// Apply gives the single-head Attention the same closure-style interface
// as MultiHeadAttention, so callers can switch between them.
func (a *Attention) Apply(x Mat) (Mat, func(Mat) Mat) {
	out, cache := a.Forward(x)
	return out, func(dOut Mat) Mat { return a.Backward(cache, dOut) }
}

// SelfAttention is the common interface of the attention blocks.
type SelfAttention interface {
	Apply(x Mat) (Mat, func(Mat) Mat)
	Params() Params
}

var (
	_ SelfAttention = (*Attention)(nil)
	_ SelfAttention = (*MultiHeadAttention)(nil)
)
