package nn

// Scratch is an arena of reusable buffers for allocation-free forward and
// backward passes. Layers draw step vectors and cache structs from it
// instead of the heap; Reset recycles everything issued since the last
// Reset in O(distinct sizes), so a training loop that resets once per
// window reaches a steady state with zero heap allocations per step.
//
// Ownership rules (see DESIGN.md "Performance & concurrency"):
//
//   - A Scratch belongs to exactly one goroutine. Parallel workers each
//     carry their own; arenas are never shared or locked.
//   - Buffers issued before a Reset are dead after it. Callers must not
//     retain scratch-backed slices (hidden states, caches) across Reset —
//     the arena will hand the same memory out again.
//   - A nil *Scratch is valid everywhere and falls back to plain heap
//     allocation, so cold paths keep their original behaviour without a
//     second code path.
type Scratch struct {
	vecFree map[int][][]float64
	vecUsed map[int][][]float64

	lstm  structPool[LSTMCache]
	dense structPool[DenseCache]
	act   structPool[ActCache]
	ln    structPool[LNCache]
	grn   structPool[GRNCache]
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch {
	return &Scratch{
		vecFree: map[int][][]float64{},
		vecUsed: map[int][][]float64{},
	}
}

// Vec returns a length-n buffer with unspecified contents. Callers must
// fully overwrite it (or use VecZero when accumulating). nil receivers
// allocate from the heap.
func (s *Scratch) Vec(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	free := s.vecFree[n]
	if m := len(free); m > 0 {
		v := free[m-1]
		s.vecFree[n] = free[:m-1]
		s.vecUsed[n] = append(s.vecUsed[n], v)
		return v
	}
	v := make([]float64, n)
	s.vecUsed[n] = append(s.vecUsed[n], v)
	return v
}

// VecZero returns a zeroed length-n buffer.
func (s *Scratch) VecZero(n int) []float64 {
	v := s.Vec(n)
	for i := range v {
		v[i] = 0
	}
	return v
}

// VecCopy returns a scratch-backed copy of src.
func (s *Scratch) VecCopy(src []float64) []float64 {
	v := s.Vec(len(src))
	copy(v, src)
	return v
}

// Reset recycles every buffer and cache issued since the last Reset. The
// caller promises nothing issued before the Reset is still referenced.
func (s *Scratch) Reset() {
	if s == nil {
		return
	}
	for n, used := range s.vecUsed {
		if len(used) == 0 {
			continue
		}
		s.vecFree[n] = append(s.vecFree[n], used...)
		s.vecUsed[n] = used[:0]
	}
	s.lstm.reset()
	s.dense.reset()
	s.act.reset()
	s.ln.reset()
	s.grn.reset()
}

// lstmCache returns a pooled (dirty) LSTM step cache.
func (s *Scratch) lstmCache() *LSTMCache {
	if s == nil {
		return &LSTMCache{}
	}
	return s.lstm.get()
}

// denseCache returns a pooled (dirty) dense cache.
func (s *Scratch) denseCache() *DenseCache {
	if s == nil {
		return &DenseCache{}
	}
	return s.dense.get()
}

// actCache returns a pooled (dirty) activation cache.
func (s *Scratch) actCache() *ActCache {
	if s == nil {
		return &ActCache{}
	}
	return s.act.get()
}

// lnCache returns a pooled (dirty) layer-norm cache.
func (s *Scratch) lnCache() *LNCache {
	if s == nil {
		return &LNCache{}
	}
	return s.ln.get()
}

// grnCache returns a pooled (dirty) GRN cache.
func (s *Scratch) grnCache() *GRNCache {
	if s == nil {
		return &GRNCache{}
	}
	return s.grn.get()
}

// structPool recycles cache structs of one type. Every struct it has ever
// issued lives either in free or in used; reset moves used back to free,
// so in steady state get never touches the heap.
type structPool[T any] struct {
	free []*T
	used []*T
}

func (p *structPool[T]) get() *T {
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		p.used = append(p.used, v)
		return v
	}
	v := new(T)
	p.used = append(p.used, v)
	return v
}

func (p *structPool[T]) reset() {
	p.free = append(p.free, p.used...)
	p.used = p.used[:0]
}
