package nn

import (
	"math"
	"math/rand"
)

// Attention is single-head scaled dot-product self-attention with an
// optional causal mask, the interpretable attention block at the heart of
// the Temporal Fusion Transformer decoder.
type Attention struct {
	Dim        int
	Wq, Wk, Wv *Param // (Dim x Dim) projections
	Causal     bool
}

// NewAttention creates an attention block over vectors of the given
// dimension. With causal=true position t may only attend to positions <= t.
func NewAttention(name string, dim int, causal bool, rng *rand.Rand) *Attention {
	a := &Attention{
		Dim:    dim,
		Wq:     NewParam(name+".Wq", dim, dim),
		Wk:     NewParam(name+".Wk", dim, dim),
		Wv:     NewParam(name+".Wv", dim, dim),
		Causal: causal,
	}
	a.Wq.InitXavier(rng)
	a.Wk.InitXavier(rng)
	a.Wv.InitXavier(rng)
	return a
}

// Params returns the trainable projections.
func (a *Attention) Params() Params { return Params{a.Wq, a.Wk, a.Wv} }

// AttnCache stores intermediates for the backward pass.
type AttnCache struct {
	x       Mat // (T x D) input
	q, k, v Mat // (T x D) projections
	attn    Mat // (T x T) softmax weights
}

// Forward runs attention over a (T x Dim) sequence and returns the
// attended (T x Dim) output.
func (a *Attention) Forward(x Mat) (Mat, *AttnCache) {
	tlen := x.Rows
	q := MatMul(x, a.Wq.Value.Transpose())
	k := MatMul(x, a.Wk.Value.Transpose())
	v := MatMul(x, a.Wv.Value.Transpose())

	scale := 1 / math.Sqrt(float64(a.Dim))
	attn := NewMat(tlen, tlen)
	for i := 0; i < tlen; i++ {
		limit := tlen
		if a.Causal {
			limit = i + 1
		}
		row := attn.Row(i)
		qi := q.Row(i)
		max := math.Inf(-1)
		for j := 0; j < limit; j++ {
			s := 0.0
			kj := k.Row(j)
			for d := 0; d < a.Dim; d++ {
				s += qi[d] * kj[d]
			}
			row[j] = s * scale
			if row[j] > max {
				max = row[j]
			}
		}
		sum := 0.0
		for j := 0; j < limit; j++ {
			row[j] = math.Exp(row[j] - max)
			sum += row[j]
		}
		for j := 0; j < limit; j++ {
			row[j] /= sum
		}
		for j := limit; j < tlen; j++ {
			row[j] = 0
		}
	}
	out := MatMul(attn, v)
	return out, &AttnCache{x: x, q: q, k: k, v: v, attn: attn}
}

// Backward consumes the upstream gradient dOut (T x Dim), accumulates
// projection gradients, and returns the gradient on the input sequence.
func (a *Attention) Backward(c *AttnCache, dOut Mat) Mat {
	tlen := c.x.Rows
	scale := 1 / math.Sqrt(float64(a.Dim))

	// out = attn * v.
	dAttn := MatMul(dOut, c.v.Transpose())
	dV := MatMul(c.attn.Transpose(), dOut)

	// Softmax backward per row: dscore = attn .* (dAttn - sum(dAttn .* attn)).
	dScores := NewMat(tlen, tlen)
	for i := 0; i < tlen; i++ {
		arow := c.attn.Row(i)
		drow := dAttn.Row(i)
		dot := 0.0
		for j := 0; j < tlen; j++ {
			dot += drow[j] * arow[j]
		}
		srow := dScores.Row(i)
		for j := 0; j < tlen; j++ {
			srow[j] = arow[j] * (drow[j] - dot)
		}
	}

	// scores = scale * q k^T.
	dQ := MatMul(dScores, c.k)
	dK := MatMul(dScores.Transpose(), c.q)
	for i := range dQ.Data {
		dQ.Data[i] *= scale
	}
	for i := range dK.Data {
		dK.Data[i] *= scale
	}

	// Projections: q = x Wq^T, so dWq = dQ^T x and dx += dQ Wq.
	accumProj := func(w *Param, dProj Mat) {
		g := MatMul(dProj.Transpose(), c.x)
		for i := range g.Data {
			w.Grad.Data[i] += g.Data[i]
		}
	}
	accumProj(a.Wq, dQ)
	accumProj(a.Wk, dK)
	accumProj(a.Wv, dV)

	dX := MatMul(dQ, a.Wq.Value)
	dk := MatMul(dK, a.Wk.Value)
	dv := MatMul(dV, a.Wv.Value)
	for i := range dX.Data {
		dX.Data[i] += dk.Data[i] + dv.Data[i]
	}
	return dX
}
