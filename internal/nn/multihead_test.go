package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestMultiHeadAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct {
		heads  int
		causal bool
	}{
		{1, false}, {2, false}, {2, true}, {4, true},
	} {
		attn, err := NewMultiHeadAttention("mha", 4, tc.heads, tc.causal, rng)
		if err != nil {
			t.Fatal(err)
		}
		const T = 3
		x := NewMat(T, 4)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		w := NewMat(T, 4)
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64()
		}

		loss := func() float64 {
			out, _ := attn.Apply(x)
			s := 0.0
			for i, v := range out.Data {
				s += v * w.Data[i]
			}
			return s
		}
		attn.Params().ZeroGrads()
		out, backward := attn.Apply(x)
		_ = out
		dX := backward(w)

		const eps = 1e-6
		for _, p := range attn.Params() {
			for i := range p.Value.Data {
				orig := p.Value.Data[i]
				p.Value.Data[i] = orig + eps
				lp := loss()
				p.Value.Data[i] = orig - eps
				lm := loss()
				p.Value.Data[i] = orig
				numeric := (lp - lm) / (2 * eps)
				if math.Abs(numeric-p.Grad.Data[i]) > 1e-5 {
					t.Errorf("heads=%d causal=%v %s[%d]: analytic %v vs numeric %v",
						tc.heads, tc.causal, p.Name, i, p.Grad.Data[i], numeric)
				}
			}
		}
		for i := range x.Data {
			orig := x.Data[i]
			x.Data[i] = orig + eps
			lp := loss()
			x.Data[i] = orig - eps
			lm := loss()
			x.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-dX.Data[i]) > 1e-5 {
				t.Errorf("heads=%d causal=%v dX[%d]: analytic %v vs numeric %v",
					tc.heads, tc.causal, i, dX.Data[i], numeric)
			}
		}
	}
}

func TestMultiHeadAttentionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMultiHeadAttention("x", 5, 2, false, rng); err == nil {
		t.Error("indivisible dim should fail")
	}
	if _, err := NewMultiHeadAttention("x", 4, 0, false, rng); err == nil {
		t.Error("zero heads should fail")
	}
}

func TestMultiHeadCausalMask(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	attn, err := NewMultiHeadAttention("mha", 4, 2, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	// A causal block's output at position i must not change when later
	// positions change.
	x := NewMat(3, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	out1, _ := attn.Apply(x)
	x2 := x.Clone()
	for j := 0; j < 4; j++ {
		x2.Set(2, j, rng.NormFloat64()) // mutate the last position
	}
	out2, _ := attn.Apply(x2)
	for i := 0; i < 2; i++ { // earlier positions unchanged
		for j := 0; j < 4; j++ {
			if math.Abs(out1.At(i, j)-out2.At(i, j)) > 1e-12 {
				t.Fatalf("causal leak at position %d", i)
			}
		}
	}
}

func TestSingleHeadApplyMatchesForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	attn := NewAttention("a", 3, true, rng)
	x := NewMat(4, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	out1, cache := attn.Forward(x)
	outApply, backward := attn.Apply(x)
	for i := range out1.Data {
		if out1.Data[i] != outApply.Data[i] {
			t.Fatal("Apply output differs from Forward")
		}
	}
	dOut := NewMat(4, 3)
	for i := range dOut.Data {
		dOut.Data[i] = rng.NormFloat64()
	}
	attn.Params().ZeroGrads()
	d1 := attn.Backward(cache, dOut)
	attn.Params().ZeroGrads()
	d2 := backward(dOut)
	for i := range d1.Data {
		if d1.Data[i] != d2.Data[i] {
			t.Fatal("Apply backward differs from Backward")
		}
	}
}
