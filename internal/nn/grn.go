package nn

import (
	"math"
	"math/rand"
)

// LayerNorm normalizes a vector to zero mean and unit variance and applies
// a learned affine transform, the stabilizer used throughout the Temporal
// Fusion Transformer's gated blocks.
type LayerNorm struct {
	Dim  int
	G, B *Param // gain and bias, (Dim x 1)
}

// NewLayerNorm creates a layer norm with unit gain and zero bias.
func NewLayerNorm(name string, dim int) *LayerNorm {
	ln := &LayerNorm{
		Dim: dim,
		G:   NewParam(name+".g", dim, 1),
		B:   NewParam(name+".b", dim, 1),
	}
	for i := range ln.G.Value.Data {
		ln.G.Value.Data[i] = 1
	}
	return ln
}

// Params returns the trainable gain and bias.
func (ln *LayerNorm) Params() Params { return Params{ln.G, ln.B} }

// Replica returns a layer norm sharing this one's parameters with private
// gradient buffers; see Param.Replica.
func (ln *LayerNorm) Replica() *LayerNorm {
	return &LayerNorm{Dim: ln.Dim, G: ln.G.Replica(), B: ln.B.Replica()}
}

const lnEps = 1e-5

// LNCache stores the normalization intermediates.
type LNCache struct {
	xhat   []float64
	invStd float64
}

// Forward normalizes x.
func (ln *LayerNorm) Forward(x []float64) ([]float64, *LNCache) {
	return ln.ForwardScratch(nil, x)
}

// ForwardScratch is Forward with arena-backed output and cache.
func (ln *LayerNorm) ForwardScratch(s *Scratch, x []float64) ([]float64, *LNCache) {
	n := float64(len(x))
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= n
	variance := 0.0
	for _, v := range x {
		d := v - mean
		variance += d * d
	}
	variance /= n
	invStd := 1 / math.Sqrt(variance+lnEps)

	cache := s.lnCache()
	cache.xhat = s.Vec(len(x))
	cache.invStd = invStd
	y := s.Vec(len(x))
	for i, v := range x {
		xhat := (v - mean) * invStd
		cache.xhat[i] = xhat
		y[i] = ln.G.Value.Data[i]*xhat + ln.B.Value.Data[i]
	}
	return y, cache
}

// Backward accumulates gain/bias gradients and returns dx.
func (ln *LayerNorm) Backward(c *LNCache, dy []float64) []float64 {
	return ln.BackwardScratch(nil, c, dy)
}

// BackwardScratch is Backward with arena-backed intermediates.
func (ln *LayerNorm) BackwardScratch(s *Scratch, c *LNCache, dy []float64) []float64 {
	n := float64(len(dy))
	// dxhat = dy * g; accumulate parameter grads.
	dxhat := s.Vec(len(dy))
	sumDxhat := 0.0
	sumDxhatXhat := 0.0
	for i, g := range dy {
		ln.G.Grad.Data[i] += g * c.xhat[i]
		ln.B.Grad.Data[i] += g
		dxhat[i] = g * ln.G.Value.Data[i]
		sumDxhat += dxhat[i]
		sumDxhatXhat += dxhat[i] * c.xhat[i]
	}
	dx := s.Vec(len(dy))
	for i := range dx {
		dx[i] = c.invStd / n * (n*dxhat[i] - sumDxhat - c.xhat[i]*sumDxhatXhat)
	}
	return dx
}

// ELU is the exponential linear unit used inside the TFT's gated residual
// network.
var ELU = Activation{
	Name: "elu",
	F: func(x float64) float64 {
		if x >= 0 {
			return x
		}
		return math.Exp(x) - 1
	},
	DFroY: func(y float64) float64 {
		if y >= 0 {
			return 1
		}
		return y + 1 // = exp(x) for x < 0
	},
}

// GRN is the Gated Residual Network of Lim et al.:
//
//	GRN(x) = LayerNorm(x + GLU(W2 ELU(W1 x + b1) + b2))
//	GLU(a) = sigmoid(W3 a + b3) ⊙ (W4 a + b4)
//
// The gate lets the block suppress its nonlinear contribution entirely,
// which is what makes deep TFT stacks trainable on small data.
type GRN struct {
	Dim                  int
	l1, l2, gateW, gateV *Dense
	norm                 *LayerNorm
}

// NewGRN creates a gated residual network over vectors of the given
// dimension (input, hidden and output dims are all equal here, matching
// the TFT's use between same-width blocks).
func NewGRN(name string, dim int, rng *rand.Rand) *GRN {
	return &GRN{
		Dim:   dim,
		l1:    NewDense(name+".l1", dim, dim, rng),
		l2:    NewDense(name+".l2", dim, dim, rng),
		gateW: NewDense(name+".gateW", dim, dim, rng),
		gateV: NewDense(name+".gateV", dim, dim, rng),
		norm:  NewLayerNorm(name+".ln", dim),
	}
}

// Params returns every trainable parameter of the block.
func (g *GRN) Params() Params {
	var ps Params
	ps = append(ps, g.l1.Params()...)
	ps = append(ps, g.l2.Params()...)
	ps = append(ps, g.gateW.Params()...)
	ps = append(ps, g.gateV.Params()...)
	ps = append(ps, g.norm.Params()...)
	return ps
}

// GRNCache stores one application's intermediates.
type GRNCache struct {
	c1, c2, cw, cv *DenseCache
	a1             *ActCache
	sig, val       []float64
	ln             *LNCache
}

// Forward applies the block to one vector.
func (g *GRN) Forward(x []float64) ([]float64, *GRNCache) {
	return g.ForwardScratch(nil, x)
}

// ForwardScratch is Forward with every intermediate drawn from the arena.
func (g *GRN) ForwardScratch(s *Scratch, x []float64) ([]float64, *GRNCache) {
	cache := s.grnCache()
	var h []float64
	h, cache.c1 = g.l1.ForwardScratch(s, x)
	h, cache.a1 = ELU.ForwardScratch(s, h)
	h, cache.c2 = g.l2.ForwardScratch(s, h)

	var gateRaw, val []float64
	gateRaw, cache.cw = g.gateW.ForwardScratch(s, h)
	val, cache.cv = g.gateV.ForwardScratch(s, h)
	cache.sig = s.Vec(len(gateRaw))
	cache.val = val
	z := s.Vec(len(x))
	for i := range z {
		sg := sigmoid(gateRaw[i])
		cache.sig[i] = sg
		z[i] = x[i] + sg*val[i]
	}
	out, ln := g.norm.ForwardScratch(s, z)
	cache.ln = ln
	return out, cache
}

// Backward accumulates parameter gradients and returns dx.
func (g *GRN) Backward(c *GRNCache, dy []float64) []float64 {
	return g.BackwardScratch(nil, c, dy)
}

// BackwardScratch is Backward with every intermediate drawn from the
// arena.
func (g *GRN) BackwardScratch(s *Scratch, c *GRNCache, dy []float64) []float64 {
	dz := g.norm.BackwardScratch(s, c.ln, dy)

	dGateRaw := s.Vec(len(dz))
	dVal := s.Vec(len(dz))
	dx := s.Vec(len(dz))
	for i, d := range dz {
		dx[i] = d // residual path
		dVal[i] = d * c.sig[i]
		dGateRaw[i] = d * c.val[i] * c.sig[i] * (1 - c.sig[i])
	}
	dh := g.gateW.BackwardScratch(s, c.cw, dGateRaw)
	dhv := g.gateV.BackwardScratch(s, c.cv, dVal)
	for i := range dh {
		dh[i] += dhv[i]
	}
	dh = g.l2.BackwardScratch(s, c.c2, dh)
	dh = ELU.BackwardScratch(s, c.a1, dh)
	dh = g.l1.BackwardScratch(s, c.c1, dh)
	for i := range dx {
		dx[i] += dh[i]
	}
	return dx
}
