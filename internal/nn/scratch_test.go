package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestMulVecIntoMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMat(5, 3)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	x := randVec(rng, 3)
	want := m.MulVec(x)
	dst := make([]float64, 5)
	for i := range dst {
		dst[i] = math.NaN() // must be fully overwritten
	}
	got := m.MulVecInto(x, dst)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MulVecInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMulVecTIntoMatchesMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewMat(5, 3)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	y := randVec(rng, 5)
	want := m.MulVecT(y)
	dst := make([]float64, 3)
	for i := range dst {
		dst[i] = 99 // stale contents must not leak into the result
	}
	got := m.MulVecTInto(y, dst)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MulVecTInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAddOuterIntoMatchesAddOuter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	y, x := randVec(rng, 4), randVec(rng, 3)
	a, b := NewMat(4, 3), NewMat(4, 3)
	a.AddOuter(y, x)
	AddOuterInto(b, y, x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Errorf("AddOuterInto[%d] = %v, want %v", i, b.Data[i], a.Data[i])
		}
	}
}

func TestIntoKernelsPanicOnBadDst(t *testing.T) {
	m := NewMat(4, 3)
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s with wrong destination did not panic", name)
			}
		}()
		f()
	}
	expectPanic("MulVecInto", func() { m.MulVecInto(make([]float64, 3), make([]float64, 2)) })
	expectPanic("MulVecTInto", func() { m.MulVecTInto(make([]float64, 4), make([]float64, 2)) })
}

func TestScratchReusesBuffers(t *testing.T) {
	s := NewScratch()
	v1 := s.Vec(16)
	v1[0] = 42
	s.Reset()
	v2 := s.Vec(16)
	if &v1[0] != &v2[0] {
		t.Error("Vec after Reset did not reuse the buffer")
	}
	v3 := s.Vec(16)
	if &v3[0] == &v2[0] {
		t.Error("two live Vecs share storage")
	}
	if z := s.VecZero(16); z[0] != 0 {
		t.Errorf("VecZero returned dirty buffer: %v", z[0])
	}
}

func TestScratchNilFallback(t *testing.T) {
	var s *Scratch
	v := s.Vec(4)
	if len(v) != 4 {
		t.Fatalf("nil scratch Vec len = %d", len(v))
	}
	s.Reset() // must not panic
	if c := s.VecCopy([]float64{1, 2}); c[1] != 2 {
		t.Errorf("nil scratch VecCopy = %v", c)
	}
}

// TestScratchStepMatchesHeapStep pins that the arena path computes exactly
// what the allocating path computes, forward and backward.
func TestScratchStepMatchesHeapStep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cell := NewLSTMCell("c", 4, 6, rng)
	x := randVec(rng, 4)
	dh := randVec(rng, 6)
	dc := randVec(rng, 6)

	st1, cache1 := cell.Step(x, cell.NewLSTMState())
	cell.Params().ZeroGrads()
	dx1, dPrev1 := cell.StepBackward(cache1, dh, dc)
	grads1 := make([]float64, 0)
	for _, p := range cell.Params() {
		grads1 = append(grads1, append([]float64{}, p.Grad.Data...)...)
	}

	s := NewScratch()
	st2, cache2 := cell.StepScratch(s, x, cell.NewLSTMStateScratch(s))
	cell.Params().ZeroGrads()
	dx2, dPrev2 := cell.StepBackwardScratch(s, cache2, dh, dc)
	grads2 := make([]float64, 0)
	for _, p := range cell.Params() {
		grads2 = append(grads2, append([]float64{}, p.Grad.Data...)...)
	}

	vecEqual := func(name string, a, b []float64) {
		t.Helper()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d]: %v != %v", name, i, a[i], b[i])
			}
		}
	}
	vecEqual("H", st1.H, st2.H)
	vecEqual("C", st1.C, st2.C)
	vecEqual("dx", dx1, dx2)
	vecEqual("dPrev.H", dPrev1.H, dPrev2.H)
	vecEqual("dPrev.C", dPrev1.C, dPrev2.C)
	vecEqual("grads", grads1, grads2)
}

// TestLSTMStepZeroAlloc enforces the headline kernel guarantee: once the
// arena is warm, one LSTM forward+backward step allocates nothing.
func TestLSTMStepZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cell := NewLSTMCell("c", 8, 32, rng)
	x := randVec(rng, 8)
	dh := randVec(rng, 32)
	dc := randVec(rng, 32)
	s := NewScratch()

	step := func() {
		s.Reset()
		state, cache := cell.StepScratch(s, x, cell.NewLSTMStateScratch(s))
		_, _ = cell.StepBackwardScratch(s, cache, dh, dc)
		_ = state
	}
	for i := 0; i < 8; i++ {
		step() // warm the arena
	}
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Errorf("LSTM step allocates %v times in steady state, want 0", allocs)
	}
}

// TestGRNZeroAlloc extends the guarantee to the TFT's gated block.
func TestGRNZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewGRN("g", 16, rng)
	x := randVec(rng, 16)
	dy := randVec(rng, 16)
	s := NewScratch()

	step := func() {
		s.Reset()
		_, cache := g.ForwardScratch(s, x)
		_ = g.BackwardScratch(s, cache, dy)
	}
	for i := 0; i < 8; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Errorf("GRN forward+backward allocates %v times in steady state, want 0", allocs)
	}
}

// TestReplicaSharesValuesSplitsGrads pins the replica contract for every
// layer type used by the forecasters.
func TestReplicaSharesValuesSplitsGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cell := NewLSTMCell("c", 3, 4, rng)
	rep := cell.Replica()

	if &rep.Wx.Value.Data[0] != &cell.Wx.Value.Data[0] {
		t.Error("replica does not share value storage")
	}
	if &rep.Wx.Grad.Data[0] == &cell.Wx.Grad.Data[0] {
		t.Error("replica shares gradient storage")
	}

	// Backward through the replica must leave the master's grads untouched.
	x := randVec(rng, 3)
	st, cache := rep.Step(x, rep.NewLSTMState())
	_ = st
	dh, dc := randVec(rng, 4), randVec(rng, 4)
	rep.StepBackward(cache, dh, dc)
	for _, p := range cell.Params() {
		for i, g := range p.Grad.Data {
			if g != 0 {
				t.Fatalf("master grad %s[%d] = %v after replica backward", p.Name, i, g)
			}
		}
	}

	// Merging replica grads must reproduce a direct backward bit-for-bit.
	cell.Params().ZeroGrads()
	AccumGrads(cell.Params(), rep.Params())
	direct := NewLSTMCell("c", 3, 4, rand.New(rand.NewSource(6)))
	_, dcache := direct.Step(x, direct.NewLSTMState())
	direct.StepBackward(dcache, dh, dc)
	for pi, p := range cell.Params() {
		dp := direct.Params()[pi]
		for i := range p.Grad.Data {
			if p.Grad.Data[i] != dp.Grad.Data[i] {
				t.Fatalf("merged grad %s[%d] = %v, want %v", p.Name, i, p.Grad.Data[i], dp.Grad.Data[i])
			}
		}
	}
}

func TestReplicaSelfAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, attn := range []SelfAttention{
		NewAttention("a", 4, true, rng),
		mustMHA(t, 4, 2, rng),
	} {
		rep := ReplicaSelfAttention(attn)
		if &rep.Params()[0].Value.Data[0] != &attn.Params()[0].Value.Data[0] {
			t.Errorf("%T replica does not share value storage", attn)
		}
		if &rep.Params()[0].Grad.Data[0] == &attn.Params()[0].Grad.Data[0] {
			t.Errorf("%T replica shares gradient storage", attn)
		}
	}
}

func mustMHA(t *testing.T, dim, heads int, rng *rand.Rand) *MultiHeadAttention {
	t.Helper()
	a, err := NewMultiHeadAttention("m", dim, heads, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
