package scaler

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"robustscale/internal/forecast"
	"robustscale/internal/obs"
	"robustscale/internal/timeseries"
)

// guardQF wraps fakeQF with switchable failure and fan-corruption hooks,
// and records the history each call observed.
type guardQF struct {
	fakeQF
	fail     bool
	poison   func(*forecast.QuantileForecast)
	lastHist *timeseries.Series
	calls    int
}

func (g *guardQF) PredictQuantiles(hist *timeseries.Series, h int, levels []float64) (*forecast.QuantileForecast, error) {
	g.calls++
	g.lastHist = hist
	if g.fail {
		return nil, errors.New("forecaster down")
	}
	fan, err := g.fakeQF.PredictQuantiles(hist, h, levels)
	if err == nil && g.poison != nil {
		g.poison(fan)
	}
	return fan, err
}

func flatBase(v float64, h int) fakeQF {
	base := make([]float64, h)
	spread := make([]float64, h)
	for i := range base {
		base[i] = v
		spread[i] = 0.2
	}
	return fakeQF{name: "fake", Base: base, Spread: spread}
}

func newGuarded(qf forecast.QuantileForecaster, theta float64) (*Guard, *Robust) {
	inner := &Robust{Forecaster: qf, Tau: 0.9, Theta: theta}
	g := &Guard{Inner: inner, Config: GuardConfig{Theta: theta, Tau: 0.9}}
	return g, inner
}

func TestGuardTransparentPassthrough(t *testing.T) {
	h, theta := 4, 10.0
	hist := series(10, 12, 11, 10, 12, 11)

	bare := &Robust{Forecaster: &guardQF{fakeQF: flatBase(30, h)}, Tau: 0.9, Theta: theta}
	want, err := bare.Plan(hist, h)
	if err != nil {
		t.Fatal(err)
	}

	g, inner := newGuarded(&guardQF{fakeQF: flatBase(30, h)}, theta)
	got, err := g.Plan(hist, h)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("guarded plan %v differs from bare plan %v", got, want)
	}
	if g.Mode() != ModeNormal {
		t.Errorf("mode = %v, want normal", g.Mode())
	}
	if g.Name() != inner.Name() {
		t.Errorf("guard name %q should be transparent, inner is %q", g.Name(), inner.Name())
	}
	if g.LastFan() == nil {
		t.Error("healthy round should expose the inner fan")
	}
	if g.LastReason() != "" {
		t.Errorf("healthy round has reason %q", g.LastReason())
	}
}

func TestGuardRepairsPoisonedFan(t *testing.T) {
	obs.DefaultDecisions.SetEnabled(true)
	defer func() {
		obs.DefaultDecisions.SetEnabled(false)
		obs.DefaultDecisions.Reset()
	}()
	h, theta := 4, 10.0
	qf := &guardQF{fakeQF: flatBase(30, h)}
	qf.poison = func(f *forecast.QuantileForecast) {
		f.Values[1][0] = math.NaN()
		f.Values[2][0] = math.Inf(1)
	}
	g, _ := newGuarded(qf, theta)
	plan, err := g.Plan(series(10, 12, 11, 10, 12, 11), h)
	if err != nil {
		t.Fatal(err)
	}
	if g.Mode() != ModeRepair {
		t.Fatalf("mode = %v, want repair", g.Mode())
	}
	for i, n := range plan {
		if n < 1 || n > 100 {
			t.Errorf("plan[%d] = %d after repair", i, n)
		}
	}
	d := g.LastDecision()
	if d == nil || d.Degraded != "repair" {
		t.Fatalf("decision = %+v, want degraded repair", d)
	}
	if d.DegradedReason == "" {
		t.Error("degraded decision should carry a reason")
	}
	if got := d.Explain(0); got == "" {
		t.Error("degraded decision should explain")
	}
}

func TestGuardLastKnownGoodThenReactive(t *testing.T) {
	h, theta := 3, 10.0
	hist := series(10, 50, 30, 20)
	qf := &guardQF{fakeQF: flatBase(40, h)}
	g, _ := newGuarded(qf, theta)

	healthy, err := g.Plan(hist, h)
	if err != nil {
		t.Fatal(err)
	}

	// Forecaster dies: the guard replans from the retained fan.
	qf.fail = true
	plan, err := g.Plan(hist, h)
	if err != nil {
		t.Fatal(err)
	}
	if g.Mode() != ModeLastKnownGood {
		t.Fatalf("mode = %v, want last-known-good", g.Mode())
	}
	// The retained fan is the healthy round's; the tau-0.9 path replans to
	// the same allocations.
	if !reflect.DeepEqual(plan, healthy) {
		t.Errorf("last-known-good plan %v, healthy plan %v", plan, healthy)
	}
	if g.LastFan() == nil {
		t.Error("last-known-good round should expose the retained fan")
	}

	// A fresh guard with no retained fan drops to the reactive rung.
	g2, _ := newGuarded(qf, theta)
	plan2, err := g2.Plan(hist, h)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Mode() != ModeReactive {
		t.Fatalf("mode = %v, want reactive", g2.Mode())
	}
	// ReactiveMax over the default window: max 50 / theta 10 = 5 nodes.
	for i, n := range plan2 {
		if n != 5 {
			t.Errorf("reactive plan[%d] = %d, want 5", i, n)
		}
	}
	if g2.LastFan() != nil {
		t.Error("reactive round has no fan")
	}
	if g2.DegradedRounds() != 1 {
		t.Errorf("degraded rounds = %d, want 1", g2.DegradedRounds())
	}
}

func TestGuardHealthGateSkipsInner(t *testing.T) {
	qf := &guardQF{fakeQF: flatBase(40, 3)}
	g, _ := newGuarded(qf, 10)
	g.Health = func() (bool, string) { return false, "coverage 0.61 below slack" }
	plan, err := g.Plan(series(10, 50, 30, 20), 3)
	if err != nil {
		t.Fatal(err)
	}
	if qf.calls != 0 {
		t.Errorf("unhealthy round called the forecaster %d times", qf.calls)
	}
	if g.Mode() != ModeReactive {
		t.Errorf("mode = %v, want reactive", g.Mode())
	}
	if len(plan) != 3 {
		t.Errorf("plan = %v", plan)
	}
	if got := g.LastReason(); got == "" {
		t.Error("health breach should surface a reason")
	}

	// Health recovers: the next round is normal again.
	g.Health = func() (bool, string) { return true, "" }
	if _, err := g.Plan(series(10, 50, 30, 20), 3); err != nil {
		t.Fatal(err)
	}
	if g.Mode() != ModeNormal {
		t.Errorf("mode after recovery = %v", g.Mode())
	}
}

func TestGuardLadderExhausted(t *testing.T) {
	qf := &guardQF{fakeQF: flatBase(40, 3), fail: true}
	g, _ := newGuarded(qf, 10)
	// Empty history: the reactive rung cannot plan either.
	if _, err := g.Plan(series(), 3); err == nil {
		t.Fatal("exhausted ladder should error")
	}
}

func TestGuardSanitizesHistory(t *testing.T) {
	h := 3
	qf := &guardQF{fakeQF: flatBase(40, h)}
	g, _ := newGuarded(qf, 10)
	hist := series(10, math.NaN(), 12, math.Inf(1), 11)
	if _, err := g.Plan(hist, h); err != nil {
		t.Fatal(err)
	}
	if qf.lastHist == nil {
		t.Fatal("forecaster never saw history")
	}
	for i, v := range qf.lastHist.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("inner saw non-finite history value at %d: %v", i, v)
		}
	}
	// Carry-forward repair: the NaN at index 1 takes the previous value.
	if qf.lastHist.Values[1] != 10 || qf.lastHist.Values[3] != 12 {
		t.Errorf("repaired history = %v", qf.lastHist.Values)
	}
	// The caller's series is untouched.
	if !math.IsNaN(hist.Values[1]) {
		t.Error("sanitization mutated the caller's series")
	}
}

func TestGuardClampsBlowup(t *testing.T) {
	h, theta := 3, 10.0
	qf := &guardQF{fakeQF: flatBase(30, h)}
	qf.poison = func(f *forecast.QuantileForecast) {
		for _, row := range f.Values {
			for i := range row {
				row[i] *= 1e9
			}
		}
	}
	g, _ := newGuarded(qf, theta)
	// History max 50, default blowup factor 8: bound 400 -> at most 40
	// nodes despite the 1e9x fan.
	plan, err := g.Plan(series(10, 50, 30, 20), h)
	if err != nil {
		t.Fatal(err)
	}
	if g.Mode() != ModeRepair {
		t.Fatalf("mode = %v, want repair", g.Mode())
	}
	for i, n := range plan {
		if n > 40 {
			t.Errorf("plan[%d] = %d exceeds the sanity bound", i, n)
		}
	}
}

func TestGuardObserveForwards(t *testing.T) {
	// Adaptive implements Observer via its conformal tracker; the guard
	// must forward realized workloads through. Use a spy instead.
	spy := &observeSpy{}
	g := &Guard{Inner: spy, Config: GuardConfig{Theta: 10}}
	g.Observe([]float64{1, 2})
	if spy.got != 2 {
		t.Errorf("inner observed %d values, want 2", spy.got)
	}
}

type observeSpy struct {
	got int
}

func (s *observeSpy) Name() string { return "spy" }
func (s *observeSpy) Plan(*timeseries.Series, int) ([]int, error) {
	return []int{1}, nil
}
func (s *observeSpy) Observe(actual []float64) { s.got += len(actual) }

// TestGuardLadderReentry pins the recovery direction of the ladder: a
// guard that has fallen all the way to the reactive rung (and one parked
// at last-known-good) must climb back to normal on the FIRST healthy
// round — degradation is per-round state, never latched.
func TestGuardLadderReentry(t *testing.T) {
	h, theta := 3, 10.0
	hist := series(10, 50, 30, 20)

	// Reactive -> normal. A fresh guard with a dead forecaster and no
	// retained fan lands on the bottom rung.
	qf := &guardQF{fakeQF: flatBase(40, h), fail: true}
	g, _ := newGuarded(qf, theta)
	if _, err := g.Plan(hist, h); err != nil {
		t.Fatal(err)
	}
	if g.Mode() != ModeReactive {
		t.Fatalf("mode = %v, want reactive", g.Mode())
	}
	qf.fail = false
	plan, err := g.Plan(hist, h)
	if err != nil {
		t.Fatal(err)
	}
	if g.Mode() != ModeNormal {
		t.Fatalf("first healthy round after reactive: mode = %v, want normal", g.Mode())
	}
	if g.LastReason() != "" {
		t.Errorf("recovered round still carries reason %q", g.LastReason())
	}
	// The recovered plan matches an always-healthy guard's bit for bit.
	ref, _ := newGuarded(&guardQF{fakeQF: flatBase(40, h)}, theta)
	want, err := ref.Plan(hist, h)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, want) {
		t.Errorf("recovered plan %v, healthy reference %v", plan, want)
	}
	if g.DegradedRounds() != 1 {
		t.Errorf("degraded rounds = %d, want 1 (recovery must stop the count)", g.DegradedRounds())
	}

	// Last-known-good -> normal, and the retained fan refreshes: a second
	// outage after recovery replans from the NEW healthy fan, not the
	// pre-outage one.
	qf2 := &guardQF{fakeQF: flatBase(40, h)}
	g2, _ := newGuarded(qf2, theta)
	if _, err := g2.Plan(hist, h); err != nil {
		t.Fatal(err)
	}
	qf2.fail = true
	if _, err := g2.Plan(hist, h); err != nil {
		t.Fatal(err)
	}
	if g2.Mode() != ModeLastKnownGood {
		t.Fatalf("mode = %v, want last-known-good", g2.Mode())
	}
	qf2.fail = false
	qf2.fakeQF = flatBase(80, h) // recovery observes a different workload
	healthy2, err := g2.Plan(hist, h)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Mode() != ModeNormal {
		t.Fatalf("first healthy round after LKG: mode = %v, want normal", g2.Mode())
	}
	qf2.fail = true
	replay, err := g2.Plan(hist, h)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Mode() != ModeLastKnownGood {
		t.Fatalf("mode = %v, want last-known-good", g2.Mode())
	}
	if !reflect.DeepEqual(replay, healthy2) {
		t.Errorf("second outage replans %v, want the refreshed fan's %v", replay, healthy2)
	}
}
