package scaler

import (
	"testing"
)

func TestPlanMultiResourceTakesMax(t *testing.T) {
	cpu := &fakeQF{name: "cpu", Base: []float64{100, 50}, Spread: []float64{0, 0}}
	mem := &fakeQF{name: "mem", Base: []float64{40, 90}, Spread: []float64{0, 0}}
	specs := []ResourceSpec{
		{Name: "cpu", History: series(1), Forecaster: cpu, Tau: 0.9, Theta: 10},
		{Name: "mem", History: series(1), Forecaster: mem, Tau: 0.9, Theta: 10},
	}
	plan, err := PlanMultiResource(specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Step 0: cpu needs 10, mem needs 4 -> 10 (cpu binds).
	// Step 1: cpu needs 5, mem needs 9 -> 9 (mem binds).
	if plan.Allocations[0] != 10 || plan.Allocations[1] != 9 {
		t.Errorf("allocations = %v", plan.Allocations)
	}
	if got := plan.Binding(specs, 0); got != "cpu" {
		t.Errorf("binding[0] = %q", got)
	}
	if got := plan.Binding(specs, 1); got != "mem" {
		t.Errorf("binding[1] = %q", got)
	}
	if len(plan.PerResource) != 2 {
		t.Errorf("per-resource = %v", plan.PerResource)
	}
}

func TestPlanMultiResourceValidation(t *testing.T) {
	qf := &fakeQF{name: "x", Base: []float64{1}, Spread: []float64{0}}
	good := ResourceSpec{Name: "x", History: series(1), Forecaster: qf, Tau: 0.9, Theta: 10}
	if _, err := PlanMultiResource(nil, 1); err == nil {
		t.Error("no specs should fail")
	}
	if _, err := PlanMultiResource([]ResourceSpec{good}, 0); err == nil {
		t.Error("zero horizon should fail")
	}
	noName := good
	noName.Name = ""
	if _, err := PlanMultiResource([]ResourceSpec{noName}, 1); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := PlanMultiResource([]ResourceSpec{good, good}, 1); err == nil {
		t.Error("duplicate name should fail")
	}
	badTheta := good
	badTheta.Name = "y"
	badTheta.Theta = 0
	if _, err := PlanMultiResource([]ResourceSpec{badTheta}, 1); err == nil {
		t.Error("zero theta should fail")
	}
	badTau := good
	badTau.Name = "z"
	badTau.Tau = 2
	if _, err := PlanMultiResource([]ResourceSpec{badTau}, 1); err == nil {
		t.Error("bad tau should fail")
	}
}

func TestEvaluateMultiResource(t *testing.T) {
	specs := []ResourceSpec{
		{Name: "cpu", Theta: 10},
		{Name: "mem", Theta: 20},
	}
	actuals := map[string][]float64{
		// Step 0: cpu 25/3 <= 10, mem 45/3 <= 20: ok, min = max(3, 3) = 3 -> exact.
		// Step 1: cpu 35/3 > 10: under.
		// Step 2: cpu 10/3, mem 20/3: min = 1, alloc 3 -> over.
		"cpu": {25, 35, 10},
		"mem": {45, 10, 20},
	}
	under, over, err := EvaluateMultiResource(specs, actuals, []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if under != 1.0/3 {
		t.Errorf("under = %v", under)
	}
	if over != 1.0/3 {
		t.Errorf("over = %v", over)
	}
}

func TestEvaluateMultiResourceValidation(t *testing.T) {
	specs := []ResourceSpec{{Name: "cpu", Theta: 10}}
	if _, _, err := EvaluateMultiResource(specs, nil, nil); err == nil {
		t.Error("empty allocations should fail")
	}
	if _, _, err := EvaluateMultiResource(specs, map[string][]float64{}, []int{1}); err == nil {
		t.Error("missing actuals should fail")
	}
	if _, _, err := EvaluateMultiResource(specs, map[string][]float64{"cpu": {1, 2}}, []int{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestMultiResourceEndToEndDominatesSingle(t *testing.T) {
	// When memory binds, a CPU-only plan under-provisions memory.
	cpu := &fakeQF{name: "cpu", Base: []float64{50, 50}, Spread: []float64{0, 0}}
	mem := &fakeQF{name: "mem", Base: []float64{200, 200}, Spread: []float64{0, 0}}
	specs := []ResourceSpec{
		{Name: "cpu", History: series(1), Forecaster: cpu, Tau: 0.9, Theta: 10},
		{Name: "mem", History: series(1), Forecaster: mem, Tau: 0.9, Theta: 20},
	}
	joint, err := PlanMultiResource(specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	actuals := map[string][]float64{"cpu": {50, 50}, "mem": {200, 200}}
	under, _, err := EvaluateMultiResource(specs, actuals, joint.Allocations)
	if err != nil {
		t.Fatal(err)
	}
	if under != 0 {
		t.Errorf("joint plan under = %v", under)
	}
	cpuOnly := joint.PerResource["cpu"]
	underCPU, _, err := EvaluateMultiResource(specs, actuals, cpuOnly)
	if err != nil {
		t.Fatal(err)
	}
	if underCPU == 0 {
		t.Error("cpu-only plan should under-provision memory")
	}
}
