// WakeGuard extends the degradation ladder to the zero boundary. The
// plain Guard assumes at least one node always runs; scale-to-zero adds
// two failure modes it cannot see: zero<->nonzero flapping (a tenant
// hovering at the idle threshold parks and cold-wakes every few rounds,
// paying the wake latency each time) and wake failure loops (a tenant
// that cannot come back from zero at all). WakeGuard shapes each round's
// plan with park/wake hysteresis and runs a wake circuit breaker whose
// open state degrades gracefully to a keep-warm floor: after enough
// consecutive failed wakes the tenant is pinned at >= KeepWarmNodes and
// never parked until the breaker's cooldown elapses.
package scaler

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"robustscale/internal/obs"
)

// WakeTransition classifies what Shape decided for the round.
type WakeTransition int

const (
	// WakeNone: the tenant is active with demand; plan passes through
	// (floored at one node).
	WakeNone WakeTransition = iota
	// WakeWake: the tenant leaves parked state this round.
	WakeWake
	// WakePark: the tenant parks (plan zeroed).
	WakePark
	// WakeHold: the tenant is idle but hysteresis blocks the park; it
	// holds a one-node floor.
	WakeHold
	// WakeKeepWarm: the wake breaker is open; the plan is floored at the
	// keep-warm node count regardless of demand.
	WakeKeepWarm
)

// String names the transition for journals and explanations.
func (t WakeTransition) String() string {
	switch t {
	case WakeWake:
		return "wake"
	case WakePark:
		return "park"
	case WakeHold:
		return "hold"
	case WakeKeepWarm:
		return "keep-warm"
	default:
		return "none"
	}
}

// WakeGuardConfig tunes the park/wake hysteresis and the wake breaker.
type WakeGuardConfig struct {
	// MinIdleRounds is how many consecutive idle rounds must pass before
	// an active tenant may park (default 3).
	MinIdleRounds int
	// WakeDebounceRounds blocks re-parking for this many rounds after a
	// wake, breaking zero<->nonzero flap cycles (default 2).
	WakeDebounceRounds int
	// KeepWarmAfterFails opens the wake breaker after this many
	// consecutive failed wakes (default 3).
	KeepWarmAfterFails int
	// BreakerCooldownRounds is how long the breaker stays open before a
	// half-open probe wake is allowed (default 6).
	BreakerCooldownRounds int
	// KeepWarmNodes is the graceful-degradation floor held while the
	// breaker is open (default 1).
	KeepWarmNodes int
}

func (c WakeGuardConfig) withDefaults() WakeGuardConfig {
	if c.MinIdleRounds <= 0 {
		c.MinIdleRounds = 3
	}
	if c.WakeDebounceRounds <= 0 {
		c.WakeDebounceRounds = 2
	}
	if c.KeepWarmAfterFails <= 0 {
		c.KeepWarmAfterFails = 3
	}
	if c.BreakerCooldownRounds <= 0 {
		c.BreakerCooldownRounds = 6
	}
	if c.KeepWarmNodes <= 0 {
		c.KeepWarmNodes = 1
	}
	return c
}

// WakeGuard is the per-tenant park/wake state machine. Like Guard it is
// driven by one control loop and is not safe for concurrent use.
type WakeGuard struct {
	// Config tunes hysteresis and the breaker; zero values take defaults.
	Config WakeGuardConfig
	// Tenant labels journal events (empty for single-tenant loops).
	Tenant string
	// Clock stamps journal events; defaults to time.Now.
	Clock func() time.Time

	parked       bool
	idleRounds   int
	sinceWake    int
	consecFails  int
	breakerOpen  bool
	cooldownLeft int

	// Lifetime counters.
	parks, wakes, blockedParks, breakerTrips int64

	lastTransition WakeTransition
}

// Parked reports whether the guard currently holds the tenant at zero.
func (g *WakeGuard) Parked() bool { return g.parked }

// BreakerOpen reports whether the wake breaker is holding the keep-warm
// floor.
func (g *WakeGuard) BreakerOpen() bool { return g.breakerOpen }

// LastTransition returns what the most recent Shape round decided.
func (g *WakeGuard) LastTransition() WakeTransition { return g.lastTransition }

// Parks, Wakes, BlockedParks and BreakerTrips are lifetime counters.
func (g *WakeGuard) Parks() int64        { return g.parks }
func (g *WakeGuard) Wakes() int64        { return g.wakes }
func (g *WakeGuard) BlockedParks() int64 { return g.blockedParks }
func (g *WakeGuard) BreakerTrips() int64 { return g.breakerTrips }

// Shape applies park/wake hysteresis to the round's plan in place and
// returns the transition taken. idle is the caller's verdict that the
// tenant has no genuine demand this round (forecast floor and realized
// tail both below the idle threshold). Shape never emits a negative
// allocation, and with the breaker open it never emits below the
// keep-warm floor.
func (g *WakeGuard) Shape(plan []int, idle bool) WakeTransition {
	cfg := g.Config.withDefaults()
	g.sinceWake++

	// Open breaker: graceful degradation. Hold the keep-warm floor no
	// matter what demand says, counting down to a half-open probe.
	if g.breakerOpen {
		for i := range plan {
			if plan[i] < cfg.KeepWarmNodes {
				plan[i] = cfg.KeepWarmNodes
			}
		}
		g.parked = false
		g.idleRounds = 0
		g.cooldownLeft--
		if g.cooldownLeft <= 0 {
			// Half-open: the next wake attempt is the probe. One more
			// failure re-trips immediately; a success closes for good.
			g.breakerOpen = false
			g.consecFails = cfg.KeepWarmAfterFails - 1
			g.journal("wake breaker half-open: next wake is the probe", nil)
		}
		g.lastTransition = WakeKeepWarm
		return WakeKeepWarm
	}

	if g.parked {
		if idle {
			for i := range plan {
				plan[i] = 0
			}
			g.idleRounds++
			g.lastTransition = WakePark
			return WakePark
		}
		// Demand returned: unpark.
		g.parked = false
		g.idleRounds = 0
		g.sinceWake = 0
		g.wakes++
		for i := range plan {
			if plan[i] < 1 {
				plan[i] = 1
			}
		}
		g.journal("waking from zero on returned demand", nil)
		g.lastTransition = WakeWake
		return WakeWake
	}

	// Active tenant.
	if idle {
		g.idleRounds++
		if g.idleRounds >= cfg.MinIdleRounds && g.sinceWake >= cfg.WakeDebounceRounds {
			g.parked = true
			g.parks++
			for i := range plan {
				plan[i] = 0
			}
			g.journal(fmt.Sprintf("parking after %d idle rounds", g.idleRounds),
				map[string]float64{"idle_rounds": float64(g.idleRounds)})
			g.lastTransition = WakePark
			return WakePark
		}
		// Hysteresis holds the tenant at a one-node floor.
		g.blockedParks++
		for i := range plan {
			if plan[i] < 1 {
				plan[i] = 1
			}
		}
		g.lastTransition = WakeHold
		return WakeHold
	}

	g.idleRounds = 0
	for i := range plan {
		if plan[i] < 1 {
			plan[i] = 1
		}
	}
	g.lastTransition = WakeNone
	return WakeNone
}

// OnWakeResult feeds the outcome of a wake attempt into the breaker: a
// success closes it and clears the failure streak; enough consecutive
// failures trip it open, pinning the keep-warm floor for the cooldown.
func (g *WakeGuard) OnWakeResult(ok bool) {
	cfg := g.Config.withDefaults()
	if ok {
		g.consecFails = 0
		return
	}
	g.consecFails++
	if !g.breakerOpen && g.consecFails >= cfg.KeepWarmAfterFails {
		g.breakerOpen = true
		g.cooldownLeft = cfg.BreakerCooldownRounds
		g.breakerTrips++
		g.parked = false
		g.journal(fmt.Sprintf("wake breaker open after %d consecutive failed wakes: holding %d keep-warm node(s)",
			g.consecFails, cfg.KeepWarmNodes),
			map[string]float64{
				"consecutive_fails": float64(g.consecFails),
				"keep_warm_nodes":   float64(cfg.KeepWarmNodes),
			})
	}
}

// ForceWake unparks the tenant immediately (a wake-storm drill or an
// operator override), bypassing idleness. It is a no-op for an active
// tenant or an open breaker.
func (g *WakeGuard) ForceWake() bool {
	if !g.parked || g.breakerOpen {
		return false
	}
	g.parked = false
	g.idleRounds = 0
	g.sinceWake = 0
	g.wakes++
	g.journal("forced wake (storm drill)", nil)
	g.lastTransition = WakeWake
	return true
}

func (g *WakeGuard) journal(msg string, fields map[string]float64) {
	now := time.Now()
	if g.Clock != nil {
		now = g.Clock()
	}
	obs.DefaultJournal.RecordTenantAt(now, g.Tenant, "wake", msg, fields)
}

// wakeGuardState is the gob wire form.
type wakeGuardState struct {
	Parked                                   bool
	IdleRounds                               int
	SinceWake                                int
	ConsecFails                              int
	BreakerOpen                              bool
	CooldownLeft                             int
	Parks, Wakes, BlockedParks, BreakerTrips int64
}

// Save snapshots the guard's mutable state; configuration is the owner's
// to rebuild, matching every other component's persistence contract.
func (g *WakeGuard) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(wakeGuardState{
		Parked: g.parked, IdleRounds: g.idleRounds, SinceWake: g.sinceWake,
		ConsecFails: g.consecFails, BreakerOpen: g.breakerOpen, CooldownLeft: g.cooldownLeft,
		Parks: g.parks, Wakes: g.wakes, BlockedParks: g.blockedParks, BreakerTrips: g.breakerTrips,
	})
}

// Load restores a snapshot written by Save.
func (g *WakeGuard) Load(r io.Reader) error {
	var st wakeGuardState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("scaler: loading wake-guard state: %w", err)
	}
	if st.IdleRounds < 0 || st.SinceWake < 0 || st.ConsecFails < 0 || st.CooldownLeft < 0 {
		return fmt.Errorf("scaler: wake-guard snapshot has negative counters")
	}
	g.parked, g.idleRounds, g.sinceWake = st.Parked, st.IdleRounds, st.SinceWake
	g.consecFails, g.breakerOpen, g.cooldownLeft = st.ConsecFails, st.BreakerOpen, st.CooldownLeft
	g.parks, g.wakes, g.blockedParks, g.breakerTrips = st.Parks, st.Wakes, st.BlockedParks, st.BreakerTrips
	return nil
}
