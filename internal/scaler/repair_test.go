package scaler

import (
	"errors"
	"math"
	"testing"

	"robustscale/internal/forecast"
)

func fanOf(levels []float64, rows ...[]float64) *forecast.QuantileForecast {
	return &forecast.QuantileForecast{Levels: levels, Values: rows}
}

func TestRepairFanHealthyIsUntouched(t *testing.T) {
	f := fanOf([]float64{0.1, 0.5, 0.9},
		[]float64{1, 2, 3},
		[]float64{2, 2, 4})
	f.Mean = []float64{2, 2.5}
	n, err := RepairFan(f, 100)
	if err != nil || n != 0 {
		t.Fatalf("healthy fan: repairs=%d err=%v", n, err)
	}
	if f.Values[0][0] != 1 || f.Values[1][2] != 4 || f.Mean[1] != 2.5 {
		t.Error("healthy fan was modified")
	}
}

func TestRepairFanFixesPathologies(t *testing.T) {
	f := fanOf([]float64{0.1, 0.5, 0.9},
		[]float64{3, math.NaN(), 2},  // NaN + crossing
		[]float64{1, 2, math.Inf(1)}, // Inf
		[]float64{1e12, 1e12, 1e12})  // blow-up
	f.Mean = []float64{math.NaN(), 2, 1e12}
	n, err := RepairFan(f, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("pathological fan reported zero repairs")
	}
	if err := f.Validate(); err != nil {
		t.Errorf("repaired fan still invalid: %v", err)
	}
	for ti, row := range f.Values {
		for i, v := range row {
			if v > 100 {
				t.Errorf("Values[%d][%d] = %v exceeds bound", ti, i, v)
			}
		}
	}
	for i, v := range f.Mean {
		if !isFinite(v) || v > 100 {
			t.Errorf("Mean[%d] = %v", i, v)
		}
	}
}

func TestRepairFanUnrepairable(t *testing.T) {
	all := fanOf([]float64{0.5, 0.9},
		[]float64{math.NaN(), math.Inf(-1)})
	if _, err := RepairFan(all, 0); !errors.Is(err, ErrUnrepairableFan) {
		t.Errorf("first row all non-finite: err = %v", err)
	}
	if _, err := RepairFan(nil, 0); !errors.Is(err, ErrUnrepairableFan) {
		t.Errorf("nil fan: err = %v", err)
	}
	ragged := fanOf([]float64{0.5, 0.9}, []float64{1})
	if _, err := RepairFan(ragged, 0); !errors.Is(err, ErrUnrepairableFan) {
		t.Errorf("ragged row: err = %v", err)
	}
}

func TestRepairFanUsesPreviousRow(t *testing.T) {
	f := fanOf([]float64{0.5},
		[]float64{7},
		[]float64{math.NaN()})
	n, err := RepairFan(f, 0)
	if err != nil || n != 1 {
		t.Fatalf("repairs=%d err=%v", n, err)
	}
	if f.Values[1][0] != 7 {
		t.Errorf("single-level NaN row should take the previous row, got %v", f.Values[1][0])
	}
}

// FuzzRepairFan is the satellite fuzz target: arbitrary rows in, and the
// postcondition is all-or-nothing — either an ErrUnrepairableFan-class
// error, or a fan that is finite, monotone per row, and within bound.
func FuzzRepairFan(f *testing.F) {
	f.Add(float64(1), float64(2), float64(3), float64(4), float64(5), float64(6), float64(100))
	f.Add(math.NaN(), float64(2), math.Inf(1), float64(4), math.Inf(-1), float64(6), float64(50))
	f.Add(float64(9), float64(5), float64(1), math.NaN(), math.NaN(), math.NaN(), float64(0))
	f.Add(math.MaxFloat64, -math.MaxFloat64, float64(0), float64(1e300), float64(-1e300), float64(0.5), float64(10))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, bound float64) {
		fan := fanOf([]float64{0.1, 0.5, 0.9},
			[]float64{a, b, c},
			[]float64{d, e, g})
		fan.Mean = []float64{a, d}
		_, err := RepairFan(fan, bound)
		if err != nil {
			if !errors.Is(err, ErrUnrepairableFan) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		for ti, row := range fan.Values {
			for i, v := range row {
				if !isFinite(v) {
					t.Fatalf("Values[%d][%d] = %v not finite after repair", ti, i, v)
				}
				if i > 0 && v < row[i-1] {
					t.Fatalf("row %d not monotone after repair: %v", ti, row)
				}
				if bound > 0 && v > bound {
					t.Fatalf("Values[%d][%d] = %v above bound %v", ti, i, v, bound)
				}
			}
		}
		for i, v := range fan.Mean {
			if !isFinite(v) {
				t.Fatalf("Mean[%d] = %v not finite after repair", i, v)
			}
		}
	})
}
