package scaler

import (
	"bytes"
	"testing"
	"time"

	"robustscale/internal/forecast"
)

func TestGuardSaveLoadRoundTrip(t *testing.T) {
	g := &Guard{
		Inner:  &ReactiveMax{Window: 4, Theta: 5},
		Config: GuardConfig{Theta: 5},
	}
	g.mode = ModeLastKnownGood
	g.lastReason = "forecaster error: injected"
	g.degradedRounds = 7
	g.lastGoodFan = &forecast.QuantileForecast{
		Levels: []float64{0.1, 0.5, 0.9},
		Mean:   []float64{10, 11},
		Values: [][]float64{{8, 10, 12}, {9, 11, 13}},
	}

	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2 := &Guard{Inner: &ReactiveMax{Window: 4, Theta: 5}, Config: GuardConfig{Theta: 5}}
	if err := g2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if g2.Mode() != ModeLastKnownGood || g2.LastReason() != g.lastReason || g2.DegradedRounds() != 7 {
		t.Fatalf("restored guard: mode=%v reason=%q rounds=%d", g2.Mode(), g2.LastReason(), g2.DegradedRounds())
	}
	fan := g2.LastFan() // last-known-good mode serves the retained fan
	if fan == nil || fan.Horizon() != 2 || fan.At(1, 0.9) != 13 {
		t.Fatalf("restored fan: %+v", fan)
	}
}

func TestGuardLoadRejectsBadMode(t *testing.T) {
	g := &Guard{Inner: &ReactiveMax{Window: 4, Theta: 5}}
	g.mode = ModeRepair
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the mode by saving a guard with an out-of-range value.
	g.mode = DegradationMode(42)
	var bad bytes.Buffer
	if err := g.Save(&bad); err != nil {
		t.Fatal(err)
	}
	g2 := &Guard{Inner: &ReactiveMax{Window: 4, Theta: 5}}
	if err := g2.Load(&bad); err == nil {
		t.Error("out-of-range mode should fail")
	}
	if err := g2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if g2.Mode() != ModeRepair {
		t.Fatalf("mode = %v, want repair", g2.Mode())
	}
}

func TestBreakerSaveLoadRoundTrip(t *testing.T) {
	base := time.Date(2024, 3, 1, 10, 0, 0, 0, time.UTC)
	b := &Breaker{Threshold: 2, Cooldown: time.Minute}
	b.Failure(base)
	b.Failure(base.Add(time.Second)) // second consecutive failure opens it
	if b.State() != BreakerOpen {
		t.Fatalf("setup: breaker %v, want open", b.State())
	}

	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b2 := &Breaker{Threshold: 2, Cooldown: time.Minute}
	if err := b2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if b2.State() != BreakerOpen {
		t.Fatalf("restored breaker %v, want open", b2.State())
	}
	// Cooldown arithmetic continues from the persisted open time: still
	// held before the cooldown, half-open probe after.
	if b2.Allow(base.Add(30 * time.Second)) {
		t.Error("restored breaker allowed an apply inside the cooldown")
	}
	if !b2.Allow(base.Add(2 * time.Minute)) {
		t.Error("restored breaker refused the half-open probe after cooldown")
	}
	if b2.State() != BreakerHalfOpen {
		t.Fatalf("after cooldown: %v, want half-open", b2.State())
	}
}

func TestBreakerLoadRejectsGarbage(t *testing.T) {
	b := &Breaker{}
	if err := b.Load(bytes.NewBufferString("junk")); err == nil {
		t.Error("garbage should fail")
	}
}
