package scaler

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"robustscale/internal/obs"
)

// ErrBreakerOpen is wrapped by Applier.ScaleTo when the circuit breaker
// is open: the control plane has failed repeatedly and the loop should
// hold its current allocation until the cooldown elapses.
var ErrBreakerOpen = errors.New("scaler: circuit breaker open")

// Apply-path instruments on the process-wide registry.
var (
	applyRetries = obs.Default.Counter(
		"robustscale_apply_retries_total",
		"Scale-apply attempts beyond the first, across all rounds.")
	applyFailures = obs.Default.Counter(
		"robustscale_apply_failures_total",
		"Individual scale-apply attempts that returned an error.")
	applyHolds = obs.Default.Counter(
		"robustscale_apply_holds_total",
		"Rounds that held the current allocation because the apply path was unavailable (breaker open or retries exhausted).")
	applyBackoffSeconds = obs.Default.Counter(
		"robustscale_apply_backoff_seconds_total",
		"Backoff delay accumulated between apply retries (virtual unless a Sleep hook is set).")
	breakerState = obs.Default.Gauge(
		"robustscale_apply_breaker_state",
		"Circuit breaker state of the apply path: 0 closed, 1 open, 2 half-open.")
)

// BackoffConfig shapes the exponential backoff between apply retries.
type BackoffConfig struct {
	// MaxAttempts bounds total tries per round, first included (default 3).
	MaxAttempts int
	// Base is the delay after the first failure (default 1s).
	Base time.Duration
	// Multiplier grows the delay per retry (default 2).
	Multiplier float64
	// Max caps the delay (default 30s).
	Max time.Duration
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Base <= 0 {
		c.Base = time.Second
	}
	if c.Multiplier < 1 {
		c.Multiplier = 2
	}
	if c.Max <= 0 {
		c.Max = 30 * time.Second
	}
	return c
}

// Delay returns the backoff before retry number retry (1-based: the
// delay between the first failure and the second attempt is Delay(1)).
func (c BackoffConfig) Delay(retry int) time.Duration {
	c = c.withDefaults()
	d := float64(c.Base)
	for i := 1; i < retry; i++ {
		d *= c.Multiplier
		if d >= float64(c.Max) {
			return c.Max
		}
	}
	if d > float64(c.Max) {
		return c.Max
	}
	return time.Duration(d)
}

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: applies flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: applies are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe apply is allowed; success closes the
	// breaker, failure reopens it.
	BreakerHalfOpen
)

// String returns the state label used in errors and documentation.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state-%d", int(s))
	}
}

// Breaker is a consecutive-failure circuit breaker for the apply path.
// Threshold consecutive round failures open it; after Cooldown it lets a
// half-open probe through, closing on success and reopening on failure.
// Safe for concurrent use.
type Breaker struct {
	// Threshold is the consecutive failure count that opens the breaker
	// (default 3).
	Threshold int
	// Cooldown is how long the breaker stays open before probing
	// (default 2 minutes).
	Cooldown time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 3
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 2 * time.Minute
	}
	return b.Cooldown
}

// Allow reports whether an apply may proceed at the given time, moving
// an open breaker to half-open once the cooldown has elapsed.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown() {
			b.setState(BreakerHalfOpen)
			return true
		}
		return false
	default:
		return true
	}
}

// Success records a successful apply round, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.failures = 0
	b.setState(BreakerClosed)
	b.mu.Unlock()
}

// Failure records a failed apply round at the given time; a half-open
// probe failure or the Threshold-th consecutive failure opens the
// breaker.
func (b *Breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold() {
		b.openedAt = now
		b.setState(BreakerOpen)
	}
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// setState transitions and mirrors the state into the gauge; callers
// hold b.mu.
func (b *Breaker) setState(s BreakerState) {
	b.state = s
	breakerState.Set(float64(s))
}

// Applier drives one scale action through retry-with-backoff and the
// circuit breaker. A nil Sleep (the default) makes backoff virtual —
// delays are accounted in metrics but not slept — which keeps replays
// and tests instant; the daemon can install a real sleep.
type Applier struct {
	// Apply performs the scale action; required.
	Apply func(target int) error
	// Backoff shapes the retry schedule (zero value = defaults).
	Backoff BackoffConfig
	// Breaker, when set, gates the whole round.
	Breaker *Breaker
	// Clock supplies the round's notion of now (virtual time in replays);
	// defaults to time.Now.
	Clock func() time.Time
	// Sleep, when set, is called with each backoff delay.
	Sleep func(time.Duration)
}

func (a *Applier) now() time.Time {
	if a.Clock != nil {
		return a.Clock()
	}
	return time.Now()
}

// ScaleTo attempts the scale action with retries. On success the breaker
// closes and nil is returned. When the breaker is open, or every attempt
// fails, an error is returned and the caller is expected to hold its
// current allocation — the safe degraded behavior; holds are counted in
// robustscale_apply_holds_total.
func (a *Applier) ScaleTo(target int) error {
	if a.Apply == nil {
		return fmt.Errorf("scaler: applier has no apply function")
	}
	now := a.now()
	if a.Breaker != nil && !a.Breaker.Allow(now) {
		applyHolds.Inc()
		return fmt.Errorf("%w: holding current allocation (scale to %d deferred)", ErrBreakerOpen, target)
	}
	cfg := a.Backoff.withDefaults()
	var lastErr error
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			applyRetries.Inc()
			d := cfg.Delay(attempt - 1)
			applyBackoffSeconds.Add(d.Seconds())
			if a.Sleep != nil {
				a.Sleep(d)
			}
		}
		if err := a.Apply(target); err != nil {
			lastErr = err
			applyFailures.Inc()
			continue
		}
		if a.Breaker != nil {
			a.Breaker.Success()
		}
		return nil
	}
	if a.Breaker != nil {
		a.Breaker.Failure(a.now())
	}
	applyHolds.Inc()
	obs.DefaultJournal.RecordAt(now, "apply-failed",
		fmt.Sprintf("scale to %d failed after %d attempts: %v", target, cfg.MaxAttempts, lastErr),
		map[string]float64{"target": float64(target), "attempts": float64(cfg.MaxAttempts)})
	return fmt.Errorf("scaler: scale to %d failed after %d attempts: %w", target, cfg.MaxAttempts, lastErr)
}
