package scaler

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBackoffDelay(t *testing.T) {
	c := BackoffConfig{Base: time.Second, Multiplier: 2, Max: 5 * time.Second}
	cases := map[int]time.Duration{
		1: time.Second,
		2: 2 * time.Second,
		3: 4 * time.Second,
		4: 5 * time.Second, // capped
		9: 5 * time.Second,
	}
	for retry, want := range cases {
		if got := c.Delay(retry); got != want {
			t.Errorf("Delay(%d) = %v, want %v", retry, got, want)
		}
	}
}

func TestApplierRetriesThenSucceeds(t *testing.T) {
	calls := 0
	a := &Applier{
		Apply: func(n int) error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		},
		Backoff: BackoffConfig{MaxAttempts: 3, Base: time.Millisecond},
	}
	if err := a.ScaleTo(4); err != nil {
		t.Fatalf("retry path should succeed: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestApplierExhaustsAndBreakerOpens(t *testing.T) {
	now := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	br := &Breaker{Threshold: 2, Cooldown: time.Hour}
	calls := 0
	a := &Applier{
		Apply:   func(int) error { calls++; return errors.New("down") },
		Backoff: BackoffConfig{MaxAttempts: 2, Base: time.Millisecond},
		Breaker: br,
		Clock:   clock,
	}
	if err := a.ScaleTo(3); err == nil {
		t.Fatal("exhausted retries should error")
	}
	if br.State() != BreakerClosed {
		t.Fatalf("one failed round, breaker = %v", br.State())
	}
	if err := a.ScaleTo(3); err == nil {
		t.Fatal("second round should also fail")
	}
	if br.State() != BreakerOpen {
		t.Fatalf("threshold reached, breaker = %v", br.State())
	}

	// Open breaker: the round is refused before touching the control plane.
	before := calls
	err := a.ScaleTo(3)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if calls != before {
		t.Error("open breaker still called apply")
	}

	// After the cooldown a half-open probe goes through; success closes.
	now = now.Add(2 * time.Hour)
	a.Apply = func(int) error { calls++; return nil }
	if err := a.ScaleTo(3); err != nil {
		t.Fatalf("half-open probe should succeed: %v", err)
	}
	if br.State() != BreakerClosed {
		t.Errorf("successful probe should close, state = %v", br.State())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	t0 := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	br := &Breaker{Threshold: 1, Cooldown: time.Minute}
	br.Failure(t0)
	if br.State() != BreakerOpen {
		t.Fatalf("state = %v", br.State())
	}
	if br.Allow(t0.Add(time.Second)) {
		t.Error("open breaker inside cooldown should refuse")
	}
	if !br.Allow(t0.Add(2 * time.Minute)) {
		t.Fatal("cooldown elapsed, probe should be allowed")
	}
	if br.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", br.State())
	}
	br.Failure(t0.Add(2 * time.Minute))
	if br.State() != BreakerOpen {
		t.Errorf("failed probe should reopen, state = %v", br.State())
	}
}

// TestBreakerConcurrent hammers one breaker from many goroutines; run
// under -race it proves the state machine is data-race free, and the
// final state must still be a valid one.
func TestBreakerConcurrent(t *testing.T) {
	br := &Breaker{Threshold: 3, Cooldown: time.Microsecond}
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				now := base.Add(time.Duration(g*200+i) * time.Millisecond)
				if br.Allow(now) {
					if (g+i)%3 == 0 {
						br.Failure(now)
					} else {
						br.Success()
					}
				}
				_ = br.State()
			}
		}(g)
	}
	wg.Wait()
	switch br.State() {
	case BreakerClosed, BreakerOpen, BreakerHalfOpen:
	default:
		t.Errorf("invalid final state %v", br.State())
	}
}

// TestApplierConcurrent drives one Applier+Breaker from many goroutines,
// as a daemon with overlapping apply paths would; -race is the assertion.
func TestApplierConcurrent(t *testing.T) {
	var mu sync.Mutex
	fleet := 1
	a := &Applier{
		Apply: func(n int) error {
			mu.Lock()
			defer mu.Unlock()
			if n%5 == 0 {
				return fmt.Errorf("rejected %d", n)
			}
			fleet = n
			return nil
		},
		Backoff: BackoffConfig{MaxAttempts: 2, Base: time.Millisecond},
		Breaker: &Breaker{Threshold: 4, Cooldown: time.Microsecond},
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 100; i++ {
				_ = a.ScaleTo(g + i)
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if fleet < 1 {
		t.Errorf("fleet = %d", fleet)
	}
}
