package scaler

import (
	"math"
	"testing"
	"time"

	"robustscale/internal/obs"
	"robustscale/internal/timeseries"
)

// benchSeries builds a diurnal workload long enough for a rolling
// evaluation without any model training cost, so the benchmark isolates
// the control loop itself (plan + grade) rather than the forecaster.
func benchSeries(n int) *timeseries.Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 500 + 300*math.Sin(2*math.Pi*float64(i)/144) + 40*math.Sin(float64(i))
	}
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	return timeseries.New("bench", start, 10*time.Minute, vals)
}

// BenchmarkEvaluateReactiveMax measures one full rolling evaluation of the
// cheapest strategy — the worst case for per-step observability overhead,
// since no forecaster cost amortizes the instrumentation.
func BenchmarkEvaluateReactiveMax(b *testing.B) {
	s := benchSeries(2016) // two weeks of 10-minute steps
	strat := &ReactiveMax{Window: 6, Theta: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(strat, s, EvalConfig{Theta: 100, Horizon: 1, Start: 144}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateReactiveMaxDecisions is the same rolling evaluation
// with decision capture enabled, measuring what the daemon pays for one
// queryable record per planning round over the disabled default above.
func BenchmarkEvaluateReactiveMaxDecisions(b *testing.B) {
	s := benchSeries(2016)
	strat := &ReactiveMax{Window: 6, Theta: 100}
	obs.DefaultDecisions.SetEnabled(true)
	defer func() {
		obs.DefaultDecisions.SetEnabled(false)
		obs.DefaultDecisions.Reset()
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(strat, s, EvalConfig{Theta: 100, Horizon: 1, Start: 144}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRobustPlan measures one planning round of the robust strategy
// with a stub forecaster, i.e. the quantile-path extraction plus the exact
// per-step optimization.
func BenchmarkRobustPlan(b *testing.B) {
	s := benchSeries(288)
	base := make([]float64, 72)
	spread := make([]float64, 72)
	for i := range base {
		base[i] = 600 + float64(i)
		spread[i] = 0.2
	}
	strat := &Robust{Forecaster: &fakeQF{name: "stub", Base: base, Spread: spread}, Tau: 0.9, Theta: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strat.Plan(s, 72); err != nil {
			b.Fatal(err)
		}
	}
}
