package scaler

import (
	"testing"
	"time"

	"robustscale/internal/forecast"
	"robustscale/internal/timeseries"
)

var t0 = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func series(vals ...float64) *timeseries.Series {
	return timeseries.New("test", t0, timeseries.DefaultStep, vals)
}

// fakeQF is a deterministic QuantileForecaster for strategy tests: the
// forecast at quantile tau for step t is Base[t] * (1 + Spread*(tau-0.5)).
type fakeQF struct {
	name   string
	Base   []float64
	Spread []float64 // per-step spread; wider means more "uncertain"
}

func (f *fakeQF) Name() string                 { return f.name }
func (f *fakeQF) Fit(*timeseries.Series) error { return nil }
func (f *fakeQF) Predict(_ *timeseries.Series, h int) ([]float64, error) {
	out := make([]float64, h)
	copy(out, f.Base)
	return out, nil
}

func (f *fakeQF) PredictQuantiles(_ *timeseries.Series, h int, levels []float64) (*forecast.QuantileForecast, error) {
	q := &forecast.QuantileForecast{
		Levels: levels,
		Values: make([][]float64, h),
		Mean:   make([]float64, h),
	}
	for t := 0; t < h; t++ {
		row := make([]float64, len(levels))
		for i, tau := range levels {
			row[i] = f.Base[t] * (1 + f.Spread[t]*(tau-0.5))
		}
		q.Values[t] = row
		q.Mean[t] = f.Base[t]
	}
	return q, nil
}

// fakePoint is a deterministic point forecaster.
type fakePoint struct {
	name string
	pred []float64
	errs error
}

func (f *fakePoint) Name() string                 { return f.name }
func (f *fakePoint) Fit(*timeseries.Series) error { return nil }
func (f *fakePoint) Predict(_ *timeseries.Series, h int) ([]float64, error) {
	if f.errs != nil {
		return nil, f.errs
	}
	out := make([]float64, h)
	copy(out, f.pred)
	return out, nil
}

func TestReactiveMax(t *testing.T) {
	s := series(10, 50, 30, 20)
	r := &ReactiveMax{Window: 3, Theta: 10}
	plan, err := r.Plan(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Max of last 3 = 50 -> 5 nodes, flat.
	if plan[0] != 5 || plan[1] != 5 {
		t.Errorf("plan = %v", plan)
	}
	if r.Name() != "reactive-max" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestReactiveMaxErrors(t *testing.T) {
	r := &ReactiveMax{Window: 3, Theta: 10}
	if _, err := r.Plan(series(), 1); err != ErrNoHistory {
		t.Errorf("err = %v", err)
	}
	bad := &ReactiveMax{Theta: 0}
	if _, err := bad.Plan(series(1), 1); err == nil {
		t.Error("zero theta should fail")
	}
}

func TestReactiveAvgWeightsRecent(t *testing.T) {
	// Recent low values should pull the weighted average down versus the
	// plain mean.
	s := series(100, 100, 100, 10, 10, 10)
	r := &ReactiveAvg{Window: 6, HalfLife: 2, Theta: 10}
	plan, err := r.Plan(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Plain mean = 55 -> 6 nodes; decayed mean < 55 -> fewer nodes.
	if plan[0] >= 6 {
		t.Errorf("plan = %v, want fewer nodes than plain mean", plan)
	}
	if plan[0] < 1 {
		t.Errorf("plan = %v", plan)
	}
}

func TestReactiveAvgDefaults(t *testing.T) {
	r := &ReactiveAvg{Theta: 10}
	plan, err := r.Plan(series(50, 50, 50, 50, 50, 50, 50), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan {
		if c != 5 {
			t.Errorf("plan = %v, want flat 5s", plan)
		}
	}
	if _, err := r.Plan(series(), 1); err != ErrNoHistory {
		t.Errorf("err = %v", err)
	}
}

func TestPredictivePlansFromForecast(t *testing.T) {
	p := &Predictive{Forecaster: &fakePoint{name: "fp", pred: []float64{15, 25, 35}}, Theta: 10}
	plan, err := p.Plan(series(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 4}
	for i, w := range want {
		if plan[i] != w {
			t.Errorf("plan = %v", plan)
		}
	}
	if p.Name() != "fp" {
		t.Errorf("Name = %q", p.Name())
	}
	bad := &Predictive{Forecaster: &fakePoint{}, Theta: 0}
	if _, err := bad.Plan(series(1), 1); err == nil {
		t.Error("zero theta should fail")
	}
}

func TestPredictiveObserveFeedsPadding(t *testing.T) {
	base := &fakePoint{name: "fp", pred: []float64{10, 10}}
	padded := forecast.NewPadded(base)
	p := &Predictive{Forecaster: padded, Theta: 10}
	if _, err := p.Plan(series(1), 2); err != nil {
		t.Fatal(err)
	}
	// Realized workload 50% above forecast.
	p.Observe([]float64{15, 15})
	if pad := padded.Pad(); pad <= 0.4 {
		t.Errorf("pad = %v, want ~0.5", pad)
	}
	// Next plan should allocate more.
	plan, err := p.Plan(series(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan[0] < 2 {
		t.Errorf("padded plan = %v, want >= 2 nodes", plan)
	}
}

func TestRobustUsesQuantileLevel(t *testing.T) {
	qf := &fakeQF{name: "fq", Base: []float64{100, 100}, Spread: []float64{0.5, 0.5}}
	// tau=0.9: forecast = 100*(1+0.5*0.4) = 120 -> 12 nodes at theta 10.
	r := &Robust{Forecaster: qf, Tau: 0.9, Theta: 10}
	plan, err := r.Plan(series(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan[0] != 12 || plan[1] != 12 {
		t.Errorf("plan = %v", plan)
	}
	if r.Name() != "fq-0.9" {
		t.Errorf("Name = %q", r.Name())
	}
	// Lower tau allocates less.
	low := &Robust{Forecaster: qf, Tau: 0.6, Theta: 10}
	lowPlan, err := low.Plan(series(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if lowPlan[0] >= plan[0] {
		t.Errorf("tau 0.6 plan %v should be below tau 0.9 plan %v", lowPlan, plan)
	}
}

func TestRobustValidation(t *testing.T) {
	qf := &fakeQF{Base: []float64{1}, Spread: []float64{0}}
	if _, err := (&Robust{Forecaster: qf, Tau: 0.9, Theta: 0}).Plan(series(1), 1); err == nil {
		t.Error("zero theta should fail")
	}
	if _, err := (&Robust{Forecaster: qf, Tau: 1.5, Theta: 10}).Plan(series(1), 1); err == nil {
		t.Error("tau out of range should fail")
	}
}

func TestAdaptiveSwitchesOnUncertainty(t *testing.T) {
	// Step 0 has a narrow fan (confident), step 1 a wide fan (uncertain).
	qf := &fakeQF{name: "fq", Base: []float64{100, 100}, Spread: []float64{0.05, 1.0}}
	a := &Adaptive{
		Forecaster: qf, Tau1: 0.6, Tau2: 0.95, Rho: 5, Theta: 10,
		Levels: forecast.ScalingLevels,
	}
	plan, err := a.Plan(series(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Confident step uses tau1=0.6: 100*(1+0.05*0.1)=100.5 -> 11 nodes.
	// Uncertain step uses tau2=0.95: 100*(1+1.0*0.45)=145 -> 15 nodes.
	if plan[0] >= plan[1] {
		t.Errorf("plan = %v, want uncertain step to allocate more", plan)
	}
	if plan[1] != 15 {
		t.Errorf("uncertain step = %d, want 15", plan[1])
	}
}

func TestAdaptiveValidation(t *testing.T) {
	qf := &fakeQF{Base: []float64{1}, Spread: []float64{0}}
	cases := []*Adaptive{
		{Forecaster: qf, Tau1: 0.6, Tau2: 0.9, Rho: 1, Theta: 0},
		{Forecaster: qf, Tau1: 0.9, Tau2: 0.6, Rho: 1, Theta: 10},
		{Forecaster: qf, Tau1: 0, Tau2: 0.9, Rho: 1, Theta: 10},
	}
	for i, a := range cases {
		if _, err := a.Plan(series(1), 1); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestUncertaintiesMatchSpread(t *testing.T) {
	qf := &fakeQF{Base: []float64{100, 100}, Spread: []float64{0.1, 0.8}}
	f, err := qf.PredictQuantiles(nil, 2, forecast.ScalingLevels)
	if err != nil {
		t.Fatal(err)
	}
	us, err := Uncertainties(f)
	if err != nil {
		t.Fatal(err)
	}
	if us[0] >= us[1] {
		t.Errorf("uncertainties = %v, want increasing with spread", us)
	}
	if us[0] < 0 {
		t.Errorf("U = %v", us[0])
	}
}

func TestStaircase(t *testing.T) {
	qf := &fakeQF{
		name:   "fq",
		Base:   []float64{100, 100, 100},
		Spread: []float64{0.02, 0.4, 1.2},
	}
	s := &Staircase{
		Forecaster: qf,
		Base:       0.5,
		Rungs: []StaircaseLevel{
			{Rho: 2, Tau: 0.8},
			{Rho: 10, Tau: 0.99},
		},
		Theta:  10,
		Levels: forecast.ScalingLevels,
	}
	plan, err := s.Plan(series(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(plan[0] <= plan[1] && plan[1] <= plan[2]) {
		t.Errorf("plan = %v, want non-decreasing with uncertainty", plan)
	}
	if plan[0] == plan[2] {
		t.Errorf("plan = %v, want different conservatism across rungs", plan)
	}
}

func TestStaircaseValidation(t *testing.T) {
	qf := &fakeQF{Base: []float64{1}, Spread: []float64{0}}
	bad := &Staircase{Forecaster: qf, Base: 0.5, Theta: 10,
		Rungs: []StaircaseLevel{{Rho: 5, Tau: 0.9}, {Rho: 1, Tau: 0.8}}}
	if _, err := bad.Plan(series(1), 1); err == nil {
		t.Error("unsorted rungs should fail")
	}
	if _, err := (&Staircase{Forecaster: qf, Base: 0, Theta: 10}).Plan(series(1), 1); err == nil {
		t.Error("bad base should fail")
	}
	if _, err := (&Staircase{Forecaster: qf, Base: 0.5, Theta: 0}).Plan(series(1), 1); err == nil {
		t.Error("zero theta should fail")
	}
}

func TestRateLimitedSmoothsPlan(t *testing.T) {
	qf := &fakeQF{name: "fq", Base: []float64{10, 200, 10, 200}, Spread: []float64{0, 0, 0, 0}}
	inner := &Robust{Forecaster: qf, Tau: 0.9, Theta: 10}
	rl := &RateLimited{Inner: inner, MaxDelta: 3}
	plan, err := rl.Plan(series(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1
	for i, c := range plan {
		d := c - prev
		if d < 0 {
			d = -d
		}
		if d > 3 {
			t.Errorf("step %d: delta %d exceeds limit (plan %v)", i, d, plan)
		}
		prev = c
	}
	if rl.Name() != "fq-0.9-ratelimit3" {
		t.Errorf("Name = %q", rl.Name())
	}
	// State carries across plans.
	plan2, err := rl.Plan(series(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	d := plan2[0] - plan[len(plan)-1]
	if d < 0 {
		d = -d
	}
	if d > 3 {
		t.Errorf("cross-plan delta %d exceeds limit", d)
	}
}

func TestEvaluateRolling(t *testing.T) {
	// Constant workload 50, theta 10 -> min 5 nodes.
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = 50
	}
	s := series(vals...)
	qf := &fakeQF{name: "fq", Base: repeat(50, 10), Spread: repeat(0, 10)}
	strat := &Robust{Forecaster: qf, Tau: 0.9, Theta: 10}
	res, err := Evaluate(strat, s, EvalConfig{Theta: 10, Horizon: 10, Start: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Steps != 20 {
		t.Errorf("steps = %d", res.Report.Steps)
	}
	if res.Report.UnderProvisionRate != 0 {
		t.Errorf("under rate = %v", res.Report.UnderProvisionRate)
	}
	if res.Report.OverProvisionRate != 0 {
		t.Errorf("over rate = %v (perfect forecast of constant load)", res.Report.OverProvisionRate)
	}
	if res.Strategy != "fq-0.9" {
		t.Errorf("strategy = %q", res.Strategy)
	}
}

func TestEvaluateObserverCalled(t *testing.T) {
	vals := make([]float64, 30)
	for i := range vals {
		vals[i] = 20
	}
	s := series(vals...)
	base := &fakePoint{name: "fp", pred: repeat(10, 10)}
	padded := forecast.NewPadded(base)
	strat := &Predictive{Forecaster: padded, Theta: 10}
	if _, err := Evaluate(strat, s, EvalConfig{Theta: 10, Horizon: 10, Start: 10}); err != nil {
		t.Fatal(err)
	}
	// The base forecaster predicts 10, actuals are 20: padding learned.
	if padded.Pad() <= 0 {
		t.Errorf("pad = %v, want positive after evaluation", padded.Pad())
	}
}

func TestEvaluateValidation(t *testing.T) {
	s := series(1, 2, 3)
	strat := &ReactiveMax{Theta: 10}
	if _, err := Evaluate(strat, s, EvalConfig{Theta: 10, Horizon: 0, Start: 1}); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, err := Evaluate(strat, s, EvalConfig{Theta: 10, Horizon: 1, Start: 0}); err == nil {
		t.Error("zero start should fail")
	}
	if _, err := Evaluate(strat, s, EvalConfig{Theta: 10, Horizon: 5, Start: 2}); err == nil {
		t.Error("too-short span should fail")
	}
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestFanProviderRetainsLastForecast checks that the quantile strategies
// keep the fan behind their most recent plan for online calibration.
func TestFanProviderRetainsLastForecast(t *testing.T) {
	base := []float64{100, 200, 300}
	spread := []float64{0.1, 0.1, 0.1}
	strategies := []Strategy{
		&Robust{Forecaster: &fakeQF{name: "f", Base: base, Spread: spread}, Tau: 0.9, Theta: 100},
		&Adaptive{Forecaster: &fakeQF{name: "f", Base: base, Spread: spread}, Tau1: 0.7, Tau2: 0.95, Rho: 1, Theta: 100},
		&Staircase{Forecaster: &fakeQF{name: "f", Base: base, Spread: spread}, Base: 0.7, Theta: 100},
	}
	for _, strat := range strategies {
		fp, ok := strat.(FanProvider)
		if !ok {
			t.Fatalf("%s does not implement FanProvider", strat.Name())
		}
		if fp.LastFan() != nil {
			t.Errorf("%s has a fan before the first plan", strat.Name())
		}
		if _, err := strat.Plan(series(50, 60, 70), 3); err != nil {
			t.Fatal(err)
		}
		fan := fp.LastFan()
		if fan == nil || fan.Horizon() != 3 {
			t.Errorf("%s retained fan = %+v, want 3-step fan", strat.Name(), fan)
		}
	}
}
