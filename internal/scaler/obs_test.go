package scaler

import (
	"strings"
	"testing"
	"time"

	"robustscale/internal/forecast"
	"robustscale/internal/obs"
	"robustscale/internal/timeseries"
)

func TestCountActions(t *testing.T) {
	cases := []struct {
		name        string
		prev        int
		allocations []int
		outs, ins   float64
	}{
		{"first step skipped when prev <= 0", 0, []int{5, 7, 3}, 1, 1},
		{"negative prev skipped too", -2, []int{5, 5}, 0, 0},
		{"prev counts against the first step", 2, []int{5, 7, 3}, 2, 1},
		{"constant allocations record nothing", 4, []int{4, 4, 4, 4}, 0, 0},
		{"empty plan records nothing", 3, nil, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			outs0, ins0 := scaleOut.Value(), scaleIn.Value()
			countActions(tc.prev, tc.allocations)
			if got := scaleOut.Value() - outs0; got != tc.outs {
				t.Errorf("scale-outs = %v, want %v", got, tc.outs)
			}
			if got := scaleIn.Value() - ins0; got != tc.ins {
				t.Errorf("scale-ins = %v, want %v", got, tc.ins)
			}
		})
	}
}

// enableDecisions turns decision capture on for one test; strategies
// skip record assembly entirely while obs.DefaultDecisions is disabled
// (the default), so every decision-asserting test opts in.
func enableDecisions(t *testing.T) {
	t.Helper()
	obs.DefaultDecisions.SetEnabled(true)
	t.Cleanup(func() { obs.DefaultDecisions.SetEnabled(false) })
}

func TestReactiveDecisions(t *testing.T) {
	enableDecisions(t)
	r := &ReactiveMax{Window: 3, Theta: 10}
	if r.LastDecision() != nil {
		t.Error("decision before first plan")
	}
	plan, err := r.Plan(series(10, 50, 30), 2)
	if err != nil {
		t.Fatal(err)
	}
	d := r.LastDecision()
	if d == nil {
		t.Fatal("no decision after plan")
	}
	if d.Strategy != "reactive-max" || d.Horizon != 2 || d.Theta != 10 {
		t.Errorf("decision = %+v", d)
	}
	if len(d.Quantile) != 2 || d.Quantile[0] != 50 || d.Quantile[1] != 50 {
		t.Errorf("drive = %v, want the window peak repeated", d.Quantile)
	}
	if len(d.Binding) != 2 || d.Binding[0] != obs.BindingDemand {
		t.Errorf("binding = %v", d.Binding)
	}
	if len(d.Nodes) != len(plan) || d.Nodes[0] != plan[0] {
		t.Errorf("decision nodes %v vs plan %v", d.Nodes, plan)
	}
}

func TestRobustDecision(t *testing.T) {
	enableDecisions(t)
	qf := &fakeQF{name: "fq", Base: []float64{100, 100}, Spread: []float64{0.2, 0.2}}
	r := &Robust{Forecaster: qf, Tau: 0.9, Theta: 10}
	if _, err := r.Plan(series(1), 2); err != nil {
		t.Fatal(err)
	}
	d := r.LastDecision()
	if d == nil {
		t.Fatal("no decision after plan")
	}
	if d.Tau1 != 0.9 || d.Tau2 != 0.9 {
		t.Errorf("tau pair = %g/%g, want 0.9/0.9", d.Tau1, d.Tau2)
	}
	for i, tau := range d.Tau {
		if tau != 0.9 {
			t.Errorf("tau[%d] = %g", i, tau)
		}
		// fakeQF: 100*(1+0.2*(0.9-0.5)) = 108.
		if d.Quantile[i] != 108 {
			t.Errorf("quantile[%d] = %g, want 108", i, d.Quantile[i])
		}
	}
}

func TestAdaptiveDecision(t *testing.T) {
	enableDecisions(t)
	// Step 0 confident, step 1 uncertain (same shape as
	// TestAdaptiveSwitchesOnUncertainty).
	qf := &fakeQF{name: "fq", Base: []float64{100, 100}, Spread: []float64{0.05, 1.0}}
	a := &Adaptive{
		Forecaster: qf, Tau1: 0.6, Tau2: 0.95, Rho: 5, Theta: 10,
		Levels: forecast.ScalingLevels,
	}
	if _, err := a.Plan(series(1), 2); err != nil {
		t.Fatal(err)
	}
	d := a.LastDecision()
	if d == nil {
		t.Fatal("no decision after plan")
	}
	if d.Tau1 != 0.6 || d.Tau2 != 0.95 || d.Rho != 5 {
		t.Errorf("tau1/tau2/rho = %g/%g/%g", d.Tau1, d.Tau2, d.Rho)
	}
	if len(d.U) != 2 || len(d.Tau) != 2 || len(d.Quantile) != 2 || len(d.Binding) != 2 {
		t.Fatalf("per-step slices = %d/%d/%d/%d entries", len(d.U), len(d.Tau), len(d.Quantile), len(d.Binding))
	}
	if d.Tau[0] != 0.6 || d.Tau[1] != 0.95 {
		t.Errorf("tau path = %v, want the uncertain step escalated", d.Tau)
	}
	if d.U[0] >= d.Rho || d.U[1] < d.Rho {
		t.Errorf("U = %v vs rho %g does not match the escalation", d.U, d.Rho)
	}
	// The audit line for the escalated step names the quantile and the
	// tau escalation.
	d.Step, d.PrevNodes = 100, 11
	line := d.Explain(101)
	for _, want := range []string{"q0.95(t+1)", "tau escalated to 0.95"} {
		if !strings.Contains(line, want) {
			t.Errorf("Explain = %q, missing %q", line, want)
		}
	}
}

func TestStaircaseDecision(t *testing.T) {
	enableDecisions(t)
	qf := &fakeQF{name: "fq", Base: []float64{100, 100}, Spread: []float64{0.05, 1.0}}
	s := &Staircase{
		Forecaster: qf, Base: 0.6, Theta: 10,
		Rungs:  []StaircaseLevel{{Rho: 3, Tau: 0.8}, {Rho: 8, Tau: 0.99}},
		Levels: forecast.ScalingLevels,
	}
	if _, err := s.Plan(series(1), 2); err != nil {
		t.Fatal(err)
	}
	d := s.LastDecision()
	if d == nil {
		t.Fatal("no decision after plan")
	}
	if d.Tau1 != 0.6 || d.Tau2 != 0.99 || d.Rho != 3 {
		t.Errorf("tau1/tau2/rho = %g/%g/%g, want base/top-rung/first-rung", d.Tau1, d.Tau2, d.Rho)
	}
}

func TestRateLimitedDecisionRelabels(t *testing.T) {
	enableDecisions(t)
	qf := &fakeQF{name: "fq", Base: []float64{100, 100, 100}, Spread: []float64{0, 0, 0}}
	r := &RateLimited{Inner: &Robust{Forecaster: qf, Tau: 0.9, Theta: 10}, MaxDelta: 2}
	plan, err := r.Plan(series(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	d := r.LastDecision()
	if d == nil {
		t.Fatal("no decision after plan")
	}
	if d.Strategy != r.Name() {
		t.Errorf("strategy = %q, want %q", d.Strategy, r.Name())
	}
	if len(d.Nodes) != len(plan) || d.Nodes[0] != plan[0] {
		t.Errorf("decision nodes %v vs plan %v", d.Nodes, plan)
	}
	// The inner plan wants 10 nodes immediately; from 1 node with
	// MaxDelta 2 the constrained plan cannot reach it, so the overridden
	// steps carry the rate-limit binding.
	var limited int
	for _, b := range d.Binding {
		if b == obs.BindingRateLimit {
			limited++
		}
	}
	if limited == 0 {
		t.Errorf("binding = %v, want rate-limit labels on overridden steps", d.Binding)
	}
	if line := d.Explain(0); !strings.Contains(line, "[binding: rate-limit]") {
		t.Errorf("Explain = %q", line)
	}
}

func TestRecordDecisionStampsContext(t *testing.T) {
	enableDecisions(t)
	obs.DefaultDecisions.Reset()
	defer obs.DefaultDecisions.Reset()

	r := &ReactiveMax{Window: 3, Theta: 10}
	plan, err := r.Plan(series(10, 50, 30), 2)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	RecordDecision(r, 240, at, 3, plan)

	d, ok := obs.DefaultDecisions.Latest()
	if !ok {
		t.Fatal("nothing recorded")
	}
	if d.Step != 240 || !d.Time.Equal(at) || d.PrevNodes != 3 || d.Delta != plan[0]-3 {
		t.Errorf("stamped decision = %+v", d)
	}
	if !d.Covers(241) || d.Covers(242) {
		t.Errorf("coverage of %+v wrong", d)
	}

	// A strategy without a decision record is a silent no-op.
	before := obs.DefaultDecisions.Total()
	RecordDecision(decisionless{}, 0, at, 1, []int{1})
	if obs.DefaultDecisions.Total() != before {
		t.Error("decisionless strategy recorded something")
	}
}

// decisionless is a Strategy that does not provide decisions.
type decisionless struct{}

func (decisionless) Name() string { return "none" }
func (decisionless) Plan(*timeseries.Series, int) ([]int, error) {
	return nil, nil
}

func TestEvaluateRecordsDecisions(t *testing.T) {
	enableDecisions(t)
	obs.DefaultDecisions.Reset()
	defer obs.DefaultDecisions.Reset()

	s := series(10, 20, 30, 40, 50, 60, 70, 80)
	r := &ReactiveMax{Window: 2, Theta: 10}
	if _, err := Evaluate(r, s, EvalConfig{Theta: 10, Horizon: 2, Start: 2}); err != nil {
		t.Fatal(err)
	}
	ds := obs.DefaultDecisions.Decisions()
	if len(ds) != 3 {
		t.Fatalf("recorded %d decisions, want 3 rounds", len(ds))
	}
	if ds[0].Step != 2 || ds[1].Step != 4 || ds[2].Step != 6 {
		t.Errorf("steps = %d/%d/%d", ds[0].Step, ds[1].Step, ds[2].Step)
	}
	if ds[0].PrevNodes != 0 {
		t.Errorf("first round prev = %d, want 0", ds[0].PrevNodes)
	}
	// Each later round starts from the previous round's final allocation.
	for i := 1; i < len(ds); i++ {
		prevPlan := ds[i-1].Nodes
		if ds[i].PrevNodes != prevPlan[len(prevPlan)-1] {
			t.Errorf("round %d prev = %d, want %d", i, ds[i].PrevNodes, prevPlan[len(prevPlan)-1])
		}
	}
	if !ds[0].Time.Equal(s.TimeAt(2)) {
		t.Errorf("round 0 time = %v, want %v", ds[0].Time, s.TimeAt(2))
	}
}

func TestEvaluateTenantLabelling(t *testing.T) {
	enableDecisions(t)
	obs.DefaultDecisions.Reset()
	defer obs.DefaultDecisions.Reset()

	s := series(10, 20, 30, 40, 50, 60, 70, 80)
	// An unset tenant resolves to the default label.
	if _, err := Evaluate(&ReactiveMax{Window: 2, Theta: 10}, s, EvalConfig{Theta: 10, Horizon: 2, Start: 2}); err != nil {
		t.Fatal(err)
	}
	// A fleet member stamps its id on every record of its rounds.
	if _, err := Evaluate(&ReactiveMax{Window: 2, Theta: 10}, s, EvalConfig{Theta: 10, Horizon: 2, Start: 2, Tenant: "tenant-0042"}); err != nil {
		t.Fatal(err)
	}
	for _, d := range obs.DefaultDecisions.Decisions()[:3] {
		if d.Tenant != obs.DefaultTenant {
			t.Errorf("default-run decision tenant = %q, want %q", d.Tenant, obs.DefaultTenant)
		}
	}
	got := obs.DefaultDecisions.FilterTenant("tenant-0042", "", 0, -1)
	if len(got) != 3 {
		t.Fatalf("FilterTenant returned %d decisions, want 3", len(got))
	}
	for _, d := range got {
		if d.Tenant != "tenant-0042" {
			t.Errorf("decision tenant = %q", d.Tenant)
		}
	}
}
