package scaler

import (
	"math"
	"testing"
	"time"

	"robustscale/internal/forecast"
	"robustscale/internal/timeseries"
)

// fastpathSeries is a diurnal workload with enough history to fit the
// real forecasters the fast path specializes for.
func fastpathSeries(n int) *timeseries.Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 60 + 25*math.Sin(2*math.Pi*float64(i)/24) + 3*math.Sin(float64(i))
	}
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	return timeseries.New("fastpath", start, 10*time.Minute, vals)
}

func smallWarmDeepAR(t testing.TB, train *timeseries.Series) *forecast.DeepAR {
	t.Helper()
	m := forecast.NewDeepAR(forecast.DeepARConfig{
		Context: 24, Hidden: 8, Epochs: 2, LR: 5e-3, Seed: 3,
		MaxWindows: 48, Samples: 20, TrainHorizon: 12,
	})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPlanIntoMatchesPlan drives twin strategy stacks — one through Plan,
// one through PlanInto over a sliding shared-array history — and requires
// identical plans every round. This is the strategy-level face of the
// warm/cold bit-identity contract.
func TestPlanIntoMatchesPlan(t *testing.T) {
	s := fastpathSeries(400)
	train := s.Slice(0, 300)

	cases := []struct {
		name string
		make func() Strategy
	}{
		{"reactive-max", func() Strategy { return &ReactiveMax{Window: 6, Theta: 10} }},
		{"reactive-avg", func() Strategy { return &ReactiveAvg{Window: 6, HalfLife: 6, Theta: 10} }},
		{"robust-deepar", func() Strategy {
			return &Robust{Forecaster: smallWarmDeepAR(t, train), Tau: 0.9, Theta: 10}
		}},
		{"adaptive-deepar", func() Strategy {
			return &Adaptive{Forecaster: smallWarmDeepAR(t, train), Tau1: 0.8, Tau2: 0.95, Rho: 5, Theta: 10}
		}},
		{"ratelimited-robust", func() Strategy {
			return &RateLimited{Inner: &Robust{Forecaster: smallWarmDeepAR(t, train), Tau: 0.9, Theta: 10}, MaxDelta: 1}
		}},
		{"guard-robust", func() Strategy {
			return &Guard{
				Inner:  &Robust{Forecaster: smallWarmDeepAR(t, train), Tau: 0.9, Theta: 10},
				Config: GuardConfig{Theta: 10, Tau: 0.9},
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			slow, fast := tc.make(), tc.make()
			ipp, ok := fast.(InPlacePlanner)
			if !ok {
				t.Fatalf("%s does not implement InPlacePlanner", fast.Name())
			}
			var buf []int
			for _, origin := range []int{310, 311, 312, 315, 318, 330} {
				hist := s.Slice(0, origin)
				want, err := slow.Plan(hist, 4)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ipp.PlanInto(hist, 4, buf)
				if err != nil {
					t.Fatal(err)
				}
				buf = got
				if len(want) != len(got) {
					t.Fatalf("origin %d: plan lengths %d vs %d", origin, len(want), len(got))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("origin %d step %d: Plan %d != PlanInto %d (%v vs %v)",
							origin, i, want[i], got[i], want, got)
					}
				}
			}
		})
	}
}

// TestPlanIntoMatchesPlanThroughDegradation exercises the guard's
// fallback ladder on the fast path: twin guarded stacks degrade when the
// health hook trips, recover when it clears, and agree with each other
// bit-for-bit the whole way — including the rounds right after recovery,
// where warm forecasters recondition.
func TestPlanIntoMatchesPlanThroughDegradation(t *testing.T) {
	s := fastpathSeries(400)
	train := s.Slice(0, 300)
	healthy := true
	health := func() (bool, string) {
		if healthy {
			return true, ""
		}
		return false, "forced degradation"
	}
	mk := func() *Guard {
		return &Guard{
			Inner:  &Robust{Forecaster: smallWarmDeepAR(t, train), Tau: 0.9, Theta: 10},
			Config: GuardConfig{Theta: 10, Tau: 0.9},
			Health: health,
		}
	}
	slow, fast := mk(), mk()
	var buf []int
	degraded := false
	for round, origin := 0, 310; origin < 330; round, origin = round+1, origin+1 {
		healthy = round < 5 || round >= 12
		hist := s.Slice(0, origin)
		want, err := slow.Plan(hist, 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fast.PlanInto(hist, 4, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = got
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("round %d (healthy=%v) step %d: Plan %d != PlanInto %d",
					round, healthy, i, want[i], got[i])
			}
		}
		if fast.Mode() != slow.Mode() {
			t.Fatalf("round %d: guard modes diverged: %v vs %v", round, slow.Mode(), fast.Mode())
		}
		if fast.Mode() != ModeNormal {
			degraded = true
		}
	}
	if !degraded {
		t.Fatal("health hook never degraded the guard; test exercised nothing")
	}
}

// TestPlanRoundAllocs is the allocation contract the CI gate enforces:
// a steady-state planning round is allocation-free for the reactive rules
// (bare and guard-wrapped) and stays within a small fixed budget for the
// warm DeepAR robust stack (pooled sample matrices, reused fan and plan).
func TestPlanRoundAllocs(t *testing.T) {
	s := fastpathSeries(400)
	hist := s.Slice(0, 350)

	check := func(name string, limit float64, ipp InPlacePlanner) {
		var buf []int
		var err error
		// Warm caches and scratch buffers are grown outside the
		// measurement, as in the daemon's steady state.
		for i := 0; i < 3; i++ {
			if buf, err = ipp.PlanInto(hist, 1, buf); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			if buf, err = ipp.PlanInto(hist, 1, buf); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > limit {
			t.Errorf("%s: %v allocs per steady-state round, budget %v", name, allocs, limit)
		}
	}

	check("reactive-max", 0, &ReactiveMax{Window: 6, Theta: 10})
	check("reactive-avg", 0, &ReactiveAvg{Window: 6, HalfLife: 6, Theta: 10})
	check("guard-reactive-max", 0, &Guard{
		Inner:  &ReactiveMax{Window: 6, Theta: 10},
		Config: GuardConfig{Theta: 10, Tau: 0.9},
	})
	train := s.Slice(0, 300)
	check("robust-deepar-warm", 24, &Robust{Forecaster: smallWarmDeepAR(t, train), Tau: 0.9, Theta: 10})
}
