package scaler

import (
	"time"

	"robustscale/internal/obs"
)

// Instruments registered on the process-wide registry. The stage
// histogram names the same family internal/ops registers (registration is
// idempotent by name), so forecast/optimize timings recorded here and the
// apply timings recorded by the daemon land in one histogram.
var (
	stageSeconds = obs.Default.HistogramVec(
		"robustscale_stage_duration_seconds",
		"Control-loop stage latency in seconds.",
		"stage", obs.LatencyBuckets)
	stageForecast = stageSeconds.With("forecast")
	stageOptimize = stageSeconds.With("optimize")

	// plansTotal counts planning rounds per strategy; plannedSteps the
	// allocation steps they committed.
	plansTotal = obs.Default.CounterVec(
		"robustscale_scaler_plans_total",
		"Planning rounds completed, by strategy.",
		"strategy")
	plannedSteps = obs.Default.Counter(
		"robustscale_scaler_planned_steps_total",
		"Allocation steps committed across all plans.")

	// scaleActions counts planned node-count changes by direction; the
	// evaluation harness and the daemon both feed it.
	scaleActions = obs.Default.CounterVec(
		"robustscale_scaler_scale_actions_total",
		"Node-count changes between consecutive allocation steps, by direction (out/in).",
		"direction")
	scaleOut = scaleActions.With("out")
	scaleIn  = scaleActions.With("in")

	// violationsTotal counts threshold breaches graded during evaluation
	// replays.
	violationsTotal = obs.Default.CounterVec(
		"robustscale_scaler_violations_total",
		"Threshold violations observed in evaluation replays, by strategy.",
		"strategy")

	// tenantViolations is the tenant-labelled companion of
	// violationsTotal: single-label vecs carry one dimension, so the
	// per-strategy and per-tenant views are separate families.
	tenantViolations = obs.Default.CounterVec(
		"robustscale_scaler_tenant_violations_total",
		"Threshold violations observed in evaluation replays, by tenant.",
		"tenant")
)

// countPlan records one completed planning round for a strategy.
func countPlan(name string, steps int) {
	plansTotal.With(name).Inc()
	plannedSteps.Add(float64(steps))
}

// countActions records the scale-out/in transitions of an allocation
// sequence, starting from the previous allocation prev (prev <= 0 skips
// the first comparison).
func countActions(prev int, allocations []int) {
	for _, a := range allocations {
		if prev > 0 {
			switch {
			case a > prev:
				scaleOut.Inc()
			case a < prev:
				scaleIn.Inc()
			}
		}
		prev = a
	}
}

// bindingFor labels which constraint pinned the allocation driven by one
// workload value: the demand ceiling, or the one-node floor when the
// value asked for nothing.
func bindingFor(value float64) string {
	if value <= 0 {
		return obs.BindingFloor
	}
	return obs.BindingDemand
}

// resizeFloats and resizeStrings recycle a scratch slice when its backing
// array is large enough, so per-round decision assembly settles to zero
// allocations on the hot reactive path (one planning round per step).
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeStrings(s []string, n int) []string {
	if cap(s) < n {
		return make([]string, n)
	}
	return s[:n]
}

// flatDecision assembles the decision record of a flat-allocation
// reactive strategy driven by a single window statistic, reusing the
// strategy's previous record (and its slices) as scratch.
func flatDecision(d *obs.Decision, name string, h int, theta, drive float64, plan []int) *obs.Decision {
	if d == nil {
		d = &obs.Decision{}
	}
	*d = obs.Decision{
		Strategy: name, Horizon: h, Theta: theta, Nodes: plan,
		Quantile: resizeFloats(d.Quantile, h), Binding: resizeStrings(d.Binding, h),
	}
	b := bindingFor(drive)
	for i := 0; i < h; i++ {
		d.Quantile[i] = drive
		d.Binding[i] = b
	}
	return d
}

// pathDecision assembles the decision record of a strategy that
// allocated along a per-step workload path (point or quantile forecast),
// reusing the previous record as scratch.
func pathDecision(d *obs.Decision, name string, theta float64, path []float64, plan []int) *obs.Decision {
	if d == nil {
		d = &obs.Decision{}
	}
	*d = obs.Decision{
		Strategy: name, Horizon: len(path), Theta: theta, Nodes: plan,
		Quantile: path, Binding: resizeStrings(d.Binding, len(path)),
	}
	for i, v := range path {
		d.Binding[i] = bindingFor(v)
	}
	return d
}

// RecordDecision stamps a strategy's last decision record with its round
// context — planning origin, virtual time, previous allocation — and
// records it on obs.DefaultDecisions under the default tenant. The
// evaluation harness and the daemon call it once per planning round;
// strategies without a decision record are a no-op.
func RecordDecision(strategy Strategy, origin int, at time.Time, prev int, plan []int) {
	RecordDecisionFor(strategy, obs.DefaultTenant, origin, at, prev, plan)
}

// RecordDecisionFor is RecordDecision with an explicit tenant label; the
// fleet controller stamps each tenant's rounds with its id.
func RecordDecisionFor(strategy Strategy, tenant string, origin int, at time.Time, prev int, plan []int) {
	RecordDecisionAdmitted(strategy, tenant, origin, at, prev, plan, 0, "")
}

// RecordDecisionAdmitted is RecordDecisionFor with the fleet admission
// outcome annotated: shed is how many nodes admission control clipped
// from the plan's first step, reason labels why (pool exhaustion,
// quarantine). The recorded Nodes are the plan as admitted, not as
// requested — the audit trail shows what actually ran plus how much was
// taken away.
func RecordDecisionAdmitted(strategy Strategy, tenant string, origin int, at time.Time, prev int, plan []int, shed int, reason string) {
	if !obs.DefaultDecisions.Enabled() {
		return
	}
	dp, ok := strategy.(DecisionProvider)
	if !ok {
		return
	}
	d := dp.LastDecision()
	if d == nil {
		return
	}
	rec := *d
	rec.Tenant = tenant
	rec.Step = origin
	rec.Time = at
	rec.PrevNodes = prev
	rec.Shed = shed
	rec.ShedReason = reason
	if len(plan) > 0 {
		rec.Delta = plan[0] - prev
		if shed > 0 {
			rec.Nodes = plan
		}
	}
	obs.DefaultDecisions.Record(rec)
}
