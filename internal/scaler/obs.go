package scaler

import (
	"robustscale/internal/obs"
)

// Instruments registered on the process-wide registry. The stage
// histogram names the same family internal/ops registers (registration is
// idempotent by name), so forecast/optimize timings recorded here and the
// apply timings recorded by the daemon land in one histogram.
var (
	stageSeconds = obs.Default.HistogramVec(
		"robustscale_stage_duration_seconds",
		"Control-loop stage latency in seconds.",
		"stage", obs.LatencyBuckets)
	stageForecast = stageSeconds.With("forecast")
	stageOptimize = stageSeconds.With("optimize")

	// plansTotal counts planning rounds per strategy; plannedSteps the
	// allocation steps they committed.
	plansTotal = obs.Default.CounterVec(
		"robustscale_scaler_plans_total",
		"Planning rounds completed, by strategy.",
		"strategy")
	plannedSteps = obs.Default.Counter(
		"robustscale_scaler_planned_steps_total",
		"Allocation steps committed across all plans.")

	// scaleActions counts planned node-count changes by direction; the
	// evaluation harness and the daemon both feed it.
	scaleActions = obs.Default.CounterVec(
		"robustscale_scaler_scale_actions_total",
		"Node-count changes between consecutive allocation steps, by direction (out/in).",
		"direction")
	scaleOut = scaleActions.With("out")
	scaleIn  = scaleActions.With("in")

	// violationsTotal counts threshold breaches graded during evaluation
	// replays.
	violationsTotal = obs.Default.CounterVec(
		"robustscale_scaler_violations_total",
		"Threshold violations observed in evaluation replays, by strategy.",
		"strategy")
)

// countPlan records one completed planning round for a strategy.
func countPlan(name string, steps int) {
	plansTotal.With(name).Inc()
	plannedSteps.Add(float64(steps))
}

// countActions records the scale-out/in transitions of an allocation
// sequence, starting from the previous allocation prev (prev <= 0 skips
// the first comparison).
func countActions(prev int, allocations []int) {
	for _, a := range allocations {
		if prev > 0 {
			switch {
			case a > prev:
				scaleOut.Inc()
			case a < prev:
				scaleIn.Inc()
			}
		}
		prev = a
	}
}
