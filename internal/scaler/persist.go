package scaler

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"robustscale/internal/forecast"
)

// Checkpoint images of the resilience state. A restarted control plane
// that forgot its guard position would re-enter normal mode on a
// degraded stack, and a forgotten open breaker would hammer a failing
// control plane — so both serialize alongside the models.

// guardState is the gob image of a Guard's ladder position.
type guardState struct {
	Mode           int
	LastReason     string
	DegradedRounds int
	// Last-known-good fan, flattened (empty when none is retained).
	FanLevels []float64
	FanMean   []float64
	FanValues [][]float64
}

// Save writes the guard's degradation-ladder position and retained
// last-known-good fan. Configuration (Inner, Config, Health, Fallback)
// is not persisted — the restarted process reconstructs it from flags
// and re-wires the same hooks.
func (g *Guard) Save(w io.Writer) error {
	st := guardState{
		Mode:           int(g.mode),
		LastReason:     g.lastReason,
		DegradedRounds: g.degradedRounds,
	}
	if g.lastGoodFan != nil {
		st.FanLevels = g.lastGoodFan.Levels
		st.FanMean = g.lastGoodFan.Mean
		st.FanValues = g.lastGoodFan.Values
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("scaler: saving guard: %w", err)
	}
	return nil
}

// Load restores the ladder position saved by Save into a freshly
// configured guard, re-exporting the degradation-mode gauge.
func (g *Guard) Load(r io.Reader) error {
	var st guardState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("scaler: loading guard: %w", err)
	}
	if st.Mode < int(ModeNormal) || st.Mode > int(ModeReactive) {
		return fmt.Errorf("scaler: guard snapshot has unknown mode %d", st.Mode)
	}
	g.mode = DegradationMode(st.Mode)
	g.lastReason = st.LastReason
	g.degradedRounds = st.DegradedRounds
	g.lastGoodFan = nil
	if len(st.FanValues) > 0 {
		g.lastGoodFan = &forecast.QuantileForecast{
			Levels: st.FanLevels,
			Mean:   st.FanMean,
			Values: st.FanValues,
		}
	}
	degradationMode.Set(float64(g.mode))
	return nil
}

// breakerState is the gob image of a Breaker's position. openedAt is
// stored as an absolute timestamp: the replay clock is virtual but
// monotone across restarts, so cooldown arithmetic stays correct.
type breakerSnapshot struct {
	State    int
	Failures int
	OpenedAt time.Time
}

// Save writes the breaker's position and consecutive-failure count.
func (b *Breaker) Save(w io.Writer) error {
	b.mu.Lock()
	st := breakerSnapshot{State: int(b.state), Failures: b.failures, OpenedAt: b.openedAt}
	b.mu.Unlock()
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("scaler: saving breaker: %w", err)
	}
	return nil
}

// Load restores a breaker saved by Save, re-exporting the state gauge.
func (b *Breaker) Load(r io.Reader) error {
	var st breakerSnapshot
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("scaler: loading breaker: %w", err)
	}
	if st.State < int(BreakerClosed) || st.State > int(BreakerHalfOpen) {
		return fmt.Errorf("scaler: breaker snapshot has unknown state %d", st.State)
	}
	b.mu.Lock()
	b.failures = st.Failures
	b.openedAt = st.OpenedAt
	b.setState(BreakerState(st.State))
	b.mu.Unlock()
	return nil
}
