package scaler

import (
	"testing"

	"robustscale/internal/timeseries"
)

// BenchmarkPlanRound measures one steady-state planning round (horizon 1,
// the high-frequency reactive cadence) per strategy stack. The history
// view is reused across iterations like the daemon's control loop, so the
// reactive sub-benchmarks are allocation-free and the deepar-warm one
// exercises the incremental forecaster rather than reconditioning.
//
// scripts/bench_plan_round.sh gates CI on these numbers: allocs/op must
// match BENCH_plan_round.json exactly, ns/op must stay within tolerance,
// and deepar-warm must beat deepar-cold by the committed ratio.
func BenchmarkPlanRound(b *testing.B) {
	s := fastpathSeries(400)
	train := s.Slice(0, 300)
	const origin = 350
	const h = 1

	run := func(b *testing.B, strat Strategy, fast bool) {
		view := &timeseries.Series{Name: s.Name, Start: s.Start, Step: s.Step}
		view.Values = s.Values[:origin]
		var buf []int
		var err error
		ipp, _ := strat.(InPlacePlanner)
		// Prime scratch buffers and warm caches outside the timed region,
		// as in the daemon's steady state.
		for i := 0; i < 2; i++ {
			if fast {
				buf, err = ipp.PlanInto(view, h, buf)
			} else {
				_, err = strat.Plan(view, h)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fast {
				if buf, err = ipp.PlanInto(view, h, buf); err != nil {
					b.Fatal(err)
				}
			} else {
				if _, err = strat.Plan(view, h); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	b.Run("reactive-max", func(b *testing.B) {
		run(b, &ReactiveMax{Window: 6, Theta: 10}, true)
	})
	b.Run("reactive-avg", func(b *testing.B) {
		run(b, &ReactiveAvg{Window: 6, HalfLife: 6, Theta: 10}, true)
	})
	b.Run("guard-reactive-max", func(b *testing.B) {
		run(b, &Guard{
			Inner:  &ReactiveMax{Window: 6, Theta: 10},
			Config: GuardConfig{Theta: 10, Tau: 0.9},
		}, true)
	})
	b.Run("deepar-cold", func(b *testing.B) {
		run(b, &Robust{Forecaster: smallWarmDeepAR(b, train), Tau: 0.9, Theta: 10}, false)
	})
	b.Run("deepar-warm", func(b *testing.B) {
		run(b, &Robust{Forecaster: smallWarmDeepAR(b, train), Tau: 0.9, Theta: 10}, true)
	})
}
