package scaler

import (
	"robustscale/internal/timeseries"
)

// InPlacePlanner is implemented by strategies whose steady-state planning
// round can run without per-round allocations: PlanInto writes the plan
// into dst (reallocating only when dst lacks capacity) and routes
// forecasts through the forecaster's warm path when it keeps one
// (forecast.IncrementalForecaster / forecast.IncrementalPointForecaster).
//
// PlanInto is bit-identical to Plan: the warm forecast paths reproduce
// their cold counterparts exactly, so a control loop may switch between
// the two entry points freely. The returned slice (and the strategy's
// LastDecision / LastFan scratch) is only valid until the next planning
// round; callers that retain a plan must copy it first.
type InPlacePlanner interface {
	Strategy
	// PlanInto returns integer node allocations for the next h steps,
	// reusing dst as the output buffer when it has capacity.
	PlanInto(history *timeseries.Series, h int, dst []int) ([]int, error)
}

// PlanRound runs one planning round through the fast path when the
// strategy supports it, falling back to Plan otherwise. dst is reused as
// the output buffer on the fast path.
func PlanRound(s Strategy, history *timeseries.Series, h int, dst []int) ([]int, error) {
	if ipp, ok := s.(InPlacePlanner); ok {
		return ipp.PlanInto(history, h, dst)
	}
	return s.Plan(history, h)
}

// resizeInts recycles an int scratch slice when its backing array is
// large enough, mirroring resizeFloats.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
