package scaler

import (
	"fmt"
	"math"
	"time"

	"robustscale/internal/forecast"
	"robustscale/internal/obs"
	"robustscale/internal/optimize"
	"robustscale/internal/timeseries"
)

// DegradationMode is the guard's position on the degradation ladder.
type DegradationMode int

// The degradation ladder, in engagement order. Each rung trusts less of
// the predictive stack than the one before it.
const (
	// ModeNormal: the primary strategy planned from a healthy fan.
	ModeNormal DegradationMode = iota
	// ModeRepair: the fan had defects (NaN/Inf, crossing, blow-up) that
	// were repaired; the plan was recomputed from the repaired fan.
	ModeRepair
	// ModeLastKnownGood: the forecaster errored or produced an
	// unrepairable fan; the plan reuses the last healthy fan.
	ModeLastKnownGood
	// ModeReactive: no healthy fan exists; a reactive threshold rule
	// plans from (sanitized) history alone.
	ModeReactive
)

// String returns the mode label used in metrics, journal events and
// decision records.
func (m DegradationMode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeRepair:
		return "repair"
	case ModeLastKnownGood:
		return "last-known-good"
	case ModeReactive:
		return "reactive"
	default:
		return fmt.Sprintf("mode-%d", int(m))
	}
}

// Guard instruments on the process-wide registry.
var (
	degradationMode = obs.Default.Gauge(
		"robustscale_degradation_mode",
		"Guard degradation mode of the latest planning round: 0 normal, 1 repair, 2 last-known-good, 3 reactive.")
	guardFallbacks = obs.Default.CounterVec(
		"robustscale_guard_fallbacks_total",
		"Guarded planning rounds that engaged a degradation mode, by mode.",
		"mode")
	guardFanRepairs = obs.Default.Counter(
		"robustscale_guard_fan_repairs_total",
		"Quantile-fan entries repaired by the guard (non-finite, crossing, or blown-up values).")
	guardTelemetryRepairs = obs.Default.Counter(
		"robustscale_guard_telemetry_repairs_total",
		"Non-finite history observations repaired by the guard before planning.")
)

// HealthFunc reports whether the predictive stack is trusted; a false
// verdict (e.g. a rolling-calibration coverage or wQL breach) makes the
// guard skip the primary strategy for the round. The reason is surfaced
// in journal events and decision records.
type HealthFunc func() (ok bool, reason string)

// GuardConfig tunes the guard's validation bounds and fallback planning.
type GuardConfig struct {
	// Theta is the per-node workload threshold; required.
	Theta float64
	// Tau is the quantile level used to replan from a repaired or
	// last-known-good fan (default 0.9).
	Tau float64
	// BlowupFactor bounds a sane forecast: quantile values above
	// BlowupFactor times the recent history maximum are clamped
	// (default 8; negative disables).
	BlowupFactor float64
	// HistoryWindow is the trailing step count the sanity bound is
	// computed over (default 288, two days at 10-minute steps).
	HistoryWindow int
	// FallbackWindow is the trailing window of the built-in reactive
	// fallback rule (default 6).
	FallbackWindow int
}

func (c GuardConfig) withDefaults() GuardConfig {
	if c.Tau == 0 {
		c.Tau = 0.9
	}
	if c.BlowupFactor == 0 {
		c.BlowupFactor = 8
	}
	if c.HistoryWindow <= 0 {
		c.HistoryWindow = 288
	}
	if c.FallbackWindow <= 0 {
		c.FallbackWindow = 6
	}
	return c
}

// Guard wraps a strategy with the resilience mechanisms of the
// degradation ladder: history sanitization, fan validation and repair,
// fallback to the last known-good fan, and finally a reactive threshold
// rule. With a healthy inner strategy the guard is transparent — the
// inner plan is returned bit-identical — so it can wrap every production
// control loop unconditionally.
//
// Guard implements Strategy, FanProvider, Observer and DecisionProvider.
// It is not safe for concurrent Plan calls (neither are the strategies it
// wraps).
type Guard struct {
	// Inner is the primary strategy.
	Inner Strategy
	// Config tunes validation bounds and fallback planning.
	Config GuardConfig
	// Health, when set, is consulted before each round; an unhealthy
	// verdict sends the round down the ladder without calling Inner.
	Health HealthFunc
	// Fallback overrides the built-in ReactiveMax fallback rule.
	Fallback Strategy
	// Clock stamps journal events (virtual time in replays); defaults to
	// time.Now.
	Clock func() time.Time

	mode         DegradationMode
	lastReason   string
	lastGoodFan  *forecast.QuantileForecast
	lastDecision *obs.Decision
	fallback     Strategy
	// degradedRounds counts rounds that engaged any fallback mode.
	degradedRounds int
}

// Name implements Strategy. The guard is transparent: it reports the
// inner strategy's name so dashboards and decision filters are unchanged
// by wrapping.
func (g *Guard) Name() string { return g.Inner.Name() }

// Mode returns the degradation mode of the most recent planning round.
func (g *Guard) Mode() DegradationMode { return g.mode }

// LastReason returns why the most recent degraded round fell back, or ""
// after a normal round.
func (g *Guard) LastReason() string {
	if g.mode == ModeNormal {
		return ""
	}
	return g.lastReason
}

// DegradedRounds returns how many planning rounds engaged any fallback.
func (g *Guard) DegradedRounds() int { return g.degradedRounds }

// LastFan implements FanProvider: the fan that actually drove the most
// recent plan — the inner strategy's (possibly repaired in place) fan in
// normal and repair modes, the retained fan in last-known-good mode, and
// nil in reactive mode.
func (g *Guard) LastFan() *forecast.QuantileForecast {
	switch g.mode {
	case ModeLastKnownGood:
		return g.lastGoodFan
	case ModeReactive:
		return nil
	default:
		if fp, ok := g.Inner.(FanProvider); ok {
			return fp.LastFan()
		}
		return nil
	}
}

// LastDecision implements DecisionProvider: the inner strategy's record
// after a normal round, the guard's degraded record otherwise.
func (g *Guard) LastDecision() *obs.Decision {
	if g.mode == ModeNormal {
		if dp, ok := g.Inner.(DecisionProvider); ok {
			return dp.LastDecision()
		}
		return nil
	}
	return g.lastDecision
}

// Observe implements Observer, forwarding realized workloads to the
// inner strategy (and the fallback rule, if it learns).
func (g *Guard) Observe(actual []float64) {
	if o, ok := g.Inner.(Observer); ok {
		o.Observe(actual)
	}
	if g.fallback != nil {
		if o, ok := g.fallback.(Observer); ok {
			o.Observe(actual)
		}
	}
}

// Plan implements Strategy: the guarded control loop of one round.
func (g *Guard) Plan(history *timeseries.Series, h int) ([]int, error) {
	return g.plan(history, h, nil, false)
}

// PlanInto implements InPlacePlanner: the inner strategy plans on its
// fast path (warm forecasts, reused buffers) while every rung of the
// guard ladder stays armed. A history sanitized onto a copy no longer
// shares its backing array with the live series, so warm forecasters
// self-invalidate and rebuild cold — bit-identical by the warm contract.
func (g *Guard) PlanInto(history *timeseries.Series, h int, dst []int) ([]int, error) {
	return g.plan(history, h, dst, true)
}

func (g *Guard) plan(history *timeseries.Series, h int, dst []int, fast bool) ([]int, error) {
	if g.Inner == nil {
		return nil, fmt.Errorf("scaler: guard has no inner strategy")
	}
	cfg := g.Config.withDefaults()
	if cfg.Theta <= 0 {
		return nil, fmt.Errorf("scaler: guard threshold %v", cfg.Theta)
	}
	if cfg.Tau <= 0 || cfg.Tau >= 1 {
		return nil, fmt.Errorf("scaler: guard quantile level %v outside (0, 1)", cfg.Tau)
	}
	hist := g.sanitizeHistory(history)
	if g.Health != nil {
		if ok, why := g.Health(); !ok {
			return g.fallbackPlan(hist, h, cfg, "calibration breach: "+why)
		}
	}
	var plan []int
	var err error
	if ipp, ok := g.Inner.(InPlacePlanner); fast && ok {
		plan, err = ipp.PlanInto(hist, h, dst)
	} else {
		plan, err = g.Inner.Plan(hist, h)
	}
	if err != nil {
		return g.fallbackPlan(hist, h, cfg, fmt.Sprintf("forecaster error: %v", err))
	}
	bound := g.sanityBound(hist, cfg)
	var fan *forecast.QuantileForecast
	if fp, ok := g.Inner.(FanProvider); ok {
		fan = fp.LastFan()
	}
	if fan == nil {
		// Reactive or point-forecast inner: nothing to repair but the
		// plan itself, clamped against the sanity bound.
		if clamps := clampPlan(plan, bound, cfg.Theta); clamps > 0 {
			guardFanRepairs.Add(float64(clamps))
			g.enterMode(ModeRepair, fmt.Sprintf("clamped %d blown-up plan steps", clamps))
			g.setPathDecision(cfg, nil, plan, h, ModeRepair)
			return plan, nil
		}
		g.recover()
		return plan, nil
	}
	repairs, err := RepairFan(fan, bound)
	if err != nil {
		return g.fallbackPlan(hist, h, cfg, fmt.Sprintf("unrepairable fan: %v", err))
	}
	if repairs > 0 {
		guardFanRepairs.Add(float64(repairs))
		plan, path, err := planFromFan(fan, h, cfg.Tau, cfg.Theta)
		if err != nil {
			return g.fallbackPlan(hist, h, cfg, fmt.Sprintf("replanning repaired fan: %v", err))
		}
		g.enterMode(ModeRepair, fmt.Sprintf("repaired %d fan entries", repairs))
		g.storeLastGood(fan)
		g.setPathDecision(cfg, path, plan, h, ModeRepair)
		return plan, nil
	}
	g.recover()
	g.storeLastGood(fan)
	return plan, nil
}

// fallbackPlan walks the remaining rungs of the ladder: last-known-good
// fan, then the reactive threshold rule.
func (g *Guard) fallbackPlan(hist *timeseries.Series, h int, cfg GuardConfig, why string) ([]int, error) {
	sp := obs.DefaultTracer.Start("guard-fallback")
	defer sp.End()
	if g.lastGoodFan != nil {
		plan, path, err := planFromFan(g.lastGoodFan, h, cfg.Tau, cfg.Theta)
		if err == nil {
			g.enterMode(ModeLastKnownGood, why)
			g.setPathDecision(cfg, path, plan, h, ModeLastKnownGood)
			return plan, nil
		}
		why = fmt.Sprintf("%s; last-known-good replan failed: %v", why, err)
	}
	fb := g.fallbackStrategy(cfg)
	plan, err := fb.Plan(hist, h)
	if err != nil {
		return nil, fmt.Errorf("scaler: guard fallback ladder exhausted (%s): %w", why, err)
	}
	g.enterMode(ModeReactive, why)
	g.setFallbackDecision(fb, plan, h, cfg)
	return plan, nil
}

// fallbackStrategy returns the reactive rung, building the default
// ReactiveMax rule on first use.
func (g *Guard) fallbackStrategy(cfg GuardConfig) Strategy {
	if g.Fallback != nil {
		return g.Fallback
	}
	if g.fallback == nil {
		g.fallback = &ReactiveMax{Window: cfg.FallbackWindow, Theta: cfg.Theta}
	}
	return g.fallback
}

// sanitizeHistory guarantees the history handed to any strategy is
// finite: non-finite observations (telemetry dropout) are repaired on a
// copy by carrying the last finite value forward (backward for a
// non-finite prefix). A fully finite history — the overwhelmingly common
// case — is passed through untouched, same pointer.
func (g *Guard) sanitizeHistory(s *timeseries.Series) *timeseries.Series {
	if s == nil {
		return s
	}
	bad := 0
	for _, v := range s.Values {
		if !isFinite(v) {
			bad++
		}
	}
	if bad == 0 {
		return s
	}
	out := s.Clone()
	last, haveLast := 0.0, false
	for i, v := range out.Values {
		if isFinite(v) {
			last, haveLast = v, true
			continue
		}
		if haveLast {
			out.Values[i] = last
		} else {
			out.Values[i] = 0 // non-finite prefix: fixed below if possible
		}
	}
	if !haveLast {
		// No finite observation at all; zeros make downstream strategies
		// hold the one-node floor instead of propagating NaN.
		guardTelemetryRepairs.Add(float64(bad))
		return out
	}
	// Back-fill a non-finite prefix from the first finite value.
	first := math.NaN()
	for _, v := range s.Values {
		if isFinite(v) {
			first = v
			break
		}
	}
	for i, v := range s.Values {
		if isFinite(v) {
			break
		}
		_ = v
		out.Values[i] = first
	}
	guardTelemetryRepairs.Add(float64(bad))
	obs.DefaultJournal.RecordAt(g.now(), "degraded",
		fmt.Sprintf("guard repaired %d non-finite telemetry observations", bad),
		map[string]float64{"repaired": float64(bad)})
	return out
}

// sanityBound returns the blow-up containment ceiling: BlowupFactor
// times the recent history maximum, or 0 (disabled) without usable
// history.
func (g *Guard) sanityBound(hist *timeseries.Series, cfg GuardConfig) float64 {
	if cfg.BlowupFactor < 0 || hist == nil || hist.Len() == 0 {
		return 0
	}
	start := hist.Len() - cfg.HistoryWindow
	if start < 0 {
		start = 0
	}
	peak := math.Inf(-1)
	for i := start; i < hist.Len(); i++ {
		if v := hist.At(i); v > peak {
			peak = v
		}
	}
	if !isFinite(peak) || peak <= 0 {
		return 0
	}
	return cfg.BlowupFactor * peak
}

// clampPlan bounds a fan-less plan by the allocation the sanity bound
// justifies, returning how many steps were clamped.
func clampPlan(plan []int, bound, theta float64) int {
	if bound <= 0 {
		return 0
	}
	maxAlloc := optimize.Allocate(bound, theta)
	clamps := 0
	for i, n := range plan {
		if n > maxAlloc {
			plan[i] = maxAlloc
			clamps++
		}
	}
	return clamps
}

// planFromFan replans the horizon from a fan's Tau-quantile path,
// repeating the fan's last step when the horizon outruns it.
func planFromFan(fan *forecast.QuantileForecast, h int, tau, theta float64) ([]int, []float64, error) {
	if fan.Horizon() == 0 {
		return nil, nil, fmt.Errorf("scaler: empty fan")
	}
	path := make([]float64, h)
	for t := 0; t < h; t++ {
		src := t
		if src >= fan.Horizon() {
			src = fan.Horizon() - 1
		}
		path[t] = fan.At(src, tau)
	}
	plan, err := optimize.Plan(path, theta)
	if err != nil {
		return nil, nil, err
	}
	return plan, path, nil
}

// storeLastGood retains a deep copy of a healthy (or repaired) fan for
// the last-known-good rung.
func (g *Guard) storeLastGood(fan *forecast.QuantileForecast) {
	if fan == nil || fan.Horizon() == 0 {
		return
	}
	c := &forecast.QuantileForecast{
		Levels: append([]float64(nil), fan.Levels...),
		Values: make([][]float64, len(fan.Values)),
		Mean:   append([]float64(nil), fan.Mean...),
	}
	for t, row := range fan.Values {
		c.Values[t] = append([]float64(nil), row...)
	}
	g.lastGoodFan = c
}

// enterMode records a degraded round in the gauge, counters and journal.
func (g *Guard) enterMode(mode DegradationMode, reason string) {
	g.mode = mode
	g.lastReason = reason
	degradationMode.Set(float64(mode))
	if mode == ModeNormal {
		return
	}
	g.degradedRounds++
	guardFallbacks.With(mode.String()).Inc()
	obs.DefaultJournal.RecordAt(g.now(), "degraded",
		fmt.Sprintf("guard engaged %s: %s", mode, reason),
		map[string]float64{"mode": float64(mode)})
}

// recover returns the guard to normal, journaling the transition when a
// degraded round preceded it.
func (g *Guard) recover() {
	if g.mode != ModeNormal {
		obs.DefaultJournal.RecordAt(g.now(), "recovered",
			fmt.Sprintf("guard recovered to normal from %s", g.mode),
			map[string]float64{"mode": 0})
	}
	g.mode = ModeNormal
	g.lastReason = ""
	g.lastDecision = nil
	degradationMode.Set(0)
}

func (g *Guard) now() time.Time {
	if g.Clock != nil {
		return g.Clock()
	}
	return time.Now()
}

// setPathDecision assembles the degraded decision record for a plan
// driven by a quantile path (repair and last-known-good modes). path may
// be nil for clamp-only repairs, leaving the inner record's audit fields
// in place.
func (g *Guard) setPathDecision(cfg GuardConfig, path []float64, plan []int, h int, mode DegradationMode) {
	if !obs.DefaultDecisions.Enabled() {
		g.lastDecision = nil
		return
	}
	if path == nil {
		// Clamp-only repair: reuse the inner record, overriding the plan.
		if dp, ok := g.Inner.(DecisionProvider); ok {
			if d := dp.LastDecision(); d != nil {
				copied := *d
				copied.Nodes = plan
				copied.Degraded = mode.String()
				copied.DegradedReason = g.lastReason
				g.lastDecision = &copied
				return
			}
		}
		g.lastDecision = &obs.Decision{
			Strategy: g.Name(), Horizon: h, Theta: cfg.Theta, Nodes: plan,
			Degraded: mode.String(), DegradedReason: g.lastReason,
		}
		return
	}
	d := pathDecision(g.lastDecision, g.Name(), cfg.Theta, path, plan)
	d.Tau = resizeFloats(d.Tau, h)
	for t := range d.Tau {
		d.Tau[t] = cfg.Tau
	}
	d.Tau1, d.Tau2 = cfg.Tau, cfg.Tau
	d.Degraded = mode.String()
	d.DegradedReason = g.lastReason
	g.lastDecision = d
}

// setFallbackDecision derives the reactive rung's decision record from
// the fallback strategy, annotated with the degradation context.
func (g *Guard) setFallbackDecision(fb Strategy, plan []int, h int, cfg GuardConfig) {
	if !obs.DefaultDecisions.Enabled() {
		g.lastDecision = nil
		return
	}
	var d *obs.Decision
	if dp, ok := fb.(DecisionProvider); ok {
		if inner := dp.LastDecision(); inner != nil {
			copied := *inner
			d = &copied
		}
	}
	if d == nil {
		d = &obs.Decision{Strategy: g.Name(), Horizon: h, Theta: cfg.Theta, Nodes: plan}
	}
	d.Strategy = g.Name()
	d.Degraded = ModeReactive.String()
	d.DegradedReason = g.lastReason
	g.lastDecision = d
}
