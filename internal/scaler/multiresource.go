package scaler

import (
	"fmt"

	"robustscale/internal/forecast"
	"robustscale/internal/optimize"
	"robustscale/internal/timeseries"
)

// ResourceSpec describes one resource dimension of a multi-resource
// scaling decision: its workload history, a trained quantile forecaster,
// the quantile level guiding its allocation and its per-node threshold.
type ResourceSpec struct {
	// Name labels the resource (e.g. "cpu").
	Name string
	// History is the resource's observed workload series up to the
	// planning origin.
	History *timeseries.Series
	// Forecaster produces this resource's quantile forecasts.
	Forecaster forecast.QuantileForecaster
	// Tau is the quantile level guiding this resource's allocation.
	Tau float64
	// Theta is this resource's per-node threshold.
	Theta float64
}

// MultiResourcePlan is the outcome of a joint scaling decision.
type MultiResourcePlan struct {
	// Allocations is the node count per step: the maximum across
	// resources of the per-resource demands.
	Allocations []int
	// PerResource maps each resource name to the allocation it alone
	// would have required; the binding resource at each step is the one
	// matching Allocations.
	PerResource map[string][]int
}

// Binding returns the name of the resource that determined the allocation
// at step t (the first one reaching the maximum, in spec order).
func (p *MultiResourcePlan) Binding(specs []ResourceSpec, t int) string {
	for _, spec := range specs {
		if p.PerResource[spec.Name][t] == p.Allocations[t] {
			return spec.Name
		}
	}
	return ""
}

// PlanMultiResource sizes the cluster so that every resource's threshold
// holds simultaneously (Definition 3 extended to multivariate workloads,
// which Equation 2 already anticipates): the per-step allocation is the
// maximum of the per-resource robust allocations.
func PlanMultiResource(specs []ResourceSpec, h int) (*MultiResourcePlan, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("scaler: no resources to plan")
	}
	if h <= 0 {
		return nil, fmt.Errorf("scaler: non-positive horizon %d", h)
	}
	plan := &MultiResourcePlan{
		Allocations: make([]int, h),
		PerResource: make(map[string][]int, len(specs)),
	}
	seen := map[string]bool{}
	for _, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("scaler: resource with empty name")
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("scaler: duplicate resource %q", spec.Name)
		}
		seen[spec.Name] = true
		if spec.Theta <= 0 {
			return nil, fmt.Errorf("scaler: resource %q threshold %v", spec.Name, spec.Theta)
		}
		if spec.Tau <= 0 || spec.Tau >= 1 {
			return nil, fmt.Errorf("scaler: resource %q quantile level %v", spec.Name, spec.Tau)
		}
		f, err := spec.Forecaster.PredictQuantiles(spec.History, h, []float64{spec.Tau})
		if err != nil {
			return nil, fmt.Errorf("scaler: forecasting %q: %w", spec.Name, err)
		}
		alloc := make([]int, h)
		for t := 0; t < h; t++ {
			alloc[t] = optimize.Allocate(f.Values[t][0], spec.Theta)
			if alloc[t] > plan.Allocations[t] {
				plan.Allocations[t] = alloc[t]
			}
		}
		plan.PerResource[spec.Name] = alloc
	}
	return plan, nil
}

// EvaluateMultiResource grades a joint plan against the realized workloads
// of every resource: a step is under-provisioned if any resource's
// threshold is breached, over-provisioned if the allocation exceeds the
// joint minimum.
func EvaluateMultiResource(specs []ResourceSpec, actuals map[string][]float64, allocations []int) (under, over float64, err error) {
	if len(allocations) == 0 {
		return 0, 0, fmt.Errorf("scaler: empty allocations")
	}
	for _, spec := range specs {
		a, ok := actuals[spec.Name]
		if !ok {
			return 0, 0, fmt.Errorf("scaler: no actuals for resource %q", spec.Name)
		}
		if len(a) != len(allocations) {
			return 0, 0, fmt.Errorf("scaler: resource %q has %d actuals for %d allocations", spec.Name, len(a), len(allocations))
		}
	}
	underCount, overCount := 0, 0
	for t, c := range allocations {
		if c < 1 {
			c = 1
		}
		violated := false
		jointMin := 1
		for _, spec := range specs {
			w := actuals[spec.Name][t]
			if w/float64(c) > spec.Theta {
				violated = true
			}
			if m := optimize.Allocate(w, spec.Theta); m > jointMin {
				jointMin = m
			}
		}
		if violated {
			underCount++
		} else if c > jointMin {
			overCount++
		}
	}
	n := float64(len(allocations))
	return float64(underCount) / n, float64(overCount) / n, nil
}
