// Package scaler implements the auto-scaling strategies compared in the
// paper's Section IV-C: reactive scalers in the style of Google Autopilot
// and the Kubernetes HPA, predictive scalers driven by point forecasts
// (with and without CloudScale-style padding), the robust quantile-driven
// strategy of Equation 6, and the uncertainty-aware adaptive strategy of
// Algorithm 1 together with its staircase extension.
package scaler

import (
	"errors"
	"fmt"
	"math"
	"time"

	"robustscale/internal/forecast"
	"robustscale/internal/metrics"
	"robustscale/internal/obs"
	"robustscale/internal/optimize"
	"robustscale/internal/timeseries"
)

// Strategy produces compute-node allocations for the next h steps given
// the workload history observed so far.
type Strategy interface {
	// Name identifies the strategy for reporting (e.g. "tft-0.9").
	Name() string
	// Plan returns integer node allocations for the next h steps.
	Plan(history *timeseries.Series, h int) ([]int, error)
}

// Observer is implemented by strategies that learn from realized outcomes
// (the padding enhancement). The evaluation harness feeds actuals back
// after each planning round.
type Observer interface {
	// Observe reports the realized workload for the steps of the most
	// recent plan.
	Observe(actual []float64)
}

// ErrNoHistory is returned when a reactive strategy has no observations to
// work from.
var ErrNoHistory = errors.New("scaler: empty workload history")

// FanProvider is implemented by strategies that retain the quantile fan
// behind their most recent plan, letting callers grade forecast
// calibration online (observed coverage vs nominal level, rolling wQL)
// without paying for a second forecast.
type FanProvider interface {
	// LastFan returns the quantile forecast of the most recent Plan call,
	// or nil before the first plan.
	LastFan() *forecast.QuantileForecast
}

// DecisionProvider is implemented by every strategy in this package: it
// retains the structured "why did we scale?" record behind the most
// recent plan — chosen quantile levels, per-step uncertainty, bounding
// quantile values and binding constraints. The evaluation harness and
// the daemon stamp the record with the planning origin and previous
// allocation (RecordDecision) and record it on obs.DefaultDecisions.
type DecisionProvider interface {
	// LastDecision returns the decision record of the most recent Plan
	// call, or nil before the first plan. The record (and its slices) is
	// reused as scratch by the next Plan call; callers that keep it must
	// record it first (obs.DefaultDecisions copies on Record).
	LastDecision() *obs.Decision
}

// ReactiveMax scales on the maximum workload inside a trailing window, the
// conservative variant of a moving-window reactive scaler.
type ReactiveMax struct {
	// Window is the number of trailing steps inspected.
	Window int
	// Theta is the per-node workload threshold.
	Theta float64

	lastDecision *obs.Decision
}

// Name implements Strategy.
func (r *ReactiveMax) Name() string { return "reactive-max" }

// LastDecision implements DecisionProvider.
func (r *ReactiveMax) LastDecision() *obs.Decision { return r.lastDecision }

// Plan implements Strategy: the window maximum drives a flat allocation
// for the whole horizon (a reactive scaler has no forward model).
func (r *ReactiveMax) Plan(history *timeseries.Series, h int) ([]int, error) {
	return r.PlanInto(history, h, nil)
}

// PlanInto implements InPlacePlanner: the window maximum is computed in
// place, so a steady-state round allocates nothing.
func (r *ReactiveMax) PlanInto(history *timeseries.Series, h int, dst []int) ([]int, error) {
	if history.Len() == 0 {
		return nil, ErrNoHistory
	}
	if r.Theta <= 0 {
		return nil, fmt.Errorf("scaler: reactive-max threshold %v", r.Theta)
	}
	window := r.Window
	if window <= 0 {
		window = 6
	}
	start := history.Len() - window
	if start < 0 {
		start = 0
	}
	peak := math.Inf(-1)
	for i := start; i < history.Len(); i++ {
		if v := history.At(i); v > peak {
			peak = v
		}
	}
	c := optimize.Allocate(peak, r.Theta)
	plan := resizeInts(dst, h)
	for i := range plan {
		plan[i] = c
	}
	if obs.DefaultDecisions.Enabled() {
		r.lastDecision = flatDecision(r.lastDecision, r.Name(), h, r.Theta, peak, plan)
	} else if r.lastDecision != nil {
		r.lastDecision = nil
	}
	return plan, nil
}

// ReactiveAvg scales on an exponentially weighted average of the trailing
// window, the Autopilot-style moving-window recommender. The paper sets
// the half-life to 6 intervals.
type ReactiveAvg struct {
	// Window is the number of trailing steps inspected.
	Window int
	// HalfLife is the decay half-life in steps.
	HalfLife float64
	// Theta is the per-node workload threshold.
	Theta float64

	lastDecision *obs.Decision
}

// Name implements Strategy.
func (r *ReactiveAvg) Name() string { return "reactive-avg" }

// LastDecision implements DecisionProvider.
func (r *ReactiveAvg) LastDecision() *obs.Decision { return r.lastDecision }

// Plan implements Strategy.
func (r *ReactiveAvg) Plan(history *timeseries.Series, h int) ([]int, error) {
	return r.PlanInto(history, h, nil)
}

// PlanInto implements InPlacePlanner: the weighted window average is
// computed in place, so a steady-state round allocates nothing.
func (r *ReactiveAvg) PlanInto(history *timeseries.Series, h int, dst []int) ([]int, error) {
	if history.Len() == 0 {
		return nil, ErrNoHistory
	}
	if r.Theta <= 0 {
		return nil, fmt.Errorf("scaler: reactive-avg threshold %v", r.Theta)
	}
	window := r.Window
	if window <= 0 {
		window = 6
	}
	half := r.HalfLife
	if half <= 0 {
		half = 6
	}
	start := history.Len() - window
	if start < 0 {
		start = 0
	}
	decay := math.Pow(0.5, 1/half)
	weight := 1.0
	sum, wsum := 0.0, 0.0
	// Most recent observation carries the largest weight.
	for i := history.Len() - 1; i >= start; i-- {
		sum += weight * history.At(i)
		wsum += weight
		weight *= decay
	}
	avg := sum / wsum
	c := optimize.Allocate(avg, r.Theta)
	plan := resizeInts(dst, h)
	for i := range plan {
		plan[i] = c
	}
	if obs.DefaultDecisions.Enabled() {
		r.lastDecision = flatDecision(r.lastDecision, r.Name(), h, r.Theta, avg, plan)
	} else if r.lastDecision != nil {
		r.lastDecision = nil
	}
	return plan, nil
}

// Predictive scales on a point forecast (Definition 3 with predicted
// workloads). With a *forecast.Padded base it becomes the padding-enhanced
// baseline; call Observe with realized workloads to feed the padding.
type Predictive struct {
	// Forecaster supplies point forecasts.
	Forecaster forecast.Forecaster
	// Theta is the per-node workload threshold.
	Theta float64

	lastPrediction []float64
	lastDecision   *obs.Decision
	cachedName     string
}

// Name implements Strategy. The name is derived from the forecaster once
// and cached so the hot planning path never re-formats it.
func (p *Predictive) Name() string {
	if p.cachedName == "" {
		p.cachedName = p.Forecaster.Name()
	}
	return p.cachedName
}

// LastDecision implements DecisionProvider.
func (p *Predictive) LastDecision() *obs.Decision { return p.lastDecision }

// Plan implements Strategy.
func (p *Predictive) Plan(history *timeseries.Series, h int) ([]int, error) {
	return p.plan(history, h, nil, false)
}

// PlanInto implements InPlacePlanner, routing the forecast through the
// forecaster's warm path when it keeps one.
func (p *Predictive) PlanInto(history *timeseries.Series, h int, dst []int) ([]int, error) {
	return p.plan(history, h, dst, true)
}

func (p *Predictive) plan(history *timeseries.Series, h int, dst []int, warm bool) ([]int, error) {
	if p.Theta <= 0 {
		return nil, fmt.Errorf("scaler: predictive threshold %v", p.Theta)
	}
	t0 := time.Now()
	sp := obs.DefaultTracer.Start("forecast")
	var pred []float64
	var err error
	if inc, ok := p.Forecaster.(forecast.IncrementalPointForecaster); warm && ok {
		pred, err = inc.PredictWarm(history, h)
	} else {
		pred, err = p.Forecaster.Predict(history, h)
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	stageForecast.ObserveSince(t0)
	p.lastPrediction = pred
	t0 = time.Now()
	sp = obs.DefaultTracer.Start("optimize")
	plan, err := optimize.PlanInto(pred, p.Theta, dst)
	sp.End()
	if err != nil {
		return nil, err
	}
	stageOptimize.ObserveSince(t0)
	if obs.DefaultDecisions.Enabled() {
		p.lastDecision = pathDecision(p.lastDecision, p.Name(), p.Theta, pred, plan)
	} else if p.lastDecision != nil {
		p.lastDecision = nil
	}
	countPlan(p.Name(), h)
	return plan, nil
}

// Observe implements Observer: when the wrapped forecaster supports
// padding, realized workloads update its under-estimation statistics.
func (p *Predictive) Observe(actual []float64) {
	if padded, ok := p.Forecaster.(*forecast.Padded); ok && p.lastPrediction != nil {
		padded.Observe(actual, p.lastPrediction)
	}
}

// Robust is the paper's core contribution (Equation 6): allocations are
// driven by a single quantile forecast at level Tau, turning the robust
// optimization into a deterministic per-step problem.
type Robust struct {
	// Forecaster supplies quantile forecasts.
	Forecaster forecast.QuantileForecaster
	// Tau is the quantile level guiding allocation (e.g. 0.9).
	Tau float64
	// Theta is the per-node workload threshold.
	Theta float64

	lastFan      *forecast.QuantileForecast
	lastDecision *obs.Decision
	cachedName   string
	tauLevels    []float64
	pathBuf      []float64
}

// LastFan implements FanProvider.
func (r *Robust) LastFan() *forecast.QuantileForecast { return r.lastFan }

// LastDecision implements DecisionProvider.
func (r *Robust) LastDecision() *obs.Decision { return r.lastDecision }

// Name implements Strategy. The name is formatted once and cached so the
// hot planning path never re-formats it.
func (r *Robust) Name() string {
	if r.cachedName == "" {
		r.cachedName = fmt.Sprintf("%s-%g", r.Forecaster.Name(), r.Tau)
	}
	return r.cachedName
}

// Plan implements Strategy.
func (r *Robust) Plan(history *timeseries.Series, h int) ([]int, error) {
	return r.plan(history, h, nil, false)
}

// PlanInto implements InPlacePlanner, routing the forecast through the
// forecaster's warm path when it keeps one.
func (r *Robust) PlanInto(history *timeseries.Series, h int, dst []int) ([]int, error) {
	return r.plan(history, h, dst, true)
}

func (r *Robust) plan(history *timeseries.Series, h int, dst []int, warm bool) ([]int, error) {
	if r.Theta <= 0 {
		return nil, fmt.Errorf("scaler: robust threshold %v", r.Theta)
	}
	if r.Tau <= 0 || r.Tau >= 1 {
		return nil, fmt.Errorf("scaler: robust quantile level %v outside (0, 1)", r.Tau)
	}
	if len(r.tauLevels) != 1 || r.tauLevels[0] != r.Tau {
		r.tauLevels = []float64{r.Tau}
	}
	t0 := time.Now()
	sp := obs.DefaultTracer.Start("forecast")
	f, err := predictQuantiles(r.Forecaster, warm, history, h, r.tauLevels)
	sp.End()
	if err != nil {
		return nil, err
	}
	stageForecast.ObserveSince(t0)
	r.lastFan = f
	path := resizeFloats(r.pathBuf, h)
	r.pathBuf = path
	for t := 0; t < h; t++ {
		path[t] = f.Values[t][0]
	}
	t0 = time.Now()
	sp = obs.DefaultTracer.Start("optimize")
	plan, err := optimize.PlanInto(path, r.Theta, dst)
	sp.End()
	if err != nil {
		return nil, err
	}
	stageOptimize.ObserveSince(t0)
	if obs.DefaultDecisions.Enabled() {
		d := pathDecision(r.lastDecision, r.Name(), r.Theta, path, plan)
		d.Tau = resizeFloats(d.Tau, h)
		for t := range d.Tau {
			d.Tau[t] = r.Tau
		}
		d.Tau1, d.Tau2 = r.Tau, r.Tau
		r.lastDecision = d
	} else if r.lastDecision != nil {
		r.lastDecision = nil
	}
	countPlan(r.Name(), h)
	return plan, nil
}

// predictQuantiles dispatches a quantile forecast through the warm path
// when the round allows it and the forecaster keeps warm state; the two
// paths are bit-identical by the IncrementalForecaster contract.
func predictQuantiles(qf forecast.QuantileForecaster, warm bool, history *timeseries.Series, h int, levels []float64) (*forecast.QuantileForecast, error) {
	if warm {
		if inc, ok := qf.(forecast.IncrementalForecaster); ok {
			return inc.PredictQuantilesWarm(history, h, levels)
		}
	}
	return qf.PredictQuantiles(history, h, levels)
}

// Adaptive is the uncertainty-aware adaptive strategy of Algorithm 1: at
// each step the uncertainty U of the quantile fan decides between the
// optimistic level Tau1 and the conservative level Tau2.
type Adaptive struct {
	// Forecaster supplies quantile forecasts.
	Forecaster forecast.QuantileForecaster
	// Tau1 < Tau2 are the optional quantile levels.
	Tau1, Tau2 float64
	// Rho is the uncertainty threshold: U >= Rho selects Tau2.
	Rho float64
	// Theta is the per-node workload threshold.
	Theta float64
	// Levels is the quantile grid used to compute U; it must include 0.5.
	// Defaults to forecast.ScalingLevels.
	Levels []float64

	lastFan      *forecast.QuantileForecast
	lastDecision *obs.Decision
	cachedName   string
	us           []float64
	taus         []float64
	qs           []float64
	binding      []string
}

// LastFan implements FanProvider.
func (a *Adaptive) LastFan() *forecast.QuantileForecast { return a.lastFan }

// LastDecision implements DecisionProvider.
func (a *Adaptive) LastDecision() *obs.Decision { return a.lastDecision }

// Name implements Strategy. The name is formatted once and cached so the
// hot planning path never re-formats it.
func (a *Adaptive) Name() string {
	if a.cachedName == "" {
		a.cachedName = fmt.Sprintf("%s-adaptive-%g/%g", a.Forecaster.Name(), a.Tau1, a.Tau2)
	}
	return a.cachedName
}

// Plan implements Strategy (Algorithm 1).
func (a *Adaptive) Plan(history *timeseries.Series, h int) ([]int, error) {
	return a.plan(history, h, nil, false)
}

// PlanInto implements InPlacePlanner, routing the forecast through the
// forecaster's warm path when it keeps one.
func (a *Adaptive) PlanInto(history *timeseries.Series, h int, dst []int) ([]int, error) {
	return a.plan(history, h, dst, true)
}

func (a *Adaptive) plan(history *timeseries.Series, h int, dst []int, warm bool) ([]int, error) {
	if err := a.validate(); err != nil {
		return nil, err
	}
	levels := a.Levels
	if len(levels) == 0 {
		levels = forecast.ScalingLevels
	}
	t0 := time.Now()
	sp := obs.DefaultTracer.Start("forecast")
	f, err := predictQuantiles(a.Forecaster, warm, history, h, levels)
	sp.End()
	if err != nil {
		return nil, err
	}
	stageForecast.ObserveSince(t0)
	a.lastFan = f
	t0 = time.Now()
	sp = obs.DefaultTracer.Start("optimize")
	a.us, err = uncertaintiesInto(f, a.us)
	if err != nil {
		sp.End()
		return nil, err
	}
	us := a.us
	out := resizeInts(dst, h)
	a.taus = resizeFloats(a.taus, h)
	a.qs = resizeFloats(a.qs, h)
	a.binding = resizeStrings(a.binding, h)
	for t := 0; t < h; t++ {
		tau := a.Tau1
		if us[t] >= a.Rho {
			tau = a.Tau2
		}
		qv := f.At(t, tau)
		out[t] = optimize.Allocate(qv, a.Theta)
		a.taus[t], a.qs[t], a.binding[t] = tau, qv, bindingFor(qv)
	}
	sp.End()
	stageOptimize.ObserveSince(t0)
	if obs.DefaultDecisions.Enabled() {
		d := a.lastDecision
		if d == nil {
			d = &obs.Decision{}
		}
		*d = obs.Decision{
			Strategy: a.Name(), Horizon: h, Theta: a.Theta, Nodes: out,
			U: us, Tau: a.taus, Tau1: a.Tau1, Tau2: a.Tau2, Rho: a.Rho,
			Quantile: a.qs, Binding: a.binding,
		}
		a.lastDecision = d
	} else if a.lastDecision != nil {
		a.lastDecision = nil
	}
	countPlan(a.Name(), h)
	return out, nil
}

func (a *Adaptive) validate() error {
	if a.Theta <= 0 {
		return fmt.Errorf("scaler: adaptive threshold %v", a.Theta)
	}
	if a.Tau1 <= 0 || a.Tau2 >= 1 || a.Tau1 > a.Tau2 {
		return fmt.Errorf("scaler: adaptive quantile levels %v/%v invalid", a.Tau1, a.Tau2)
	}
	return nil
}

// Uncertainties computes the per-step uncertainty metric U (Equation 8)
// of a quantile forecast, measuring each level against the median.
func Uncertainties(f *forecast.QuantileForecast) ([]float64, error) {
	return uncertaintiesInto(f, nil)
}

// uncertaintiesInto is Uncertainties writing into a recycled scratch
// slice.
func uncertaintiesInto(f *forecast.QuantileForecast, dst []float64) ([]float64, error) {
	out := resizeFloats(dst, f.Horizon())
	for t := range out {
		median := f.At(t, 0.5)
		u, err := metrics.Uncertainty(f.Levels, f.Step(t), median)
		if err != nil {
			return nil, err
		}
		out[t] = u
	}
	return out, nil
}

// StaircaseLevel is one rung of the staircase extension: when the
// uncertainty reaches Rho, scale at quantile level Tau.
type StaircaseLevel struct {
	Rho float64
	Tau float64
}

// Staircase generalizes Adaptive beyond two levels: a sorted ladder of
// uncertainty thresholds maps increasing uncertainty to increasingly
// conservative quantile levels, the "staircase-like range of options" the
// paper describes.
type Staircase struct {
	// Forecaster supplies quantile forecasts.
	Forecaster forecast.QuantileForecaster
	// Base is the quantile level used below the first rung.
	Base float64
	// Rungs must be sorted by ascending Rho.
	Rungs []StaircaseLevel
	// Theta is the per-node workload threshold.
	Theta float64
	// Levels is the quantile grid used to compute U (must include 0.5);
	// defaults to forecast.ScalingLevels.
	Levels []float64

	lastFan      *forecast.QuantileForecast
	lastDecision *obs.Decision
	cachedName   string
	us           []float64
	taus         []float64
	qs           []float64
	binding      []string
}

// LastFan implements FanProvider.
func (s *Staircase) LastFan() *forecast.QuantileForecast { return s.lastFan }

// LastDecision implements DecisionProvider.
func (s *Staircase) LastDecision() *obs.Decision { return s.lastDecision }

// Name implements Strategy. The name is formatted once and cached so the
// hot planning path never re-formats it.
func (s *Staircase) Name() string {
	if s.cachedName == "" {
		s.cachedName = fmt.Sprintf("%s-staircase-%d", s.Forecaster.Name(), len(s.Rungs))
	}
	return s.cachedName
}

// Plan implements Strategy.
func (s *Staircase) Plan(history *timeseries.Series, h int) ([]int, error) {
	return s.plan(history, h, nil, false)
}

// PlanInto implements InPlacePlanner, routing the forecast through the
// forecaster's warm path when it keeps one.
func (s *Staircase) PlanInto(history *timeseries.Series, h int, dst []int) ([]int, error) {
	return s.plan(history, h, dst, true)
}

func (s *Staircase) plan(history *timeseries.Series, h int, dst []int, warm bool) ([]int, error) {
	if s.Theta <= 0 {
		return nil, fmt.Errorf("scaler: staircase threshold %v", s.Theta)
	}
	if s.Base <= 0 || s.Base >= 1 {
		return nil, fmt.Errorf("scaler: staircase base level %v", s.Base)
	}
	for i := 1; i < len(s.Rungs); i++ {
		if s.Rungs[i].Rho < s.Rungs[i-1].Rho {
			return nil, fmt.Errorf("scaler: staircase rungs not sorted by threshold")
		}
	}
	levels := s.Levels
	if len(levels) == 0 {
		levels = forecast.ScalingLevels
	}
	t0 := time.Now()
	sp := obs.DefaultTracer.Start("forecast")
	f, err := predictQuantiles(s.Forecaster, warm, history, h, levels)
	sp.End()
	if err != nil {
		return nil, err
	}
	stageForecast.ObserveSince(t0)
	s.lastFan = f
	t0 = time.Now()
	sp = obs.DefaultTracer.Start("optimize")
	s.us, err = uncertaintiesInto(f, s.us)
	if err != nil {
		sp.End()
		return nil, err
	}
	us := s.us
	out := resizeInts(dst, h)
	s.taus = resizeFloats(s.taus, h)
	s.qs = resizeFloats(s.qs, h)
	s.binding = resizeStrings(s.binding, h)
	for t := 0; t < h; t++ {
		tau := s.Base
		for _, rung := range s.Rungs {
			if us[t] >= rung.Rho {
				tau = rung.Tau
			}
		}
		qv := f.At(t, tau)
		out[t] = optimize.Allocate(qv, s.Theta)
		s.taus[t], s.qs[t], s.binding[t] = tau, qv, bindingFor(qv)
	}
	sp.End()
	stageOptimize.ObserveSince(t0)
	if obs.DefaultDecisions.Enabled() {
		d := s.lastDecision
		if d == nil {
			d = &obs.Decision{}
		}
		*d = obs.Decision{
			Strategy: s.Name(), Horizon: h, Theta: s.Theta, Nodes: out,
			U: us, Tau: s.taus, Tau1: s.Base, Tau2: s.Base,
			Quantile: s.qs, Binding: s.binding,
		}
		if len(s.Rungs) > 0 {
			d.Rho = s.Rungs[0].Rho
			d.Tau2 = s.Rungs[len(s.Rungs)-1].Tau
		}
		s.lastDecision = d
	} else if s.lastDecision != nil {
		s.lastDecision = nil
	}
	countPlan(s.Name(), h)
	return out, nil
}
