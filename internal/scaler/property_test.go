package scaler

import (
	"math"
	"testing"
	"testing/quick"
)

// TestRobustMonotoneInTauProperty: a more conservative quantile level
// never allocates fewer nodes, for any forecaster whose quantiles are
// monotone in the level (all sane forecasters).
func TestRobustMonotoneInTauProperty(t *testing.T) {
	f := func(baseRaw uint16, spreadRaw uint8, tauPairRaw uint8) bool {
		base := 10 + float64(baseRaw%500)
		spread := float64(spreadRaw) / 255 // 0..1
		lo := 0.55 + 0.2*float64(tauPairRaw%8)/8
		hi := lo + 0.2
		qf := &fakeQF{Base: []float64{base, base * 1.5}, Spread: []float64{spread, spread}}
		planLo, err := (&Robust{Forecaster: qf, Tau: lo, Theta: 10}).Plan(series(1), 2)
		if err != nil {
			return false
		}
		planHi, err := (&Robust{Forecaster: qf, Tau: hi, Theta: 10}).Plan(series(1), 2)
		if err != nil {
			return false
		}
		for i := range planLo {
			if planHi[i] < planLo[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAdaptiveBoundedByEndpointsProperty: the adaptive plan never leaves
// the envelope of its two fixed-quantile endpoint plans.
func TestAdaptiveBoundedByEndpointsProperty(t *testing.T) {
	f := func(baseRaw uint16, s1Raw, s2Raw, rhoRaw uint8) bool {
		base := 50 + float64(baseRaw%500)
		qf := &fakeQF{
			Base:   []float64{base, base},
			Spread: []float64{float64(s1Raw) / 128, float64(s2Raw) / 128},
		}
		rho := float64(rhoRaw) * 2
		tau1, tau2 := 0.6, 0.95
		adaptive, err := (&Adaptive{Forecaster: qf, Tau1: tau1, Tau2: tau2, Rho: rho, Theta: 10}).Plan(series(1), 2)
		if err != nil {
			return false
		}
		loPlan, err := (&Robust{Forecaster: qf, Tau: tau1, Theta: 10}).Plan(series(1), 2)
		if err != nil {
			return false
		}
		hiPlan, err := (&Robust{Forecaster: qf, Tau: tau2, Theta: 10}).Plan(series(1), 2)
		if err != nil {
			return false
		}
		for i := range adaptive {
			if adaptive[i] < loPlan[i] || adaptive[i] > hiPlan[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRateLimitedDeltaProperty: a rate-limited plan never changes the node
// count by more than MaxDelta per step, for arbitrary demand paths.
func TestRateLimitedDeltaProperty(t *testing.T) {
	f := func(seed int64, deltaRaw uint8) bool {
		maxDelta := 1 + int(deltaRaw)%5
		rng := newDeterministicRand(seed)
		h := 3 + int(rng()%10)
		base := make([]float64, h)
		spread := make([]float64, h)
		for i := range base {
			base[i] = math.Abs(float64(int64(rng()%4000))) / 10
			spread[i] = 0
		}
		qf := &fakeQF{Base: base, Spread: spread}
		rl := &RateLimited{Inner: &Robust{Forecaster: qf, Tau: 0.9, Theta: 10}, MaxDelta: maxDelta}
		plan, err := rl.Plan(series(1), h)
		if err != nil {
			return false
		}
		prev := 1
		for _, c := range plan {
			d := c - prev
			if d < 0 {
				d = -d
			}
			if d > maxDelta {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// newDeterministicRand is a tiny xorshift so the property above controls
// its own sequence without importing math/rand state.
func newDeterministicRand(seed int64) func() uint64 {
	s := uint64(seed)*2654435761 + 1
	return func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
}
