package scaler

import (
	"bytes"
	"testing"
)

func plan(vals ...int) []int { return vals }

func TestWakeGuardParkHysteresis(t *testing.T) {
	g := &WakeGuard{Config: WakeGuardConfig{MinIdleRounds: 3, WakeDebounceRounds: 2}}

	// Two idle rounds hold the floor; the third parks.
	if tr := g.Shape(plan(0, 0), true); tr != WakeHold {
		t.Fatalf("idle round 1: %v", tr)
	}
	if tr := g.Shape(plan(0, 0), true); tr != WakeHold {
		t.Fatalf("idle round 2: %v", tr)
	}
	p := plan(0, 0)
	if tr := g.Shape(p, true); tr != WakePark {
		t.Fatalf("idle round 3: %v", tr)
	}
	for i, v := range p {
		if v != 0 {
			t.Errorf("parked plan[%d] = %d", i, v)
		}
	}
	if !g.Parked() || g.Parks() != 1 || g.BlockedParks() != 2 {
		t.Errorf("parked=%v parks=%d blocked=%d", g.Parked(), g.Parks(), g.BlockedParks())
	}

	// Held plans are floored at one node, never negative.
	g2 := &WakeGuard{}
	p2 := plan(-2, 0, 3)
	g2.Shape(p2, true)
	for i, v := range p2 {
		if v < 1 && i < 2 {
			t.Errorf("held plan[%d] = %d, want >= 1", i, v)
		}
	}
}

func TestWakeGuardWakeDebounce(t *testing.T) {
	g := &WakeGuard{Config: WakeGuardConfig{MinIdleRounds: 1, WakeDebounceRounds: 3}}

	// Park immediately (MinIdleRounds 1, fresh guard has large sinceWake).
	g.sinceWake = 10
	if tr := g.Shape(plan(0), true); tr != WakePark {
		t.Fatalf("initial park: %v", tr)
	}

	// Demand returns: wake.
	p := plan(0)
	if tr := g.Shape(p, false); tr != WakeWake {
		t.Fatalf("wake: %v", tr)
	}
	if p[0] != 1 {
		t.Errorf("woken plan floor = %d", p[0])
	}

	// Idle again right away: the debounce blocks re-parking for two more
	// rounds even though MinIdleRounds is satisfied.
	if tr := g.Shape(plan(0), true); tr != WakeHold {
		t.Fatalf("flap round 1: %v", tr)
	}
	if tr := g.Shape(plan(0), true); tr != WakeHold {
		t.Fatalf("flap round 2: %v", tr)
	}
	if tr := g.Shape(plan(0), true); tr != WakePark {
		t.Fatalf("flap round 3 should finally park: %v", tr)
	}
	if g.BlockedParks() != 2 {
		t.Errorf("blocked parks = %d, want 2", g.BlockedParks())
	}
}

func TestWakeGuardBreakerKeepWarm(t *testing.T) {
	g := &WakeGuard{Config: WakeGuardConfig{
		KeepWarmAfterFails: 2, BreakerCooldownRounds: 3, KeepWarmNodes: 2,
	}}

	g.OnWakeResult(false)
	if g.BreakerOpen() {
		t.Fatal("breaker tripped early")
	}
	g.OnWakeResult(false)
	if !g.BreakerOpen() || g.BreakerTrips() != 1 {
		t.Fatal("breaker did not trip after 2 consecutive fails")
	}

	// While open: every plan is floored at the keep-warm count, idleness
	// is ignored, parking is impossible.
	for round := 0; round < 2; round++ {
		p := plan(0, 1, 5)
		if tr := g.Shape(p, true); tr != WakeKeepWarm {
			t.Fatalf("open round %d: %v", round, tr)
		}
		if p[0] != 2 || p[1] != 2 || p[2] != 5 {
			t.Errorf("open round %d plan = %v, want keep-warm floor 2", round, p)
		}
		if g.Parked() {
			t.Fatal("parked with breaker open")
		}
	}

	// Third open round exhausts the cooldown: half-open.
	g.Shape(plan(0), true)
	if g.BreakerOpen() {
		t.Fatal("breaker still open after cooldown")
	}
	// Half-open: one more failure re-trips immediately.
	g.OnWakeResult(false)
	if !g.BreakerOpen() || g.BreakerTrips() != 2 {
		t.Fatal("probe failure did not re-trip the breaker")
	}
	// Ride out the cooldown again, then a success closes it fully.
	g.Shape(plan(0), true)
	g.Shape(plan(0), true)
	g.Shape(plan(0), true)
	g.OnWakeResult(true)
	g.OnWakeResult(false) // a single later failure must not trip
	if g.BreakerOpen() {
		t.Fatal("breaker tripped on one failure after a success")
	}
}

func TestWakeGuardForceWake(t *testing.T) {
	g := &WakeGuard{Config: WakeGuardConfig{MinIdleRounds: 1}}
	g.sinceWake = 10
	g.Shape(plan(0), true) // park

	if !g.ForceWake() {
		t.Fatal("ForceWake on a parked tenant returned false")
	}
	if g.Parked() || g.Wakes() != 1 {
		t.Errorf("parked=%v wakes=%d after ForceWake", g.Parked(), g.Wakes())
	}
	// Idempotent on active tenants.
	if g.ForceWake() {
		t.Error("ForceWake on an active tenant returned true")
	}
}

func TestWakeGuardNeverNegative(t *testing.T) {
	g := &WakeGuard{}
	for _, idle := range []bool{true, false, true, true, false} {
		p := plan(-5, -1, 0, 2)
		g.Shape(p, idle)
		for i, v := range p {
			if v < 0 {
				t.Fatalf("Shape emitted negative allocation %d at %d (idle=%v)", v, i, idle)
			}
		}
	}
}

func TestWakeGuardSaveLoad(t *testing.T) {
	a := &WakeGuard{Config: WakeGuardConfig{MinIdleRounds: 2, KeepWarmAfterFails: 2}}
	a.Shape(plan(0), true)
	a.Shape(plan(0), true) // parked now (sinceWake grew past debounce)
	a.Shape(plan(3), false)
	a.OnWakeResult(false)
	a.OnWakeResult(false) // breaker open

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := &WakeGuard{Config: a.Config}
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if b.Parked() != a.Parked() || b.BreakerOpen() != a.BreakerOpen() ||
		b.Parks() != a.Parks() || b.Wakes() != a.Wakes() || b.BreakerTrips() != a.BreakerTrips() {
		t.Fatal("restored guard state diverged")
	}
	// Both continue identically.
	for round := 0; round < 10; round++ {
		pa, pb := plan(0, 4), plan(0, 4)
		ta, tb := a.Shape(pa, round%3 == 0), b.Shape(pb, round%3 == 0)
		if ta != tb || pa[0] != pb[0] || pa[1] != pb[1] {
			t.Fatalf("round %d diverged: %v/%v vs %v/%v", round, ta, pa, tb, pb)
		}
	}
}
