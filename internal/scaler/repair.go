package scaler

import (
	"errors"
	"fmt"
	"math"

	"robustscale/internal/forecast"
)

// ErrUnrepairableFan is wrapped by RepairFan when a fan cannot be made
// finite: its first step holds no finite quantile value to anchor on.
var ErrUnrepairableFan = errors.New("scaler: unrepairable quantile fan")

// RepairFan validates and repairs a quantile fan in place so that every
// row is finite, monotone in the quantile level, and bounded above by
// maxValue (when maxValue > 0). It returns how many entries it changed.
//
// Repairs, in order per row:
//
//  1. Non-finite entries (NaN/±Inf) take the nearest finite value in the
//     same row, falling back to the previous (already repaired) row's
//     value at the same level — the forecast's short-range persistence
//     assumption. A first row with no finite value at all is
//     unrepairable and returns ErrUnrepairableFan.
//  2. Values above maxValue are clamped to it (blow-up containment).
//  3. Quantile crossings are resolved by an isotonic running-max clamp,
//     the standard monotone projection for crossing quantile heads.
//
// A structurally healthy fan — finite, monotone, within bounds, the
// invariant every forecaster in this repository already maintains via
// Enforce — is left bit-identical with zero repairs, which is what lets
// the Guard wrap a healthy control loop without perturbing it.
func RepairFan(f *forecast.QuantileForecast, maxValue float64) (int, error) {
	if f == nil || len(f.Values) == 0 {
		return 0, fmt.Errorf("%w: empty fan", ErrUnrepairableFan)
	}
	repairs := 0
	var prev []float64
	for t, row := range f.Values {
		if len(row) != len(f.Levels) {
			return repairs, fmt.Errorf("%w: step %d has %d values for %d levels",
				ErrUnrepairableFan, t, len(row), len(f.Levels))
		}
		for i, v := range row {
			if isFinite(v) {
				continue
			}
			if fill, ok := nearestFinite(row, i); ok {
				row[i] = fill
			} else if prev != nil {
				row[i] = prev[i]
			} else {
				return repairs, fmt.Errorf("%w: step %d has no finite quantile values", ErrUnrepairableFan, t)
			}
			repairs++
		}
		if maxValue > 0 {
			for i, v := range row {
				if v > maxValue {
					row[i] = maxValue
					repairs++
				}
			}
		}
		for i := 1; i < len(row); i++ {
			if row[i] < row[i-1] {
				row[i] = row[i-1]
				repairs++
			}
		}
		prev = row
	}
	// The mean path rides along: non-finite or blown-up entries take the
	// row median, keeping downstream point consumers safe too.
	for t, v := range f.Mean {
		if t >= len(f.Values) {
			break
		}
		if !isFinite(v) || (maxValue > 0 && v > maxValue) {
			f.Mean[t] = f.At(t, 0.5)
			repairs++
		}
	}
	return repairs, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// nearestFinite returns the finite row value closest to index i.
func nearestFinite(row []float64, i int) (float64, bool) {
	for d := 1; d < len(row); d++ {
		if j := i - d; j >= 0 && isFinite(row[j]) {
			return row[j], true
		}
		if j := i + d; j < len(row) && isFinite(row[j]) {
			return row[j], true
		}
	}
	return 0, false
}
