package scaler

import (
	"fmt"

	"robustscale/internal/metrics"
	"robustscale/internal/obs"
	"robustscale/internal/optimize"
	"robustscale/internal/timeseries"
)

// RateLimited wraps a Strategy with the anti-thrashing constraint of
// Section V-A: the planned node count may change by at most MaxDelta per
// step. The wrapped plan is treated as the demand path and re-planned by
// the exact dynamic program.
type RateLimited struct {
	// Inner produces the unconstrained plan.
	Inner Strategy
	// MaxDelta bounds the per-step node-count change.
	MaxDelta int

	last         int
	lastDecision *obs.Decision
	cachedName   string
	innerBuf     []int
}

// Name implements Strategy. The name is formatted once and cached so the
// hot planning path never re-formats it.
func (r *RateLimited) Name() string {
	if r.cachedName == "" {
		r.cachedName = fmt.Sprintf("%s-ratelimit%d", r.Inner.Name(), r.MaxDelta)
	}
	return r.cachedName
}

// LastDecision implements DecisionProvider: the wrapped strategy's
// record with the constrained plan substituted and every step the rate
// limit overrode re-labelled obs.BindingRateLimit.
func (r *RateLimited) LastDecision() *obs.Decision { return r.lastDecision }

// Plan implements Strategy.
func (r *RateLimited) Plan(history *timeseries.Series, h int) ([]int, error) {
	return r.plan(history, h, false)
}

// PlanInto implements InPlacePlanner: the inner plan runs on its fast
// path into a reused buffer. The constrained dynamic program still
// allocates (bounded by horizon and node range); dst is unused.
func (r *RateLimited) PlanInto(history *timeseries.Series, h int, _ []int) ([]int, error) {
	return r.plan(history, h, true)
}

func (r *RateLimited) plan(history *timeseries.Series, h int, fast bool) ([]int, error) {
	var inner []int
	var err error
	if ipp, ok := r.Inner.(InPlacePlanner); fast && ok {
		inner, err = ipp.PlanInto(history, h, r.innerBuf)
		if inner != nil {
			r.innerBuf = inner
		}
	} else {
		inner, err = r.Inner.Plan(history, h)
	}
	if err != nil {
		return nil, err
	}
	initial := r.last
	if initial < 1 {
		initial = 1
	}
	sp := obs.DefaultTracer.Start("optimize")
	plan, err := optimize.PlanConstrainedDemand(inner, optimize.ThrashingConfig{
		Initial:  initial,
		MaxDelta: r.MaxDelta,
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	if len(plan) > 0 {
		r.last = plan[len(plan)-1]
	}
	if obs.DefaultDecisions.Enabled() {
		r.lastDecision = r.decision(inner, plan)
	} else if r.lastDecision != nil {
		r.lastDecision = nil
	}
	return plan, nil
}

// decision derives the wrapper's record from the inner strategy's.
func (r *RateLimited) decision(inner, plan []int) *obs.Decision {
	d := &obs.Decision{Strategy: r.Name(), Horizon: len(plan), Nodes: plan}
	if dp, ok := r.Inner.(DecisionProvider); ok {
		if id := dp.LastDecision(); id != nil {
			copied := *id
			copied.Strategy = r.Name()
			copied.Nodes = plan
			if len(id.Binding) == len(plan) && len(inner) == len(plan) {
				binding := append([]string(nil), id.Binding...)
				for i := range plan {
					if plan[i] != inner[i] {
						binding[i] = obs.BindingRateLimit
					}
				}
				copied.Binding = binding
			}
			d = &copied
		}
	}
	return d
}

// Observe forwards realized workloads to the wrapped strategy.
func (r *RateLimited) Observe(actual []float64) {
	if observer, ok := r.Inner.(Observer); ok {
		observer.Observe(actual)
	}
}

// EvalConfig controls a rolling evaluation of a strategy over the tail of
// a workload series.
type EvalConfig struct {
	// Theta is the per-node workload threshold used to judge
	// provisioning.
	Theta float64
	// Horizon is the planning cadence: the strategy plans Horizon steps,
	// those elapse, then it re-plans. The paper uses 72 (12 hours) for
	// predictive strategies and 1 for reactive ones.
	Horizon int
	// Start is the index of the first evaluated step; everything before
	// it is visible history (and typically training data).
	Start int
	// Tenant labels the decision records and tenant-scoped counters of
	// this evaluation; empty means obs.DefaultTenant, so single-tenant
	// callers change nothing.
	Tenant string
}

// tenant resolves the configured tenant id, defaulting the empty value.
func (cfg EvalConfig) tenant() string {
	if cfg.Tenant == "" {
		return obs.DefaultTenant
	}
	return cfg.Tenant
}

// EvalResult is the outcome of a rolling evaluation.
type EvalResult struct {
	Strategy    string
	Report      *metrics.ProvisioningReport
	Allocations []int
	Actuals     []float64
}

// Evaluate replays the series against the strategy: at each planning
// origin the strategy sees only the history so far, commits allocations
// for the next Horizon steps, and the realized workload grades them. The
// strategy's Observe hook (if any) receives the realized workloads after
// each round, which is how the padding baseline learns.
func Evaluate(strategy Strategy, s *timeseries.Series, cfg EvalConfig) (*EvalResult, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("scaler: non-positive evaluation horizon %d", cfg.Horizon)
	}
	if cfg.Start <= 0 || cfg.Start >= s.Len() {
		return nil, fmt.Errorf("scaler: evaluation start %d outside series of length %d", cfg.Start, s.Len())
	}
	rounds := (s.Len() - cfg.Start) / cfg.Horizon
	allocations := make([]int, 0, rounds*cfg.Horizon)
	actuals := make([]float64, 0, rounds*cfg.Horizon)
	// One reusable history view and plan buffer keep the steady-state
	// round allocation-free for in-place strategies: the view shares the
	// series' backing array, so warm forecasters see a continuous history.
	view := &timeseries.Series{Name: s.Name, Start: s.Start, Step: s.Step}
	ipp, _ := strategy.(InPlacePlanner)
	var planBuf []int
	prev := 0
	for origin := cfg.Start; origin+cfg.Horizon <= s.Len(); origin += cfg.Horizon {
		sp := obs.DefaultTracer.Start("plan-round")
		view.Values = s.Values[:origin]
		var plan []int
		var err error
		if ipp != nil {
			plan, err = ipp.PlanInto(view, cfg.Horizon, planBuf)
			if plan != nil {
				planBuf = plan
			}
		} else {
			plan, err = strategy.Plan(view, cfg.Horizon)
		}
		if err != nil {
			return nil, fmt.Errorf("scaler: %s planning at %d: %w", strategy.Name(), origin, err)
		}
		if len(plan) != cfg.Horizon {
			return nil, fmt.Errorf("scaler: %s returned %d allocations for horizon %d", strategy.Name(), len(plan), cfg.Horizon)
		}
		// The virtual-time lookup only feeds the span stamp and the
		// decision record; with both observers off the loop pays two
		// atomic loads here and nothing else.
		if sp.Active() || obs.DefaultDecisions.Enabled() {
			at := s.TimeAt(origin)
			sp.EndVirtual(at)
			RecordDecisionFor(strategy, cfg.tenant(), origin, at, prev, plan)
		}
		prev = plan[len(plan)-1]
		realized := s.Values[origin : origin+cfg.Horizon]
		allocations = append(allocations, plan...)
		actuals = append(actuals, realized...)
		if observer, ok := strategy.(Observer); ok {
			observer.Observe(realized)
		}
	}
	if len(allocations) == 0 {
		return nil, fmt.Errorf("scaler: evaluation span too short for horizon %d", cfg.Horizon)
	}
	report, err := metrics.Provisioning(actuals, allocations, cfg.Theta)
	if err != nil {
		return nil, err
	}
	countActions(0, allocations)
	violationsTotal.With(strategy.Name()).Add(float64(report.UnderProvisioned))
	tenantViolations.With(cfg.tenant()).Add(float64(report.UnderProvisioned))
	return &EvalResult{
		Strategy:    strategy.Name(),
		Report:      report,
		Allocations: allocations,
		Actuals:     actuals,
	}, nil
}
