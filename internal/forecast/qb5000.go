package forecast

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"robustscale/internal/nn"
	"robustscale/internal/timeseries"
)

// QB5000Config configures the QueryBot 5000 style hybrid point forecaster.
type QB5000Config struct {
	// Context is the lag window length.
	Context int
	// Hidden is the LSTM component's hidden size.
	Hidden int
	// Epochs trains the LSTM component.
	Epochs int
	// LR is the LSTM component's learning rate.
	LR float64
	// Seed makes training deterministic.
	Seed int64
	// MaxWindows bounds training windows per epoch and the kernel
	// regression's memory.
	MaxWindows int
	// Bandwidth is the kernel regression bandwidth in normalized distance
	// units.
	Bandwidth float64
	// TrainHorizon is the multi-step horizon the components are fit for.
	TrainHorizon int
}

// DefaultQB5000Config mirrors the paper's 72-step setup.
func DefaultQB5000Config() QB5000Config {
	return QB5000Config{
		Context: 72, Hidden: 24, Epochs: 8, LR: 1e-3, Seed: 1,
		MaxWindows: 192, Bandwidth: 1.0, TrainHorizon: 72,
	}
}

// QB5000 is a reimplementation of the QueryBot 5000 hybrid workload
// forecaster (Ma et al., SIGMOD'18): an ensemble of linear regression, a
// recurrent network and kernel regression, averaged into a single point
// forecast. It is used as the paper's point-forecasting scaler baseline.
type QB5000 struct {
	cfg QB5000Config

	scaler timeseries.StandardScaler

	// Linear component: one ridge regression per horizon step.
	linCoef [][]float64 // [step][1+Context]

	// Kernel component: remembered training windows in normalized space.
	kernelX [][]float64
	kernelY [][]float64

	// Recurrent component.
	cell   *nn.LSTMCell
	head   *nn.Dense
	params nn.Params

	fitted bool

	warm qb5000Warm
}

// qb5000Warm caches the recurrent component's conditioning state (on the
// anchored grid, like DeepAR's) plus reused buffers for the linear and
// kernel components, whose windows are fixed-length by construction
// (linCoef dimensions, memorized kernel rows) and are therefore recomputed
// each round — allocation-free — rather than advanced.
type qb5000Warm struct {
	ref    historyRef
	valid  bool
	anchor int
	next   int          // state has consumed conditioning inputs for positions [anchor, next)
	state  nn.LSTMState // owned heap buffers

	sc      *nn.Scratch
	normBuf []float64
	lin     []float64
	ker     []float64
	rec     []float64
	weights []float64
	out     []float64
}

// NewQB5000 returns an untrained hybrid forecaster.
func NewQB5000(cfg QB5000Config) *QB5000 {
	def := DefaultQB5000Config()
	if cfg.Context <= 0 {
		cfg.Context = def.Context
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = def.Hidden
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = def.Epochs
	}
	if cfg.LR <= 0 {
		cfg.LR = def.LR
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = def.MaxWindows
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = def.Bandwidth
	}
	if cfg.TrainHorizon <= 0 {
		cfg.TrainHorizon = def.TrainHorizon
	}
	return &QB5000{cfg: cfg}
}

// Name implements Forecaster.
func (q *QB5000) Name() string { return "qb5000" }

const qb5000InputDim = 1 + timeFeatureDim

// Fit trains all three ensemble components.
func (q *QB5000) Fit(train *timeseries.Series) error {
	q.WarmReset() // new weights invalidate any cached recurrent state
	q.scaler.Fit(train.Values)
	windows, err := trainingWindows(train, q.cfg.Context, q.cfg.TrainHorizon, q.cfg.MaxWindows)
	if err != nil {
		return err
	}

	if err := q.fitLinear(windows); err != nil {
		return err
	}
	q.fitKernel(windows)
	q.fitLSTM(train, windows)
	q.fitted = true
	return nil
}

// fitLinear fits one ridge regression per horizon step on the normalized
// lag window.
func (q *QB5000) fitLinear(windows []timeseries.Window) error {
	rows := len(windows)
	cols := q.cfg.Context + 1
	x := make([][]float64, rows)
	for i, w := range windows {
		row := make([]float64, cols)
		row[0] = 1
		copy(row[1:], q.scaler.Transform(w.Context))
		x[i] = row
	}
	q.linCoef = make([][]float64, q.cfg.TrainHorizon)
	y := make([]float64, rows)
	for h := 0; h < q.cfg.TrainHorizon; h++ {
		for i, w := range windows {
			y[i] = (w.Target[h] - q.scaler.Mean) / q.scaler.Std
		}
		coef, err := ridgeSolve(x, y, 1e-3)
		if err != nil {
			return fmt.Errorf("forecast: qb5000 linear component at step %d: %w", h, err)
		}
		q.linCoef[h] = coef
	}
	return nil
}

// fitKernel memorizes normalized windows for Nadaraya-Watson regression.
func (q *QB5000) fitKernel(windows []timeseries.Window) {
	q.kernelX = make([][]float64, len(windows))
	q.kernelY = make([][]float64, len(windows))
	for i, w := range windows {
		q.kernelX[i] = q.scaler.Transform(w.Context)
		q.kernelY[i] = q.scaler.Transform(w.Target)
	}
}

// buildLSTM constructs the recurrent component's architecture.
func (q *QB5000) buildLSTM() {
	rng := rand.New(rand.NewSource(q.cfg.Seed))
	q.cell = nn.NewLSTMCell("qb5000.lstm", qb5000InputDim, q.cfg.Hidden, rng)
	q.head = nn.NewDense("qb5000.head", q.cfg.Hidden, 1, rng)
	q.params = append(q.cell.Params(), q.head.Params()...)
}

// fitLSTM trains the recurrent component with teacher forcing and MSE.
func (q *QB5000) fitLSTM(train *timeseries.Series, windows []timeseries.Window) {
	q.buildLSTM()
	rng := rand.New(rand.NewSource(q.cfg.Seed))
	opt := nn.NewAdam(q.cfg.LR)

	order := rng.Perm(len(windows))
	for epoch := 0; epoch < q.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, wi := range order {
			w := windows[wi]
			seq := append(append([]float64{}, w.Context...), w.Target...)
			norm := q.scaler.Transform(seq)
			startIdx := w.Origin - len(w.Context)

			steps := len(norm) - 1
			xs := make([][]float64, steps)
			for t := 0; t < steps; t++ {
				x := make([]float64, 0, qb5000InputDim)
				x = append(x, norm[t])
				x = append(x, timeFeatures(train.TimeAt(startIdx+t+1))...)
				xs[t] = x
			}

			q.params.ZeroGrads()
			hs, _, caches := q.cell.RunSequence(xs, q.cell.NewLSTMState())
			dhs := make([][]float64, steps)
			for t := 0; t < steps; t++ {
				out, hc := q.head.Forward(hs[t])
				diff := out[0] - norm[t+1]
				dhs[t] = q.head.Backward(hc, []float64{2 * diff / float64(steps)})
			}
			q.cell.BackwardSequence(caches, dhs, nn.LSTMState{})
			q.params.ClipGradNorm(5)
			opt.Step(q.params)
		}
	}
}

// Predict implements Forecaster: the equally weighted ensemble mean.
func (q *QB5000) Predict(history *timeseries.Series, h int) ([]float64, error) {
	if !q.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: non-positive horizon %d", h)
	}
	if h > q.cfg.TrainHorizon {
		return nil, fmt.Errorf("forecast: qb5000 trained for horizon %d, requested %d", q.cfg.TrainHorizon, h)
	}
	context, err := contextTail(history, q.cfg.Context)
	if err != nil {
		return nil, err
	}
	norm := q.scaler.Transform(context)

	lin := q.predictLinear(norm, h, make([]float64, h))
	ker := q.predictKernel(norm, h, make([]float64, h), make([]float64, len(q.kernelX)))
	rec := q.predictLSTM(history, h)

	out := make([]float64, h)
	for t := 0; t < h; t++ {
		out[t] = q.scaler.InverseOne((lin[t] + ker[t] + rec[t]) / 3)
	}
	return out, nil
}

func (q *QB5000) predictLinear(norm []float64, h int, out []float64) []float64 {
	for t := 0; t < h; t++ {
		coef := q.linCoef[t]
		v := coef[0]
		for j, c := range coef[1:] {
			v += c * norm[j]
		}
		out[t] = v
	}
	return out
}

func (q *QB5000) predictKernel(norm []float64, h int, out, weights []float64) []float64 {
	maxLogW := math.Inf(-1)
	for i, kx := range q.kernelX {
		d2 := 0.0
		for j := range kx {
			d := kx[j] - norm[j]
			d2 += d * d
		}
		// Log-space kernel weights avoid total underflow.
		weights[i] = -d2 / (2 * q.cfg.Bandwidth * q.cfg.Bandwidth * float64(len(kx)))
		if weights[i] > maxLogW {
			maxLogW = weights[i]
		}
	}
	sum := 0.0
	for i := range weights {
		weights[i] = math.Exp(weights[i] - maxLogW)
		sum += weights[i]
	}
	for t := 0; t < h; t++ {
		v := 0.0
		for i, w := range weights {
			v += w * q.kernelY[i][t]
		}
		out[t] = v / sum
	}
	return out
}

// lstmInput builds the recurrent component's input vector for one step
// from the arena (heap when s is nil).
func (q *QB5000) lstmInput(s *nn.Scratch, prevNorm float64, ts time.Time) []float64 {
	x := s.Vec(qb5000InputDim)
	x[0] = prevNorm
	timeFeaturesInto(x[1:], ts)
	return x
}

// lstmStep feeds the observation preceding position p (at the anchor: the
// anchor observation itself) with position p's calendar features.
func (q *QB5000) lstmStep(s *nn.Scratch, state nn.LSTMState, history *timeseries.Series, anchor, p int) nn.LSTMState {
	prev := p - 1
	if p == anchor {
		prev = anchor
	}
	x := q.lstmInput(s, q.scaler.TransformOne(history.At(prev)), history.TimeAt(p))
	state, _ = q.cell.StepScratch(s, x, state)
	return state
}

// decodeLSTM rolls the decoder h steps from the conditioning state, feeding
// each prediction back as the next input.
func (q *QB5000) decodeLSTM(s *nn.Scratch, state nn.LSTMState, history *timeseries.Series, h int, out []float64) []float64 {
	prev := q.scaler.TransformOne(history.At(history.Len() - 1))
	for t := 0; t < h; t++ {
		x := q.lstmInput(s, prev, history.TimeAt(history.Len()+t))
		state, _ = q.cell.StepScratch(s, x, state)
		y, _ := q.head.ForwardScratch(s, state.H)
		out[t] = y[0]
		prev = y[0]
	}
	return out
}

// predictLSTM conditions the recurrent component on the anchored window
// [warmAnchor(n, Context), n) — the same grid the warm path advances along,
// so warm and cold are bit-identical — and decodes h steps.
func (q *QB5000) predictLSTM(history *timeseries.Series, h int) []float64 {
	anchor := warmAnchor(history.Len(), q.cfg.Context)
	state := q.cell.NewLSTMState()
	for p := anchor; p < history.Len(); p++ {
		state = q.lstmStep(nil, state, history, anchor, p)
	}
	return q.decodeLSTM(nil, state, history, h, make([]float64, h))
}

// WarmReset implements IncrementalPointForecaster.
func (q *QB5000) WarmReset() {
	q.warm.valid = false
	q.warm.ref.reset()
}

// PredictWarm implements IncrementalPointForecaster: bit-identical to
// Predict, advancing the recurrent component's cached conditioning state by
// one step per new observation and reusing the linear/kernel buffers. The
// returned slice is forecaster-owned scratch, valid until the next predict.
func (q *QB5000) PredictWarm(history *timeseries.Series, h int) ([]float64, error) {
	if !q.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: non-positive horizon %d", h)
	}
	if h > q.cfg.TrainHorizon {
		return nil, fmt.Errorf("forecast: qb5000 trained for horizon %d, requested %d", q.cfg.TrainHorizon, h)
	}
	n := history.Len()
	if n < q.cfg.Context {
		return nil, ErrShortHistory
	}
	w := &q.warm

	// Fixed-length normalized tail for the linear and kernel components.
	w.normBuf = resizeFloats(w.normBuf, q.cfg.Context)
	for i := range w.normBuf {
		w.normBuf[i] = q.scaler.TransformOne(history.At(n - q.cfg.Context + i))
	}
	w.lin = q.predictLinear(w.normBuf, h, resizeFloats(w.lin, h))
	w.weights = resizeFloats(w.weights, len(q.kernelX))
	w.ker = q.predictKernel(w.normBuf, h, resizeFloats(w.ker, h), w.weights)

	// Recurrent component: advance the cached state along the anchored grid,
	// or rebuild from the anchor on any discontinuity.
	anchor := warmAnchor(n, q.cfg.Context)
	if w.sc == nil {
		w.sc = nn.NewScratch()
	}
	sc := w.sc
	sc.Reset()
	state := nn.LSTMState{H: w.state.H, C: w.state.C}
	from := w.next
	if !w.valid || w.anchor != anchor || w.next > n || !w.ref.extends(history) {
		state = q.cell.NewLSTMStateScratch(sc)
		from = anchor
	}
	for p := from; p < n; p++ {
		state = q.lstmStep(sc, state, history, anchor, p)
	}
	w.state.H = append(w.state.H[:0], state.H...)
	w.state.C = append(w.state.C[:0], state.C...)
	w.anchor, w.next = anchor, n
	w.ref.record(history)
	w.valid = true

	// Decode from a scratch copy so the owned state stays pre-decode.
	w.rec = q.decodeLSTM(sc, nn.LSTMState{H: w.state.H, C: w.state.C}, history, h, resizeFloats(w.rec, h))

	w.out = resizeFloats(w.out, h)
	for t := 0; t < h; t++ {
		w.out[t] = q.scaler.InverseOne((w.lin[t] + w.ker[t] + w.rec[t]) / 3)
	}
	return w.out, nil
}

var (
	_ Forecaster                 = (*QB5000)(nil)
	_ IncrementalPointForecaster = (*QB5000)(nil)
)
