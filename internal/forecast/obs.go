package forecast

import (
	"robustscale/internal/obs"
)

// Training and sampling instruments, registered on the process-wide
// registry. All updates are per-epoch or per-prediction-call — never
// per-element — so their cost is invisible next to the work they count.
var (
	obsTrainEpochs = obs.Default.CounterVec(
		"robustscale_forecast_train_epochs_total",
		"Completed training epochs, by model.",
		"model")
	obsDeepAREpochs = obsTrainEpochs.With("deepar")
	obsTFTEpochs    = obsTrainEpochs.With("tft")

	obsMCPaths = obs.Default.Counter(
		"robustscale_forecast_mc_paths_total",
		"Monte-Carlo sample paths drawn by DeepAR quantile prediction.")

	obsPredictions = obs.Default.CounterVec(
		"robustscale_forecast_predictions_total",
		"Quantile prediction calls, by model.",
		"model")

	obsEnsembleMemberFits = obs.Default.Counter(
		"robustscale_forecast_ensemble_member_fits_total",
		"Ensemble member training runs completed.")
)
