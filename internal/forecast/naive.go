package forecast

import (
	"fmt"
	"math"
	"sort"

	"robustscale/internal/timeseries"
)

// Naive forecasts every future step as the last observed value, with
// quantiles from the empirical distribution of historical h-step changes.
// It is the reference point every learned forecaster must beat.
type Naive struct {
	// MaxResiduals bounds the retained residual history per horizon step.
	MaxResiduals int

	fitted bool
	// residuals[k] holds historical (w_{t+k+1} - w_t) differences.
	residuals [][]float64
	horizon   int

	warm offsetWarm
}

// offsetWarm is the warm-path cache shared by the offset-based baselines
// (Naive, SeasonalNaive): their per-(step, level) quantile offsets are
// constants after Fit for a fixed set of levels, so the steady-state round
// reduces to adds into a reused fan.
type offsetWarm struct {
	levels levelsCache
	// offs[k][i] is the quantile offset for step k at cached level i,
	// valid while the normalized levels slice is the one it was built from.
	offs      [][]float64
	offLevels []float64
	fan       *QuantileForecast
}

// rows returns the cached offset matrix for (h, lv), rebuilding row k from
// quantile(k, tau) when the levels changed or the horizon grew.
func (w *offsetWarm) rows(h int, lv []float64, quantile func(k int, tau float64) float64) [][]float64 {
	fresh := len(w.offLevels) != len(lv) || (len(lv) > 0 && &w.offLevels[0] != &lv[0]) || len(w.offs) < h
	if !fresh {
		return w.offs
	}
	if cap(w.offs) >= h {
		w.offs = w.offs[:h]
	} else {
		w.offs = make([][]float64, h)
	}
	for k := 0; k < h; k++ {
		w.offs[k] = resizeFloats(w.offs[k], len(lv))
		for i, tau := range lv {
			w.offs[k][i] = quantile(k, tau)
		}
	}
	w.offLevels = lv
	return w.offs
}

// NewNaive returns a last-value forecaster that supports quantile bands up
// to the given horizon.
func NewNaive(horizon int) *Naive {
	return &Naive{MaxResiduals: 2048, horizon: horizon}
}

// Name implements Forecaster.
func (n *Naive) Name() string { return "naive" }

// Fit records the empirical distribution of h-step changes for each h up
// to the configured horizon.
func (n *Naive) Fit(train *timeseries.Series) error {
	if n.horizon <= 0 {
		return fmt.Errorf("forecast: naive needs a positive horizon, got %d", n.horizon)
	}
	if train.Len() <= n.horizon {
		return ErrShortHistory
	}
	n.WarmReset()
	n.residuals = make([][]float64, n.horizon)
	stride := 1
	if avail := train.Len() - n.horizon; n.MaxResiduals > 0 && avail > n.MaxResiduals {
		stride = (avail + n.MaxResiduals - 1) / n.MaxResiduals
	}
	for t := 0; t+n.horizon < train.Len(); t += stride {
		for k := 0; k < n.horizon; k++ {
			n.residuals[k] = append(n.residuals[k], train.At(t+k+1)-train.At(t))
		}
	}
	for k := range n.residuals {
		sort.Float64s(n.residuals[k])
	}
	n.fitted = true
	return nil
}

// Predict implements Forecaster: a flat continuation of the last value.
func (n *Naive) Predict(history *timeseries.Series, h int) ([]float64, error) {
	f, err := n.PredictQuantiles(history, h, []float64{0.5})
	if err != nil {
		return nil, err
	}
	return f.Mean, nil
}

// PredictQuantiles implements QuantileForecaster: last value plus the
// empirical quantile of historical k-step changes.
func (n *Naive) PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if !n.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 || h > n.horizon {
		return nil, fmt.Errorf("forecast: naive fitted for horizon %d, requested %d", n.horizon, h)
	}
	levels, err := normalizeLevels(levels)
	if err != nil {
		return nil, err
	}
	if history.Len() == 0 {
		return nil, ErrShortHistory
	}
	last := history.At(history.Len() - 1)
	out := &QuantileForecast{
		Levels: levels,
		Values: make([][]float64, h),
		Mean:   make([]float64, h),
	}
	for k := 0; k < h; k++ {
		out.Mean[k] = last
		row := make([]float64, len(levels))
		for i, tau := range levels {
			row[i] = last + timeseries.InterpolatedQuantile(n.residuals[k], tau)
		}
		out.Values[k] = row
	}
	out.Enforce()
	return out, nil
}

// WarmReset implements IncrementalForecaster.
func (n *Naive) WarmReset() { n.warm = offsetWarm{} }

// PredictQuantilesWarm implements IncrementalForecaster: bit-identical to
// PredictQuantiles, with the per-level offsets cached across rounds and
// the fan reused (scratch owned by the forecaster, valid until the next
// predict).
func (n *Naive) PredictQuantilesWarm(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if !n.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 || h > n.horizon {
		return nil, fmt.Errorf("forecast: naive fitted for horizon %d, requested %d", n.horizon, h)
	}
	lv, err := n.warm.levels.get(levels)
	if err != nil {
		return nil, err
	}
	if history.Len() == 0 {
		return nil, ErrShortHistory
	}
	offs := n.warm.rows(h, lv, func(k int, tau float64) float64 {
		return timeseries.InterpolatedQuantile(n.residuals[k], tau)
	})
	last := history.At(history.Len() - 1)
	out := reuseFan(n.warm.fan, h, lv)
	n.warm.fan = out
	for k := 0; k < h; k++ {
		out.Mean[k] = last
		row := out.Values[k]
		for i := range lv {
			row[i] = last + offs[k][i]
		}
	}
	out.Enforce()
	return out, nil
}

// SeasonalNaive forecasts each step as the value one season earlier, with
// quantiles from the empirical distribution of seasonal differences — the
// strongest trivial baseline on strongly cyclic workloads.
type SeasonalNaive struct {
	// Period is the season length in steps (144 for daily at 10-minute
	// sampling).
	Period int
	// MaxResiduals bounds the retained residual history.
	MaxResiduals int

	fitted    bool
	residuals []float64 // sorted seasonal differences w_t - w_{t-Period}

	warm offsetWarm
}

// NewSeasonalNaive returns a seasonal-naive forecaster.
func NewSeasonalNaive(period int) *SeasonalNaive {
	return &SeasonalNaive{Period: period, MaxResiduals: 4096}
}

// Name implements Forecaster.
func (s *SeasonalNaive) Name() string { return fmt.Sprintf("seasonal-naive-%d", s.Period) }

// Fit records the empirical seasonal differences.
func (s *SeasonalNaive) Fit(train *timeseries.Series) error {
	if s.Period <= 0 {
		return fmt.Errorf("forecast: seasonal-naive needs a positive period, got %d", s.Period)
	}
	if train.Len() <= s.Period {
		return ErrShortHistory
	}
	s.WarmReset()
	s.residuals = nil
	stride := 1
	if avail := train.Len() - s.Period; s.MaxResiduals > 0 && avail > s.MaxResiduals {
		stride = (avail + s.MaxResiduals - 1) / s.MaxResiduals
	}
	for t := s.Period; t < train.Len(); t += stride {
		s.residuals = append(s.residuals, train.At(t)-train.At(t-s.Period))
	}
	sort.Float64s(s.residuals)
	s.fitted = true
	return nil
}

// Predict implements Forecaster: the value one season earlier.
func (s *SeasonalNaive) Predict(history *timeseries.Series, h int) ([]float64, error) {
	f, err := s.PredictQuantiles(history, h, []float64{0.5})
	if err != nil {
		return nil, err
	}
	return f.Mean, nil
}

// PredictQuantiles implements QuantileForecaster.
func (s *SeasonalNaive) PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: non-positive horizon %d", h)
	}
	levels, err := normalizeLevels(levels)
	if err != nil {
		return nil, err
	}
	if history.Len() < s.Period {
		return nil, ErrShortHistory
	}
	out := &QuantileForecast{
		Levels: levels,
		Values: make([][]float64, h),
		Mean:   make([]float64, h),
	}
	for k := 0; k < h; k++ {
		// Index of the same phase one (or more) seasons earlier.
		idx := history.Len() + k
		for idx >= history.Len() {
			idx -= s.Period
		}
		base := history.At(idx)
		// Widen the band with the number of seasons extrapolated.
		seasonsAhead := float64((history.Len() + k - idx) / s.Period)
		scale := math.Sqrt(seasonsAhead)
		out.Mean[k] = base
		row := make([]float64, len(levels))
		for i, tau := range levels {
			row[i] = base + scale*timeseries.InterpolatedQuantile(s.residuals, tau)
		}
		out.Values[k] = row
	}
	out.Enforce()
	return out, nil
}

// WarmReset implements IncrementalForecaster.
func (s *SeasonalNaive) WarmReset() { s.warm = offsetWarm{} }

// PredictQuantilesWarm implements IncrementalForecaster: bit-identical to
// PredictQuantiles, with the per-level seasonal offsets cached and the fan
// reused (scratch owned by the forecaster, valid until the next predict).
func (s *SeasonalNaive) PredictQuantilesWarm(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: non-positive horizon %d", h)
	}
	lv, err := s.warm.levels.get(levels)
	if err != nil {
		return nil, err
	}
	if history.Len() < s.Period {
		return nil, ErrShortHistory
	}
	// The seasonal offsets do not depend on the step, so one cached row
	// serves every k.
	offs := s.warm.rows(1, lv, func(_ int, tau float64) float64 {
		return timeseries.InterpolatedQuantile(s.residuals, tau)
	})[0]
	out := reuseFan(s.warm.fan, h, lv)
	s.warm.fan = out
	for k := 0; k < h; k++ {
		idx := history.Len() + k
		for idx >= history.Len() {
			idx -= s.Period
		}
		base := history.At(idx)
		seasonsAhead := float64((history.Len() + k - idx) / s.Period)
		scale := math.Sqrt(seasonsAhead)
		out.Mean[k] = base
		row := out.Values[k]
		for i := range lv {
			row[i] = base + scale*offs[i]
		}
	}
	out.Enforce()
	return out, nil
}

var (
	_ QuantileForecaster    = (*Naive)(nil)
	_ QuantileForecaster    = (*SeasonalNaive)(nil)
	_ IncrementalForecaster = (*Naive)(nil)
	_ IncrementalForecaster = (*SeasonalNaive)(nil)
)
