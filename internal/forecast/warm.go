package forecast

import (
	"time"

	"robustscale/internal/timeseries"
)

// This file holds the warm-state fast-path contract shared by the
// incremental forecasters (DeepAR, Naive, SeasonalNaive, ARIMA, QB5000)
// and their wrappers (Ensemble, Conformal).
//
// The control loop re-plans at a cadence of one-to-a-few observations, so
// successive predict calls see histories that are append-extensions of
// each other. The warm path exploits that: instead of re-encoding the
// whole conditioning window from scratch, a forecaster keeps the state it
// computed last round and advances it over just the newly appended
// observations. The contract is strict:
//
//   - Bit-identical: PredictQuantilesWarm must return exactly the floats
//     PredictQuantiles would, for every history. The warm path is a cache,
//     never an approximation.
//   - Self-invalidating: the cached state remembers which history it was
//     built from (backing array identity + start/step + a tail tripwire,
//     see historyRef). Any discontinuity — a cloned/sanitized history, a
//     shrunk series, a restored checkpoint — silently falls back to the
//     cold computation, which also rebuilds the cache.
//   - Rebuildable, never persisted: warm state is derived entirely from
//     weights + history, so Save never writes it and Load always drops it.
//   - Scratch-owned output: the returned *QuantileForecast is a buffer
//     owned by the forecaster, valid until its next predict call (the same
//     contract as DecisionProvider.LastDecision). Callers that retain a
//     fan across rounds must copy it.
//   - Single-goroutine: warm calls on one forecaster must not race. The
//     cold PredictQuantiles path keeps per-call allocation and stays safe
//     for concurrent use.

// IncrementalForecaster is a QuantileForecaster with a warm-state fast
// path. Advancing over newly appended observations is implicit in
// PredictQuantilesWarm: the forecaster detects how far the history grew
// since its cached state and consumes exactly the new suffix.
type IncrementalForecaster interface {
	QuantileForecaster
	// PredictQuantilesWarm is PredictQuantiles on the warm path. Results
	// are bit-identical to the cold path; the returned forecast is a
	// scratch owned by the forecaster, valid until the next predict.
	PredictQuantilesWarm(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error)
	// WarmReset drops all cached warm state; the next warm predict pays
	// one cold rebuild. Used by the guard on degradation and by Load.
	WarmReset()
}

// IncrementalPointForecaster is the point-forecast counterpart of
// IncrementalForecaster (QB5000 implements it).
type IncrementalPointForecaster interface {
	Forecaster
	// PredictWarm is Predict on the warm path; the returned slice is a
	// scratch owned by the forecaster, valid until the next predict.
	PredictWarm(history *timeseries.Series, h int) ([]float64, error)
	// WarmReset drops all cached warm state.
	WarmReset()
}

// warmAnchor returns the start index of the anchored conditioning window
// for a history of length n and context length ctx (n >= ctx > 0): the
// largest multiple of ctx that leaves at least ctx observations, giving a
// window length in [ctx, 2*ctx). Anchoring the window to a fixed grid —
// instead of always taking the last ctx values — makes the conditioning
// start a pure function of the history length, which is what lets an
// incrementally advanced recurrent state stay bit-identical to a cold
// rebuild at every origin: both walk the same inputs from the same zero
// state.
func warmAnchor(n, ctx int) int {
	return ((n - ctx) / ctx) * ctx
}

// historyRef records which history a warm state was derived from, so the
// next call can prove the new history is an append-extension of it.
// Histories in this repository are views over a growing backing array
// (Series.Slice shares Values), so identity of the first element plus an
// unchanged epoch means the shared prefix is literally the same memory.
// The recorded tail value is a tripwire against in-place mutation of the
// most recently consumed observation (and against NaN corruption, which
// fails the equality and forces a cold rebuild).
type historyRef struct {
	base  []float64
	start time.Time
	step  time.Duration
	last  float64
}

// extends reports whether hist is an append-extension of the recorded
// history: same backing array and epoch, at least as long, tail intact.
func (r *historyRef) extends(hist *timeseries.Series) bool {
	n := len(r.base)
	if n == 0 || hist.Len() < n {
		return false
	}
	if &hist.Values[0] != &r.base[0] || !hist.Start.Equal(r.start) || hist.Step != r.step {
		return false
	}
	return hist.Values[n-1] == r.last
}

// record remembers hist as the new warm baseline.
func (r *historyRef) record(hist *timeseries.Series) {
	r.base = hist.Values
	r.start = hist.Start
	r.step = hist.Step
	r.last = hist.Values[hist.Len()-1]
}

// reset forgets the baseline; extends reports false until the next record.
func (r *historyRef) reset() { r.base = nil }

// levelsCache skips normalizeLevels' copy+sort when the requested levels
// are unchanged between rounds — the steady-state case, since strategies
// pass a fixed levels slice.
type levelsCache struct {
	in   []float64
	norm []float64
}

// get returns the normalized form of levels, reusing the cached copy when
// the request is element-wise identical to the previous one.
func (c *levelsCache) get(levels []float64) ([]float64, error) {
	if len(c.in) == len(levels) && len(levels) > 0 {
		same := true
		for i, l := range levels {
			if c.in[i] != l {
				same = false
				break
			}
		}
		if same {
			return c.norm, nil
		}
	}
	norm, err := normalizeLevels(levels)
	if err != nil {
		return nil, err
	}
	c.in = append(c.in[:0], levels...)
	c.norm = norm
	return norm, nil
}

// reuseFan shapes a cached fan for (h, levels) without allocating when the
// shape is unchanged. The forecast remains owned by the forecaster.
func reuseFan(f *QuantileForecast, h int, levels []float64) *QuantileForecast {
	if f == nil {
		f = &QuantileForecast{}
	}
	f.Levels = levels
	if cap(f.Values) >= h {
		f.Values = f.Values[:h]
	} else {
		f.Values = make([][]float64, h)
	}
	for t := range f.Values {
		if cap(f.Values[t]) >= len(levels) {
			f.Values[t] = f.Values[t][:len(levels)]
		} else {
			f.Values[t] = make([]float64, len(levels))
		}
	}
	f.Mean = resizeFloats(f.Mean, h)
	return f
}

// resizeFloats returns a slice of length n, reusing dst's capacity.
func resizeFloats(dst []float64, n int) []float64 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]float64, n)
}

// warmResetAll forwards WarmReset to any forecaster that has one; it is
// the hook wrappers and strategies use without caring which concrete
// forecaster they hold.
func warmResetAll(f any) {
	type warmResetter interface{ WarmReset() }
	if wr, ok := f.(warmResetter); ok {
		wr.WarmReset()
	}
}
