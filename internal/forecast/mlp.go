package forecast

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"robustscale/internal/dist"
	"robustscale/internal/nn"
	"robustscale/internal/timeseries"
)

// MLPConfig configures the feed-forward probabilistic forecaster.
type MLPConfig struct {
	// Context is the input window length T.
	Context int
	// Hidden is the width of the two hidden layers.
	Hidden int
	// Epochs is the number of passes over the training windows.
	Epochs int
	// LR is the Adam learning rate; the paper fixes 1e-3.
	LR float64
	// Seed makes initialization and shuffling deterministic.
	Seed int64
	// MaxWindows bounds the number of training windows per epoch.
	MaxWindows int
}

// DefaultMLPConfig mirrors the paper's setup: 12-hour (72-step) context.
func DefaultMLPConfig() MLPConfig {
	return MLPConfig{Context: 72, Hidden: 48, Epochs: 30, LR: 1e-3, Seed: 1, MaxWindows: 256}
}

// MLP is a feed-forward probabilistic forecaster that outputs the mean and
// (softplus-mapped) standard deviation of a Gaussian per horizon step —
// the textbook "learn parametric distributions" design of Section III-B.
type MLP struct {
	cfg MLPConfig

	horizon int
	scaler  timeseries.StandardScaler
	l1, l2  *nn.Dense
	head    *nn.Dense
	params  nn.Params
	fitted  bool
}

// NewMLP returns an untrained MLP forecaster.
func NewMLP(cfg MLPConfig) *MLP {
	if cfg.Context <= 0 {
		cfg.Context = 72
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 48
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = 256
	}
	return &MLP{cfg: cfg}
}

// Name implements Forecaster.
func (m *MLP) Name() string { return "mlp" }

// FitHorizon trains the network for a specific forecast horizon.
func (m *MLP) FitHorizon(train *timeseries.Series, h int) error {
	if h <= 0 {
		return fmt.Errorf("forecast: mlp needs a positive horizon, got %d", h)
	}
	m.build(h)
	m.scaler.Fit(train.Values)
	windows, err := trainingWindows(train, m.cfg.Context, h, m.cfg.MaxWindows)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(m.cfg.Seed + 1)) // shuffle stream, distinct from init
	opt := nn.NewAdam(m.cfg.LR)
	order := rng.Perm(len(windows))
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, wi := range order {
			w := windows[wi]
			x := m.input(w.Context, train.TimeAt(w.Origin))
			target := m.scaler.Transform(w.Target)

			m.params.ZeroGrads()
			out, caches := m.forward(x)
			dOut := make([]float64, len(out))
			for t := 0; t < h; t++ {
				mu := out[t]
				sigmaRaw := out[h+t]
				sigma := dist.Softplus(sigmaRaw) + 1e-4
				z := (target[t] - mu) / sigma
				// d NLL / d mu and d NLL / d sigmaRaw.
				dOut[t] = -z / sigma
				dSigma := 1/sigma - z*z/sigma
				dOut[h+t] = dSigma * dist.SoftplusDeriv(sigmaRaw)
			}
			m.backward(caches, dOut)
			m.params.ClipGradNorm(5)
			opt.Step(m.params)
		}
	}
	m.fitted = true
	return nil
}

// Fit implements Forecaster with the paper's default 72-step horizon.
func (m *MLP) Fit(train *timeseries.Series) error { return m.FitHorizon(train, 72) }

// build constructs the network architecture for the given horizon.
func (m *MLP) build(h int) {
	m.horizon = h
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	in := m.cfg.Context + timeFeatureDim
	m.l1 = nn.NewDense("mlp.l1", in, m.cfg.Hidden, rng)
	m.l2 = nn.NewDense("mlp.l2", m.cfg.Hidden, m.cfg.Hidden, rng)
	m.head = nn.NewDense("mlp.head", m.cfg.Hidden, 2*h, rng)
	m.params = append(append(m.l1.Params(), m.l2.Params()...), m.head.Params()...)
}

type mlpCaches struct {
	c1, c2, ch *nn.DenseCache
	a1, a2     *nn.ActCache
}

func (m *MLP) forward(x []float64) ([]float64, *mlpCaches) {
	caches := &mlpCaches{}
	var h1, h2 []float64
	h1, caches.c1 = m.l1.Forward(x)
	h1, caches.a1 = nn.Tanh.Forward(h1)
	h2, caches.c2 = m.l2.Forward(h1)
	h2, caches.a2 = nn.Tanh.Forward(h2)
	out, ch := m.head.Forward(h2)
	caches.ch = ch
	return out, caches
}

func (m *MLP) backward(caches *mlpCaches, dOut []float64) {
	d := m.head.Backward(caches.ch, dOut)
	d = nn.Tanh.Backward(caches.a2, d)
	d = m.l2.Backward(caches.c2, d)
	d = nn.Tanh.Backward(caches.a1, d)
	m.l1.Backward(caches.c1, d)
}

// input assembles the normalized context plus the calendar features of the
// forecast origin timestamp.
func (m *MLP) input(context []float64, origin time.Time) []float64 {
	x := make([]float64, 0, m.cfg.Context+timeFeatureDim)
	x = append(x, m.scaler.Transform(context)...)
	x = append(x, timeFeatures(origin)...)
	return x
}

// Predict implements Forecaster: the Gaussian mean per step.
func (m *MLP) Predict(history *timeseries.Series, h int) ([]float64, error) {
	f, err := m.PredictQuantiles(history, h, []float64{0.5})
	if err != nil {
		return nil, err
	}
	return f.Mean, nil
}

// PredictQuantiles implements QuantileForecaster from the per-step Gaussian
// heads.
func (m *MLP) PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if h > m.horizon {
		return nil, fmt.Errorf("forecast: mlp trained for horizon %d, requested %d", m.horizon, h)
	}
	levels, err := normalizeLevels(levels)
	if err != nil {
		return nil, err
	}
	context, err := contextTail(history, m.cfg.Context)
	if err != nil {
		return nil, err
	}
	origin := history.TimeAt(history.Len())
	out, _ := m.forward(m.input(context, origin))

	f := &QuantileForecast{
		Levels: levels,
		Values: make([][]float64, h),
		Mean:   make([]float64, h),
	}
	for t := 0; t < h; t++ {
		mu := out[t]
		sigma := dist.Softplus(out[m.horizon+t]) + 1e-4
		f.Mean[t] = m.scaler.InverseOne(mu)
		row := make([]float64, len(levels))
		for i, tau := range levels {
			z := mu + sigma*quantileZ(tau)
			row[i] = m.scaler.InverseOne(z)
		}
		f.Values[t] = row
	}
	return f, nil
}

// quantileZ is the standard normal quantile.
func quantileZ(tau float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*tau-1)
}

var _ QuantileForecaster = (*MLP)(nil)
