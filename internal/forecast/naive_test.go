package forecast

import (
	"testing"

	"robustscale/internal/timeseries"
)

func TestNaiveForecast(t *testing.T) {
	s := sineSeries(300, 24, 100, 10)
	m := NewNaive(12)
	if err := m.Fit(s.Slice(0, 280)); err != nil {
		t.Fatal(err)
	}
	hist := s.Slice(0, 280)
	pred, err := m.Predict(hist, 12)
	if err != nil {
		t.Fatal(err)
	}
	last := hist.At(hist.Len() - 1)
	for i, p := range pred {
		if p != last {
			t.Fatalf("pred[%d] = %v, want flat %v", i, p, last)
		}
	}
	f, err := m.PredictQuantiles(hist, 12, []float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// Bands widen with the horizon (k-step changes of a sine grow).
	w0 := f.Values[0][1] - f.Values[0][0]
	wLast := f.Values[11][1] - f.Values[11][0]
	if wLast <= w0 {
		t.Errorf("band did not widen: %v vs %v", w0, wLast)
	}
}

func TestNaiveErrors(t *testing.T) {
	m := NewNaive(12)
	s := sineSeries(100, 24, 5, 1)
	if _, err := m.Predict(s, 4); err != ErrNotFitted {
		t.Errorf("err = %v", err)
	}
	if err := NewNaive(0).Fit(s); err == nil {
		t.Error("zero horizon should fail")
	}
	if err := NewNaive(200).Fit(s); err != ErrShortHistory {
		t.Error("short history should fail")
	}
	if err := m.Fit(s); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(s, 24); err == nil {
		t.Error("beyond fitted horizon should fail")
	}
	empty := timeseries.New("e", t0, timeseries.DefaultStep, nil)
	if _, err := m.Predict(empty, 4); err != ErrShortHistory {
		t.Errorf("err = %v", err)
	}
}

func TestSeasonalNaiveTracksCycle(t *testing.T) {
	s := sineSeries(300, 24, 100, 10)
	m := NewSeasonalNaive(24)
	hist, from := splitHoldout(s, 24)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(hist, 24)
	if err != nil {
		t.Fatal(err)
	}
	// On a noiseless periodic signal seasonal-naive is exact.
	if mse := mseAgainst(pred, s, from); mse > 1e-18 {
		t.Errorf("seasonal naive MSE = %v on pure cycle", mse)
	}
	if m.Name() != "seasonal-naive-24" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestSeasonalNaiveBeatsNaiveOnCyclicData(t *testing.T) {
	s := noisySine(600, 24, 100, 30, 1, 41)
	hist, from := splitHoldout(s, 24)
	sn := NewSeasonalNaive(24)
	if err := sn.Fit(hist); err != nil {
		t.Fatal(err)
	}
	nv := NewNaive(24)
	if err := nv.Fit(hist); err != nil {
		t.Fatal(err)
	}
	snPred, err := sn.Predict(hist, 24)
	if err != nil {
		t.Fatal(err)
	}
	nvPred, err := nv.Predict(hist, 24)
	if err != nil {
		t.Fatal(err)
	}
	if mseAgainst(snPred, s, from) >= mseAgainst(nvPred, s, from) {
		t.Error("seasonal naive should beat naive on cyclic data")
	}
}

func TestSeasonalNaiveLongHorizon(t *testing.T) {
	s := sineSeries(300, 24, 100, 10)
	m := NewSeasonalNaive(24)
	hist, _ := splitHoldout(s, 60)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	// Horizon of 60 needs wrapping more than two seasons ahead.
	f, err := m.PredictQuantiles(hist, 60, []float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// Bands for later seasons are at least as wide as the first season's.
	w0 := f.Values[0][1] - f.Values[0][0]
	w59 := f.Values[59][1] - f.Values[59][0]
	if w59 < w0 {
		t.Errorf("later-season band %v narrower than first %v", w59, w0)
	}
}

func TestSeasonalNaiveErrors(t *testing.T) {
	s := sineSeries(100, 24, 5, 1)
	m := NewSeasonalNaive(24)
	if _, err := m.Predict(s, 4); err != ErrNotFitted {
		t.Errorf("err = %v", err)
	}
	if err := NewSeasonalNaive(0).Fit(s); err == nil {
		t.Error("zero period should fail")
	}
	if err := NewSeasonalNaive(200).Fit(s); err != ErrShortHistory {
		t.Error("short history should fail")
	}
	if err := m.Fit(s); err != nil {
		t.Fatal(err)
	}
	short := sineSeries(10, 24, 5, 1)
	if _, err := m.Predict(short, 4); err != ErrShortHistory {
		t.Errorf("err = %v", err)
	}
	if _, err := m.Predict(s, 0); err == nil {
		t.Error("zero horizon should fail")
	}
}
