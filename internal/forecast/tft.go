package forecast

import (
	"fmt"
	"math/rand"

	"robustscale/internal/nn"
	"robustscale/internal/obs"
	"robustscale/internal/parallel"
	"robustscale/internal/timeseries"
)

// TFTConfig configures the Temporal Fusion Transformer style forecaster.
type TFTConfig struct {
	// Context is the encoder window length T.
	Context int
	// Hidden is the shared embedding / LSTM / attention width.
	Hidden int
	// Epochs is the number of passes over the training windows.
	Epochs int
	// LR is the Adam learning rate; the paper fixes 1e-3.
	LR float64
	// Seed makes initialization and shuffling deterministic.
	Seed int64
	// MaxWindows bounds the number of training windows per epoch.
	MaxWindows int
	// Levels is the pre-specified quantile grid the network outputs; this
	// is fixed at training time, so changing levels requires retraining
	// (the trade-off Section III-B discusses).
	Levels []float64
	// TrainHorizon is the decoder length.
	TrainHorizon int
	// Heads selects the attention block: values above 1 use multi-head
	// self-attention with an output projection (as in the original TFT);
	// 0 or 1 keeps the lighter single-head block. Hidden must be
	// divisible by Heads.
	Heads int
	// Gated inserts a gated residual network (GRN with layer
	// normalization, as in the original TFT) between the attention
	// residual and the quantile heads.
	Gated bool
	// Workers bounds the concurrency of batch training; 0 means one
	// worker per CPU. The fitted weights are bit-identical for every
	// value.
	Workers int
	// Batch is the number of BPTT windows whose gradients are merged into
	// one Adam step. 0 or 1 keeps the classic one-step-per-window regime;
	// larger values train data-parallel across Workers while staying
	// deterministic (per-window gradient buffers merged in window order).
	Batch int
}

// DefaultTFTConfig mirrors the paper's setup: 72-step context and the
// Table I quantile grid.
func DefaultTFTConfig() TFTConfig {
	return TFTConfig{
		Context: 72, Hidden: 32, Epochs: 12, LR: 1e-3, Seed: 1,
		MaxWindows: 192, Levels: append([]float64{}, DefaultLevels...),
		TrainHorizon: 72,
	}
}

// TFT is a simplified Temporal Fusion Transformer: an LSTM encoder over
// the observed past, an LSTM decoder over known future covariates, causal
// interpretable self-attention across the full sequence with a residual
// connection, and linear heads that emit a pre-specified grid of quantiles
// trained jointly on the pinball loss (Equation 2). Quantiles come out in
// one forward pass, which is why TFT inference is fast in Tables II/III.
type TFT struct {
	cfg TFTConfig

	scaler timeseries.StandardScaler
	tftNet // master network; replicas of it carry per-worker gradients
	fitted bool
}

// tftNet bundles the network layers so data-parallel training can stamp
// out gradient replicas of the whole stack (shared weights, private
// gradients, private scratch arena). The TFT embeds one as the master —
// its scratch stays nil so one-off calls take the plain heap path.
type tftNet struct {
	hidden   int
	embPast  *nn.Dense
	embFut   *nn.Dense
	enc, dec *nn.LSTMCell
	attn     nn.SelfAttention
	grn      *nn.GRN // nil unless cfg.Gated
	head     *nn.Dense
	params   nn.Params
	scratch  *nn.Scratch
}

// collectParams rebuilds the parameter list in the canonical (build)
// order; replicas must use the same order so AccumGrads lines up.
func (n *tftNet) collectParams() {
	n.params = nil
	n.params = append(n.params, n.embPast.Params()...)
	n.params = append(n.params, n.embFut.Params()...)
	n.params = append(n.params, n.enc.Params()...)
	n.params = append(n.params, n.dec.Params()...)
	n.params = append(n.params, n.attn.Params()...)
	if n.grn != nil {
		n.params = append(n.params, n.grn.Params()...)
	}
	n.params = append(n.params, n.head.Params()...)
}

// replica returns a training lane over the net's shared weights.
func (n *tftNet) replica() *tftNet {
	r := &tftNet{
		hidden:  n.hidden,
		embPast: n.embPast.Replica(),
		embFut:  n.embFut.Replica(),
		enc:     n.enc.Replica(),
		dec:     n.dec.Replica(),
		attn:    nn.ReplicaSelfAttention(n.attn),
		head:    n.head.Replica(),
		scratch: nn.NewScratch(),
	}
	if n.grn != nil {
		r.grn = n.grn.Replica()
	}
	r.collectParams()
	return r
}

// NewTFT returns an untrained TFT forecaster.
func NewTFT(cfg TFTConfig) *TFT {
	def := DefaultTFTConfig()
	if cfg.Context <= 0 {
		cfg.Context = def.Context
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = def.Hidden
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = def.Epochs
	}
	if cfg.LR <= 0 {
		cfg.LR = def.LR
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = def.MaxWindows
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = append([]float64{}, def.Levels...)
	}
	if cfg.TrainHorizon <= 0 {
		cfg.TrainHorizon = def.TrainHorizon
	}
	return &TFT{cfg: cfg}
}

// NewTFTPoint returns a TFT trained to output only the 0.5 quantile,
// serving as the paper's TFT-point forecasting baseline.
func NewTFTPoint(cfg TFTConfig) *TFT {
	cfg.Levels = []float64{0.5}
	t := NewTFT(cfg)
	return t
}

// Name implements Forecaster.
func (m *TFT) Name() string {
	if len(m.cfg.Levels) == 1 {
		return "tft-point"
	}
	return "tft"
}

// Levels returns the trained quantile grid.
func (m *TFT) Levels() []float64 { return m.cfg.Levels }

const tftPastDim = 1 + timeFeatureDim

// build constructs the network architecture from the configuration.
func (m *TFT) build() error {
	levels, err := normalizeLevels(m.cfg.Levels)
	if err != nil {
		return err
	}
	m.cfg.Levels = levels
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	h := m.cfg.Hidden
	m.hidden = h
	m.embPast = nn.NewDense("tft.embPast", tftPastDim, h, rng)
	m.embFut = nn.NewDense("tft.embFut", timeFeatureDim, h, rng)
	m.enc = nn.NewLSTMCell("tft.enc", h, h, rng)
	m.dec = nn.NewLSTMCell("tft.dec", h, h, rng)
	if m.cfg.Heads > 1 {
		mha, err := nn.NewMultiHeadAttention("tft.attn", h, m.cfg.Heads, true, rng)
		if err != nil {
			return err
		}
		m.attn = mha
	} else {
		m.attn = nn.NewAttention("tft.attn", h, true, rng)
	}
	if m.cfg.Gated {
		m.grn = nn.NewGRN("tft.grn", h, rng)
	} else {
		m.grn = nil
	}
	m.head = nn.NewDense("tft.head", h, len(levels), rng)
	m.collectParams()
	return nil
}

// Fit trains the network on the series. As with DeepAR, each mini-batch
// of cfg.Batch windows is pushed through gradient replicas in parallel
// and merged in window order into one Adam step, so the fitted weights
// are bit-identical for any worker count.
func (m *TFT) Fit(train *timeseries.Series) error {
	if err := m.build(); err != nil {
		return err
	}
	m.scaler.Fit(train.Values)
	windows, err := trainingWindows(train, m.cfg.Context, m.cfg.TrainHorizon, m.cfg.MaxWindows)
	if err != nil {
		return err
	}

	batch := m.cfg.Batch
	if batch < 1 {
		batch = 1
	}
	if batch > len(windows) {
		batch = len(windows)
	}
	reps := make([]*tftNet, batch)
	for i := range reps {
		reps[i] = m.tftNet.replica()
	}
	workers := parallel.Workers(m.cfg.Workers, batch)

	rng := rand.New(rand.NewSource(m.cfg.Seed + 1)) // shuffle stream, distinct from init
	opt := nn.NewAdam(m.cfg.LR)
	order := rng.Perm(len(windows))
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		spe := obs.DefaultTracer.Start("tft.epoch")
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			nb := len(order) - start
			if nb > batch {
				nb = batch
			}
			parallel.ForEachWorkerSpan("tft.batch", workers, nb, func(_, i int) {
				m.windowGrad(reps[i], train, windows[order[start+i]])
			})
			m.params.ZeroGrads()
			for i := 0; i < nb; i++ {
				nn.AccumGrads(m.params, reps[i].params)
			}
			m.params.ClipGradNorm(5)
			opt.Step(m.params)
		}
		spe.End()
		obsTFTEpochs.Inc()
	}
	m.fitted = true
	return nil
}

// tftForward holds the full forward activation record for one sequence.
type tftForward struct {
	T, H         int
	pastCaches   []*nn.DenseCache
	futCaches    []*nn.DenseCache
	encCaches    []*nn.LSTMCache
	decCaches    []*nn.LSTMCache
	attnBackward func(nn.Mat) nn.Mat
	grnCaches    []*nn.GRNCache // nil unless gated
	headCaches   []*nn.DenseCache
	outs         [][]float64 // [step][level] normalized quantile outputs
}

// forward runs encoder, decoder, attention and heads. contextNorm has T
// normalized observations; startIdx is the absolute index of contextNorm[0]
// within the series that provides the calendar. Vectors are drawn from s
// (nil falls back to the heap); the attention block keeps its own matrix
// allocations.
func (n *tftNet) forward(s *nn.Scratch, series *timeseries.Series, contextNorm []float64, startIdx, horizon int) *tftForward {
	T := len(contextNorm)
	H := horizon
	f := &tftForward{
		T: T, H: H,
		pastCaches: make([]*nn.DenseCache, T),
		futCaches:  make([]*nn.DenseCache, H),
		headCaches: make([]*nn.DenseCache, H),
		outs:       make([][]float64, H),
	}

	embPast := make([][]float64, T)
	for t := 0; t < T; t++ {
		x := s.Vec(tftPastDim)
		x[0] = contextNorm[t]
		timeFeaturesInto(x[1:], series.TimeAt(startIdx+t))
		embPast[t], f.pastCaches[t] = n.embPast.ForwardScratch(s, x)
	}
	var hsE [][]float64
	var finalE nn.LSTMState
	hsE, finalE, f.encCaches = n.enc.RunSequenceScratch(s, embPast, n.enc.NewLSTMStateScratch(s))

	embFut := make([][]float64, H)
	for k := 0; k < H; k++ {
		feats := s.Vec(timeFeatureDim)
		timeFeaturesInto(feats, series.TimeAt(startIdx+T+k))
		embFut[k], f.futCaches[k] = n.embFut.ForwardScratch(s, feats)
	}
	var hsD [][]float64
	hsD, _, f.decCaches = n.dec.RunSequenceScratch(s, embFut, finalE)

	x := nn.NewMat(T+H, n.hidden)
	for t := 0; t < T; t++ {
		copy(x.Row(t), hsE[t])
	}
	for k := 0; k < H; k++ {
		copy(x.Row(T+k), hsD[k])
	}
	attnOut, attnBackward := n.attn.Apply(x)
	f.attnBackward = attnBackward

	if n.grn != nil {
		f.grnCaches = make([]*nn.GRNCache, H)
	}
	for k := 0; k < H; k++ {
		z := s.Vec(n.hidden)
		arow := attnOut.Row(T + k)
		for j := range z {
			z[j] = arow[j] + hsD[k][j] // residual connection
		}
		if n.grn != nil {
			z, f.grnCaches[k] = n.grn.ForwardScratch(s, z)
		}
		f.outs[k], f.headCaches[k] = n.head.ForwardScratch(s, z)
	}
	return f
}

// backward propagates per-step, per-level output gradients through the
// whole network, accumulating parameter gradients.
func (n *tftNet) backward(s *nn.Scratch, f *tftForward, dOuts [][]float64) {
	T, H := f.T, f.H
	dA := nn.NewMat(T+H, n.hidden)
	dhsD := make([][]float64, H)
	for k := 0; k < H; k++ {
		dz := n.head.BackwardScratch(s, f.headCaches[k], dOuts[k])
		if n.grn != nil {
			dz = n.grn.BackwardScratch(s, f.grnCaches[k], dz)
		}
		copy(dA.Row(T+k), dz)
		dhsD[k] = s.VecCopy(dz) // residual path
	}

	dX := f.attnBackward(dA)
	dhsE := make([][]float64, T)
	for t := 0; t < T; t++ {
		dhsE[t] = s.VecCopy(dX.Row(t))
	}
	for k := 0; k < H; k++ {
		row := dX.Row(T + k)
		for j := range dhsD[k] {
			dhsD[k][j] += row[j]
		}
	}

	dEmbFut, dS0dec := n.dec.BackwardSequenceScratch(s, f.decCaches, dhsD, nn.LSTMState{})
	for k := 0; k < H; k++ {
		n.embFut.BackwardScratch(s, f.futCaches[k], dEmbFut[k])
	}
	dEmbPast, _ := n.enc.BackwardSequenceScratch(s, f.encCaches, dhsE, dS0dec)
	for t := 0; t < T; t++ {
		n.embPast.BackwardScratch(s, f.pastCaches[t], dEmbPast[t])
	}
}

// windowGrad runs one window forward+backward on the replica lane,
// leaving the window's gradients in the replica's buffers (no optimizer
// step; Fit merges and steps).
func (m *TFT) windowGrad(rep *tftNet, train *timeseries.Series, w timeseries.Window) {
	rep.scratch.Reset()
	s := rep.scratch
	contextNorm := m.scaler.Transform(w.Context)
	targetNorm := m.scaler.Transform(w.Target)
	startIdx := w.Origin - len(w.Context)

	rep.params.ZeroGrads()
	f := rep.forward(s, train, contextNorm, startIdx, len(w.Target))
	dOuts := make([][]float64, f.H)
	for k := 0; k < f.H; k++ {
		g := s.Vec(len(m.cfg.Levels))
		for i, tau := range m.cfg.Levels {
			g[i] = PinballGrad(tau, targetNorm[k], f.outs[k][i])
		}
		dOuts[k] = g
	}
	rep.backward(s, f, dOuts)
}

// Predict implements Forecaster via the median head (or the single trained
// level for TFT-point).
func (m *TFT) Predict(history *timeseries.Series, h int) ([]float64, error) {
	f, err := m.predictGrid(history, h)
	if err != nil {
		return nil, err
	}
	return f.Mean, nil
}

// predictGrid runs one forward pass and returns the trained quantile grid
// denormalized.
func (m *TFT) predictGrid(history *timeseries.Series, h int) (*QuantileForecast, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: non-positive horizon %d", h)
	}
	context, err := contextTail(history, m.cfg.Context)
	if err != nil {
		return nil, err
	}
	contextNorm := m.scaler.Transform(context)
	startIdx := history.Len() - m.cfg.Context
	// A call-local arena keeps the forward pass allocation-light while
	// leaving the model safe for concurrent PredictQuantiles callers.
	fw := m.tftNet.forward(nn.NewScratch(), history, contextNorm, startIdx, h)

	out := &QuantileForecast{
		Levels: m.cfg.Levels,
		Values: make([][]float64, h),
		Mean:   make([]float64, h),
	}
	for k := 0; k < h; k++ {
		row := make([]float64, len(m.cfg.Levels))
		for i := range m.cfg.Levels {
			row[i] = m.scaler.InverseOne(fw.outs[k][i])
		}
		out.Values[k] = row
	}
	out.Enforce()
	for k := 0; k < h; k++ {
		out.Mean[k] = out.At(k, 0.5)
	}
	return out, nil
}

// PredictQuantiles implements QuantileForecaster. Levels inside the trained
// grid are interpolated; levels outside it are clamped to the grid edges
// (the pre-specified grid limitation from Section III-B).
func (m *TFT) PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	levels, err := normalizeLevels(levels)
	if err != nil {
		return nil, err
	}
	grid, err := m.predictGrid(history, h)
	if err != nil {
		return nil, err
	}
	obsPredictions.With("tft").Inc()
	out := &QuantileForecast{
		Levels: levels,
		Values: make([][]float64, h),
		Mean:   grid.Mean,
	}
	for k := 0; k < h; k++ {
		row := make([]float64, len(levels))
		for i, tau := range levels {
			row[i] = grid.At(k, tau)
		}
		out.Values[k] = row
	}
	return out, nil
}

var _ QuantileForecaster = (*TFT)(nil)
