package forecast

import (
	"fmt"
	"math/rand"

	"robustscale/internal/nn"
	"robustscale/internal/timeseries"
)

// TFTConfig configures the Temporal Fusion Transformer style forecaster.
type TFTConfig struct {
	// Context is the encoder window length T.
	Context int
	// Hidden is the shared embedding / LSTM / attention width.
	Hidden int
	// Epochs is the number of passes over the training windows.
	Epochs int
	// LR is the Adam learning rate; the paper fixes 1e-3.
	LR float64
	// Seed makes initialization and shuffling deterministic.
	Seed int64
	// MaxWindows bounds the number of training windows per epoch.
	MaxWindows int
	// Levels is the pre-specified quantile grid the network outputs; this
	// is fixed at training time, so changing levels requires retraining
	// (the trade-off Section III-B discusses).
	Levels []float64
	// TrainHorizon is the decoder length.
	TrainHorizon int
	// Heads selects the attention block: values above 1 use multi-head
	// self-attention with an output projection (as in the original TFT);
	// 0 or 1 keeps the lighter single-head block. Hidden must be
	// divisible by Heads.
	Heads int
	// Gated inserts a gated residual network (GRN with layer
	// normalization, as in the original TFT) between the attention
	// residual and the quantile heads.
	Gated bool
}

// DefaultTFTConfig mirrors the paper's setup: 72-step context and the
// Table I quantile grid.
func DefaultTFTConfig() TFTConfig {
	return TFTConfig{
		Context: 72, Hidden: 32, Epochs: 12, LR: 1e-3, Seed: 1,
		MaxWindows: 192, Levels: append([]float64{}, DefaultLevels...),
		TrainHorizon: 72,
	}
}

// TFT is a simplified Temporal Fusion Transformer: an LSTM encoder over
// the observed past, an LSTM decoder over known future covariates, causal
// interpretable self-attention across the full sequence with a residual
// connection, and linear heads that emit a pre-specified grid of quantiles
// trained jointly on the pinball loss (Equation 2). Quantiles come out in
// one forward pass, which is why TFT inference is fast in Tables II/III.
type TFT struct {
	cfg TFTConfig

	scaler   timeseries.StandardScaler
	embPast  *nn.Dense
	embFut   *nn.Dense
	enc, dec *nn.LSTMCell
	attn     nn.SelfAttention
	grn      *nn.GRN // nil unless cfg.Gated
	head     *nn.Dense
	params   nn.Params
	fitted   bool
}

// NewTFT returns an untrained TFT forecaster.
func NewTFT(cfg TFTConfig) *TFT {
	def := DefaultTFTConfig()
	if cfg.Context <= 0 {
		cfg.Context = def.Context
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = def.Hidden
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = def.Epochs
	}
	if cfg.LR <= 0 {
		cfg.LR = def.LR
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = def.MaxWindows
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = append([]float64{}, def.Levels...)
	}
	if cfg.TrainHorizon <= 0 {
		cfg.TrainHorizon = def.TrainHorizon
	}
	return &TFT{cfg: cfg}
}

// NewTFTPoint returns a TFT trained to output only the 0.5 quantile,
// serving as the paper's TFT-point forecasting baseline.
func NewTFTPoint(cfg TFTConfig) *TFT {
	cfg.Levels = []float64{0.5}
	t := NewTFT(cfg)
	return t
}

// Name implements Forecaster.
func (m *TFT) Name() string {
	if len(m.cfg.Levels) == 1 {
		return "tft-point"
	}
	return "tft"
}

// Levels returns the trained quantile grid.
func (m *TFT) Levels() []float64 { return m.cfg.Levels }

const tftPastDim = 1 + timeFeatureDim

// build constructs the network architecture from the configuration.
func (m *TFT) build() error {
	levels, err := normalizeLevels(m.cfg.Levels)
	if err != nil {
		return err
	}
	m.cfg.Levels = levels
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	h := m.cfg.Hidden
	m.embPast = nn.NewDense("tft.embPast", tftPastDim, h, rng)
	m.embFut = nn.NewDense("tft.embFut", timeFeatureDim, h, rng)
	m.enc = nn.NewLSTMCell("tft.enc", h, h, rng)
	m.dec = nn.NewLSTMCell("tft.dec", h, h, rng)
	if m.cfg.Heads > 1 {
		mha, err := nn.NewMultiHeadAttention("tft.attn", h, m.cfg.Heads, true, rng)
		if err != nil {
			return err
		}
		m.attn = mha
	} else {
		m.attn = nn.NewAttention("tft.attn", h, true, rng)
	}
	if m.cfg.Gated {
		m.grn = nn.NewGRN("tft.grn", h, rng)
	} else {
		m.grn = nil
	}
	m.head = nn.NewDense("tft.head", h, len(levels), rng)
	m.params = nil
	m.params = append(m.params, m.embPast.Params()...)
	m.params = append(m.params, m.embFut.Params()...)
	m.params = append(m.params, m.enc.Params()...)
	m.params = append(m.params, m.dec.Params()...)
	m.params = append(m.params, m.attn.Params()...)
	if m.grn != nil {
		m.params = append(m.params, m.grn.Params()...)
	}
	m.params = append(m.params, m.head.Params()...)
	return nil
}

// Fit trains the network on the series.
func (m *TFT) Fit(train *timeseries.Series) error {
	if err := m.build(); err != nil {
		return err
	}
	m.scaler.Fit(train.Values)
	windows, err := trainingWindows(train, m.cfg.Context, m.cfg.TrainHorizon, m.cfg.MaxWindows)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(m.cfg.Seed + 1)) // shuffle stream, distinct from init
	opt := nn.NewAdam(m.cfg.LR)
	order := rng.Perm(len(windows))
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, wi := range order {
			m.trainWindow(train, windows[wi], opt)
		}
	}
	m.fitted = true
	return nil
}

// tftForward holds the full forward activation record for one sequence.
type tftForward struct {
	T, H         int
	pastCaches   []*nn.DenseCache
	futCaches    []*nn.DenseCache
	encCaches    []*nn.LSTMCache
	decCaches    []*nn.LSTMCache
	attnBackward func(nn.Mat) nn.Mat
	grnCaches    []*nn.GRNCache // nil unless gated
	headCaches   []*nn.DenseCache
	outs         [][]float64 // [step][level] normalized quantile outputs
}

// forward runs encoder, decoder, attention and heads. contextNorm has T
// normalized observations; startIdx is the absolute index of contextNorm[0]
// within the series that provides the calendar.
func (m *TFT) forward(series *timeseries.Series, contextNorm []float64, startIdx, horizon int) *tftForward {
	T := len(contextNorm)
	H := horizon
	f := &tftForward{
		T: T, H: H,
		pastCaches: make([]*nn.DenseCache, T),
		futCaches:  make([]*nn.DenseCache, H),
		headCaches: make([]*nn.DenseCache, H),
		outs:       make([][]float64, H),
	}

	embPast := make([][]float64, T)
	for t := 0; t < T; t++ {
		x := make([]float64, 0, tftPastDim)
		x = append(x, contextNorm[t])
		x = append(x, timeFeatures(series.TimeAt(startIdx+t))...)
		embPast[t], f.pastCaches[t] = m.embPast.Forward(x)
	}
	var hsE [][]float64
	var finalE nn.LSTMState
	hsE, finalE, f.encCaches = m.enc.RunSequence(embPast, m.enc.NewLSTMState())

	embFut := make([][]float64, H)
	for k := 0; k < H; k++ {
		feats := timeFeatures(series.TimeAt(startIdx + T + k))
		embFut[k], f.futCaches[k] = m.embFut.Forward(feats)
	}
	var hsD [][]float64
	hsD, _, f.decCaches = m.dec.RunSequence(embFut, finalE)

	x := nn.NewMat(T+H, m.cfg.Hidden)
	for t := 0; t < T; t++ {
		copy(x.Row(t), hsE[t])
	}
	for k := 0; k < H; k++ {
		copy(x.Row(T+k), hsD[k])
	}
	attnOut, attnBackward := m.attn.Apply(x)
	f.attnBackward = attnBackward

	if m.grn != nil {
		f.grnCaches = make([]*nn.GRNCache, H)
	}
	for k := 0; k < H; k++ {
		z := make([]float64, m.cfg.Hidden)
		arow := attnOut.Row(T + k)
		for j := range z {
			z[j] = arow[j] + hsD[k][j] // residual connection
		}
		if m.grn != nil {
			z, f.grnCaches[k] = m.grn.Forward(z)
		}
		f.outs[k], f.headCaches[k] = m.head.Forward(z)
	}
	return f
}

// backward propagates per-step, per-level output gradients through the
// whole network, accumulating parameter gradients.
func (m *TFT) backward(f *tftForward, dOuts [][]float64) {
	T, H := f.T, f.H
	dA := nn.NewMat(T+H, m.cfg.Hidden)
	dhsD := make([][]float64, H)
	for k := 0; k < H; k++ {
		dz := m.head.Backward(f.headCaches[k], dOuts[k])
		if m.grn != nil {
			dz = m.grn.Backward(f.grnCaches[k], dz)
		}
		copy(dA.Row(T+k), dz)
		dhsD[k] = append([]float64{}, dz...) // residual path
	}

	dX := f.attnBackward(dA)
	dhsE := make([][]float64, T)
	for t := 0; t < T; t++ {
		dhsE[t] = append([]float64{}, dX.Row(t)...)
	}
	for k := 0; k < H; k++ {
		row := dX.Row(T + k)
		for j := range dhsD[k] {
			dhsD[k][j] += row[j]
		}
	}

	dEmbFut, dS0dec := m.dec.BackwardSequence(f.decCaches, dhsD, nn.LSTMState{})
	for k := 0; k < H; k++ {
		m.embFut.Backward(f.futCaches[k], dEmbFut[k])
	}
	dEmbPast, _ := m.enc.BackwardSequence(f.encCaches, dhsE, dS0dec)
	for t := 0; t < T; t++ {
		m.embPast.Backward(f.pastCaches[t], dEmbPast[t])
	}
}

func (m *TFT) trainWindow(train *timeseries.Series, w timeseries.Window, opt *nn.Adam) {
	contextNorm := m.scaler.Transform(w.Context)
	targetNorm := m.scaler.Transform(w.Target)
	startIdx := w.Origin - len(w.Context)

	m.params.ZeroGrads()
	f := m.forward(train, contextNorm, startIdx, len(w.Target))
	dOuts := make([][]float64, f.H)
	for k := 0; k < f.H; k++ {
		g := make([]float64, len(m.cfg.Levels))
		for i, tau := range m.cfg.Levels {
			g[i] = PinballGrad(tau, targetNorm[k], f.outs[k][i])
		}
		dOuts[k] = g
	}
	m.backward(f, dOuts)
	m.params.ClipGradNorm(5)
	opt.Step(m.params)
}

// Predict implements Forecaster via the median head (or the single trained
// level for TFT-point).
func (m *TFT) Predict(history *timeseries.Series, h int) ([]float64, error) {
	f, err := m.predictGrid(history, h)
	if err != nil {
		return nil, err
	}
	return f.Mean, nil
}

// predictGrid runs one forward pass and returns the trained quantile grid
// denormalized.
func (m *TFT) predictGrid(history *timeseries.Series, h int) (*QuantileForecast, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: non-positive horizon %d", h)
	}
	context, err := contextTail(history, m.cfg.Context)
	if err != nil {
		return nil, err
	}
	contextNorm := m.scaler.Transform(context)
	startIdx := history.Len() - m.cfg.Context
	fw := m.forward(history, contextNorm, startIdx, h)

	out := &QuantileForecast{
		Levels: m.cfg.Levels,
		Values: make([][]float64, h),
		Mean:   make([]float64, h),
	}
	for k := 0; k < h; k++ {
		row := make([]float64, len(m.cfg.Levels))
		for i := range m.cfg.Levels {
			row[i] = m.scaler.InverseOne(fw.outs[k][i])
		}
		out.Values[k] = row
	}
	out.Enforce()
	for k := 0; k < h; k++ {
		out.Mean[k] = out.At(k, 0.5)
	}
	return out, nil
}

// PredictQuantiles implements QuantileForecaster. Levels inside the trained
// grid are interpolated; levels outside it are clamped to the grid edges
// (the pre-specified grid limitation from Section III-B).
func (m *TFT) PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	levels, err := normalizeLevels(levels)
	if err != nil {
		return nil, err
	}
	grid, err := m.predictGrid(history, h)
	if err != nil {
		return nil, err
	}
	out := &QuantileForecast{
		Levels: levels,
		Values: make([][]float64, h),
		Mean:   grid.Mean,
	}
	for k := 0; k < h; k++ {
		row := make([]float64, len(levels))
		for i, tau := range levels {
			row[i] = grid.At(k, tau)
		}
		out.Values[k] = row
	}
	return out, nil
}

var _ QuantileForecaster = (*TFT)(nil)
