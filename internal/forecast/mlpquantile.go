package forecast

import (
	"fmt"
	"math/rand"
	"time"

	"robustscale/internal/nn"
	"robustscale/internal/timeseries"
)

// QuantileMLP is the feed-forward counterpart of TFT's output design: the
// same two-hidden-layer network as MLP, but its head directly emits a
// pre-specified grid of quantiles per horizon step and is trained on the
// summed pinball loss. Section III-B notes that an MLP "can be trained to
// output distribution parameters or predict specific quantiles"; MLP
// implements the former, this type the latter.
type QuantileMLP struct {
	cfg MLPConfig
	// Levels is the trained quantile grid; defaults to DefaultLevels.
	Levels []float64

	horizon int
	scaler  timeseries.StandardScaler
	l1, l2  *nn.Dense
	head    *nn.Dense
	params  nn.Params
	fitted  bool
}

// NewQuantileMLP returns an untrained pinball-loss MLP.
func NewQuantileMLP(cfg MLPConfig, levels []float64) *QuantileMLP {
	base := NewMLP(cfg)
	m := &QuantileMLP{cfg: base.cfg, Levels: levels}
	if len(m.Levels) == 0 {
		m.Levels = append([]float64{}, DefaultLevels...)
	}
	return m
}

// Name implements Forecaster.
func (m *QuantileMLP) Name() string { return "mlp-quantile" }

// build constructs the network for the given horizon.
func (m *QuantileMLP) build(h int) {
	m.horizon = h
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	in := m.cfg.Context + timeFeatureDim
	m.l1 = nn.NewDense("mlpq.l1", in, m.cfg.Hidden, rng)
	m.l2 = nn.NewDense("mlpq.l2", m.cfg.Hidden, m.cfg.Hidden, rng)
	m.head = nn.NewDense("mlpq.head", m.cfg.Hidden, h*len(m.Levels), rng)
	m.params = append(append(m.l1.Params(), m.l2.Params()...), m.head.Params()...)
}

// FitHorizon trains the network for a specific forecast horizon.
func (m *QuantileMLP) FitHorizon(train *timeseries.Series, h int) error {
	if h <= 0 {
		return fmt.Errorf("forecast: quantile mlp needs a positive horizon, got %d", h)
	}
	levels, err := normalizeLevels(m.Levels)
	if err != nil {
		return err
	}
	m.Levels = levels
	m.build(h)
	m.scaler.Fit(train.Values)

	windows, err := trainingWindows(train, m.cfg.Context, h, m.cfg.MaxWindows)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed + 1))
	opt := nn.NewAdam(m.cfg.LR)
	nl := len(levels)
	order := rng.Perm(len(windows))
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, wi := range order {
			w := windows[wi]
			x := m.input(w.Context, train.TimeAt(w.Origin))
			target := m.scaler.Transform(w.Target)

			m.params.ZeroGrads()
			out, caches := m.forward(x)
			dOut := make([]float64, len(out))
			for t := 0; t < h; t++ {
				for i, tau := range levels {
					dOut[t*nl+i] = PinballGrad(tau, target[t], out[t*nl+i])
				}
			}
			m.backward(caches, dOut)
			m.params.ClipGradNorm(5)
			opt.Step(m.params)
		}
	}
	m.fitted = true
	return nil
}

// Fit implements Forecaster with the paper's default 72-step horizon.
func (m *QuantileMLP) Fit(train *timeseries.Series) error { return m.FitHorizon(train, 72) }

func (m *QuantileMLP) input(context []float64, origin time.Time) []float64 {
	x := make([]float64, 0, m.cfg.Context+timeFeatureDim)
	x = append(x, m.scaler.Transform(context)...)
	x = append(x, timeFeatures(origin)...)
	return x
}

func (m *QuantileMLP) forward(x []float64) ([]float64, *mlpCaches) {
	caches := &mlpCaches{}
	var h1, h2 []float64
	h1, caches.c1 = m.l1.Forward(x)
	h1, caches.a1 = nn.Tanh.Forward(h1)
	h2, caches.c2 = m.l2.Forward(h1)
	h2, caches.a2 = nn.Tanh.Forward(h2)
	out, ch := m.head.Forward(h2)
	caches.ch = ch
	return out, caches
}

func (m *QuantileMLP) backward(caches *mlpCaches, dOut []float64) {
	d := m.head.Backward(caches.ch, dOut)
	d = nn.Tanh.Backward(caches.a2, d)
	d = m.l2.Backward(caches.c2, d)
	d = nn.Tanh.Backward(caches.a1, d)
	m.l1.Backward(caches.c1, d)
}

// Predict implements Forecaster via the trained median.
func (m *QuantileMLP) Predict(history *timeseries.Series, h int) ([]float64, error) {
	f, err := m.predictGrid(history, h)
	if err != nil {
		return nil, err
	}
	return f.Mean, nil
}

// predictGrid runs one forward pass and denormalizes the trained grid.
func (m *QuantileMLP) predictGrid(history *timeseries.Series, h int) (*QuantileForecast, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 || h > m.horizon {
		return nil, fmt.Errorf("forecast: quantile mlp trained for horizon %d, requested %d", m.horizon, h)
	}
	context, err := contextTail(history, m.cfg.Context)
	if err != nil {
		return nil, err
	}
	out, _ := m.forward(m.input(context, history.TimeAt(history.Len())))
	nl := len(m.Levels)
	f := &QuantileForecast{
		Levels: m.Levels,
		Values: make([][]float64, h),
		Mean:   make([]float64, h),
	}
	for t := 0; t < h; t++ {
		row := make([]float64, nl)
		for i := 0; i < nl; i++ {
			row[i] = m.scaler.InverseOne(out[t*nl+i])
		}
		f.Values[t] = row
	}
	f.Enforce()
	for t := 0; t < h; t++ {
		f.Mean[t] = f.At(t, 0.5)
	}
	return f, nil
}

// PredictQuantiles implements QuantileForecaster: trained grid levels with
// interpolation in between, clamped outside (the pre-specified-grid
// limitation, as for TFT).
func (m *QuantileMLP) PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	levels, err := normalizeLevels(levels)
	if err != nil {
		return nil, err
	}
	grid, err := m.predictGrid(history, h)
	if err != nil {
		return nil, err
	}
	out := &QuantileForecast{
		Levels: levels,
		Values: make([][]float64, h),
		Mean:   grid.Mean,
	}
	for t := 0; t < h; t++ {
		row := make([]float64, len(levels))
		for i, tau := range levels {
			row[i] = grid.At(t, tau)
		}
		out.Values[t] = row
	}
	return out, nil
}

var _ QuantileForecaster = (*QuantileMLP)(nil)
