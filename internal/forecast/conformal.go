package forecast

import (
	"fmt"
	"sort"

	"robustscale/internal/timeseries"
)

// Conformal wraps any quantile forecaster with split-conformal calibration
// (conformalized quantile regression): part of the training data is held
// out, the base model's quantile errors on it are measured, and every
// future forecast is shifted by the empirical error quantile. The result
// has distribution-free finite-sample coverage guarantees — it repairs
// exactly the under-coverage that makes an otherwise-accurate forecaster
// (DeepAR on the Alibaba trace, per Table I) unsafe to scale on.
type Conformal struct {
	// Base is the wrapped quantile forecaster.
	Base QuantileForecaster
	// Levels is the quantile grid calibrated at Fit time; requests in
	// between are interpolated. Defaults to ScalingLevels.
	Levels []float64
	// CalibFrac is the tail fraction of the training series held out for
	// calibration (default 0.2).
	CalibFrac float64
	// Horizon is the forecast length used during calibration (default
	// 72). Offsets are pooled across horizon steps.
	Horizon int

	offsets []float64 // per Levels entry
	fitted  bool

	warm conformalWarm
}

// conformalWarm caches the interpolated per-request-level offsets (Fit-time
// constants for a fixed levels slice) and the reused output fan.
type conformalWarm struct {
	levels levelsCache
	offs   []float64
	offLv  []float64
	fan    *QuantileForecast
}

// NewConformal wraps base with default settings.
func NewConformal(base QuantileForecaster) *Conformal {
	return &Conformal{Base: base, CalibFrac: 0.2, Horizon: 72}
}

// Name implements Forecaster.
func (c *Conformal) Name() string { return c.Base.Name() + "-conformal" }

// Fit trains the base model on the head of the series and calibrates
// per-level offsets on the held-out tail.
func (c *Conformal) Fit(train *timeseries.Series) error {
	c.WarmReset()
	if c.CalibFrac <= 0 || c.CalibFrac >= 1 {
		return fmt.Errorf("forecast: conformal calibration fraction %v outside (0, 1)", c.CalibFrac)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("forecast: conformal horizon %d", c.Horizon)
	}
	levels := c.Levels
	if len(levels) == 0 {
		levels = append([]float64{}, ScalingLevels...)
	}
	levels, err := normalizeLevels(levels)
	if err != nil {
		return err
	}
	c.Levels = levels

	cut := int(float64(train.Len()) * (1 - c.CalibFrac))
	if cut <= 0 || train.Len()-cut < c.Horizon {
		return fmt.Errorf("forecast: training series of %d too short for conformal calibration (horizon %d)", train.Len(), c.Horizon)
	}
	if err := c.Base.Fit(train.Slice(0, cut)); err != nil {
		return err
	}

	// Collect per-level conformity scores y - yhat_tau over the
	// calibration span.
	scores := make([][]float64, len(levels))
	for origin := cut; origin+c.Horizon <= train.Len(); origin += c.Horizon {
		f, err := c.Base.PredictQuantiles(train.Slice(0, origin), c.Horizon, levels)
		if err != nil {
			return fmt.Errorf("forecast: conformal calibration at %d: %w", origin, err)
		}
		for t := 0; t < c.Horizon; t++ {
			y := train.At(origin + t)
			for i := range levels {
				scores[i] = append(scores[i], y-f.Values[t][i])
			}
		}
	}
	if len(scores[0]) == 0 {
		return fmt.Errorf("forecast: conformal calibration produced no scores")
	}

	// The tau-quantile forecast should sit above y a tau-fraction of the
	// time, i.e. the tau-quantile of the scores y - yhat should be zero.
	// Whatever it actually is becomes the additive correction, with the
	// standard (1+1/n) finite-sample inflation.
	c.offsets = make([]float64, len(levels))
	n := float64(len(scores[0]))
	for i, tau := range levels {
		sort.Float64s(scores[i])
		q := tau * (1 + 1/n)
		if q > 1 {
			q = 1
		}
		c.offsets[i] = timeseries.InterpolatedQuantile(scores[i], q)
	}
	c.fitted = true
	return nil
}

// offsetAt interpolates the calibrated offset for an arbitrary level.
func (c *Conformal) offsetAt(tau float64) float64 {
	levels := c.Levels
	if tau <= levels[0] {
		return c.offsets[0]
	}
	if tau >= levels[len(levels)-1] {
		return c.offsets[len(levels)-1]
	}
	i := sort.SearchFloat64s(levels, tau)
	if levels[i] == tau {
		return c.offsets[i]
	}
	lo, hi := i-1, i
	frac := (tau - levels[lo]) / (levels[hi] - levels[lo])
	return c.offsets[lo]*(1-frac) + c.offsets[hi]*frac
}

// Predict implements Forecaster: the base mean is left unadjusted.
func (c *Conformal) Predict(history *timeseries.Series, h int) ([]float64, error) {
	if !c.fitted {
		return nil, ErrNotFitted
	}
	return c.Base.Predict(history, h)
}

// PredictQuantiles implements QuantileForecaster: base quantiles plus the
// calibrated per-level offsets.
func (c *Conformal) PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if !c.fitted {
		return nil, ErrNotFitted
	}
	levels, err := normalizeLevels(levels)
	if err != nil {
		return nil, err
	}
	f, err := c.Base.PredictQuantiles(history, h, levels)
	if err != nil {
		return nil, err
	}
	out := &QuantileForecast{
		Levels: levels,
		Values: make([][]float64, h),
		Mean:   f.Mean,
	}
	for t := 0; t < h; t++ {
		row := make([]float64, len(levels))
		for i, tau := range levels {
			row[i] = f.Values[t][i] + c.offsetAt(tau)
		}
		out.Values[t] = row
	}
	out.Enforce()
	return out, nil
}

// WarmReset implements IncrementalForecaster, forwarding to the base.
func (c *Conformal) WarmReset() {
	c.warm = conformalWarm{}
	warmResetAll(c.Base)
}

// PredictQuantilesWarm implements IncrementalForecaster: bit-identical to
// PredictQuantiles, forwarding the warm path to the base when it supports
// one and reusing the offset row and output fan across rounds.
func (c *Conformal) PredictQuantilesWarm(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if !c.fitted {
		return nil, ErrNotFitted
	}
	w := &c.warm
	lv, err := w.levels.get(levels)
	if err != nil {
		return nil, err
	}
	var f *QuantileForecast
	if inc, ok := c.Base.(IncrementalForecaster); ok {
		f, err = inc.PredictQuantilesWarm(history, h, lv)
	} else {
		f, err = c.Base.PredictQuantiles(history, h, lv)
	}
	if err != nil {
		return nil, err
	}
	if len(w.offLv) != len(lv) || (len(lv) > 0 && &w.offLv[0] != &lv[0]) {
		w.offs = resizeFloats(w.offs, len(lv))
		for i, tau := range lv {
			w.offs[i] = c.offsetAt(tau)
		}
		w.offLv = lv
	}
	out := reuseFan(w.fan, h, lv)
	w.fan = out
	copy(out.Mean, f.Mean)
	for t := 0; t < h; t++ {
		row := out.Values[t]
		base := f.Values[t]
		for i := range lv {
			row[i] = base[i] + w.offs[i]
		}
	}
	out.Enforce()
	return out, nil
}

var (
	_ QuantileForecaster    = (*Conformal)(nil)
	_ IncrementalForecaster = (*Conformal)(nil)
)
