package forecast

import (
	"bytes"
	"testing"
)

func TestTFTMultiHeadTrainsAndPredicts(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 0.5, 71)
	hist, from := splitHoldout(s, 12)
	m := NewTFT(TFTConfig{
		Context: 24, Hidden: 16, Epochs: 10, LR: 5e-3, Seed: 1,
		MaxWindows: 96, Levels: []float64{0.1, 0.5, 0.9}, TrainHorizon: 12,
		Heads: 4,
	})
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(hist, 12)
	if err != nil {
		t.Fatal(err)
	}
	if mse := mseAgainst(pred, s, from); mse > 40 {
		t.Errorf("multi-head TFT MSE = %v", mse)
	}
	f, err := m.PredictQuantiles(hist, 12, []float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTFTMultiHeadRejectsIndivisibleHidden(t *testing.T) {
	m := NewTFT(TFTConfig{Context: 24, Hidden: 10, Heads: 3, TrainHorizon: 6,
		Levels: []float64{0.5}, Epochs: 1})
	if err := m.Fit(sineSeries(300, 24, 50, 10)); err == nil {
		t.Error("hidden not divisible by heads should fail")
	}
}

func TestTFTMultiHeadSaveLoad(t *testing.T) {
	s := noisySine(500, 24, 50, 10, 1, 72)
	hist, _ := splitHoldout(s, 6)
	cfg := TFTConfig{Context: 24, Hidden: 8, Epochs: 2, Seed: 1, MaxWindows: 48,
		Levels: []float64{0.5, 0.9}, TrainHorizon: 6, Heads: 2}
	m := NewTFT(cfg)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewTFT(cfg)
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	assertSameForecasts(t, m, m2, hist, 6)
}
