package forecast

import (
	"encoding/gob"
	"fmt"
	"io"

	"robustscale/internal/timeseries"
)

// Trained models can be persisted and restored so a production control
// plane does not retrain on every restart. Each model writes a small gob
// envelope (its configuration and normalization statistics) followed by
// its parameters; Load reconstructs the architecture from the envelope
// and then restores the weights, validating names and shapes.

// arimaState is the gob image of a fitted ARIMA model.
type arimaState struct {
	P, D, Q        int
	SeasonalPeriod int
	Phi, Theta     []float64
	Constant       float64
	Sigma2         float64
}

// Save writes the fitted model.
func (a *ARIMA) Save(w io.Writer) error {
	if !a.fitted {
		return ErrNotFitted
	}
	st := arimaState{
		P: a.P, D: a.D, Q: a.Q, SeasonalPeriod: a.SeasonalPeriod,
		Phi: a.phi, Theta: a.theta, Constant: a.constant, Sigma2: a.sigma2,
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("forecast: saving %s: %w", a.Name(), err)
	}
	return nil
}

// Load restores a model saved by Save, overwriting the receiver's order.
func (a *ARIMA) Load(r io.Reader) error {
	var st arimaState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("forecast: loading arima: %w", err)
	}
	a.P, a.D, a.Q, a.SeasonalPeriod = st.P, st.D, st.Q, st.SeasonalPeriod
	a.phi, a.theta, a.constant, a.sigma2 = st.Phi, st.Theta, st.Constant, st.Sigma2
	a.WarmReset() // restored weights invalidate any cached warm state
	a.fitted = true
	return nil
}

// neuralEnvelope is the shared gob header of the neural models.
type neuralEnvelope struct {
	Kind    string
	Horizon int
	Mean    float64
	Std     float64
}

// Save writes the trained network and normalization statistics.
func (m *MLP) Save(w io.Writer) error {
	if !m.fitted {
		return ErrNotFitted
	}
	env := neuralEnvelope{Kind: "mlp", Horizon: m.horizon, Mean: m.scaler.Mean, Std: m.scaler.Std}
	if err := gob.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("forecast: saving mlp: %w", err)
	}
	return m.params.Save(w)
}

// Load restores a model saved by Save. The receiver must have been
// constructed with the same MLPConfig.
func (m *MLP) Load(r io.Reader) error {
	var env neuralEnvelope
	dec := gob.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("forecast: loading mlp: %w", err)
	}
	if env.Kind != "mlp" {
		return fmt.Errorf("forecast: snapshot is %q, not mlp", env.Kind)
	}
	m.build(env.Horizon)
	m.horizon = env.Horizon
	m.scaler = timeseries.StandardScaler{Mean: env.Mean, Std: env.Std}
	if err := m.params.Load(r); err != nil {
		return err
	}
	m.fitted = true
	return nil
}

// Save writes the trained network and normalization statistics.
func (d *DeepAR) Save(w io.Writer) error {
	if !d.fitted {
		return ErrNotFitted
	}
	env := neuralEnvelope{Kind: "deepar", Mean: d.scaler.Mean, Std: d.scaler.Std}
	if err := gob.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("forecast: saving deepar: %w", err)
	}
	return d.params.Save(w)
}

// Load restores a model saved by Save. The receiver must have been
// constructed with the same DeepARConfig.
func (d *DeepAR) Load(r io.Reader) error {
	var env neuralEnvelope
	dec := gob.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("forecast: loading deepar: %w", err)
	}
	if env.Kind != "deepar" {
		return fmt.Errorf("forecast: snapshot is %q, not deepar", env.Kind)
	}
	d.build()
	d.WarmReset() // restored weights invalidate any cached recurrent state
	d.scaler = timeseries.StandardScaler{Mean: env.Mean, Std: env.Std}
	if err := d.params.Load(r); err != nil {
		return err
	}
	d.fitted = true
	return nil
}

// Save writes the trained network and normalization statistics.
func (m *TFT) Save(w io.Writer) error {
	if !m.fitted {
		return ErrNotFitted
	}
	env := neuralEnvelope{Kind: "tft", Mean: m.scaler.Mean, Std: m.scaler.Std}
	if err := gob.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("forecast: saving tft: %w", err)
	}
	return m.params.Save(w)
}

// Load restores a model saved by Save. The receiver must have been
// constructed with the same TFTConfig (including the quantile grid).
func (m *TFT) Load(r io.Reader) error {
	var env neuralEnvelope
	dec := gob.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("forecast: loading tft: %w", err)
	}
	if env.Kind != "tft" {
		return fmt.Errorf("forecast: snapshot is %q, not tft", env.Kind)
	}
	if err := m.build(); err != nil {
		return err
	}
	m.scaler = timeseries.StandardScaler{Mean: env.Mean, Std: env.Std}
	if err := m.params.Load(r); err != nil {
		return err
	}
	m.fitted = true
	return nil
}

// qb5000State is the gob image of the non-neural QB5000 components.
type qb5000State struct {
	Mean, Std float64
	LinCoef   [][]float64
	KernelX   [][]float64
	KernelY   [][]float64
}

// Save writes all three ensemble components.
func (q *QB5000) Save(w io.Writer) error {
	if !q.fitted {
		return ErrNotFitted
	}
	st := qb5000State{
		Mean: q.scaler.Mean, Std: q.scaler.Std,
		LinCoef: q.linCoef, KernelX: q.kernelX, KernelY: q.kernelY,
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("forecast: saving qb5000: %w", err)
	}
	return q.params.Save(w)
}

// Load restores a model saved by Save. The receiver must have been
// constructed with the same QB5000Config.
func (q *QB5000) Load(r io.Reader) error {
	var st qb5000State
	dec := gob.NewDecoder(r)
	if err := dec.Decode(&st); err != nil {
		return fmt.Errorf("forecast: loading qb5000: %w", err)
	}
	q.scaler = timeseries.StandardScaler{Mean: st.Mean, Std: st.Std}
	q.linCoef, q.kernelX, q.kernelY = st.LinCoef, st.KernelX, st.KernelY
	q.WarmReset() // restored weights invalidate any cached recurrent state
	q.buildLSTM()
	if err := q.params.Load(r); err != nil {
		return err
	}
	q.fitted = true
	return nil
}
