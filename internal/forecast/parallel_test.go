package forecast

import (
	"runtime"
	"testing"
)

// The parallel pipeline's whole contract is that worker count is a pure
// performance knob: quantile outputs and fitted weights must be
// bit-identical whether the work runs on one goroutine or many. These
// tests pin that contract with exact float comparisons.

// quantilesEqual compares two forecasts bit-for-bit.
func quantilesEqual(t *testing.T, name string, a, b *QuantileForecast) {
	t.Helper()
	if len(a.Values) != len(b.Values) {
		t.Fatalf("%s: %d vs %d steps", name, len(a.Values), len(b.Values))
	}
	for step := range a.Values {
		if a.Mean[step] != b.Mean[step] {
			t.Fatalf("%s: mean[%d] %v != %v", name, step, a.Mean[step], b.Mean[step])
		}
		for i := range a.Values[step] {
			if a.Values[step][i] != b.Values[step][i] {
				t.Fatalf("%s: values[%d][%d] %v != %v",
					name, step, i, a.Values[step][i], b.Values[step][i])
			}
		}
	}
}

// parallelDeepAR keeps the determinism tests fast.
func parallelDeepAR(workers, batch int) *DeepAR {
	return NewDeepAR(DeepARConfig{
		Context: 16, Hidden: 8, Epochs: 2, Seed: 5, MaxWindows: 24,
		Samples: 24, TrainHorizon: 8, Workers: workers, Batch: batch,
	})
}

// TestDeepARSamplingDeterministicAcrossWorkers fits identical models and
// checks that Monte-Carlo sampling gives bitwise equal quantiles for
// worker counts 1, 3 and 8 — and under GOMAXPROCS=1, which is the
// satellite regression from the issue: serial execution must reproduce
// the parallel pool exactly.
func TestDeepARSamplingDeterministicAcrossWorkers(t *testing.T) {
	train := sineSeries(220, 24, 50, 20)
	var ref *QuantileForecast
	for _, workers := range []int{1, 3, 8} {
		d := parallelDeepAR(workers, 1)
		if err := d.Fit(train); err != nil {
			t.Fatal(err)
		}
		f, err := d.PredictQuantiles(train, 6, DefaultLevels)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = f
			continue
		}
		quantilesEqual(t, "deepar workers", ref, f)
	}

	t.Run("gomaxprocs1", func(t *testing.T) {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		d := parallelDeepAR(8, 1)
		if err := d.Fit(train); err != nil {
			t.Fatal(err)
		}
		f, err := d.PredictQuantiles(train, 6, DefaultLevels)
		if err != nil {
			t.Fatal(err)
		}
		quantilesEqual(t, "deepar gomaxprocs=1", ref, f)
	})
}

// TestDeepARBatchTrainingDeterministicAcrossWorkers pins that
// data-parallel gradient computation merges to bit-identical weights for
// any worker count (same batch size, so the optimizer walk is the same).
func TestDeepARBatchTrainingDeterministicAcrossWorkers(t *testing.T) {
	train := sineSeries(220, 24, 50, 20)
	var ref *QuantileForecast
	for _, workers := range []int{1, 4} {
		d := parallelDeepAR(workers, 4)
		if err := d.Fit(train); err != nil {
			t.Fatal(err)
		}
		f, err := d.PredictQuantiles(train, 6, DefaultLevels)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = f
			continue
		}
		quantilesEqual(t, "deepar batch training", ref, f)
	}
}

// TestTFTBatchTrainingDeterministicAcrossWorkers is the same contract for
// the TFT's replica training path, including the gated variant.
func TestTFTBatchTrainingDeterministicAcrossWorkers(t *testing.T) {
	train := sineSeries(220, 24, 50, 20)
	for _, gated := range []bool{false, true} {
		var ref *QuantileForecast
		for _, workers := range []int{1, 4} {
			m := NewTFT(TFTConfig{
				Context: 16, Hidden: 8, Epochs: 2, Seed: 5, MaxWindows: 24,
				TrainHorizon: 8, Gated: gated, Workers: workers, Batch: 4,
			})
			if err := m.Fit(train); err != nil {
				t.Fatal(err)
			}
			f, err := m.PredictQuantiles(train, 6, DefaultLevels)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = f
				continue
			}
			quantilesEqual(t, "tft batch training", ref, f)
		}
	}
}

// TestTFTBatchOneMatchesSequential pins that Batch=1 (the default) walks
// the optimizer exactly like the classic per-window regime even though it
// now routes through a replica: gradients land in zeroed buffers and are
// merged with a single exact addition.
func TestTFTBatchOneMatchesSequential(t *testing.T) {
	train := sineSeries(220, 24, 50, 20)
	var ref *QuantileForecast
	for _, batch := range []int{1, 1} { // two independent fits, same regime
		m := NewTFT(TFTConfig{
			Context: 16, Hidden: 8, Epochs: 2, Seed: 5, MaxWindows: 24,
			TrainHorizon: 8, Batch: batch,
		})
		if err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
		f, err := m.PredictQuantiles(train, 6, DefaultLevels)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = f
			continue
		}
		quantilesEqual(t, "tft batch=1 refit", ref, f)
	}
}

// TestEnsembleParallelDeterministic checks that concurrent member
// prediction with ordered Vincentization matches the single-worker merge.
func TestEnsembleParallelDeterministic(t *testing.T) {
	train := sineSeries(220, 24, 50, 20)
	build := func(workers int) *Ensemble {
		e := NewEnsemble(
			parallelDeepAR(1, 1),
			NewTFT(TFTConfig{
				Context: 16, Hidden: 8, Epochs: 2, Seed: 5, MaxWindows: 24,
				TrainHorizon: 8,
			}),
		)
		e.Workers = workers
		return e
	}
	var ref *QuantileForecast
	for _, workers := range []int{1, 2} {
		e := build(workers)
		if err := e.Fit(train); err != nil {
			t.Fatal(err)
		}
		f, err := e.PredictQuantiles(train, 6, DefaultLevels)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = f
			continue
		}
		quantilesEqual(t, "ensemble workers", ref, f)
	}
}
