package forecast

import (
	"math"
	"testing"

	"robustscale/internal/timeseries"
)

// biasedQF is a deliberately miscalibrated forecaster: all its quantiles
// are the last value (zero spread), so its 0.9-quantile under-covers
// badly. Conformal wrapping must repair the coverage.
type biasedQF struct{ fitted bool }

func (b *biasedQF) Name() string { return "biased" }
func (b *biasedQF) Fit(*timeseries.Series) error {
	b.fitted = true
	return nil
}
func (b *biasedQF) Predict(history *timeseries.Series, h int) ([]float64, error) {
	out := make([]float64, h)
	last := history.At(history.Len() - 1)
	for i := range out {
		out[i] = last
	}
	return out, nil
}
func (b *biasedQF) PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	mean, err := b.Predict(history, h)
	if err != nil {
		return nil, err
	}
	f := &QuantileForecast{Levels: levels, Values: make([][]float64, h), Mean: mean}
	for t := 0; t < h; t++ {
		row := make([]float64, len(levels))
		for i := range levels {
			row[i] = mean[t] // zero spread: every quantile identical
		}
		f.Values[t] = row
	}
	return f, nil
}

func conformalCoverage(t *testing.T, m QuantileForecaster, s *timeseries.Series, start, h int, tau float64) float64 {
	t.Helper()
	covered, total := 0, 0
	for origin := start; origin+h <= s.Len(); origin += h {
		f, err := m.PredictQuantiles(s.Slice(0, origin), h, []float64{tau})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < h; step++ {
			if f.Values[step][0] >= s.At(origin+step) {
				covered++
			}
			total++
		}
	}
	return float64(covered) / float64(total)
}

func TestConformalRepairsCoverage(t *testing.T) {
	// A level series with noise: the zero-spread forecaster covers ~50%
	// at every nominal level regardless of forecast origin, which is the
	// clean premise for checking the repair (a seasonal series would
	// additionally entangle origin phase with the score distribution).
	s := noisySine(1200, 48, 100, 0, 5, 91)
	train := s.Slice(0, 900)

	raw := &biasedQF{}
	if err := raw.Fit(train); err != nil {
		t.Fatal(err)
	}
	wrapped := NewConformal(&biasedQF{})
	wrapped.Horizon = 48
	wrapped.Levels = []float64{0.5, 0.8, 0.9}
	if err := wrapped.Fit(train); err != nil {
		t.Fatal(err)
	}

	rawCov := conformalCoverage(t, raw, s, 900, 48, 0.9)
	fixedCov := conformalCoverage(t, wrapped, s, 900, 48, 0.9)
	// The zero-spread forecaster covers ~50% at the "0.9" level; the
	// conformal wrap must push it near nominal.
	if rawCov > 0.7 {
		t.Fatalf("raw coverage %v unexpectedly good; test premise broken", rawCov)
	}
	if fixedCov < 0.8 {
		t.Errorf("conformal coverage = %v, want near 0.9 (raw was %v)", fixedCov, rawCov)
	}
	if math.Abs(fixedCov-0.9) > math.Abs(rawCov-0.9) {
		t.Errorf("conformal (%v) further from nominal than raw (%v)", fixedCov, rawCov)
	}
}

func TestConformalName(t *testing.T) {
	c := NewConformal(&biasedQF{})
	if c.Name() != "biased-conformal" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestConformalInterpolatesOffsets(t *testing.T) {
	s := noisySine(1000, 48, 100, 20, 5, 92)
	c := NewConformal(&biasedQF{})
	c.Horizon = 48
	c.Levels = []float64{0.5, 0.9}
	if err := c.Fit(s.Slice(0, 800)); err != nil {
		t.Fatal(err)
	}
	// A level between the calibrated grid points interpolates between
	// their offsets.
	mid := c.offsetAt(0.7)
	lo, hi := c.offsetAt(0.5), c.offsetAt(0.9)
	if lo > hi {
		lo, hi = hi, lo
	}
	if mid < lo-1e-9 || mid > hi+1e-9 {
		t.Errorf("offset(0.7) = %v outside [%v, %v]", mid, lo, hi)
	}
	// Outside the grid clamps.
	if c.offsetAt(0.99) != c.offsetAt(0.9) {
		t.Errorf("offset above grid should clamp")
	}
}

func TestConformalValidation(t *testing.T) {
	s := sineSeries(400, 48, 100, 10)
	c := NewConformal(&biasedQF{})
	if _, err := c.PredictQuantiles(s, 4, []float64{0.5}); err != ErrNotFitted {
		t.Errorf("err = %v", err)
	}
	if _, err := c.Predict(s, 4); err != ErrNotFitted {
		t.Errorf("err = %v", err)
	}
	bad := NewConformal(&biasedQF{})
	bad.CalibFrac = 1.5
	if err := bad.Fit(s); err == nil {
		t.Error("bad fraction should fail")
	}
	tiny := NewConformal(&biasedQF{})
	tiny.Horizon = 1000
	if err := tiny.Fit(s); err == nil {
		t.Error("horizon beyond calibration span should fail")
	}
}

func TestConformalOnRealModel(t *testing.T) {
	// End-to-end: conformal-wrapped seasonal-naive stays a valid quantile
	// forecaster with ordered bands.
	s := noisySine(900, 48, 100, 20, 3, 93)
	c := NewConformal(NewSeasonalNaive(48))
	c.Horizon = 48
	if err := c.Fit(s.Slice(0, 700)); err != nil {
		t.Fatal(err)
	}
	f, err := c.PredictQuantiles(s.Slice(0, 800), 48, []float64{0.5, 0.7, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	for step := range f.Values {
		row := f.Values[step]
		if !(row[0] <= row[1] && row[1] <= row[2]) {
			t.Fatalf("step %d not ordered: %v", step, row)
		}
	}
}
