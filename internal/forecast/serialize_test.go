package forecast

import (
	"bytes"
	"testing"

	"robustscale/internal/timeseries"
)

// roundTripQuantiles saves a model, loads it into a fresh instance built
// from the same config, and asserts identical forecasts.
func assertSameForecasts(t *testing.T, a, b QuantileForecaster, hist *timeseries.Series, h int) {
	t.Helper()
	levels := []float64{0.1, 0.5, 0.9}
	fa, err := a.PredictQuantiles(hist, h, levels)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.PredictQuantiles(hist, h, levels)
	if err != nil {
		t.Fatal(err)
	}
	for step := range fa.Values {
		for i := range fa.Values[step] {
			if fa.Values[step][i] != fb.Values[step][i] {
				t.Fatalf("forecasts differ at step %d level %d: %v vs %v",
					step, i, fa.Values[step][i], fb.Values[step][i])
			}
		}
	}
}

func TestARIMASaveLoad(t *testing.T) {
	s := noisySine(600, 48, 100, 20, 2, 31)
	hist, _ := splitHoldout(s, 12)
	m := NewSeasonalARIMA(4, 0, 1, 48)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewARIMA(0, 0, 0) // Load overwrites the order
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	assertSameForecasts(t, m, m2, hist, 12)
	if m2.Name() != m.Name() {
		t.Errorf("loaded name %q vs %q", m2.Name(), m.Name())
	}
}

func TestMLPSaveLoad(t *testing.T) {
	s := noisySine(500, 24, 50, 10, 1, 32)
	hist, _ := splitHoldout(s, 6)
	cfg := MLPConfig{Context: 24, Hidden: 12, Epochs: 5, Seed: 1, MaxWindows: 48}
	m := NewMLP(cfg)
	if err := m.FitHorizon(hist, 6); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP(cfg)
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	assertSameForecasts(t, m, m2, hist, 6)
}

func TestDeepARSaveLoad(t *testing.T) {
	s := noisySine(500, 24, 50, 10, 1, 33)
	hist, _ := splitHoldout(s, 6)
	cfg := DeepARConfig{Context: 24, Hidden: 10, Epochs: 3, Seed: 1, MaxWindows: 48, Samples: 30, TrainHorizon: 6}
	m := NewDeepAR(cfg)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewDeepAR(cfg)
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	assertSameForecasts(t, m, m2, hist, 6)
}

func TestTFTSaveLoad(t *testing.T) {
	s := noisySine(500, 24, 50, 10, 1, 34)
	hist, _ := splitHoldout(s, 6)
	cfg := TFTConfig{Context: 24, Hidden: 10, Epochs: 3, Seed: 1, MaxWindows: 48,
		Levels: []float64{0.1, 0.5, 0.9}, TrainHorizon: 6}
	m := NewTFT(cfg)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewTFT(cfg)
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	assertSameForecasts(t, m, m2, hist, 6)
}

func TestQB5000SaveLoad(t *testing.T) {
	s := noisySine(500, 24, 50, 10, 1, 35)
	hist, _ := splitHoldout(s, 6)
	cfg := QB5000Config{Context: 24, Hidden: 8, Epochs: 2, Seed: 1, MaxWindows: 48, TrainHorizon: 6}
	m := NewQB5000(cfg)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewQB5000(cfg)
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	p1, err := m.Predict(hist, 6)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m2.Predict(hist, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("predictions differ at %d: %v vs %v", i, p1[i], p2[i])
		}
	}
}

func TestSaveUnfittedFails(t *testing.T) {
	if err := NewARIMA(1, 0, 0).Save(&bytes.Buffer{}); err != ErrNotFitted {
		t.Errorf("arima err = %v", err)
	}
	if err := NewMLP(MLPConfig{}).Save(&bytes.Buffer{}); err != ErrNotFitted {
		t.Errorf("mlp err = %v", err)
	}
	if err := NewDeepAR(DeepARConfig{}).Save(&bytes.Buffer{}); err != ErrNotFitted {
		t.Errorf("deepar err = %v", err)
	}
	if err := NewTFT(TFTConfig{}).Save(&bytes.Buffer{}); err != ErrNotFitted {
		t.Errorf("tft err = %v", err)
	}
	if err := NewQB5000(QB5000Config{}).Save(&bytes.Buffer{}); err != ErrNotFitted {
		t.Errorf("qb5000 err = %v", err)
	}
}

func TestLoadKindMismatch(t *testing.T) {
	s := noisySine(500, 24, 50, 10, 1, 36)
	hist, _ := splitHoldout(s, 6)
	cfg := TFTConfig{Context: 24, Hidden: 10, Epochs: 1, Seed: 1, MaxWindows: 24,
		Levels: []float64{0.5}, TrainHorizon: 6}
	m := NewTFT(cfg)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	wrong := NewDeepAR(DeepARConfig{Context: 24, Hidden: 10, TrainHorizon: 6})
	if err := wrong.Load(&buf); err == nil {
		t.Error("loading tft snapshot into deepar should fail")
	}
}

func TestLoadGarbageFails(t *testing.T) {
	junk := bytes.NewBufferString("not a gob stream")
	if err := NewARIMA(1, 0, 0).Load(junk); err == nil {
		t.Error("garbage should fail")
	}
	if err := NewMLP(MLPConfig{}).Load(bytes.NewBufferString("junk")); err == nil {
		t.Error("garbage should fail")
	}
}
