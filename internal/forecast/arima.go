package forecast

import (
	"fmt"
	"math"

	"robustscale/internal/dist"
	"robustscale/internal/timeseries"
)

// ARIMA is a classic ARIMA(p, d, q) forecaster. Coefficients are estimated
// by the Hannan-Rissanen two-stage procedure: a long autoregression
// estimates innovations, then AR and MA coefficients are fitted jointly by
// ridge-regularized least squares. Quantile forecasts come from the
// Gaussian forecast distribution whose per-horizon variance accumulates the
// psi weights of the fitted model, exactly the "incorporate residuals"
// construction the paper describes for the ARIMA baseline.
type ARIMA struct {
	// P, D, Q are the autoregressive order, differencing order and
	// moving-average order.
	P, D, Q int
	// SeasonalPeriod, when positive, applies one round of seasonal
	// differencing at that lag before the regular differencing —
	// essential for workload traces with a daily cycle (e.g. 144 at
	// 10-minute sampling).
	SeasonalPeriod int

	fitted   bool
	phi      []float64 // AR coefficients
	theta    []float64 // MA coefficients
	constant float64
	sigma2   float64 // innovation variance

	warm arimaWarm
}

// arimaWarm caches the differenced working series and the innovation
// recursion across predict calls. Both are pure left-to-right functions of
// the raw history, so when the history is an append-extension of the
// cached one the warm path extends them with O(new observations) work
// instead of re-deriving O(N) arrays — and the extended arrays are
// bit-identical to what a cold call would compute, because every appended
// element is produced by exactly the operations the cold recursions would
// apply at that index.
type arimaWarm struct {
	ref   historyRef
	valid bool
	n     int       // raw observations consumed into w/eps
	w     []float64 // differenced working series of values[:n]
	eps   []float64 // innovations under the fitted model, aligned with w

	levels       levelsCache
	psi          []float64 // psi weights are h-prefix-stable; cache the longest
	pTail, qTail []float64
	meansDiff    []float64
	varDiff      []float64
	means        []float64
	variances    []float64
	diffBuf      []float64
	fan          *QuantileForecast
}

// NewARIMA returns an untrained ARIMA(p, d, q) model.
func NewARIMA(p, d, q int) *ARIMA { return &ARIMA{P: p, D: d, Q: q} }

// NewSeasonalARIMA returns an ARIMA(p, d, q) with one round of seasonal
// differencing at the given period.
func NewSeasonalARIMA(p, d, q, period int) *ARIMA {
	return &ARIMA{P: p, D: d, Q: q, SeasonalPeriod: period}
}

// Name implements Forecaster.
func (a *ARIMA) Name() string {
	if a.SeasonalPeriod > 0 {
		return fmt.Sprintf("arima(%d,%d,%d)s%d", a.P, a.D, a.Q, a.SeasonalPeriod)
	}
	return fmt.Sprintf("arima(%d,%d,%d)", a.P, a.D, a.Q)
}

// transform applies the seasonal then regular differencing to raw values,
// returning the working series for fitting/forecasting.
func (a *ARIMA) transform(values []float64) ([]float64, error) {
	sd := values
	if a.SeasonalPeriod > 0 {
		if len(values) <= a.SeasonalPeriod {
			return nil, fmt.Errorf("forecast: %s needs more than %d observations for seasonal differencing", a.Name(), a.SeasonalPeriod)
		}
		sd = make([]float64, len(values)-a.SeasonalPeriod)
		for i := range sd {
			sd[i] = values[i+a.SeasonalPeriod] - values[i]
		}
	}
	for k := 0; k < a.D; k++ {
		if len(sd) < 2 {
			return nil, fmt.Errorf("forecast: %s ran out of observations while differencing", a.Name())
		}
		next := make([]float64, len(sd)-1)
		for i := 1; i < len(sd); i++ {
			next[i-1] = sd[i] - sd[i-1]
		}
		sd = next
	}
	return sd, nil
}

// seasonalBase returns the seasonally differenced history (before regular
// differencing), needed as integration constants when undoing the regular
// differencing.
func (a *ARIMA) seasonalBase(values []float64) []float64 {
	if a.SeasonalPeriod <= 0 {
		return values
	}
	sd := make([]float64, len(values)-a.SeasonalPeriod)
	for i := range sd {
		sd[i] = values[i+a.SeasonalPeriod] - values[i]
	}
	return sd
}

// Fit estimates the model from the training series.
func (a *ARIMA) Fit(train *timeseries.Series) error {
	if a.P < 0 || a.D < 0 || a.Q < 0 {
		return fmt.Errorf("forecast: invalid ARIMA order (%d,%d,%d)", a.P, a.D, a.Q)
	}
	a.WarmReset() // new coefficients invalidate the cached recursions
	w, err := a.transform(train.Values)
	if err != nil {
		return err
	}
	minLen := 3 * (a.P + a.Q + 10)
	if len(w) < minLen {
		return fmt.Errorf("forecast: %s needs at least %d observations after differencing, have %d", a.Name(), minLen, len(w))
	}

	// Stage 1: long AR to estimate innovations.
	longOrder := a.P + a.Q + 5
	longPhi, longC, err := fitAR(w, longOrder)
	if err != nil {
		return err
	}
	resid := make([]float64, len(w))
	for t := longOrder; t < len(w); t++ {
		pred := longC
		for j := 0; j < longOrder; j++ {
			pred += longPhi[j] * w[t-1-j]
		}
		resid[t] = w[t] - pred
	}

	// Stage 2: regress w_t on its own lags and innovation lags.
	start := longOrder + a.Q
	if a.P > start {
		start = a.P
	}
	rows := len(w) - start
	cols := a.P + a.Q + 1
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		t := start + i
		row := make([]float64, cols)
		row[0] = 1
		for j := 0; j < a.P; j++ {
			row[1+j] = w[t-1-j]
		}
		for j := 0; j < a.Q; j++ {
			row[1+a.P+j] = resid[t-1-j]
		}
		x[i] = row
		y[i] = w[t]
	}
	coef, err := ridgeSolve(x, y, 1e-6)
	if err != nil {
		return err
	}
	a.constant = coef[0]
	a.phi = coef[1 : 1+a.P]
	a.theta = coef[1+a.P:]
	a.stabilize()

	// Final innovations under the fitted model for sigma^2.
	eps := make([]float64, len(w))
	ss, n := 0.0, 0
	for t := start; t < len(w); t++ {
		pred := a.constant
		for j := 0; j < a.P; j++ {
			pred += a.phi[j] * w[t-1-j]
		}
		for j := 0; j < a.Q; j++ {
			pred += a.theta[j] * eps[t-1-j]
		}
		eps[t] = w[t] - pred
		ss += eps[t] * eps[t]
		n++
	}
	a.sigma2 = ss / float64(n)
	a.fitted = true
	return nil
}

// Predict implements Forecaster: the mean forecast.
func (a *ARIMA) Predict(history *timeseries.Series, h int) ([]float64, error) {
	f, err := a.PredictQuantiles(history, h, []float64{0.5})
	if err != nil {
		return nil, err
	}
	return f.Mean, nil
}

// PredictQuantiles implements QuantileForecaster using the Gaussian
// forecast distribution.
func (a *ARIMA) PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if !a.fitted {
		return nil, ErrNotFitted
	}
	levels, err := normalizeLevels(levels)
	if err != nil {
		return nil, err
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: non-positive horizon %d", h)
	}
	w, err := a.transform(history.Values)
	if err != nil {
		return nil, err
	}
	need := a.P + a.Q + 1
	if len(w) < need {
		return nil, ErrShortHistory
	}

	// Reconstruct recent innovations to seed the MA part.
	eps := make([]float64, len(w))
	warm := a.P
	if a.Q > warm {
		warm = a.Q
	}
	for t := warm; t < len(w); t++ {
		pred := a.constant
		for j := 0; j < a.P; j++ {
			pred += a.phi[j] * w[t-1-j]
		}
		for j := 0; j < a.Q; j++ {
			pred += a.theta[j] * eps[t-1-j]
		}
		eps[t] = w[t] - pred
	}

	// Recursive mean forecast on the differenced scale; future innovations
	// are zero in expectation.
	ext := append([]float64{}, w...)
	extEps := append([]float64{}, eps...)
	meansDiff := make([]float64, h)
	for k := 0; k < h; k++ {
		t := len(ext)
		pred := a.constant
		for j := 0; j < a.P; j++ {
			pred += a.phi[j] * ext[t-1-j]
		}
		for j := 0; j < a.Q; j++ {
			pred += a.theta[j] * extEps[t-1-j]
		}
		meansDiff[k] = pred
		ext = append(ext, pred)
		extEps = append(extEps, 0)
	}

	// Forecast variance accumulates psi-weights on the differenced scale;
	// integrate both mean and variance back through the differencing.
	psi := a.psiWeights(h)
	varDiff := make([]float64, h)
	acc := 0.0
	for k := 0; k < h; k++ {
		acc += psi[k] * psi[k]
		varDiff[k] = a.sigma2 * acc
	}

	// Undo the regular differencing against the seasonally differenced
	// history, then undo the seasonal differencing against the raw
	// history.
	base := a.seasonalBase(history.Values)
	means := integrate(base, meansDiff, a.D)
	variances := integrateVariance(varDiff, a.D)
	if s := a.SeasonalPeriod; s > 0 {
		raw := history.Values
		for k := 0; k < h; k++ {
			idx := len(raw) - s + k
			if idx >= 0 && idx < len(raw) {
				means[k] += raw[idx]
			} else if k-s >= 0 {
				means[k] += means[k-s]
				variances[k] += variances[k-s]
			}
		}
	}

	out := &QuantileForecast{
		Levels: levels,
		Values: make([][]float64, h),
		Mean:   means,
	}
	for k := 0; k < h; k++ {
		n := dist.NewNormal(means[k], math.Sqrt(variances[k]))
		row := make([]float64, len(levels))
		for i, tau := range levels {
			row[i] = n.Quantile(tau)
		}
		out.Values[k] = row
	}
	return out, nil
}

// WarmReset implements IncrementalForecaster.
func (a *ARIMA) WarmReset() {
	a.warm.valid = false
	a.warm.ref.reset()
	a.warm.n = 0
	a.warm.psi = a.warm.psi[:0]
}

// baseLen returns the length of the seasonally differenced base of a raw
// history of length n.
func (a *ARIMA) baseLen(n int) int {
	if a.SeasonalPeriod > 0 {
		return n - a.SeasonalPeriod
	}
	return n
}

// baseAt returns the seasonally differenced base value at base index j.
func (a *ARIMA) baseAt(values []float64, j int) float64 {
	if a.SeasonalPeriod <= 0 {
		return values[j]
	}
	return values[j+a.SeasonalPeriod] - values[j]
}

// diffEndAt computes the k-th regular difference of the seasonal base
// ending at base index j, from the last k+1 base values only. Each
// difference level's element depends on exactly two adjacent elements of
// the level below, so this windowed computation applies the same
// subtractions to the same operands as the cold full-array differencing —
// the result is bit-identical to transform(values)[j-k] (and, at the final
// index, to lastOfDiff(seasonalBase(values), k)).
func (a *ARIMA) diffEndAt(values []float64, j, k int) float64 {
	buf := a.warm.diffBuf
	if cap(buf) < k+1 {
		buf = make([]float64, k+1)
		a.warm.diffBuf = buf
	}
	buf = buf[:k+1]
	for i := 0; i <= k; i++ {
		buf[i] = a.baseAt(values, j-k+i)
	}
	for r := 0; r < k; r++ {
		for i := 0; i < k-r; i++ {
			buf[i] = buf[i+1] - buf[i]
		}
	}
	return buf[0]
}

// PredictQuantilesWarm implements IncrementalForecaster. The differencing
// pipeline and the innovation recursion are extended over just the newly
// appended observations (O(1) per round at a fixed cadence) instead of
// being re-derived over the whole history; on any discontinuity the cache
// is rebuilt cold. Results are bit-identical to PredictQuantiles; the
// returned fan is a scratch owned by the forecaster, valid until the next
// predict (see warm.go).
func (a *ARIMA) PredictQuantilesWarm(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if !a.fitted {
		return nil, ErrNotFitted
	}
	lv, err := a.warm.levels.get(levels)
	if err != nil {
		return nil, err
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: non-positive horizon %d", h)
	}
	aw := &a.warm
	values := history.Values
	n := len(values)
	s := a.SeasonalPeriod
	if !aw.valid || aw.n > n || !aw.ref.extends(history) {
		aw.valid = false
		w, err := a.transform(values)
		if err != nil {
			return nil, err
		}
		aw.w = w
		aw.eps = aw.eps[:0]
		aw.n = n
	} else if aw.n < n {
		// Each new raw observation completes at most one differencing
		// window; append its working-series element.
		for r := aw.n; r < n; r++ {
			if j := r - s; j >= a.D {
				aw.w = append(aw.w, a.diffEndAt(values, j, a.D))
			}
		}
		aw.n = n
	}
	wl := len(aw.w)
	if wl < a.P+a.Q+1 {
		return nil, ErrShortHistory
	}
	// Extend the innovation recursion over the new tail of w; the zero
	// warm-start prefix and the forward recursion replicate the cold
	// reconstruction exactly.
	warmIdx := a.P
	if a.Q > warmIdx {
		warmIdx = a.Q
	}
	for t := len(aw.eps); t < wl; t++ {
		if t < warmIdx {
			aw.eps = append(aw.eps, 0)
			continue
		}
		pred := a.constant
		for j := 0; j < a.P; j++ {
			pred += a.phi[j] * aw.w[t-1-j]
		}
		for j := 0; j < a.Q; j++ {
			pred += a.theta[j] * aw.eps[t-1-j]
		}
		aw.eps = append(aw.eps, aw.w[t]-pred)
	}
	aw.ref.record(history)
	aw.valid = true

	// The forecast recursion reads only the last P values of
	// (w ++ predictions) and the last Q of (eps ++ zeros); run it on small
	// reused tails instead of cloning the full arrays.
	aw.pTail = append(aw.pTail[:0], aw.w[wl-a.P:]...)
	aw.qTail = append(aw.qTail[:0], aw.eps[wl-a.Q:]...)
	aw.meansDiff = resizeFloats(aw.meansDiff, h)
	for k := 0; k < h; k++ {
		pred := a.constant
		np, nq := len(aw.pTail), len(aw.qTail)
		for j := 0; j < a.P; j++ {
			pred += a.phi[j] * aw.pTail[np-1-j]
		}
		for j := 0; j < a.Q; j++ {
			pred += a.theta[j] * aw.qTail[nq-1-j]
		}
		aw.meansDiff[k] = pred
		aw.pTail = append(aw.pTail, pred)
		aw.qTail = append(aw.qTail, 0)
	}

	// Psi weights are a prefix-stable recursion: cache the longest run.
	if len(aw.psi) < h {
		aw.psi = a.psiWeights(h)
	}
	psi := aw.psi[:h]
	aw.varDiff = resizeFloats(aw.varDiff, h)
	acc := 0.0
	for k := 0; k < h; k++ {
		acc += psi[k] * psi[k]
		aw.varDiff[k] = a.sigma2 * acc
	}

	// Integration constants come from the base tail (diffEndAt), not a full
	// lastOfDiff pass; the cumulative sums mirror integrate and
	// integrateVariance.
	aw.means = append(aw.means[:0], aw.meansDiff...)
	for k := a.D; k >= 1; k-- {
		level := a.diffEndAt(values, a.baseLen(n)-1, k-1)
		for i := range aw.means {
			level += aw.means[i]
			aw.means[i] = level
		}
	}
	aw.variances = append(aw.variances[:0], aw.varDiff...)
	for k := 0; k < a.D; k++ {
		vacc := 0.0
		for i := range aw.variances {
			vacc += aw.variances[i]
			aw.variances[i] = vacc
		}
	}
	if s > 0 {
		for k := 0; k < h; k++ {
			idx := n - s + k
			if idx >= 0 && idx < n {
				aw.means[k] += values[idx]
			} else if k-s >= 0 {
				aw.means[k] += aw.means[k-s]
				aw.variances[k] += aw.variances[k-s]
			}
		}
	}

	out := reuseFan(aw.fan, h, lv)
	aw.fan = out
	copy(out.Mean, aw.means)
	for k := 0; k < h; k++ {
		nd := dist.NewNormal(aw.means[k], math.Sqrt(aw.variances[k]))
		row := out.Values[k]
		for i, tau := range lv {
			row[i] = nd.Quantile(tau)
		}
	}
	return out, nil
}

// stabilize enforces stationarity of the fitted AR polynomial: if the
// companion matrix has spectral radius >= 1 (an explosive model whose
// recursive forecasts diverge), the AR coefficients phi_j are damped by
// c^j, which contracts every root by the factor c. The least-squares
// Hannan-Rissanen fit does not constrain the roots, so this guard is
// needed for high AR orders on strongly seasonal data.
func (a *ARIMA) stabilize() {
	dampRoots(a.phi) // stationarity of the AR part

	// Invertibility of the MA part governs the eps recursion
	// eps[t] = ... - theta_j eps[t-j], whose lag-polynomial coefficients
	// are the negated thetas.
	neg := make([]float64, len(a.theta))
	for j, th := range a.theta {
		neg[j] = -th
	}
	dampRoots(neg)
	for j := range a.theta {
		a.theta[j] = -neg[j]
	}
}

// dampRoots contracts the roots of the lag polynomial 1 - c1 z - c2 z^2 ...
// to lie strictly inside the unit circle by scaling coefficient j by c^j.
func dampRoots(coef []float64) {
	if len(coef) == 0 {
		return
	}
	const target = 0.98
	radius := companionSpectralRadius(coef)
	if radius < target {
		return
	}
	c := target / radius
	f := c
	for j := range coef {
		coef[j] *= f
		f *= c
	}
}

// companionSpectralRadius estimates the dominant eigenvalue magnitude of
// the AR companion matrix by power iteration. Because seasonal AR models
// have complex-conjugate dominant roots, the per-step growth oscillates;
// the geometric mean of the step norms after a burn-in converges to the
// modulus regardless.
func companionSpectralRadius(phi []float64) float64 {
	p := len(phi)
	v := make([]float64, p)
	v[0] = 1
	const burnIn, measured = 100, 200
	logSum := 0.0
	for iter := 0; iter < burnIn+measured; iter++ {
		next := make([]float64, p)
		for j := 0; j < p; j++ {
			next[0] += phi[j] * v[j]
		}
		copy(next[1:], v[:p-1])
		norm := 0.0
		for _, x := range next {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < 1e-30 {
			return 0
		}
		for j := range next {
			next[j] /= norm
		}
		v = next
		if iter >= burnIn {
			logSum += math.Log(norm)
		}
	}
	return math.Exp(logSum / measured)
}

// psiWeights expands the ARMA model into its MA(inf) psi weights up to h
// terms; psi[0] = 1.
func (a *ARIMA) psiWeights(h int) []float64 {
	psi := make([]float64, h)
	if h == 0 {
		return psi
	}
	psi[0] = 1
	for k := 1; k < h; k++ {
		v := 0.0
		if k-1 < len(a.theta) {
			v += a.theta[k-1]
		}
		for j := 0; j < a.P && j < k; j++ {
			v += a.phi[j] * psi[k-1-j]
		}
		psi[k] = v
	}
	return psi
}

// integrate undoes d rounds of differencing for a forecast path, using the
// tail of the raw history as integration constants.
func integrate(history []float64, forecastDiff []float64, d int) []float64 {
	out := append([]float64{}, forecastDiff...)
	for k := d; k >= 1; k-- {
		// Level of the (k-1)-differenced series at the end of history.
		level := lastOfDiff(history, k-1)
		for i := range out {
			level += out[i]
			out[i] = level
		}
	}
	return out
}

// integrateVariance propagates forecast variances through d integrations.
// Each integration turns the variance sequence into cumulative sums of the
// underlying psi weights; we approximate by cumulative summation of
// variances, which is exact for d=0 and conservative for d>=1.
func integrateVariance(varDiff []float64, d int) []float64 {
	out := append([]float64{}, varDiff...)
	for k := 0; k < d; k++ {
		acc := 0.0
		for i := range out {
			acc += out[i]
			out[i] = acc
		}
	}
	return out
}

// lastOfDiff returns the final value of the k-th difference of values.
func lastOfDiff(values []float64, k int) float64 {
	v := append([]float64{}, values...)
	for i := 0; i < k; i++ {
		next := make([]float64, len(v)-1)
		for j := 1; j < len(v); j++ {
			next[j-1] = v[j] - v[j-1]
		}
		v = next
	}
	return v[len(v)-1]
}

// fitAR fits an AR(p) model with intercept by ridge-regularized least
// squares, returning coefficients and the intercept.
func fitAR(w []float64, p int) (phi []float64, c float64, err error) {
	if len(w) <= p+1 {
		return nil, 0, fmt.Errorf("forecast: AR(%d) needs more than %d observations", p, p+1)
	}
	rows := len(w) - p
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		t := p + i
		row := make([]float64, p+1)
		row[0] = 1
		for j := 0; j < p; j++ {
			row[1+j] = w[t-1-j]
		}
		x[i] = row
		y[i] = w[t]
	}
	coef, err := ridgeSolve(x, y, 1e-6)
	if err != nil {
		return nil, 0, err
	}
	return coef[1:], coef[0], nil
}

// ridgeSolve solves min ||X b - y||^2 + lambda ||b||^2 via the normal
// equations with Gaussian elimination (partial pivoting).
func ridgeSolve(x [][]float64, y []float64, lambda float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("forecast: empty design matrix")
	}
	cols := len(x[0])
	// Normal equations: (X^T X + lambda I) b = X^T y.
	ata := make([][]float64, cols)
	for i := range ata {
		ata[i] = make([]float64, cols+1)
	}
	for _, row := range x {
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				ata[i][j] += row[i] * row[j]
			}
		}
	}
	for i, row := range x {
		for j := 0; j < cols; j++ {
			ata[j][cols] += row[j] * y[i]
		}
	}
	for i := 0; i < cols; i++ {
		ata[i][i] += lambda
	}
	return gaussSolve(ata)
}

// gaussSolve solves the augmented system [A | b] in place with partial
// pivoting.
func gaussSolve(aug [][]float64) ([]float64, error) {
	n := len(aug)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("forecast: singular system at column %d", col)
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r][col] / aug[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = aug[i][n] / aug[i][i]
	}
	return out, nil
}

var (
	_ QuantileForecaster    = (*ARIMA)(nil)
	_ IncrementalForecaster = (*ARIMA)(nil)
)
