package forecast

import (
	"encoding/gob"
	"fmt"
	"io"

	"robustscale/internal/timeseries"
)

// Snapshotter is the persistence contract of a checkpointable
// forecaster: Save writes the fitted state, Load restores it into a
// receiver constructed with the same configuration. Every forecaster a
// strategy can be built on implements it, so the control plane can warm
// start from a checkpoint without retraining any of them.
type Snapshotter interface {
	Save(w io.Writer) error
	Load(r io.Reader) error
}

// Statically guarantee the full strategy-buildable zoo is snapshotable.
var (
	_ Snapshotter = (*ARIMA)(nil)
	_ Snapshotter = (*MLP)(nil)
	_ Snapshotter = (*QuantileMLP)(nil)
	_ Snapshotter = (*DeepAR)(nil)
	_ Snapshotter = (*TFT)(nil)
	_ Snapshotter = (*QB5000)(nil)
	_ Snapshotter = (*Naive)(nil)
	_ Snapshotter = (*SeasonalNaive)(nil)
	_ Snapshotter = (*Ensemble)(nil)
)

// naiveState is the gob image of a fitted Naive forecaster.
type naiveState struct {
	Horizon      int
	MaxResiduals int
	Residuals    [][]float64
}

// Save writes the fitted residual distributions.
func (n *Naive) Save(w io.Writer) error {
	if !n.fitted {
		return ErrNotFitted
	}
	st := naiveState{Horizon: n.horizon, MaxResiduals: n.MaxResiduals, Residuals: n.residuals}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("forecast: saving naive: %w", err)
	}
	return nil
}

// Load restores a model saved by Save, overwriting the receiver's
// horizon and residual history.
func (n *Naive) Load(r io.Reader) error {
	var st naiveState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("forecast: loading naive: %w", err)
	}
	if st.Horizon <= 0 || len(st.Residuals) != st.Horizon {
		return fmt.Errorf("forecast: naive snapshot has %d residual rows for horizon %d", len(st.Residuals), st.Horizon)
	}
	n.horizon, n.MaxResiduals, n.residuals = st.Horizon, st.MaxResiduals, st.Residuals
	n.WarmReset() // restored residuals invalidate cached offsets
	n.fitted = true
	return nil
}

// seasonalNaiveState is the gob image of a fitted SeasonalNaive.
type seasonalNaiveState struct {
	Period       int
	MaxResiduals int
	Residuals    []float64
}

// Save writes the fitted seasonal residual distribution.
func (s *SeasonalNaive) Save(w io.Writer) error {
	if !s.fitted {
		return ErrNotFitted
	}
	st := seasonalNaiveState{Period: s.Period, MaxResiduals: s.MaxResiduals, Residuals: s.residuals}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("forecast: saving %s: %w", s.Name(), err)
	}
	return nil
}

// Load restores a model saved by Save, overwriting the receiver's
// period and residual history.
func (s *SeasonalNaive) Load(r io.Reader) error {
	var st seasonalNaiveState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("forecast: loading seasonal-naive: %w", err)
	}
	if st.Period <= 0 {
		return fmt.Errorf("forecast: seasonal-naive snapshot has non-positive period %d", st.Period)
	}
	s.Period, s.MaxResiduals, s.residuals = st.Period, st.MaxResiduals, st.Residuals
	s.WarmReset() // restored residuals invalidate cached offsets
	s.fitted = true
	return nil
}

// quantileMLPEnvelope extends the neural envelope with the trained
// quantile grid, which fixes the head width (horizon × levels).
type quantileMLPEnvelope struct {
	Kind    string
	Horizon int
	Mean    float64
	Std     float64
	Levels  []float64
}

// Save writes the trained network, grid, and normalization statistics.
func (m *QuantileMLP) Save(w io.Writer) error {
	if !m.fitted {
		return ErrNotFitted
	}
	env := quantileMLPEnvelope{
		Kind: "mlp-quantile", Horizon: m.horizon,
		Mean: m.scaler.Mean, Std: m.scaler.Std, Levels: m.Levels,
	}
	if err := gob.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("forecast: saving mlp-quantile: %w", err)
	}
	return m.params.Save(w)
}

// Load restores a model saved by Save. The receiver must have been
// constructed with the same MLPConfig; the quantile grid is taken from
// the snapshot (it determines the head width).
func (m *QuantileMLP) Load(r io.Reader) error {
	var env quantileMLPEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("forecast: loading mlp-quantile: %w", err)
	}
	if env.Kind != "mlp-quantile" {
		return fmt.Errorf("forecast: snapshot is %q, not mlp-quantile", env.Kind)
	}
	levels, err := normalizeLevels(env.Levels)
	if err != nil {
		return err
	}
	// The grid must be set before build: the head emits h*len(Levels)
	// outputs.
	m.Levels = levels
	m.build(env.Horizon)
	m.scaler = timeseries.StandardScaler{Mean: env.Mean, Std: env.Std}
	if err := m.params.Load(r); err != nil {
		return err
	}
	m.fitted = true
	return nil
}

// ensembleEnvelope is the gob header of an ensemble snapshot: member
// names pin the composition, weights and workers restore the config.
type ensembleEnvelope struct {
	Names   []string
	Weights []float64
	Workers int
}

// Save writes the combination weights followed by every member's own
// snapshot on the same stream. Every member must implement Snapshotter.
func (e *Ensemble) Save(w io.Writer) error {
	if len(e.Members) == 0 {
		return fmt.Errorf("forecast: ensemble has no members")
	}
	env := ensembleEnvelope{Weights: e.Weights, Workers: e.Workers}
	for _, m := range e.Members {
		env.Names = append(env.Names, m.Name())
		if _, ok := m.(Snapshotter); !ok {
			return fmt.Errorf("forecast: ensemble member %s does not support Save", m.Name())
		}
	}
	if err := gob.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("forecast: saving ensemble: %w", err)
	}
	for _, m := range e.Members {
		if err := m.(Snapshotter).Save(w); err != nil {
			return fmt.Errorf("forecast: saving ensemble member %s: %w", m.Name(), err)
		}
	}
	return nil
}

// Load restores an ensemble saved by Save. The receiver must already
// hold members of the same kinds in the same order (the snapshot
// restores their fitted state, not their construction); member names
// are validated against the snapshot before any weight is touched.
func (e *Ensemble) Load(r io.Reader) error {
	var env ensembleEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("forecast: loading ensemble: %w", err)
	}
	if len(env.Names) != len(e.Members) {
		return fmt.Errorf("forecast: snapshot has %d members, receiver has %d", len(env.Names), len(e.Members))
	}
	snaps := make([]Snapshotter, len(e.Members))
	for i, m := range e.Members {
		s, ok := m.(Snapshotter)
		if !ok {
			return fmt.Errorf("forecast: ensemble member %s does not support Load", m.Name())
		}
		snaps[i] = s
	}
	for i, s := range snaps {
		if err := s.Load(r); err != nil {
			return fmt.Errorf("forecast: loading ensemble member %d: %w", i, err)
		}
		// Loading can rewrite name-bearing config (e.g. a seasonal
		// period), so validate after restore.
		if got := e.Members[i].Name(); got != env.Names[i] {
			return fmt.Errorf("forecast: ensemble member %d is %q, snapshot holds %q", i, got, env.Names[i])
		}
	}
	e.Weights = env.Weights
	e.Workers = env.Workers
	e.WarmReset() // restored members invalidate any cached warm state
	return nil
}
