package forecast

import (
	"math"
	"sort"

	"robustscale/internal/timeseries"
)

// Padded wraps a point Forecaster with the CloudScale-style padding
// enhancement (Shen et al., SoCC'11) the paper compares against: a small
// additional value derived from recent under-estimation errors is added to
// every prediction, mitigating (but, as the paper shows, not eliminating)
// under-provisioning.
type Padded struct {
	// Base is the wrapped point forecaster.
	Base Forecaster
	// MaxHistory bounds the number of remembered error observations.
	MaxHistory int
	// Percentile selects how aggressive the padding is: the padding added
	// equals this percentile of the recent relative under-estimation
	// errors (0.8 by default).
	Percentile float64

	errs []float64 // relative under-estimation errors, most recent last
}

// NewPadded wraps base with default settings.
func NewPadded(base Forecaster) *Padded {
	return &Padded{Base: base, MaxHistory: 64, Percentile: 0.8}
}

// Name implements Forecaster.
func (p *Padded) Name() string { return p.Base.Name() + "-padding" }

// Fit trains the wrapped forecaster and clears the error history.
func (p *Padded) Fit(train *timeseries.Series) error {
	p.errs = p.errs[:0]
	return p.Base.Fit(train)
}

// Observe records the realized outcome of a past prediction so future
// forecasts can be padded by the observed under-estimation. Only
// under-estimation contributes, matching CloudScale's one-sided padding.
func (p *Padded) Observe(actual, predicted []float64) {
	n := len(actual)
	if len(predicted) < n {
		n = len(predicted)
	}
	for i := 0; i < n; i++ {
		if predicted[i] <= 0 {
			continue
		}
		rel := (actual[i] - predicted[i]) / predicted[i]
		if rel < 0 {
			rel = 0
		}
		p.errs = append(p.errs, rel)
	}
	if p.MaxHistory > 0 && len(p.errs) > p.MaxHistory {
		p.errs = append(p.errs[:0], p.errs[len(p.errs)-p.MaxHistory:]...)
	}
}

// Bootstrap seeds the error history by backtesting the wrapped forecaster
// on the last windows*h observations of the history, so the first padded
// prediction is already informed.
func (p *Padded) Bootstrap(history *timeseries.Series, h, windows int) error {
	for k := windows; k >= 1; k-- {
		cut := history.Len() - k*h
		if cut <= 0 {
			continue
		}
		pred, err := p.Base.Predict(history.Slice(0, cut), h)
		if err != nil {
			return err
		}
		end := cut + h
		if end > history.Len() {
			end = history.Len()
		}
		p.Observe(history.Values[cut:end], pred)
	}
	return nil
}

// Pad returns the current padding fraction.
func (p *Padded) Pad() float64 {
	if len(p.errs) == 0 {
		return 0
	}
	sorted := append([]float64{}, p.errs...)
	sort.Float64s(sorted)
	return timeseries.InterpolatedQuantile(sorted, p.Percentile)
}

// Predict implements Forecaster: the base prediction scaled up by the
// padding fraction.
func (p *Padded) Predict(history *timeseries.Series, h int) ([]float64, error) {
	base, err := p.Base.Predict(history, h)
	if err != nil {
		return nil, err
	}
	pad := p.Pad()
	out := make([]float64, len(base))
	for i, v := range base {
		out[i] = v * (1 + pad)
		if math.IsNaN(out[i]) {
			out[i] = v
		}
	}
	return out, nil
}

var _ Forecaster = (*Padded)(nil)
