package forecast

import (
	"math"
	"testing"

	"robustscale/internal/dist"
)

// nllValue recomputes the negative log-likelihood that nllGrad
// differentiates, from the raw head outputs.
func nllValue(d *DeepAR, out []float64, y float64) float64 {
	return -d.emissionFrom(out).LogPDF(y)
}

// TestNLLGradMatchesFiniteDifferences checks the hand-derived Student-t
// and Gaussian NLL gradients against numerical differentiation — the same
// style of check the nn package applies to its layers.
func TestNLLGradMatchesFiniteDifferences(t *testing.T) {
	const eps = 1e-6
	cases := []struct {
		emission Emission
		out      []float64
		y        float64
	}{
		{EmitStudentT, []float64{0.3, -0.2, 0.5}, 0.8},
		{EmitStudentT, []float64{-1.1, 0.7, -0.4}, -2.0},
		{EmitStudentT, []float64{0.0, 0.0, 0.0}, 0.1},
		{EmitStudentT, []float64{2.0, 1.5, 3.0}, 1.9},
		{EmitGaussian, []float64{0.3, -0.2}, 0.8},
		{EmitGaussian, []float64{-1.1, 0.7}, -2.0},
		{EmitGaussian, []float64{0.5, 2.0}, 0.5},
	}
	for ci, c := range cases {
		d := NewDeepAR(DeepARConfig{Emission: c.emission})
		out := append([]float64{}, c.out...)
		analytic := d.nllGrad(out, c.y)
		for j := range out {
			orig := out[j]
			out[j] = orig + eps
			lp := nllValue(d, out, c.y)
			out[j] = orig - eps
			lm := nllValue(d, out, c.y)
			out[j] = orig
			numeric := (lp - lm) / (2 * eps)
			scale := math.Max(1, math.Abs(numeric))
			if math.Abs(numeric-analytic[j])/scale > 1e-4 {
				t.Errorf("case %d (%s) out[%d]: analytic %v vs numeric %v",
					ci, c.emission, j, analytic[j], numeric)
			}
		}
	}
}

// TestEmissionFromShapes verifies the head-output mapping: positive scale,
// nu floored above 2 so the Student-t variance exists.
func TestEmissionFromShapes(t *testing.T) {
	d := NewDeepAR(DeepARConfig{Emission: EmitStudentT})
	e := d.emissionFrom([]float64{1.5, -50, -50})
	st, ok := e.(dist.StudentT)
	if !ok {
		t.Fatalf("emission type %T", e)
	}
	if st.Sigma <= 0 {
		t.Errorf("sigma = %v", st.Sigma)
	}
	if st.Nu <= 2 {
		t.Errorf("nu = %v, want > 2 so variance exists", st.Nu)
	}
	if st.Mu != 1.5 {
		t.Errorf("mu = %v", st.Mu)
	}

	g := NewDeepAR(DeepARConfig{Emission: EmitGaussian})
	ne := g.emissionFrom([]float64{-0.5, 0.2})
	n, ok := ne.(dist.Normal)
	if !ok {
		t.Fatalf("emission type %T", ne)
	}
	if n.Sigma <= 0 || n.Mu != -0.5 {
		t.Errorf("normal = %+v", n)
	}
}
