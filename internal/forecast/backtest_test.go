package forecast

import (
	"math"
	"testing"
)

func TestBacktestStructure(t *testing.T) {
	s := noisySine(700, 48, 100, 20, 1, 51)
	m := NewSeasonalARIMA(4, 0, 1, 48)
	if err := m.Fit(s.Slice(0, 500)); err != nil {
		t.Fatal(err)
	}
	res, err := Backtest(m, s, BacktestConfig{Start: 500, Horizon: 48})
	if err != nil {
		t.Fatal(err)
	}
	// Origins: 500, 548, 596, 644 (644+48 = 692 <= 700).
	if len(res.Origins) != 4 {
		t.Fatalf("origins = %d", len(res.Origins))
	}
	if res.Model != m.Name() {
		t.Errorf("model = %q", res.Model)
	}
	if res.MeanWQL <= 0 || math.IsNaN(res.MeanWQL) {
		t.Errorf("meanWQL = %v", res.MeanWQL)
	}
	if res.MSE <= 0 {
		t.Errorf("MSE = %v", res.MSE)
	}
	for _, tau := range DefaultLevels {
		if _, ok := res.WQL[tau]; !ok {
			t.Errorf("missing wQL[%v]", tau)
		}
		if c := res.Coverage[tau]; c < 0 || c > 1 {
			t.Errorf("coverage[%v] = %v", tau, c)
		}
	}
	// Coverage should increase with the level for a calibrated-ish model.
	if res.Coverage[0.9] <= res.Coverage[0.1] {
		t.Errorf("coverage not increasing: %v vs %v", res.Coverage[0.1], res.Coverage[0.9])
	}
}

func TestBacktestStride(t *testing.T) {
	s := noisySine(700, 48, 100, 20, 1, 52)
	m := NewNaive(24)
	if err := m.Fit(s.Slice(0, 500)); err != nil {
		t.Fatal(err)
	}
	res, err := Backtest(m, s, BacktestConfig{Start: 500, Horizon: 24, Stride: 12, Levels: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	// Origins: 500, 512, ..., 676: (676-500)/12 + 1 = 15.
	if len(res.Origins) != 15 {
		t.Fatalf("origins = %d", len(res.Origins))
	}
}

func TestBacktestSeasonalNaiveBeatsNaive(t *testing.T) {
	s := noisySine(800, 48, 100, 30, 1, 53)
	sn := NewSeasonalNaive(48)
	nv := NewNaive(48)
	if err := sn.Fit(s.Slice(0, 600)); err != nil {
		t.Fatal(err)
	}
	if err := nv.Fit(s.Slice(0, 600)); err != nil {
		t.Fatal(err)
	}
	cfg := BacktestConfig{Start: 600, Horizon: 48}
	rs, err := Backtest(sn, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Backtest(nv, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.MeanWQL >= rn.MeanWQL {
		t.Errorf("seasonal %v should beat naive %v", rs.MeanWQL, rn.MeanWQL)
	}
}

func TestBacktestValidation(t *testing.T) {
	s := sineSeries(100, 24, 100, 10)
	m := NewNaive(12)
	if err := m.Fit(s); err != nil {
		t.Fatal(err)
	}
	if _, err := Backtest(m, s, BacktestConfig{Start: 50, Horizon: 0}); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, err := Backtest(m, s, BacktestConfig{Start: 0, Horizon: 12}); err == nil {
		t.Error("zero start should fail")
	}
	if _, err := Backtest(m, s, BacktestConfig{Start: 95, Horizon: 12}); err == nil {
		t.Error("start too late should fail")
	}
	if _, err := Backtest(m, s, BacktestConfig{Start: 50, Horizon: 12, Levels: []float64{2}}); err == nil {
		t.Error("bad level should fail")
	}
}
