package forecast

import (
	"bytes"
	"testing"

	"robustscale/internal/timeseries"
)

// warmOrigins mixes strides of 1 and 3 so the suite covers both the
// single-step advance the control loop takes and multi-step jumps that
// cross anchor boundaries.
var warmOrigins = []int{420, 421, 422, 425, 428, 431, 432, 444}

// requireFanEqual asserts bit-identical fans: warm paths must reproduce
// their cold counterparts exactly, not approximately.
func requireFanEqual(t *testing.T, label string, origin int, cold, warm *QuantileForecast) {
	t.Helper()
	if cold.Horizon() != warm.Horizon() || len(cold.Levels) != len(warm.Levels) {
		t.Fatalf("%s origin %d: shape mismatch: cold %dx%d, warm %dx%d",
			label, origin, cold.Horizon(), len(cold.Levels), warm.Horizon(), len(warm.Levels))
	}
	for i := range cold.Mean {
		if cold.Mean[i] != warm.Mean[i] {
			t.Fatalf("%s origin %d step %d: mean cold %v != warm %v",
				label, origin, i, cold.Mean[i], warm.Mean[i])
		}
		for j := range cold.Values[i] {
			if cold.Values[i][j] != warm.Values[i][j] {
				t.Fatalf("%s origin %d step %d level %v: cold %v != warm %v",
					label, origin, i, cold.Levels[j], cold.Values[i][j], warm.Values[i][j])
			}
		}
	}
}

// cloneSeries copies a history into a fresh backing array, simulating the
// discontinuities warm paths must survive (telemetry corruption clones,
// guard sanitization): the broken pointer identity must trigger a cold
// rebuild whose output is still bit-identical.
func cloneSeries(s *timeseries.Series) *timeseries.Series {
	return timeseries.New(s.Name, s.Start, s.Step, append([]float64(nil), s.Values...))
}

// warmCase fits two identical instances of a forecaster — one queried only
// cold, one only warm — and slides the planning origin forward over a
// shared backing array, the exact access pattern of the control loop.
type warmCase struct {
	name string
	make func() QuantileForecaster
}

func warmCases() []warmCase {
	return []warmCase{
		{"naive", func() QuantileForecaster { return NewNaive(12) }},
		{"seasonal-naive", func() QuantileForecaster { return NewSeasonalNaive(24) }},
		{"arima", func() QuantileForecaster { return NewARIMA(2, 1, 1) }},
		{"deepar-workers1", func() QuantileForecaster {
			return NewDeepAR(DeepARConfig{
				Context: 24, Hidden: 8, Epochs: 2, LR: 5e-3, Seed: 3,
				MaxWindows: 48, Samples: 20, TrainHorizon: 12, Workers: 1,
			})
		}},
		{"deepar-workers4", func() QuantileForecaster {
			return NewDeepAR(DeepARConfig{
				Context: 24, Hidden: 8, Epochs: 2, LR: 5e-3, Seed: 3,
				MaxWindows: 48, Samples: 20, TrainHorizon: 12, Workers: 4,
			})
		}},
		{"ensemble", func() QuantileForecaster {
			return NewEnsemble(NewNaive(12), NewSeasonalNaive(24))
		}},
		{"conformal-seasonal", func() QuantileForecaster {
			c := NewConformal(NewSeasonalNaive(24))
			c.Horizon = 12
			return c
		}},
	}
}

// TestWarmMatchesColdAcrossOrigins is the core determinism contract of
// the planning fast path: for every incremental forecaster, warm
// prediction over a sliding origin — including origin strides that cross
// conditioning anchors, a history clone mid-run, and an explicit
// WarmReset — is bit-identical to cold prediction from a separately
// fitted twin.
func TestWarmMatchesColdAcrossOrigins(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 1, 42)
	levels := []float64{0.1, 0.5, 0.9}
	const h = 6
	for _, tc := range warmCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			coldM, warmM := tc.make(), tc.make()
			train := s.Slice(0, 400)
			if err := coldM.Fit(train); err != nil {
				t.Fatal(err)
			}
			if err := warmM.Fit(train); err != nil {
				t.Fatal(err)
			}
			inc, ok := warmM.(IncrementalForecaster)
			if !ok {
				t.Fatalf("%s does not implement IncrementalForecaster", tc.name)
			}
			for _, origin := range warmOrigins {
				hist := s.Slice(0, origin)
				cold, err := coldM.PredictQuantiles(hist, h, levels)
				if err != nil {
					t.Fatal(err)
				}
				warm, err := inc.PredictQuantilesWarm(hist, h, levels)
				if err != nil {
					t.Fatal(err)
				}
				requireFanEqual(t, tc.name, origin, cold, warm)
			}

			// A cloned history breaks backing-array identity: the warm
			// path must fall back to a cold rebuild, bit-identically.
			cloned := cloneSeries(s.Slice(0, 450))
			cold, err := coldM.PredictQuantiles(cloned, h, levels)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := inc.PredictQuantilesWarm(cloned, h, levels)
			if err != nil {
				t.Fatal(err)
			}
			requireFanEqual(t, tc.name+"/cloned", 450, cold, warm)

			// Returning to the shared array after the clone, then after an
			// explicit reset, both stay exact.
			for _, origin := range []int{451, 454} {
				hist := s.Slice(0, origin)
				cold, err := coldM.PredictQuantiles(hist, h, levels)
				if err != nil {
					t.Fatal(err)
				}
				warm, err := inc.PredictQuantilesWarm(hist, h, levels)
				if err != nil {
					t.Fatal(err)
				}
				requireFanEqual(t, tc.name+"/resumed", origin, cold, warm)
				inc.WarmReset()
			}
		})
	}
}

// TestWarmMatchesColdAcrossWorkerCounts pins that Monte-Carlo worker
// fan-out does not leak into results: a warm single-worker DeepAR, a warm
// four-worker DeepAR, and a cold reference all agree bit-for-bit.
func TestWarmMatchesColdAcrossWorkerCounts(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 1, 42)
	levels := []float64{0.1, 0.5, 0.9}
	mk := func(workers int) *DeepAR {
		return NewDeepAR(DeepARConfig{
			Context: 24, Hidden: 8, Epochs: 2, LR: 5e-3, Seed: 3,
			MaxWindows: 48, Samples: 20, TrainHorizon: 12, Workers: workers,
		})
	}
	cold, w1, w4 := mk(1), mk(1), mk(4)
	train := s.Slice(0, 400)
	for _, m := range []*DeepAR{cold, w1, w4} {
		if err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
	}
	for _, origin := range warmOrigins {
		hist := s.Slice(0, origin)
		ref, err := cold.PredictQuantiles(hist, 4, levels)
		if err != nil {
			t.Fatal(err)
		}
		f1, err := w1.PredictQuantilesWarm(hist, 4, levels)
		if err != nil {
			t.Fatal(err)
		}
		f4, err := w4.PredictQuantilesWarm(hist, 4, levels)
		if err != nil {
			t.Fatal(err)
		}
		requireFanEqual(t, "workers1", origin, ref, f1)
		requireFanEqual(t, "workers4", origin, ref, f4)
	}
}

// TestWarmSurvivesSaveLoadRestart models the daemon's warm restart: a
// forecaster that has been predicting warm is checkpointed, restored into
// a fresh process (Load must invalidate the recurrent cache), and keeps
// producing bit-identical fans as the origin advances.
func TestWarmSurvivesSaveLoadRestart(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 1, 42)
	levels := []float64{0.1, 0.5, 0.9}
	mk := func() *DeepAR {
		return NewDeepAR(DeepARConfig{
			Context: 24, Hidden: 8, Epochs: 2, LR: 5e-3, Seed: 3,
			MaxWindows: 48, Samples: 20, TrainHorizon: 12,
		})
	}
	cold, warm := mk(), mk()
	train := s.Slice(0, 400)
	if err := cold.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := warm.Fit(train); err != nil {
		t.Fatal(err)
	}
	if _, err := warm.PredictQuantilesWarm(s.Slice(0, 430), 4, levels); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := warm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := mk()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for _, origin := range []int{431, 432, 435} {
		hist := s.Slice(0, origin)
		ref, err := cold.PredictQuantiles(hist, 4, levels)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.PredictQuantilesWarm(hist, 4, levels)
		if err != nil {
			t.Fatal(err)
		}
		requireFanEqual(t, "restored", origin, ref, got)
	}
}

// TestDeepARSampleBudgetHook pins the opt-in latency/fidelity trade: a
// shrunk sample budget still yields a valid, ordered fan, and clearing
// the hook restores exact warm/cold agreement.
func TestDeepARSampleBudgetHook(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 1, 42)
	levels := []float64{0.1, 0.5, 0.9}
	mk := func() *DeepAR {
		return NewDeepAR(DeepARConfig{
			Context: 24, Hidden: 8, Epochs: 2, LR: 5e-3, Seed: 3,
			MaxWindows: 48, Samples: 20, TrainHorizon: 12,
		})
	}
	cold, warm := mk(), mk()
	train := s.Slice(0, 400)
	if err := cold.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := warm.Fit(train); err != nil {
		t.Fatal(err)
	}
	warm.SetSampleBudget(func(full int) int { return full / 4 })
	shrunk, err := warm.PredictQuantilesWarm(s.Slice(0, 430), 4, levels)
	if err != nil {
		t.Fatal(err)
	}
	if err := shrunk.Validate(); err != nil {
		t.Fatalf("shrunk-budget fan invalid: %v", err)
	}
	warm.SetSampleBudget(nil)
	for _, origin := range []int{431, 434} {
		hist := s.Slice(0, origin)
		ref, err := cold.PredictQuantiles(hist, 4, levels)
		if err != nil {
			t.Fatal(err)
		}
		got, err := warm.PredictQuantilesWarm(hist, 4, levels)
		if err != nil {
			t.Fatal(err)
		}
		requireFanEqual(t, "budget-cleared", origin, ref, got)
	}
}

// TestQB5000WarmMatchesCold covers the point-forecast warm contract:
// PredictWarm advances only the recurrent component's conditioning state,
// and must agree with Predict exactly across sliding origins, a history
// clone, and a reset.
func TestQB5000WarmMatchesCold(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 1, 42)
	mk := func() *QB5000 {
		return NewQB5000(QB5000Config{
			Context: 24, Hidden: 8, Epochs: 2, LR: 1e-3, Seed: 1,
			MaxWindows: 48, Bandwidth: 1, TrainHorizon: 12,
		})
	}
	cold, warm := mk(), mk()
	train := s.Slice(0, 400)
	if err := cold.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := warm.Fit(train); err != nil {
		t.Fatal(err)
	}
	check := func(label string, hist *timeseries.Series, origin int) {
		t.Helper()
		ref, err := cold.Predict(hist, 6)
		if err != nil {
			t.Fatal(err)
		}
		got, err := warm.PredictWarm(hist, 6)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("%s origin %d step %d: cold %v != warm %v", label, origin, i, ref[i], got[i])
			}
		}
	}
	for _, origin := range warmOrigins {
		check("qb5000", s.Slice(0, origin), origin)
	}
	check("qb5000/cloned", cloneSeries(s.Slice(0, 450)), 450)
	warm.WarmReset()
	check("qb5000/reset", s.Slice(0, 454), 454)
}
