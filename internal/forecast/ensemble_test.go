package forecast

import (
	"strings"
	"testing"
)

func TestEnsembleAveragesMembers(t *testing.T) {
	s := noisySine(600, 48, 100, 20, 2, 61)
	hist, _ := splitHoldout(s, 24)
	e := NewEnsemble(NewSeasonalNaive(48), NewSeasonalARIMA(4, 0, 1, 48))
	if err := e.Fit(hist); err != nil {
		t.Fatal(err)
	}
	f, err := e.PredictQuantiles(hist, 24, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// The ensemble forecast lies within the envelope of its members.
	fa, err := e.Members[0].PredictQuantiles(hist, 24, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := e.Members[1].PredictQuantiles(hist, 24, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 24; step++ {
		lo, hi := fa.Values[step][0], fb.Values[step][0]
		if lo > hi {
			lo, hi = hi, lo
		}
		v := f.At(step, 0.5)
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("step %d: ensemble %v outside member envelope [%v, %v]", step, v, lo, hi)
		}
	}
	if !strings.HasPrefix(e.Name(), "ensemble(") {
		t.Errorf("Name = %q", e.Name())
	}
}

func TestEnsembleWeights(t *testing.T) {
	s := noisySine(500, 48, 100, 20, 1, 62)
	hist, _ := splitHoldout(s, 12)
	a := NewSeasonalNaive(48)
	b := NewNaive(12)
	// All weight on member a: identical forecasts to a alone.
	e := &Ensemble{Members: []QuantileForecaster{a, b}, Weights: []float64{1, 0}}
	if err := e.Fit(hist); err != nil {
		t.Fatal(err)
	}
	fe, err := e.PredictQuantiles(hist, 12, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := a.PredictQuantiles(hist, 12, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	for step := range fe.Values {
		if fe.Values[step][0] != fa.Values[step][0] {
			t.Fatalf("weighted ensemble diverges from sole member at %d", step)
		}
	}
}

func TestEnsembleValidation(t *testing.T) {
	s := sineSeries(300, 24, 100, 10)
	empty := &Ensemble{}
	if err := empty.Fit(s); err == nil {
		t.Error("empty ensemble should fail")
	}
	if _, err := empty.PredictQuantiles(s, 4, []float64{0.5}); err == nil {
		t.Error("empty ensemble predict should fail")
	}
	badWeights := &Ensemble{
		Members: []QuantileForecaster{NewNaive(12)},
		Weights: []float64{1, 2},
	}
	if err := badWeights.Fit(s); err == nil {
		t.Error("weight count mismatch should fail")
	}
	neg := &Ensemble{Members: []QuantileForecaster{NewNaive(12)}, Weights: []float64{-1}}
	if err := neg.Members[0].Fit(s); err != nil {
		t.Fatal(err)
	}
	if _, err := neg.PredictQuantiles(s, 4, []float64{0.5}); err == nil {
		t.Error("negative weight should fail")
	}
	zero := &Ensemble{Members: []QuantileForecaster{neg.Members[0]}, Weights: []float64{0}}
	if _, err := zero.PredictQuantiles(s, 4, []float64{0.5}); err == nil {
		t.Error("zero-sum weights should fail")
	}
}

func TestEnsembleCanBeatWorstMember(t *testing.T) {
	// On noisy cyclic data, mixing seasonal-naive with plain naive should
	// land between the two in accuracy (and typically closer to the
	// better member than the worse one).
	s := noisySine(800, 48, 100, 30, 3, 63)
	train := s.Slice(0, 600)
	sn := NewSeasonalNaive(48)
	nv := NewNaive(48)
	e := NewEnsemble(NewSeasonalNaive(48), NewNaive(48))
	for _, m := range []Forecaster{sn, nv, e} {
		if err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
	}
	cfg := BacktestConfig{Start: 600, Horizon: 48, Levels: []float64{0.5}}
	rs, err := Backtest(sn, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Backtest(nv, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Backtest(e, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.MeanWQL >= rn.MeanWQL {
		t.Errorf("ensemble %v should beat the worst member %v", re.MeanWQL, rn.MeanWQL)
	}
	if re.MeanWQL < rs.MeanWQL*0.5 {
		t.Errorf("ensemble %v suspiciously better than best member %v", re.MeanWQL, rs.MeanWQL)
	}
}
