// Package forecast implements the probabilistic workload forecasters from
// the paper's evaluation: ARIMA, a Gaussian-head MLP, a DeepAR-style
// autoregressive LSTM with a Student-t head (learning a parametric
// distribution), a simplified Temporal Fusion Transformer (learning a
// pre-specified grid of quantiles), the QueryBot 5000 hybrid point
// forecaster, and the CloudScale-style padding enhancement.
//
// The two neural quantile forecasters embody the two methodologies of
// Section III-B: DeepAR emits distribution parameters and derives quantiles
// by sampling; TFT directly outputs a pre-specified quantile grid trained
// with the pinball loss.
package forecast

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"robustscale/internal/timeseries"
)

// Forecaster is a point workload forecaster (Definition 1).
type Forecaster interface {
	// Name identifies the model (e.g. "tft").
	Name() string
	// Fit trains the model on a historical workload series.
	Fit(train *timeseries.Series) error
	// Predict forecasts the h steps following the end of history. The
	// model reads its context window from the tail of history.
	Predict(history *timeseries.Series, h int) ([]float64, error)
}

// QuantileForecaster additionally produces quantile forecasts
// (Definition 2).
type QuantileForecaster interface {
	Forecaster
	// PredictQuantiles forecasts the requested quantile levels for the h
	// steps following the end of history.
	PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error)
}

// ErrNotFitted is returned when Predict is called before Fit.
var ErrNotFitted = errors.New("forecast: model not fitted")

// ErrShortHistory is returned when the history does not cover the model's
// context window.
var ErrShortHistory = errors.New("forecast: history shorter than context window")

// QuantileForecast holds multi-step quantile forecasts: Values[t][i] is the
// forecast at horizon step t for quantile Levels[i]. Mean is the central
// (point) forecast per step.
type QuantileForecast struct {
	Levels []float64
	Values [][]float64
	Mean   []float64
}

// Horizon returns the number of forecast steps.
func (f *QuantileForecast) Horizon() int { return len(f.Values) }

// At returns the forecast at horizon step t for quantile tau, linearly
// interpolating between the available levels and clamping outside them.
func (f *QuantileForecast) At(t int, tau float64) float64 {
	row := f.Values[t]
	levels := f.Levels
	if tau <= levels[0] {
		return row[0]
	}
	if tau >= levels[len(levels)-1] {
		return row[len(row)-1]
	}
	i := sort.SearchFloat64s(levels, tau)
	if levels[i] == tau {
		return row[i]
	}
	lo, hi := i-1, i
	frac := (tau - levels[lo]) / (levels[hi] - levels[lo])
	return row[lo]*(1-frac) + row[hi]*frac
}

// Step returns the quantile values at horizon step t in level order.
func (f *QuantileForecast) Step(t int) []float64 { return f.Values[t] }

// Enforce sorts each step's quantile values so they are monotonically
// non-decreasing in the quantile level (quantile crossing is a standard
// artifact of independently trained quantile heads).
func (f *QuantileForecast) Enforce() {
	for _, row := range f.Values {
		sort.Float64s(row)
	}
}

// Validate reports an error for structural problems: unsorted levels,
// ragged rows or non-finite values.
func (f *QuantileForecast) Validate() error {
	if !sort.Float64sAreSorted(f.Levels) {
		return fmt.Errorf("forecast: quantile levels %v not sorted", f.Levels)
	}
	for t, row := range f.Values {
		if len(row) != len(f.Levels) {
			return fmt.Errorf("forecast: step %d has %d values for %d levels", t, len(row), len(f.Levels))
		}
		for i, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("forecast: step %d level %v is %v", t, f.Levels[i], v)
			}
		}
	}
	if f.Mean != nil && len(f.Mean) != len(f.Values) {
		return fmt.Errorf("forecast: %d mean values for %d steps", len(f.Mean), len(f.Values))
	}
	return nil
}

// DefaultLevels is the quantile grid used in the paper's Table I
// evaluation.
var DefaultLevels = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// ScalingLevels is the grid the paper trains for auto-scaling guidance
// (Section IV-C).
var ScalingLevels = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}

// timeFeatureDim is the number of calendar covariates fed to the neural
// models: sin/cos of the daily phase and sin/cos of the weekly phase.
const timeFeatureDim = 4

// timeFeatures computes calendar covariates for the observation at absolute
// timestamp ts.
func timeFeatures(ts time.Time) []float64 {
	out := make([]float64, timeFeatureDim)
	timeFeaturesInto(out, ts)
	return out
}

// timeFeaturesInto writes the calendar covariates of ts into dst (len
// timeFeatureDim), the allocation-free form used on the sampling and BPTT
// hot paths.
func timeFeaturesInto(dst []float64, ts time.Time) {
	daySec := float64(ts.Hour()*3600 + ts.Minute()*60 + ts.Second())
	dayFrac := daySec / 86400
	weekFrac := (float64(ts.Weekday()) + dayFrac) / 7
	dst[0] = math.Sin(2 * math.Pi * dayFrac)
	dst[1] = math.Cos(2 * math.Pi * dayFrac)
	dst[2] = math.Sin(2 * math.Pi * weekFrac)
	dst[3] = math.Cos(2 * math.Pi * weekFrac)
}

// pathSeed derives an independent RNG seed for Monte-Carlo path `path`
// from the call-level base seed, using a splitmix64-style mix so nearby
// path indices land on well-separated streams. Deriving the seed from the
// path INDEX (never from the worker id) is what keeps sampled forecasts
// bit-identical across worker counts.
func pathSeed(base int64, path int) int64 {
	z := uint64(base) + uint64(path+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// pathSource is the rand.Source64 behind Monte-Carlo path sampling: a
// splitmix64 stream whose Seed is a single word store. math/rand's default
// source rebuilds a 607-entry feedback table on every Seed (~12k
// operations), which dominated the horizon-1 sampling round where each of
// the per-path reseeds outweighs the single LSTM step it randomizes. The
// stream depends only on the seed, so forecasts stay bit-identical across
// worker counts and between the cold and warm paths, which construct and
// reseed these sources identically.
type pathSource struct{ state uint64 }

func newPathRand(seed int64) *rand.Rand { return rand.New(&pathSource{state: uint64(seed)}) }

func (p *pathSource) Seed(seed int64) { p.state = uint64(seed) }

func (p *pathSource) Uint64() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *pathSource) Int63() int64 { return int64(p.Uint64() >> 1) }

// trainingWindows extracts (context, target) windows for supervised
// training with the given stride, bounding the total number of windows so
// training cost stays predictable.
func trainingWindows(s *timeseries.Series, ctx, h, maxWindows int) ([]timeseries.Window, error) {
	if s.Len() < ctx+h {
		return nil, ErrShortHistory
	}
	stride := 1
	if available := s.Len() - ctx - h + 1; available > maxWindows {
		stride = (available + maxWindows - 1) / maxWindows
	}
	return s.Windows(ctx, h, stride)
}

// contextTail returns the last ctx values of the history or ErrShortHistory.
func contextTail(history *timeseries.Series, ctx int) ([]float64, error) {
	if history.Len() < ctx {
		return nil, ErrShortHistory
	}
	return history.Values[history.Len()-ctx:], nil
}

// normalizeLevels copies, sorts and validates quantile levels.
func normalizeLevels(levels []float64) ([]float64, error) {
	if len(levels) == 0 {
		return nil, errors.New("forecast: no quantile levels requested")
	}
	out := make([]float64, len(levels))
	copy(out, levels)
	sort.Float64s(out)
	for _, l := range out {
		if l <= 0 || l >= 1 {
			return nil, fmt.Errorf("forecast: quantile level %v outside (0, 1)", l)
		}
	}
	return out, nil
}

// PinballLoss is the quantile (pinball) loss rho_tau(y, yhat) from
// Equation 1 of the paper: (tau - I(y < yhat)) * (yhat - y).
func PinballLoss(tau, y, yhat float64) float64 {
	u := y - yhat
	if u < 0 {
		return (tau - 1) * u // = (1-tau)*(yhat-y), positive
	}
	return tau * u
}

// PinballGrad is d PinballLoss / d yhat.
func PinballGrad(tau, y, yhat float64) float64 {
	if y < yhat {
		return 1 - tau
	}
	return -tau
}
