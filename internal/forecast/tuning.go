package forecast

import (
	"fmt"

	"robustscale/internal/timeseries"
)

// Candidate is one hyperparameter configuration under evaluation: Build
// constructs the forecaster, Label names the configuration.
type Candidate struct {
	Label string
	Build func() QuantileForecaster
}

// TuneResult reports the score of one candidate.
type TuneResult struct {
	Label string
	Score float64 // validation mean weighted quantile loss; lower is better
}

// Tune fits every candidate on train and scores it on val by rolling
// mean-weighted quantile loss over non-overlapping horizons, returning the
// results sorted as evaluated with the best index. It is the stdlib
// replacement for the Optuna search the paper uses; like the paper, the
// chosen hyperparameters are then reused across all prediction horizons.
func Tune(train, val *timeseries.Series, h int, levels []float64, candidates []Candidate) ([]TuneResult, int, error) {
	if len(candidates) == 0 {
		return nil, -1, fmt.Errorf("forecast: no tuning candidates")
	}
	results := make([]TuneResult, len(candidates))
	best := -1
	for i, c := range candidates {
		model := c.Build()
		if err := model.Fit(train); err != nil {
			return nil, -1, fmt.Errorf("forecast: tuning %s: %w", c.Label, err)
		}
		score, err := rollingQuantileScore(model, train, val, h, levels)
		if err != nil {
			return nil, -1, fmt.Errorf("forecast: scoring %s: %w", c.Label, err)
		}
		results[i] = TuneResult{Label: c.Label, Score: score}
		if best == -1 || score < results[best].Score {
			best = i
		}
	}
	return results, best, nil
}

// rollingQuantileScore evaluates mean pinball loss over the validation
// span, normalized by the target sum (a mean weighted quantile loss).
func rollingQuantileScore(model QuantileForecaster, train, val *timeseries.Series, h int, levels []float64) (float64, error) {
	// Stitch train+val so context windows can cross the boundary.
	joined := make([]float64, 0, train.Len()+val.Len())
	joined = append(joined, train.Values...)
	joined = append(joined, val.Values...)
	full := timeseries.New(train.Name, train.Start, train.Step, joined)

	lossSum, targetSum := 0.0, 0.0
	evaluated := 0
	for origin := train.Len(); origin+h <= full.Len(); origin += h {
		f, err := model.PredictQuantiles(full.Slice(0, origin), h, levels)
		if err != nil {
			return 0, err
		}
		for t := 0; t < h; t++ {
			y := full.At(origin + t)
			for i, tau := range levels {
				lossSum += PinballLoss(tau, y, f.Values[t][i])
			}
			targetSum += y
		}
		evaluated++
	}
	if evaluated == 0 {
		return 0, fmt.Errorf("forecast: validation span %d too short for horizon %d", val.Len(), h)
	}
	if targetSum == 0 {
		return lossSum, nil
	}
	return 2 * lossSum / (targetSum * float64(len(levels))), nil
}
