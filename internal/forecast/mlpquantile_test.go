package forecast

import (
	"testing"
)

func smallQuantileMLP(levels []float64) *QuantileMLP {
	return NewQuantileMLP(MLPConfig{
		Context: 24, Hidden: 24, Epochs: 40, LR: 3e-3, Seed: 1, MaxWindows: 128,
	}, levels)
}

func TestQuantileMLPLearnsSine(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 0.5, 101)
	hist, from := splitHoldout(s, 12)
	m := smallQuantileMLP([]float64{0.1, 0.5, 0.9})
	if err := m.FitHorizon(hist, 12); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(hist, 12)
	if err != nil {
		t.Fatal(err)
	}
	if mse := mseAgainst(pred, s, from); mse > 30 {
		t.Errorf("quantile MLP MSE = %v", mse)
	}
	if m.Name() != "mlp-quantile" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestQuantileMLPOrderedBands(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 2, 102)
	hist, _ := splitHoldout(s, 12)
	m := smallQuantileMLP([]float64{0.1, 0.5, 0.9})
	if err := m.FitHorizon(hist, 12); err != nil {
		t.Fatal(err)
	}
	f, err := m.PredictQuantiles(hist, 12, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	for step := range f.Values {
		row := f.Values[step]
		if !(row[0] <= row[1] && row[1] <= row[2]) {
			t.Fatalf("step %d not ordered: %v", step, row)
		}
	}
	// Interpolated level lies between grid neighbours.
	fi, err := m.PredictQuantiles(hist, 12, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	for step := range fi.Values {
		v := fi.Values[step][0]
		if v < f.Values[step][0]-1e-9 || v > f.Values[step][1]+1e-9 {
			t.Fatalf("interpolated 0.3 at %d = %v outside [%v, %v]", step, v, f.Values[step][0], f.Values[step][1])
		}
	}
}

func TestQuantileMLPUpperBandCovers(t *testing.T) {
	s := noisySine(900, 24, 50, 10, 2, 103)
	train := s.Slice(0, 700)
	m := smallQuantileMLP([]float64{0.5, 0.9})
	if err := m.FitHorizon(train, 12); err != nil {
		t.Fatal(err)
	}
	above, total := 0, 0
	for origin := 700; origin+12 <= 900; origin += 12 {
		f, err := m.PredictQuantiles(s.Slice(0, origin), 12, []float64{0.9})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 12; step++ {
			if f.Values[step][0] >= s.At(origin+step) {
				above++
			}
			total++
		}
	}
	// Pinball training should put the 0.9 band above most realizations.
	if frac := float64(above) / float64(total); frac < 0.7 {
		t.Errorf("0.9 band covered only %.0f%%", frac*100)
	}
}

func TestQuantileMLPErrors(t *testing.T) {
	m := smallQuantileMLP(nil)
	s := sineSeries(200, 24, 50, 10)
	if _, err := m.Predict(s, 4); err != ErrNotFitted {
		t.Errorf("err = %v", err)
	}
	if err := m.FitHorizon(s, 0); err == nil {
		t.Error("zero horizon should fail")
	}
	bad := smallQuantileMLP([]float64{2})
	if err := bad.FitHorizon(s, 4); err == nil {
		t.Error("bad level should fail")
	}
	if err := m.FitHorizon(s, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(s, 12); err == nil {
		t.Error("beyond trained horizon should fail")
	}
	if _, err := m.Predict(s.Slice(0, 10), 6); err != ErrShortHistory {
		t.Errorf("err = %v", err)
	}
}

func TestQuantileMLPDefaultLevels(t *testing.T) {
	m := NewQuantileMLP(MLPConfig{Context: 24, Epochs: 1, MaxWindows: 16}, nil)
	if len(m.Levels) != len(DefaultLevels) {
		t.Errorf("default levels = %v", m.Levels)
	}
}
