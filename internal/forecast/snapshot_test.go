package forecast

import (
	"bytes"
	"testing"
)

func TestNaiveSaveLoad(t *testing.T) {
	s := noisySine(400, 24, 50, 10, 1, 41)
	hist, _ := splitHoldout(s, 6)
	m := NewNaive(6)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewNaive(1) // Load overwrites the horizon
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	assertSameForecasts(t, m, m2, hist, 6)
}

func TestSeasonalNaiveSaveLoad(t *testing.T) {
	s := noisySine(400, 24, 50, 10, 1, 42)
	hist, _ := splitHoldout(s, 6)
	m := NewSeasonalNaive(24)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewSeasonalNaive(1) // Load overwrites the period
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	assertSameForecasts(t, m, m2, hist, 6)
	if m2.Name() != m.Name() {
		t.Errorf("loaded name %q vs %q", m2.Name(), m.Name())
	}
}

func TestQuantileMLPSaveLoad(t *testing.T) {
	s := noisySine(500, 24, 50, 10, 1, 43)
	hist, _ := splitHoldout(s, 6)
	cfg := MLPConfig{Context: 24, Hidden: 12, Epochs: 4, Seed: 1, MaxWindows: 48}
	m := NewQuantileMLP(cfg, []float64{0.1, 0.5, 0.9})
	if err := m.FitHorizon(hist, 6); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// The grid comes from the snapshot, so the fresh receiver may start
	// with the default levels.
	m2 := NewQuantileMLP(cfg, nil)
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	assertSameForecasts(t, m, m2, hist, 6)
}

func TestEnsembleSaveLoad(t *testing.T) {
	s := noisySine(500, 24, 50, 10, 1, 44)
	hist, _ := splitHoldout(s, 6)
	build := func() *Ensemble {
		e := NewEnsemble(
			NewSeasonalNaive(24),
			NewQuantileMLP(MLPConfig{Context: 24, Hidden: 10, Epochs: 3, Seed: 2, MaxWindows: 48}, []float64{0.1, 0.5, 0.9}),
		)
		e.Workers = 1
		return e
	}
	e := build()
	e.Weights = []float64{2, 1}
	if err := e.Fit(hist); err != nil {
		t.Fatal(err)
	}
	// The QuantileMLP member defaults to Fit's 72-step horizon, so limit
	// assertions to... Fit on the ensemble trains members via their own
	// Fit, so members support h up to their trained horizon; request 6.
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2 := build() // untrained members of the same kinds
	if err := e2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if len(e2.Weights) != 2 || e2.Weights[0] != 2 || e2.Weights[1] != 1 {
		t.Fatalf("weights not restored: %v", e2.Weights)
	}
	assertSameForecasts(t, e, e2, hist, 6)
}

func TestEnsembleLoadRejectsMemberMismatch(t *testing.T) {
	s := noisySine(400, 24, 50, 10, 1, 45)
	hist, _ := splitHoldout(s, 6)
	e := NewEnsemble(NewNaive(6))
	if err := e.Fit(hist); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Wrong member count.
	if err := NewEnsemble(NewNaive(6), NewSeasonalNaive(24)).Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("member-count mismatch should fail")
	}
	// Wrong member kind: the naive snapshot decodes into seasonal-naive's
	// envelope shape or fails; either way the name check must reject it.
	if err := NewEnsemble(NewSeasonalNaive(24)).Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("member-kind mismatch should fail")
	}
}

func TestSnapshotSaveUnfittedFails(t *testing.T) {
	if err := NewNaive(6).Save(&bytes.Buffer{}); err != ErrNotFitted {
		t.Errorf("naive err = %v", err)
	}
	if err := NewSeasonalNaive(24).Save(&bytes.Buffer{}); err != ErrNotFitted {
		t.Errorf("seasonal-naive err = %v", err)
	}
	if err := NewQuantileMLP(MLPConfig{}, nil).Save(&bytes.Buffer{}); err != ErrNotFitted {
		t.Errorf("quantile-mlp err = %v", err)
	}
}
