package forecast

import (
	"math"
	"math/rand"
	"testing"

	"robustscale/internal/timeseries"
)

// noisySine builds a seasonal series with Gaussian noise of the given std.
func noisySine(n, period int, level, amp, noise float64, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = level + amp*math.Sin(2*math.Pi*float64(i)/float64(period)) + rng.NormFloat64()*noise
	}
	return timeseries.New("noisy-sine", t0, timeseries.DefaultStep, vals)
}

// splitHoldout returns the series minus the last h points, for evaluating
// h-step forecasts against the held-out tail.
func splitHoldout(s *timeseries.Series, h int) (history *timeseries.Series, from int) {
	return s.Slice(0, s.Len()-h), s.Len() - h
}

func TestARIMAOnAR1Process(t *testing.T) {
	// AR(1) with phi=0.8: ARIMA(1,0,0) should recover the coefficient.
	rng := rand.New(rand.NewSource(1))
	n := 600
	vals := make([]float64, n)
	for i := 1; i < n; i++ {
		vals[i] = 0.8*vals[i-1] + rng.NormFloat64()
	}
	s := timeseries.New("ar1", t0, timeseries.DefaultStep, vals)
	m := NewARIMA(1, 0, 0)
	if err := m.Fit(s); err != nil {
		t.Fatal(err)
	}
	if !almost(m.phi[0], 0.8, 0.1) {
		t.Errorf("phi = %v, want ~0.8", m.phi[0])
	}
	if !almost(m.sigma2, 1, 0.2) {
		t.Errorf("sigma2 = %v, want ~1", m.sigma2)
	}
}

func TestARIMAForecastSeasonalish(t *testing.T) {
	s := noisySine(800, 48, 100, 20, 1, 2)
	hist, from := splitHoldout(s, 12)
	// An AR span covering the full season lets the model lock onto the
	// cycle.
	m := NewARIMA(48, 0, 1)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(hist, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Far better than predicting the global mean (MSE ~ amp^2/2 = 200).
	if mse := mseAgainst(pred, s, from); mse > 50 {
		t.Errorf("ARIMA MSE = %v", mse)
	}
}

func TestARIMAQuantilesOrderedAndCovering(t *testing.T) {
	s := noisySine(800, 48, 100, 20, 2, 3)
	hist, _ := splitHoldout(s, 24)
	m := NewARIMA(4, 0, 1)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	f, err := m.PredictQuantiles(hist, 24, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 24; step++ {
		row := f.Step(step)
		if !(row[0] < row[1] && row[1] < row[2]) {
			t.Errorf("step %d quantiles not ordered: %v", step, row)
		}
	}
	// Variance widens with the horizon.
	w0 := f.Values[0][2] - f.Values[0][0]
	wN := f.Values[23][2] - f.Values[23][0]
	if wN <= w0 {
		t.Errorf("interval did not widen: %v vs %v", w0, wN)
	}
}

func TestARIMADifferencingHandlesTrend(t *testing.T) {
	// Linear trend + noise: d=1 should track it.
	rng := rand.New(rand.NewSource(4))
	n := 400
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 10 + 0.5*float64(i) + rng.NormFloat64()
	}
	s := timeseries.New("trend", t0, timeseries.DefaultStep, vals)
	hist, from := splitHoldout(s, 10)
	m := NewARIMA(2, 1, 1)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(hist, 10)
	if err != nil {
		t.Fatal(err)
	}
	if mse := mseAgainst(pred, s, from); mse > 10 {
		t.Errorf("trend MSE = %v", mse)
	}
}

func TestSeasonalARIMA(t *testing.T) {
	// A strongly seasonal series with a short period: seasonal
	// differencing should let a small ARMA track it accurately.
	s := noisySine(600, 24, 100, 30, 1, 21)
	hist, from := splitHoldout(s, 24)
	m := NewSeasonalARIMA(4, 0, 1, 24)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	if m.Name() != "arima(4,0,1)s24" {
		t.Errorf("Name = %q", m.Name())
	}
	pred, err := m.Predict(hist, 24)
	if err != nil {
		t.Fatal(err)
	}
	// The plain (non-seasonal) model with the same order should be much
	// worse; and the seasonal one should beat predicting the level
	// (variance = 450).
	seasonalMSE := mseAgainst(pred, s, from)
	if seasonalMSE > 50 {
		t.Errorf("seasonal ARIMA MSE = %v", seasonalMSE)
	}
	plain := NewARIMA(4, 0, 1)
	if err := plain.Fit(hist); err != nil {
		t.Fatal(err)
	}
	plainPred, err := plain.Predict(hist, 24)
	if err != nil {
		t.Fatal(err)
	}
	if plainMSE := mseAgainst(plainPred, s, from); plainMSE < seasonalMSE {
		t.Errorf("plain MSE %v unexpectedly beats seasonal %v", plainMSE, seasonalMSE)
	}
}

func TestSeasonalARIMALongHorizonRecursion(t *testing.T) {
	// Horizon longer than the seasonal period exercises the recursive
	// branch of the seasonal integration.
	s := noisySine(600, 24, 100, 30, 1, 22)
	hist, from := splitHoldout(s, 48)
	m := NewSeasonalARIMA(2, 0, 1, 24)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	f, err := m.PredictQuantiles(hist, 48, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if mse := mseAgainst(f.Mean, s, from); mse > 80 {
		t.Errorf("long-horizon seasonal MSE = %v", mse)
	}
}

func TestSeasonalARIMARejectsShortSeries(t *testing.T) {
	m := NewSeasonalARIMA(2, 0, 1, 200)
	if err := m.Fit(sineSeries(150, 24, 5, 1)); err == nil {
		t.Error("Fit shorter than the seasonal period should fail")
	}
}

func TestARIMANotFitted(t *testing.T) {
	m := NewARIMA(1, 0, 0)
	s := sineSeries(100, 10, 5, 1)
	if _, err := m.PredictQuantiles(s, 5, []float64{0.5}); err != ErrNotFitted {
		t.Errorf("err = %v, want ErrNotFitted", err)
	}
}

func TestARIMARejectsTooShortTraining(t *testing.T) {
	m := NewARIMA(3, 0, 3)
	s := sineSeries(20, 10, 5, 1)
	if err := m.Fit(s); err == nil {
		t.Error("Fit on tiny series should fail")
	}
}

func smallMLP() *MLP {
	return NewMLP(MLPConfig{Context: 24, Hidden: 24, Epochs: 40, LR: 3e-3, Seed: 1, MaxWindows: 128})
}

func TestMLPLearnsSine(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 0.5, 5)
	hist, from := splitHoldout(s, 12)
	m := smallMLP()
	if err := m.FitHorizon(hist, 12); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(hist, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Should beat predicting the level (variance = amp^2/2 = 50).
	if mse := mseAgainst(pred, s, from); mse > 25 {
		t.Errorf("MLP MSE = %v", mse)
	}
}

func TestMLPQuantileCoverage(t *testing.T) {
	s := noisySine(900, 24, 50, 10, 2, 6)
	train := s.Slice(0, 700)
	m := smallMLP()
	if err := m.FitHorizon(train, 12); err != nil {
		t.Fatal(err)
	}
	// Evaluate coverage of the 80% interval across many forecast origins.
	inside, total := 0, 0
	for origin := 700; origin+12 <= 900; origin += 12 {
		f, err := m.PredictQuantiles(s.Slice(0, origin), 12, []float64{0.1, 0.9})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 12; step++ {
			y := s.At(origin + step)
			if y >= f.Values[step][0] && y <= f.Values[step][1] {
				inside++
			}
			total++
		}
	}
	// The MLP under-covers its nominal intervals (Table I of the paper
	// reports the same: MLP coverage sits well below the nominal level),
	// so the bound only requires the interval to be meaningfully
	// informative rather than fully calibrated.
	if frac := float64(inside) / float64(total); frac < 0.40 {
		t.Errorf("80%% interval covered %.0f%% of %d points", frac*100, total)
	}
}

func TestMLPHorizonBounds(t *testing.T) {
	s := noisySine(400, 24, 50, 10, 1, 7)
	m := smallMLP()
	if err := m.FitHorizon(s, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(s, 12); err == nil {
		t.Error("Predict beyond trained horizon should fail")
	}
	if _, err := m.Predict(s.Slice(0, 10), 6); err != ErrShortHistory {
		t.Errorf("short history err = %v", err)
	}
	if err := m.FitHorizon(s, 0); err == nil {
		t.Error("FitHorizon(0) should fail")
	}
}

func smallDeepAR() *DeepAR {
	return NewDeepAR(DeepARConfig{
		Context: 24, Hidden: 16, Epochs: 10, LR: 5e-3, Seed: 1,
		MaxWindows: 96, Samples: 60, TrainHorizon: 12,
	})
}

func TestDeepARLearnsSine(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 0.5, 8)
	hist, from := splitHoldout(s, 12)
	m := smallDeepAR()
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(hist, 12)
	if err != nil {
		t.Fatal(err)
	}
	if mse := mseAgainst(pred, s, from); mse > 30 {
		t.Errorf("DeepAR MSE = %v", mse)
	}
}

func TestDeepARQuantilesWellFormed(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 2, 9)
	hist, _ := splitHoldout(s, 12)
	m := smallDeepAR()
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	f, err := m.PredictQuantiles(hist, 12, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 12; step++ {
		row := f.Step(step)
		if !(row[0] <= row[1] && row[1] <= row[2]) {
			t.Errorf("step %d quantiles not ordered: %v", step, row)
		}
	}
	if f.Horizon() != 12 {
		t.Errorf("Horizon = %d", f.Horizon())
	}
}

func TestDeepARDeterministicGivenSeed(t *testing.T) {
	s := noisySine(500, 24, 50, 10, 1, 10)
	hist, _ := splitHoldout(s, 6)
	m1 := smallDeepAR()
	m2 := smallDeepAR()
	if err := m1.Fit(hist); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(hist); err != nil {
		t.Fatal(err)
	}
	f1, err := m1.PredictQuantiles(hist, 6, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := m2.PredictQuantiles(hist, 6, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1.Values {
		if f1.Values[i][0] != f2.Values[i][0] {
			t.Fatalf("step %d: %v != %v", i, f1.Values[i][0], f2.Values[i][0])
		}
	}
}

func TestDeepARGaussianEmission(t *testing.T) {
	cfg := DeepARConfig{
		Context: 24, Hidden: 16, Epochs: 8, LR: 5e-3, Seed: 1,
		MaxWindows: 96, Samples: 40, TrainHorizon: 6, Emission: EmitGaussian,
	}
	s := noisySine(500, 24, 50, 10, 1, 11)
	hist, _ := splitHoldout(s, 6)
	m := NewDeepAR(cfg)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	f, err := m.PredictQuantiles(hist, 6, []float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeepARNotFitted(t *testing.T) {
	m := smallDeepAR()
	s := sineSeries(100, 24, 5, 1)
	if _, err := m.Predict(s, 4); err != ErrNotFitted {
		t.Errorf("err = %v", err)
	}
}

func smallTFT(levels []float64) *TFT {
	return NewTFT(TFTConfig{
		Context: 24, Hidden: 16, Epochs: 12, LR: 5e-3, Seed: 1,
		MaxWindows: 96, Levels: levels, TrainHorizon: 12,
	})
}

func TestTFTLearnsSine(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 0.5, 12)
	hist, from := splitHoldout(s, 12)
	m := smallTFT([]float64{0.1, 0.5, 0.9})
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(hist, 12)
	if err != nil {
		t.Fatal(err)
	}
	if mse := mseAgainst(pred, s, from); mse > 30 {
		t.Errorf("TFT MSE = %v", mse)
	}
}

func TestTFTQuantileGridInterpolation(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 2, 13)
	hist, _ := splitHoldout(s, 12)
	m := smallTFT([]float64{0.1, 0.5, 0.9})
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	f, err := m.PredictQuantiles(hist, 12, []float64{0.3, 0.5, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 12; step++ {
		row := f.Step(step)
		if !(row[0] <= row[1] && row[1] <= row[2]) {
			t.Errorf("step %d interpolated quantiles not ordered: %v", step, row)
		}
	}
}

func TestTFTQuantilesMostlyOrderedWide(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 3, 14)
	hist, from := splitHoldout(s, 12)
	m := smallTFT([]float64{0.1, 0.5, 0.9})
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	f, err := m.PredictQuantiles(hist, 12, []float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// The 0.9 forecast should sit above the realized value more often
	// than below.
	above := 0
	for step := 0; step < 12; step++ {
		if f.Values[step][1] >= s.At(from+step) {
			above++
		}
	}
	if above < 8 {
		t.Errorf("0.9 quantile above actual only %d/12 times", above)
	}
}

func TestTFTPointName(t *testing.T) {
	p := NewTFTPoint(TFTConfig{Context: 24, Hidden: 8, Epochs: 1, TrainHorizon: 4})
	if p.Name() != "tft-point" {
		t.Errorf("Name = %q", p.Name())
	}
	full := smallTFT(nil)
	if full.Name() != "tft" {
		t.Errorf("Name = %q", full.Name())
	}
	if len(p.Levels()) != 1 || p.Levels()[0] != 0.5 {
		t.Errorf("point levels = %v", p.Levels())
	}
}

func TestTFTNotFittedAndBadHorizon(t *testing.T) {
	m := smallTFT(nil)
	s := sineSeries(100, 24, 5, 1)
	if _, err := m.Predict(s, 4); err != ErrNotFitted {
		t.Errorf("err = %v", err)
	}
	if err := m.Fit(sineSeries(300, 24, 5, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(s, 0); err == nil {
		t.Error("zero horizon should fail")
	}
}

func TestQB5000LearnsSine(t *testing.T) {
	s := noisySine(600, 24, 50, 10, 0.5, 15)
	hist, from := splitHoldout(s, 12)
	m := NewQB5000(QB5000Config{
		Context: 24, Hidden: 12, Epochs: 6, LR: 5e-3, Seed: 1,
		MaxWindows: 96, TrainHorizon: 12,
	})
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(hist, 12)
	if err != nil {
		t.Fatal(err)
	}
	if mse := mseAgainst(pred, s, from); mse > 25 {
		t.Errorf("QB5000 MSE = %v", mse)
	}
}

func TestQB5000Errors(t *testing.T) {
	m := NewQB5000(QB5000Config{Context: 24, TrainHorizon: 6, Epochs: 1})
	s := sineSeries(300, 24, 5, 1)
	if _, err := m.Predict(s, 4); err != ErrNotFitted {
		t.Errorf("err = %v", err)
	}
	if err := m.Fit(s); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(s, 12); err == nil {
		t.Error("beyond trained horizon should fail")
	}
	if _, err := m.Predict(s, 0); err == nil {
		t.Error("zero horizon should fail")
	}
}

func TestPaddedIncreasesForecasts(t *testing.T) {
	s := noisySine(500, 24, 50, 10, 1, 16)
	hist, _ := splitHoldout(s, 12)
	base := NewQB5000(QB5000Config{Context: 24, Hidden: 8, Epochs: 3, TrainHorizon: 12, MaxWindows: 64})
	p := NewPadded(base)
	if err := p.Fit(hist); err != nil {
		t.Fatal(err)
	}
	if p.Name() != "qb5000-padding" {
		t.Errorf("Name = %q", p.Name())
	}
	raw, err := base.Predict(hist, 12)
	if err != nil {
		t.Fatal(err)
	}
	// No observed errors yet: identical to the base.
	padded, err := p.Predict(hist, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		if padded[i] != raw[i] {
			t.Fatal("padding without observations should be a no-op")
		}
	}
	// Observe systematic 20% underestimation; padding should lift.
	actual := make([]float64, len(raw))
	for i, v := range raw {
		actual[i] = v * 1.2
	}
	p.Observe(actual, raw)
	padded2, err := p.Predict(hist, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		if padded2[i] <= raw[i] {
			t.Fatalf("padded[%d] = %v not above raw %v", i, padded2[i], raw[i])
		}
	}
	if pad := p.Pad(); !almost(pad, 0.2, 1e-9) {
		t.Errorf("Pad = %v, want 0.2", pad)
	}
}

func TestPaddedIgnoresOverestimation(t *testing.T) {
	p := NewPadded(nil)
	p.Observe([]float64{8, 9}, []float64{10, 10})
	if pad := p.Pad(); pad != 0 {
		t.Errorf("overestimation produced pad %v", pad)
	}
	// Zero predictions are skipped.
	p.Observe([]float64{5}, []float64{0})
	if pad := p.Pad(); pad != 0 {
		t.Errorf("zero-pred produced pad %v", pad)
	}
}

func TestPaddedHistoryBounded(t *testing.T) {
	p := NewPadded(nil)
	p.MaxHistory = 10
	for i := 0; i < 50; i++ {
		p.Observe([]float64{2}, []float64{1})
	}
	if len(p.errs) != 10 {
		t.Errorf("history len = %d, want 10", len(p.errs))
	}
}

func TestPaddedBootstrap(t *testing.T) {
	s := noisySine(500, 24, 50, 10, 2, 17)
	hist, _ := splitHoldout(s, 12)
	base := NewQB5000(QB5000Config{Context: 24, Hidden: 8, Epochs: 3, TrainHorizon: 12, MaxWindows: 64})
	p := NewPadded(base)
	if err := p.Fit(hist); err != nil {
		t.Fatal(err)
	}
	if err := p.Bootstrap(hist, 12, 3); err != nil {
		t.Fatal(err)
	}
	if len(p.errs) == 0 {
		t.Error("Bootstrap recorded no errors")
	}
}

func TestTune(t *testing.T) {
	s := noisySine(700, 24, 50, 10, 1, 18)
	train, val := s.Slice(0, 500), s.Slice(500, 700)
	results, best, err := Tune(train, val, 12, []float64{0.5, 0.9}, []Candidate{
		{Label: "arima(1,0,0)", Build: func() QuantileForecaster { return NewARIMA(1, 0, 0) }},
		{Label: "arima(8,0,2)", Build: func() QuantileForecaster { return NewARIMA(8, 0, 2) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || best < 0 || best > 1 {
		t.Fatalf("results = %v best = %d", results, best)
	}
	for _, r := range results {
		if r.Score < 0 || math.IsNaN(r.Score) {
			t.Errorf("score %v invalid", r.Score)
		}
	}
	if _, _, err := Tune(train, val, 12, []float64{0.5}, nil); err == nil {
		t.Error("empty candidates should fail")
	}
}
