package forecast

import (
	"fmt"
	"testing"
)

// BenchmarkDeepARFit measures training cost for the classic per-window
// regime and the data-parallel batch regime at several worker counts.
// On a single-CPU machine the worker sub-benches mostly show the pool's
// overhead; the speedup target in the issue assumes >=4 cores.
func BenchmarkDeepARFit(b *testing.B) {
	train := sineSeries(400, 24, 50, 20)
	for _, bench := range []struct {
		name           string
		workers, batch int
	}{
		{"batch1", 1, 1},
		{"batch4workers1", 1, 4},
		{"batch4workers4", 4, 4},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := NewDeepAR(DeepARConfig{
					Context: 24, Hidden: 16, Epochs: 1, Seed: 1, MaxWindows: 48,
					Samples: 10, TrainHorizon: 12,
					Workers: bench.workers, Batch: bench.batch,
				})
				if err := d.Fit(train); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeepARPredictQuantiles measures ancestral sampling — DeepAR's
// dominant inference cost (Tables II/III) and the headline target of the
// parallel pipeline: it must scale with worker count while returning
// bit-identical quantiles.
func BenchmarkDeepARPredictQuantiles(b *testing.B) {
	train := sineSeries(400, 24, 50, 20)
	for _, workers := range []int{1, 2, 4, 8} {
		d := NewDeepAR(DeepARConfig{
			Context: 48, Hidden: 32, Epochs: 1, Seed: 1, MaxWindows: 48,
			Samples: 100, TrainHorizon: 24, Workers: workers, Batch: 1,
		})
		if err := d.Fit(train); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := d.PredictQuantiles(train, 24, DefaultLevels); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTFTPredictQuantiles is the fast single-pass counterpart, for
// the DeepAR-vs-TFT inference cost contrast the paper draws.
func BenchmarkTFTPredictQuantiles(b *testing.B) {
	train := sineSeries(400, 24, 50, 20)
	m := NewTFT(TFTConfig{
		Context: 48, Hidden: 32, Epochs: 1, Seed: 1, MaxWindows: 48,
		TrainHorizon: 24,
	})
	if err := m.Fit(train); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictQuantiles(train, 24, DefaultLevels); err != nil {
			b.Fatal(err)
		}
	}
}
