package forecast

import (
	"fmt"

	"robustscale/internal/obs"
	"robustscale/internal/parallel"
	"robustscale/internal/timeseries"
)

// Ensemble combines several quantile forecasters by averaging their
// quantile functions level-by-level (Vincentization), the standard way to
// pool probabilistic forecasts that preserves calibration better than
// averaging densities. Weights are optional; nil means equal weights.
type Ensemble struct {
	// Members are the combined forecasters.
	Members []QuantileForecaster
	// Weights are per-member combination weights; nil means uniform.
	// They are normalized to sum to one at prediction time.
	Weights []float64
	// Workers bounds how many members fit or predict concurrently; 0
	// means one worker per CPU. Members are independent models, so
	// results are identical for every value; the Vincentized merge always
	// runs in member order.
	Workers int

	warm ensembleWarm
}

// ensembleWarm reuses the combination buffers across steady-state rounds.
type ensembleWarm struct {
	levels  levelsCache
	weights []float64
	fan     *QuantileForecast
}

// NewEnsemble returns an equally weighted ensemble.
func NewEnsemble(members ...QuantileForecaster) *Ensemble {
	return &Ensemble{Members: members}
}

// Name implements Forecaster.
func (e *Ensemble) Name() string {
	name := "ensemble("
	for i, m := range e.Members {
		if i > 0 {
			name += "+"
		}
		name += m.Name()
	}
	return name + ")"
}

// Fit trains every member on the series.
func (e *Ensemble) Fit(train *timeseries.Series) error {
	if len(e.Members) == 0 {
		return fmt.Errorf("forecast: ensemble has no members")
	}
	if e.Weights != nil && len(e.Weights) != len(e.Members) {
		return fmt.Errorf("forecast: ensemble has %d weights for %d members", len(e.Weights), len(e.Members))
	}
	e.WarmReset()
	errs := make([]error, len(e.Members))
	sp := obs.DefaultTracer.Start("ensemble.fit")
	parallel.ForEachWorkerSpan("ensemble.fit.member", parallel.Workers(e.Workers, len(e.Members)), len(e.Members), func(_, i int) {
		if err := e.Members[i].Fit(train); err != nil {
			errs[i] = fmt.Errorf("forecast: ensemble member %s: %w", e.Members[i].Name(), err)
		}
	})
	sp.End()
	if err := parallel.FirstError(errs); err != nil {
		return err
	}
	obsEnsembleMemberFits.Add(float64(len(e.Members)))
	return nil
}

// normalizedWeights returns combination weights summing to one.
func (e *Ensemble) normalizedWeights() ([]float64, error) {
	w := make([]float64, len(e.Members))
	if e.Weights == nil {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return w, nil
	}
	sum := 0.0
	for i, v := range e.Weights {
		if v < 0 {
			return nil, fmt.Errorf("forecast: negative ensemble weight %v", v)
		}
		w[i] = v
		sum += v
	}
	if sum == 0 {
		return nil, fmt.Errorf("forecast: ensemble weights sum to zero")
	}
	for i := range w {
		w[i] /= sum
	}
	return w, nil
}

// Predict implements Forecaster: the weighted average of member means.
func (e *Ensemble) Predict(history *timeseries.Series, h int) ([]float64, error) {
	f, err := e.PredictQuantiles(history, h, []float64{0.5})
	if err != nil {
		return nil, err
	}
	return f.Mean, nil
}

// PredictQuantiles implements QuantileForecaster by Vincentized quantile
// averaging across the members.
func (e *Ensemble) PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if len(e.Members) == 0 {
		return nil, fmt.Errorf("forecast: ensemble has no members")
	}
	weights, err := e.normalizedWeights()
	if err != nil {
		return nil, err
	}
	levels, err = normalizeLevels(levels)
	if err != nil {
		return nil, err
	}

	out := &QuantileForecast{
		Levels: levels,
		Values: make([][]float64, h),
		Mean:   make([]float64, h),
	}
	for t := 0; t < h; t++ {
		out.Values[t] = make([]float64, len(levels))
	}
	// Query the members concurrently (each fills its own slot), then
	// Vincentize sequentially in member order so the floating-point sums
	// never depend on scheduling.
	fs := make([]*QuantileForecast, len(e.Members))
	errs := make([]error, len(e.Members))
	parallel.ForEachWorkerSpan("ensemble.predict.member", parallel.Workers(e.Workers, len(e.Members)), len(e.Members), func(_, mi int) {
		f, err := e.Members[mi].PredictQuantiles(history, h, levels)
		if err != nil {
			errs[mi] = fmt.Errorf("forecast: ensemble member %s: %w", e.Members[mi].Name(), err)
			return
		}
		fs[mi] = f
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	for mi, f := range fs {
		for t := 0; t < h; t++ {
			out.Mean[t] += weights[mi] * f.Mean[t]
			for i := range levels {
				out.Values[t][i] += weights[mi] * f.Values[t][i]
			}
		}
	}
	out.Enforce()
	return out, nil
}

// WarmReset implements IncrementalForecaster, forwarding to every member
// that keeps warm state.
func (e *Ensemble) WarmReset() {
	e.warm = ensembleWarm{}
	for _, m := range e.Members {
		warmResetAll(m)
	}
}

// PredictQuantilesWarm implements IncrementalForecaster: bit-identical to
// PredictQuantiles, querying members sequentially in member order (each
// member's warm scratch is accumulated into the reused output fan before
// the next member runs, so aliased members stay safe) and forwarding the
// warm path to members that support it.
func (e *Ensemble) PredictQuantilesWarm(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if len(e.Members) == 0 {
		return nil, fmt.Errorf("forecast: ensemble has no members")
	}
	w := &e.warm
	lv, err := w.levels.get(levels)
	if err != nil {
		return nil, err
	}
	w.weights = resizeFloats(w.weights, len(e.Members))
	if e.Weights == nil {
		for i := range w.weights {
			w.weights[i] = 1 / float64(len(w.weights))
		}
	} else {
		sum := 0.0
		for i, v := range e.Weights {
			if v < 0 {
				return nil, fmt.Errorf("forecast: negative ensemble weight %v", v)
			}
			w.weights[i] = v
			sum += v
		}
		if sum == 0 {
			return nil, fmt.Errorf("forecast: ensemble weights sum to zero")
		}
		for i := range w.weights {
			w.weights[i] /= sum
		}
	}

	out := reuseFan(w.fan, h, lv)
	w.fan = out
	for t := 0; t < h; t++ {
		out.Mean[t] = 0
		row := out.Values[t]
		for i := range row {
			row[i] = 0
		}
	}
	for mi, m := range e.Members {
		var f *QuantileForecast
		if inc, ok := m.(IncrementalForecaster); ok {
			f, err = inc.PredictQuantilesWarm(history, h, lv)
		} else {
			f, err = m.PredictQuantiles(history, h, lv)
		}
		if err != nil {
			return nil, fmt.Errorf("forecast: ensemble member %s: %w", m.Name(), err)
		}
		for t := 0; t < h; t++ {
			out.Mean[t] += w.weights[mi] * f.Mean[t]
			for i := range lv {
				out.Values[t][i] += w.weights[mi] * f.Values[t][i]
			}
		}
	}
	out.Enforce()
	return out, nil
}

var (
	_ QuantileForecaster    = (*Ensemble)(nil)
	_ IncrementalForecaster = (*Ensemble)(nil)
)
