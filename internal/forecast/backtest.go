package forecast

import (
	"fmt"

	"robustscale/internal/metrics"
	"robustscale/internal/timeseries"
)

// BacktestConfig controls a rolling-origin evaluation of a quantile
// forecaster.
type BacktestConfig struct {
	// Start is the first forecast origin (index into the series);
	// everything before it is visible history.
	Start int
	// Horizon is the forecast length per origin.
	Horizon int
	// Stride advances the origin between forecasts; defaults to Horizon
	// (non-overlapping windows).
	Stride int
	// Levels are the quantile levels to evaluate; defaults to
	// DefaultLevels.
	Levels []float64
}

// OriginResult is the outcome at one forecast origin.
type OriginResult struct {
	Origin  int
	MeanWQL float64
	MSE     float64
}

// BacktestResult aggregates a rolling-origin evaluation.
type BacktestResult struct {
	Model   string
	Origins []OriginResult
	// Pooled metrics over all (origin, step) pairs.
	MeanWQL  float64
	MSE      float64
	WQL      map[float64]float64
	Coverage map[float64]float64
}

// Backtest rolls a trained quantile forecaster over the series from
// cfg.Start onward, forecasting Horizon steps at each origin against only
// the history visible there, and reports pooled and per-origin accuracy.
// It is the library-grade version of the evaluation loop behind Table I.
func Backtest(model QuantileForecaster, s *timeseries.Series, cfg BacktestConfig) (*BacktestResult, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("forecast: backtest needs a positive horizon, got %d", cfg.Horizon)
	}
	if cfg.Start <= 0 || cfg.Start+cfg.Horizon > s.Len() {
		return nil, fmt.Errorf("forecast: backtest start %d incompatible with series length %d and horizon %d",
			cfg.Start, s.Len(), cfg.Horizon)
	}
	stride := cfg.Stride
	if stride <= 0 {
		stride = cfg.Horizon
	}
	levels := cfg.Levels
	if len(levels) == 0 {
		levels = DefaultLevels
	}
	levels, err := normalizeLevels(levels)
	if err != nil {
		return nil, err
	}

	res := &BacktestResult{
		Model:    model.Name(),
		WQL:      map[float64]float64{},
		Coverage: map[float64]float64{},
	}
	var actuals, means []float64
	perLevel := make(map[float64][]float64, len(levels))

	for origin := cfg.Start; origin+cfg.Horizon <= s.Len(); origin += stride {
		f, err := model.PredictQuantiles(s.Slice(0, origin), cfg.Horizon, levels)
		if err != nil {
			return nil, fmt.Errorf("forecast: backtest at origin %d: %w", origin, err)
		}
		oActual := s.Values[origin : origin+cfg.Horizon]
		oMeanWQL, err := metrics.MeanWQL(levels, oActual, func(tau float64) []float64 {
			path := make([]float64, cfg.Horizon)
			for t := 0; t < cfg.Horizon; t++ {
				path[t] = f.At(t, tau)
			}
			return path
		})
		if err != nil {
			return nil, err
		}
		oMSE, err := metrics.MSE(oActual, f.Mean)
		if err != nil {
			return nil, err
		}
		res.Origins = append(res.Origins, OriginResult{Origin: origin, MeanWQL: oMeanWQL, MSE: oMSE})

		actuals = append(actuals, oActual...)
		means = append(means, f.Mean...)
		for i, tau := range f.Levels {
			for t := 0; t < cfg.Horizon; t++ {
				perLevel[tau] = append(perLevel[tau], f.Values[t][i])
			}
		}
	}
	if len(res.Origins) == 0 {
		return nil, fmt.Errorf("forecast: backtest evaluated no origins")
	}

	for _, tau := range levels {
		w, err := metrics.WQL(tau, actuals, perLevel[tau])
		if err != nil {
			return nil, err
		}
		res.WQL[tau] = w
		res.MeanWQL += w / float64(len(levels))
		c, err := metrics.Coverage(actuals, perLevel[tau])
		if err != nil {
			return nil, err
		}
		res.Coverage[tau] = c
	}
	mse, err := metrics.MSE(actuals, means)
	if err != nil {
		return nil, err
	}
	res.MSE = mse
	return res, nil
}
