package forecast

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"robustscale/internal/timeseries"
)

var t0 = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func TestQuantileForecastAt(t *testing.T) {
	f := &QuantileForecast{
		Levels: []float64{0.1, 0.5, 0.9},
		Values: [][]float64{{10, 20, 30}},
	}
	if got := f.At(0, 0.5); got != 20 {
		t.Errorf("At(0.5) = %v", got)
	}
	if got := f.At(0, 0.3); !almost(got, 15, 1e-9) {
		t.Errorf("At(0.3) = %v, want interpolated 15", got)
	}
	if got := f.At(0, 0.05); got != 10 {
		t.Errorf("At(0.05) = %v, want clamped 10", got)
	}
	if got := f.At(0, 0.99); got != 30 {
		t.Errorf("At(0.99) = %v, want clamped 30", got)
	}
}

func TestQuantileForecastEnforce(t *testing.T) {
	f := &QuantileForecast{
		Levels: []float64{0.1, 0.5, 0.9},
		Values: [][]float64{{20, 10, 30}},
	}
	f.Enforce()
	if f.Values[0][0] != 10 || f.Values[0][1] != 20 || f.Values[0][2] != 30 {
		t.Errorf("Enforce = %v", f.Values[0])
	}
}

func TestQuantileForecastValidate(t *testing.T) {
	good := &QuantileForecast{
		Levels: []float64{0.1, 0.9},
		Values: [][]float64{{1, 2}},
		Mean:   []float64{1.5},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	badLevels := &QuantileForecast{Levels: []float64{0.9, 0.1}, Values: [][]float64{{1, 2}}}
	if err := badLevels.Validate(); err == nil {
		t.Error("unsorted levels should fail")
	}
	ragged := &QuantileForecast{Levels: []float64{0.1, 0.9}, Values: [][]float64{{1}}}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged row should fail")
	}
	nan := &QuantileForecast{Levels: []float64{0.1, 0.9}, Values: [][]float64{{1, math.NaN()}}}
	if err := nan.Validate(); err == nil {
		t.Error("NaN should fail")
	}
	badMean := &QuantileForecast{Levels: []float64{0.5}, Values: [][]float64{{1}}, Mean: []float64{1, 2}}
	if err := badMean.Validate(); err == nil {
		t.Error("mean length mismatch should fail")
	}
}

func TestPinballLoss(t *testing.T) {
	// Overestimate (y < yhat): loss = (1 - tau) * (yhat - y).
	if got := PinballLoss(0.9, 10, 14); !almost(got, 0.1*4, 1e-12) {
		t.Errorf("overestimate loss = %v", got)
	}
	// Underestimate (y > yhat): loss = tau * (y - yhat).
	if got := PinballLoss(0.9, 14, 10); !almost(got, 0.9*4, 1e-12) {
		t.Errorf("underestimate loss = %v", got)
	}
	if got := PinballLoss(0.5, 7, 7); got != 0 {
		t.Errorf("exact loss = %v", got)
	}
}

func TestPinballLossNonNegativeProperty(t *testing.T) {
	f := func(y, yhat float64, tauSeed uint8) bool {
		if math.IsNaN(y) || math.IsInf(y, 0) || math.IsNaN(yhat) || math.IsInf(yhat, 0) {
			return true
		}
		tau := 0.05 + 0.9*float64(tauSeed)/255
		return PinballLoss(tau, y, yhat) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPinballGradMatchesLoss(t *testing.T) {
	const eps = 1e-6
	for _, tau := range []float64{0.1, 0.5, 0.9} {
		for _, pair := range [][2]float64{{3, 5}, {5, 3}} {
			y, yhat := pair[0], pair[1]
			numeric := (PinballLoss(tau, y, yhat+eps) - PinballLoss(tau, y, yhat-eps)) / (2 * eps)
			if got := PinballGrad(tau, y, yhat); !almost(got, numeric, 1e-6) {
				t.Errorf("tau=%v y=%v yhat=%v: grad %v vs numeric %v", tau, y, yhat, got, numeric)
			}
		}
	}
}

func TestTimeFeaturesPeriodicity(t *testing.T) {
	ts := time.Date(2024, 3, 4, 9, 30, 0, 0, time.UTC)
	f1 := timeFeatures(ts)
	f2 := timeFeatures(ts.Add(24 * time.Hour))
	// Daily features repeat after 24h.
	if !almost(f1[0], f2[0], 1e-9) || !almost(f1[1], f2[1], 1e-9) {
		t.Errorf("daily features not periodic: %v vs %v", f1[:2], f2[:2])
	}
	f3 := timeFeatures(ts.Add(7 * 24 * time.Hour))
	if !almost(f1[2], f3[2], 1e-9) || !almost(f1[3], f3[3], 1e-9) {
		t.Errorf("weekly features not periodic: %v vs %v", f1[2:], f3[2:])
	}
	if len(f1) != timeFeatureDim {
		t.Errorf("feature dim = %d", len(f1))
	}
}

func TestNormalizeLevels(t *testing.T) {
	got, err := normalizeLevels([]float64{0.9, 0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.5, 0.9}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("levels = %v", got)
		}
	}
	if _, err := normalizeLevels(nil); err == nil {
		t.Error("empty levels should fail")
	}
	if _, err := normalizeLevels([]float64{0}); err == nil {
		t.Error("level 0 should fail")
	}
	if _, err := normalizeLevels([]float64{1}); err == nil {
		t.Error("level 1 should fail")
	}
}

func TestTrainingWindowsBounded(t *testing.T) {
	vals := make([]float64, 1000)
	s := timeseries.New("x", t0, timeseries.DefaultStep, vals)
	ws, err := trainingWindows(s, 10, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) > 50 {
		t.Errorf("got %d windows, want <= 50", len(ws))
	}
	if len(ws) < 25 {
		t.Errorf("got %d windows, suspiciously few", len(ws))
	}
	if _, err := trainingWindows(s.Slice(0, 12), 10, 5, 50); err != ErrShortHistory {
		t.Errorf("short series err = %v", err)
	}
}

func TestContextTail(t *testing.T) {
	s := timeseries.New("x", t0, timeseries.DefaultStep, []float64{1, 2, 3, 4})
	tail, err := contextTail(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tail[0] != 3 || tail[1] != 4 {
		t.Errorf("tail = %v", tail)
	}
	if _, err := contextTail(s, 5); err != ErrShortHistory {
		t.Errorf("err = %v", err)
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// sineSeries builds a noiseless seasonal series for model tests: cheap to
// learn and with a known continuation.
func sineSeries(n, period int, level, amp float64) *timeseries.Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = level + amp*math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	return timeseries.New("sine", t0, timeseries.DefaultStep, vals)
}

func mseAgainst(pred []float64, s *timeseries.Series, from int) float64 {
	sum := 0.0
	for i, p := range pred {
		d := p - s.At(from+i)
		sum += d * d
	}
	return sum / float64(len(pred))
}
