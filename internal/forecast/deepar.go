package forecast

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"robustscale/internal/dist"
	"robustscale/internal/nn"
	"robustscale/internal/obs"
	"robustscale/internal/parallel"
	"robustscale/internal/timeseries"
)

// Emission selects the parametric output distribution of the DeepAR head.
type Emission string

// Supported emissions. The paper chooses Student-t for its longer tails;
// Gaussian is kept for the ablation bench.
const (
	EmitStudentT Emission = "student-t"
	EmitGaussian Emission = "gaussian"
)

// DeepARConfig configures the autoregressive recurrent forecaster.
type DeepARConfig struct {
	// Context is the conditioning window length T.
	Context int
	// Hidden is the LSTM hidden size.
	Hidden int
	// Epochs is the number of passes over the training windows.
	Epochs int
	// LR is the Adam learning rate; the paper fixes 1e-3.
	LR float64
	// Seed makes initialization, shuffling and sampling deterministic.
	Seed int64
	// MaxWindows bounds the number of training windows per epoch.
	MaxWindows int
	// Samples is the number of Monte-Carlo paths drawn to estimate
	// quantiles at prediction time; larger is more precise and slower
	// (this drives DeepAR's inference cost in Tables II/III).
	Samples int
	// TrainHorizon is the decoder length used during training sequences.
	TrainHorizon int
	// Emission selects the output distribution.
	Emission Emission
	// Workers bounds the concurrency of Monte-Carlo sampling and batch
	// training; 0 means one worker per CPU. Outputs are bit-identical for
	// every value (each sample path owns a seed-derived RNG and writes
	// only its own slot).
	Workers int
	// Batch is the number of BPTT windows whose gradients are merged into
	// one Adam step. 0 or 1 keeps the classic one-step-per-window regime;
	// larger values train data-parallel across Workers while staying
	// deterministic (per-window gradient buffers merged in window order).
	Batch int
}

// DefaultDeepARConfig mirrors the paper's setup: 72-step context, Student-t
// emission, sampled quantiles.
func DefaultDeepARConfig() DeepARConfig {
	return DeepARConfig{
		Context: 72, Hidden: 32, Epochs: 12, LR: 1e-3, Seed: 1,
		MaxWindows: 192, Samples: 100, TrainHorizon: 72, Emission: EmitStudentT,
	}
}

// DeepAR is an autoregressive recurrent probabilistic forecaster in the
// style of Salinas et al.: an LSTM conditioned on the lagged series and
// calendar covariates emits the parameters of a parametric distribution at
// each step; multi-step forecasts are produced by ancestral sampling, which
// is why its inference is an order of magnitude slower than TFT's.
type DeepAR struct {
	cfg DeepARConfig

	scaler timeseries.StandardScaler
	cell   *nn.LSTMCell
	head   *nn.Dense
	params nn.Params
	fitted bool

	warm deeparWarm
}

// NewDeepAR returns an untrained DeepAR forecaster.
func NewDeepAR(cfg DeepARConfig) *DeepAR {
	def := DefaultDeepARConfig()
	if cfg.Context <= 0 {
		cfg.Context = def.Context
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = def.Hidden
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = def.Epochs
	}
	if cfg.LR <= 0 {
		cfg.LR = def.LR
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = def.MaxWindows
	}
	if cfg.Samples <= 0 {
		cfg.Samples = def.Samples
	}
	if cfg.TrainHorizon <= 0 {
		cfg.TrainHorizon = def.TrainHorizon
	}
	if cfg.Emission == "" {
		cfg.Emission = def.Emission
	}
	return &DeepAR{cfg: cfg}
}

// Name implements Forecaster.
func (d *DeepAR) Name() string { return "deepar" }

// headSize is the number of emission parameters.
func (d *DeepAR) headSize() int {
	if d.cfg.Emission == EmitGaussian {
		return 2
	}
	return 3
}

const deepARInputDim = 1 + timeFeatureDim

// build constructs the network architecture.
func (d *DeepAR) build() {
	rng := rand.New(rand.NewSource(d.cfg.Seed))
	d.cell = nn.NewLSTMCell("deepar.lstm", deepARInputDim, d.cfg.Hidden, rng)
	d.head = nn.NewDense("deepar.head", d.cfg.Hidden, d.headSize(), rng)
	d.params = append(d.cell.Params(), d.head.Params()...)
}

// Fit trains the model on the series with teacher forcing and BPTT.
// Gradients for the cfg.Batch windows of each mini-batch are computed on
// replica networks (private gradient buffers over shared weights) in
// parallel across cfg.Workers, then merged in window order into one Adam
// step — so the fitted weights are bit-identical for any worker count.
func (d *DeepAR) Fit(train *timeseries.Series) error {
	d.WarmReset() // new weights invalidate any cached recurrent state
	d.build()
	d.scaler.Fit(train.Values)

	windows, err := trainingWindows(train, d.cfg.Context, d.cfg.TrainHorizon, d.cfg.MaxWindows)
	if err != nil {
		return err
	}

	batch := d.cfg.Batch
	if batch < 1 {
		batch = 1
	}
	if batch > len(windows) {
		batch = len(windows)
	}
	reps := make([]*deeparReplica, batch)
	for i := range reps {
		reps[i] = d.replica()
	}
	workers := parallel.Workers(d.cfg.Workers, batch)

	rng := rand.New(rand.NewSource(d.cfg.Seed + 1)) // shuffle stream, distinct from init
	opt := nn.NewAdam(d.cfg.LR)
	order := rng.Perm(len(windows))
	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		spe := obs.DefaultTracer.Start("deepar.epoch")
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			n := len(order) - start
			if n > batch {
				n = batch
			}
			parallel.ForEachWorkerSpan("deepar.batch", workers, n, func(_, i int) {
				reps[i].windowGrad(train, windows[order[start+i]])
			})
			d.params.ZeroGrads()
			for i := 0; i < n; i++ {
				nn.AccumGrads(d.params, reps[i].params)
			}
			d.params.ClipGradNorm(5)
			opt.Step(d.params)
		}
		spe.End()
		obsDeepAREpochs.Inc()
	}
	d.fitted = true
	return nil
}

// deeparReplica is one data-parallel training lane: a gradient replica of
// the network plus its own scratch arena.
type deeparReplica struct {
	d       *DeepAR
	cell    *nn.LSTMCell
	head    *nn.Dense
	params  nn.Params
	scratch *nn.Scratch
}

// replica builds a training lane over the model's shared weights.
func (d *DeepAR) replica() *deeparReplica {
	cell := d.cell.Replica()
	head := d.head.Replica()
	return &deeparReplica{
		d:       d,
		cell:    cell,
		head:    head,
		params:  append(cell.Params(), head.Params()...),
		scratch: nn.NewScratch(),
	}
}

// windowGrad runs one teacher-forced sequence through the replica and
// leaves the window's gradients in the replica's buffers (no optimizer
// step; the caller merges and steps).
func (r *deeparReplica) windowGrad(train *timeseries.Series, w timeseries.Window) {
	r.scratch.Reset()
	d := r.d
	s := r.scratch

	// The sequence covers context plus horizon; at step t the input is the
	// normalized previous observation and the target is the current one.
	seq := make([]float64, 0, len(w.Context)+len(w.Target))
	seq = append(seq, w.Context...)
	seq = append(seq, w.Target...)
	norm := d.scaler.Transform(seq)
	startIdx := w.Origin - len(w.Context) // absolute index of seq[0]

	steps := len(norm) - 1
	xs := make([][]float64, steps)
	for t := 0; t < steps; t++ {
		xs[t] = d.stepInputScratch(s, norm[t], train.TimeAt(startIdx+t+1))
	}

	r.params.ZeroGrads()
	hs, _, caches := r.cell.RunSequenceScratch(s, xs, r.cell.NewLSTMStateScratch(s))
	dhs := make([][]float64, steps)
	headCaches := make([]*nn.DenseCache, steps)
	dOuts := make([][]float64, steps)
	for t := 0; t < steps; t++ {
		out, hc := r.head.ForwardScratch(s, hs[t])
		headCaches[t] = hc
		dOuts[t] = d.nllGrad(out, norm[t+1])
	}
	for t := 0; t < steps; t++ {
		dhs[t] = r.head.BackwardScratch(s, headCaches[t], dOuts[t])
	}
	r.cell.BackwardSequenceScratch(s, caches, dhs, nn.LSTMState{})
}

// stepInput builds the covariate vector for one step: previous normalized
// value plus the calendar features of the step's own timestamp.
func (d *DeepAR) stepInput(prevNorm float64, ts time.Time) []float64 {
	return d.stepInputScratch(nil, prevNorm, ts)
}

// stepInputScratch is stepInput with the vector drawn from the arena.
func (d *DeepAR) stepInputScratch(s *nn.Scratch, prevNorm float64, ts time.Time) []float64 {
	x := s.Vec(deepARInputDim)
	x[0] = prevNorm
	timeFeaturesInto(x[1:], ts)
	return x
}

// emissionFrom maps raw head outputs to a distribution.
func (d *DeepAR) emissionFrom(out []float64) dist.Distribution {
	mu := out[0]
	sigma := dist.Softplus(out[1]) + 1e-4
	if d.cfg.Emission == EmitGaussian {
		return dist.NewNormal(mu, sigma)
	}
	nu := 2.1 + dist.Softplus(out[2])
	return dist.NewStudentT(nu, mu, sigma)
}

// nllGrad returns the gradient of the negative log-likelihood of target y
// with respect to the raw head outputs.
func (d *DeepAR) nllGrad(out []float64, y float64) []float64 {
	mu := out[0]
	sigma := dist.Softplus(out[1]) + 1e-4
	g := make([]float64, len(out))
	if d.cfg.Emission == EmitGaussian {
		z := (y - mu) / sigma
		g[0] = -z / sigma
		dSigma := 1/sigma - z*z/sigma
		g[1] = dSigma * dist.SoftplusDeriv(out[1])
		return g
	}
	nu := 2.1 + dist.Softplus(out[2])
	z := (y - mu) / sigma
	a := 1 + z*z/nu
	// d logpdf / d{mu, sigma, nu}; NLL flips the sign.
	dMu := (nu + 1) * z / (nu * a * sigma)
	dSigma := -1/sigma + (nu+1)*z*z/(nu*a*sigma)
	dNu := 0.5*(dist.Digamma((nu+1)/2)-dist.Digamma(nu/2)) -
		1/(2*nu) - 0.5*math.Log(a) + (nu+1)*z*z/(2*nu*nu*a)
	g[0] = -dMu
	g[1] = -dSigma * dist.SoftplusDeriv(out[1])
	g[2] = -dNu * dist.SoftplusDeriv(out[2])
	return g
}

// conditionStep runs the teacher-forced conditioning step for position p
// of the series: the input is the normalized observation at p-1 (at the
// window anchor, with no earlier observation inside the window, the value
// at the anchor itself) plus the calendar features of p's own timestamp.
// Position history.Len() is the "extra step" conditioned on the final
// observation, whose emission parameterizes the first forecast step.
func (d *DeepAR) conditionStep(s *nn.Scratch, state nn.LSTMState, history *timeseries.Series, anchor, p int) nn.LSTMState {
	prev := p - 1
	if p == anchor {
		prev = anchor // no earlier observation; condition on itself
	}
	x := d.stepInputScratch(s, d.scaler.TransformOne(history.At(prev)), history.TimeAt(p))
	state, _ = d.cell.StepScratch(s, x, state)
	return state
}

// warmup runs the conditioning window through the network with teacher
// forcing and returns the final state plus the emission for the first
// forecast step. The window starts at the anchored grid position
// warmAnchor(n, Context) — a pure function of the history length — so an
// incrementally advanced warm state walks exactly the same inputs from the
// same zero state and stays bit-identical to this cold rebuild (see
// warm.go).
func (d *DeepAR) warmup(history *timeseries.Series) (nn.LSTMState, dist.Distribution, error) {
	if history.Len() < d.cfg.Context {
		return nn.LSTMState{}, nil, ErrShortHistory
	}
	anchor := warmAnchor(history.Len(), d.cfg.Context)
	state := d.cell.NewLSTMState()
	for p := anchor; p <= history.Len(); p++ {
		state = d.conditionStep(nil, state, history, anchor, p)
	}
	out, _ := d.head.Forward(state.H)
	return state, d.emissionFrom(out), nil
}

// Predict implements Forecaster via the sample mean of the Monte-Carlo
// paths.
func (d *DeepAR) Predict(history *timeseries.Series, h int) ([]float64, error) {
	f, err := d.PredictQuantiles(history, h, []float64{0.5})
	if err != nil {
		return nil, err
	}
	return f.Mean, nil
}

// PredictQuantiles implements QuantileForecaster by ancestral sampling:
// Samples paths are rolled forward feeding each draw back as the next
// input, and per-step empirical quantiles are reported. Paths are fanned
// across cfg.Workers goroutines; each path draws from its own
// seed-derived RNG and writes only its own sample slots, so the result is
// bit-identical for every worker count (including 1). This cold path
// allocates per call and is safe for concurrent use; the warm path below
// reuses pooled buffers instead.
func (d *DeepAR) PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if !d.fitted {
		return nil, ErrNotFitted
	}
	levels, err := normalizeLevels(levels)
	if err != nil {
		return nil, err
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: non-positive horizon %d", h)
	}
	state0, emit0, err := d.warmup(history)
	if err != nil {
		return nil, err
	}
	samples := make([][]float64, h) // [step][sample] in normalized space
	for t := range samples {
		samples[t] = make([]float64, d.cfg.Samples)
	}
	workers := parallel.Workers(d.cfg.Workers, d.cfg.Samples)
	scratches := make([]*nn.Scratch, workers)
	for i := range scratches {
		scratches[i] = nn.NewScratch()
	}
	d.sample(history, h, state0, emit0, samples, scratches, nil)

	f := &QuantileForecast{
		Levels: levels,
		Values: make([][]float64, h),
		Mean:   make([]float64, h),
	}
	for t := range f.Values {
		f.Values[t] = make([]float64, len(levels))
	}
	d.assemble(f, samples)
	return f, nil
}

// sample rolls the Monte-Carlo paths forward from state0/emit0 and fills
// the [h][paths] sample matrix in normalized space. rngs, when non-nil,
// supplies one reusable per-worker RNG (re-seeded per path, which yields
// the identical stream to a freshly constructed source); otherwise each
// path allocates its own. The horizon-1 round — the high-frequency steady
// state — never rolls the LSTM during sampling (the loop breaks before the
// first rollout step), so it draws sequentially on the caller's goroutine
// and skips the worker fan-out entirely.
func (d *DeepAR) sample(history *timeseries.Series, h int, state0 nn.LSTMState, emit0 dist.Distribution, samples [][]float64, scratches []*nn.Scratch, rngs []*rand.Rand) {
	paths := len(samples[0])
	obsPredictions.With("deepar").Inc()
	obsMCPaths.Add(float64(paths))
	base := d.cfg.Seed + int64(history.Len())

	if h == 1 {
		row := samples[0]
		var rng *rand.Rand
		if len(rngs) > 0 {
			rng = rngs[0]
		} else {
			rng = newPathRand(0)
		}
		for sIdx := range row {
			rng.Seed(pathSeed(base, sIdx))
			row[sIdx] = emit0.Sample(rng)
		}
		return
	}

	workers := len(scratches)
	sp := obs.DefaultTracer.Start("deepar.sample")
	parallel.ForEachWorkerSpan("deepar.sample", workers, paths, func(worker, sIdx int) {
		var rng *rand.Rand
		if rngs != nil {
			rng = rngs[worker]
			rng.Seed(pathSeed(base, sIdx))
		} else {
			rng = newPathRand(pathSeed(base, sIdx))
		}
		sc := scratches[worker]
		sc.Reset()
		state := state0.CloneScratch(sc)
		emit := emit0
		for t := 0; t < h; t++ {
			z := emit.Sample(rng)
			samples[t][sIdx] = z
			if t == h-1 {
				break
			}
			x := d.stepInputScratch(sc, z, history.TimeAt(history.Len()+t+1))
			state, _ = d.cell.StepScratch(sc, x, state)
			out, _ := d.head.ForwardScratch(sc, state.H)
			emit = d.emissionFrom(out)
		}
	})
	sp.End()
}

// assemble turns the sample matrix into the fan: each row is sorted in
// place and reduced to its mean and the requested quantiles, denormalized.
// The in-place helpers compute exactly what dist.NewEmpirical would
// (including summing the mean in sorted order), without the per-step copy.
func (d *DeepAR) assemble(f *QuantileForecast, samples [][]float64) {
	for t := range samples {
		sorted := dist.SortInPlace(samples[t])
		f.Mean[t] = d.scaler.InverseOne(dist.SortedMean(sorted))
		row := f.Values[t]
		for i, tau := range f.Levels {
			row[i] = d.scaler.InverseOne(dist.SortedQuantile(sorted, tau))
		}
	}
}

// deeparWarm is the cached recurrent state plus the pooled prediction
// buffers of the warm fast path. The state is derived entirely from the
// fitted weights and the observed history: it is rebuilt on any
// discontinuity and is never checkpointed (Load drops it).
type deeparWarm struct {
	ref    historyRef
	valid  bool
	anchor int          // conditioning window start of the cached state
	next   int          // the state has consumed conditioning inputs for positions [anchor, next)
	state  nn.LSTMState // owned heap buffers, never scratch-backed

	adv       *nn.Scratch // scratch arena for advance/rebuild steps
	samples   [][]float64 // pooled [h][paths] Monte-Carlo matrix
	scratches []*nn.Scratch
	rngs      []*rand.Rand
	levels    levelsCache
	fan       *QuantileForecast
	budget    func(full int) int
}

// SetSampleBudget installs a reduced-path sampling hook on the warm path:
// before each warm predict the hook receives cfg.Samples and returns how
// many Monte-Carlo paths to draw this round (clamped to [2, cfg.Samples];
// <= 0 keeps the full fan). The drawn paths are a prefix of the full fan's
// seed sequence. Shrinking necessarily changes the reported quantiles, so
// a round with a reduced fan is NOT bit-identical to the cold path —
// callers opt in only when forecast calibration is verifiably healthy
// (see cluster.Calibration.SampleShrinker). The cold path never shrinks.
func (d *DeepAR) SetSampleBudget(hook func(full int) int) { d.warm.budget = hook }

// WarmReset implements IncrementalForecaster: the next warm predict pays
// one cold rebuild of the recurrent state. Pooled buffers survive — they
// are shape caches, not state.
func (d *DeepAR) WarmReset() {
	d.warm.valid = false
	d.warm.ref.reset()
}

// PredictQuantilesWarm implements IncrementalForecaster. When the history
// is an append-extension of the one the cached state was built from and
// the anchored conditioning window hasn't moved, the recurrent state is
// advanced with one conditioning step per new observation instead of
// replaying the whole window; otherwise it is rebuilt cold. Either way the
// returned floats are bit-identical to PredictQuantiles (unless a sample
// budget hook shrinks the fan). The returned forecast is a scratch owned
// by the forecaster, valid until the next predict; see warm.go for the
// full contract.
func (d *DeepAR) PredictQuantilesWarm(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if !d.fitted {
		return nil, ErrNotFitted
	}
	lv, err := d.warm.levels.get(levels)
	if err != nil {
		return nil, err
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: non-positive horizon %d", h)
	}
	n := history.Len()
	if n < d.cfg.Context {
		return nil, ErrShortHistory
	}
	w := &d.warm
	anchor := warmAnchor(n, d.cfg.Context)
	if w.adv == nil {
		w.adv = nn.NewScratch()
	}
	sc := w.adv
	sc.Reset()

	// Conditioning: advance the cached state over the newly appended
	// observations, or rebuild it from the anchor when the cache cannot
	// prove continuity. The final conditioning input is at position n (the
	// "extra step" on the last observation), so a state that has consumed
	// [anchor, n+1) is exactly what this origin needs — and what the next
	// origin resumes from.
	state := nn.LSTMState{H: w.state.H, C: w.state.C}
	from := w.next
	if !w.valid || w.anchor != anchor || w.next > n+1 || !w.ref.extends(history) {
		state = d.cell.NewLSTMStateScratch(sc)
		from = anchor
	}
	for p := from; p <= n; p++ {
		state = d.conditionStep(sc, state, history, anchor, p)
	}
	out, _ := d.head.ForwardScratch(sc, state.H)
	emit0 := d.emissionFrom(out)
	w.state.H = append(w.state.H[:0], state.H...)
	w.state.C = append(w.state.C[:0], state.C...)
	w.anchor, w.next = anchor, n+1
	w.ref.record(history)
	w.valid = true

	paths := d.cfg.Samples
	if w.budget != nil {
		if b := w.budget(paths); b > 0 && b < paths {
			if b < 2 {
				b = 2
			}
			paths = b
		}
	}
	if cap(w.samples) >= h {
		w.samples = w.samples[:h]
	} else {
		w.samples = make([][]float64, h)
	}
	for t := range w.samples {
		w.samples[t] = resizeFloats(w.samples[t], paths)
	}
	workers := 1
	if h > 1 {
		workers = parallel.Workers(d.cfg.Workers, paths)
	}
	for len(w.scratches) < workers {
		w.scratches = append(w.scratches, nn.NewScratch())
	}
	for len(w.rngs) < workers {
		w.rngs = append(w.rngs, newPathRand(0))
	}
	state0 := nn.LSTMState{H: w.state.H, C: w.state.C}
	d.sample(history, h, state0, emit0, w.samples, w.scratches[:workers], w.rngs)

	w.fan = reuseFan(w.fan, h, lv)
	d.assemble(w.fan, w.samples)
	return w.fan, nil
}

var _ QuantileForecaster = (*DeepAR)(nil)
var _ IncrementalForecaster = (*DeepAR)(nil)
