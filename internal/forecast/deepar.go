package forecast

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"robustscale/internal/dist"
	"robustscale/internal/nn"
	"robustscale/internal/obs"
	"robustscale/internal/parallel"
	"robustscale/internal/timeseries"
)

// Emission selects the parametric output distribution of the DeepAR head.
type Emission string

// Supported emissions. The paper chooses Student-t for its longer tails;
// Gaussian is kept for the ablation bench.
const (
	EmitStudentT Emission = "student-t"
	EmitGaussian Emission = "gaussian"
)

// DeepARConfig configures the autoregressive recurrent forecaster.
type DeepARConfig struct {
	// Context is the conditioning window length T.
	Context int
	// Hidden is the LSTM hidden size.
	Hidden int
	// Epochs is the number of passes over the training windows.
	Epochs int
	// LR is the Adam learning rate; the paper fixes 1e-3.
	LR float64
	// Seed makes initialization, shuffling and sampling deterministic.
	Seed int64
	// MaxWindows bounds the number of training windows per epoch.
	MaxWindows int
	// Samples is the number of Monte-Carlo paths drawn to estimate
	// quantiles at prediction time; larger is more precise and slower
	// (this drives DeepAR's inference cost in Tables II/III).
	Samples int
	// TrainHorizon is the decoder length used during training sequences.
	TrainHorizon int
	// Emission selects the output distribution.
	Emission Emission
	// Workers bounds the concurrency of Monte-Carlo sampling and batch
	// training; 0 means one worker per CPU. Outputs are bit-identical for
	// every value (each sample path owns a seed-derived RNG and writes
	// only its own slot).
	Workers int
	// Batch is the number of BPTT windows whose gradients are merged into
	// one Adam step. 0 or 1 keeps the classic one-step-per-window regime;
	// larger values train data-parallel across Workers while staying
	// deterministic (per-window gradient buffers merged in window order).
	Batch int
}

// DefaultDeepARConfig mirrors the paper's setup: 72-step context, Student-t
// emission, sampled quantiles.
func DefaultDeepARConfig() DeepARConfig {
	return DeepARConfig{
		Context: 72, Hidden: 32, Epochs: 12, LR: 1e-3, Seed: 1,
		MaxWindows: 192, Samples: 100, TrainHorizon: 72, Emission: EmitStudentT,
	}
}

// DeepAR is an autoregressive recurrent probabilistic forecaster in the
// style of Salinas et al.: an LSTM conditioned on the lagged series and
// calendar covariates emits the parameters of a parametric distribution at
// each step; multi-step forecasts are produced by ancestral sampling, which
// is why its inference is an order of magnitude slower than TFT's.
type DeepAR struct {
	cfg DeepARConfig

	scaler timeseries.StandardScaler
	cell   *nn.LSTMCell
	head   *nn.Dense
	params nn.Params
	fitted bool
}

// NewDeepAR returns an untrained DeepAR forecaster.
func NewDeepAR(cfg DeepARConfig) *DeepAR {
	def := DefaultDeepARConfig()
	if cfg.Context <= 0 {
		cfg.Context = def.Context
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = def.Hidden
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = def.Epochs
	}
	if cfg.LR <= 0 {
		cfg.LR = def.LR
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = def.MaxWindows
	}
	if cfg.Samples <= 0 {
		cfg.Samples = def.Samples
	}
	if cfg.TrainHorizon <= 0 {
		cfg.TrainHorizon = def.TrainHorizon
	}
	if cfg.Emission == "" {
		cfg.Emission = def.Emission
	}
	return &DeepAR{cfg: cfg}
}

// Name implements Forecaster.
func (d *DeepAR) Name() string { return "deepar" }

// headSize is the number of emission parameters.
func (d *DeepAR) headSize() int {
	if d.cfg.Emission == EmitGaussian {
		return 2
	}
	return 3
}

const deepARInputDim = 1 + timeFeatureDim

// build constructs the network architecture.
func (d *DeepAR) build() {
	rng := rand.New(rand.NewSource(d.cfg.Seed))
	d.cell = nn.NewLSTMCell("deepar.lstm", deepARInputDim, d.cfg.Hidden, rng)
	d.head = nn.NewDense("deepar.head", d.cfg.Hidden, d.headSize(), rng)
	d.params = append(d.cell.Params(), d.head.Params()...)
}

// Fit trains the model on the series with teacher forcing and BPTT.
// Gradients for the cfg.Batch windows of each mini-batch are computed on
// replica networks (private gradient buffers over shared weights) in
// parallel across cfg.Workers, then merged in window order into one Adam
// step — so the fitted weights are bit-identical for any worker count.
func (d *DeepAR) Fit(train *timeseries.Series) error {
	d.build()
	d.scaler.Fit(train.Values)

	windows, err := trainingWindows(train, d.cfg.Context, d.cfg.TrainHorizon, d.cfg.MaxWindows)
	if err != nil {
		return err
	}

	batch := d.cfg.Batch
	if batch < 1 {
		batch = 1
	}
	if batch > len(windows) {
		batch = len(windows)
	}
	reps := make([]*deeparReplica, batch)
	for i := range reps {
		reps[i] = d.replica()
	}
	workers := parallel.Workers(d.cfg.Workers, batch)

	rng := rand.New(rand.NewSource(d.cfg.Seed + 1)) // shuffle stream, distinct from init
	opt := nn.NewAdam(d.cfg.LR)
	order := rng.Perm(len(windows))
	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		spe := obs.DefaultTracer.Start("deepar.epoch")
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			n := len(order) - start
			if n > batch {
				n = batch
			}
			parallel.ForEachWorkerSpan("deepar.batch", workers, n, func(_, i int) {
				reps[i].windowGrad(train, windows[order[start+i]])
			})
			d.params.ZeroGrads()
			for i := 0; i < n; i++ {
				nn.AccumGrads(d.params, reps[i].params)
			}
			d.params.ClipGradNorm(5)
			opt.Step(d.params)
		}
		spe.End()
		obsDeepAREpochs.Inc()
	}
	d.fitted = true
	return nil
}

// deeparReplica is one data-parallel training lane: a gradient replica of
// the network plus its own scratch arena.
type deeparReplica struct {
	d       *DeepAR
	cell    *nn.LSTMCell
	head    *nn.Dense
	params  nn.Params
	scratch *nn.Scratch
}

// replica builds a training lane over the model's shared weights.
func (d *DeepAR) replica() *deeparReplica {
	cell := d.cell.Replica()
	head := d.head.Replica()
	return &deeparReplica{
		d:       d,
		cell:    cell,
		head:    head,
		params:  append(cell.Params(), head.Params()...),
		scratch: nn.NewScratch(),
	}
}

// windowGrad runs one teacher-forced sequence through the replica and
// leaves the window's gradients in the replica's buffers (no optimizer
// step; the caller merges and steps).
func (r *deeparReplica) windowGrad(train *timeseries.Series, w timeseries.Window) {
	r.scratch.Reset()
	d := r.d
	s := r.scratch

	// The sequence covers context plus horizon; at step t the input is the
	// normalized previous observation and the target is the current one.
	seq := make([]float64, 0, len(w.Context)+len(w.Target))
	seq = append(seq, w.Context...)
	seq = append(seq, w.Target...)
	norm := d.scaler.Transform(seq)
	startIdx := w.Origin - len(w.Context) // absolute index of seq[0]

	steps := len(norm) - 1
	xs := make([][]float64, steps)
	for t := 0; t < steps; t++ {
		xs[t] = d.stepInputScratch(s, norm[t], train.TimeAt(startIdx+t+1))
	}

	r.params.ZeroGrads()
	hs, _, caches := r.cell.RunSequenceScratch(s, xs, r.cell.NewLSTMStateScratch(s))
	dhs := make([][]float64, steps)
	headCaches := make([]*nn.DenseCache, steps)
	dOuts := make([][]float64, steps)
	for t := 0; t < steps; t++ {
		out, hc := r.head.ForwardScratch(s, hs[t])
		headCaches[t] = hc
		dOuts[t] = d.nllGrad(out, norm[t+1])
	}
	for t := 0; t < steps; t++ {
		dhs[t] = r.head.BackwardScratch(s, headCaches[t], dOuts[t])
	}
	r.cell.BackwardSequenceScratch(s, caches, dhs, nn.LSTMState{})
}

// stepInput builds the covariate vector for one step: previous normalized
// value plus the calendar features of the step's own timestamp.
func (d *DeepAR) stepInput(prevNorm float64, ts time.Time) []float64 {
	return d.stepInputScratch(nil, prevNorm, ts)
}

// stepInputScratch is stepInput with the vector drawn from the arena.
func (d *DeepAR) stepInputScratch(s *nn.Scratch, prevNorm float64, ts time.Time) []float64 {
	x := s.Vec(deepARInputDim)
	x[0] = prevNorm
	timeFeaturesInto(x[1:], ts)
	return x
}

// emissionFrom maps raw head outputs to a distribution.
func (d *DeepAR) emissionFrom(out []float64) dist.Distribution {
	mu := out[0]
	sigma := dist.Softplus(out[1]) + 1e-4
	if d.cfg.Emission == EmitGaussian {
		return dist.NewNormal(mu, sigma)
	}
	nu := 2.1 + dist.Softplus(out[2])
	return dist.NewStudentT(nu, mu, sigma)
}

// nllGrad returns the gradient of the negative log-likelihood of target y
// with respect to the raw head outputs.
func (d *DeepAR) nllGrad(out []float64, y float64) []float64 {
	mu := out[0]
	sigma := dist.Softplus(out[1]) + 1e-4
	g := make([]float64, len(out))
	if d.cfg.Emission == EmitGaussian {
		z := (y - mu) / sigma
		g[0] = -z / sigma
		dSigma := 1/sigma - z*z/sigma
		g[1] = dSigma * dist.SoftplusDeriv(out[1])
		return g
	}
	nu := 2.1 + dist.Softplus(out[2])
	z := (y - mu) / sigma
	a := 1 + z*z/nu
	// d logpdf / d{mu, sigma, nu}; NLL flips the sign.
	dMu := (nu + 1) * z / (nu * a * sigma)
	dSigma := -1/sigma + (nu+1)*z*z/(nu*a*sigma)
	dNu := 0.5*(dist.Digamma((nu+1)/2)-dist.Digamma(nu/2)) -
		1/(2*nu) - 0.5*math.Log(a) + (nu+1)*z*z/(2*nu*nu*a)
	g[0] = -dMu
	g[1] = -dSigma * dist.SoftplusDeriv(out[1])
	g[2] = -dNu * dist.SoftplusDeriv(out[2])
	return g
}

// warmup runs the context window through the network with teacher forcing
// and returns the final state plus the emission for the first forecast
// step.
func (d *DeepAR) warmup(history *timeseries.Series) (nn.LSTMState, dist.Distribution, error) {
	context, err := contextTail(history, d.cfg.Context)
	if err != nil {
		return nn.LSTMState{}, nil, err
	}
	norm := d.scaler.Transform(context)
	startIdx := history.Len() - d.cfg.Context
	state := d.cell.NewLSTMState()
	var lastH []float64
	for t := 0; t < len(norm); t++ {
		var prev float64
		if t == 0 {
			prev = norm[0] // no earlier observation; condition on itself
		} else {
			prev = norm[t-1]
		}
		x := d.stepInput(prev, history.TimeAt(startIdx+t))
		state, _ = d.cell.Step(x, state)
		lastH = state.H
	}
	// One more step conditioned on the final observation yields the
	// distribution for the first forecast step.
	x := d.stepInput(norm[len(norm)-1], history.TimeAt(history.Len()))
	state, _ = d.cell.Step(x, state)
	_ = lastH
	out, _ := d.head.Forward(state.H)
	return state, d.emissionFrom(out), nil
}

// Predict implements Forecaster via the sample mean of the Monte-Carlo
// paths.
func (d *DeepAR) Predict(history *timeseries.Series, h int) ([]float64, error) {
	f, err := d.PredictQuantiles(history, h, []float64{0.5})
	if err != nil {
		return nil, err
	}
	return f.Mean, nil
}

// PredictQuantiles implements QuantileForecaster by ancestral sampling:
// Samples paths are rolled forward feeding each draw back as the next
// input, and per-step empirical quantiles are reported. Paths are fanned
// across cfg.Workers goroutines; each path draws from its own
// seed-derived RNG and writes only its own sample slots, so the result is
// bit-identical for every worker count (including 1).
func (d *DeepAR) PredictQuantiles(history *timeseries.Series, h int, levels []float64) (*QuantileForecast, error) {
	if !d.fitted {
		return nil, ErrNotFitted
	}
	levels, err := normalizeLevels(levels)
	if err != nil {
		return nil, err
	}
	if h <= 0 {
		return nil, fmt.Errorf("forecast: non-positive horizon %d", h)
	}
	state0, emit0, err := d.warmup(history)
	if err != nil {
		return nil, err
	}
	obsPredictions.With("deepar").Inc()
	obsMCPaths.Add(float64(d.cfg.Samples))
	base := d.cfg.Seed + int64(history.Len())

	samples := make([][]float64, h) // [step][sample] in normalized space
	for t := range samples {
		samples[t] = make([]float64, d.cfg.Samples)
	}
	workers := parallel.Workers(d.cfg.Workers, d.cfg.Samples)
	scratches := make([]*nn.Scratch, workers)
	for i := range scratches {
		scratches[i] = nn.NewScratch()
	}
	sp := obs.DefaultTracer.Start("deepar.sample")
	parallel.ForEachWorkerSpan("deepar.sample", workers, d.cfg.Samples, func(worker, sIdx int) {
		rng := rand.New(rand.NewSource(pathSeed(base, sIdx)))
		sc := scratches[worker]
		sc.Reset()
		state := state0.CloneScratch(sc)
		emit := emit0
		for t := 0; t < h; t++ {
			z := emit.Sample(rng)
			samples[t][sIdx] = z
			if t == h-1 {
				break
			}
			x := d.stepInputScratch(sc, z, history.TimeAt(history.Len()+t+1))
			state, _ = d.cell.StepScratch(sc, x, state)
			out, _ := d.head.ForwardScratch(sc, state.H)
			emit = d.emissionFrom(out)
		}
	})
	sp.End()

	f := &QuantileForecast{
		Levels: levels,
		Values: make([][]float64, h),
		Mean:   make([]float64, h),
	}
	for t := 0; t < h; t++ {
		emp := dist.NewEmpirical(samples[t])
		f.Mean[t] = d.scaler.InverseOne(emp.Mean())
		row := make([]float64, len(levels))
		for i, tau := range levels {
			row[i] = d.scaler.InverseOne(emp.Quantile(tau))
		}
		f.Values[t] = row
	}
	return f, nil
}

var _ QuantileForecaster = (*DeepAR)(nil)
