// Package core wires the paper's two-phase framework together (Figure 2):
// a Probabilistic Workload Forecaster trained on historical traces feeds
// quantile forecasts to a Robust Auto-Scaling Manager, which plans compute
// allocations that a simulated disaggregated database then executes.
package core

import (
	"fmt"

	"robustscale/internal/cluster"
	"robustscale/internal/forecast"
	"robustscale/internal/metrics"
	"robustscale/internal/scaler"
	"robustscale/internal/timeseries"
)

// Pipeline is a trained forecaster coupled to an auto-scaling strategy.
type Pipeline struct {
	// Forecaster is the probabilistic workload forecaster. It may be nil
	// for purely reactive strategies.
	Forecaster forecast.QuantileForecaster
	// Strategy converts forecasts (or history) into node allocations.
	Strategy scaler.Strategy
	// Theta is the per-node workload threshold (e.g. target CPU%).
	Theta float64
	// Horizon is the planning cadence in steps; the paper plans 72 steps
	// (12 hours) at a time.
	Horizon int
	// RetrainEvery, when positive, refits the forecaster on all visible
	// history every that many planning rounds during Run — the production
	// answer to workload drift. Zero keeps the paper's train-once setup.
	RetrainEvery int
	// Tenant labels the pipeline's decision records and tenant-scoped
	// counters; empty means the default single-tenant label.
	Tenant string

	trained bool
}

// NewRobust builds the paper's core configuration (Equation 6): scale on
// the tau-quantile forecast.
func NewRobust(f forecast.QuantileForecaster, tau, theta float64, horizon int) *Pipeline {
	return &Pipeline{
		Forecaster: f,
		Strategy:   &scaler.Robust{Forecaster: f, Tau: tau, Theta: theta},
		Theta:      theta,
		Horizon:    horizon,
	}
}

// NewAdaptive builds the uncertainty-aware adaptive configuration
// (Algorithm 1): scale on tau1 when the forecast fan is tight, tau2 when
// uncertainty reaches rho.
func NewAdaptive(f forecast.QuantileForecaster, tau1, tau2, rho, theta float64, horizon int) *Pipeline {
	return &Pipeline{
		Forecaster: f,
		Strategy: &scaler.Adaptive{
			Forecaster: f, Tau1: tau1, Tau2: tau2, Rho: rho, Theta: theta,
		},
		Theta:   theta,
		Horizon: horizon,
	}
}

// NewWithStrategy wraps an arbitrary strategy (reactive, point-predictive,
// rate-limited, ...) in a pipeline.
func NewWithStrategy(s scaler.Strategy, theta float64, horizon int) *Pipeline {
	return &Pipeline{Strategy: s, Theta: theta, Horizon: horizon}
}

// Train fits the forecaster on historical workload. Pipelines without a
// forecaster are trivially trained.
func (p *Pipeline) Train(history *timeseries.Series) error {
	if p.Horizon <= 0 {
		return fmt.Errorf("core: non-positive horizon %d", p.Horizon)
	}
	if p.Theta <= 0 {
		return fmt.Errorf("core: non-positive threshold %v", p.Theta)
	}
	if p.Forecaster != nil {
		if err := p.Forecaster.Fit(history); err != nil {
			return fmt.Errorf("core: training %s: %w", p.Forecaster.Name(), err)
		}
	}
	p.trained = true
	return nil
}

// RunReport is the outcome of a closed-loop run: the idealized
// provisioning evaluation plus the warm-up-aware cluster replay.
type RunReport struct {
	Strategy     string
	Provisioning *metrics.ProvisioningReport
	Replay       *cluster.ReplayReport
	Allocations  []int
}

// Run drives the full loop over the tail of the workload series starting
// at index start: plan Horizon steps from visible history, execute the
// allocations on a simulated cluster as the real workload arrives, then
// re-plan. Observer strategies receive the realized workloads; when
// RetrainEvery is set, the forecaster is periodically refit on all
// history visible at that point.
func (p *Pipeline) Run(workload *timeseries.Series, start int, clusterCfg cluster.Config) (*RunReport, error) {
	if !p.trained {
		return nil, fmt.Errorf("core: pipeline not trained")
	}
	result, err := p.evaluate(workload, start)
	if err != nil {
		return nil, err
	}

	evaluated := workload.Slice(start, start+len(result.Allocations))
	c, err := cluster.New(clusterCfg, evaluated.Start, result.Allocations[0])
	if err != nil {
		return nil, err
	}
	replay, err := c.Replay(evaluated, result.Allocations, p.Theta)
	if err != nil {
		return nil, err
	}
	return &RunReport{
		Strategy:     result.Strategy,
		Provisioning: result.Report,
		Replay:       replay,
		Allocations:  result.Allocations,
	}, nil
}

// evaluate runs the rolling strategy evaluation, inserting periodic
// retraining when configured. Without retraining it defers to the plain
// scaler harness.
func (p *Pipeline) evaluate(workload *timeseries.Series, start int) (*scaler.EvalResult, error) {
	if p.RetrainEvery <= 0 || p.Forecaster == nil {
		return scaler.Evaluate(p.Strategy, workload, scaler.EvalConfig{
			Theta:   p.Theta,
			Horizon: p.Horizon,
			Start:   start,
			Tenant:  p.Tenant,
		})
	}
	var allocations []int
	var actuals []float64
	round := 0
	for origin := start; origin+p.Horizon <= workload.Len(); origin += p.Horizon {
		if round > 0 && round%p.RetrainEvery == 0 {
			if err := p.Forecaster.Fit(workload.Slice(0, origin)); err != nil {
				return nil, fmt.Errorf("core: retraining %s at %d: %w", p.Forecaster.Name(), origin, err)
			}
		}
		round++
		plan, err := p.Strategy.Plan(workload.Slice(0, origin), p.Horizon)
		if err != nil {
			return nil, fmt.Errorf("core: %s planning at %d: %w", p.Strategy.Name(), origin, err)
		}
		realized := workload.Values[origin : origin+p.Horizon]
		allocations = append(allocations, plan...)
		actuals = append(actuals, realized...)
		if obs, ok := p.Strategy.(scaler.Observer); ok {
			obs.Observe(realized)
		}
	}
	if len(allocations) == 0 {
		return nil, fmt.Errorf("core: evaluation span too short for horizon %d", p.Horizon)
	}
	report, err := metrics.Provisioning(actuals, allocations, p.Theta)
	if err != nil {
		return nil, err
	}
	return &scaler.EvalResult{
		Strategy:    p.Strategy.Name(),
		Report:      report,
		Allocations: allocations,
		Actuals:     actuals,
	}, nil
}
