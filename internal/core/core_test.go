package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"robustscale/internal/cluster"
	"robustscale/internal/forecast"
	"robustscale/internal/scaler"
	"robustscale/internal/timeseries"
)

var t0 = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func workload(n int, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 100 + 40*math.Sin(2*math.Pi*float64(i)/48) + rng.NormFloat64()*4
	}
	return timeseries.New("wl", t0, timeseries.DefaultStep, vals)
}

func tinyTFT() *forecast.TFT {
	return forecast.NewTFT(forecast.TFTConfig{
		Context: 24, Hidden: 12, Epochs: 6, LR: 5e-3, Seed: 1,
		MaxWindows: 64, Levels: []float64{0.5, 0.7, 0.9}, TrainHorizon: 12,
	})
}

func TestRobustPipelineEndToEnd(t *testing.T) {
	s := workload(500, 1)
	p := NewRobust(tinyTFT(), 0.9, 20, 12)
	if err := p.Train(s.Slice(0, 400)); err != nil {
		t.Fatal(err)
	}
	report, err := p.Run(s, 400, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if report.Provisioning.Steps != 96 {
		t.Errorf("steps = %d", report.Provisioning.Steps)
	}
	if len(report.Allocations) != 96 {
		t.Errorf("allocations = %d", len(report.Allocations))
	}
	if report.Replay == nil || len(report.Replay.Steps) != 96 {
		t.Error("replay missing")
	}
	// A conservative 0.9-quantile plan on a benign workload should rarely
	// under-provision.
	if report.Provisioning.UnderProvisionRate > 0.3 {
		t.Errorf("under rate = %v", report.Provisioning.UnderProvisionRate)
	}
	if report.Strategy != "tft-0.9" {
		t.Errorf("strategy = %q", report.Strategy)
	}
}

func TestAdaptivePipeline(t *testing.T) {
	s := workload(500, 2)
	p := NewAdaptive(tinyTFT(), 0.7, 0.95, 1.0, 20, 12)
	if err := p.Train(s.Slice(0, 400)); err != nil {
		t.Fatal(err)
	}
	report, err := p.Run(s, 400, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if report.Provisioning.Steps == 0 {
		t.Error("no steps evaluated")
	}
}

func TestReactivePipelineNeedsNoTraining(t *testing.T) {
	s := workload(300, 3)
	p := NewWithStrategy(&scaler.ReactiveMax{Window: 6, Theta: 20}, 20, 1)
	if err := p.Train(s.Slice(0, 200)); err != nil {
		t.Fatal(err)
	}
	report, err := p.Run(s, 200, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if report.Provisioning.Steps != 100 {
		t.Errorf("steps = %d", report.Provisioning.Steps)
	}
}

func TestPipelineRetraining(t *testing.T) {
	// A workload with a level shift right at the evaluation boundary:
	// retraining lets the model see the new level, train-once does not.
	rng := rand.New(rand.NewSource(5))
	n := 700
	vals := make([]float64, n)
	for i := range vals {
		level := 100.0
		if i >= 420 {
			level = 180 // persistent regime shift
		}
		vals[i] = level + 20*math.Sin(2*math.Pi*float64(i)/48) + rng.NormFloat64()*3
	}
	s := timeseries.New("shift", t0, timeseries.DefaultStep, vals)

	run := func(retrainEvery int) float64 {
		m := forecast.NewTFT(forecast.TFTConfig{
			Context: 24, Hidden: 12, Epochs: 5, LR: 5e-3, Seed: 1,
			MaxWindows: 64, Levels: []float64{0.5, 0.9}, TrainHorizon: 12,
		})
		p := NewRobust(m, 0.9, 25, 12)
		p.RetrainEvery = retrainEvery
		if err := p.Train(s.Slice(0, 400)); err != nil {
			t.Fatal(err)
		}
		report, err := p.Run(s, 430, cluster.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return report.Provisioning.UnderProvisionRate
	}
	static := run(0)
	retrained := run(2)
	if retrained > static {
		t.Errorf("retraining under=%v should not exceed static under=%v", retrained, static)
	}
}

func TestPipelineValidation(t *testing.T) {
	s := workload(300, 4)
	if err := (&Pipeline{Strategy: &scaler.ReactiveMax{Theta: 20}, Theta: 20, Horizon: 0}).Train(s); err == nil {
		t.Error("zero horizon should fail")
	}
	if err := (&Pipeline{Strategy: &scaler.ReactiveMax{Theta: 20}, Theta: 0, Horizon: 1}).Train(s); err == nil {
		t.Error("zero theta should fail")
	}
	p := NewWithStrategy(&scaler.ReactiveMax{Theta: 20}, 20, 1)
	if _, err := p.Run(s, 100, cluster.DefaultConfig()); err == nil {
		t.Error("untrained pipeline should fail")
	}
}
