// Package metrics implements the evaluation metrics of the paper's
// Section IV: weighted quantile loss, coverage, mean weighted quantile
// loss, MSE for point forecasts, the under-/over-provisioning rates used to
// judge auto-scaling strategies, and the uncertainty metric U of
// Equation 8.
package metrics

import (
	"fmt"
	"math"
)

// QuantileLoss computes the total quantile loss QL_tau (Equation 2) of
// predictions against actuals: sum over steps of rho_tau.
func QuantileLoss(tau float64, actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, fmt.Errorf("metrics: %d actuals vs %d predictions", len(actual), len(predicted))
	}
	total := 0.0
	for i, y := range actual {
		total += pinball(tau, y, predicted[i])
	}
	return total, nil
}

func pinball(tau, y, yhat float64) float64 {
	u := y - yhat
	if u < 0 {
		return (tau - 1) * u
	}
	return tau * u
}

// WQL computes the weighted quantile loss at level tau:
// 2*QL_tau / sum(actual).
func WQL(tau float64, actual, predicted []float64) (float64, error) {
	ql, err := QuantileLoss(tau, actual, predicted)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, y := range actual {
		sum += y
	}
	if sum == 0 {
		return 0, fmt.Errorf("metrics: target sum is zero, wQL undefined")
	}
	return 2 * ql / sum, nil
}

// MeanWQL averages WQL over a set of quantile levels; predictedAt(tau)
// supplies the prediction path for each level.
func MeanWQL(levels []float64, actual []float64, predictedAt func(tau float64) []float64) (float64, error) {
	if len(levels) == 0 {
		return 0, fmt.Errorf("metrics: no quantile levels")
	}
	total := 0.0
	for _, tau := range levels {
		w, err := WQL(tau, actual, predictedAt(tau))
		if err != nil {
			return 0, err
		}
		total += w
	}
	return total / float64(len(levels)), nil
}

// Coverage measures the fraction of actuals lying at or below the
// tau-quantile prediction; a perfectly calibrated forecaster has
// Coverage = tau.
func Coverage(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, fmt.Errorf("metrics: %d actuals vs %d predictions", len(actual), len(predicted))
	}
	if len(actual) == 0 {
		return 0, fmt.Errorf("metrics: empty coverage input")
	}
	covered := 0
	for i, y := range actual {
		if predicted[i] >= y {
			covered++
		}
	}
	return float64(covered) / float64(len(actual)), nil
}

// MSE computes the mean squared error of a point forecast.
func MSE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, fmt.Errorf("metrics: %d actuals vs %d predictions", len(actual), len(predicted))
	}
	if len(actual) == 0 {
		return 0, fmt.Errorf("metrics: empty MSE input")
	}
	sum := 0.0
	for i, y := range actual {
		d := y - predicted[i]
		sum += d * d
	}
	return sum / float64(len(actual)), nil
}

// MAE computes the mean absolute error of a point forecast.
func MAE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, fmt.Errorf("metrics: %d actuals vs %d predictions", len(actual), len(predicted))
	}
	if len(actual) == 0 {
		return 0, fmt.Errorf("metrics: empty MAE input")
	}
	sum := 0.0
	for i, y := range actual {
		sum += math.Abs(y - predicted[i])
	}
	return sum / float64(len(actual)), nil
}

// Uncertainty computes the metric U of Equation 8 for one forecast step:
// the pinball loss of each quantile forecast measured against the median
// forecast, summed over the quantile levels. It quantifies the spread of
// the quantile fan — wider (more uncertain) forecasts score higher.
//
// The paper's printed formula has the sign of the second factor flipped
// relative to the pinball loss it says U resembles; evaluated literally it
// is non-positive for every input, so this implementation uses the pinball
// orientation, which matches the surrounding text ("similar to quantile
// loss ... compares the forecast at each quantile level with the median
// forecast") and Figure 6's positive values.
func Uncertainty(levels []float64, quantiles []float64, median float64) (float64, error) {
	if len(levels) != len(quantiles) {
		return 0, fmt.Errorf("metrics: %d levels vs %d quantile values", len(levels), len(quantiles))
	}
	u := 0.0
	for i, tau := range levels {
		u += pinball(tau, median, quantiles[i])
	}
	return u, nil
}

// ProvisioningReport summarizes an auto-scaling evaluation: how often the
// allocation was insufficient for the realized workload, how often it
// exceeded the minimum required, and the cumulative node-steps allocated.
type ProvisioningReport struct {
	Steps              int
	UnderProvisioned   int
	OverProvisioned    int
	TotalNodes         int
	TotalMinimumNodes  int
	UnderProvisionRate float64
	OverProvisionRate  float64
	// MeanUtilization is the average of workload/(allocated*theta), i.e.
	// how close the cluster ran to its target threshold.
	MeanUtilization float64
}

// Provisioning evaluates integer node allocations against the realized
// workload under the scaling threshold theta (Definition 3): a step is
// under-provisioned when workload/allocated exceeds theta, and
// over-provisioned when more nodes were allocated than the minimum that
// satisfies the threshold.
func Provisioning(actual []float64, allocated []int, theta float64) (*ProvisioningReport, error) {
	if len(actual) != len(allocated) {
		return nil, fmt.Errorf("metrics: %d actuals vs %d allocations", len(actual), len(allocated))
	}
	if len(actual) == 0 {
		return nil, fmt.Errorf("metrics: empty provisioning input")
	}
	if theta <= 0 {
		return nil, fmt.Errorf("metrics: non-positive threshold %v", theta)
	}
	r := &ProvisioningReport{Steps: len(actual)}
	utilSum := 0.0
	for i, w := range actual {
		c := allocated[i]
		if c < 1 {
			c = 1
		}
		min := MinNodes(w, theta)
		r.TotalNodes += c
		r.TotalMinimumNodes += min
		if w/float64(c) > theta {
			r.UnderProvisioned++
		} else if c > min {
			r.OverProvisioned++
		}
		utilSum += w / (float64(c) * theta)
	}
	r.UnderProvisionRate = float64(r.UnderProvisioned) / float64(r.Steps)
	r.OverProvisionRate = float64(r.OverProvisioned) / float64(r.Steps)
	r.MeanUtilization = utilSum / float64(r.Steps)
	return r, nil
}

// MinNodes returns the minimum integer node count c >= 1 with
// w/c <= theta.
func MinNodes(w, theta float64) int {
	if w <= 0 {
		return 1
	}
	c := int(math.Ceil(w / theta))
	// Guard against w/theta landing exactly on an integer boundary from
	// above due to floating point.
	if float64(c)*theta < w {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}
