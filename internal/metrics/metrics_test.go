package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestQuantileLoss(t *testing.T) {
	// Underestimate by 2 at tau=0.9: loss = 0.9*2.
	ql, err := QuantileLoss(0.9, []float64{10}, []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ql, 1.8, 1e-12) {
		t.Errorf("QL = %v", ql)
	}
	// Sums over steps.
	ql, err = QuantileLoss(0.5, []float64{10, 10}, []float64{8, 12})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ql, 0.5*2+0.5*2, 1e-12) {
		t.Errorf("QL = %v", ql)
	}
	if _, err := QuantileLoss(0.5, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestWQL(t *testing.T) {
	w, err := WQL(0.9, []float64{10, 10}, []float64{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	// QL = 0.9*2*2 = 3.6; wQL = 2*3.6/20 = 0.36.
	if !almost(w, 0.36, 1e-12) {
		t.Errorf("wQL = %v", w)
	}
	if _, err := WQL(0.9, []float64{0, 0}, []float64{0, 0}); err == nil {
		t.Error("zero target sum should fail")
	}
}

func TestMeanWQL(t *testing.T) {
	actual := []float64{10, 10}
	pred := map[float64][]float64{
		0.5: {10, 10},
		0.9: {8, 8},
	}
	m, err := MeanWQL([]float64{0.5, 0.9}, actual, func(tau float64) []float64 { return pred[tau] })
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m, (0+0.36)/2, 1e-12) {
		t.Errorf("meanWQL = %v", m)
	}
	if _, err := MeanWQL(nil, actual, nil); err == nil {
		t.Error("no levels should fail")
	}
}

func TestCoverage(t *testing.T) {
	c, err := Coverage([]float64{1, 2, 3, 4}, []float64{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c != 0.5 {
		t.Errorf("coverage = %v", c)
	}
	if _, err := Coverage(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Coverage([]float64{1}, []float64{}); err == nil {
		t.Error("mismatch should fail")
	}
}

func TestMSEAndMAE(t *testing.T) {
	mse, err := MSE([]float64{1, 2}, []float64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if mse != 2 {
		t.Errorf("MSE = %v", mse)
	}
	mae, err := MAE([]float64{1, 2}, []float64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if mae != 1 {
		t.Errorf("MAE = %v", mae)
	}
	if _, err := MSE(nil, nil); err == nil {
		t.Error("empty MSE should fail")
	}
	if _, err := MAE([]float64{1}, nil); err == nil {
		t.Error("mismatched MAE should fail")
	}
}

func TestUncertaintyWiderIsLarger(t *testing.T) {
	levels := []float64{0.1, 0.5, 0.9}
	narrow, err := Uncertainty(levels, []float64{9, 10, 11}, 10)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Uncertainty(levels, []float64{5, 10, 15}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if wide <= narrow {
		t.Errorf("wide U %v should exceed narrow U %v", wide, narrow)
	}
	if narrow < 0 {
		t.Errorf("U should be non-negative, got %v", narrow)
	}
	if _, err := Uncertainty(levels, []float64{1}, 1); err == nil {
		t.Error("mismatched levels should fail")
	}
}

func TestUncertaintyNonNegativeProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		u, err := Uncertainty([]float64{0.2, 0.5, 0.8}, []float64{a, b, c}, b)
		return err == nil && u >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUncertaintyZeroForDegenerateFan(t *testing.T) {
	u, err := Uncertainty([]float64{0.1, 0.5, 0.9}, []float64{10, 10, 10}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if u != 0 {
		t.Errorf("degenerate fan U = %v", u)
	}
}

func TestProvisioning(t *testing.T) {
	// theta = 10. Step 0: w=25, c=2 -> 12.5 > 10: under. Step 1: w=25,
	// c=3: exact minimum. Step 2: w=25, c=5: over.
	r, err := Provisioning([]float64{25, 25, 25}, []int{2, 3, 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.UnderProvisioned != 1 || r.OverProvisioned != 1 {
		t.Errorf("under=%d over=%d", r.UnderProvisioned, r.OverProvisioned)
	}
	if !almost(r.UnderProvisionRate, 1.0/3, 1e-12) || !almost(r.OverProvisionRate, 1.0/3, 1e-12) {
		t.Errorf("rates = %v / %v", r.UnderProvisionRate, r.OverProvisionRate)
	}
	if r.TotalNodes != 10 || r.TotalMinimumNodes != 9 {
		t.Errorf("totals = %d / %d", r.TotalNodes, r.TotalMinimumNodes)
	}
	if r.Steps != 3 {
		t.Errorf("steps = %d", r.Steps)
	}
}

func TestProvisioningValidation(t *testing.T) {
	if _, err := Provisioning([]float64{1}, []int{1, 2}, 10); err == nil {
		t.Error("mismatch should fail")
	}
	if _, err := Provisioning(nil, nil, 10); err == nil {
		t.Error("empty should fail")
	}
	if _, err := Provisioning([]float64{1}, []int{1}, 0); err == nil {
		t.Error("zero theta should fail")
	}
}

func TestProvisioningClampsZeroAllocation(t *testing.T) {
	r, err := Provisioning([]float64{5}, []int{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Zero allocation treated as one node; 5/1 <= 10, not under.
	if r.UnderProvisioned != 0 {
		t.Errorf("under = %d", r.UnderProvisioned)
	}
}

func TestMinNodes(t *testing.T) {
	cases := []struct {
		w, theta float64
		want     int
	}{
		{0, 10, 1},
		{-5, 10, 1},
		{5, 10, 1},
		{10, 10, 1},
		{10.01, 10, 2},
		{25, 10, 3},
		{30, 10, 3},
	}
	for _, c := range cases {
		if got := MinNodes(c.w, c.theta); got != c.want {
			t.Errorf("MinNodes(%v, %v) = %d, want %d", c.w, c.theta, got, c.want)
		}
	}
}

func TestMinNodesSatisfiesConstraintProperty(t *testing.T) {
	f := func(wRaw, thetaRaw float64) bool {
		if math.IsNaN(wRaw) || math.IsInf(wRaw, 0) || math.IsNaN(thetaRaw) || math.IsInf(thetaRaw, 0) {
			return true
		}
		w := math.Abs(math.Mod(wRaw, 1e6))
		theta := 1 + math.Abs(math.Mod(thetaRaw, 100))
		c := MinNodes(w, theta)
		if c < 1 {
			return false
		}
		// Constraint satisfied.
		if w/float64(c) > theta {
			return false
		}
		// Minimality: one fewer node violates it (when c > 1).
		if c > 1 && w/float64(c-1) <= theta {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
