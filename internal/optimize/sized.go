// Vertical sizing: the serverless scaling model adds a second decision
// dimension — node size, not just count — and the joint (count × size)
// choice goes through the same robust-quantile objective as the scalar
// problem: the quantile plan fixes the demand in base-node units, and the
// sizing pass picks the cheapest mix of identical nodes covering it.
//
// Larger sizes are deliberately sublinear in cost (a 4x node costs less
// than 4 small ones), so the joint decision is non-trivial: consolidating
// onto bigger nodes saves money at high demand while small nodes keep the
// idle floor cheap.
package optimize

import (
	"fmt"
	"math"
)

// NodeSize is one rung of the vertical scaling ladder.
type NodeSize struct {
	// Name labels the size in reports ("small", "large", ...).
	Name string
	// Capacity is the workload the node absorbs relative to a base node:
	// a node of capacity c serves c*theta workload units per step.
	Capacity float64
	// Cost is the per-step cost of one node of this size, in the same
	// node-step units the scalar model charges one base node per step.
	Cost float64
}

// SizedAlloc is one joint allocation decision: Count nodes of the size at
// index Size in the ladder the decision was made against.
type SizedAlloc struct {
	Count int
	Size  int
}

// ValidateSizes rejects ladders the sizing pass cannot optimize over.
func ValidateSizes(sizes []NodeSize) error {
	if len(sizes) == 0 {
		return fmt.Errorf("optimize: empty node-size ladder")
	}
	for i, s := range sizes {
		if s.Capacity <= 0 || s.Cost <= 0 {
			return fmt.Errorf("optimize: size %d (%s) needs positive capacity and cost, got %v/%v",
				i, s.Name, s.Capacity, s.Cost)
		}
	}
	return nil
}

// SizeDemand converts an integer demand in base-node units into the
// cheapest (count, size) covering it: minimize count*Cost subject to
// count*Capacity >= units. Ties break toward fewer nodes (less churn),
// then the smaller size index. A non-positive demand returns the empty
// allocation {0, 0} — the scale-to-zero outcome.
func SizeDemand(units int, sizes []NodeSize) (SizedAlloc, error) {
	if err := ValidateSizes(sizes); err != nil {
		return SizedAlloc{}, err
	}
	if units <= 0 {
		return SizedAlloc{}, nil
	}
	best := SizedAlloc{Count: -1}
	bestCost := 0.0
	for idx, s := range sizes {
		count := int(math.Ceil(float64(units) / s.Capacity))
		if float64(count)*s.Capacity < float64(units) {
			count++
		}
		if count < 1 {
			count = 1
		}
		cost := float64(count) * s.Cost
		if best.Count == -1 || cost < bestCost ||
			(cost == bestCost && count < best.Count) {
			best = SizedAlloc{Count: count, Size: idx}
			bestCost = cost
		}
	}
	return best, nil
}

// AllocateSized is the joint per-step solution: the minimum-cost (count,
// size) satisfying w <= count*Capacity*theta. It composes the scalar
// closed form (Definition 3) with the sizing pass, so the quantile-fan
// objective is unchanged — only the cost model gains a dimension.
func AllocateSized(w, theta float64, sizes []NodeSize) (SizedAlloc, error) {
	if theta <= 0 {
		return SizedAlloc{}, fmt.Errorf("optimize: non-positive threshold %v", theta)
	}
	return SizeDemand(Allocate(w, theta), sizes)
}

// SizedCost returns the per-step cost of an allocation against a ladder.
func SizedCost(a SizedAlloc, sizes []NodeSize) float64 {
	if a.Count <= 0 || a.Size < 0 || a.Size >= len(sizes) {
		return 0
	}
	return float64(a.Count) * sizes[a.Size].Cost
}

// SizedCapacity returns the capacity of an allocation in base-node units.
func SizedCapacity(a SizedAlloc, sizes []NodeSize) float64 {
	if a.Count <= 0 || a.Size < 0 || a.Size >= len(sizes) {
		return 0
	}
	return float64(a.Count) * sizes[a.Size].Capacity
}
