package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocate(t *testing.T) {
	cases := []struct {
		w, theta float64
		want     int
	}{
		{0, 10, 1},
		{9, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{95, 10, 10},
		{100.5, 10, 11},
	}
	for _, c := range cases {
		if got := Allocate(c.w, c.theta); got != c.want {
			t.Errorf("Allocate(%v, %v) = %d, want %d", c.w, c.theta, got, c.want)
		}
	}
}

func TestPlan(t *testing.T) {
	plan, err := Plan([]float64{5, 15, 25}, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, w := range want {
		if plan[i] != w {
			t.Errorf("plan = %v", plan)
		}
	}
	if _, err := Plan([]float64{1}, 0); err == nil {
		t.Error("zero theta should fail")
	}
}

func TestPlanThresholds(t *testing.T) {
	plan, err := PlanThresholds([]float64{20, 20}, []float64{10, 5})
	if err != nil {
		t.Fatal(err)
	}
	if plan[0] != 2 || plan[1] != 4 {
		t.Errorf("plan = %v", plan)
	}
	if _, err := PlanThresholds([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := PlanThresholds([]float64{1}, []float64{0}); err == nil {
		t.Error("zero threshold should fail")
	}
}

func TestPlanConstrainedMeetsDemandWhenPossible(t *testing.T) {
	// Demand ramps 1 -> 5 with MaxDelta 2: reachable each step.
	workload := []float64{10, 30, 50}
	plan, err := PlanConstrained(workload, 10, ThrashingConfig{Initial: 1, MaxDelta: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range workload {
		need := Allocate(w, 10)
		if plan[i] < need {
			t.Errorf("step %d: plan %d < demand %d", i, plan[i], need)
		}
	}
	// Rate limit respected.
	prev := 1
	for i, c := range plan {
		if abs(c-prev) > 2 {
			t.Errorf("step %d: delta %d exceeds limit", i, abs(c-prev))
		}
		prev = c
	}
}

func TestPlanConstrainedPreScalesForSpike(t *testing.T) {
	// A sudden spike to 10 nodes with MaxDelta 3 forces earlier ramping.
	workload := []float64{10, 10, 10, 100}
	plan, err := PlanConstrained(workload, 10, ThrashingConfig{Initial: 1, MaxDelta: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plan[3] != 10 {
		t.Errorf("spike step plan = %d, want 10", plan[3])
	}
	if plan[2] < 7 {
		t.Errorf("pre-spike plan = %d, want >= 7 to reach 10 with delta 3", plan[2])
	}
}

func TestPlanConstrainedUnreachableDemandShortfalls(t *testing.T) {
	// Demand jumps immediately beyond reach; plan should get as close as
	// the constraint allows rather than failing.
	workload := []float64{100}
	plan, err := PlanConstrained(workload, 10, ThrashingConfig{Initial: 1, MaxDelta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plan[0] != 3 {
		t.Errorf("plan = %v, want [3] (1 + maxDelta)", plan)
	}
}

func TestPlanConstrainedMatchesUnconstrainedWhenLoose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	workload := make([]float64, 30)
	for i := range workload {
		workload[i] = 20 + 30*rng.Float64()
	}
	free, err := Plan(workload, 10)
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := PlanConstrained(workload, 10, ThrashingConfig{Initial: free[0], MaxDelta: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := range free {
		if free[i] != constrained[i] {
			t.Errorf("step %d: free %d vs constrained %d", i, free[i], constrained[i])
		}
	}
}

func TestPlanConstrainedValidation(t *testing.T) {
	if _, err := PlanConstrained([]float64{1}, 0, ThrashingConfig{MaxDelta: 1}); err == nil {
		t.Error("zero theta should fail")
	}
	if _, err := PlanConstrained([]float64{1}, 10, ThrashingConfig{MaxDelta: 0}); err == nil {
		t.Error("zero MaxDelta should fail")
	}
	plan, err := PlanConstrained(nil, 10, ThrashingConfig{MaxDelta: 1})
	if err != nil || plan != nil {
		t.Errorf("empty workload: %v %v", plan, err)
	}
}

func TestSolveSimplexKnownLP(t *testing.T) {
	// min x+y s.t. x >= 2, y >= 3, x+y >= 6 -> optimum 6 at e.g. (3,3).
	lp := LP{
		C: []float64{1, 1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 1}},
		B: []float64{2, 3, 6},
	}
	x, obj, err := SolveSimplex(lp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-6) > 1e-6 {
		t.Errorf("objective = %v, want 6", obj)
	}
	if x[0] < 2-1e-9 || x[1] < 3-1e-9 {
		t.Errorf("x = %v violates bounds", x)
	}
}

func TestSolveSimplexUnbounded(t *testing.T) {
	// min -x s.t. x >= 0: unbounded below.
	lp := LP{C: []float64{-1}, A: [][]float64{{1}}, B: []float64{0}}
	if _, _, err := SolveSimplex(lp); err == nil {
		t.Error("unbounded LP should fail")
	}
}

func TestSolveSimplexInfeasible(t *testing.T) {
	// x >= 5 and -x >= -2 (x <= 2): infeasible.
	lp := LP{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{5, -2},
	}
	if _, _, err := SolveSimplex(lp); err == nil {
		t.Error("infeasible LP should fail")
	}
}

func TestSolveSimplexValidation(t *testing.T) {
	if _, _, err := SolveSimplex(LP{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}); err == nil {
		t.Error("rhs mismatch should fail")
	}
	if _, _, err := SolveSimplex(LP{C: []float64{1, 2}, A: [][]float64{{1}}, B: []float64{1}}); err == nil {
		t.Error("row width mismatch should fail")
	}
}

func TestPlanLPMatchesClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 1 + rng.Intn(20)
		workload := make([]float64, h)
		for i := range workload {
			workload[i] = rng.Float64() * 200
		}
		closed, err := Plan(workload, 10)
		if err != nil {
			return false
		}
		viaLP, err := PlanLP(workload, 10)
		if err != nil {
			return false
		}
		for i := range closed {
			if closed[i] != viaLP[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPlanLPValidation(t *testing.T) {
	if _, err := PlanLP([]float64{1}, 0); err == nil {
		t.Error("zero theta should fail")
	}
	plan, err := PlanLP(nil, 10)
	if err != nil || plan != nil {
		t.Errorf("empty: %v %v", plan, err)
	}
}

func TestAllocateFeasibilityProperty(t *testing.T) {
	f := func(wRaw uint32, thetaRaw uint16) bool {
		w := float64(wRaw) / 100
		theta := 1 + float64(thetaRaw)/100
		c := Allocate(w, theta)
		return c >= 1 && w/float64(c) <= theta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
