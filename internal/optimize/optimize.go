// Package optimize solves the auto-scaling optimization problems of
// Definitions 3-5: minimize total compute nodes subject to per-step
// workload thresholds. The unconstrained problem decomposes per step into
// a closed form; a simplex LP solver handles the general (relaxed) problem
// and a dynamic program solves the thrashing-constrained integer variant
// from Section V-A exactly.
package optimize

import (
	"fmt"
	"math"
)

// Allocate returns the minimum integer node count c >= 1 satisfying
// w/c <= theta — the per-step solution of Definition 3.
func Allocate(w, theta float64) int {
	if w <= 0 {
		return 1
	}
	c := int(math.Ceil(w / theta))
	if float64(c)*theta < w {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Plan solves the multi-step problem for a workload path under a uniform
// threshold: the optimum decomposes per step.
func Plan(workload []float64, theta float64) ([]int, error) {
	return PlanInto(workload, theta, nil)
}

// PlanInto is Plan writing into dst, reallocating only when dst lacks
// capacity — the allocation-free steady state of a high-frequency control
// loop replanning every step.
func PlanInto(workload []float64, theta float64, dst []int) ([]int, error) {
	if theta <= 0 {
		return nil, fmt.Errorf("optimize: non-positive threshold %v", theta)
	}
	if cap(dst) < len(workload) {
		dst = make([]int, len(workload))
	}
	dst = dst[:len(workload)]
	for i, w := range workload {
		dst[i] = Allocate(w, theta)
	}
	return dst, nil
}

// PlanThresholds solves the multi-step problem with a per-step threshold
// vector theta_t (Equation 6 in full generality).
func PlanThresholds(workload, thetas []float64) ([]int, error) {
	if len(workload) != len(thetas) {
		return nil, fmt.Errorf("optimize: %d workloads vs %d thresholds", len(workload), len(thetas))
	}
	out := make([]int, len(workload))
	for i, w := range workload {
		if thetas[i] <= 0 {
			return nil, fmt.Errorf("optimize: non-positive threshold %v at step %d", thetas[i], i)
		}
		out[i] = Allocate(w, thetas[i])
	}
	return out, nil
}

// ThrashingConfig bounds how fast the node count may change, the
// anti-flapping constraint discussed in Section V-A.
type ThrashingConfig struct {
	// Initial is the node count in effect before the first planned step.
	Initial int
	// MaxDelta is the maximum absolute change in node count per step.
	MaxDelta int
	// MaxNodes caps the cluster size (0 means derive from the demand).
	MaxNodes int
}

// PlanConstrained solves Definition 3 with the additional constraints
// |c_t - c_{t-1}| <= MaxDelta exactly via dynamic programming over node
// counts. When the rate limit makes a step's demand unsatisfiable, the
// plan allocates as many nodes as the constraint allows (the least-bad
// feasible choice) and the step shows up as under-provisioned in the
// evaluation.
func PlanConstrained(workload []float64, theta float64, cfg ThrashingConfig) ([]int, error) {
	if theta <= 0 {
		return nil, fmt.Errorf("optimize: non-positive threshold %v", theta)
	}
	if cfg.MaxDelta <= 0 {
		return nil, fmt.Errorf("optimize: non-positive MaxDelta %d", cfg.MaxDelta)
	}
	demand := make([]int, len(workload))
	for i, w := range workload {
		demand[i] = Allocate(w, theta)
	}
	return PlanConstrainedDemand(demand, cfg)
}

// PlanConstrainedDemand is PlanConstrained over an already-computed integer
// demand path; used to rate-limit any strategy's raw allocation plan.
func PlanConstrainedDemand(demand []int, cfg ThrashingConfig) ([]int, error) {
	if cfg.MaxDelta <= 0 {
		return nil, fmt.Errorf("optimize: non-positive MaxDelta %d", cfg.MaxDelta)
	}
	h := len(demand)
	if h == 0 {
		return nil, nil
	}
	maxDemand := cfg.Initial
	for _, d := range demand {
		if d > maxDemand {
			maxDemand = d
		}
	}
	maxNodes := cfg.MaxNodes
	if maxNodes <= 0 {
		maxNodes = maxDemand + cfg.MaxDelta
	}
	if maxNodes < 1 {
		maxNodes = 1
	}
	if cfg.Initial < 1 {
		cfg.Initial = 1
	}
	if cfg.Initial > maxNodes {
		cfg.Initial = maxNodes
	}

	const inf = math.MaxInt64 / 4
	cur := make([]dpState, maxNodes+1)
	for c := range cur {
		cur[c] = dpState{cost: inf, shortfall: inf, prev: -1}
	}
	// Step 0: reachable from Initial.
	for c := max(1, cfg.Initial-cfg.MaxDelta); c <= min(maxNodes, cfg.Initial+cfg.MaxDelta); c++ {
		short := int64(0)
		if c < demand[0] {
			short = int64(demand[0] - c)
		}
		cur[c] = dpState{cost: int64(c), shortfall: short, prev: cfg.Initial}
	}

	prevStates := make([][]dpState, h)
	prevStates[0] = cur
	for t := 1; t < h; t++ {
		next := make([]dpState, maxNodes+1)
		for c := range next {
			next[c] = dpState{cost: inf, shortfall: inf, prev: -1}
		}
		for c := 1; c <= maxNodes; c++ {
			short := int64(0)
			if c < demand[t] {
				short = int64(demand[t] - c)
			}
			for p := max(1, c-cfg.MaxDelta); p <= min(maxNodes, c+cfg.MaxDelta); p++ {
				ps := cur[p]
				if ps.prev == -1 {
					continue
				}
				cand := dpState{
					cost:      ps.cost + int64(c),
					shortfall: ps.shortfall + short,
					prev:      p,
				}
				if better(cand, next[c]) {
					next[c] = cand
				}
			}
		}
		cur = next
		prevStates[t] = cur
	}

	// Pick the best final state and backtrack.
	best := -1
	for c := 1; c <= maxNodes; c++ {
		if cur[c].prev == -1 {
			continue
		}
		if best == -1 || better(cur[c], cur[best]) {
			best = c
		}
	}
	if best == -1 {
		return nil, fmt.Errorf("optimize: no feasible constrained plan")
	}
	out := make([]int, h)
	c := best
	for t := h - 1; t >= 0; t-- {
		out[t] = c
		c = prevStates[t][c].prev
	}
	return out, nil
}

// dpState is one cell of the constrained-planning dynamic program:
// cumulative node cost and demand shortfall to reach a node count, with a
// back-pointer for plan reconstruction. Shortfall dominates the ordering,
// so demand is met whenever the rate limit permits.
type dpState struct {
	cost      int64
	shortfall int64
	prev      int
}

// better orders states by (shortfall, cost): meeting demand dominates
// saving nodes.
func better(a, b dpState) bool {
	if a.shortfall != b.shortfall {
		return a.shortfall < b.shortfall
	}
	return a.cost < b.cost
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
