package optimize

import "testing"

func ladder() []NodeSize {
	return []NodeSize{
		{Name: "small", Capacity: 1, Cost: 2},
		{Name: "medium", Capacity: 2, Cost: 3},
		{Name: "large", Capacity: 4, Cost: 5},
	}
}

func TestSizeDemandPicksCheapestMix(t *testing.T) {
	sizes := ladder()
	cases := []struct {
		units     int
		count, sz int
	}{
		{0, 0, 0},  // scale-to-zero
		{-3, 0, 0}, // negative demand is empty, never negative nodes
		{1, 1, 0},  // one small (cost 2) beats one medium (3) and large (5)
		{2, 1, 1},  // one medium (3) beats two small (4)
		{3, 1, 2},  // one large (5) beats small*3 (6) and medium*2 (6)
		{4, 1, 2},  // one large at full utilization
		{5, 3, 1},  // three medium (9) beat five small (10) and two large (10)
		{8, 2, 2},  // two large (10) beat four medium (12)
	}
	for _, c := range cases {
		got, err := SizeDemand(c.units, sizes)
		if err != nil {
			t.Fatalf("SizeDemand(%d): %v", c.units, err)
		}
		if got.Count != c.count || got.Size != c.sz {
			t.Errorf("SizeDemand(%d) = {%d, %d}, want {%d, %d}",
				c.units, got.Count, got.Size, c.count, c.sz)
		}
		if SizedCapacity(got, sizes) < float64(c.units) {
			t.Errorf("SizeDemand(%d) capacity %v under demand", c.units, SizedCapacity(got, sizes))
		}
	}
}

func TestSizeDemandTieBreaksFewerNodes(t *testing.T) {
	// Equal-cost options: 2 small (cost 4) vs 1 double (cost 4): fewer
	// nodes must win, and at equal count the smaller index wins.
	sizes := []NodeSize{{Capacity: 1, Cost: 2}, {Capacity: 2, Cost: 4}}
	got, err := SizeDemand(2, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != 1 || got.Size != 1 {
		t.Fatalf("SizeDemand(2) = %+v, want one double node", got)
	}
}

func TestAllocateSizedMatchesScalarFloor(t *testing.T) {
	sizes := ladder()
	for _, w := range []float64{0, 1, 59, 60, 61, 240, 1000} {
		theta := 60.0
		a, err := AllocateSized(w, theta, sizes)
		if err != nil {
			t.Fatal(err)
		}
		units := Allocate(w, theta)
		if SizedCapacity(a, sizes) < float64(units) {
			t.Errorf("AllocateSized(%v) capacity %v under scalar demand %d",
				w, SizedCapacity(a, sizes), units)
		}
		// The joint decision can never cost more than all-small.
		if c := SizedCost(a, sizes); c > float64(units)*sizes[0].Cost {
			t.Errorf("AllocateSized(%v) cost %v worse than all-small %v",
				w, c, float64(units)*sizes[0].Cost)
		}
	}
}

func TestAllocateSizedRejectsBadInputs(t *testing.T) {
	if _, err := AllocateSized(10, 0, ladder()); err == nil {
		t.Error("non-positive theta accepted")
	}
	if _, err := SizeDemand(3, nil); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := SizeDemand(3, []NodeSize{{Capacity: 0, Cost: 1}}); err == nil {
		t.Error("zero-capacity size accepted")
	}
}
