package optimize

import (
	"fmt"
	"math"
)

// LP is a linear program in the form
//
//	minimize    c^T x
//	subject to  A x >= b,  x >= 0.
//
// It is the general form of the relaxed robust auto-scaling problem
// (Equation 6 before integrality): one variable per step, one threshold
// constraint per step, plus optional rate-limit rows.
type LP struct {
	C []float64   // objective coefficients
	A [][]float64 // constraint matrix, one row per constraint
	B []float64   // right-hand sides
}

// SolveSimplex solves the LP with the Big-M simplex method, returning the
// optimal x and objective value. It reports an error for infeasible or
// unbounded problems.
func SolveSimplex(lp LP) ([]float64, float64, error) {
	n := len(lp.C)
	m := len(lp.A)
	if m != len(lp.B) {
		return nil, 0, fmt.Errorf("optimize: %d constraint rows vs %d rhs values", m, len(lp.B))
	}
	for i, row := range lp.A {
		if len(row) != n {
			return nil, 0, fmt.Errorf("optimize: constraint %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	if n == 0 {
		return nil, 0, nil
	}

	// Convert Ax >= b to equalities with surplus variables, flipping rows
	// with negative b so every RHS is non-negative, then add artificial
	// variables with Big-M cost.
	// Columns: n original + m surplus + m artificial.
	cols := n + 2*m
	bigM := 1e7 * (1 + maxAbs(lp.C))
	tab := make([][]float64, m+1) // last row is the objective
	for i := 0; i <= m; i++ {
		tab[i] = make([]float64, cols+1)
	}
	basis := make([]int, m)

	for i := 0; i < m; i++ {
		sign := 1.0
		surplus := -1.0 // Ax - s = b for >= rows
		if lp.B[i] < 0 {
			sign = -1.0
			surplus = 1.0 // -Ax + s = -b, i.e. <= row gains a slack
		}
		for j := 0; j < n; j++ {
			tab[i][j] = sign * lp.A[i][j]
		}
		tab[i][n+i] = surplus
		tab[i][n+m+i] = 1
		tab[i][cols] = sign * lp.B[i]
		basis[i] = n + m + i
	}
	// Objective row: c for originals, bigM for artificials, then reduce by
	// the basic artificial rows to price them out.
	obj := tab[m]
	for j := 0; j < n; j++ {
		obj[j] = lp.C[j]
	}
	for i := 0; i < m; i++ {
		obj[n+m+i] = bigM
	}
	for i := 0; i < m; i++ {
		for j := 0; j <= cols; j++ {
			obj[j] -= bigM * tab[i][j]
		}
	}

	const maxIter = 10000
	for iter := 0; iter < maxIter; iter++ {
		// Entering variable: most negative reduced cost.
		pivotCol := -1
		minVal := -1e-9
		for j := 0; j < cols; j++ {
			if obj[j] < minVal {
				minVal = obj[j]
				pivotCol = j
			}
		}
		if pivotCol == -1 {
			break // optimal
		}
		// Leaving variable: minimum ratio test.
		pivotRow := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][pivotCol] > 1e-9 {
				ratio := tab[i][cols] / tab[i][pivotCol]
				if ratio < bestRatio-1e-12 {
					bestRatio = ratio
					pivotRow = i
				}
			}
		}
		if pivotRow == -1 {
			return nil, 0, fmt.Errorf("optimize: LP unbounded")
		}
		pivot(tab, pivotRow, pivotCol)
		basis[pivotRow] = pivotCol
	}

	// Infeasible if an artificial variable remains basic at nonzero level.
	for i, b := range basis {
		if b >= n+m && tab[i][cols] > 1e-6 {
			return nil, 0, fmt.Errorf("optimize: LP infeasible")
		}
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][cols]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += lp.C[j] * x[j]
	}
	return x, objVal, nil
}

func pivot(tab [][]float64, row, col int) {
	p := tab[row][col]
	for j := range tab[row] {
		tab[row][j] /= p
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := range tab[i] {
			tab[i][j] -= f * tab[row][j]
		}
	}
}

func maxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// PlanLP solves the relaxed auto-scaling problem (Equation 6) as an LP —
// min sum c_t subject to c_t >= w_t/theta — and rounds up to integers.
// It exists to validate the closed-form Plan and to support the solver
// ablation bench; both produce identical allocations.
func PlanLP(workload []float64, theta float64) ([]int, error) {
	if theta <= 0 {
		return nil, fmt.Errorf("optimize: non-positive threshold %v", theta)
	}
	h := len(workload)
	if h == 0 {
		return nil, nil
	}
	lp := LP{
		C: make([]float64, h),
		A: make([][]float64, h),
		B: make([]float64, h),
	}
	for t := 0; t < h; t++ {
		lp.C[t] = 1
		row := make([]float64, h)
		row[t] = 1
		lp.A[t] = row
		lp.B[t] = workload[t] / theta
	}
	x, _, err := SolveSimplex(lp)
	if err != nil {
		return nil, err
	}
	out := make([]int, h)
	for t := 0; t < h; t++ {
		c := int(math.Ceil(x[t] - 1e-9))
		if c < 1 {
			c = 1
		}
		out[t] = c
	}
	return out, nil
}
