package fleet

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"robustscale/internal/chaos"
	"robustscale/internal/cluster"
	"robustscale/internal/forecast"
	"robustscale/internal/obs"
	"robustscale/internal/parallel"
	"robustscale/internal/persist"
	"robustscale/internal/scaler"
	"robustscale/internal/timeseries"
	"robustscale/internal/trace"
)

// Guard defaults shared by every tenant; they mirror the single-tenant
// daemon's flag defaults.
const (
	guardBlowupFactor  = 8
	guardCoverageSlack = 0.25
)

// fnv64 constants for the rolling allocation hash.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// loopExtra is the fleet controller's owner-defined checkpoint section
// (persist.State.Extra): loop accounting that no existing component
// covers, carried across restarts so a warm-started tenant's rolling
// hash and cost totals continue instead of restarting from zero.
type loopExtra struct {
	// AllocHash is the rolling FNV-1a hash over every allocation the
	// tenant ever committed.
	AllocHash uint64
	// Cost is the cumulative node-steps the tenant has paid for.
	Cost int64
	// Pool and quarantine lifetime counters (added with the shared
	// capacity pool; gob tolerates their absence in older blobs, so no
	// format version bump is needed — old snapshots decode with zeros).
	ShedNodes      int64
	ClippedRounds  int
	Flap           int
	QuarantineLeft int
	Quarantines    int
	// Serverless wake state (added with scale-to-zero; absent in older
	// blobs, decoding to nil/zero): the wake-guard hysteresis machine,
	// the per-tenant plant mid-wake state, the wake-latency sketch and
	// the parked-step total. Restoring them is what lets a kill mid-wake
	// resume bit-identically.
	Wake        []byte
	Plant       []byte
	WakeLat     []byte
	ParkedSteps int64
}

// Tenant is one isolated control loop inside the fleet: trace,
// forecaster, calibration, guard, breaker and checkpoint namespace are
// all private, so a planning round touches nothing shared beyond the
// process-wide (atomic) metric counters.
type Tenant struct {
	// ID is the tenant id; Index its position in the fleet.
	ID    string
	Index int
	// Archetype names the workload archetype ("alibaba" or "google").
	Archetype string
	// Seed is the derived per-tenant seed.
	Seed int64
	// Class is the tenant's admission priority class.
	Class PriorityClass

	series   *timeseries.Series
	trainEnd int

	planner scaler.Strategy
	guard   *scaler.Guard
	snapper forecast.Snapshotter
	fans    scaler.FanProvider
	applier *scaler.Applier
	cal     *cluster.Calibration
	calGate func() (bool, string)
	mgr     *persist.Manager
	fp      persist.Fingerprint
	rho     float64

	forecasterKind string

	// Loop state; the plan/admit/apply phases are the only writers after
	// construction (parallel phases touch only per-tenant fields, the
	// sequential admission barrier runs in index order).
	origin     int
	cursor     int
	alloc      int
	prevAlloc  int
	steps      int
	violations int
	holds      int
	cost       int64
	allocHash  uint64
	warm       bool
	corrupt    int
	err        error

	// Admission / quarantine state. pending is the plan awaiting
	// admission between the plan and apply phases (aliases planBuf);
	// roundPlanner is the strategy that produced it (the quarantine
	// fallback or the tenant's own planner).
	pending        []int
	roundPlanner   scaler.Strategy
	reactive       *scaler.ReactiveMax
	shedRound      int
	shedReason     string
	shedTotal      int64
	clippedRounds  int
	flap           int
	quarantineLeft int
	quarantines    int
	planDur        float64

	// Chaos wiring; nil when the tenant is not enrolled in a fault
	// schedule. faulted reports whether any fault targets this tenant.
	sched       *chaos.Schedule
	chaosCursor *chaos.Cursor
	faulted     bool

	// Serverless state; all nil/zero unless cfg.Serverless. The plant is
	// the tenant's ground-truth capacity machine; wakeGuard shapes plans
	// with park/wake hysteresis; wakeLat streams completed-wake latency
	// into a mergeable sketch; wakeReason annotates the round's decision
	// record for -explain.
	wakeGuard   *scaler.WakeGuard
	sless       *cluster.Serverless
	wakeLat     *obs.Sketch
	parkedSteps int64
	wakeReason  string

	histView *timeseries.Series
	planBuf  []int
	// dur streams planning latency into a mergeable sketch instead of an
	// unbounded slice: O(buckets) memory per tenant at any fleet size.
	dur *obs.Sketch
	// sloBlob is the fleet SLO tracker state recovered from this
	// tenant's checkpoint (only tenant 0 carries it).
	sloBlob []byte

	violCounter  *obs.Counter
	roundCounter *obs.Counter
	wakeStarts   *obs.Counter
	wakeFailures *obs.Counter
	wakeLatHist  *obs.Histogram
}

// now is the tenant's virtual clock, feeding its guard and breaker.
func (t *Tenant) now() time.Time {
	i := t.cursor
	if i >= t.series.Len() {
		i = t.series.Len() - 1
	}
	return t.series.TimeAt(i)
}

// Rounds returns how many planning rounds the tenant has completed over
// its whole lifetime (including rounds replayed before a warm restart).
func (t *Tenant) Rounds() int { return (t.origin - t.trainEnd) / t.fp.Horizon }

// Controller drives the fleet through lock-step planning rounds.
type Controller struct {
	cfg     Config
	tenants []*Tenant

	rounds    int
	lastCkpt  int
	warmCount int
	coldCount int
	corrupt   int

	// slo tracks the fleet-wide error budget over virtual time; nil when
	// cfg.SLOTarget is 0. lastSteps/lastViol are the fleet totals at the
	// previous round boundary, so each round observes only its delta.
	slo       *obs.SLOTracker
	lastSteps int64
	lastViol  int64

	// worstViol/worstCost stream each round's per-tenant violation and
	// cost deltas into space-saving trackers: O(k) memory identifies the
	// tenants eating the error budget and the spend, however large the
	// fleet. Observed in index order after the round barrier, so the
	// lists are deterministic across worker counts.
	worstViol      *obs.TopK
	worstCost      *obs.TopK
	lastTenantViol []int
	lastTenantCost []int64

	// Shared capacity pool and chaos state. chaosSched is nil with chaos
	// disabled; the admission scratch buffers are reused every round.
	chaosSched       *chaos.FleetSchedule
	demandBuf        []int
	admitBuf         []int
	classBuf         []PriorityClass
	shedRounds       int
	admissionRejects int
	peakUtil         float64
}

// New builds the fleet: every tenant's trace is generated, its
// forecaster trained (or warm-started from its checkpoint namespace
// when cfg.StateDir holds a valid one), and its guard, breaker and
// calibration state restored. Construction is batched across the worker
// pool; each tenant is built entirely from its own derived seed and its
// own namespace, so the build is deterministic and order-independent.
func New(cfg Config) (*Controller, error) {
	if cfg.SLOTarget > 0 && cfg.SLOWindow <= 0 {
		cfg.SLOWindow = DefaultSLOWindow
	}
	if cfg.Serverless {
		if cfg.IdleEps == 0 {
			cfg.IdleEps = cfg.Theta / 10
		}
		if cfg.WakeSeconds == 0 {
			cfg.WakeSeconds = 30
		}
		if cfg.WakeCost == 0 {
			cfg.WakeCost = 2
		}
		if cfg.ParkAfterRounds == 0 {
			cfg.ParkAfterRounds = 3
		}
		if cfg.WakeDebounceRounds == 0 {
			cfg.WakeDebounceRounds = 2
		}
		if cfg.KeepWarmAfterFails == 0 {
			cfg.KeepWarmAfterFails = 3
		}
		if cfg.WakeBreakerCooldown == 0 {
			cfg.WakeBreakerCooldown = 6
		}
		if cfg.WakeSLOSeconds == 0 {
			cfg.WakeSLOSeconds = 1800
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Retain <= 0 {
		cfg.Retain = persist.DefaultRetain
	}
	chaosSched, err := buildChaosSchedule(cfg)
	if err != nil {
		return nil, err
	}
	tenants := make([]*Tenant, cfg.Tenants)
	errs := make([]error, cfg.Tenants)
	parallel.ForEachWorkerSpan("fleet-build", cfg.Workers, cfg.Tenants, func(_, i int) {
		tenants[i], errs[i] = buildTenant(cfg, i, chaosSched)
	})
	if err := parallel.FirstError(errs); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, tenants: tenants, lastCkpt: -1, chaosSched: chaosSched}
	fleetTenantsGauge.Set(float64(cfg.Tenants))
	// Lifecycle bookkeeping runs sequentially in tenant order so journal
	// entries and start counters land deterministically.
	for _, t := range tenants {
		c.corrupt += t.corrupt
		kind, n := "cold", &c.coldCount
		if t.warm {
			kind, n = "warm", &c.warmCount
		}
		*n++
		obs.DefaultJournal.RecordTenantAt(t.now(), t.ID, "tenant-start",
			fmt.Sprintf("%s start at replay step %d/%d (%s archetype)",
				kind, t.origin-t.trainEnd, t.series.Len()-t.trainEnd, t.Archetype),
			map[string]float64{"warm": b2f(t.warm), "origin": float64(t.origin), "corrupt_snapshots": float64(t.corrupt)})
	}
	fleetWarmStarts.Add(float64(c.warmCount))
	fleetColdStarts.Add(float64(c.coldCount))
	fleetCorruptSnapshots.Add(float64(c.corrupt))
	c.worstViol = obs.NewTopK(worstListSize)
	c.worstCost = obs.NewTopK(worstListSize)
	c.lastTenantViol = make([]int, len(tenants))
	c.lastTenantCost = make([]int64, len(tenants))
	for i, t := range tenants {
		c.lastTenantViol[i] = t.violations
		c.lastTenantCost[i] = t.cost
	}
	if cfg.SLOTarget > 0 {
		c.slo = obs.NewSLOTracker(obs.SLOConfig{
			Target: cfg.SLOTarget, Window: cfg.SLOWindow, Rules: cfg.BurnRules,
		}).InstrumentDefault()
		c.slo.Journal = obs.DefaultJournal
		// The tracker rides tenant 0's checkpoint; a restored blob resumes
		// the budget mid-window, a mismatched one starts fresh.
		if blob := tenants[0].sloBlob; len(blob) > 0 {
			if err := c.slo.Load(bytes.NewReader(blob)); err != nil {
				obs.DefaultJournal.RecordTenantAt(tenants[0].now(), "", "slo",
					fmt.Sprintf("SLO snapshot rejected, starting budget fresh: %v", err), nil)
			}
		}
		// Steps replayed before a restart were already observed by the
		// saved tracker; baseline the deltas at the restored totals.
		for _, t := range tenants {
			c.lastSteps += int64(t.steps)
			c.lastViol += int64(t.violations)
		}
	}
	return c, nil
}

// SLO exposes the fleet's error-budget tracker (nil when disabled).
func (c *Controller) SLO() *obs.SLOTracker { return c.slo }

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// Tenants exposes the fleet members in index order (read-only use).
func (c *Controller) Tenants() []*Tenant { return c.tenants }

// buildChaosSchedule expands cfg's chaos preset into the fleet fault
// schedule; nil when chaos is disabled.
func buildChaosSchedule(cfg Config) (*chaos.FleetSchedule, error) {
	if cfg.Chaos == "" || cfg.Chaos == "none" {
		return nil, nil
	}
	prof, err := chaos.Preset(cfg.Chaos)
	if err != nil {
		return nil, err
	}
	prof.Seed = cfg.ChaosSeed
	if prof.Seed == 0 {
		prof.Seed = cfg.Seed
	}
	prof.Steps = (cfg.Days - cfg.TrainDays) * stepsPerDay()
	zones := cfg.Zones
	if zones == 0 {
		zones = 4
	}
	return chaos.NewFleetSchedule(prof, zones)
}

// chaosEnrolled reports whether tenant-local fault injection targets the
// given tenant id (fleet-level classes always apply).
func chaosEnrolled(cfg Config, id string) bool {
	if len(cfg.ChaosTenants) == 0 {
		return true
	}
	for _, v := range cfg.ChaosTenants {
		if v == id {
			return true
		}
	}
	return false
}

// buildTenant constructs (or recovers) one tenant.
func buildTenant(cfg Config, index int, fs *chaos.FleetSchedule) (*Tenant, error) {
	id := TenantID(index)
	seed := deriveSeed(cfg.Seed, index)
	tr, err := trace.Generate(tenantTrace(cfg, index, seed))
	if err != nil {
		return nil, fmt.Errorf("fleet: %s: %w", id, err)
	}
	series, err := tr.Series(trace.CPU)
	if err != nil {
		return nil, fmt.Errorf("fleet: %s: %w", id, err)
	}
	trainEnd := cfg.TrainDays * stepsPerDay()

	t := &Tenant{
		ID: id, Index: index, Archetype: archetypeOf(cfg, index), Seed: seed,
		Class:  ClassOf(index),
		series: series, trainEnd: trainEnd,
		origin: trainEnd, cursor: trainEnd,
		alloc: 1, prevAlloc: 1,
		allocHash:    fnvOffset,
		dur:          obs.NewSketch(obs.DefaultSketchAlpha),
		histView:     &timeseries.Series{Name: series.Name, Start: series.Start, Step: series.Step},
		violCounter:  fleetTenantViolations.With(id),
		roundCounter: fleetTenantRounds.With(id),
	}
	if cfg.Serverless {
		t.wakeGuard = &scaler.WakeGuard{
			Config: scaler.WakeGuardConfig{
				MinIdleRounds:         cfg.ParkAfterRounds,
				WakeDebounceRounds:    cfg.WakeDebounceRounds,
				KeepWarmAfterFails:    cfg.KeepWarmAfterFails,
				BreakerCooldownRounds: cfg.WakeBreakerCooldown,
			},
			Tenant: id,
			Clock:  t.now,
		}
		t.sless, err = cluster.NewServerless(cluster.ServerlessConfig{
			WakeSeconds: cfg.WakeSeconds,
			StepSeconds: series.Step.Seconds(),
			WakeCost:    cfg.WakeCost,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: %s: %w", id, err)
		}
		t.wakeLat = obs.NewSketch(obs.DefaultSketchAlpha)
		t.wakeStarts = fleetWakeStarts.With(id)
		t.wakeFailures = fleetWakeFailures.With(id)
		t.wakeLatHist = fleetWakeLatency.With(id)
	}
	if fs != nil {
		// The tenant's fault schedule is the exact restriction of the
		// all-tenant run, derived from the master seed. Tenants outside an
		// explicit enrollment list stay completely dark (empty schedule) —
		// the single-victim isolation drill relies on it — while the
		// pool-level classes (collapse, admission rejects) are consulted by
		// the controller and apply regardless.
		if chaosEnrolled(cfg, id) {
			if t.sched, err = fs.TenantSchedule(index, id); err != nil {
				return nil, fmt.Errorf("fleet: %s: %w", id, err)
			}
		} else {
			t.sched = &chaos.Schedule{}
		}
		t.chaosCursor = &chaos.Cursor{}
		t.faulted = !t.sched.Empty()
	}
	t.fp = persist.Fingerprint{
		Strategy: cfg.Strategy, Tenant: id, Dataset: t.Archetype, Seed: seed,
		Theta: cfg.Theta, Horizon: cfg.Horizon, Tau: cfg.Tau, Tau2: cfg.Tau2,
	}

	// Recover this tenant's namespace before training: a valid snapshot
	// supplies the model and loop state, skipping the cold fit entirely.
	var recovered *persist.State
	if cfg.StateDir != "" {
		if t.mgr, err = persist.NewTenantManager(cfg.StateDir, id, cfg.Retain); err != nil {
			return nil, fmt.Errorf("fleet: %s: %w", id, err)
		}
		st, info, rerr := t.mgr.Recover()
		t.corrupt = len(info.Rejected)
		switch {
		case rerr != nil || st == nil:
			// No usable snapshot: plain cold start.
		case st.Fingerprint != t.fp:
			// A neighbour's (or stale-config) snapshot never warm-starts
			// this tenant.
		case st.Origin < trainEnd || st.Origin > series.Len() || (st.Origin-trainEnd)%cfg.Horizon != 0:
			// Misaligned origin: the replay could not resume on a round
			// boundary.
		default:
			recovered = st
		}
	}

	var model []byte
	if recovered != nil {
		model = recovered.Forecaster
		if cfg.Rho <= 0 && recovered.Rho > 0 {
			t.rho = recovered.Rho
		}
	}
	if err := t.buildPlanner(cfg, model); err != nil {
		if model == nil {
			return nil, fmt.Errorf("fleet: %s: %w", id, err)
		}
		// A snapshot whose model no longer loads degrades this one tenant
		// to a cold start; its decisions are re-derived deterministically
		// from the seed, so fleet totals are unaffected.
		recovered = nil
		t.rho = 0
		if err := t.buildPlanner(cfg, nil); err != nil {
			return nil, fmt.Errorf("fleet: %s: %w", id, err)
		}
	}

	if recovered != nil {
		t.restore(cfg, recovered)
	}
	return t, nil
}

// buildPlanner trains (model == nil) or restores the forecaster and
// assembles the tenant's guarded strategy, applier and breaker.
func (t *Tenant) buildPlanner(cfg Config, model []byte) error {
	train := t.series.Slice(0, t.trainEnd)
	var strat scaler.Strategy
	switch cfg.Strategy {
	case StrategyReactiveMax:
		strat = &scaler.ReactiveMax{Window: 6, Theta: cfg.Theta}
	default:
		qf, snapper := buildForecaster(cfg, t.Seed)
		t.forecasterKind = cfg.Forecaster
		if model != nil {
			if err := snapper.Load(bytes.NewReader(model)); err != nil {
				return fmt.Errorf("restoring %s from checkpoint: %w", qf.Name(), err)
			}
		} else if err := fitForecaster(cfg, qf, train); err != nil {
			return err
		}
		t.snapper = snapper
		if cfg.Strategy == StrategyAdaptive {
			rho := cfg.Rho
			if rho <= 0 {
				rho = t.rho
			}
			if rho <= 0 {
				var err error
				// Rho calibrates against the unwrapped forecaster: training-time
				// derivation must not consult the fault schedule.
				if rho, err = calibrateRho(qf, train, cfg.Horizon); err != nil {
					return err
				}
			}
			t.rho = rho
		}
		// Planning-time inference goes through the chaos wrapper when the
		// tenant carries a fault schedule; snapshots keep talking to the
		// unwrapped model.
		planQF := qf
		if t.sched != nil {
			planQF = &chaos.Forecaster{Inner: qf, Schedule: t.sched, Cursor: t.chaosCursor}
		}
		if cfg.Strategy == StrategyAdaptive {
			strat = &scaler.Adaptive{Forecaster: planQF, Tau1: cfg.Tau, Tau2: cfg.Tau2, Rho: t.rho, Theta: cfg.Theta}
		} else {
			strat = &scaler.Robust{Forecaster: planQF, Tau: cfg.Tau, Theta: cfg.Theta}
		}
	}
	t.planner = strat
	if cfg.Guard {
		t.guard = &scaler.Guard{
			Inner:  strat,
			Config: scaler.GuardConfig{Theta: cfg.Theta, Tau: cfg.Tau, BlowupFactor: guardBlowupFactor},
			Clock:  t.now,
			Health: func() (bool, string) {
				if t.calGate == nil {
					return true, ""
				}
				return t.calGate()
			},
		}
		t.planner = t.guard
	}
	t.fans, _ = t.planner.(scaler.FanProvider)
	apply := func(n int) error { t.alloc = n; return nil }
	if t.sched != nil {
		apply = chaos.WrapApply(apply, func() int { return t.alloc }, t.sched, t.chaosCursor)
	}
	t.applier = &scaler.Applier{
		Apply:   apply,
		Backoff: scaler.BackoffConfig{MaxAttempts: 1},
		Breaker: &scaler.Breaker{},
		Clock:   t.now,
	}
	return nil
}

// fitForecaster trains one tenant's model; the quantile MLP trains for
// the fleet horizon instead of its 72-step default.
func fitForecaster(cfg Config, qf forecast.QuantileForecaster, train *timeseries.Series) error {
	if m, ok := qf.(*forecast.QuantileMLP); ok && cfg.Forecaster == ForecasterQuantileMLP {
		return m.FitHorizon(train, cfg.Horizon)
	}
	type fitter interface {
		Fit(*timeseries.Series) error
	}
	return qf.(fitter).Fit(train)
}

// calibrateRho derives the adaptive uncertainty threshold as the median
// uncertainty of a forecast made at the end of training — the same rule
// the single-tenant daemon uses, evaluated per tenant.
func calibrateRho(qf forecast.QuantileForecaster, train *timeseries.Series, horizon int) (float64, error) {
	fan, err := qf.PredictQuantiles(train, horizon, forecast.ScalingLevels)
	if err != nil {
		return 0, err
	}
	us, err := scaler.Uncertainties(fan)
	if err != nil {
		return 0, err
	}
	s := timeseries.New("u", train.Start, train.Step, us)
	return s.Quantile(0.5), nil
}

// restore applies a recovered snapshot's loop and component state. Any
// single blob failing to load degrades that component to fresh state;
// the loop counters and Extra section are plain values and always apply.
func (t *Tenant) restore(cfg Config, st *persist.State) {
	t.warm = true
	t.origin, t.cursor = st.Origin, st.Origin
	if st.PrevAlloc > 0 {
		t.alloc, t.prevAlloc = st.PrevAlloc, st.PrevAlloc
	}
	t.steps, t.violations, t.holds = st.Steps, st.Violations, st.Holds
	t.sloBlob = st.SLO
	if len(st.Extra) > 0 {
		var extra loopExtra
		if err := gob.NewDecoder(bytes.NewReader(st.Extra)).Decode(&extra); err == nil {
			t.allocHash, t.cost = extra.AllocHash, extra.Cost
			t.shedTotal, t.clippedRounds = extra.ShedNodes, extra.ClippedRounds
			t.flap, t.quarantineLeft, t.quarantines = extra.Flap, extra.QuarantineLeft, extra.Quarantines
			t.parkedSteps = extra.ParkedSteps
			if t.wakeGuard != nil && len(extra.Wake) > 0 {
				_ = t.wakeGuard.Load(bytes.NewReader(extra.Wake))
			}
			if t.sless != nil && len(extra.Plant) > 0 {
				_ = t.sless.Load(bytes.NewReader(extra.Plant))
			}
			if t.wakeLat != nil && len(extra.WakeLat) > 0 {
				_ = t.wakeLat.Load(bytes.NewReader(extra.WakeLat))
			}
		}
	}
	if t.guard != nil && len(st.Guard) > 0 {
		_ = t.guard.Load(bytes.NewReader(st.Guard))
	}
	if len(st.Breaker) > 0 {
		_ = t.applier.Breaker.Load(bytes.NewReader(st.Breaker))
	}
	if len(st.Calibration) > 0 {
		if cal, err := cluster.LoadCalibration(bytes.NewReader(st.Calibration)); err == nil {
			t.armCalibration(cal)
		}
	}
}

// armCalibration installs a calibration window and wires it into the
// guard's health gate.
func (t *Tenant) armCalibration(cal *cluster.Calibration) {
	t.cal = cal
	t.calGate = cal.HealthCheck(guardCoverageSlack, 0, stepsPerDay()/4)
}

// active reports whether the tenant has a full planning round left.
func (t *Tenant) active(horizon int) bool {
	return t.err == nil && t.origin+horizon <= t.series.Len()
}

// holdPlan fills the tenant's plan buffer with its previous allocation —
// the fail-safe outcome of an exhausted fallback ladder or a refused
// admission round.
func (t *Tenant) holdPlan(h int) []int {
	if cap(t.planBuf) < h {
		t.planBuf = make([]int, h)
	}
	plan := t.planBuf[:h]
	for i := range plan {
		plan[i] = t.prevAlloc
	}
	return plan
}

// planPhase runs the planning half of one tenant's round: compute the
// plan (through the warm fast path, the quarantine fallback, and any
// chaos injection wired into the forecaster) and park it in t.pending
// for the admission barrier. It writes only tenant-owned state and
// process-wide atomic counters, preserving the worker-count determinism
// contract.
func (t *Tenant) planPhase(cfg Config) {
	start := time.Now()
	origin, h := t.origin, cfg.Horizon
	if t.chaosCursor != nil {
		t.chaosCursor.Set(origin - t.trainEnd)
	}
	t.histView.Values = t.series.Values[:origin]
	hist := t.histView
	if t.sched != nil {
		// Telemetry faults corrupt a copy of the visible history; the
		// underlying trace stays pristine for grading.
		hist = chaos.CorruptTelemetry(t.histView, t.sched, origin-t.trainEnd)
	}
	planner, reason := t.planner, ""
	if t.quarantineLeft > 0 {
		// Quarantined: the backpressure breaker pinned this tenant to
		// reactive planning so it stops thrashing the pool.
		if t.reactive == nil {
			t.reactive = &scaler.ReactiveMax{Window: 6, Theta: cfg.Theta}
		}
		planner, reason = t.reactive, "quarantine"
	}
	plan, err := scaler.PlanRound(planner, hist, h, t.planBuf)
	if plan != nil {
		t.planBuf = plan
	}
	if err != nil {
		if t.guard == nil && planner == t.planner {
			t.err = fmt.Errorf("fleet: %s planning at %d: %w", t.ID, origin, err)
			return
		}
		// Even an exhausted fallback ladder holds the allocation rather
		// than taking the tenant down.
		t.holds++
		plan = t.holdPlan(h)
	}
	t.pending = plan
	t.roundPlanner = planner
	t.shedRound = 0
	t.shedReason = reason
	if t.wakeGuard != nil {
		// Park/wake hysteresis shapes the plan before admission: an idle
		// tenant's plan goes to zero (after the hysteresis clears), a
		// parked tenant's returning demand wakes it, and an open wake
		// breaker floors everything at the keep-warm count. Only
		// tenant-owned state is touched, so the parallel phase stays
		// worker-count deterministic.
		t.wakeReason = wakeAnnotation(t.wakeGuard.Shape(plan, t.idleNow(cfg)))
	}
	t.planDur = time.Since(start).Seconds()
}

// idleNow is the serverless idleness verdict for the round: the plan has
// no step above the one-node floor and the realized workload over the
// trailing horizon never rose above the idle threshold. Judging genuine
// history (not the chaos-corrupted view) keeps telemetry faults from
// spuriously parking a loaded tenant.
func (t *Tenant) idleNow(cfg Config) bool {
	for _, v := range t.pending {
		if v > 1 {
			return false
		}
	}
	lo := t.origin - cfg.Horizon
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < t.origin; i++ {
		if t.series.At(i) > cfg.IdleEps {
			return false
		}
	}
	return true
}

// wakeAnnotation maps a wake transition to the decision-record reason
// narrated by -explain; an ordinary active round stays unannotated.
func wakeAnnotation(tr scaler.WakeTransition) string {
	switch tr {
	case scaler.WakePark:
		return "parked"
	case scaler.WakeKeepWarm:
		return "keep-warm"
	case scaler.WakeWake:
		return "wake"
	case scaler.WakeHold:
		return "wake-hold"
	}
	return ""
}

// applyPhase runs the post-admission half of one tenant's round: record
// the tenant-labelled decision (annotated with the admission outcome),
// apply each admitted step through the breaker and any control-plane
// chaos, grade violations and calibration, and advance the rolling
// allocation hash and cost.
func (t *Tenant) applyPhase(cfg Config) {
	start := time.Now()
	origin, h := t.origin, cfg.Horizon
	plan := t.pending
	reason := t.shedReason
	if reason == "" {
		reason = t.wakeReason
	}
	scaler.RecordDecisionAdmitted(t.roundPlanner, t.ID, origin, t.series.TimeAt(origin),
		t.prevAlloc, plan, t.shedRound, reason)
	var fan *forecast.QuantileForecast
	if t.fans != nil && t.roundPlanner == t.planner {
		// Quarantined rounds plan reactively; the predictive fan is stale
		// then, so calibration only observes rounds its forecaster drove.
		fan = t.fans.LastFan()
	}
	if fan != nil && t.cal == nil {
		if cal, err := cluster.NewCalibration(fan.Levels, stepsPerDay()); err == nil {
			t.armCalibration(cal)
		}
	}
	for i, alloc := range plan {
		step := origin - t.trainEnd + i
		if t.chaosCursor != nil {
			t.chaosCursor.Set(step)
		}
		if err := t.applier.ScaleTo(alloc); err != nil {
			t.holds++
		}
		if t.sched != nil {
			if kills := t.sched.KillsAt(step); kills > 0 {
				chaos.CountInjected(chaos.NodeKill)
				if t.alloc -= kills; t.alloc < 0 {
					t.alloc = 0
				}
			}
		}
		actual := t.alloc
		w := t.series.At(origin + i)
		if t.sless != nil {
			t.serverlessStep(cfg, step, actual, w)
		} else {
			eff := actual
			if eff < 1 {
				eff = 1
			}
			if w/float64(eff) > cfg.Theta {
				t.violations++
				t.violCounter.Inc()
			}
			t.cost += int64(actual)
			t.allocHash = (t.allocHash ^ uint64(uint(actual))) * fnvPrime
		}
		t.steps++
		t.cursor++
		if fan != nil && t.cal != nil && i < fan.Horizon() {
			if cerr := t.cal.Observe(w, fan.Step(i)); cerr != nil {
				t.err = fmt.Errorf("fleet: %s calibration at %d: %w", t.ID, origin+i, cerr)
				return
			}
		}
	}
	t.prevAlloc = t.alloc
	t.origin = origin + h
	t.roundCounter.Inc()
	t.wakeReason = ""
	d := t.planDur + time.Since(start).Seconds()
	t.dur.Observe(d)
	fleetPlanSeconds.Observe(d)
}

// serverlessStep feeds one admitted step through the tenant's plant: the
// scalar allocation becomes the demanded capacity in base-node units,
// the plant resolves it to a joint (count x size) decision under any
// scheduled wake faults, and the outcome — not the requested plan — is
// what gets graded, costed, hashed and fed back into the wake breaker.
// A parked or still-cold step has zero capacity; it only counts as a
// violation when the workload was genuinely above the idle threshold.
func (t *Tenant) serverlessStep(cfg Config, step, demand int, w float64) {
	var f cluster.WakeFault
	if t.sched != nil {
		f.StallSeconds = t.sched.WakeStallAt(step)
		f.Fail = t.sched.WakeFailAt(step)
		f.Partial = t.sched.PartialProvisionAt(step)
	}
	out := t.sless.Step(demand, f)
	if out.Stalled {
		chaos.CountInjected(chaos.WakeStall)
	}
	if out.PartialApplied {
		chaos.CountInjected(chaos.PartialProvision)
	}
	if out.WakeStarted {
		t.wakeStarts.Inc()
	}
	if out.WakeFailed {
		chaos.CountInjected(chaos.WakeFail)
		t.wakeFailures.Inc()
		t.wakeGuard.OnWakeResult(false)
	}
	if out.WakeCompleted {
		t.wakeGuard.OnWakeResult(true)
		t.wakeLat.Observe(out.WakeLatencySeconds)
		t.wakeLatHist.Observe(out.WakeLatencySeconds)
	}
	if out.Parked {
		t.parkedSteps++
	}
	violated := w > cfg.IdleEps
	if out.CapacityUnits > 0 {
		violated = w/out.CapacityUnits > cfg.Theta
	}
	if violated {
		t.violations++
		t.violCounter.Inc()
	}
	t.cost += int64(out.CostUnits)
	t.allocHash = (t.allocHash ^ uint64(uint(out.Nodes*16+out.Size))) * fnvPrime
}

// admit is the shared-capacity admission barrier between the plan and
// apply phases: with a pool configured it clips every pending plan so
// the fleet's aggregate allocation never exceeds the budget at any step,
// shedding best-effort tenants first (proportional fair share inside the
// partially-shed class), trips the per-tenant backpressure breaker into
// quarantine after repeated clipping, and journals each shed round. Runs
// sequentially in tenant index order, so every outcome is deterministic.
// Pool-level chaos (capacity collapse, admission-RPC rejects) anchors to
// the first active tenant's replay position.
func (c *Controller) admit(active []*Tenant) {
	cfg := c.cfg
	if cfg.PoolNodes <= 0 || len(active) == 0 {
		return
	}
	anchor := active[0].origin - active[0].trainEnd
	h := cfg.Horizon
	if c.chaosSched.AdmissionRejectAt(anchor) {
		// The admission RPC is down. Fail safe: hold every tenant at its
		// last admitted allocation instead of racing unadmitted plans past
		// the pool. The round carries the annotation but does not count
		// toward shed or quarantine accounting — the fault is the control
		// plane's, not the tenants'.
		chaos.CountInjected(chaos.AdmissionReject)
		c.admissionRejects++
		fleetAdmissionRejects.Inc()
		for _, t := range active {
			for j := range t.pending {
				t.pending[j] = t.prevAlloc
			}
			t.shedReason = "admission-reject"
		}
		return
	}
	n := len(active)
	if cap(c.classBuf) < n {
		c.classBuf = make([]PriorityClass, n)
	}
	classes := c.classBuf[:n]
	for i, t := range active {
		classes[i] = t.Class
	}
	if cap(c.demandBuf) < n {
		c.demandBuf = make([]int, n)
	}
	demands := c.demandBuf[:n]
	collapsed := false
	for j := 0; j < h; j++ {
		capacity := cfg.PoolNodes
		if f := c.chaosSched.PoolFactorAt(anchor + j); f < 1 {
			collapsed = true
			capacity = int(float64(capacity) * f)
		}
		for i, t := range active {
			demands[i] = t.pending[j]
		}
		c.admitBuf = admitStep(demands, classes, capacity, c.admitBuf)
		admitted := 0
		for i, t := range active {
			admitted += c.admitBuf[i]
			if clip := t.pending[j] - c.admitBuf[i]; clip > 0 {
				t.pending[j] = c.admitBuf[i]
				t.shedRound += clip
			}
		}
		if j == 0 && capacity > 0 {
			util := float64(admitted) / float64(capacity)
			fleetPoolUtilization.Set(util)
			if util > c.peakUtil {
				c.peakUtil = util
			}
		}
	}
	if collapsed {
		chaos.CountInjected(chaos.PoolCollapse)
	}
	clipped, shedNodes := 0, int64(0)
	for _, t := range active {
		if t.shedRound > 0 {
			clipped++
			shedNodes += int64(t.shedRound)
			t.clippedRounds++
			t.shedTotal += int64(t.shedRound)
			if t.shedReason == "" {
				t.shedReason = "pool-exhausted"
			}
			if t.quarantineLeft == 0 {
				t.flap++
				if cfg.QuarantineAfter > 0 && t.flap >= cfg.QuarantineAfter {
					rounds := cfg.QuarantineRounds
					if rounds <= 0 {
						rounds = 8
					}
					t.quarantineLeft = rounds
					t.quarantines++
					fleetQuarantinesTotal.Inc()
					obs.DefaultJournal.RecordTenantAt(t.now(), t.ID, "quarantine",
						fmt.Sprintf("quarantined to reactive planning for %d rounds after %d consecutive clipped rounds", rounds, t.flap),
						map[string]float64{"rounds": float64(rounds), "flap": float64(t.flap)})
				}
			}
		} else if t.quarantineLeft == 0 {
			t.flap = 0
		}
	}
	if clipped > 0 {
		c.shedRounds++
		fleetShedRounds.Inc()
		fleetAdmissionClips.Add(float64(clipped))
		fleetShedNodesTotal.Add(float64(shedNodes))
		obs.DefaultJournal.RecordTenantAt(active[0].now(), "", "admission-shed",
			fmt.Sprintf("pool admission clipped %d tenants by %d nodes this round", clipped, shedNodes),
			map[string]float64{"clipped": float64(clipped), "shed_nodes": float64(shedNodes)})
	}
	quarantined := 0
	for _, t := range active {
		if t.quarantineLeft > 0 && t.shedReason == "quarantine" {
			// This round was planned under quarantine; count it down.
			t.quarantineLeft--
			if t.quarantineLeft == 0 {
				t.flap = 0
				obs.DefaultJournal.RecordTenantAt(t.now(), t.ID, "unquarantine",
					"quarantine expired; re-entering predictive planning", nil)
			}
		}
		if t.quarantineLeft > 0 {
			quarantined++
		}
	}
	fleetQuarantinedGauge.Set(float64(quarantined))
}

// injectWakeStorm applies a scheduled correlated flash crowd: every
// parked tenant is forced awake and its pending plan floored at one
// node, so the whole parked population cold-starts simultaneously —
// stressing wake latency and pool admission in the same round. Runs
// sequentially in index order between the plan phase and the admission
// barrier; a fleet without the serverless model never parks, so the
// storm window has nothing to strike and the round is untouched.
func (c *Controller) injectWakeStorm(active []*Tenant) {
	if !c.cfg.Serverless || c.chaosSched == nil || len(active) == 0 {
		return
	}
	anchor := active[0].origin - active[0].trainEnd
	if !c.chaosSched.WakeStormAt(anchor) {
		return
	}
	chaos.CountInjected(chaos.WakeStorm)
	forced := 0
	for _, t := range active {
		if t.wakeGuard == nil || !t.wakeGuard.ForceWake() {
			continue
		}
		forced++
		t.wakeReason = "wake-storm"
		for j := range t.pending {
			if t.pending[j] < 1 {
				t.pending[j] = 1
			}
		}
	}
	fleetWakeStorms.Inc()
	obs.DefaultJournal.RecordTenantAt(active[0].now(), "", "wake-storm",
		fmt.Sprintf("wake storm forced %d parked tenant(s) awake simultaneously", forced),
		map[string]float64{"forced": float64(forced)})
}

// Run drives the fleet to completion (or cfg.MaxRounds, or context
// cancellation), checkpointing every CheckpointInterval rounds and once
// more at exit. Each round runs a parallel plan phase, the sequential
// admission barrier, and a parallel apply phase; per-tenant decisions
// are bit-identical for any worker count.
func (c *Controller) Run(ctx context.Context) (*Report, error) {
	cfg := c.cfg
	active := make([]*Tenant, 0, len(c.tenants))
	for {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		if cfg.MaxRounds > 0 && c.rounds >= cfg.MaxRounds {
			break
		}
		active = active[:0]
		for _, t := range c.tenants {
			if t.active(cfg.Horizon) {
				active = append(active, t)
			}
		}
		if len(active) == 0 {
			break
		}
		parallel.ForEachWorkerSpan("fleet-plan", cfg.Workers, len(active), func(_, i int) {
			active[i].planPhase(cfg)
		})
		for _, t := range c.tenants {
			if t.err != nil {
				return nil, t.err
			}
		}
		// The admission barrier is sequential and index-ordered: clipping,
		// shedding, quarantine transitions and their journal entries are a
		// pure function of the round's pending plans, so the outcome is
		// identical for any worker count. Wake storms fire first so the
		// flash crowd's forced wakes contend for pool admission the same
		// round they strike.
		c.injectWakeStorm(active)
		c.admit(active)
		parallel.ForEachWorkerSpan("fleet-apply", cfg.Workers, len(active), func(_, i int) {
			active[i].applyPhase(cfg)
		})
		for _, t := range c.tenants {
			if t.err != nil {
				return nil, t.err
			}
		}
		// Health-plane observation happens after the round barrier, over
		// per-tenant deltas read in index order — a pure function of the
		// round's outcome, so heavy-hitter lists and alert firing ticks
		// are worker-count independent.
		var steps, viol int64
		parked := 0
		for i, t := range c.tenants {
			steps += int64(t.steps)
			viol += int64(t.violations)
			if dv := t.violations - c.lastTenantViol[i]; dv > 0 {
				c.worstViol.Observe(t.ID, float64(dv))
			}
			if dc := t.cost - c.lastTenantCost[i]; dc > 0 {
				c.worstCost.Observe(t.ID, float64(dc))
			}
			c.lastTenantViol[i], c.lastTenantCost[i] = t.violations, t.cost
			if t.sless != nil && t.sless.Parked() {
				parked++
			}
		}
		if cfg.Serverless {
			fleetParkedGauge.Set(float64(parked))
		}
		if c.slo != nil {
			c.slo.ObserveAt(c.tenants[0].now(),
				uint64(viol-c.lastViol), uint64(steps-c.lastSteps))
			c.lastSteps, c.lastViol = steps, viol
		}
		c.rounds++
		fleetRoundsTotal.Inc()
		if cfg.StateDir != "" && c.rounds%cfg.CheckpointInterval == 0 {
			c.checkpoint()
		}
	}
	if cfg.StateDir != "" && c.rounds != c.lastCkpt {
		c.checkpoint()
	}
	return c.report(), nil
}

// checkpoint snapshots every tenant into its own namespace, batched
// across the worker pool (each write touches only that tenant's
// directory). A failed write logs through the journal and keeps flying.
// The fleet SLO tracker is encoded once up front and rides tenant 0's
// snapshot.
func (c *Controller) checkpoint() {
	var sloBlob []byte
	if c.slo != nil {
		var b bytes.Buffer
		if err := c.slo.Save(&b); err == nil {
			sloBlob = b.Bytes()
		}
	}
	parallel.ForEachWorkerSpan("fleet-checkpoint", c.cfg.Workers, len(c.tenants), func(_, i int) {
		var blob []byte
		if i == 0 {
			blob = sloBlob
		}
		c.tenants[i].writeCheckpoint(blob)
	})
	c.lastCkpt = c.rounds
}

// writeCheckpoint snapshots one tenant's full control-loop state; slo,
// when non-nil, is the fleet SLO tracker blob (tenant 0 only).
func (t *Tenant) writeCheckpoint(slo []byte) {
	if t.mgr == nil {
		return
	}
	st := &persist.State{
		SavedAt:     t.now(),
		Fingerprint: t.fp,
		Origin:      t.origin,
		PrevAlloc:   t.prevAlloc,
		Steps:       t.steps,
		Violations:  t.violations,
		Holds:       t.holds,
		Rho:         t.rho,
	}
	blob := func(save func(io.Writer) error) []byte {
		var b bytes.Buffer
		if err := save(&b); err != nil {
			return nil
		}
		return b.Bytes()
	}
	if t.snapper != nil {
		st.ForecasterKind = t.forecasterKind
		if st.Forecaster = blob(t.snapper.Save); st.Forecaster == nil {
			return // a snapshot without the model would warm-start wrong
		}
	}
	if t.cal != nil {
		st.Calibration = blob(t.cal.Save)
	}
	if t.guard != nil {
		st.Guard = blob(t.guard.Save)
	}
	st.Breaker = blob(t.applier.Breaker.Save)
	st.SLO = slo
	ex := loopExtra{
		AllocHash: t.allocHash, Cost: t.cost,
		ShedNodes: t.shedTotal, ClippedRounds: t.clippedRounds,
		Flap: t.flap, QuarantineLeft: t.quarantineLeft, Quarantines: t.quarantines,
		ParkedSteps: t.parkedSteps,
	}
	if t.wakeGuard != nil {
		ex.Wake = blob(t.wakeGuard.Save)
	}
	if t.sless != nil {
		ex.Plant = blob(t.sless.Save)
	}
	if t.wakeLat != nil {
		ex.WakeLat = blob(t.wakeLat.Save)
	}
	var extra bytes.Buffer
	if err := gob.NewEncoder(&extra).Encode(ex); err == nil {
		st.Extra = extra.Bytes()
	}
	if _, err := t.mgr.Write(st); err != nil {
		obs.DefaultJournal.RecordTenantAt(t.now(), t.ID, "checkpoint-error",
			fmt.Sprintf("checkpoint at origin %d failed: %v", t.origin, err), nil)
	}
}
