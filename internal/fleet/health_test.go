package fleet

import (
	"context"
	"math"
	"reflect"
	"testing"

	"robustscale/internal/obs"
)

// TestReportSketchPercentilesAgree pins the acceptance criterion: the
// report's sketch-based percentiles must agree with the sort-based
// nearest-rank values recomputed from the per-tenant records within the
// sketch's configured relative accuracy (1%).
func TestReportSketchPercentilesAgree(t *testing.T) {
	cfg := testConfig(24)
	rep := runFleet(t, cfg)
	if len(rep.PerTenant) != 24 {
		t.Fatalf("expected per-tenant records, got %d", len(rep.PerTenant))
	}
	vrates := make([]float64, 0, len(rep.PerTenant))
	costs := make([]float64, 0, len(rep.PerTenant))
	for _, tr := range rep.PerTenant {
		vrates = append(vrates, tr.ViolationRate)
		costs = append(costs, float64(tr.CostNodeSteps))
	}
	check := func(name string, got float64, xs []float64, p float64) {
		t.Helper()
		exact := percentile(xs, p)
		if exact == 0 {
			if got != 0 {
				t.Errorf("%s: sketch %v, exact 0", name, got)
			}
			return
		}
		if rel := math.Abs(got-exact) / math.Abs(exact); rel > obs.DefaultSketchAlpha {
			t.Errorf("%s: sketch %v vs sort-based %v (relative error %v > %v)",
				name, got, exact, rel, obs.DefaultSketchAlpha)
		}
	}
	check("violation_rate_p50", rep.ViolationRateP50, vrates, 50)
	check("violation_rate_p90", rep.ViolationRateP90, vrates, 90)
	check("violation_rate_p99", rep.ViolationRateP99, vrates, 99)
	check("cost_p50", rep.CostP50, costs, 50)
	check("cost_p90", rep.CostP90, costs, 90)
	check("cost_p99", rep.CostP99, costs, 99)

	// Worst-tenant lists honor the space-saving contract: every tracked
	// value upper-bounds the tenant's true weight, and Value-Err
	// lower-bounds it.
	if len(rep.WorstCost) == 0 {
		t.Fatal("worst-cost list empty")
	}
	byID := map[string]TenantReport{}
	for _, tr := range rep.PerTenant {
		byID[tr.ID] = tr
	}
	for _, w := range rep.WorstCost {
		truth := float64(byID[w.ID].CostNodeSteps)
		if w.Value < truth || w.Value-w.Err > truth {
			t.Errorf("worst-cost entry %+v outside bounds for true cost %v", w, truth)
		}
	}
	for _, w := range rep.WorstViolations {
		truth := float64(byID[w.ID].Violations)
		if w.Value < truth || w.Value-w.Err > truth {
			t.Errorf("worst-violations entry %+v outside bounds for true count %v", w, truth)
		}
	}
	if rep.Timing == nil || rep.Timing.Samples == 0 {
		t.Error("timing sketch lost its samples")
	}

	// The lists are deterministic: an identical rerun reproduces them.
	rep2 := runFleet(t, cfg)
	if !reflect.DeepEqual(rep.WorstCost, rep2.WorstCost) ||
		!reflect.DeepEqual(rep.WorstViolations, rep2.WorstViolations) {
		t.Errorf("worst lists differ across reruns:\n%+v\nvs\n%+v", rep.WorstCost, rep2.WorstCost)
	}
}

// TestFleetHashInvariantUnderSLO pins the other acceptance criterion:
// enabling the health plane must not change a single allocation.
func TestFleetHashInvariantUnderSLO(t *testing.T) {
	off := testConfig(8)
	off.SLOTarget = 0
	on := testConfig(8)
	on.SLOTarget = 0.01
	on.SLOWindow = 16
	repOff := runFleet(t, off)
	for _, workers := range []int{1, 4} {
		cfg := on
		cfg.Workers = workers
		rep := runFleet(t, cfg)
		if rep.FleetHash != repOff.FleetHash {
			t.Fatalf("workers=%d: fleet hash %s with SLO enabled, %s disabled",
				workers, rep.FleetHash, repOff.FleetHash)
		}
		if rep.SLO == nil {
			t.Fatal("SLO status missing from report")
		}
		if rep.SLO.Tick != uint64(rep.Rounds) {
			t.Errorf("SLO observed %d ticks over %d rounds", rep.SLO.Tick, rep.Rounds)
		}
	}
	if repOff.SLO != nil {
		t.Error("disabled SLO plane still reported status")
	}
}

// TestFleetSLODeterministicAcrossWorkers pins alert determinism: the
// full SLO status (burn rates, firing ticks, transition counts) must be
// identical whatever the worker count.
func TestFleetSLODeterministicAcrossWorkers(t *testing.T) {
	var base *obs.SLOStatus
	for _, workers := range []int{1, 3} {
		cfg := testConfig(6)
		cfg.Workers = workers
		// A tight target so the replay actually consumes budget.
		cfg.SLOTarget = 0.001
		cfg.SLOWindow = 12
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		st := c.SLO().Status()
		if base == nil {
			base = &st
			continue
		}
		if *baseRules(base) != *baseRules(&st) || base.Tick != st.Tick ||
			base.WindowBad != st.WindowBad || base.Transitions != st.Transitions {
			t.Fatalf("workers=%d: SLO status diverged:\n%+v\nvs\n%+v", workers, *base, st)
		}
	}
}

// TestFleetSLOSurvivesRestart pins the error-budget durability contract:
// a kill-restart resumes the SLO tracker from tenant 0's checkpoint, so
// the completed run's budget accounting matches an uninterrupted run.
func TestFleetSLOSurvivesRestart(t *testing.T) {
	cfg := testConfig(4)
	cfg.SLOTarget = 0.001 // tight enough that the replay spends budget
	cfg.SLOWindow = 12

	run := func(c Config) (*Report, *obs.SLOTracker) {
		ctl, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ctl.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep, ctl.SLO()
	}

	_, refSLO := run(cfg)
	ref := refSLO.Status()

	dir := t.TempDir()
	phase1 := cfg
	phase1.StateDir = dir
	phase1.MaxRounds = 5
	run(phase1)

	phase2 := cfg
	phase2.StateDir = dir
	rep2, slo2 := run(phase2)
	if rep2.WarmStarts != cfg.Tenants {
		t.Fatalf("phase 2 warm-started %d/%d tenants", rep2.WarmStarts, cfg.Tenants)
	}
	got := slo2.Status()
	if got.Tick != ref.Tick || got.Bad != ref.Bad || got.Total != ref.Total ||
		got.WindowBad != ref.WindowBad || got.Transitions != ref.Transitions {
		t.Errorf("restarted SLO state diverged:\n%+v\nvs uninterrupted\n%+v", got, ref)
	}
	f1, ok1 := refSLO.FirstFiring()
	f2, ok2 := slo2.FirstFiring()
	if ok1 != ok2 || f1 != f2 {
		t.Errorf("first firing tick diverged: %d/%v vs %d/%v", f1, ok1, f2, ok2)
	}
}

// baseRules projects the comparable core of a status (rules summarized
// by firing state and first-fire tick).
func baseRules(st *obs.SLOStatus) *struct {
	Bad, Total uint64
	FirstFires [2]uint64
} {
	out := &struct {
		Bad, Total uint64
		FirstFires [2]uint64
	}{Bad: st.Bad, Total: st.Total}
	for i, r := range st.Rules {
		if i < 2 {
			out.FirstFires[i] = r.FirstFireTick
		}
	}
	return out
}
