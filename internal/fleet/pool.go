package fleet

import "sort"

// PriorityClass ranks tenants for admission control: when aggregate
// demand exceeds the shared pool, lower classes shed first and a higher
// class is only clipped after every lower class is fully zeroed.
type PriorityClass int

const (
	// ClassGuaranteed tenants shed last: their demand survives until the
	// pool cannot cover guaranteed demand alone.
	ClassGuaranteed PriorityClass = iota
	// ClassBurstable tenants shed after best-effort is exhausted.
	ClassBurstable
	// ClassBestEffort tenants shed first.
	ClassBestEffort
)

// String names the class for reports and journal entries.
func (c PriorityClass) String() string {
	switch c {
	case ClassGuaranteed:
		return "guaranteed"
	case ClassBurstable:
		return "burstable"
	case ClassBestEffort:
		return "best-effort"
	default:
		return "unknown"
	}
}

// ClassOf assigns priority classes round-robin by tenant index —
// guaranteed, burstable, best-effort, repeating — so every fleet mixes
// all three tiers deterministically.
func ClassOf(index int) PriorityClass {
	if index < 0 {
		index = -index
	}
	return PriorityClass(index % 3)
}

// maxDemand bounds per-tenant demand and pool capacity inside admitStep
// so the largest-remainder arithmetic (demand * target) cannot overflow
// int64 even on adversarial fuzz inputs.
const maxDemand = 1 << 30

// admitStep is the deterministic admission controller for one replay
// step: given each tenant's demanded node count, its priority class and
// the pool capacity, it returns the admitted allocation per tenant,
// written into out (grown as needed).
//
// Invariants, fuzz-asserted by FuzzAdmission:
//
//   - sum(admitted) <= capacity (capacity < 0 treated as 0)
//   - 0 <= admitted[i] <= max(demands[i], 0) for every i
//   - under-capacity demand passes through untouched
//   - priority ordering: if any tenant of class c was clipped, every
//     class lower than c was shed to zero first
//
// Within the first class that is partially shed, the reduction is a
// proportional fair share via the largest-remainder method: floors of
// demand*target/classTotal, with the leftover nodes going to the largest
// fractional remainders (ties to the lower index), so the split is a
// pure function of the inputs.
func admitStep(demands []int, classes []PriorityClass, capacity int, out []int) []int {
	n := len(demands)
	if cap(out) < n {
		out = make([]int, n)
	}
	out = out[:n]
	if capacity < 0 {
		capacity = 0
	}
	if capacity > maxDemand {
		capacity = maxDemand
	}
	total := 0
	for i, d := range demands {
		if d < 0 {
			d = 0
		}
		if d > maxDemand {
			d = maxDemand
		}
		out[i] = d
		total += d
	}
	if total <= capacity {
		return out
	}
	shed := total - capacity
	// Shed lowest-priority classes first; iterating the classes in
	// reverse rank order keeps the ordering invariant by construction.
	for class := ClassBestEffort; class >= ClassGuaranteed && shed > 0; class-- {
		classTotal := 0
		for i := range out {
			if classes[i] == class {
				classTotal += out[i]
			}
		}
		if classTotal == 0 {
			continue
		}
		if shed >= classTotal {
			// The whole class goes dark.
			for i := range out {
				if classes[i] == class {
					out[i] = 0
				}
			}
			shed -= classTotal
			continue
		}
		// Partial shed: largest-remainder proportional split to the
		// reduced class total.
		target := classTotal - shed
		type member struct {
			index int
			rem   int64
		}
		var members []member
		granted := 0
		for i := range out {
			if classes[i] != class || out[i] == 0 {
				continue
			}
			num := int64(out[i]) * int64(target)
			floor := int(num / int64(classTotal))
			out[i] = floor
			granted += floor
			members = append(members, member{index: i, rem: num % int64(classTotal)})
		}
		sort.SliceStable(members, func(a, b int) bool {
			if members[a].rem != members[b].rem {
				return members[a].rem > members[b].rem
			}
			return members[a].index < members[b].index
		})
		for k := 0; granted < target && k < len(members); k++ {
			out[members[k].index]++
			granted++
		}
		shed = 0
	}
	return out
}
