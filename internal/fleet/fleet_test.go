package fleet

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"robustscale/internal/obs"
	"robustscale/internal/persist"
)

// testConfig is a small fleet that still exercises both archetypes and
// multiple rounds: 8 tenants, one replay day (12 rounds of 12 steps).
func testConfig(tenants int) Config {
	cfg := DefaultConfig(tenants)
	cfg.Days = 3
	return cfg
}

func runFleet(t *testing.T, cfg Config) *Report {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSeedDerivation(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := deriveSeed(42, i)
		if s < 0 {
			t.Fatalf("deriveSeed(42, %d) = %d, want non-negative", i, s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between tenants %d and %d", prev, i)
		}
		seen[s] = i
	}
	if deriveSeed(42, 7) != deriveSeed(42, 7) {
		t.Error("derivation not deterministic")
	}
	if deriveSeed(42, 7) == deriveSeed(43, 7) {
		t.Error("master seed ignored")
	}
}

func TestTenantIDsAreValidNamespaces(t *testing.T) {
	for _, i := range []int{0, 7, 999, 9999, 99999} {
		if err := persist.ValidTenantID(TenantID(i)); err != nil {
			t.Errorf("TenantID(%d): %v", i, err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Tenants = 0 },
		func(c *Config) { c.Days = c.TrainDays },
		func(c *Config) { c.Units = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Horizon = 10000 },
		func(c *Config) { c.Theta = 0 },
		func(c *Config) { c.Tau = 1.5 },
		func(c *Config) { c.Strategy = "nope" },
		func(c *Config) { c.Forecaster = "nope" },
		func(c *Config) { c.Forecaster = ForecasterSeasonalNaive; c.TrainDays = 1; c.Days = 3 },
		func(c *Config) { c.StateDir = "x"; c.CheckpointInterval = 0 },
	}
	for i, mutate := range cases {
		cfg := testConfig(2)
		mutate(&cfg)
		if err := cfg.validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	cfg := testConfig(2)
	if err := cfg.validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestWorkerCountDeterminism is the package's core contract: the fleet
// hash — and every per-tenant record behind it — must be bit-identical
// for any worker count.
func TestWorkerCountDeterminism(t *testing.T) {
	var base *Report
	for _, workers := range []int{1, 4, 7} {
		cfg := testConfig(8)
		cfg.Workers = workers
		rep := runFleet(t, cfg)
		if rep.Steps == 0 || rep.Rounds == 0 {
			t.Fatalf("workers=%d: empty run (%d steps, %d rounds)", workers, rep.Steps, rep.Rounds)
		}
		if base == nil {
			base = rep
			continue
		}
		if rep.FleetHash != base.FleetHash {
			t.Errorf("workers=%d: fleet hash %s != %s", workers, rep.FleetHash, base.FleetHash)
		}
		if len(rep.PerTenant) != len(base.PerTenant) {
			t.Fatalf("workers=%d: %d tenant records, want %d", workers, len(rep.PerTenant), len(base.PerTenant))
		}
		for i, tr := range rep.PerTenant {
			want := base.PerTenant[i]
			if tr.AllocHash != want.AllocHash || tr.Violations != want.Violations ||
				tr.CostNodeSteps != want.CostNodeSteps || tr.Steps != want.Steps {
				t.Errorf("workers=%d: tenant %s diverged: %+v vs %+v", workers, tr.ID, tr, want)
			}
		}
	}
}

// TestRunRepeatability pins that two identical runs in one process agree
// exactly (no hidden global state leaking between fleets).
func TestRunRepeatability(t *testing.T) {
	a := runFleet(t, testConfig(6))
	b := runFleet(t, testConfig(6))
	if a.FleetHash != b.FleetHash {
		t.Errorf("same config, different hashes: %s vs %s", a.FleetHash, b.FleetHash)
	}
}

// TestStrategiesAndForecasters smoke-runs every supported combination on
// a tiny fleet, including the nn (quantile-MLP) inference path.
func TestStrategiesAndForecasters(t *testing.T) {
	combos := []struct{ strategy, forecaster string }{
		{StrategyRobust, ForecasterNaive},
		{StrategyAdaptive, ForecasterSeasonalNaive},
		{StrategyReactiveMax, ForecasterSeasonalNaive},
		{StrategyRobust, ForecasterQuantileMLP},
	}
	for _, combo := range combos {
		cfg := testConfig(2)
		cfg.Strategy = combo.strategy
		cfg.Forecaster = combo.forecaster
		rep := runFleet(t, cfg)
		if rep.Steps == 0 {
			t.Errorf("%s/%s: no steps replayed", combo.strategy, combo.forecaster)
		}
	}
}

// TestDecisionRecordsCarryTenant: with capture enabled, each fleet round
// lands a decision record stamped with its tenant's id.
func TestDecisionRecordsCarryTenant(t *testing.T) {
	obs.DefaultDecisions.SetEnabled(true)
	obs.DefaultDecisions.Reset()
	defer func() {
		obs.DefaultDecisions.SetEnabled(false)
		obs.DefaultDecisions.Reset()
	}()
	cfg := testConfig(3)
	cfg.Workers = 1
	rep := runFleet(t, cfg)
	for i := 0; i < cfg.Tenants; i++ {
		id := TenantID(i)
		ds := obs.DefaultDecisions.FilterTenant(id, "", 0, -1)
		if len(ds) == 0 {
			t.Errorf("no decisions recorded for %s", id)
		}
	}
	if rep.DecisionsTotal == 0 {
		t.Error("report says no decisions captured")
	}
}

// TestFleetMetricsTenantLabelled: the Prometheus dump carries the
// per-tenant counter families with tenant labels.
func TestFleetMetricsTenantLabelled(t *testing.T) {
	runFleet(t, testConfig(3))
	var b strings.Builder
	if err := obs.Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	dump := b.String()
	for _, want := range []string{
		`robustscale_fleet_tenant_rounds_total{tenant="t00000"}`,
		`robustscale_fleet_tenant_rounds_total{tenant="t00002"}`,
		"robustscale_fleet_tenants",
		"robustscale_fleet_rounds_total",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

// TestKillRestartBitIdentical is the durability contract at fleet scale:
// stop the whole fleet at a round boundary, restart from the per-tenant
// checkpoints, and the completed run's fleet hash matches an
// uninterrupted run exactly, with every tenant warm-starting.
func TestKillRestartBitIdentical(t *testing.T) {
	cfg := testConfig(6)
	uninterrupted := runFleet(t, cfg)

	dir := t.TempDir()
	phase1 := cfg
	phase1.StateDir = dir
	phase1.MaxRounds = 5
	rep1 := runFleet(t, phase1)
	if rep1.Rounds != 5 {
		t.Fatalf("phase 1 ran %d rounds, want 5", rep1.Rounds)
	}

	phase2 := cfg
	phase2.StateDir = dir
	rep2 := runFleet(t, phase2)
	if rep2.WarmStarts != cfg.Tenants {
		t.Fatalf("phase 2 warm-started %d/%d tenants", rep2.WarmStarts, cfg.Tenants)
	}
	if rep2.FleetHash != uninterrupted.FleetHash {
		t.Errorf("restarted fleet hash %s != uninterrupted %s", rep2.FleetHash, uninterrupted.FleetHash)
	}
	if rep2.Steps != uninterrupted.Steps || rep2.Violations != uninterrupted.Violations ||
		rep2.CostNodeSteps != uninterrupted.CostNodeSteps {
		t.Errorf("restarted totals diverged: %d/%d/%d vs %d/%d/%d",
			rep2.Steps, rep2.Violations, rep2.CostNodeSteps,
			uninterrupted.Steps, uninterrupted.Violations, uninterrupted.CostNodeSteps)
	}
	for i, tr := range rep2.PerTenant {
		if want := uninterrupted.PerTenant[i]; tr.AllocHash != want.AllocHash {
			t.Errorf("tenant %s alloc hash %s != %s", tr.ID, tr.AllocHash, want.AllocHash)
		}
	}
}

// TestCorruptTenantFallsBackCold: corrupting one tenant's snapshots
// costs only that tenant its warm start — every other tenant resumes
// warm, the victim re-derives its decisions from its seed, and the final
// fleet hash still matches an uninterrupted run.
func TestCorruptTenantFallsBackCold(t *testing.T) {
	cfg := testConfig(5)
	uninterrupted := runFleet(t, cfg)

	dir := t.TempDir()
	phase1 := cfg
	phase1.StateDir = dir
	phase1.MaxRounds = 4
	runFleet(t, phase1)

	victim := TenantID(2)
	victimDir, err := persist.TenantDir(dir, victim)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(victimDir, "*"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshots in %s (err %v)", victimDir, err)
	}
	for _, path := range snaps {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	phase2 := cfg
	phase2.StateDir = dir
	rep2 := runFleet(t, phase2)
	if rep2.WarmStarts != cfg.Tenants-1 || rep2.ColdStarts != 1 {
		t.Fatalf("warm/cold = %d/%d, want %d/1", rep2.WarmStarts, rep2.ColdStarts, cfg.Tenants-1)
	}
	if rep2.CorruptSnaps == 0 {
		t.Error("corrupt snapshots not reported")
	}
	for _, tr := range rep2.PerTenant {
		if tr.ID == victim && tr.WarmStart {
			t.Errorf("victim %s warm-started from corrupt snapshots", victim)
		}
		if tr.ID != victim && !tr.WarmStart {
			t.Errorf("bystander %s lost its warm start", tr.ID)
		}
	}
	if rep2.FleetHash != uninterrupted.FleetHash {
		t.Errorf("fleet hash after corrupt-tenant recovery %s != uninterrupted %s",
			rep2.FleetHash, uninterrupted.FleetHash)
	}
}

// TestMaxRoundsStopsAtBoundary pins the deterministic-stop contract the
// kill-restart CI drill relies on.
func TestMaxRoundsStopsAtBoundary(t *testing.T) {
	cfg := testConfig(2)
	cfg.MaxRounds = 3
	rep := runFleet(t, cfg)
	if rep.Rounds != 3 {
		t.Errorf("ran %d rounds, want 3", rep.Rounds)
	}
	wantSteps := int64(cfg.Tenants * 3 * cfg.Horizon)
	if rep.Steps != wantSteps {
		t.Errorf("replayed %d steps, want %d", rep.Steps, wantSteps)
	}
}
