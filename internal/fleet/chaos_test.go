package fleet

import (
	"testing"
)

func TestChaosNoneIsBitIdentical(t *testing.T) {
	base := runFleet(t, testConfig(4))
	cfg := testConfig(4)
	cfg.Chaos = "none"
	rep := runFleet(t, cfg)
	if rep.FleetHash != base.FleetHash {
		t.Errorf("chaos=none changed the fleet hash: %s vs %s", rep.FleetHash, base.FleetHash)
	}
	if rep.Chaos != nil {
		t.Error("chaos=none should not emit a chaos report section")
	}
}

func TestChaosRunsAreDeterministic(t *testing.T) {
	cfg := testConfig(6)
	cfg.Chaos = "fleet"
	cfg.PoolNodes = 24
	a := runFleet(t, cfg)
	if a.Chaos == nil {
		t.Fatal("chaos run missing chaos report")
	}
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		b := runFleet(t, cfg)
		if b.FleetHash != a.FleetHash {
			t.Errorf("workers=%d: chaos fleet hash %s, want %s", workers, b.FleetHash, a.FleetHash)
		}
		if b.Pool.ShedNodes != a.Pool.ShedNodes || b.Pool.Quarantines != a.Pool.Quarantines {
			t.Errorf("workers=%d: shed/quarantine %d/%d, want %d/%d",
				workers, b.Pool.ShedNodes, b.Pool.Quarantines, a.Pool.ShedNodes, a.Pool.Quarantines)
		}
	}
}

func TestChaosDegradesButSurvives(t *testing.T) {
	base := runFleet(t, testConfig(6))
	cfg := testConfig(6)
	cfg.Chaos = "fleet"
	rep := runFleet(t, cfg)
	if rep.FleetHash == base.FleetHash {
		t.Error("fleet chaos preset left the run untouched — schedule not wired?")
	}
	if rep.Steps != base.Steps {
		t.Errorf("chaos run lost steps: %d vs %d", rep.Steps, base.Steps)
	}
	if rep.Chaos.FaultedTenants == 0 {
		t.Error("no tenants marked faulted under the fleet preset")
	}
}

func TestChaosTenantsRestrictsEnrollment(t *testing.T) {
	victim := TenantID(2)
	cfg := testConfig(6)
	cfg.Chaos = "all" // tenant-local classes only: isolation is exact
	cfg.ChaosTenants = []string{victim}
	rep := runFleet(t, cfg)
	base := runFleet(t, testConfig(6))
	faulted := 0
	for i, tr := range rep.PerTenant {
		if tr.Faulted {
			faulted++
			if tr.ID != victim {
				t.Errorf("tenant %s faulted, only %s was enrolled", tr.ID, victim)
			}
			continue
		}
		// Bystanders of a tenant-local-only preset must be bit-identical.
		if tr.AllocHash != base.PerTenant[i].AllocHash {
			t.Errorf("bystander %s drifted: alloc hash %s vs %s",
				tr.ID, tr.AllocHash, base.PerTenant[i].AllocHash)
		}
	}
	if faulted == 0 {
		t.Error("enrolled victim carries no faults")
	}
}

func TestMeasureBlastRadius(t *testing.T) {
	base := runFleet(t, testConfig(6))
	cfg := testConfig(6)
	cfg.Chaos = "all"
	cfg.ChaosTenants = []string{TenantID(2)}
	rep := runFleet(t, cfg)
	br, err := MeasureBlastRadius(base, rep, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if br.Faulted != 1 || br.Bystanders != 5 {
		t.Errorf("faulted/bystanders = %d/%d, want 1/5", br.Faulted, br.Bystanders)
	}
	if br.Affected != 0 || br.Radius != 0 {
		t.Errorf("single-victim local chaos leaked: affected=%d radius=%v ids=%v",
			br.Affected, br.Radius, br.AffectedIDs)
	}
	// Error paths.
	if _, err := MeasureBlastRadius(nil, rep, -1, -1); err == nil {
		t.Error("nil baseline accepted")
	}
	small := runFleet(t, testConfig(4))
	if _, err := MeasureBlastRadius(small, rep, -1, -1); err == nil {
		t.Error("tenant-count mismatch accepted")
	}
}

func TestZoneOutageBlastRadiusBounded(t *testing.T) {
	base := runFleet(t, testConfig(8))
	cfg := testConfig(8)
	cfg.Chaos = "zone-outage"
	cfg.Zones = 8 // one tenant per zone: most tenants are bystanders
	rep := runFleet(t, cfg)
	br, err := MeasureBlastRadius(base, rep, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if br.Bystanders == 0 {
		t.Fatal("zone-outage drill struck every zone; no bystanders to measure")
	}
	// A zone outage strikes one zone's tenants; everything outside the
	// zone must stay within the drift tolerance (ISSUE bound: <= 1%).
	if br.Radius > 0.01 {
		t.Errorf("zone-outage blast radius %.3f exceeds 1%% (affected %v)", br.Radius, br.AffectedIDs)
	}
}

func TestResilienceMatrix(t *testing.T) {
	cfg := testConfig(4)
	cfg.PoolNodes = 64
	baseline, cells, err := ResilienceMatrix(cfg, []string{"none...invalid"}, -1, -1)
	if err == nil {
		t.Error("invalid preset accepted by matrix")
	}
	baseline, cells, err = ResilienceMatrix(cfg, []string{"zone-outage", "pool-collapse"}, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.FleetHash != goldenHash4 {
		t.Errorf("matrix baseline hash %s, want golden %s", baseline.FleetHash, goldenHash4)
	}
	if len(cells) != 2 {
		t.Fatalf("matrix rows %d, want 2", len(cells))
	}
	for _, cell := range cells {
		if cell.FleetHash == "" || cell.BlastRadius.Bystanders+cell.BlastRadius.Faulted != cfg.Tenants {
			t.Errorf("malformed matrix cell %+v", cell)
		}
	}
}
