package fleet

import (
	"context"
	"fmt"
)

// runOnce builds and runs a fleet to completion.
func runOnce(cfg Config) (*Report, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return c.Run(context.Background())
}

// BlastRadius quantifies cross-tenant fault isolation: compare a chaos
// run against its fault-free baseline and count how many *bystander*
// tenants (those the fault schedule does not target) drifted outside
// the tolerance. A well-isolated fleet keeps the radius near zero —
// faults stay with the tenants they strike.
type BlastRadius struct {
	// Faulted counts tenants the chaos schedule targets.
	Faulted int `json:"faulted"`
	// Bystanders counts tenants with no scheduled faults.
	Bystanders int `json:"bystanders"`
	// Affected counts bystanders whose violations or cost drifted beyond
	// tolerance versus the baseline run.
	Affected int `json:"affected"`
	// Radius is Affected/Bystanders (0 when there are no bystanders).
	Radius float64 `json:"radius"`
	// AffectedIDs lists the drifted bystanders (capped for readability).
	AffectedIDs []string `json:"affected_ids,omitempty"`
}

// Tolerances for bystander drift; a bystander is "affected" when its
// violation delta exceeds ViolTol or its cost moves by more than CostTol
// as a fraction of the baseline cost.
const (
	defaultViolTol = 0
	defaultCostTol = 0.01
	maxAffectedIDs = 16
)

// MeasureBlastRadius compares a chaos run against its fault-free
// baseline. Both reports must carry PerTenant records from the same
// fleet shape (same tenants in the same order); faulted-tenant identity
// comes from the chaos report's Faulted flags. violTol is the absolute
// violation-count drift allowed per bystander; costTol the fractional
// cost drift (negative values select the defaults).
func MeasureBlastRadius(baseline, faulted *Report, violTol int, costTol float64) (BlastRadius, error) {
	var br BlastRadius
	if baseline == nil || faulted == nil {
		return br, fmt.Errorf("fleet: blast radius needs both reports")
	}
	if len(baseline.PerTenant) == 0 || len(faulted.PerTenant) == 0 {
		return br, fmt.Errorf("fleet: blast radius needs per-tenant records (set Config.PerTenant)")
	}
	if len(baseline.PerTenant) != len(faulted.PerTenant) {
		return br, fmt.Errorf("fleet: tenant count mismatch %d vs %d",
			len(baseline.PerTenant), len(faulted.PerTenant))
	}
	if violTol < 0 {
		violTol = defaultViolTol
	}
	if costTol < 0 {
		costTol = defaultCostTol
	}
	for i := range faulted.PerTenant {
		ft := faulted.PerTenant[i]
		bt := baseline.PerTenant[i]
		if ft.ID != bt.ID {
			return br, fmt.Errorf("fleet: tenant order mismatch at %d: %s vs %s", i, ft.ID, bt.ID)
		}
		if ft.Faulted {
			br.Faulted++
			continue
		}
		br.Bystanders++
		violDelta := ft.Violations - bt.Violations
		if violDelta < 0 {
			violDelta = -violDelta
		}
		costDelta := float64(ft.CostNodeSteps - bt.CostNodeSteps)
		if costDelta < 0 {
			costDelta = -costDelta
		}
		costBase := float64(bt.CostNodeSteps)
		if costBase < 1 {
			costBase = 1
		}
		if violDelta > violTol || costDelta/costBase > costTol {
			br.Affected++
			if len(br.AffectedIDs) < maxAffectedIDs {
				br.AffectedIDs = append(br.AffectedIDs, ft.ID)
			}
		}
	}
	if br.Bystanders > 0 {
		br.Radius = float64(br.Affected) / float64(br.Bystanders)
	}
	return br, nil
}

// MatrixCell is one row of the fleet resilience matrix: a chaos preset
// and the fleet-level outcome it produced, with blast radius measured
// against the fault-free baseline.
type MatrixCell struct {
	Preset        string      `json:"preset"`
	Violations    int64       `json:"violations"`
	ViolationRate float64     `json:"violation_rate"`
	CostNodeSteps int64       `json:"cost_node_steps"`
	Holds         int64       `json:"holds"`
	ShedNodes     int64       `json:"shed_nodes,omitempty"`
	Quarantines   int         `json:"quarantines,omitempty"`
	FleetHash     string      `json:"fleet_hash"`
	BlastRadius   BlastRadius `json:"blast_radius"`
	// Wake-fault accounting (serverless fleets only): failed wakes, the
	// observed p99 wake latency and whether the wake-latency SLO held.
	WakeFailures   int64   `json:"wake_failures,omitempty"`
	WakeP99Seconds float64 `json:"wake_p99_seconds,omitempty"`
	WakeSLOMet     bool    `json:"wake_slo_met,omitempty"`
}

// ResilienceMatrix runs the fleet once fault-free and once per chaos
// preset, reporting blast radius and degradation per row. Every run is
// built from the same base configuration, so rows differ only in the
// fault schedule. The baseline report is returned alongside the rows.
func ResilienceMatrix(cfg Config, presets []string, violTol int, costTol float64) (*Report, []MatrixCell, error) {
	base := cfg
	base.Chaos = ""
	base.PerTenant = true
	baseline, err := runOnce(base)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: baseline run: %w", err)
	}
	cells := make([]MatrixCell, 0, len(presets))
	for _, preset := range presets {
		pc := cfg
		pc.Chaos = preset
		pc.PerTenant = true
		rep, err := runOnce(pc)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: chaos run %q: %w", preset, err)
		}
		br, err := MeasureBlastRadius(baseline, rep, violTol, costTol)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: chaos run %q: %w", preset, err)
		}
		cell := MatrixCell{
			Preset:        preset,
			Violations:    rep.Violations,
			ViolationRate: rep.ViolationRate,
			CostNodeSteps: rep.CostNodeSteps,
			Holds:         rep.Holds,
			FleetHash:     rep.FleetHash,
			BlastRadius:   br,
		}
		if rep.Pool != nil {
			cell.ShedNodes = rep.Pool.ShedNodes
			cell.Quarantines = rep.Pool.Quarantines
		}
		if rep.Serverless != nil {
			cell.WakeFailures = rep.Serverless.WakeFailures
			cell.WakeP99Seconds = rep.Serverless.WakeP99Seconds
			cell.WakeSLOMet = rep.Serverless.WakeSLOMet
		}
		cells = append(cells, cell)
	}
	return baseline, cells, nil
}
