package fleet

import "testing"

// FuzzAdmission hammers the admission-control arithmetic with arbitrary
// demand vectors and capacities. Three invariants must never break:
// admitted totals never exceed the pool, no tenant is admitted below
// zero or above its demand, and a higher-priority class is only clipped
// after every lower-priority class has been shed to zero.
func FuzzAdmission(f *testing.F) {
	f.Add(10, []byte{5, 5, 5, 5})
	f.Add(0, []byte{1, 2, 3})
	f.Add(-3, []byte{200, 0, 7})
	f.Add(1<<30, []byte{255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, capacity int, raw []byte) {
		if len(raw) == 0 || len(raw) > 64 {
			return
		}
		demands := make([]int, len(raw))
		for i, b := range raw {
			// Mix in sign and scale so the fuzzer reaches negatives and
			// values near the overflow clamp.
			d := int(b) * (1 << (uint(i) % 24))
			if i%5 == 3 {
				d = -d
			}
			demands[i] = d
		}
		classes := classesFor(len(demands))
		got := admitStep(demands, classes, capacity, nil)

		cap64 := int64(capacity)
		if cap64 < 0 {
			cap64 = 0
		}
		if cap64 > maxDemand {
			cap64 = maxDemand
		}
		var total int64
		for i, a := range got {
			d := int64(demands[i])
			if d < 0 {
				d = 0
			}
			if d > maxDemand {
				d = maxDemand
			}
			if int64(a) < 0 {
				t.Fatalf("admitted[%d] = %d below zero (demands=%v capacity=%d)", i, a, demands, capacity)
			}
			if int64(a) > d {
				t.Fatalf("admitted[%d] = %d above demand %d (capacity=%d)", i, a, d, capacity)
			}
			total += int64(a)
		}
		if total > cap64 {
			t.Fatalf("admitted total %d exceeds capacity %d (demands=%v)", total, cap64, demands)
		}

		// Priority order: if any member of a class was clipped, every
		// lower-priority class must be fully zeroed.
		clipped := [3]bool{}
		nonzero := [3]bool{}
		for i, a := range got {
			d := int64(demands[i])
			if d < 0 {
				d = 0
			}
			if d > maxDemand {
				d = maxDemand
			}
			c := classes[i]
			if int64(a) < d {
				clipped[c] = true
			}
			if a > 0 {
				nonzero[c] = true
			}
		}
		for c := ClassGuaranteed; c <= ClassBestEffort; c++ {
			if !clipped[c] {
				continue
			}
			for lower := c + 1; lower <= ClassBestEffort; lower++ {
				if nonzero[lower] {
					t.Fatalf("class %v clipped while class %v still holds nodes: demands=%v capacity=%d admitted=%v",
						c, lower, demands, capacity, got)
				}
			}
		}
	})
}
