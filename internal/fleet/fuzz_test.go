package fleet

import (
	"testing"

	"robustscale/internal/scaler"
)

// FuzzAdmission hammers the admission-control arithmetic with arbitrary
// demand vectors and capacities. Three invariants must never break:
// admitted totals never exceed the pool, no tenant is admitted below
// zero or above its demand, and a higher-priority class is only clipped
// after every lower-priority class has been shed to zero.
func FuzzAdmission(f *testing.F) {
	f.Add(10, []byte{5, 5, 5, 5})
	f.Add(0, []byte{1, 2, 3})
	f.Add(-3, []byte{200, 0, 7})
	f.Add(1<<30, []byte{255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, capacity int, raw []byte) {
		if len(raw) == 0 || len(raw) > 64 {
			return
		}
		demands := make([]int, len(raw))
		for i, b := range raw {
			// Mix in sign and scale so the fuzzer reaches negatives and
			// values near the overflow clamp.
			d := int(b) * (1 << (uint(i) % 24))
			if i%5 == 3 {
				d = -d
			}
			demands[i] = d
		}
		classes := classesFor(len(demands))
		got := admitStep(demands, classes, capacity, nil)

		cap64 := int64(capacity)
		if cap64 < 0 {
			cap64 = 0
		}
		if cap64 > maxDemand {
			cap64 = maxDemand
		}
		var total int64
		for i, a := range got {
			d := int64(demands[i])
			if d < 0 {
				d = 0
			}
			if d > maxDemand {
				d = maxDemand
			}
			if int64(a) < 0 {
				t.Fatalf("admitted[%d] = %d below zero (demands=%v capacity=%d)", i, a, demands, capacity)
			}
			if int64(a) > d {
				t.Fatalf("admitted[%d] = %d above demand %d (capacity=%d)", i, a, d, capacity)
			}
			total += int64(a)
		}
		if total > cap64 {
			t.Fatalf("admitted total %d exceeds capacity %d (demands=%v)", total, cap64, demands)
		}

		// Priority order: if any member of a class was clipped, every
		// lower-priority class must be fully zeroed.
		clipped := [3]bool{}
		nonzero := [3]bool{}
		for i, a := range got {
			d := int64(demands[i])
			if d < 0 {
				d = 0
			}
			if d > maxDemand {
				d = maxDemand
			}
			c := classes[i]
			if int64(a) < d {
				clipped[c] = true
			}
			if a > 0 {
				nonzero[c] = true
			}
		}
		for c := ClassGuaranteed; c <= ClassBestEffort; c++ {
			if !clipped[c] {
				continue
			}
			for lower := c + 1; lower <= ClassBestEffort; lower++ {
				if nonzero[lower] {
					t.Fatalf("class %v clipped while class %v still holds nodes: demands=%v capacity=%d admitted=%v",
						c, lower, demands, capacity, got)
				}
			}
		}
	})
}

// FuzzWakeSchedule drives a small fleet of park/wake state machines with
// arbitrary round scripts — demand on/off, wake success/failure,
// forced storm wakes — and checks the wake-robustness invariants:
//
//  1. the shaped plan never contains a negative allocation, no matter
//     what sequence of parks, wakes, breaker trips and storms preceded it;
//  2. shaped plans pushed through shared-pool admission never admit past
//     the pool budget, even when a storm force-wakes every guard at once;
//  3. the machine always converges out of parked under sustained demand
//     with healthy wakes — no script can wedge a tenant at zero forever.
func FuzzWakeSchedule(f *testing.F) {
	f.Add([]byte{0x00, 0xff, 0x03, 0x81})
	f.Add([]byte{0x07, 0x07, 0x07, 0x40, 0x40, 0x40})
	f.Add([]byte{0xc1, 0xc1, 0xc1, 0xc1, 0x00})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) == 0 || len(script) > 128 {
			return
		}
		const tenants = 3
		const pool = 4
		guards := make([]*scaler.WakeGuard, tenants)
		for i := range guards {
			guards[i] = &scaler.WakeGuard{Config: scaler.WakeGuardConfig{
				MinIdleRounds:         2,
				WakeDebounceRounds:    2,
				KeepWarmAfterFails:    2,
				BreakerCooldownRounds: 3,
				KeepWarmNodes:         1,
			}}
		}
		classes := classesFor(tenants)
		for _, b := range script {
			// Bit layout per round byte: low 3 bits pick which guards see
			// demand, bit 6 reports the round's wake result, bit 7 fires a
			// correlated storm that force-wakes every guard.
			storm := b&0x80 != 0
			wakeOK := b&0x40 != 0
			demands := make([]int, tenants)
			for i, g := range guards {
				idle := b&(1<<uint(i)) == 0
				plan := []int{int(b >> 3 & 0x07)}
				g.Shape(plan, idle)
				if plan[0] < 0 {
					t.Fatalf("guard %d shaped a negative allocation %d (byte %#x)", i, plan[0], b)
				}
				if storm {
					g.ForceWake()
					if plan[0] < 1 {
						plan[0] = 1
					}
				}
				demands[i] = plan[0]
			}
			admitted := admitStep(demands, classes, pool, nil)
			var total int
			for i, a := range admitted {
				if a < 0 {
					t.Fatalf("admission emitted negative allocation %d for guard %d", a, i)
				}
				total += a
			}
			if total > pool {
				t.Fatalf("storm wake admitted %d nodes past pool budget %d (demands=%v)", total, pool, demands)
			}
			for _, g := range guards {
				if !g.Parked() {
					g.OnWakeResult(wakeOK)
				}
			}
		}

		// Convergence: sustained demand with healthy wakes must bring every
		// guard out of parked (and close any open breaker) within the sum
		// of the configured hysteresis windows, regardless of prior state.
		const bound = 16 // cooldown + debounce + fail threshold, with slack
		for round := 0; round < bound; round++ {
			done := true
			for _, g := range guards {
				plan := []int{3}
				g.Shape(plan, false)
				if plan[0] < 0 {
					t.Fatalf("convergence round %d shaped negative allocation", round)
				}
				if !g.Parked() {
					g.OnWakeResult(true)
				}
				if g.Parked() || g.BreakerOpen() {
					done = false
				}
			}
			if done {
				return
			}
		}
		for i, g := range guards {
			if g.Parked() || g.BreakerOpen() {
				t.Fatalf("guard %d wedged after %d rounds of sustained demand: parked=%v breaker=%v script=%x",
					i, bound, g.Parked(), g.BreakerOpen(), script)
			}
		}
	})
}
